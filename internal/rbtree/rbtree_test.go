package rbtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	tr := New[string, int]()
	tr.Put("bert", 1)
	tr.Put("resnet50", 2)
	tr.Put("vit", 3)
	if v, ok := tr.Get("resnet50"); !ok || v != 2 {
		t.Fatalf("Get(resnet50) = %d, %v", v, ok)
	}
	if _, ok := tr.Get("missing"); ok {
		t.Fatal("Get(missing) succeeded")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPutReplacesValue(t *testing.T) {
	tr := New[string, int]()
	tr.Put("m", 1)
	tr.Put("m", 2)
	if v, _ := tr.Get("m"); v != 2 {
		t.Fatalf("value after replace = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New[int, string]()
	for i := 0; i < 100; i++ {
		tr.Put(i, fmt.Sprint(i))
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(2) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendIsSorted(t *testing.T) {
	tr := New[int, int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		tr.Put(rng.Intn(1000), i)
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatal("Keys not sorted")
	}
	// Early termination.
	var n int
	tr.Ascend(func(int, int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Ascend visited %d entries after early stop", n)
	}
}

func TestMin(t *testing.T) {
	tr := New[string, int]()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree succeeded")
	}
	tr.Put("m2", 2)
	tr.Put("m1", 1)
	tr.Put("m3", 3)
	if k, v, ok := tr.Min(); !ok || k != "m1" || v != 1 {
		t.Fatalf("Min = %q, %d, %v", k, v, ok)
	}
}

// Property: after any sequence of inserts, the tree preserves red-black
// invariants and agrees with a reference map.
func TestInsertInvariantsProperty(t *testing.T) {
	prop := func(keys []uint16) bool {
		tr := New[uint16, int]()
		ref := make(map[uint16]int)
		for i, k := range keys {
			tr.Put(k, i)
			ref[k] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved inserts and deletes keep invariants and agree
// with a reference map.
func TestMixedOpsProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		tr := New[int16, bool]()
		ref := make(map[int16]bool)
		for _, op := range ops {
			if op >= 0 {
				tr.Put(op, true)
				ref[op] = true
			} else {
				k := -op
				delOK := tr.Delete(k)
				_, inRef := ref[k]
				if delOK != inRef {
					return false
				}
				delete(ref, k)
			}
			if err := tr.CheckInvariants(); err != nil {
				return false
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := tr.Keys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSequentialInsertStaysBalanced(t *testing.T) {
	tr := New[int, int]()
	for i := 0; i < 10000; i++ {
		tr.Put(i, i)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
