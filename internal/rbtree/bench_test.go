package rbtree

import (
	"fmt"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%04d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[string, int64]()
		for j, k := range keys {
			tr.Put(k, int64(j))
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[string, int64]()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%04d", i)
		tr.Put(keys[i], int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(keys[i&1023]); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkAscend(b *testing.B) {
	tr := New[int, int]()
	for i := 0; i < 4096; i++ {
		tr.Put(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Ascend(func(int, int) bool { n++; return true })
		if n != 4096 {
			b.Fatal("short walk")
		}
	}
}
