package rbtree

// CheckInvariants exposes the red-black invariant checker to tests.
func (t *Tree[K, V]) CheckInvariants() error { return t.checkInvariants() }
