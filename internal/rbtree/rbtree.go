// Package rbtree implements a left-leaning red-black tree. The Portus
// daemon uses it as ModelMap: the in-DRAM ordered index from model name
// to the persistent MIndex offset, mirroring the sorted on-PMem
// ModelTable (§III-D1).
package rbtree

import "cmp"

// Tree is an ordered map. The zero value is an empty tree ready for use.
type Tree[K cmp.Ordered, V any] struct {
	root *node[K, V]
	size int
}

type node[K cmp.Ordered, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree.
func New[K cmp.Ordered, V any]() *Tree[K, V] { return &Tree[K, V]{} }

// Len reports the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key.
func (t *Tree[K, V]) Put(key K, val V) {
	var added bool
	t.root, added = t.put(t.root, key, val)
	t.root.red = false
	if added {
		t.size++
	}
}

func (t *Tree[K, V]) put(h *node[K, V], key K, val V) (*node[K, V], bool) {
	if h == nil {
		return &node[K, V]{key: key, val: val, red: true}, true
	}
	var added bool
	switch {
	case key < h.key:
		h.left, added = t.put(h.left, key, val)
	case key > h.key:
		h.right, added = t.put(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h), added
}

// Delete removes key, reporting whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if key < h.key {
		if !isRed(h.left) && h.left != nil && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if key == h.key && h.right == nil {
			return nil
		}
		if !isRed(h.right) && h.right != nil && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if key == h.key {
			m := min(h.right)
			h.key, h.val = m.key, m.val
			h.right = deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

func min[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func deleteMin[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(h.left)
	return fixUp(h)
}

// Min returns the smallest key.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := min(t.root)
	return n.key, n.val, true
}

// Ascend calls fn for every entry in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(K, V) bool) {
	var walk func(*node[K, V]) bool
	walk = func(n *node[K, V]) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

// Keys returns all keys in order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

func isRed[K cmp.Ordered, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flip[K cmp.Ordered, V any](h *node[K, V]) {
	h.red = !h.red
	if h.left != nil {
		h.left.red = !h.left.red
	}
	if h.right != nil {
		h.right.red = !h.right.red
	}
}

func moveRedLeft[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	flip(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flip(h)
	}
	return h
}

func moveRedRight[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	flip(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		flip(h)
	}
	return h
}

func fixUp[K cmp.Ordered, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flip(h)
	}
	return h
}

// checkInvariants verifies red-black properties; exported to the test
// file through export_test.go.
func (t *Tree[K, V]) checkInvariants() error {
	_, err := check(t.root, false)
	return err
}

type rbError string

func (e rbError) Error() string { return string(e) }

func check[K cmp.Ordered, V any](n *node[K, V], parentRed bool) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.red && parentRed {
		return 0, rbError("red node with red parent")
	}
	if n.left != nil && n.left.key >= n.key {
		return 0, rbError("left child out of order")
	}
	if n.right != nil && n.right.key <= n.key {
		return 0, rbError("right child out of order")
	}
	lh, err := check(n.left, n.red)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, n.red)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, rbError("black-height mismatch")
	}
	if n.red {
		return lh, nil
	}
	return lh + 1, nil
}
