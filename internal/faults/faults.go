// Package faults is the deterministic fault-injection layer the
// robustness tests and the chaos experiment drive. An Injector wraps
// the three surfaces a real Portus deployment loses first — the RDMA
// fabric (RNIC completion errors, delayed completions, unreachable
// peers), the control-plane connection (drops mid-exchange), and the
// PMem flush path (torn or failed CLWB batches) — behind composable
// per-site schedules.
//
// Every decision is a pure function of the injector's seed and the
// per-site operation ordinal, so a fixed seed replays the exact same
// fault sequence under the simulation engine's deterministic
// scheduling. Schedules combine a probabilistic rate with an optional
// deterministic ordinal window, so tests can say both "10% of reads
// fail" and "exactly the 4th control-plane op drops the connection".
//
// Injected faults are counted per site and exported as
// portus_faults_injected_total{site=...} when a telemetry registry is
// supplied, so a Prometheus scrape shows what the harness actually did.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// ErrInjected marks every failure this package fabricates; errors.Is
// lets tests tell injected faults from organic ones.
var ErrInjected = errors.New("faults: injected failure")

// Injection sites, used as the counter's site label and as keys for
// Injected.
const (
	SiteRead  = "verb-read"
	SiteWrite = "verb-write"
	SiteRoute = "route"
	SiteDelay = "verb-delay"
	SiteConn  = "conn"
	SiteFlush = "flush"
	SiteKill  = "node-kill"
)

// Rule schedules one fault site. A rule fires when the operation's
// ordinal falls inside the deterministic [From, To] window (1-based,
// inclusive; To == 0 disables the window), or with probability Rate
// from the injector's seeded stream. The zero Rule never fires.
type Rule struct {
	Rate     float64
	From, To int
}

func (r Rule) enabled() bool { return r.Rate > 0 || r.To > 0 }

// Config is the fault schedule for one Injector.
type Config struct {
	// Seed fixes the probabilistic stream; the same seed and the same
	// operation order replay the same faults.
	Seed int64
	// Read and Write fail one-sided verbs with a transient completion
	// error (retryable).
	Read, Write Rule
	// Route fails one-sided verbs as if the peer's MR agent were
	// unreachable (wraps rdma.ErrNoRoute, the strategy-degradation
	// trigger).
	Route Rule
	// Delay stalls a verb for DelayBy before letting it through —
	// a slow completion, not a failure.
	Delay   Rule
	DelayBy time.Duration
	// Conn drops the wrapped control connection: the op that fires
	// fails, the underlying conn is closed, and every later op reports
	// the closed connection.
	Conn Rule
	// Flush tears PMem flushes: only the first half of the range is
	// persisted and the flush reports failure (retryable).
	Flush Rule
	// Telemetry, when set, receives portus_faults_injected_total
	// counters labeled by site.
	Telemetry *telemetry.Registry
	// Events, when set, receives a flight-recorder entry for every
	// injected fault, so /debug/events shows harness activity inline
	// with the scheduling and datapath decisions it provoked.
	Events *telemetry.EventRing
}

// Injector makes the schedule's decisions and counts what it injected.
// One injector may wrap any number of fabrics, conns, and flush paths;
// they share the seeded stream in operation order.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	ops      map[string]int
	injected map[string]int64
	counters map[string]*telemetry.Counter
	nodes    map[string][]func(env sim.Env)
}

// NewInjector builds an injector for the schedule.
func NewInjector(cfg Config) *Injector {
	in := &Injector{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		ops:      make(map[string]int),
		injected: make(map[string]int64),
		counters: make(map[string]*telemetry.Counter),
		nodes:    make(map[string][]func(env sim.Env)),
	}
	if reg := cfg.Telemetry; reg != nil {
		for _, site := range []string{SiteRead, SiteWrite, SiteRoute, SiteDelay, SiteConn, SiteFlush, SiteKill} {
			in.counters[site] = reg.Counter("portus_faults_injected_total",
				"faults injected by the test harness", telemetry.L("site", site))
		}
	}
	return in
}

// decide advances site's ordinal and reports whether this op faults.
// env stamps the flight-recorder entry; callers without a clock (the
// flush path) pass nil.
func (in *Injector) decide(env sim.Env, site string, r Rule) bool {
	if !r.enabled() {
		return false
	}
	in.mu.Lock()
	in.ops[site]++
	op := in.ops[site]
	hit := r.To > 0 && op >= r.From && op <= r.To
	if !hit && r.Rate > 0 {
		hit = in.rng.Float64() < r.Rate
	}
	if hit {
		in.injected[site]++
	}
	c := in.counters[site]
	in.mu.Unlock()
	if hit && c != nil {
		c.Inc()
	}
	if hit {
		var now time.Duration
		if env != nil {
			now = env.Now()
		}
		in.cfg.Events.Emit(telemetry.Event{
			Time:   now,
			Kind:   telemetry.EvFaultInject,
			Detail: fmt.Sprintf("%s op %d", site, op),
		})
	}
	return hit
}

// Injected reports how many faults fired at site.
func (in *Injector) Injected(site string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[site]
}

// Total reports all faults fired across sites.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.injected {
		n += v
	}
	return n
}

// RegisterNode associates a storage node name with the teardown hooks
// that make it disappear: typically a fabric route cut
// (rdma.SimFabric.CutNode), a control-plane shutdown
// (wire.SimNet.Shutdown plus closing established conns), and a daemon
// halt (daemon.Daemon.Halt). KillNode runs them in registration order.
func (in *Injector) RegisterNode(name string, teardown ...func(env sim.Env)) {
	in.mu.Lock()
	in.nodes[name] = append(in.nodes[name], teardown...)
	in.mu.Unlock()
}

// KillNode fails a whole storage node at once — fabric routes, control
// connections, worker pool — by running the teardowns registered for
// it. Idempotent: a second kill finds no registered teardowns. The kill
// is counted at SiteKill and recorded in the flight recorder.
func (in *Injector) KillNode(env sim.Env, name string) {
	in.mu.Lock()
	fns := in.nodes[name]
	delete(in.nodes, name)
	if len(fns) > 0 {
		in.injected[SiteKill]++
	}
	c := in.counters[SiteKill]
	in.mu.Unlock()
	if len(fns) == 0 {
		return
	}
	if c != nil {
		c.Inc()
	}
	var now time.Duration
	if env != nil {
		now = env.Now()
	}
	in.cfg.Events.Emit(telemetry.Event{
		Time:   now,
		Kind:   telemetry.EvNodeKill,
		Detail: name,
	})
	for _, fn := range fns {
		fn(env)
	}
}

// Fabric wraps f with the injector's verb schedule. Wrap a single lane's
// fabric (via rdma.QP.Fabric) to confine faults to that lane.
func (in *Injector) Fabric(f rdma.Fabric) rdma.Fabric {
	return &faultFabric{in: in, inner: f}
}

type faultFabric struct {
	in    *Injector
	inner rdma.Fabric
}

// verbFault runs the shared pre-verb schedule: an optional delay, then
// a route failure or a transient completion error.
func (f *faultFabric) verbFault(env sim.Env, site string, r Rule) error {
	if f.in.decide(env, SiteDelay, f.in.cfg.Delay) {
		env.Sleep(f.in.cfg.DelayBy)
	}
	if f.in.decide(env, SiteRoute, f.in.cfg.Route) {
		return fmt.Errorf("%w: %w", ErrInjected, rdma.ErrNoRoute)
	}
	if f.in.decide(env, site, r) {
		return fmt.Errorf("%w: %s completion error", ErrInjected, site)
	}
	return nil
}

func (f *faultFabric) Read(env sim.Env, local *rdma.Node, l rdma.Slice, r rdma.RemoteSlice) error {
	if err := f.verbFault(env, SiteRead, f.in.cfg.Read); err != nil {
		return err
	}
	return f.inner.Read(env, local, l, r)
}

func (f *faultFabric) Write(env sim.Env, local *rdma.Node, l rdma.Slice, r rdma.RemoteSlice) error {
	if err := f.verbFault(env, SiteWrite, f.in.cfg.Write); err != nil {
		return err
	}
	return f.inner.Write(env, local, l, r)
}

func (f *faultFabric) Send(env sim.Env, local *rdma.Node, remote, qp string, payload []byte, size int64) error {
	return f.inner.Send(env, local, remote, qp, payload, size)
}

func (f *faultFabric) Recv(env sim.Env, local *rdma.Node, qp string) ([]byte, int64, error) {
	return f.inner.Recv(env, local, qp)
}

// AddPeer forwards peer-address exchange to the wrapped fabric when it
// supports it (the TCP soft-RDMA transport).
func (f *faultFabric) AddPeer(name, addr string) {
	if pa, ok := f.inner.(interface{ AddPeer(name, addr string) }); ok {
		pa.AddPeer(name, addr)
	}
}

// Conn wraps c with the injector's connection-drop schedule. A firing
// op closes the underlying connection — both directions die, exactly
// like a peer reset — and fails; every later op reports the closed
// connection.
func (in *Injector) Conn(c wire.Conn) wire.Conn {
	return &faultConn{in: in, inner: c}
}

type faultConn struct {
	in    *Injector
	inner wire.Conn

	mu      sync.Mutex
	dropped bool
}

func (c *faultConn) drop() error {
	c.inner.Close()
	return fmt.Errorf("%w: connection dropped: %w", ErrInjected, wire.ErrClosed)
}

func (c *faultConn) Send(env sim.Env, m *wire.Msg) error {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return wire.ErrClosed
	}
	if c.in.decide(env, SiteConn, c.in.cfg.Conn) {
		c.dropped = true
		c.mu.Unlock()
		return c.drop()
	}
	c.mu.Unlock()
	return c.inner.Send(env, m)
}

func (c *faultConn) Recv(env sim.Env) (*wire.Msg, error) {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return nil, wire.ErrClosed
	}
	if c.in.decide(env, SiteConn, c.in.cfg.Conn) {
		c.dropped = true
		c.mu.Unlock()
		return nil, c.drop()
	}
	c.mu.Unlock()
	return c.inner.Recv(env)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	c.dropped = true
	c.mu.Unlock()
	return c.inner.Close()
}

// Flush wraps dev's data-zone flush with the torn-flush schedule: a
// firing flush persists only the first half of the range and reports
// failure, modeling a CLWB batch cut short by a machine check. The
// result plugs into datapath.Config.Flush / daemon.Config.Flush.
func (in *Injector) Flush(dev *pmem.Device) func(off, n int64) error {
	return func(off, n int64) error {
		if in.decide(nil, SiteFlush, in.cfg.Flush) {
			if half := n / 2; half > 0 {
				dev.FlushData(off, half)
			}
			return fmt.Errorf("%w: torn flush of [%d,%d)", ErrInjected, off, off+n)
		}
		dev.FlushData(off, n)
		return nil
	}
}
