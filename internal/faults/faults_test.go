package faults_test

import (
	"errors"
	"testing"

	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// okFabric is a no-op fabric: every verb succeeds instantly.
type okFabric struct{}

func (okFabric) Read(env sim.Env, local *rdma.Node, l rdma.Slice, r rdma.RemoteSlice) error {
	return nil
}
func (okFabric) Write(env sim.Env, local *rdma.Node, l rdma.Slice, r rdma.RemoteSlice) error {
	return nil
}
func (okFabric) Send(env sim.Env, local *rdma.Node, remote, qp string, payload []byte, size int64) error {
	return nil
}
func (okFabric) Recv(env sim.Env, local *rdma.Node, qp string) ([]byte, int64, error) {
	return nil, 0, nil
}

// readPattern records which of n reads fail under the schedule.
func readPattern(t *testing.T, cfg faults.Config, n int) []bool {
	t.Helper()
	var pattern []bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		f := faults.NewInjector(cfg).Fabric(okFabric{})
		for i := 0; i < n; i++ {
			pattern = append(pattern, f.Read(env, nil, rdma.Slice{}, rdma.RemoteSlice{}) != nil)
		}
	})
	eng.Run()
	return pattern
}

// TestSeedReplaysExactSchedule: the same seed and the same operation
// order produce the identical fault sequence — the property every
// regression test and the chaos experiment lean on.
func TestSeedReplaysExactSchedule(t *testing.T) {
	cfg := faults.Config{Seed: 42, Read: faults.Rule{Rate: 0.3}}
	a := readPattern(t, cfg, 200)
	b := readPattern(t, cfg, 200)
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d with the same seed", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 200 {
		t.Fatalf("rate 0.3 fired %d/200 times — schedule is degenerate", fired)
	}
	c := readPattern(t, faults.Config{Seed: 43, Read: faults.Rule{Rate: 0.3}}, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 200-op schedule")
	}
}

// TestWindowRuleFiresExactOrdinals: a [From, To] window fires exactly
// on those ordinals regardless of rate randomness.
func TestWindowRuleFiresExactOrdinals(t *testing.T) {
	pattern := readPattern(t, faults.Config{Read: faults.Rule{From: 3, To: 4}}, 6)
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("op %d fired=%v, want %v", i+1, pattern[i], want[i])
		}
	}
}

// TestRouteFaultIsRouteClass: an injected route failure must satisfy
// both errors.Is checks the stack dispatches on — ErrInjected for the
// harness, rdma.ErrNoRoute for strategy degradation.
func TestRouteFaultIsRouteClass(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		in := faults.NewInjector(faults.Config{Route: faults.Rule{From: 1, To: 1}})
		err := in.Fabric(okFabric{}).Read(env, nil, rdma.Slice{}, rdma.RemoteSlice{})
		if !errors.Is(err, faults.ErrInjected) || !errors.Is(err, rdma.ErrNoRoute) {
			t.Fatalf("route fault = %v, want ErrInjected and ErrNoRoute", err)
		}
	})
	eng.Run()
}

// TestTornFlushPersistsHalf: a firing flush persists only the first
// half of the range and reports failure; a clean retry completes it.
func TestTornFlushPersistsHalf(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "pmem0", DataSize: 1 << 20, MetaSize: 4 << 10, Mode: pmem.Devdax})
	in := faults.NewInjector(faults.Config{Flush: faults.Rule{From: 1, To: 1}})
	flush := in.Flush(dev)
	if err := flush(0, 4096); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("first flush = %v, want injected tear", err)
	}
	if err := flush(0, 4096); err != nil {
		t.Fatalf("second flush = %v, want clean", err)
	}
	if got := in.Injected(faults.SiteFlush); got != 1 {
		t.Fatalf("injected flush count = %d, want 1", got)
	}
}

// stubConn is an always-succeeding control connection that records
// whether it was closed.
type stubConn struct{ closed bool }

func (c *stubConn) Send(env sim.Env, m *wire.Msg) error { return nil }
func (c *stubConn) Recv(env sim.Env) (*wire.Msg, error) { return &wire.Msg{}, nil }
func (c *stubConn) Close() error                        { c.closed = true; return nil }

// TestConnDropKillsBothDirections: the firing op fails and closes the
// wrapped connection; later ops report the closed connection and the
// injected counter reaches the telemetry registry.
func TestConnDropKillsBothDirections(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		inner := &stubConn{}
		reg := telemetry.NewRegistry()
		in := faults.NewInjector(faults.Config{Conn: faults.Rule{From: 1, To: 1}, Telemetry: reg})
		c := in.Conn(inner)
		err := c.Send(env, nil)
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("dropped send = %v, want injected", err)
		}
		if !inner.closed {
			t.Fatal("drop must close the underlying connection")
		}
		if _, err := c.Recv(env); err == nil {
			t.Fatal("recv after drop must fail")
		}
		got := reg.Counter("portus_faults_injected_total", "", telemetry.L("site", faults.SiteConn)).Value()
		if got != 1 {
			t.Fatalf("conn fault counter = %d, want 1", got)
		}
	})
	eng.Run()
}
