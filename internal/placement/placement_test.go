package placement

import (
	"fmt"
	"testing"
)

func nodes3() []Node {
	return []Node{
		{Name: "storage0", Weight: 100 << 30},
		{Name: "storage1", Weight: 100 << 30},
		{Name: "storage2", Weight: 100 << 30},
	}
}

func TestOwnerDeterministicAndStable(t *testing.T) {
	m1, err := New(nodes3()...)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership presented in a different order must route
	// identically — placement is a pure function of the node set.
	rev := nodes3()
	rev[0], rev[2] = rev[2], rev[0]
	m2, err := New(rev...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model-%d/mp_rank_%02d", i, i%4)
		if a, b := m1.Owner(key), m2.Owner(key); a != b {
			t.Fatalf("key %q: owner differs across construction order: %q vs %q", key, a, b)
		}
		if a, b := m1.Owner(key), m1.Owner(key); a != b {
			t.Fatalf("key %q: owner not stable: %q vs %q", key, a, b)
		}
	}
}

func TestOwnerSpreadsLoad(t *testing.T) {
	m, err := New(nodes3()...)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("shard-%d", i))]++
	}
	for _, n := range nodes3() {
		got := counts[n.Name]
		want := keys / 3
		if got < want/2 || got > want*2 {
			t.Fatalf("node %s owns %d of %d keys; want roughly %d", n.Name, got, keys, want)
		}
	}
}

func TestOwnerRespectsWeights(t *testing.T) {
	// A node with 3x the PMem capacity should own roughly 3x the keys.
	m, err := New(
		Node{Name: "small", Weight: 100 << 30},
		Node{Name: "big", Weight: 300 << 30},
	)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[m.Owner(fmt.Sprintf("m%d", i))]++
	}
	ratio := float64(counts["big"]) / float64(counts["small"])
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("big/small ownership ratio = %.2f (big=%d small=%d); want ~3", ratio, counts["big"], counts["small"])
	}
}

func TestMembershipChangeMovesMinority(t *testing.T) {
	m, err := New(nodes3()...)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("m%d", i)
		before[k] = m.Owner(k)
	}
	if err := m.Update(append(nodes3(), Node{Name: "storage3", Weight: 100 << 30})); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 2 {
		t.Fatalf("epoch after update = %d, want 2", m.Epoch())
	}
	moved := 0
	for k, owner := range before {
		now := m.Owner(k)
		if now != owner {
			if now != "storage3" {
				t.Fatalf("key %q moved %q -> %q; rendezvous may only move keys to the new node", k, owner, now)
			}
			moved++
		}
	}
	// 1-of-4 of the keys should move, give or take.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("%d of %d keys moved on grow; want ~%d", moved, keys, keys/4)
	}
}

// TestOwnersFailoverMovesOnlyVictimShards is the property behind
// epoch-based failover: when one node dies and the map is rebuilt from
// the survivors, a key's replica set changes ONLY if the dead node was
// in it — and even then the surviving owners keep their positions, with
// exactly one replacement appended from the remaining members.
// Rendezvous hashing gives this for free because each node's score for
// a key is independent of the other members.
func TestOwnersFailoverMovesOnlyVictimShards(t *testing.T) {
	members := []Node{
		{Name: "storage0", Weight: 100 << 30},
		{Name: "storage1", Weight: 100 << 30},
		{Name: "storage2", Weight: 100 << 30},
		{Name: "storage3", Weight: 100 << 30},
	}
	const rf = 2
	const keys = 2000
	for _, victim := range members {
		m, err := New(members...)
		if err != nil {
			t.Fatal(err)
		}
		before := map[string][]string{}
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("model-%d/mp_rank_%02d", i, i%8)
			before[k] = m.Owners(k, rf)
		}
		var survivors []Node
		for _, n := range members {
			if n.Name != victim.Name {
				survivors = append(survivors, n)
			}
		}
		if err := m.Update(survivors); err != nil {
			t.Fatal(err)
		}
		if m.Epoch() != 2 {
			t.Fatalf("epoch after failover = %d, want 2", m.Epoch())
		}
		touched := 0
		for k, old := range before {
			now := m.Owners(k, rf)
			if len(now) != rf {
				t.Fatalf("key %q: %d owners after failover, want %d", k, len(now), rf)
			}
			hadVictim := false
			for _, n := range old {
				if n == victim.Name {
					hadVictim = true
				}
			}
			if !hadVictim {
				// Untouched shards must keep the identical replica set,
				// in the identical order.
				for i := range old {
					if now[i] != old[i] {
						t.Fatalf("key %q (victim %s not an owner): replica set moved %v -> %v",
							k, victim.Name, old, now)
					}
				}
				continue
			}
			touched++
			// Surviving owners keep their relative order; the one new
			// name is a survivor, not the victim.
			rest := now
			for _, n := range old {
				if n == victim.Name {
					continue
				}
				found := false
				for len(rest) > 0 {
					head := rest[0]
					rest = rest[1:]
					if head == n {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("key %q: surviving owner %q lost or reordered: %v -> %v", k, n, old, now)
				}
			}
			for _, n := range now {
				if n == victim.Name {
					t.Fatalf("key %q: dead node %q still an owner: %v", k, victim.Name, now)
				}
			}
		}
		// rf/N of the key-replica slots reference the victim, so roughly
		// rf/N of the keys should be touched — and no more.
		want := keys * rf / len(members)
		if touched < want/2 || touched > want*2 {
			t.Fatalf("victim %s: %d of %d keys re-placed; want ~%d", victim.Name, touched, keys, want)
		}
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New(Node{Name: "a"}, Node{Name: "a"}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := New(Node{}); err == nil {
		t.Fatal("unnamed node accepted")
	}
	if _, err := NewAtEpoch(0, Node{Name: "a"}); err == nil {
		t.Fatal("epoch 0 accepted")
	}
	m, err := NewAtEpoch(7, Node{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", m.Epoch())
	}
	if n, ok := m.Lookup("a"); !ok || n.Weight != 1 {
		t.Fatalf("Lookup(a) = %+v, %v; want defaulted weight 1", n, ok)
	}
}

func TestManifestCommitRule(t *testing.T) {
	mf := NewManifest()
	mf.AddShard("s0")
	mf.AddShard("s1")
	if got := mf.Committed(); got != 0 {
		t.Fatalf("empty manifest Committed = %d, want 0", got)
	}
	mf.Done("s0", 1)
	if got := mf.Committed(); got != 0 {
		t.Fatalf("half-done iteration committed: %d", got)
	}
	if lag := mf.Lagging(1); len(lag) != 1 || lag[0] != "s1" {
		t.Fatalf("Lagging(1) = %v, want [s1]", lag)
	}
	mf.Done("s1", 1)
	if got := mf.Committed(); got != 1 {
		t.Fatalf("Committed = %d, want 1", got)
	}
	// s0 races ahead; the group commit stays at the last iteration all
	// shards share.
	mf.Done("s0", 2)
	if got := mf.Committed(); got != 1 {
		t.Fatalf("Committed = %d after partial iter 2, want 1", got)
	}
	mf.Done("s1", 2)
	mf.Done("s0", 3)
	mf.Done("s1", 3)
	if got := mf.Committed(); got != 3 {
		t.Fatalf("Committed = %d, want 3", got)
	}
	// The window matches the two PMem version slots: iteration 1 has
	// been evicted and must no longer be reported committed.
	if lag := mf.Lagging(1); len(lag) != 2 {
		t.Fatalf("evicted iteration still in windows: Lagging(1) = %v", lag)
	}
}

func TestManifestObserveRebuild(t *testing.T) {
	mf := NewManifest()
	// Rebuild-from-LIST path: windows arrive unordered, with zeros for
	// empty slots.
	mf.Observe("s0", 5, 4)
	mf.Observe("s1", 0, 5)
	if got := mf.Committed(); got != 5 {
		t.Fatalf("Committed = %d, want 5", got)
	}
	snap := mf.Snapshot()
	if len(snap["s0"]) != 2 || snap["s0"][0] != 4 || snap["s0"][1] != 5 {
		t.Fatalf("s0 window = %v, want [4 5]", snap["s0"])
	}
	if len(snap["s1"]) != 1 || snap["s1"][0] != 5 {
		t.Fatalf("s1 window = %v, want [5]", snap["s1"])
	}
}
