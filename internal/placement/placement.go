// Package placement is the routing brain of the sharded storage tier:
// a deterministic, versioned placement map assigning every registered
// model (and every parallel shard) an owning storage daemon, plus the
// iteration-level manifest that makes a multi-daemon checkpoint commit
// all-or-nothing.
//
// Ownership uses weighted rendezvous (highest-random-weight) hashing
// over storage-node names, weighted by PMem capacity: every participant
// computes the same owner from nothing but the node list, so there is
// no placement service to keep consistent, and adding a node moves only
// ~1/N of the keys. The map carries an epoch so clients can detect
// stale routing tables against the daemons' view.
package placement

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// Node is one storage-tier member as the placement map sees it.
type Node struct {
	Name string
	// Weight biases rendezvous hashing; by convention it is the node's
	// PMem data capacity in bytes. Zero or negative means "equal share".
	Weight int64
	// CtrlAddr/FabricAddr locate the daemon for TCP deployments. Empty
	// in simulated runs, where the node name is the dialing address.
	CtrlAddr   string
	FabricAddr string
}

// Map is a versioned placement table. All methods are safe for
// concurrent use; Owner is pure given a fixed node list, so two
// processes holding maps at the same epoch route identically.
type Map struct {
	mu    sync.RWMutex
	epoch uint64
	nodes []Node
}

// New builds a placement map at epoch 1 over the given nodes.
func New(nodes ...Node) (*Map, error) {
	m := &Map{}
	if err := m.set(1, nodes); err != nil {
		return nil, err
	}
	return m, nil
}

// NewAtEpoch rebuilds a map received from a daemon at a known epoch
// (the TPlacementResp path).
func NewAtEpoch(epoch uint64, nodes ...Node) (*Map, error) {
	if epoch == 0 {
		return nil, fmt.Errorf("placement: epoch must be >= 1")
	}
	m := &Map{}
	if err := m.set(epoch, nodes); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Map) set(epoch uint64, nodes []Node) error {
	if len(nodes) == 0 {
		return fmt.Errorf("placement: empty node list")
	}
	seen := make(map[string]bool, len(nodes))
	cp := make([]Node, len(nodes))
	for i, n := range nodes {
		if n.Name == "" {
			return fmt.Errorf("placement: node %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("placement: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
		if n.Weight <= 0 {
			n.Weight = 1
		}
		cp[i] = n
	}
	// Sorted order keeps Nodes() (and thus wire encodings and epoch
	// comparisons) deterministic regardless of construction order.
	sort.Slice(cp, func(i, j int) bool { return cp[i].Name < cp[j].Name })
	m.epoch = epoch
	m.nodes = cp
	return nil
}

// Epoch returns the table version.
func (m *Map) Epoch() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch
}

// Nodes returns a copy of the membership, sorted by name.
func (m *Map) Nodes() []Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Node, len(m.nodes))
	copy(out, m.nodes)
	return out
}

// Len returns the member count.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.nodes)
}

// Lookup finds a member by name.
func (m *Map) Lookup(name string) (Node, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, n := range m.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// Update replaces the membership and bumps the epoch.
func (m *Map) Update(nodes []Node) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.set(m.epoch+1, nodes)
}

// Owner returns the name of the storage node owning key.
func (m *Map) Owner(key string) string {
	return m.OwnerNode(key).Name
}

// Owners returns the names of the top-rf rendezvous nodes for key, best
// first — the replica set at replication factor rf. Owners(key, 1)[0]
// is always Owner(key). Fewer than rf members yields the whole
// membership. Because every node's score is independent of the others,
// removing one member deletes only its own entry from each key's
// ranking: the surviving owners keep their relative order and exactly
// one next-best node is appended, which is the minimal-disruption
// property failover relies on.
func (m *Map) Owners(key string, rf int) []string {
	nodes := m.OwnerNodes(key, rf)
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// OwnerNodes is Owners returning the full member records.
func (m *Map) OwnerNodes(key string, rf int) []Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if rf < 1 {
		rf = 1
	}
	ranked := make([]Node, len(m.nodes))
	copy(ranked, m.nodes)
	scores := make(map[string]float64, len(ranked))
	for _, n := range ranked {
		scores[n.Name] = score(key, n)
	}
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i].Name], scores[ranked[j].Name]
		if si != sj {
			return si > sj
		}
		return ranked[i].Name < ranked[j].Name
	})
	if rf > len(ranked) {
		rf = len(ranked)
	}
	return ranked[:rf]
}

// OwnerNode returns the full record of the storage node owning key,
// chosen by weighted rendezvous hashing: each node scores
// -weight/ln(u) where u is a uniform hash of (key, node), and the
// highest score wins. Capacity-proportional in expectation, and any
// membership change remaps only keys whose winner changed.
func (m *Map) OwnerNode(key string) Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var best Node
	bestScore := math.Inf(-1)
	for _, n := range m.nodes {
		s := score(key, n)
		if s > bestScore || (s == bestScore && n.Name < best.Name) {
			best, bestScore = n, s
		}
	}
	return best
}

// score computes one node's rendezvous score for key.
func score(key string, n Node) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(n.Name))
	// Map the 64-bit hash into u ∈ (0, 1]; ln(u) < 0 so the score is
	// positive and grows with weight.
	u := (float64(h.Sum64()) + 1) / float64(math.MaxUint64)
	return -float64(n.Weight) / math.Log(u)
}
