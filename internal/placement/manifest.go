package placement

import (
	"sort"
	"sync"
)

// ManifestWindow is how many recently-DONE iterations each shard copy
// retains — matched to the two double-mapped version slots every model
// keeps on PMem, because an iteration older than that has been evicted
// and is no longer restorable anyway.
const ManifestWindow = 2

// Manifest is the iteration-level commit record of a sharded, possibly
// replicated checkpoint. Each member shard has an owner set (its
// replica nodes, best rendezvous node first); every owner copy reports
// the iterations its daemon has marked DONE. An iteration is
// group-committed — and hence restorable — iff it is present in the
// recent-done window of every owner copy of every shard. A
// mid-checkpoint daemon failure therefore never loses a committed
// checkpoint: the failed copy simply never reports the new iteration,
// and Committed() keeps answering the previous one.
//
// Committed() is additionally latched forward-only: once an iteration
// group-commits, later membership changes (a node death dropping its
// copies, an epoch bump shrinking owner sets) can never un-commit it.
//
// Shards created by AddShard without a declared owner set track a
// single anonymous copy — the pre-replication behavior, kept for
// single-copy routers and tests.
type Manifest struct {
	mu     sync.Mutex
	window int
	order  []string
	shards map[string]*shardRecord
	// committed is the forward-only high-water group commit.
	committed uint64
}

// shardRecord tracks one shard's replica copies.
type shardRecord struct {
	// owners is the declared replica set, best node first. Empty means
	// the shard predates replication and uses one anonymous copy ("").
	owners []string
	// copies holds each node's recent DONE iterations, newest last.
	copies map[string][]uint64
	// crcs remembers the content fingerprint reported with each DONE
	// iteration, for integrity-checked restore. Pruned alongside the
	// copy windows.
	crcs map[uint64]uint64
}

// NewManifest creates an empty manifest with the standard window.
func NewManifest() *Manifest {
	return &Manifest{window: ManifestWindow, shards: make(map[string]*shardRecord)}
}

func (mf *Manifest) recordLocked(shard string) *shardRecord {
	rec, ok := mf.shards[shard]
	if !ok {
		rec = &shardRecord{copies: make(map[string][]uint64), crcs: make(map[uint64]uint64)}
		mf.shards[shard] = rec
		mf.order = append(mf.order, shard)
	}
	return rec
}

// requiredCopies names the copies whose windows gate a group commit.
func (rec *shardRecord) requiredCopies() []string {
	if len(rec.owners) > 0 {
		return rec.owners
	}
	return []string{""}
}

// AddShard registers a member shard. Idempotent.
func (mf *Manifest) AddShard(name string) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	mf.recordLocked(name)
}

// SetOwners declares (or re-places, after an epoch bump) a shard's
// replica set. Copies on nodes leaving the set are forgotten: either
// the node is dead and its data lost, or it is no longer responsible
// for the shard.
func (mf *Manifest) SetOwners(shard string, nodes []string) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec := mf.recordLocked(shard)
	rec.owners = append([]string(nil), nodes...)
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	for n := range rec.copies {
		if !keep[n] {
			delete(rec.copies, n)
		}
	}
}

// Owners returns a shard's declared replica set (nil for legacy
// single-copy shards).
func (mf *Manifest) Owners(shard string) []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec, ok := mf.shards[shard]
	if !ok {
		return nil
	}
	return append([]string(nil), rec.owners...)
}

// Shards lists the member shards in registration order.
func (mf *Manifest) Shards() []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	out := make([]string, len(mf.order))
	copy(out, mf.order)
	return out
}

// Done records that shard's daemon reported iteration DONE — the
// single-copy path: with owners declared it is shorthand for every
// owner reporting at once.
func (mf *Manifest) Done(shard string, iter uint64) {
	mf.Observe(shard, iter)
}

// DoneOn records that one replica copy of shard reported iteration
// DONE.
func (mf *Manifest) DoneOn(shard, node string, iter uint64) {
	mf.ObserveOn(shard, node, iter)
}

// Observe merges known-DONE iterations into every required copy of a
// shard — the single-copy rebuild path when a router resynchronizes
// the manifest from the daemons' LIST responses.
func (mf *Manifest) Observe(shard string, iters ...uint64) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec := mf.recordLocked(shard)
	for _, copyName := range rec.requiredCopies() {
		mf.observeLocked(rec, copyName, iters)
	}
	mf.latchLocked()
}

// ObserveOn merges known-DONE iterations into one replica copy's
// window. Only the newest `window` survive.
func (mf *Manifest) ObserveOn(shard, node string, iters ...uint64) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	mf.observeLocked(mf.recordLocked(shard), node, iters)
	mf.latchLocked()
}

func (mf *Manifest) observeLocked(rec *shardRecord, node string, iters []uint64) {
	w := rec.copies[node]
	for _, it := range iters {
		if it == 0 || contains(w, it) {
			continue
		}
		w = append(w, it)
	}
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(w) > mf.window {
		w = w[len(w)-mf.window:]
	}
	rec.copies[node] = w
}

// SetCRC records the content fingerprint a daemon reported with a DONE
// iteration of shard. Entries older than the retained windows are
// pruned.
func (mf *Manifest) SetCRC(shard string, iter, crc uint64) {
	if iter == 0 {
		return
	}
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec := mf.recordLocked(shard)
	rec.crcs[iter] = crc
	if len(rec.crcs) > 2*mf.window+2 {
		its := make([]uint64, 0, len(rec.crcs))
		for it := range rec.crcs {
			its = append(its, it)
		}
		sort.Slice(its, func(i, j int) bool { return its[i] < its[j] })
		for _, it := range its[:len(its)-2*mf.window] {
			delete(rec.crcs, it)
		}
	}
}

// CRCOf returns the recorded fingerprint for (shard, iter), zero if
// unknown.
func (mf *Manifest) CRCOf(shard string, iter uint64) uint64 {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec, ok := mf.shards[shard]
	if !ok {
		return 0
	}
	return rec.crcs[iter]
}

// DropNode forgets every copy held by node — called when a storage
// node dies (its PMem contents are presumed lost) so HoldersOf and the
// commit rule stop counting it.
func (mf *Manifest) DropNode(node string) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	for _, rec := range mf.shards {
		delete(rec.copies, node)
	}
}

// HoldersOf names the replica nodes whose copy window contains iter
// for shard, best owner first — the candidates an integrity-checked
// restore may be served from.
func (mf *Manifest) HoldersOf(shard string, iter uint64) []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	rec, ok := mf.shards[shard]
	if !ok {
		return nil
	}
	var out []string
	for _, n := range rec.requiredCopies() {
		if contains(rec.copies[n], iter) {
			out = append(out, n)
		}
	}
	// Copies surviving outside the current owner set (e.g. after a
	// re-placement) are still valid restore sources.
	for n, w := range rec.copies {
		if contains(w, iter) && !containsStr(out, n) {
			out = append(out, n)
		}
	}
	return out
}

// Committed returns the highest iteration present in every required
// copy's window of every shard — the group-committed checkpoint a
// striped restore must target — latched so it never regresses when
// membership changes. Zero means no iteration has ever group-committed.
func (mf *Manifest) Committed() uint64 {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	return mf.latchLocked()
}

// latchLocked recomputes the group commit and advances the latch. It
// runs on every DONE observation — not just on Committed() reads — so a
// node death immediately after a group commit can never lose it: the
// latch already holds the iteration even if nobody asked yet.
func (mf *Manifest) latchLocked() uint64 {
	if len(mf.order) == 0 {
		return mf.committed
	}
	first := mf.shards[mf.order[0]]
	var cand []uint64
	for _, n := range first.requiredCopies() {
		cand = append(cand, first.copies[n]...)
	}
	var best uint64
	for _, it := range cand {
		if it <= best {
			continue
		}
		ok := true
		for _, s := range mf.order {
			rec := mf.shards[s]
			for _, n := range rec.requiredCopies() {
				if !contains(rec.copies[n], it) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			best = it
		}
	}
	if best > mf.committed {
		mf.committed = best
	}
	return mf.committed
}

// Lagging names the shards with a required copy whose window does not
// contain iter — the members holding back a group commit at that
// iteration.
func (mf *Manifest) Lagging(iter uint64) []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	var out []string
	for _, s := range mf.order {
		rec := mf.shards[s]
		for _, n := range rec.requiredCopies() {
			if !contains(rec.copies[n], iter) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// Snapshot returns each shard's merged copy window (the union of its
// replicas' DONE iterations), for debugging and experiment tables.
func (mf *Manifest) Snapshot() map[string][]uint64 {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	out := make(map[string][]uint64, len(mf.shards))
	for s, rec := range mf.shards {
		var merged []uint64
		for _, w := range rec.copies {
			for _, it := range w {
				if !contains(merged, it) {
					merged = append(merged, it)
				}
			}
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		out[s] = merged
	}
	return out
}

func contains(w []uint64, it uint64) bool {
	for _, v := range w {
		if v == it {
			return true
		}
	}
	return false
}

func containsStr(w []string, s string) bool {
	for _, v := range w {
		if v == s {
			return true
		}
	}
	return false
}
