package placement

import (
	"sort"
	"sync"
)

// ManifestWindow is how many recently-DONE iterations each shard
// retains — matched to the two double-mapped version slots every model
// keeps on PMem, because an iteration older than that has been evicted
// and is no longer restorable anyway.
const ManifestWindow = 2

// Manifest is the iteration-level commit record of a sharded
// checkpoint. Each member shard reports the iterations its owning
// daemon has marked DONE; an iteration is group-committed — and hence
// restorable — iff it is present in every shard's recent-done window.
// A mid-checkpoint daemon failure therefore never loses a committed
// checkpoint: the failed shard simply never reports the new iteration,
// and Committed() keeps answering the previous one, which every daemon
// still holds in a DONE slot.
type Manifest struct {
	mu     sync.Mutex
	window int
	order  []string
	// shards holds each shard's recent DONE iterations, newest last.
	shards map[string][]uint64
}

// NewManifest creates an empty manifest with the standard window.
func NewManifest() *Manifest {
	return &Manifest{window: ManifestWindow, shards: make(map[string][]uint64)}
}

// AddShard registers a member shard. Idempotent.
func (mf *Manifest) AddShard(name string) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if _, ok := mf.shards[name]; ok {
		return
	}
	mf.shards[name] = nil
	mf.order = append(mf.order, name)
}

// Shards lists the member shards in registration order.
func (mf *Manifest) Shards() []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	out := make([]string, len(mf.order))
	copy(out, mf.order)
	return out
}

// Done records that shard's daemon reported iteration DONE.
func (mf *Manifest) Done(shard string, iter uint64) {
	mf.Observe(shard, iter)
}

// Observe merges one or more known-DONE iterations for a shard —
// the rebuild path when a router resynchronizes the manifest from the
// daemons' LIST responses. Only the newest `window` survive.
func (mf *Manifest) Observe(shard string, iters ...uint64) {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if _, ok := mf.shards[shard]; !ok {
		mf.order = append(mf.order, shard)
	}
	w := mf.shards[shard]
	for _, it := range iters {
		if it == 0 || contains(w, it) {
			continue
		}
		w = append(w, it)
	}
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	if len(w) > mf.window {
		w = w[len(w)-mf.window:]
	}
	mf.shards[shard] = w
}

// Committed returns the highest iteration present in every shard's
// window — the group-committed checkpoint a striped restore must
// target. Zero means no iteration is restorable across all shards.
func (mf *Manifest) Committed() uint64 {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	if len(mf.order) == 0 {
		return 0
	}
	var best uint64
	for _, it := range mf.shards[mf.order[0]] {
		ok := true
		for _, s := range mf.order[1:] {
			if !contains(mf.shards[s], it) {
				ok = false
				break
			}
		}
		if ok && it > best {
			best = it
		}
	}
	return best
}

// Lagging names the shards whose window does not contain iter — the
// members holding back a group commit at that iteration.
func (mf *Manifest) Lagging(iter uint64) []string {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	var out []string
	for _, s := range mf.order {
		if !contains(mf.shards[s], iter) {
			out = append(out, s)
		}
	}
	return out
}

// Snapshot returns a copy of every shard's window, for debugging and
// experiment tables.
func (mf *Manifest) Snapshot() map[string][]uint64 {
	mf.mu.Lock()
	defer mf.mu.Unlock()
	out := make(map[string][]uint64, len(mf.shards))
	for s, w := range mf.shards {
		cw := make([]uint64, len(w))
		copy(cw, w)
		out[s] = cw
	}
	return out
}

func contains(w []uint64, it uint64) bool {
	for _, v := range w {
		if v == it {
			return true
		}
	}
	return false
}
