package cluster_test

import (
	"testing"

	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

func build(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	var cl *cluster.Cluster
	eng := sim.NewEngine()
	eng.Go("build", func(env sim.Env) {
		var err error
		cl, err = cluster.New(env, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	return cl
}

func TestDefaultsAreClientVolta(t *testing.T) {
	cl := build(t, cluster.Config{})
	if len(cl.Compute) != 1 || len(cl.Compute[0].GPUs) != 4 {
		t.Fatalf("default topology: %d nodes, %d GPUs", len(cl.Compute), len(cl.Compute[0].GPUs))
	}
	if cl.Storage[0].PMem.Mode() != pmem.Devdax {
		t.Fatalf("Portus namespace mode = %v, want devdax", cl.Storage[0].PMem.Mode())
	}
	if cl.Storage[0].PMem.Materialized() {
		t.Fatal("default content mode should be virtual")
	}
}

func TestTwoNodeAmpereTopology(t *testing.T) {
	cl := build(t, cluster.Config{ComputeNodes: 2, GPUsPerNode: 8, GPUMemBytes: 1 << 30, PMemBytes: 1 << 30})
	if len(cl.Compute) != 2 {
		t.Fatalf("nodes = %d", len(cl.Compute))
	}
	for n := 0; n < 2; n++ {
		if len(cl.Compute[n].GPUs) != 8 {
			t.Fatalf("node %d has %d GPUs", n, len(cl.Compute[n].GPUs))
		}
		if cl.GPU(n, 7).Mem().Kind() != memdev.GPU {
			t.Fatal("GPU device kind wrong")
		}
	}
	if cl.Compute[0].RNode.Name() == cl.Compute[1].RNode.Name() {
		t.Fatal("compute nodes share an RDMA identity")
	}
}

func TestResourceCapacities(t *testing.T) {
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20})
	if got := cl.Compute[0].PCIe.Capacity(); got != perfmodel.PCIeNodeBW {
		t.Errorf("PCIe capacity = %v", got)
	}
	if got := cl.Compute[0].Serializer.Capacity(); got != perfmodel.SerializerNodeBW {
		t.Errorf("Serializer capacity = %v", got)
	}
	if got := cl.Storage[0].Ingest.Capacity(); got != perfmodel.BeeGFSServerBW {
		t.Errorf("Ingest capacity = %v", got)
	}
}

func TestRateOverride(t *testing.T) {
	rates := rdma.DefaultRates().WithGPUReadCap(2 * perfmodel.GB)
	rates.NICBandwidth = 3 * perfmodel.GB
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, Rates: &rates})
	if cl == nil {
		t.Fatal("cluster with rate override failed")
	}
	// The override must reach every node's NIC, compute and storage.
	if got := cl.Compute[0].RNode.NIC().Capacity(); got != 3*perfmodel.GB {
		t.Errorf("compute NIC capacity = %v, want the 3 GB/s override", got)
	}
	if got := cl.Storage[0].RNode.NIC().Capacity(); got != 3*perfmodel.GB {
		t.Errorf("storage NIC capacity = %v, want the 3 GB/s override", got)
	}
}

func TestDRAMFallbackMedia(t *testing.T) {
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, DRAMFallback: true})
	if got := cl.Storage[0].PMem.Media(); got != pmem.MediaDRAM {
		t.Fatalf("DRAMFallback namespace media = %v, want MediaDRAM", got)
	}
	cl = build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20})
	if got := cl.Storage[0].PMem.Media(); got != pmem.MediaPMem {
		t.Fatalf("default namespace media = %v, want MediaPMem", got)
	}
}

func TestPMemMetaBytesPropagates(t *testing.T) {
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, PMemMetaBytes: 3 << 20})
	if got := cl.Storage[0].PMem.MetaSize(); got != 3<<20 {
		t.Fatalf("metadata zone = %d bytes, want %d", got, 3<<20)
	}
	if got := cl.Storage[0].PMem.DataSize(); got != 1<<20 {
		t.Fatalf("data zone = %d bytes, want %d", got, 1<<20)
	}
}

func TestStorageTierTopology(t *testing.T) {
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, StorageNodes: 3})
	if len(cl.Storage) != 3 {
		t.Fatalf("storage tier size = %d, want 3", len(cl.Storage))
	}
	seen := map[string]bool{}
	for i, st := range cl.Storage {
		if st.Name != cluster.StorageNodeName(i) {
			t.Errorf("storage node %d named %q, want %q", i, st.Name, cluster.StorageNodeName(i))
		}
		if seen[st.RNode.Name()] {
			t.Errorf("storage nodes share RDMA identity %q", st.RNode.Name())
		}
		seen[st.RNode.Name()] = true
		if st.PMem == nil || st.Ingest == nil || st.DAX == nil {
			t.Errorf("storage node %d missing per-node resources", i)
		}
	}
	// Each member owns a distinct namespace.
	if cl.Storage[0].PMem == cl.Storage[1].PMem {
		t.Fatal("storage nodes share a PMem device")
	}
}
