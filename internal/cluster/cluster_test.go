package cluster_test

import (
	"testing"

	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

func build(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	var cl *cluster.Cluster
	eng := sim.NewEngine()
	eng.Go("build", func(env sim.Env) {
		var err error
		cl, err = cluster.New(env, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	return cl
}

func TestDefaultsAreClientVolta(t *testing.T) {
	cl := build(t, cluster.Config{})
	if len(cl.Compute) != 1 || len(cl.Compute[0].GPUs) != 4 {
		t.Fatalf("default topology: %d nodes, %d GPUs", len(cl.Compute), len(cl.Compute[0].GPUs))
	}
	if cl.Storage.PMem.Mode() != pmem.Devdax {
		t.Fatalf("Portus namespace mode = %v, want devdax", cl.Storage.PMem.Mode())
	}
	if cl.Storage.PMem.Materialized() {
		t.Fatal("default content mode should be virtual")
	}
}

func TestTwoNodeAmpereTopology(t *testing.T) {
	cl := build(t, cluster.Config{ComputeNodes: 2, GPUsPerNode: 8, GPUMemBytes: 1 << 30, PMemBytes: 1 << 30})
	if len(cl.Compute) != 2 {
		t.Fatalf("nodes = %d", len(cl.Compute))
	}
	for n := 0; n < 2; n++ {
		if len(cl.Compute[n].GPUs) != 8 {
			t.Fatalf("node %d has %d GPUs", n, len(cl.Compute[n].GPUs))
		}
		if cl.GPU(n, 7).Mem().Kind() != memdev.GPU {
			t.Fatal("GPU device kind wrong")
		}
	}
	if cl.Compute[0].RNode.Name() == cl.Compute[1].RNode.Name() {
		t.Fatal("compute nodes share an RDMA identity")
	}
}

func TestResourceCapacities(t *testing.T) {
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20})
	if got := cl.Compute[0].PCIe.Capacity(); got != perfmodel.PCIeNodeBW {
		t.Errorf("PCIe capacity = %v", got)
	}
	if got := cl.Compute[0].Serializer.Capacity(); got != perfmodel.SerializerNodeBW {
		t.Errorf("Serializer capacity = %v", got)
	}
	if got := cl.Storage.Ingest.Capacity(); got != perfmodel.BeeGFSServerBW {
		t.Errorf("Ingest capacity = %v", got)
	}
}

func TestRateOverride(t *testing.T) {
	rates := rdma.DefaultRates().WithGPUReadCap(2 * perfmodel.GB)
	cl := build(t, cluster.Config{GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, Rates: &rates})
	if cl == nil {
		t.Fatal("cluster with rate override failed")
	}
}
