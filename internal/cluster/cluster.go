// Package cluster assembles the paper's testbed topology (§V-A): one or
// more compute nodes (Client-Volta: 4×V100, Client-Ampere: 8×A40, each
// with a 100 Gbps RNIC) and an AEP storage tier (one node by default,
// more for sharded-tier runs), each member carrying the Optane
// namespaces — half provisioned devdax for Portus, half fsdax under
// ext4-DAX for the BeeGFS baseline. It owns the shared simulated
// resources every datapath contends on: per-node PCIe and serializer
// capacity, local NVMe, the storage node's BeeGFS ingest service, and
// its DAX write path.
package cluster

import (
	"fmt"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

// Config sizes a cluster.
type Config struct {
	ComputeNodes int
	GPUsPerNode  int
	// GPUMemBytes is each GPU's HBM capacity.
	GPUMemBytes int64
	// StorageNodes is the storage-tier size; each member gets its own
	// RNIC, PMem namespace, and BeeGFS resources (default 1, the
	// paper's single-AEP-node testbed).
	StorageNodes int
	// Replicas is the storage tier's replication factor: every shard is
	// checkpointed to its top-Replicas rendezvous owners so the group
	// survives the loss of Replicas-1 nodes. 0 or 1 means unreplicated.
	Replicas int
	// PMemBytes is the devdax namespace capacity on each storage node.
	PMemBytes int64
	// PMemMetaBytes overrides the metadata zone size (optional).
	PMemMetaBytes int64
	// Materialized selects real bytes (correctness tests) versus
	// stamp-tracked content (large-model benchmarks).
	Materialized bool
	// Rates overrides the RDMA rate table (optional; ablations).
	Rates *rdma.RateTable
	// DRAMFallback backs the Portus namespace with server DRAM instead
	// of PMem — the paper's fallback when no PMem is present (§IV-a).
	// Faster writes, no durability across power failures.
	DRAMFallback bool
}

// Defaults fills unset fields with the paper's Client-Volta setup.
func (c Config) withDefaults() Config {
	if c.ComputeNodes == 0 {
		c.ComputeNodes = 1
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.GPUMemBytes == 0 {
		c.GPUMemBytes = 32 << 30
	}
	if c.StorageNodes == 0 {
		c.StorageNodes = 1
	}
	if c.PMemBytes == 0 {
		c.PMemBytes = 768 << 30
	}
	return c
}

// ComputeNode is one client machine.
type ComputeNode struct {
	Name  string
	GPUs  []*gpu.GPU
	RNode *rdma.Node

	// PCIe is the host's aggregate device-to-host staging bandwidth
	// (cuMemcpy contends here).
	PCIe *sim.BandwidthResource
	// Serializer is the node's aggregate torch.save throughput.
	Serializer *sim.BandwidthResource
	// NVMe is the local SSD behind the ext4 baseline.
	NVMe *sim.BandwidthResource
}

// StorageNode is the AEP server.
type StorageNode struct {
	Name  string
	RNode *rdma.Node
	// PMem is the devdax namespace Portus owns.
	PMem *pmem.Device
	// Ingest is the BeeGFS daemon's request-processing capacity, with
	// the synchronization-contention coefficient that makes concurrent
	// writers degrade (§II-A's "I/O contention and synchronization
	// overhead").
	Ingest *sim.BandwidthResource
	// DAX is the server-side persist stage onto the fsdax namespace.
	DAX *sim.BandwidthResource
}

// Cluster is a wired topology.
type Cluster struct {
	Env     sim.Env
	Fabric  *rdma.SimFabric
	Compute []*ComputeNode
	// Storage holds the storage tier, one entry per node, named
	// "storage0".."storageN-1".
	Storage []*StorageNode
}

// New builds a cluster under env. Must run inside a simulation process
// (or a RealEnv, where resources are inert).
func New(env sim.Env, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	rates := rdma.DefaultRates()
	if cfg.Rates != nil {
		rates = *cfg.Rates
	}
	cl := &Cluster{Env: env, Fabric: rdma.NewSimFabric()}
	for n := 0; n < cfg.ComputeNodes; n++ {
		name := fmt.Sprintf("client%d", n)
		cn := &ComputeNode{
			Name:       name,
			RNode:      rdma.NewNodeWithRates(env, name, rates),
			PCIe:       sim.NewBandwidthResource(env, name+"/pcie", perfmodel.PCIeNodeBW),
			Serializer: sim.NewBandwidthResource(env, name+"/ser", perfmodel.SerializerNodeBW),
			NVMe:       sim.NewBandwidthResource(env, name+"/nvme", perfmodel.NVMeReadBW),
		}
		for g := 0; g < cfg.GPUsPerNode; g++ {
			cn.GPUs = append(cn.GPUs, gpu.New(fmt.Sprintf("%s/gpu%d", name, g), cfg.GPUMemBytes, cfg.Materialized))
		}
		cl.Fabric.AddNode(cn.RNode)
		cl.Compute = append(cl.Compute, cn)
	}
	for s := 0; s < cfg.StorageNodes; s++ {
		name := StorageNodeName(s)
		st := &StorageNode{
			Name:  name,
			RNode: rdma.NewNodeWithRates(env, name, rates),
			PMem: pmem.New(pmem.Config{
				Name:         name + "/pmem-devdax",
				DataSize:     cfg.PMemBytes,
				MetaSize:     cfg.PMemMetaBytes,
				Materialized: cfg.Materialized,
				Mode:         pmem.Devdax,
				Media:        media(cfg.DRAMFallback),
			}),
			Ingest: sim.NewBandwidthResource(env, name+"/beegfs", perfmodel.BeeGFSServerBW),
			DAX:    sim.NewBandwidthResource(env, name+"/dax", perfmodel.BeeGFSDAXWriteBW),
		}
		st.Ingest.SetContention(perfmodel.BeeGFSContention)
		cl.Fabric.AddNode(st.RNode)
		cl.Storage = append(cl.Storage, st)
	}
	return cl, nil
}

// StorageNodeName names storage-tier member i ("storage0", ...).
func StorageNodeName(i int) string { return fmt.Sprintf("storage%d", i) }

// GPU returns GPU g of compute node n.
func (c *Cluster) GPU(n, g int) *gpu.GPU { return c.Compute[n].GPUs[g] }

func media(dram bool) pmem.Media {
	if dram {
		return pmem.MediaDRAM
	}
	return pmem.MediaPMem
}
