package gpu

import (
	"fmt"

	"github.com/portus-sys/portus/internal/model"
)

// PlacedModel is a model whose tensors live at fixed addresses in one
// GPU's memory — the framework-allocated layout whose stability Portus
// exploits to register memory regions once per training job.
type PlacedModel struct {
	Spec model.Spec
	GPU  *GPU
	Offs []int64 // device address of each tensor

	// Iteration tracks the training step whose weights currently occupy
	// the tensors (advanced by ApplyUpdate).
	Iteration uint64
}

// Place allocates every tensor of spec on g and fills iteration-0
// weights.
func Place(g *GPU, spec model.Spec) (*PlacedModel, error) {
	p := &PlacedModel{Spec: spec, GPU: g, Offs: make([]int64, len(spec.Tensors))}
	for i, tm := range spec.Tensors {
		off, err := g.PlaceTensor(tm.Size)
		if err != nil {
			return nil, fmt.Errorf("gpu: placing %s: %w", tm.Name, err)
		}
		p.Offs[i] = off
	}
	p.ApplyUpdate(0)
	return p, nil
}

// ApplyUpdate simulates the optimizer's update phase: every tensor's
// content becomes the deterministic weights of the given iteration.
func (p *PlacedModel) ApplyUpdate(iteration uint64) {
	p.Iteration = iteration
	for i, tm := range p.Spec.Tensors {
		p.GPU.FillTensor(p.Offs[i], tm.Size, p.Spec.TensorSeed(i, iteration))
	}
}

// TensorStamp returns the content fingerprint of tensor i as currently
// resident on the GPU.
func (p *PlacedModel) TensorStamp(i int) uint64 {
	return p.GPU.Mem().StampOf(p.Offs[i], p.Spec.Tensors[i].Size)
}

// ExpectedStamp returns the fingerprint tensor i must have when holding
// iteration's weights (mode-aware: pattern hash when materialized, raw
// seed otherwise).
func (p *PlacedModel) ExpectedStamp(i int, iteration uint64) uint64 {
	seed := p.Spec.TensorSeed(i, iteration)
	if p.GPU.Mem().Materialized() {
		return PatternStamp(p.Spec.Tensors[i].Size, seed)
	}
	return seed
}

// VerifyIteration checks every tensor holds exactly iteration's weights,
// returning the first mismatching tensor index, or -1.
func (p *PlacedModel) VerifyIteration(iteration uint64) int {
	for i := range p.Spec.Tensors {
		if p.TensorStamp(i) != p.ExpectedStamp(i, iteration) {
			return i
		}
	}
	return -1
}
