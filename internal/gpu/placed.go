package gpu

import (
	"fmt"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/model"
)

// PlacedModel is a model whose tensors live at fixed addresses in one
// GPU's memory — the framework-allocated layout whose stability Portus
// exploits to register memory regions once per training job.
type PlacedModel struct {
	Spec model.Spec
	GPU  *GPU
	Offs []int64 // device address of each tensor

	// Iteration tracks the training step whose weights currently occupy
	// the tensors (advanced by ApplyUpdate).
	Iteration uint64
}

// Place allocates every tensor of spec on g and fills iteration-0
// weights.
func Place(g *GPU, spec model.Spec) (*PlacedModel, error) {
	p := &PlacedModel{Spec: spec, GPU: g, Offs: make([]int64, len(spec.Tensors))}
	for i, tm := range spec.Tensors {
		off, err := g.PlaceTensor(tm.Size)
		if err != nil {
			return nil, fmt.Errorf("gpu: placing %s: %w", tm.Name, err)
		}
		p.Offs[i] = off
	}
	p.ApplyUpdate(0)
	return p, nil
}

// ApplyUpdate simulates the optimizer's update phase: every tensor's
// content becomes the deterministic weights of the given iteration.
func (p *PlacedModel) ApplyUpdate(iteration uint64) {
	p.Iteration = iteration
	for i, tm := range p.Spec.Tensors {
		p.GPU.FillTensor(p.Offs[i], tm.Size, p.Spec.TensorSeed(i, iteration))
	}
}

// ApplySparseUpdate simulates an iteration that touches only a fraction
// of the weights — the sparse/embedding/frozen-layer regime incremental
// checkpointing exploits. Across all tensors, each block-aligned range
// of blockBytes is rewritten with probability rate (deterministically,
// from the iteration and a per-block hash), receiving content derived
// from (block, iteration). Blocks never span tensors, matching the
// delta subsystem's digest layout, so a dirty block dirties exactly one
// digest.
func (p *PlacedModel) ApplySparseUpdate(iteration uint64, blockBytes int64, rate float64) {
	p.Iteration = iteration
	mem := p.GPU.Mem()
	// Tensors are bump-allocated in placement order, so collecting the
	// dirty blocks tensor-by-tensor yields an ascending batch; virtual
	// devices apply it in one merge pass instead of a write per block.
	var batch []memdev.StampRegion
	for i, tm := range p.Spec.Tensors {
		base := p.Offs[i]
		for off := int64(0); off < tm.Size; off += blockBytes {
			n := blockBytes
			if tm.Size-off < n {
				n = tm.Size - off
			}
			if !blockDirty(p.Spec.TensorSeed(i, 0), uint64(off/blockBytes), iteration, rate) {
				continue
			}
			seed := blockSeed(p.Spec.TensorSeed(i, iteration), uint64(off/blockBytes))
			if mem.Materialized() {
				FillRegion(mem, base+off, n, seed)
			} else {
				batch = append(batch, memdev.StampRegion{Off: base + off, N: n, Stamp: seed})
			}
		}
	}
	mem.WriteStampBatch(batch)
}

// blockDirty decides deterministically whether a block mutates this
// iteration: a splitmix64 hash of (tensor identity, block index,
// iteration) compared against rate.
func blockDirty(tensorID, block, iteration uint64, rate float64) bool {
	x := tensorID ^ block*0x9e3779b97f4a7c15 ^ iteration*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < rate
}

// blockSeed derives a per-block content seed so neighboring dirty
// blocks never carry equal stamps (equal stamps would let memdev
// coalesce them into a region the digest layout does not expect).
func blockSeed(tensorSeed, block uint64) uint64 {
	x := tensorSeed + block*0x9e3779b97f4a7c15 + 1
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockDigests returns the model's flattened per-block digest vector at
// the given block size: one memdev fingerprint per blockBytes-sized
// range of every tensor, in registration order — exactly what a delta
// client ships with DO_CHECKPOINT.
func (p *PlacedModel) BlockDigests(blockBytes int64) []uint64 {
	var out []uint64
	mem := p.GPU.Mem()
	for i, tm := range p.Spec.Tensors {
		base := p.Offs[i]
		for off := int64(0); off < tm.Size; off += blockBytes {
			n := blockBytes
			if tm.Size-off < n {
				n = tm.Size - off
			}
			out = append(out, mem.Fingerprint(base+off, n))
		}
	}
	return out
}

// VerifyDigests compares the model's current per-block digests against
// a previously captured vector, returning the index of the first
// mismatching block, or -1. This is the restore check for sparsely
// updated content, where no single iteration's ExpectedStamp describes
// a tensor.
func (p *PlacedModel) VerifyDigests(blockBytes int64, want []uint64) int {
	got := p.BlockDigests(blockBytes)
	if len(got) != len(want) {
		return 0
	}
	for i := range got {
		if got[i] != want[i] {
			return i
		}
	}
	return -1
}

// TensorStamp returns the content fingerprint of tensor i as currently
// resident on the GPU.
func (p *PlacedModel) TensorStamp(i int) uint64 {
	return p.GPU.Mem().StampOf(p.Offs[i], p.Spec.Tensors[i].Size)
}

// ExpectedStamp returns the fingerprint tensor i must have when holding
// iteration's weights (mode-aware: pattern hash when materialized, raw
// seed otherwise).
func (p *PlacedModel) ExpectedStamp(i int, iteration uint64) uint64 {
	seed := p.Spec.TensorSeed(i, iteration)
	if p.GPU.Mem().Materialized() {
		return PatternStamp(p.Spec.Tensors[i].Size, seed)
	}
	return seed
}

// VerifyIteration checks every tensor holds exactly iteration's weights,
// returning the first mismatching tensor index, or -1.
func (p *PlacedModel) VerifyIteration(iteration uint64) int {
	for i := range p.Spec.Tensors {
		if p.TensorStamp(i) != p.ExpectedStamp(i, iteration) {
			return i
		}
	}
	return -1
}
