// Package gpu models the compute-node GPUs whose memory Portus
// checkpoints. A GPU owns a memdev device for its HBM; tensors are
// placed with a bump allocator exactly as a framework's caching
// allocator pre-allocates them, and their addresses stay fixed for the
// lifetime of a training job — the property Portus exploits to register
// memory regions once (§III-C).
//
// Remote-access asymmetry (the 5.8 GB/s BAR read cap, writes unaffected)
// is charged by the rdma layer based on the device kind; this package
// only holds state.
package gpu

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"github.com/portus-sys/portus/internal/memdev"
)

// GPU is one device on a compute node.
type GPU struct {
	id  string
	mem *memdev.Device
}

// New creates a GPU with the given HBM capacity. materialized selects
// real bytes versus stamp tracking for its memory.
func New(id string, hbmBytes int64, materialized bool) *GPU {
	return &GPU{id: id, mem: memdev.New("gpu:"+id, memdev.GPU, hbmBytes, materialized)}
}

// ID returns the GPU's identifier.
func (g *GPU) ID() string { return g.id }

// Mem returns the GPU's memory device, registrable as RDMA MRs.
func (g *GPU) Mem() *memdev.Device { return g.mem }

// PlaceTensor reserves size bytes of HBM for a tensor and returns its
// device address.
func (g *GPU) PlaceTensor(size int64) (int64, error) {
	off, err := g.mem.Alloc(size)
	if err != nil {
		return 0, fmt.Errorf("gpu %s: %w", g.id, err)
	}
	return off, nil
}

// FillTensor writes deterministic synthetic content derived from seed
// into [off, off+n): real pattern bytes on a materialized device, a
// content stamp otherwise. Content written with equal seeds compares
// equal under memdev.Device.StampOf in either mode.
func (g *GPU) FillTensor(off, n int64, seed uint64) {
	FillRegion(g.mem, off, n, seed)
}

// FillRegion is FillTensor for an arbitrary device (exported for tests
// of other packages that need deterministic content).
func FillRegion(d *memdev.Device, off, n int64, seed uint64) {
	if !d.Materialized() {
		d.WriteStamp(off, n, seed)
		return
	}
	d.Write(off, Pattern(n, seed))
}

// Pattern returns n deterministic bytes derived from seed (a splitmix64
// stream), used as synthetic tensor weights.
func Pattern(n int64, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	var word [8]byte
	for i := int64(0); i < n; i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(word[:], z)
		copy(out[i:], word[:])
	}
	return out
}

// PatternStamp returns the FNV-64a hash of Pattern(n, seed), i.e. the
// stamp a materialized device reports for that content. Virtual devices
// report seed itself; tests should compare stamps within one mode.
func PatternStamp(n int64, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write(Pattern(n, seed))
	return h.Sum64()
}
