package gpu

import (
	"testing"

	"github.com/portus-sys/portus/internal/model"
)

func placedFixture(t *testing.T, materialized bool) *PlacedModel {
	t.Helper()
	g := New("g0", 64<<20, materialized)
	p, err := Place(g, model.GPT("m", 2, 64, 256, 0))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlaceFillsIterationZero(t *testing.T) {
	p := placedFixture(t, true)
	if p.Iteration != 0 {
		t.Fatalf("fresh iteration = %d", p.Iteration)
	}
	if bad := p.VerifyIteration(0); bad != -1 {
		t.Fatalf("tensor %d does not hold iteration-0 weights", bad)
	}
}

func TestApplyUpdateChangesEveryTensor(t *testing.T) {
	p := placedFixture(t, true)
	before := make([]uint64, len(p.Offs))
	for i := range p.Offs {
		before[i] = p.TensorStamp(i)
	}
	p.ApplyUpdate(1)
	for i := range p.Offs {
		if p.TensorStamp(i) == before[i] {
			t.Fatalf("tensor %d unchanged by update", i)
		}
	}
	if bad := p.VerifyIteration(1); bad != -1 {
		t.Fatalf("tensor %d wrong after update", bad)
	}
	if p.VerifyIteration(0) == -1 {
		t.Fatal("old iteration still verifies after update")
	}
}

func TestExpectedStampModeAware(t *testing.T) {
	mat := placedFixture(t, true)
	virt := placedFixture(t, false)
	// Materialized: stamp is the pattern hash; virtual: the raw seed.
	if mat.ExpectedStamp(0, 3) == mat.Spec.TensorSeed(0, 3) {
		t.Fatal("materialized expected stamp should be hashed, not the seed")
	}
	if virt.ExpectedStamp(0, 3) != virt.Spec.TensorSeed(0, 3) {
		t.Fatal("virtual expected stamp should be the seed")
	}
}

func TestPlaceFailsWhenHBMExhausted(t *testing.T) {
	g := New("tiny", 1<<10, false)
	if _, err := Place(g, model.GPT("m", 2, 64, 256, 0)); err == nil {
		t.Fatal("placement into 1KiB HBM succeeded")
	}
}
