package gpu

import (
	"bytes"
	"testing"

	"github.com/portus-sys/portus/internal/memdev"
)

func TestPlaceTensorAddressesAreStable(t *testing.T) {
	g := New("v100-0", 1<<20, true)
	a, err := g.PlaceTensor(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.PlaceTensor(2000)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1000 {
		t.Fatalf("tensor addresses = %d, %d", a, b)
	}
	if _, err := g.PlaceTensor(1 << 21); err == nil {
		t.Fatal("oversized placement succeeded")
	}
}

func TestPatternDeterministic(t *testing.T) {
	p1 := Pattern(4096, 42)
	p2 := Pattern(4096, 42)
	if !bytes.Equal(p1, p2) {
		t.Fatal("Pattern is not deterministic")
	}
	p3 := Pattern(4096, 43)
	if bytes.Equal(p1, p3) {
		t.Fatal("different seeds produced identical patterns")
	}
	if len(Pattern(7, 1)) != 7 {
		t.Fatal("Pattern length wrong for non-multiple-of-8 sizes")
	}
}

func TestFillTensorMaterializedMatchesStamp(t *testing.T) {
	g := New("a40-0", 1<<20, true)
	off, _ := g.PlaceTensor(8192)
	g.FillTensor(off, 8192, 7)
	want := PatternStamp(8192, 7)
	if got := g.Mem().StampOf(off, 8192); got != want {
		t.Fatalf("materialized stamp = %#x, want %#x", got, want)
	}
}

func TestFillTensorVirtualUsesSeedAsStamp(t *testing.T) {
	g := New("a40-1", 1<<40, false)
	off, _ := g.PlaceTensor(1 << 30)
	g.FillTensor(off, 1<<30, 99)
	if got := g.Mem().StampOf(off, 1<<30); got != 99 {
		t.Fatalf("virtual stamp = %d, want 99", got)
	}
}

func TestFillRegionOnArbitraryDevice(t *testing.T) {
	d := memdev.New("host", memdev.DRAM, 4096, true)
	FillRegion(d, 0, 64, 5)
	if !bytes.Equal(d.Bytes(0, 64), Pattern(64, 5)) {
		t.Fatal("FillRegion content mismatch")
	}
}
