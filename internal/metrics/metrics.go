// Package metrics collects and summarizes execution timelines: GPU
// busy/idle spans, utilization series (Figure 16's 500-second traces),
// and throughput accounting.
package metrics

import (
	"fmt"
	"time"
)

// Span is one contiguous interval of GPU activity.
type Span struct {
	Start, End time.Duration
	Busy       bool
}

// Timeline records alternating busy/idle GPU spans.
type Timeline struct {
	spans []Span
}

// Add appends a span; zero-length spans are dropped.
func (t *Timeline) Add(start, end time.Duration, busy bool) {
	if end <= start {
		return
	}
	// Merge with the previous span when contiguous and same state.
	if n := len(t.spans); n > 0 && t.spans[n-1].End == start && t.spans[n-1].Busy == busy {
		t.spans[n-1].End = end
		return
	}
	t.spans = append(t.spans, Span{Start: start, End: end, Busy: busy})
}

// Spans returns the recorded spans.
func (t *Timeline) Spans() []Span { return t.spans }

// End returns the end of the last span.
func (t *Timeline) End() time.Duration {
	if len(t.spans) == 0 {
		return 0
	}
	return t.spans[len(t.spans)-1].End
}

// BusyWithin reports the busy time inside [lo, hi).
func (t *Timeline) BusyWithin(lo, hi time.Duration) time.Duration {
	var busy time.Duration
	for _, s := range t.spans {
		if !s.Busy || s.End <= lo || s.Start >= hi {
			continue
		}
		a, b := s.Start, s.End
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		busy += b - a
	}
	return busy
}

// Utilization reports overall busy fraction in [0, End()).
func (t *Timeline) Utilization() float64 {
	end := t.End()
	if end == 0 {
		return 0
	}
	return float64(t.BusyWithin(0, end)) / float64(end)
}

// Series samples utilization per step over [0, window): the data behind
// Figure 16's per-second utilization trace.
func (t *Timeline) Series(window, step time.Duration) []float64 {
	if step <= 0 {
		return nil
	}
	var out []float64
	for lo := time.Duration(0); lo < window; lo += step {
		hi := lo + step
		out = append(out, float64(t.BusyWithin(lo, hi))/float64(step))
	}
	return out
}

// Mean averages a series.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FormatDuration renders a duration compactly for report tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
