package metrics

import (
	"testing"
	"time"
)

func TestTimelineUtilization(t *testing.T) {
	var tl Timeline
	tl.Add(0, 3*time.Second, true)
	tl.Add(3*time.Second, 4*time.Second, false)
	if got := tl.Utilization(); got != 0.75 {
		t.Fatalf("Utilization = %v, want 0.75", got)
	}
	if tl.End() != 4*time.Second {
		t.Fatalf("End = %v", tl.End())
	}
}

func TestTimelineMergesContiguousSpans(t *testing.T) {
	var tl Timeline
	tl.Add(0, time.Second, true)
	tl.Add(time.Second, 2*time.Second, true)
	tl.Add(2*time.Second, 3*time.Second, false)
	if got := len(tl.Spans()); got != 2 {
		t.Fatalf("spans = %d, want 2 after merge", got)
	}
}

func TestTimelineDropsEmptySpans(t *testing.T) {
	var tl Timeline
	tl.Add(time.Second, time.Second, true)
	tl.Add(2*time.Second, time.Second, true) // end < start
	if len(tl.Spans()) != 0 {
		t.Fatal("degenerate spans recorded")
	}
}

func TestBusyWithinClipsBoundaries(t *testing.T) {
	var tl Timeline
	tl.Add(0, 10*time.Second, true)
	if got := tl.BusyWithin(4*time.Second, 6*time.Second); got != 2*time.Second {
		t.Fatalf("BusyWithin = %v, want 2s", got)
	}
	if got := tl.BusyWithin(8*time.Second, 15*time.Second); got != 2*time.Second {
		t.Fatalf("BusyWithin clipped = %v, want 2s", got)
	}
}

func TestSeries(t *testing.T) {
	var tl Timeline
	tl.Add(0, time.Second, true)
	tl.Add(time.Second, 2*time.Second, false)
	got := tl.Series(2*time.Second, time.Second)
	if len(got) != 2 || got[0] != 1.0 || got[1] != 0.0 {
		t.Fatalf("Series = %v", got)
	}
	if tl.Series(time.Second, 0) != nil {
		t.Fatal("zero step should return nil")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.50s",
		1500 * time.Microsecond: "1.5ms",
		800 * time.Nanosecond:   "1µs",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		3 << 30:  "3.0GiB",
		97 << 20: "97MiB",
		4 << 10:  "4KiB",
		100:      "100B",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
