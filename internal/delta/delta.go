// Package delta implements block-level incremental checkpointing: every
// tensor is cut into fixed-size blocks, each block gets a 64-bit content
// digest, and a three-way diff between the incoming digest vector and
// the digest tables persisted for the two version slots decides, per
// block, whether it must be pulled over RDMA (content changed on the
// client), copy-forwarded locally in PMem (unchanged, but the target
// slot holds an older version), or skipped entirely (the target slot
// already holds it).
//
// Blocks never span tensors: tensor i contributes ceil(size_i/block)
// blocks, the last one possibly short, and the model's digest vector is
// the concatenation of the per-tensor block digests in registration
// order. A layout hash over (block size, tensor sizes) guards every
// comparison — vectors from different layouts are never diffed, they
// force a full checkpoint instead.
//
// The package is pure data-plane math: it knows nothing about PMem,
// RDMA, or the wire protocol. The client computes digests over GPU
// memory, the daemon persists the client's vector verbatim alongside the
// version header (package index) and plans transfers from the diff
// (package datapath).
package delta

import (
	"encoding/binary"
	"hash/fnv"
)

// DefaultBlockBytes is the digest granularity when none is configured.
// 64 KiB balances digest-table size (16 B/MiB of model) against the
// per-block false-sharing cost of pulling a whole block for a one-byte
// change.
const DefaultBlockBytes = 64 << 10

// BlockCount returns the total number of digest blocks for the given
// tensor sizes: the per-tensor ceiling division, summed.
func BlockCount(sizes []int64, block int64) int {
	var n int64
	for _, s := range sizes {
		n += (s + block - 1) / block
	}
	return int(n)
}

// LayoutHash fingerprints the blocking layout (block size plus every
// tensor size, in order). Two digest vectors are comparable only when
// their layout hashes agree.
func LayoutHash(sizes []int64, block int64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(block))
	h.Write(b[:])
	for _, s := range sizes {
		binary.LittleEndian.PutUint64(b[:], uint64(s))
		h.Write(b[:])
	}
	return h.Sum64()
}

// AppendDigests appends one digest per block of a tensor occupying
// [base, base+size) to dst and returns the extended slice. fp is the
// device's content fingerprint (memdev.Device.Fingerprint).
func AppendDigests(dst []uint64, fp func(off, n int64) uint64, base, size, block int64) []uint64 {
	for off := int64(0); off < size; off += block {
		n := block
		if size-off < n {
			n = size - off
		}
		dst = append(dst, fp(base+off, n))
	}
	return dst
}

// Extent is one contiguous dirty byte range within a single tensor, in
// tensor-relative coordinates. Adjacent dirty blocks of the same tensor
// merge into one extent.
type Extent struct {
	Tensor    int
	TensorOff int64
	Size      int64
}

// Diff is the transfer plan a three-way digest comparison yields: Pull
// extents must move client→PMem over the fabric, Copy extents are
// satisfied locally by copying active-slot→target-slot in PMem, and
// SkipBytes counts content the target slot already holds.
type Diff struct {
	Pull      []Extent
	Copy      []Extent
	PullBytes int64
	CopyBytes int64
	SkipBytes int64
}

// ThreeWay diffs the incoming digest vector against the active slot's
// table (what the newest committed checkpoint holds) and the target
// slot's table (what the slot about to be overwritten holds). target may
// be nil — an untrusted or missing target table — in which case nothing
// is skipped: every clean block is copy-forwarded. incoming and active
// must be BlockCount(sizes, block) long; callers enforce that via
// LayoutHash before diffing.
func ThreeWay(sizes []int64, block int64, incoming, active, target []uint64) Diff {
	var d Diff
	idx := 0
	for ti, size := range sizes {
		for off := int64(0); off < size; off += block {
			n := block
			if size-off < n {
				n = size - off
			}
			in := incoming[idx]
			switch {
			case in != active[idx]:
				d.Pull = appendExtent(d.Pull, ti, off, n)
				d.PullBytes += n
			case target != nil && target[idx] == in:
				d.SkipBytes += n
			default:
				d.Copy = appendExtent(d.Copy, ti, off, n)
				d.CopyBytes += n
			}
			idx++
		}
	}
	return d
}

func appendExtent(list []Extent, tensor int, off, n int64) []Extent {
	if k := len(list) - 1; k >= 0 && list[k].Tensor == tensor && list[k].TensorOff+list[k].Size == off {
		list[k].Size += n
		return list
	}
	return append(list, Extent{Tensor: tensor, TensorOff: off, Size: n})
}

// Table is one slot's persisted digest record: the client's digest
// vector at the checkpoint that slot holds, plus everything needed to
// decide whether it is comparable with an incoming vector.
type Table struct {
	BlockBytes int64
	Iteration  uint64
	Layout     uint64
	Digests    []uint64
}

// Matches reports whether the table is comparable with a vector computed
// under (block, layout, count).
func (t *Table) Matches(block int64, layout uint64, count int) bool {
	return t != nil && t.BlockBytes == block && t.Layout == layout && len(t.Digests) == count
}
