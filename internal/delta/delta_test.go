package delta

import (
	"reflect"
	"testing"
)

func TestBlockCount(t *testing.T) {
	for _, tc := range []struct {
		sizes []int64
		block int64
		want  int
	}{
		{[]int64{64, 64}, 64, 2},
		{[]int64{65, 64}, 64, 3},
		{[]int64{1}, 64, 1},
		{[]int64{}, 64, 0},
		{[]int64{1000}, 256, 4},
	} {
		if got := BlockCount(tc.sizes, tc.block); got != tc.want {
			t.Errorf("BlockCount(%v, %d) = %d, want %d", tc.sizes, tc.block, got, tc.want)
		}
	}
}

func TestLayoutHashDiscriminates(t *testing.T) {
	a := LayoutHash([]int64{100, 200}, 64)
	if a != LayoutHash([]int64{100, 200}, 64) {
		t.Fatal("layout hash not deterministic")
	}
	for _, other := range []uint64{
		LayoutHash([]int64{100, 200}, 128), // different block size
		LayoutHash([]int64{200, 100}, 64),  // different order
		LayoutHash([]int64{100}, 64),       // different tensor count
	} {
		if other == a {
			t.Fatal("layout hash collision across different layouts")
		}
	}
}

func TestAppendDigests(t *testing.T) {
	var calls [][2]int64
	fp := func(off, n int64) uint64 {
		calls = append(calls, [2]int64{off, n})
		return uint64(off)<<32 | uint64(n)
	}
	got := AppendDigests(nil, fp, 1000, 250, 100)
	if len(got) != 3 {
		t.Fatalf("got %d digests, want 3", len(got))
	}
	wantCalls := [][2]int64{{1000, 100}, {1100, 100}, {1200, 50}}
	if !reflect.DeepEqual(calls, wantCalls) {
		t.Fatalf("fingerprint calls %v, want %v", calls, wantCalls)
	}
}

func TestThreeWay(t *testing.T) {
	sizes := []int64{300, 150} // blocks: t0: 3x100, t1: 100+50
	block := int64(100)
	// Block layout: [t0b0 t0b1 t0b2 t1b0 t1b1]
	incoming := []uint64{1, 2, 3, 4, 5}
	active := []uint64{1, 9, 9, 4, 5} // t0b1,t0b2 dirty
	target := []uint64{1, 0, 0, 0, 5} // holds t0b0 and t1b1 already

	d := ThreeWay(sizes, block, incoming, active, target)
	wantPull := []Extent{{Tensor: 0, TensorOff: 100, Size: 200}} // merged b1+b2
	wantCopy := []Extent{{Tensor: 1, TensorOff: 0, Size: 100}}   // t1b0
	if !reflect.DeepEqual(d.Pull, wantPull) {
		t.Errorf("pull = %+v, want %+v", d.Pull, wantPull)
	}
	if !reflect.DeepEqual(d.Copy, wantCopy) {
		t.Errorf("copy = %+v, want %+v", d.Copy, wantCopy)
	}
	if d.PullBytes != 200 || d.CopyBytes != 100 || d.SkipBytes != 150 {
		t.Errorf("bytes pull/copy/skip = %d/%d/%d, want 200/100/150",
			d.PullBytes, d.CopyBytes, d.SkipBytes)
	}

	// Untrusted target: nothing skips, every clean block copies.
	d = ThreeWay(sizes, block, incoming, active, nil)
	if d.SkipBytes != 0 || d.CopyBytes != 250 || d.PullBytes != 200 {
		t.Errorf("nil-target bytes pull/copy/skip = %d/%d/%d, want 200/250/0",
			d.PullBytes, d.CopyBytes, d.SkipBytes)
	}

	// Extents never cross tensor boundaries even when block indices are
	// adjacent.
	incoming2 := []uint64{1, 2, 9, 9, 5}
	active2 := []uint64{1, 2, 3, 4, 5}
	d = ThreeWay(sizes, block, incoming2, active2, nil)
	wantPull = []Extent{{Tensor: 0, TensorOff: 200, Size: 100}, {Tensor: 1, TensorOff: 0, Size: 100}}
	if !reflect.DeepEqual(d.Pull, wantPull) {
		t.Errorf("cross-tensor pull = %+v, want %+v", d.Pull, wantPull)
	}
}

func TestTableMatches(t *testing.T) {
	tab := &Table{BlockBytes: 64, Layout: 7, Digests: make([]uint64, 5)}
	if !tab.Matches(64, 7, 5) {
		t.Fatal("matching table rejected")
	}
	if tab.Matches(128, 7, 5) || tab.Matches(64, 8, 5) || tab.Matches(64, 7, 4) {
		t.Fatal("mismatched table accepted")
	}
	var nilTab *Table
	if nilTab.Matches(64, 7, 5) {
		t.Fatal("nil table matched")
	}
}
