package train

import (
	"fmt"

	"github.com/portus-sys/portus/internal/sim"
)

// Fleet fans a checkpoint policy out over the ranks of a model-parallel
// job: every shard checkpoints concurrently (as Megatron ranks do), and
// the training loop's stall is the slowest rank's stall — the
// synchronization overhead the paper highlights for distributed
// checkpoints (§II-A).
type Fleet struct {
	Members []Checkpointer
	label   string
}

// NewFleet groups per-shard checkpointers under one policy.
func NewFleet(label string, members []Checkpointer) *Fleet {
	return &Fleet{Members: members, label: label}
}

// Name identifies the fleet.
func (f *Fleet) Name() string {
	return fmt.Sprintf("%s x%d", f.label, len(f.Members))
}

// fanOut runs op on every member concurrently and waits for all.
func (f *Fleet) fanOut(env sim.Env, op func(i int, m Checkpointer, env sim.Env) error) error {
	g := sim.NewGroup(env)
	errs := make([]error, len(f.Members))
	for i, m := range f.Members {
		i, m := i, m
		g.Add(env, 1)
		env.Go("fleet-rank", func(env sim.Env) {
			defer g.Done(env)
			errs[i] = op(i, m, env)
		})
	}
	g.Wait(env)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint triggers every rank's checkpoint and waits for all ranks to
// return (synchronous members block here; asynchronous members only
// trigger).
func (f *Fleet) Checkpoint(env sim.Env, iteration uint64) error {
	return f.fanOut(env, func(_ int, m Checkpointer, env sim.Env) error {
		return m.Checkpoint(env, iteration)
	})
}

// BeforeUpdate runs every rank's update barrier.
func (f *Fleet) BeforeUpdate(env sim.Env, iteration uint64) {
	_ = f.fanOut(env, func(_ int, m Checkpointer, env sim.Env) error {
		m.BeforeUpdate(env, iteration)
		return nil
	})
}

// Drain completes all ranks' background work.
func (f *Fleet) Drain(env sim.Env) {
	_ = f.fanOut(env, func(_ int, m Checkpointer, env sim.Env) error {
		m.Drain(env)
		return nil
	})
}

// Restore reloads every shard and returns their common iteration; ranks
// disagreeing on the restored iteration is a consistency violation.
func (f *Fleet) Restore(env sim.Env) (uint64, error) {
	iters := make([]uint64, len(f.Members))
	err := f.fanOut(env, func(i int, m Checkpointer, env sim.Env) error {
		it, err := m.Restore(env)
		iters[i] = it
		return err
	})
	if err != nil {
		return 0, err
	}
	for _, it := range iters[1:] {
		if it != iters[0] {
			return 0, fmt.Errorf("train: shards restored inconsistent iterations %d and %d", iters[0], it)
		}
	}
	return iters[0], nil
}
