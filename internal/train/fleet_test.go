package train_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/train"
)

// stubPolicy is a scripted checkpointer for fleet unit tests.
type stubPolicy struct {
	name        string
	ckptDelay   time.Duration
	restoreIter uint64
	checkpoints int
	barriers    int
	drains      int
	failOn      uint64
}

func (s *stubPolicy) Name() string { return s.name }

func (s *stubPolicy) Checkpoint(env sim.Env, iteration uint64) error {
	s.checkpoints++
	if s.failOn != 0 && iteration == s.failOn {
		return fmt.Errorf("%s: scripted failure at %d", s.name, iteration)
	}
	env.Sleep(s.ckptDelay)
	return nil
}

func (s *stubPolicy) BeforeUpdate(env sim.Env, iteration uint64) { s.barriers++ }
func (s *stubPolicy) Drain(env sim.Env)                          { s.drains++ }
func (s *stubPolicy) Restore(env sim.Env) (uint64, error)        { return s.restoreIter, nil }

func TestFleetStallIsSlowestRank(t *testing.T) {
	eng := sim.NewEngine()
	var elapsed time.Duration
	members := []*stubPolicy{
		{name: "r0", ckptDelay: 10 * time.Millisecond, restoreIter: 1},
		{name: "r1", ckptDelay: 80 * time.Millisecond, restoreIter: 1},
		{name: "r2", ckptDelay: 30 * time.Millisecond, restoreIter: 1},
	}
	eng.Go("test", func(env sim.Env) {
		var cs []train.Checkpointer
		for _, m := range members {
			cs = append(cs, m)
		}
		fleet := train.NewFleet("stub", cs)
		start := env.Now()
		if err := fleet.Checkpoint(env, 1); err != nil {
			t.Fatal(err)
		}
		elapsed = env.Now() - start
	})
	eng.Run()
	if elapsed != 80*time.Millisecond {
		t.Fatalf("fleet checkpoint took %v, want the slowest rank's 80ms", elapsed)
	}
	for _, m := range members {
		if m.checkpoints != 1 {
			t.Fatalf("%s ran %d checkpoints", m.name, m.checkpoints)
		}
	}
}

func TestFleetPropagatesMemberFailure(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		fleet := train.NewFleet("stub", []train.Checkpointer{
			&stubPolicy{name: "ok"},
			&stubPolicy{name: "bad", failOn: 7},
		})
		if err := fleet.Checkpoint(env, 7); err == nil || !strings.Contains(err.Error(), "scripted failure") {
			t.Fatalf("fleet err = %v", err)
		}
	})
	eng.Run()
}

func TestFleetRestoreConsistencyCheck(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		agree := train.NewFleet("stub", []train.Checkpointer{
			&stubPolicy{restoreIter: 9},
			&stubPolicy{restoreIter: 9},
		})
		if iter, err := agree.Restore(env); err != nil || iter != 9 {
			t.Fatalf("agreeing fleet restore = %d, %v", iter, err)
		}
		disagree := train.NewFleet("stub", []train.Checkpointer{
			&stubPolicy{restoreIter: 9},
			&stubPolicy{restoreIter: 8},
		})
		if _, err := disagree.Restore(env); err == nil || !strings.Contains(err.Error(), "inconsistent") {
			t.Fatalf("disagreeing fleet restore err = %v", err)
		}
	})
	eng.Run()
}

func TestFleetFansOutBarriersAndDrains(t *testing.T) {
	eng := sim.NewEngine()
	a := &stubPolicy{name: "a"}
	b := &stubPolicy{name: "b"}
	eng.Go("test", func(env sim.Env) {
		fleet := train.NewFleet("stub", []train.Checkpointer{a, b})
		fleet.BeforeUpdate(env, 1)
		fleet.BeforeUpdate(env, 2)
		fleet.Drain(env)
	})
	eng.Run()
	if a.barriers != 2 || b.barriers != 2 || a.drains != 1 || b.drains != 1 {
		t.Fatalf("fanout counts: a=%+v b=%+v", a, b)
	}
}

func TestFleetName(t *testing.T) {
	fleet := train.NewFleet("portus-async", make([]train.Checkpointer, 16))
	if got := fleet.Name(); got != "portus-async x16" {
		t.Fatalf("Name = %q", got)
	}
}
