// Package train simulates DNN training loops at iteration granularity:
// forward pass (F), backpropagation (B), and parameter update (U), with
// checkpoint policies hooked between B and U exactly where frameworks
// trigger them (§III-E, Figure 8). The loop accounts GPU busy time
// versus checkpoint stalls, producing the throughput and utilization
// numbers behind Figures 2, 15, and 16, and supports failure injection
// with restore-based recovery.
package train

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
)

// Checkpointer is the policy hook the loop drives. Implementations:
// baseline.TorchSave, baseline.CheckFreq, client.Sync, client.Async.
type Checkpointer interface {
	Name() string
	// Checkpoint triggers persistence of iteration's weights; it is
	// called between backward and update. Time spent inside counts as a
	// training stall.
	Checkpoint(env sim.Env, iteration uint64) error
	// BeforeUpdate is called before every update phase — the WAR
	// barrier for asynchronous policies.
	BeforeUpdate(env sim.Env, iteration uint64)
	// Drain completes outstanding background work.
	Drain(env sim.Env)
	// Restore reloads the newest checkpoint, returning its iteration.
	Restore(env sim.Env) (uint64, error)
}

// Phase split of one iteration (Figure 8): forward, backward, update.
const (
	forwardFrac = 0.30
	updateFrac  = 0.20
)

// Config drives one training run.
type Config struct {
	Spec model.Spec
	// Placed, when set, receives real weight updates each iteration so
	// checkpoint content is verifiable end-to-end.
	Placed *gpu.PlacedModel
	// Policy is the checkpointer; nil trains without checkpoints.
	Policy Checkpointer
	// Interval checkpoints every N iterations (0 = never).
	Interval int
	// Iterations is the number of steps to run.
	Iterations int
	// StartIteration numbers the first step (useful after restore).
	StartIteration uint64
	// FailAt injects a crash after iteration FailAt completes its F and
	// B phases (0 = no failure). Recovery restores the newest
	// checkpoint and replays lost iterations.
	FailAt int
	// FailEvery injects a crash every FailEvery executed iterations —
	// the sustained-churn regime of Oobleck/Bamboo (a failure every few
	// minutes, §I). Mutually exclusive with FailAt.
	FailEvery int
}

// Result summarizes a run.
type Result struct {
	Iterations  int
	Elapsed     time.Duration
	ComputeTime time.Duration
	StallTime   time.Duration
	Checkpoints int
	// Failures counts injected crashes.
	Failures int
	// LostIterations counts replayed work after injected failures.
	LostIterations int
	RecoveryTime   time.Duration
	Timeline       *metrics.Timeline
}

// Throughput reports iterations per second of wall (virtual) time.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Iterations) / r.Elapsed.Seconds()
}

// GPUUtilization reports the busy fraction of the run.
func (r Result) GPUUtilization() float64 { return r.Timeline.Utilization() }

// Run executes the training loop under env.
func Run(env sim.Env, cfg Config) (Result, error) {
	if cfg.Iterations <= 0 {
		return Result{}, fmt.Errorf("train: no iterations configured")
	}
	if cfg.FailEvery > 0 && cfg.Interval >= cfg.FailEvery {
		// Every inter-failure window must fit at least one checkpoint or
		// the run can replay forever.
		return Result{}, fmt.Errorf("train: checkpoint interval %d must be below failure interval %d",
			cfg.Interval, cfg.FailEvery)
	}
	res := Result{Timeline: &metrics.Timeline{}}
	start := env.Now()

	fTime := time.Duration(float64(cfg.Spec.IterTime) * forwardFrac)
	uTime := time.Duration(float64(cfg.Spec.IterTime) * updateFrac)
	bTime := cfg.Spec.IterTime - fTime - uTime

	busy := func(d time.Duration) {
		t0 := env.Now()
		env.Sleep(d)
		res.Timeline.Add(t0, env.Now(), true)
		res.ComputeTime += d
	}
	stall := func(fn func()) {
		t0 := env.Now()
		fn()
		if env.Now() > t0 {
			res.Timeline.Add(t0, env.Now(), false)
			res.StallTime += env.Now() - t0
		}
	}

	iter := cfg.StartIteration
	done := 0
	failed := false
	executed := 0 // iterations executed since the last failure
	for done < cfg.Iterations {
		iter++
		busy(fTime)
		busy(bTime)

		crashNow := false
		if cfg.FailAt > 0 && !failed && done+1 == cfg.FailAt {
			failed = true
			crashNow = true
		}
		if cfg.FailEvery > 0 && executed+1 == cfg.FailEvery {
			crashNow = true
		}
		if crashNow {
			// Crash: lose in-GPU state, restore the newest checkpoint.
			if cfg.Policy == nil {
				return res, fmt.Errorf("train: failure injected with no checkpointer")
			}
			executed = 0
			res.Failures++
			var restored uint64
			recoverStart := env.Now()
			stall(func() {
				var err error
				restored, err = cfg.Policy.Restore(env)
				if err != nil {
					// No checkpoint yet: restart from scratch.
					restored = cfg.StartIteration
				}
			})
			res.RecoveryTime += env.Now() - recoverStart
			lost := int(iter - 1 - restored)
			res.LostIterations += lost
			done -= lost // lost work must be replayed
			iter = restored
			continue
		}
		executed++

		// The WAR barrier: an asynchronous pull triggered at the end of a
		// previous iteration had this iteration's F and B to finish;
		// the optimizer must not mutate tensors still being read.
		if cfg.Policy != nil {
			stall(func() { cfg.Policy.BeforeUpdate(env, iter) })
		}
		busy(uTime)
		if cfg.Placed != nil {
			cfg.Placed.ApplyUpdate(iter)
		}
		// Checkpoint the just-updated weights at the iteration boundary.
		if cfg.Policy != nil && cfg.Interval > 0 && int(iter)%cfg.Interval == 0 {
			res.Checkpoints++
			stall(func() {
				if err := cfg.Policy.Checkpoint(env, iter); err != nil {
					panic(fmt.Sprintf("train: checkpoint at iter %d: %v", iter, err))
				}
			})
		}
		done++
	}
	if cfg.Policy != nil {
		stall(func() { cfg.Policy.Drain(env) })
	}
	res.Iterations = cfg.Iterations
	res.Elapsed = env.Now() - start
	return res, nil
}

// NoCheckpoint is the null policy: it never persists anything. Restore
// always fails.
type NoCheckpoint struct{}

// Name identifies the policy.
func (NoCheckpoint) Name() string { return "none" }

// Checkpoint does nothing.
func (NoCheckpoint) Checkpoint(env sim.Env, iteration uint64) error { return nil }

// BeforeUpdate does nothing.
func (NoCheckpoint) BeforeUpdate(env sim.Env, iteration uint64) {}

// Drain does nothing.
func (NoCheckpoint) Drain(env sim.Env) {}

// Restore fails: nothing was saved.
func (NoCheckpoint) Restore(env sim.Env) (uint64, error) {
	return 0, fmt.Errorf("train: no checkpointing policy active")
}
