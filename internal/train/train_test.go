package train_test

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/train"
	"github.com/portus-sys/portus/internal/wire"
)

func tinySpec(name string, iterTime time.Duration) model.Spec {
	s := model.GPT(name, 2, 64, 512, iterTime)
	return s
}

func TestRunWithoutCheckpointing(t *testing.T) {
	eng := sim.NewEngine()
	var res train.Result
	eng.Go("t", func(env sim.Env) {
		var err error
		res, err = train.Run(env, train.Config{
			Spec:       tinySpec("m", 100*time.Millisecond),
			Iterations: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if res.Elapsed != time.Second {
		t.Fatalf("10 iterations of 100ms took %v", res.Elapsed)
	}
	if res.GPUUtilization() != 1.0 {
		t.Fatalf("utilization = %.3f, want 1.0 with no checkpointing", res.GPUUtilization())
	}
	if res.StallTime != 0 || res.Checkpoints != 0 {
		t.Fatalf("unexpected stalls/checkpoints: %+v", res)
	}
}

func TestRunRejectsZeroIterations(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("t", func(env sim.Env) {
		if _, err := train.Run(env, train.Config{Spec: tinySpec("m", time.Millisecond)}); err == nil {
			t.Error("zero iterations accepted")
		}
	})
	eng.Run()
}

func TestCheckpointIntervalCounts(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("t", func(env sim.Env) {
		res, err := train.Run(env, train.Config{
			Spec:       tinySpec("m", 10*time.Millisecond),
			Policy:     train.NoCheckpoint{},
			Interval:   5,
			Iterations: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Checkpoints != 4 {
			t.Fatalf("checkpoints = %d, want 4", res.Checkpoints)
		}
	})
	eng.Run()
}

// portusSetup builds a cluster + daemon + registered Portus client for
// training tests.
func portusSetup(t *testing.T, env sim.Env, spec model.Spec) (*gpu.PlacedModel, *client.Client) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 8 << 20, PMemBytes: 32 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(env, daemon.Config{PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric})
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })
	placed, err := gpu.Place(cl.GPU(0, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	return placed, c
}

func TestTrainingWithPortusSyncVerifiesContent(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("t", func(env sim.Env) {
		spec := tinySpec("job", 20*time.Millisecond)
		placed, c := portusSetup(t, env, spec)
		res, err := train.Run(env, train.Config{
			Spec:       spec,
			Placed:     placed,
			Policy:     &client.Sync{C: c},
			Interval:   3,
			Iterations: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Checkpoints != 3 {
			t.Fatalf("checkpoints = %d, want 3", res.Checkpoints)
		}
		if res.StallTime == 0 {
			t.Fatal("sync policy reported no stalls")
		}
		// Restore and confirm the weights equal iteration 9's exactly.
		placed.ApplyUpdate(1000)
		iter, err := c.Restore(env)
		if err != nil || iter != 9 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
		if bad := placed.VerifyIteration(9); bad != -1 {
			t.Fatalf("tensor %d wrong after training restore", bad)
		}
	})
	eng.Run()
}

func TestFailureInjectionRecoversFromLastCheckpoint(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("t", func(env sim.Env) {
		spec := tinySpec("job", 20*time.Millisecond)
		placed, c := portusSetup(t, env, spec)
		res, err := train.Run(env, train.Config{
			Spec:       spec,
			Placed:     placed,
			Policy:     &client.Sync{C: c},
			Interval:   4,
			Iterations: 12,
			FailAt:     10, // crash during iteration 10; last checkpoint at 8
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.LostIterations != 1 {
			// Crash happens in iteration 10 after 9 completed; restore
			// to 8 loses iteration 9.
			t.Fatalf("lost iterations = %d, want 1", res.LostIterations)
		}
		if res.Iterations != 12 {
			t.Fatalf("completed %d iterations, want 12", res.Iterations)
		}
		if res.RecoveryTime == 0 {
			t.Fatal("no recovery time recorded")
		}
		// Final weights are iteration 12's.
		if bad := placed.VerifyIteration(12); bad != -1 {
			t.Fatalf("tensor %d wrong after recovery run", bad)
		}
	})
	eng.Run()
}

func TestAsyncPolicyBeatsSyncThroughput(t *testing.T) {
	// With checkpoints every iteration, Portus-Async must finish the
	// run faster than Portus-Sync (the pull hides behind F+B).
	run := func(mkPolicy func(c *client.Client) train.Checkpointer) train.Result {
		eng := sim.NewEngine()
		var res train.Result
		eng.Go("t", func(env sim.Env) {
			spec := tinySpec("job", 50*time.Millisecond)
			placed, c := portusSetup(t, env, spec)
			_ = placed
			var err error
			res, err = train.Run(env, train.Config{
				Spec:       spec,
				Policy:     mkPolicy(c),
				Interval:   1,
				Iterations: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
		eng.Run()
		return res
	}
	syncRes := run(func(c *client.Client) train.Checkpointer { return &client.Sync{C: c} })
	asyncRes := run(func(c *client.Client) train.Checkpointer { return &client.Async{C: c} })
	if asyncRes.Elapsed >= syncRes.Elapsed {
		t.Fatalf("async (%v) not faster than sync (%v)", asyncRes.Elapsed, syncRes.Elapsed)
	}
	if asyncRes.GPUUtilization() <= syncRes.GPUUtilization() {
		t.Fatalf("async utilization %.3f not above sync %.3f",
			asyncRes.GPUUtilization(), syncRes.GPUUtilization())
	}
}

func TestCheckFreqPolicyInTrainingLoop(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("t", func(env sim.Env) {
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 1,
			GPUMemBytes: 8 << 20, PMemBytes: 16 << 20, Materialized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		spec := tinySpec("cf-job", 20*time.Millisecond)
		placed, err := gpu.Place(cl.GPU(0, 0), spec)
		if err != nil {
			t.Fatal(err)
		}
		cf := baseline.NewCheckFreq(fsim.NewBeeGFS(cl.Storage[0]), cl.Compute[0], placed)
		res, err := train.Run(env, train.Config{
			Spec:       spec,
			Placed:     placed,
			Policy:     cf,
			Interval:   5,
			Iterations: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Checkpoints != 2 {
			t.Fatalf("checkpoints = %d", res.Checkpoints)
		}
		iter, err := cf.Restore(env)
		if err != nil || iter != 10 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
	})
	eng.Run()
}

func TestUtilizationSeriesShape(t *testing.T) {
	eng := sim.NewEngine()
	var res train.Result
	eng.Go("t", func(env sim.Env) {
		var err error
		res, err = train.Run(env, train.Config{
			Spec:       tinySpec("m", 100*time.Millisecond),
			Iterations: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	series := res.Timeline.Series(2*time.Second, 500*time.Millisecond)
	if len(series) != 4 {
		t.Fatalf("series has %d points", len(series))
	}
	for i, u := range series {
		if u < 0.99 {
			t.Fatalf("window %d utilization = %.3f, want ~1", i, u)
		}
	}
}
