package sched

import (
	"sort"
	"sync"

	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/telemetry"
)

// LanePool arbitrates the daemon's RDMA lane set across concurrent
// transfers. The datapath used to stripe every job across the full
// lane set, so two concurrent checkpoints contended on every queue
// pair; the pool instead leases each job a fair share of the lanes —
// the least-loaded max(1, total/active) of them — so concurrent
// tenants spread across disjoint queue pairs when enough exist.
//
// Acquire never blocks: lanes are shared, not reserved, so a burst of
// lessees degrades bandwidth per job instead of deadlocking or
// serializing. A single active lessee is granted the full set, which
// keeps single-tenant runs byte-for-byte identical to the pre-pool
// datapath.
type LanePool struct {
	mu     sync.Mutex
	lanes  []*rdma.QP
	load   map[int]int // lane ID -> active lessees on it
	active int

	lessees *telemetry.Gauge
	leases  *telemetry.Counter
}

// Lease is one job's grant: the lane subset it should stripe across.
type Lease struct {
	lanes []*rdma.QP
	pool  *LanePool
	done  bool
}

// Lanes returns the granted subset, ordered by lane ID.
func (l *Lease) Lanes() []*rdma.QP { return l.lanes }

// NewLanePool wraps the daemon's connected lane set. reg may be nil.
func NewLanePool(lanes []*rdma.QP, reg *telemetry.Registry) *LanePool {
	p := &LanePool{lanes: lanes, load: make(map[int]int, len(lanes))}
	if reg != nil {
		p.lessees = reg.Gauge("portus_sched_lane_lessees", "transfers currently holding a lane lease")
		p.leases = reg.Counter("portus_sched_lane_leases_total", "lane leases granted")
	}
	return p
}

// Acquire grants a fair share of the lanes to a new lessee. It never
// blocks and never returns an empty grant.
func (p *LanePool) Acquire() *Lease {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active++
	p.lessees.Inc()
	p.leases.Inc()

	var grant []*rdma.QP
	if p.active == 1 {
		// Sole tenant: the full stripe width, exactly as before.
		grant = append(grant, p.lanes...)
	} else {
		share := len(p.lanes) / p.active
		if share < 1 {
			share = 1
		}
		// Least-loaded lanes first; ties broken by ID so grants are
		// deterministic under the simulation engine.
		sorted := append([]*rdma.QP(nil), p.lanes...)
		sort.SliceStable(sorted, func(i, j int) bool {
			li, lj := p.load[sorted[i].ID], p.load[sorted[j].ID]
			if li != lj {
				return li < lj
			}
			return sorted[i].ID < sorted[j].ID
		})
		grant = sorted[:share]
		sort.Slice(grant, func(i, j int) bool { return grant[i].ID < grant[j].ID })
	}
	for _, qp := range grant {
		p.load[qp.ID]++
	}
	return &Lease{lanes: grant, pool: p}
}

// Release returns the lease's lanes to the pool. Releasing twice is a
// no-op.
func (l *Lease) Release() {
	if l == nil || l.done {
		return
	}
	l.done = true
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	p.active--
	p.lessees.Dec()
	for _, qp := range l.lanes {
		if p.load[qp.ID] > 0 {
			p.load[qp.ID]--
		}
	}
}

// Active reports the current lessee count.
func (p *LanePool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}
