package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
)

// TestConcurrentSubmitRaceRegression is the regression test for the
// old daemon enqueue race: between a failed busy.CompareAndSwap and
// the duplicate-park check, a concurrent completion could slip in and
// a legitimate retry was hard-rejected (or worse, double-executed).
// The scheduler runs all admission under one lock, so hammering Submit
// from many goroutines across many models — while workers concurrently
// drain — must answer every single submission exactly once: executed,
// parked as a duplicate, or coalesced. Run with -race; the test also
// asserts per-model execution never overlaps (the version-slot safety
// the busy flag used to provide).
func TestConcurrentSubmitRaceRegression(t *testing.T) {
	env := sim.NewRealEnv()
	s := New(env, Config{ModelQueueCap: -1, GlobalCap: -1, Workers: 4})

	const (
		models     = 16
		submitters = 4 // goroutines per model, racing the same iterations
		iters      = 25
	)
	names := make([]string, models)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + "-model"
		if i >= 26 {
			names[i] = names[i] + "x"
		}
	}

	var (
		expected int64 // submissions that must eventually be answered
		answered int64
		rejected int64
		inflight [models]atomic.Int32
		overlap  atomic.Bool
	)
	laneOf := make(map[string]int, models)
	for i, n := range names {
		laneOf[n] = i
	}

	// Workers drain concurrently with the submitters.
	workers := sync.WaitGroup{}
	for w := 0; w < 4; w++ {
		workers.Add(1)
		env.Go("worker", func(env sim.Env) {
			defer workers.Done()
			for {
				tk, ok := s.Next(env)
				if !ok {
					return
				}
				li := laneOf[tk.Model]
				if inflight[li].Add(1) > 1 {
					overlap.Store(true)
				}
				time.Sleep(50 * time.Microsecond) // hold the lane briefly
				inflight[li].Add(-1)
				s.Done(env, tk)
				// After Done the waiter lists are stable: count every
				// connection this execution answers.
				atomic.AddInt64(&answered, int64(1+len(tk.Dups)+len(tk.Coalesced)))
			}
		})
	}

	subs := sync.WaitGroup{}
	for m := 0; m < models; m++ {
		for g := 0; g < submitters; g++ {
			subs.Add(1)
			name := names[m]
			env.Go("submitter", func(env sim.Env) {
				defer subs.Done()
				for i := uint64(1); i <= iters; i++ {
					res := s.Submit(env, &Task{
						Model: name, Class: ClassCheckpoint, Iteration: i,
						EnqueuedAt: env.Now(), Payload: name,
					})
					if res.Verdict == Rejected {
						atomic.AddInt64(&rejected, 1)
					} else {
						atomic.AddInt64(&expected, 1)
					}
				}
			})
		}
	}
	subs.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for atomic.LoadInt64(&answered) < atomic.LoadInt64(&expected) {
		if time.Now().After(deadline) {
			t.Fatalf("answered %d of %d submissions before timeout: waiters were lost",
				atomic.LoadInt64(&answered), atomic.LoadInt64(&expected))
		}
		time.Sleep(time.Millisecond)
	}
	s.Close(env)
	workers.Wait()

	if got := atomic.LoadInt64(&rejected); got != 0 {
		t.Fatalf("%d submissions rejected with unbounded queues", got)
	}
	if got, want := atomic.LoadInt64(&answered), atomic.LoadInt64(&expected); got != want {
		t.Fatalf("answered %d submissions, want exactly %d (no double-answers)", got, want)
	}
	if overlap.Load() {
		t.Fatal("two tasks for the same model executed concurrently")
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain", s.QueueDepth())
	}
}
