// Package sched is the daemon's multi-tenant scheduling core: it owns
// admission, deduplication, coalescing, ordering, and backpressure for
// every checkpoint and restore request the daemon serves.
//
// The paper's evaluation (§V-E) runs many training jobs against one
// PMem node; funneling them through a global FIFO lets one noisy tenant
// starve the rest, and the old per-session busy flag hard-rejected any
// request that arrived while another was in flight. The scheduler
// replaces both:
//
//   - Per-model FIFO lanes. Each model's requests execute one at a
//     time, in order (the version slots are not safe under concurrent
//     writers), but different models proceed independently.
//   - A weighted-fair picker interleaves lanes. Restores form a strict
//     priority class above checkpoints — they sit on the recovery
//     critical path, and a recovering job should not queue behind other
//     tenants' checkpoint traffic.
//   - Coalescing (the Checkmate freshness rule): only the newest
//     checkpoint of a model matters, so a queued checkpoint request
//     superseded by a newer iteration is folded into it instead of
//     executed. Superseded waiters are acknowledged when the newer
//     version commits.
//   - Dedup: re-submitting an identical in-flight request (the client's
//     retry path after a reconnect) attaches the new connection as a
//     duplicate waiter instead of double-executing or bouncing. Because
//     admission runs under one lock, the old CAS-vs-park race window is
//     structurally unreachable.
//   - Bounded queues: per-model and global caps turn overload into an
//     explicit BUSY reply with a retry-after hint instead of an
//     unbounded queue or a hard error.
//
// All state transitions happen under one mutex, so the scheduler is
// safe under the real runtime (ordinary goroutines, -race) and fully
// deterministic under the discrete-event engine.
package sched

import (
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// Class is a request's priority class.
type Class int

// Classes in ascending priority: the picker serves the highest class
// with runnable work first. Maintenance (the storage engine's online
// repack pass) sits below everything — compaction only runs against a
// model whose lane has no live traffic ready, which is exactly the
// per-model quiesce lease the engine needs: while a maintenance task
// occupies the lane's running slot, no checkpoint or restore for that
// model can dispatch.
const (
	ClassMaintenance Class = iota
	ClassCheckpoint
	ClassRestore
	numClasses
)

// String names the class (used as the telemetry label).
func (c Class) String() string {
	switch c {
	case ClassMaintenance:
		return "maintenance"
	case ClassCheckpoint:
		return "checkpoint"
	case ClassRestore:
		return "restore"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Policy selects the picker.
type Policy int

const (
	// Fair is weighted round-robin across models with strict class
	// priority (restores first) — the default.
	Fair Policy = iota
	// FIFO dispatches strictly in global arrival order, ignoring class
	// priority and per-model fairness (baseline for experiments).
	FIFO
)

// Verdict is the outcome of a Submit.
type Verdict int

const (
	// Admitted: the task was queued and will be dispatched.
	Admitted Verdict = iota
	// CoalescedVerdict: the task was folded into (or absorbed) a queued
	// checkpoint for the same model under the freshness rule; its
	// waiters are acknowledged when the surviving task commits.
	CoalescedVerdict
	// Deduped: an identical task is already queued or running; the
	// submission was attached as a duplicate waiter.
	Deduped
	// Rejected: the per-model or global queue bound was hit; the caller
	// should reply BUSY with Result.RetryAfter.
	Rejected
)

// Result reports a Submit outcome.
type Result struct {
	Verdict Verdict
	// RetryAfter estimates when queue space will free up (set on
	// Rejected): the smoothed per-task service time scaled by the
	// backlog per worker.
	RetryAfter time.Duration
}

// Stale is one coalesced-away request: an older checkpoint submission
// superseded by the task that now carries it. The executor must
// acknowledge its waiter with Iteration (its own requested iteration)
// once the surviving task commits.
type Stale struct {
	Iteration uint64
	Payload   any
}

// Task is one admitted request — the unit the scheduler queues,
// coalesces, and hands to workers. The caller fills the identity
// fields and Payload; the scheduler fills Dups and Coalesced as
// duplicates and superseded requests attach. After the scheduler
// removes the task from the running set (Done), Dups and Coalesced are
// stable and the executor fans its replies out to them.
type Task struct {
	Model     string
	Class     Class
	Iteration uint64
	// TraceID/ParentSpan carry the client's trace context through the
	// queue so the executor's trace adopts the client-minted identity.
	// Zero means untraced.
	TraceID    telemetry.TraceID
	ParentSpan uint64
	// EnqueuedAt is the submitter's clock at submission (for wait
	// accounting and traces).
	EnqueuedAt time.Duration
	// Payload is the caller's request context (opaque to the scheduler).
	Payload any
	// Dups are payloads of duplicate submissions of this same task.
	Dups []any
	// Coalesced are older same-model checkpoint requests this task
	// superseded.
	Coalesced []Stale

	seq       uint64
	startedAt time.Duration
}

// Config parameterizes a Scheduler.
type Config struct {
	// ModelQueueCap bounds the requests queued (not running) per model;
	// 0 defaults to 8, negative means unbounded.
	ModelQueueCap int
	// GlobalCap bounds the requests queued across all models; 0
	// defaults to 64, negative means unbounded.
	GlobalCap int
	// Workers hints how many tasks drain concurrently (sizes the
	// retry-after estimate); 0 defaults to 8.
	Workers int
	// Policy selects the picker; the zero value is Fair.
	Policy Policy
	// Coalesce enables the freshness rule; nil-config default is on.
	// Set DisableCoalesce to turn it off.
	DisableCoalesce bool
	// Weights gives a model more than one dispatch per round-robin
	// visit; absent models weigh 1.
	Weights map[string]int
	// Telemetry receives the scheduler's counters, per-model queue
	// gauges, and per-class wait histograms; nil creates a private
	// registry.
	Telemetry *telemetry.Registry
	// Events receives flight-recorder entries for admission decisions
	// (admit/coalesce/dedup/busy); nil disables event emission.
	Events *telemetry.EventRing
}

// lane is one model's FIFO queue pair plus its in-flight slot.
type lane struct {
	name    string
	q       [numClasses][]*Task
	running *Task
	credit  int
	depth   *telemetry.Gauge
}

func (l *lane) queued() int {
	n := 0
	for _, q := range l.q {
		n += len(q)
	}
	return n
}

// Scheduler is the multi-tenant request scheduler. All methods are safe
// for concurrent use.
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	lanes  map[string]*lane
	order  []string // lane ring, registration order
	cursor int
	queued int
	seq    uint64
	closed bool
	// svcNanos is the EWMA of per-task service time, feeding the
	// retry-after hint.
	svcNanos int64

	// tokens counts lanes that are idle and non-empty: one token per
	// dispatchable lane head. Next blocks on it.
	tokens *sim.Mailbox[struct{}]

	coalesced   *telemetry.Counter
	busyReplies *telemetry.Counter
	dedups      *telemetry.Counter
	admitted    *telemetry.Counter
	wait        [numClasses]*telemetry.Histogram
	globalDepth *telemetry.Gauge
}

// New creates a scheduler, applying Config defaults.
func New(env sim.Env, cfg Config) *Scheduler {
	switch {
	case cfg.ModelQueueCap == 0:
		cfg.ModelQueueCap = 8
	case cfg.ModelQueueCap < 0:
		cfg.ModelQueueCap = int(^uint(0) >> 1)
	}
	switch {
	case cfg.GlobalCap == 0:
		cfg.GlobalCap = 64
	case cfg.GlobalCap < 0:
		cfg.GlobalCap = int(^uint(0) >> 1)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	s := &Scheduler{
		cfg:    cfg,
		lanes:  make(map[string]*lane),
		tokens: sim.NewMailbox[struct{}](env),

		coalesced:   reg.Counter("portus_sched_coalesced_total", "stale checkpoint requests coalesced to a newer iteration"),
		busyReplies: reg.Counter("portus_sched_busy_replies_total", "requests bounced with BUSY backpressure (queue bounds hit)"),
		dedups:      reg.Counter("portus_sched_dedup_total", "duplicate submissions attached to an identical queued or running task"),
		admitted:    reg.Counter("portus_sched_admitted_total", "requests admitted to a lane queue"),
		globalDepth: reg.Gauge("portus_sched_queue_depth_global", "requests queued across all models, not yet dispatched"),
	}
	for c := Class(0); c < numClasses; c++ {
		s.wait[c] = reg.Histogram("portus_sched_wait_seconds",
			"time a request waits in the scheduler before a worker picks it up", nil,
			telemetry.L("class", c.String()))
	}
	return s
}

// Telemetry exposes the registry the scheduler's metrics live in.
func (s *Scheduler) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

func (s *Scheduler) laneFor(model string) *lane {
	l, ok := s.lanes[model]
	if !ok {
		l = &lane{
			name: model,
			depth: s.cfg.Telemetry.Gauge("portus_sched_queue_depth",
				"requests queued for one model, not yet dispatched",
				telemetry.L("model", model)),
		}
		s.lanes[model] = l
		s.order = append(s.order, model)
	}
	return l
}

func (s *Scheduler) weight(model string) int {
	if w, ok := s.cfg.Weights[model]; ok && w > 0 {
		return w
	}
	return 1
}

// retryAfter estimates how long a bounced caller should wait: the
// smoothed service time scaled by the backlog each worker already owes.
func (s *Scheduler) retryAfter() time.Duration {
	svc := time.Duration(s.svcNanos)
	if svc <= 0 {
		svc = 500 * time.Microsecond
	}
	d := svc * time.Duration(1+s.queued/s.cfg.Workers)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// event records a flight-recorder entry for an admission decision.
// Emit is nil-safe, so untraced/unconfigured schedulers pay one call.
func (s *Scheduler) event(env sim.Env, kind telemetry.EventKind, t *Task, detail string) {
	s.cfg.Events.Emit(telemetry.Event{
		Time:      env.Now(),
		Kind:      kind,
		Model:     t.Model,
		Iteration: t.Iteration,
		Trace:     t.TraceID,
		Detail:    detail,
	})
}

// Submit admits, coalesces, dedups, or rejects a task. It never
// blocks. The task must not be reused after submission unless the
// verdict is Rejected.
func (s *Scheduler) Submit(env sim.Env, t *Task) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Result{Verdict: Rejected, RetryAfter: time.Second}
	}
	l := s.laneFor(t.Model)

	// Dedup against the running task: the client's retry of an
	// in-flight request (its original DONE was lost with a dropped
	// connection) parks as a duplicate waiter.
	if r := l.running; r != nil && r.Class == t.Class &&
		(t.Class == ClassRestore || r.Iteration == t.Iteration) {
		r.Dups = append(r.Dups, t.Payload)
		s.dedups.Inc()
		s.event(env, telemetry.EvSchedDedup, t, "attached to running task")
		return Result{Verdict: Deduped}
	}
	// Dedup / coalesce against the queued tasks of the same class.
	for _, q := range l.q[t.Class] {
		if t.Class == ClassRestore || q.Iteration == t.Iteration {
			q.Dups = append(q.Dups, t.Payload)
			s.dedups.Inc()
			s.event(env, telemetry.EvSchedDedup, t, "attached to queued task")
			return Result{Verdict: Deduped}
		}
		if s.cfg.DisableCoalesce {
			continue
		}
		if q.Iteration < t.Iteration {
			// Freshness rule: the queued request is stale; the newer
			// iteration takes its place in the queue and carries its
			// waiters.
			t.Coalesced = append(t.Coalesced, Stale{Iteration: q.Iteration, Payload: q.Payload})
			for _, dp := range q.Dups {
				t.Coalesced = append(t.Coalesced, Stale{Iteration: q.Iteration, Payload: dp})
			}
			t.Coalesced = append(t.Coalesced, q.Coalesced...)
			t.seq = q.seq
			*q = *t
			s.coalesced.Inc()
			s.event(env, telemetry.EvSchedCoalesce, t, fmt.Sprintf("superseded queued iter %d", t.Coalesced[0].Iteration))
			return Result{Verdict: CoalescedVerdict}
		}
		// The incoming request is the stale one (a late retry racing a
		// newer submission): absorb it into the newer task.
		q.Coalesced = append(q.Coalesced, Stale{Iteration: t.Iteration, Payload: t.Payload})
		s.coalesced.Inc()
		s.event(env, telemetry.EvSchedCoalesce, t, fmt.Sprintf("absorbed by queued iter %d", q.Iteration))
		return Result{Verdict: CoalescedVerdict}
	}

	// Bounds apply only to fresh admissions — retries and stale
	// requests merged above never bounce. Maintenance tasks are exempt:
	// they originate inside the daemon (one per model per pass, already
	// deduped above) and bouncing them under load would starve exactly
	// the reclamation that relieves the load.
	if t.Class != ClassMaintenance &&
		(s.queued >= s.cfg.GlobalCap || l.queued() >= s.cfg.ModelQueueCap) {
		s.busyReplies.Inc()
		ra := s.retryAfter()
		s.event(env, telemetry.EvSchedBusy, t, "retry after "+ra.String())
		return Result{Verdict: Rejected, RetryAfter: ra}
	}

	s.seq++
	t.seq = s.seq
	wasEmpty := l.queued() == 0
	l.q[t.Class] = append(l.q[t.Class], t)
	s.queued++
	l.depth.Inc()
	s.globalDepth.Inc()
	s.admitted.Inc()
	s.event(env, telemetry.EvSchedAdmit, t, "")
	if wasEmpty && l.running == nil {
		// The lane just became dispatchable: hand a worker a token.
		s.tokens.Send(env, struct{}{})
	}
	return Result{Verdict: Admitted}
}

// Next blocks until a task is dispatchable, picks one under the
// configured policy, marks its lane running, and returns it. It
// returns false after Close.
func (s *Scheduler) Next(env sim.Env) (*Task, bool) {
	for {
		if _, ok := s.tokens.Recv(env); !ok {
			return nil, false
		}
		s.mu.Lock()
		t := s.pick()
		if t == nil {
			// Should be unreachable (one token per dispatchable lane),
			// but never let an accounting slip wedge a worker.
			s.mu.Unlock()
			continue
		}
		l := s.lanes[t.Model]
		l.q[t.Class] = l.q[t.Class][1:]
		l.running = t
		s.queued--
		l.depth.Dec()
		s.globalDepth.Dec()
		t.startedAt = env.Now()
		s.wait[t.Class].ObserveDuration(t.startedAt - t.EnqueuedAt)
		s.mu.Unlock()
		return t, true
	}
}

// pick chooses the next lane head under the policy. Called with mu
// held.
func (s *Scheduler) pick() *Task {
	if s.cfg.Policy == FIFO {
		return s.pickFIFO()
	}
	for c := numClasses - 1; c >= 0; c-- {
		if t := s.pickClass(c); t != nil {
			return t
		}
	}
	return nil
}

// pickClass walks the model ring from the cursor, letting a lane take
// up to its weight of consecutive dispatches before yielding.
func (s *Scheduler) pickClass(c Class) *Task {
	n := len(s.order)
	for i := 0; i < n; i++ {
		idx := (s.cursor + i) % n
		l := s.lanes[s.order[idx]]
		if l.running != nil || len(l.q[c]) == 0 {
			continue
		}
		if idx != s.cursor || l.credit <= 0 {
			l.credit = s.weight(l.name)
			s.cursor = idx
		}
		l.credit--
		if l.credit <= 0 {
			s.cursor = (idx + 1) % n
		}
		return l.q[c][0]
	}
	return nil
}

// pickFIFO returns the dispatchable head with the oldest sequence
// number — strict global arrival order.
func (s *Scheduler) pickFIFO() *Task {
	var best *Task
	for _, name := range s.order {
		l := s.lanes[name]
		if l.running != nil {
			continue
		}
		for c := Class(0); c < numClasses; c++ {
			if len(l.q[c]) == 0 {
				continue
			}
			if t := l.q[c][0]; best == nil || t.seq < best.seq {
				best = t
			}
		}
	}
	return best
}

// Done marks a dispatched task complete, freeing its lane for the next
// request. After Done returns, the task's Dups and Coalesced lists are
// stable: late duplicates of a finished task are admitted as fresh
// submissions instead (the daemon's committed-iteration check answers
// them from the index).
func (s *Scheduler) Done(env sim.Env, t *Task) {
	s.mu.Lock()
	l := s.lanes[t.Model]
	if l == nil || l.running != t {
		s.mu.Unlock()
		return
	}
	l.running = nil
	d := int64(env.Now() - t.startedAt)
	if d > 0 {
		if s.svcNanos == 0 {
			s.svcNanos = d
		} else {
			s.svcNanos += (d - s.svcNanos) / 8
		}
	}
	dispatchable := l.queued() > 0 && !s.closed
	s.mu.Unlock()
	if dispatchable {
		s.tokens.Send(env, struct{}{})
	}
}

// Idle reports whether model has no queued and no running task.
func (s *Scheduler) Idle(model string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lanes[model]
	return !ok || (l.running == nil && l.queued() == 0)
}

// IdleTenant reports whether model has no tenant-originated work — no
// queued or running checkpoint/restore. Maintenance tasks don't count:
// a DELETE arriving while the engine compacts the model is safe (both
// serialize on the engine mutex, and the compactor re-checks liveness),
// so a pending repack must not make the tenant's delete bounce.
func (s *Scheduler) IdleTenant(model string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lanes[model]
	if !ok {
		return true
	}
	if l.running != nil && l.running.Class != ClassMaintenance {
		return false
	}
	for c := ClassCheckpoint; c < numClasses; c++ {
		if len(l.q[c]) > 0 {
			return false
		}
	}
	return true
}

// Forget drops an idle model's lane (after a DELETE). It is a no-op if
// the lane still has work.
func (s *Scheduler) Forget(model string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.lanes[model]
	if !ok || l.running != nil || l.queued() > 0 {
		return
	}
	delete(s.lanes, model)
	for i, name := range s.order {
		if name == model {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if len(s.order) == 0 {
		s.cursor = 0
	} else {
		s.cursor %= len(s.order)
	}
}

// QueueDepth reports the requests queued across all models, not yet
// picked up by a worker — the single source of truth behind
// daemon.Stats.QueueDepth and the portus_daemon_queue_depth gauge.
func (s *Scheduler) QueueDepth() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.queued)
}

// ModelDepth reports the queued requests for one model.
func (s *Scheduler) ModelDepth(model string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lanes[model]; ok {
		return l.queued()
	}
	return 0
}

// Close wakes every worker blocked in Next with (nil, false). Queued
// tasks are dropped.
func (s *Scheduler) Close(env sim.Env) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.tokens.Close(env)
}
