package sched

import (
	"testing"

	"github.com/portus-sys/portus/internal/rdma"
)

func pool(n int) *LanePool {
	lanes := make([]*rdma.QP, n)
	for i := range lanes {
		lanes[i] = &rdma.QP{ID: i}
	}
	return NewLanePool(lanes, nil)
}

func ids(qs []*rdma.QP) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		out[i] = q.ID
	}
	return out
}

func TestSoleLesseeGetsFullStripe(t *testing.T) {
	p := pool(4)
	l := p.Acquire()
	if len(l.Lanes()) != 4 {
		t.Fatalf("sole lessee got %v, want all 4 lanes", ids(l.Lanes()))
	}
	l.Release()
	if p.Active() != 0 {
		t.Fatalf("active = %d after release", p.Active())
	}
	// The next sole lessee gets the full set again.
	l2 := p.Acquire()
	if len(l2.Lanes()) != 4 {
		t.Fatalf("second sole lessee got %v", ids(l2.Lanes()))
	}
	l2.Release()
}

func TestConcurrentLesseesShareFairly(t *testing.T) {
	p := pool(4)
	l1 := p.Acquire()
	l2 := p.Acquire()
	if len(l2.Lanes()) != 2 {
		t.Fatalf("second of two lessees got %d lanes, want 4/2 = 2", len(l2.Lanes()))
	}
	l1.Release()
	l2.Release()
}

func TestLeaseNeverEmptyUnderOversubscription(t *testing.T) {
	// More lessees than lanes: everyone still gets at least one lane,
	// spread across the least-loaded ones — never a block, never empty.
	p := pool(2)
	var leases []*Lease
	for i := 0; i < 6; i++ {
		l := p.Acquire()
		if len(l.Lanes()) == 0 {
			t.Fatalf("lessee %d got an empty grant", i)
		}
		leases = append(leases, l)
	}
	// Lanes 0 and 1 should carry a balanced share of the single-lane
	// grants (the full-stripe first lessee loads both).
	load := map[int]int{}
	for _, l := range leases[1:] {
		for _, qp := range l.Lanes() {
			load[qp.ID]++
		}
	}
	if diff := load[0] - load[1]; diff < -1 || diff > 1 {
		t.Fatalf("unbalanced lane load %v across oversubscribed lessees", load)
	}
	for _, l := range leases {
		l.Release()
	}
	if p.Active() != 0 {
		t.Fatalf("active = %d after releasing all", p.Active())
	}
}

func TestDoubleReleaseIsNoOp(t *testing.T) {
	p := pool(2)
	l := p.Acquire()
	l.Release()
	l.Release()
	if p.Active() != 0 {
		t.Fatalf("active = %d after double release", p.Active())
	}
}
