package sched

import (
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// eventKinds returns the ring's kinds oldest-first for easy comparison.
func eventKinds(ring *telemetry.EventRing) []telemetry.EventKind {
	snap := ring.Snapshot()
	out := make([]telemetry.EventKind, len(snap))
	for i, ev := range snap {
		out[len(snap)-1-i] = ev.Kind
	}
	return out
}

// TestSchedulerEmitsFlightRecorderEvents locks the admission-path event
// contract: admit, dedup, coalesce, and busy verdicts each leave a
// typed entry carrying the task's trace id.
func TestSchedulerEmitsFlightRecorderEvents(t *testing.T) {
	run(t, func(env sim.Env) {
		ring := telemetry.NewEventRing(32)
		s := New(env, Config{ModelQueueCap: 1, GlobalCap: 2, Workers: 1, Events: ring})

		id := telemetry.NewTraceID()
		first := &Task{Model: "m", Class: ClassCheckpoint, Iteration: 1, TraceID: id, Payload: "a"}
		if v := s.Submit(env, first); v.Verdict != Admitted {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		// Same (model, iteration) while queued: deduped.
		if v := s.Submit(env, &Task{Model: "m", Class: ClassCheckpoint, Iteration: 1, Payload: "b"}); v.Verdict != Deduped {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		// Running task occupies the lane; a newer iteration coalesces
		// over the queue capacity... first pull iter 1 into a worker.
		running, _ := s.Next(env)
		if v := s.Submit(env, &Task{Model: "m", Class: ClassCheckpoint, Iteration: 2, Payload: "c"}); v.Verdict != Admitted {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		// Queue for "m" is full (cap 1): iteration 3 supersedes the
		// queued iteration 2 instead of bouncing.
		if v := s.Submit(env, &Task{Model: "m", Class: ClassCheckpoint, Iteration: 3, Payload: "d"}); v.Verdict != CoalescedVerdict {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		// Global cap (2) reached by other models: busy.
		if v := s.Submit(env, &Task{Model: "n", Class: ClassCheckpoint, Iteration: 1, Payload: "e"}); v.Verdict != Admitted {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		busy := s.Submit(env, &Task{Model: "o", Class: ClassCheckpoint, Iteration: 1, Payload: "f"})
		if busy.Verdict != Rejected {
			t.Fatalf("verdict = %v, want Rejected", busy.Verdict)
		}
		s.Done(env, running)

		kinds := eventKinds(ring)
		want := []telemetry.EventKind{
			telemetry.EvSchedAdmit,    // iter 1
			telemetry.EvSchedDedup,    // duplicate iter 1
			telemetry.EvSchedAdmit,    // iter 2
			telemetry.EvSchedCoalesce, // iter 3 supersedes 2
			telemetry.EvSchedAdmit,    // model n
			telemetry.EvSchedBusy,     // model o bounced
		}
		if len(kinds) != len(want) {
			t.Fatalf("event kinds = %v, want %v", kinds, want)
		}
		for i := range want {
			if kinds[i] != want[i] {
				t.Fatalf("event[%d] = %s, want %s (all: %v)", i, kinds[i], want[i], kinds)
			}
		}
		// The admit event carries the submitting task's trace id, and
		// the busy event carries the retry hint in its detail.
		snap := ring.Snapshot() // newest first
		if admit := snap[len(snap)-1]; admit.Trace != id || admit.Model != "m" {
			t.Fatalf("admit event = %+v, want trace %s", admit, id)
		}
		if !strings.Contains(snap[0].Detail, "retry after") {
			t.Fatalf("busy event detail = %q", snap[0].Detail)
		}
	})
}

// TestSchedulerNilEventRing: event emission is optional — a scheduler
// without a ring must behave identically.
func TestSchedulerNilEventRing(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		if v := s.Submit(env, task("m", ClassCheckpoint, 1)); v.Verdict != Admitted {
			t.Fatalf("verdict = %v", v.Verdict)
		}
		tk, ok := s.Next(env)
		if !ok {
			t.Fatal("Next returned no task")
		}
		s.Done(env, tk)
	})
}
