package sched

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
)

// run spins the test body inside a fresh simulation engine.
func run(t *testing.T, body func(env sim.Env)) {
	t.Helper()
	eng := sim.NewEngine()
	done := false
	eng.Go("test", func(env sim.Env) { body(env); done = true })
	eng.Run()
	if !done {
		t.Fatal("test body never finished: a scheduler call blocked forever")
	}
}

func task(model string, class Class, iter uint64) *Task {
	return &Task{Model: model, Class: class, Iteration: iter, Payload: model}
}

func TestPerModelFIFOAndSerialization(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		if v := s.Submit(env, task("m", ClassCheckpoint, 1)); v.Verdict != Admitted {
			t.Fatalf("first submit verdict = %v", v.Verdict)
		}
		t1, ok := s.Next(env)
		if !ok || t1.Iteration != 1 {
			t.Fatalf("Next = %+v, %v", t1, ok)
		}
		// While iteration 1 runs, a restore for the same model queues
		// behind it: at most one task per model executes at a time.
		if v := s.Submit(env, task("m", ClassRestore, 0)); v.Verdict != Admitted {
			t.Fatalf("restore submit verdict = %v", v.Verdict)
		}
		if d := s.ModelDepth("m"); d != 1 {
			t.Fatalf("model depth = %d, want 1", d)
		}
		got := make(chan *Task, 1)
		env.Go("worker", func(env sim.Env) {
			t2, ok := s.Next(env)
			if ok {
				got <- t2
			}
		})
		env.Sleep(time.Millisecond)
		select {
		case <-got:
			t.Fatal("second task dispatched while the first still runs")
		default:
		}
		s.Done(env, t1)
		env.Sleep(time.Millisecond)
		t2 := <-got
		if t2.Class != ClassRestore {
			t.Fatalf("second dispatch = %+v, want the restore", t2)
		}
		s.Done(env, t2)
		if !s.Idle("m") {
			t.Fatal("model not idle after both tasks done")
		}
	})
}

func TestRestorePreemptsQueuedCheckpoints(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		s.Submit(env, task("a", ClassCheckpoint, 1))
		s.Submit(env, task("b", ClassRestore, 0))
		// Both lanes are dispatchable; the restore class is served first
		// even though the checkpoint arrived earlier.
		t1, _ := s.Next(env)
		if t1.Class != ClassRestore || t1.Model != "b" {
			t.Fatalf("first dispatch = %+v, want b's restore", t1)
		}
		t2, _ := s.Next(env)
		if t2.Class != ClassCheckpoint || t2.Model != "a" {
			t.Fatalf("second dispatch = %+v, want a's checkpoint", t2)
		}
	})
}

func TestCoalesceNewestIterationWins(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		// Occupy the lane so later submissions stay queued.
		s.Submit(env, task("m", ClassCheckpoint, 1))
		running, _ := s.Next(env)

		s.Submit(env, task("m", ClassCheckpoint, 2))
		if v := s.Submit(env, task("m", ClassCheckpoint, 4)); v.Verdict != CoalescedVerdict {
			t.Fatalf("newer iteration verdict = %v, want coalesced", v.Verdict)
		}
		// An even older straggler is absorbed into the queued task.
		if v := s.Submit(env, task("m", ClassCheckpoint, 3)); v.Verdict != CoalescedVerdict {
			t.Fatalf("older straggler verdict = %v, want coalesced", v.Verdict)
		}
		if got := s.coalesced.Value(); got != 2 {
			t.Fatalf("coalesced counter = %d, want 2", got)
		}
		// Only one queued task remains; it is the newest iteration and
		// carries the superseded waiters.
		if d := s.ModelDepth("m"); d != 1 {
			t.Fatalf("model depth = %d, want 1 after coalescing", d)
		}
		s.Done(env, running)
		got, _ := s.Next(env)
		if got.Iteration != 4 {
			t.Fatalf("surviving iteration = %d, want 4", got.Iteration)
		}
		if len(got.Coalesced) != 2 {
			t.Fatalf("coalesced waiters = %d, want 2 (iterations 2 and 3)", len(got.Coalesced))
		}
		seen := map[uint64]bool{}
		for _, st := range got.Coalesced {
			seen[st.Iteration] = true
		}
		if !seen[2] || !seen[3] {
			t.Fatalf("coalesced iterations = %v, want {2, 3}", got.Coalesced)
		}
	})
}

func TestDedupAttachesDuplicateWaiters(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		s.Submit(env, task("m", ClassCheckpoint, 7))
		running, _ := s.Next(env)
		// Retry of the in-flight iteration parks on the running task.
		if v := s.Submit(env, task("m", ClassCheckpoint, 7)); v.Verdict != Deduped {
			t.Fatalf("retry of running verdict = %v, want deduped", v.Verdict)
		}
		if len(running.Dups) != 1 {
			t.Fatalf("running dups = %d, want 1", len(running.Dups))
		}
		// Retry of a queued iteration parks on the queued task.
		s.Submit(env, task("m", ClassCheckpoint, 8))
		if v := s.Submit(env, task("m", ClassCheckpoint, 8)); v.Verdict != Deduped {
			t.Fatalf("retry of queued verdict = %v, want deduped", v.Verdict)
		}
		// Restores dedup regardless of iteration.
		s.Submit(env, task("m", ClassRestore, 0))
		if v := s.Submit(env, task("m", ClassRestore, 0)); v.Verdict != Deduped {
			t.Fatalf("restore retry verdict = %v, want deduped", v.Verdict)
		}
		if got := s.dedups.Value(); got != 3 {
			t.Fatalf("dedup counter = %d, want 3", got)
		}
	})
}

func TestBoundedQueuesRejectWithRetryAfter(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{ModelQueueCap: 1, GlobalCap: 2, Workers: 1})
		s.Submit(env, task("a", ClassCheckpoint, 1))
		running, _ := s.Next(env)
		s.Submit(env, task("a", ClassCheckpoint, 2)) // queued: model at cap
		// A restore for the same model hits the per-model bound.
		v := s.Submit(env, task("a", ClassRestore, 0))
		if v.Verdict != Rejected {
			t.Fatalf("over per-model cap verdict = %v, want rejected", v.Verdict)
		}
		if v.RetryAfter <= 0 {
			t.Fatalf("rejected without a retry-after hint: %v", v.RetryAfter)
		}
		// But a retry of the queued iteration still dedups: bounds apply
		// only to fresh admissions.
		if v := s.Submit(env, task("a", ClassCheckpoint, 2)); v.Verdict != Deduped {
			t.Fatalf("dedup under pressure verdict = %v, want deduped", v.Verdict)
		}
		// Fill the global bound with a second model, then a third model
		// bounces even though its own lane is empty.
		s.Submit(env, task("b", ClassCheckpoint, 1))
		if v := s.Submit(env, task("c", ClassCheckpoint, 1)); v.Verdict != Rejected {
			t.Fatalf("over global cap verdict = %v, want rejected", v.Verdict)
		}
		if got := s.busyReplies.Value(); got != 2 {
			t.Fatalf("busy replies counter = %d, want 2", got)
		}
		s.Done(env, running)
	})
}

func TestFairPickerRoundRobinsModels(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		// One queued checkpoint per model, registered a, b, c. With no
		// Done in between, each dispatch must come from a distinct lane,
		// walking the ring in order.
		for _, m := range []string{"a", "b", "c"} {
			s.Submit(env, task(m, ClassCheckpoint, 1))
		}
		var order []string
		for i := 0; i < 3; i++ {
			tk, ok := s.Next(env)
			if !ok {
				t.Fatal("Next closed early")
			}
			order = append(order, tk.Model)
		}
		if order[0] != "a" || order[1] != "b" || order[2] != "c" {
			t.Fatalf("dispatch order = %v, want [a b c]", order)
		}
	})
}

func TestFIFOPolicyIgnoresClassPriority(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{Policy: FIFO})
		s.Submit(env, task("a", ClassCheckpoint, 1))
		s.Submit(env, task("b", ClassRestore, 0))
		t1, _ := s.Next(env)
		if t1.Model != "a" {
			t.Fatalf("FIFO first dispatch = %s, want a (arrival order)", t1.Model)
		}
	})
}

func TestQueueDepthTracksSubmitNextDone(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		if s.QueueDepth() != 0 {
			t.Fatal("fresh scheduler depth != 0")
		}
		s.Submit(env, task("a", ClassCheckpoint, 1))
		s.Submit(env, task("b", ClassCheckpoint, 1))
		if got := s.QueueDepth(); got != 2 {
			t.Fatalf("depth after 2 submits = %d", got)
		}
		t1, _ := s.Next(env)
		if got := s.QueueDepth(); got != 1 {
			t.Fatalf("depth after 1 dispatch = %d", got)
		}
		s.Done(env, t1)
		t2, _ := s.Next(env)
		s.Done(env, t2)
		if got := s.QueueDepth(); got != 0 {
			t.Fatalf("depth after drain = %d", got)
		}
	})
}

func TestForgetDropsIdleLaneOnly(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		s.Submit(env, task("m", ClassCheckpoint, 1))
		tk, _ := s.Next(env)
		s.Forget("m") // busy: must be a no-op
		if s.Idle("m") {
			t.Fatal("running model reported idle")
		}
		s.Done(env, tk)
		s.Forget("m")
		if len(s.order) != 0 {
			t.Fatalf("lane ring not empty after Forget: %v", s.order)
		}
	})
}

func TestCloseWakesBlockedWorkers(t *testing.T) {
	run(t, func(env sim.Env) {
		s := New(env, Config{})
		woke := sim.NewSignal(env)
		env.Go("worker", func(env sim.Env) {
			if _, ok := s.Next(env); ok {
				t.Error("Next returned a task after Close")
			}
			woke.Fire(env)
		})
		env.Sleep(time.Millisecond)
		s.Close(env)
		woke.Wait(env)
	})
}
