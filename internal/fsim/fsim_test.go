package fsim_test

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/serialize"
	"github.com/portus-sys/portus/internal/sim"
)

// withCluster runs fn on a small virtual cluster.
func withCluster(t *testing.T, nodes int, fn func(env sim.Env, cl *cluster.Cluster)) time.Duration {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: nodes, GPUsPerNode: 1,
			GPUMemBytes: 1 << 30, PMemBytes: 1 << 30, Materialized: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		fn(env, cl)
	})
	return eng.Run()
}

// virtualCkpt builds an n-byte single-tensor virtual checkpoint.
func virtualCkpt(model string, n int64) *serialize.Checkpoint {
	return &serialize.Checkpoint{
		Model:     model,
		Iteration: 1,
		Tensors: []serialize.Blob{{
			Meta:    index.TensorMeta{Name: "w", DType: index.F32, Dims: []int64{n / 4}, Size: n},
			Virtual: true,
			Stamp:   0x77,
		}},
	}
}

func TestBeeGFSSaveLoadRoundTrip(t *testing.T) {
	withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		if err := bg.Save(env, cl.Compute[0], virtualCkpt("m", 1<<20)); err != nil {
			t.Fatal(err)
		}
		got, err := bg.Load(env, cl.Compute[0], "m")
		if err != nil {
			t.Fatal(err)
		}
		if got.Tensors[0].Stamp != 0x77 {
			t.Fatalf("loaded stamp = %#x", got.Tensors[0].Stamp)
		}
		if _, err := bg.Load(env, cl.Compute[0], "missing"); err == nil {
			t.Fatal("load of missing model succeeded")
		}
	})
}

func TestBeeGFSSharedAcrossNodes(t *testing.T) {
	withCluster(t, 2, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		if err := bg.Save(env, cl.Compute[0], virtualCkpt("shared", 1<<20)); err != nil {
			t.Fatal(err)
		}
		// A different node loads the file (the shared-filesystem property
		// of §II-A).
		if _, err := bg.Load(env, cl.Compute[1], "shared"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSaveOverwritesPreviousVersion(t *testing.T) {
	withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		c1 := virtualCkpt("m", 1<<20)
		c1.Iteration = 1
		c2 := virtualCkpt("m", 1<<20)
		c2.Iteration = 2
		if err := bg.Save(env, cl.Compute[0], c1); err != nil {
			t.Fatal(err)
		}
		if err := bg.Save(env, cl.Compute[0], c2); err != nil {
			t.Fatal(err)
		}
		got, err := bg.Load(env, cl.Compute[0], "m")
		if err != nil || got.Iteration != 2 {
			t.Fatalf("loaded iteration %d, %v", got.Iteration, err)
		}
	})
}

func TestStoredCheckpointDoesNotAliasCaller(t *testing.T) {
	withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		ck := virtualCkpt("m", 1<<20)
		if err := bg.Save(env, cl.Compute[0], ck); err != nil {
			t.Fatal(err)
		}
		ck.Tensors[0].Stamp = 0xBAD // caller mutates after save
		got, _ := bg.Load(env, cl.Compute[0], "m")
		if got.Tensors[0].Stamp != 0x77 {
			t.Fatal("stored checkpoint aliases caller buffers")
		}
	})
}

func TestBeeGFSConcurrentWritersContend(t *testing.T) {
	// One writer's save of N bytes must be faster than each of 8
	// concurrent writers saving N bytes (daemon contention, §II-A).
	const n = 256 << 20
	solo := withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		if err := bg.Save(env, cl.Compute[0], virtualCkpt("m", n)); err != nil {
			t.Fatal(err)
		}
	})
	crowd := withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		g := sim.NewGroup(env)
		for i := 0; i < 8; i++ {
			i := i
			g.Add(env, 1)
			env.Go("w", func(env sim.Env) {
				defer g.Done(env)
				name := string(rune('a' + i))
				if err := bg.Save(env, cl.Compute[0], virtualCkpt(name, n)); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait(env)
	})
	// Pure fair sharing of the solo bottleneck would be ~8x; the
	// daemon's synchronization contention pushes beyond that.
	if crowd < 8*solo {
		t.Fatalf("8 contended writers took %v vs solo %v; expected >8x degradation", crowd, solo)
	}
}

func TestExt4IsNodeLocal(t *testing.T) {
	withCluster(t, 2, func(env sim.Env, cl *cluster.Cluster) {
		e := fsim.NewExt4NVMe(cl.Compute[0])
		if err := e.Save(env, cl.Compute[1], virtualCkpt("m", 1<<20)); err == nil {
			t.Fatal("remote node wrote to a local filesystem")
		}
		if err := e.Save(env, cl.Compute[0], virtualCkpt("m", 1<<20)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Load(env, cl.Compute[0], "m"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestStatsBreakdownSumsToTotal(t *testing.T) {
	var total time.Duration
	var st fsim.Stats
	total = withCluster(t, 1, func(env sim.Env, cl *cluster.Cluster) {
		bg := fsim.NewBeeGFS(cl.Storage[0])
		if err := bg.Save(env, cl.Compute[0], virtualCkpt("m", 64<<20)); err != nil {
			t.Fatal(err)
		}
		st = bg.Stats()
	})
	sum := st.SerializeTime + st.MetadataTime + st.TransferTime + st.PersistTime
	if sum > total || sum < total*95/100 {
		t.Fatalf("stage sum %v vs total %v", sum, total)
	}
	if st.Copies != 2 || st.KernelCrossings != 3 || st.Saves != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
