// Package fsim implements the baseline storage paths the paper compares
// Portus against (§V-A):
//
//   - BeeGFS stacked on ext4-DAX over the fsdax half of the Optane
//     namespace (BeeGFS-PMem): the traditional distributed checkpoint
//     path of Figure 3 — serialize on the client, cross into the
//     client kernel module, ship the file to the daemon with two-sided
//     RPC-over-RDMA, persist with a DAX write on the server. Three
//     redundant copies, three kernel crossings.
//
//   - Local ext4 on NVMe SSD (ext4-NVMe): no network, but the block
//     layer's kernel crossings and journaling throttle it (Fig. 13:
//     53.7% of the local checkpoint time).
//
// Each backend moves real checkpoint containers (or stamp-tracked
// virtual ones) and charges the calibrated stage costs sequentially —
// matching the additive breakdown of Table I.
package fsim

import (
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/serialize"
	"github.com/portus-sys/portus/internal/sim"
)

// Stats counts datapath work per backend, including the cumulative
// per-stage time breakdown behind Table I and Figure 13.
type Stats struct {
	Saves           int
	Loads           int
	Copies          int // redundant data copies beyond the device-to-device minimum
	KernelCrossings int
	BytesWritten    int64

	SerializeTime time.Duration // pickling on the client
	MetadataTime  time.Duration // path/permission/syscall overheads
	TransferTime  time.Duration // network (or block device) transfer
	PersistTime   time.Duration // server-side DAX write / device writeback
}

// Backend is a checkpoint file store reachable from compute nodes.
type Backend interface {
	Name() string
	// Save serializes and persists ckpt, blocking for the full modeled
	// cost (torch.save semantics).
	Save(env sim.Env, from *cluster.ComputeNode, ckpt *serialize.Checkpoint) error
	// Load retrieves the newest container saved under model, charging
	// the GPU-Direct-Storage restore path.
	Load(env sim.Env, to *cluster.ComputeNode, model string) (*serialize.Checkpoint, error)
	Stats() Stats
}

// clone deep-copies a checkpoint so stored state cannot alias caller
// buffers.
func clone(c *serialize.Checkpoint) *serialize.Checkpoint {
	out := &serialize.Checkpoint{Model: c.Model, Iteration: c.Iteration}
	out.Tensors = make([]serialize.Blob, len(c.Tensors))
	for i, b := range c.Tensors {
		nb := b
		nb.Meta.Dims = append([]int64(nil), b.Meta.Dims...)
		if b.Data != nil {
			nb.Data = append([]byte(nil), b.Data...)
		}
		out.Tensors[i] = nb
	}
	return out
}

// chargeSerialize models torch.save's pickling pass on the client.
func chargeSerialize(env sim.Env, from *cluster.ComputeNode, ckpt *serialize.Checkpoint) {
	env.Sleep(time.Duration(len(ckpt.Tensors)) * perfmodel.SerializePerTensor)
	from.Serializer.Transfer(env, ckpt.ModeledSize(), perfmodel.SerializeBW, 0)
}

// chargeReconstruct models deserialization and module reconstruction
// during restore.
func chargeReconstruct(env sim.Env, ckpt *serialize.Checkpoint) {
	env.Sleep(perfmodel.RestoreReconstruct +
		time.Duration(len(ckpt.Tensors))*perfmodel.RestorePerTensor)
}

// BeeGFS is the shared BeeGFS-PMem filesystem: one instance serves all
// compute nodes through the storage node's daemon.
type BeeGFS struct {
	storage *cluster.StorageNode

	mu    sync.Mutex
	files map[string]*serialize.Checkpoint
	stats Stats
}

// NewBeeGFS mounts the shared filesystem backed by the storage node.
func NewBeeGFS(storage *cluster.StorageNode) *BeeGFS {
	return &BeeGFS{storage: storage, files: make(map[string]*serialize.Checkpoint)}
}

// Name returns the paper's label for this baseline.
func (b *BeeGFS) Name() string { return "BeeGFS-PMEM" }

// Save runs the traditional distributed checkpoint path.
func (b *BeeGFS) Save(env sim.Env, from *cluster.ComputeNode, ckpt *serialize.Checkpoint) error {
	size := ckpt.ModeledSize()

	// Step 2 of Figure 3: serialize into a checkpoint file and write it
	// to the BeeGFS client module (first kernel crossing).
	t0 := env.Now()
	chargeSerialize(env, from, ckpt)
	env.Sleep(perfmodel.BeeGFSKernelCrossing)
	t1 := env.Now()

	// Path resolution, permission checks, striping metadata — the
	// per-layer small-write overhead that makes models with many small
	// tensors (ResNet50) the traditional path's worst case (§V-C1).
	// The cost saturates once writes batch across the stripe width.
	metaTensors := len(ckpt.Tensors)
	if metaTensors > 300 {
		metaTensors = 300
	}
	env.Sleep(perfmodel.BeeGFSMetadataBase +
		time.Duration(metaTensors)*perfmodel.BeeGFSMetadataPerTensor)
	t2 := env.Now()

	// Step 3: the client module ships the file to the BeeGFS daemon via
	// two-sided RPC-over-RDMA (second crossing); concurrent writers
	// contend in the daemon.
	sim.PipelineTransfer(env, size, 4*perfmodel.MiB,
		sim.Stage{Res: from.RNode.NIC(), FlowCap: perfmodel.BeeGFSTransferBW, Latency: perfmodel.TwoSidedLatency},
		sim.Stage{Res: b.storage.Ingest},
	)
	t3 := env.Now()

	// Step 4: the daemon persists with a DAX write onto ext4-DAX (third
	// crossing).
	env.Sleep(perfmodel.BeeGFSKernelCrossing)
	b.storage.DAX.Transfer(env, size, perfmodel.BeeGFSDAXWriteBW, perfmodel.PMemLatency)
	t4 := env.Now()

	b.mu.Lock()
	b.files[ckpt.Model] = clone(ckpt)
	b.stats.Saves++
	b.stats.Copies += 2 // client mem -> server mem -> PMem
	b.stats.KernelCrossings += 3
	b.stats.BytesWritten += size
	b.stats.SerializeTime += t1 - t0
	b.stats.MetadataTime += t2 - t1
	b.stats.TransferTime += t3 - t2
	b.stats.PersistTime += t4 - t3
	b.mu.Unlock()
	return nil
}

// Load retrieves a container over the GPU-Direct-Storage read path.
func (b *BeeGFS) Load(env sim.Env, to *cluster.ComputeNode, model string) (*serialize.Checkpoint, error) {
	b.mu.Lock()
	ckpt, ok := b.files[model]
	if ok {
		ckpt = clone(ckpt)
	}
	b.stats.Loads++
	b.stats.KernelCrossings += 2
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fsim: beegfs: no checkpoint for %q", model)
	}
	env.Sleep(perfmodel.BeeGFSMetadataBase / 2)
	sim.PipelineTransfer(env, ckpt.ModeledSize(), 4*perfmodel.MiB,
		sim.Stage{Res: b.storage.Ingest, FlowCap: perfmodel.GDSRestoreBW, Latency: perfmodel.TwoSidedLatency},
		sim.Stage{Res: to.RNode.NIC()},
	)
	chargeReconstruct(env, ckpt)
	return ckpt, nil
}

// Stats returns datapath counters.
func (b *BeeGFS) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Ext4NVMe is a compute node's local SSD filesystem.
type Ext4NVMe struct {
	node *cluster.ComputeNode

	mu    sync.Mutex
	files map[string]*serialize.Checkpoint
	stats Stats
}

// NewExt4NVMe mounts the node-local baseline.
func NewExt4NVMe(node *cluster.ComputeNode) *Ext4NVMe {
	return &Ext4NVMe{node: node, files: make(map[string]*serialize.Checkpoint)}
}

// Name returns the paper's label for this baseline.
func (e *Ext4NVMe) Name() string { return "ext4-NVMe" }

// Save serializes and writes the container through the block layer.
func (e *Ext4NVMe) Save(env sim.Env, from *cluster.ComputeNode, ckpt *serialize.Checkpoint) error {
	if from != e.node {
		return fmt.Errorf("fsim: ext4 on %s not reachable from %s", e.node.Name, from.Name)
	}
	size := ckpt.ModeledSize()
	t0 := env.Now()
	chargeSerialize(env, from, ckpt)
	t1 := env.Now()

	// Chunked write() syscalls into the page cache, journal commit, and
	// device writeback: 53.7% of the local checkpoint time (Fig. 13).
	chunks := (size + perfmodel.Ext4WriteChunk - 1) / perfmodel.Ext4WriteChunk
	env.Sleep(time.Duration(chunks) * perfmodel.Ext4SyscallOverhead)
	t2 := env.Now()
	e.node.NVMe.Transfer(env, size, perfmodel.Ext4EffectiveWriteBW, 0)
	t3 := env.Now()

	e.mu.Lock()
	e.stats.SerializeTime += t1 - t0
	e.stats.MetadataTime += t2 - t1
	e.stats.PersistTime += t3 - t2
	e.files[ckpt.Model] = clone(ckpt)
	e.stats.Saves++
	e.stats.Copies++ // user buffer -> page cache
	e.stats.KernelCrossings += int(chunks)
	e.stats.BytesWritten += size
	e.mu.Unlock()
	return nil
}

// Load reads the container back through GPU-Direct Storage (page cache
// bypassed).
func (e *Ext4NVMe) Load(env sim.Env, to *cluster.ComputeNode, model string) (*serialize.Checkpoint, error) {
	e.mu.Lock()
	ckpt, ok := e.files[model]
	if ok {
		ckpt = clone(ckpt)
	}
	e.stats.Loads++
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fsim: ext4: no checkpoint for %q", model)
	}
	size := ckpt.ModeledSize()
	chunks := (size + perfmodel.Ext4WriteChunk - 1) / perfmodel.Ext4WriteChunk
	env.Sleep(time.Duration(chunks) * perfmodel.Ext4SyscallOverhead)
	e.node.NVMe.Transfer(env, size, perfmodel.Ext4EffectiveReadBW, 0)
	chargeReconstruct(env, ckpt)
	e.mu.Lock()
	e.stats.KernelCrossings += int(chunks)
	e.mu.Unlock()
	return ckpt, nil
}

// Stats returns datapath counters.
func (e *Ext4NVMe) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
