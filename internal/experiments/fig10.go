package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

// fig10Sizes is the message-size sweep of Figure 10.
var fig10Sizes = []int64{
	4 * perfmodel.KiB, 16 * perfmodel.KiB, 64 * perfmodel.KiB,
	256 * perfmodel.KiB, 512 * perfmodel.KiB,
	1 * perfmodel.MiB, 4 * perfmodel.MiB, 16 * perfmodel.MiB, 64 * perfmodel.MiB,
}

// fig10Pairs are the four datapaths: server-side target × client-side
// source.
var fig10Pairs = []struct {
	name       string
	serverKind memdev.Kind
	clientKind memdev.Kind
}{
	{"Server DRAM <-> Client DRAM", memdev.DRAM, memdev.DRAM},
	{"Server DRAM <-> Client GPU", memdev.DRAM, memdev.GPU},
	{"Server PMEM <-> Client DRAM", memdev.PMEM, memdev.DRAM},
	{"Server PMEM <-> Client GPU", memdev.PMEM, memdev.GPU},
}

// measureVerb times one one-sided verb between a client device and a
// server device.
func measureVerb(serverKind, clientKind memdev.Kind, size int64, read bool) time.Duration {
	var elapsed time.Duration
	runEngine(func(env sim.Env) {
		f := rdma.NewSimFabric()
		server := rdma.NewNode(env, "server")
		clnt := rdma.NewNode(env, "client")
		f.AddNode(server)
		f.AddNode(clnt)
		sdev := memdev.New("sdev", serverKind, 1<<32, false)
		cdev := memdev.New("cdev", clientKind, 1<<32, false)
		cdev.WriteStamp(0, size, 1)
		sdev.WriteStamp(0, size, 2)
		rmr := clnt.RegisterMR(env, cdev, 0, size)
		lmr := server.RegisterMR(env, sdev, 0, size)
		l := rdma.Slice{MR: lmr, Len: size}
		r := rdma.RemoteSlice{MR: rdma.RemoteMR{Node: "client", RKey: rmr.RKey, Len: size}, Len: size}
		start := env.Now()
		var err error
		if read {
			err = f.Read(env, server, l, r)
		} else {
			err = f.Write(env, server, l, r)
		}
		if err != nil {
			panic(err)
		}
		elapsed = env.Now() - start
	})
	return elapsed
}

// Fig10 reproduces Figure 10: bandwidth and latency of the Portus
// datapath across device pairs, read (checkpoint direction) and write
// (restore direction), over the message-size sweep.
func Fig10() []*Table {
	mkTable := func(id, title string, read bool, bandwidth bool) *Table {
		t := &Table{ID: id, Title: title}
		t.Header = []string{"Size"}
		for _, p := range fig10Pairs {
			t.Header = append(t.Header, p.name)
		}
		for _, size := range fig10Sizes {
			row := []string{sizeLabel(size)}
			for _, p := range fig10Pairs {
				d := measureVerb(p.serverKind, p.clientKind, size, read)
				if bandwidth {
					row = append(row, fmt.Sprintf("%.2f", float64(size)/d.Seconds()/perfmodel.GB))
				} else {
					row = append(row, fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond)))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	readBW := mkTable("fig10a", "Read bandwidth (GB/s) — server pulls from client (checkpoint)", true, true)
	readBW.Notes = []string{
		"GPU columns saturate near 5.8 GB/s: the BAR unit disables prefetching for reads (§V-B)",
		"DRAM vs PMEM on the server does not matter: both outrun the network",
		"bandwidth approaches peak once messages exceed ~512 KiB",
	}
	readLat := mkTable("fig10b", "Read latency (µs)", true, false)
	writeBW := mkTable("fig10c", "Write bandwidth (GB/s) — server pushes to client (restore)", false, true)
	writeBW.Notes = []string{"BAR does not affect writes: GPU columns reach the RNIC limit (§V-B, Fig. 10(d))"}
	writeLat := mkTable("fig10d", "Write latency (µs)", false, false)
	return []*Table{readBW, readLat, writeBW, writeLat}
}

func sizeLabel(n int64) string {
	switch {
	case n >= perfmodel.MiB:
		return fmt.Sprintf("%dMiB", n/perfmodel.MiB)
	default:
		return fmt.Sprintf("%dKiB", n/perfmodel.KiB)
	}
}
