package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
)

// backendKind selects a baseline storage path.
type backendKind int

const (
	beeGFS backendKind = iota + 1
	ext4NVMe
)

func (k backendKind) String() string {
	if k == beeGFS {
		return "BeeGFS-PMEM"
	}
	return "ext4-NVMe"
}

// baselineRun measures one torch.save checkpoint and one restore of spec
// through a baseline backend, returning durations and datapath stats.
type baselineRun struct {
	ckpt, restore time.Duration
	snapshot      time.Duration
	stats         fsim.Stats
}

func measureBaseline(spec model.Spec, kind backendKind) baselineRun {
	var out baselineRun
	runEngine(func(env sim.Env) {
		cl, err := newPortusRig(env, voltaConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, err := gpu.Place(cl.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		var backend fsim.Backend
		if kind == beeGFS {
			backend = fsim.NewBeeGFS(cl.cl.Storage[0])
		} else {
			backend = fsim.NewExt4NVMe(cl.cl.Compute[0])
		}
		cp := baseline.NewTorchSave(backend, cl.cl.Compute[0], placed)

		start := env.Now()
		if err := cp.Checkpoint(env, 1); err != nil {
			panic(err)
		}
		out.ckpt = env.Now() - start
		st := backend.Stats()
		out.snapshot = out.ckpt - st.SerializeTime - st.MetadataTime - st.TransferTime - st.PersistTime

		start = env.Now()
		if _, err := cp.Restore(env); err != nil {
			panic(err)
		}
		out.restore = env.Now() - start
		out.stats = backend.Stats()
	})
	return out
}

// portusRun measures one Portus checkpoint and restore of spec.
type portusRun struct {
	ckpt, restore time.Duration
	pull, flush   time.Duration
}

func measurePortus(spec model.Spec) portusRun {
	var out portusRun
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), nil)
		if err != nil {
			panic(err)
		}
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		start := env.Now()
		if err := c.CheckpointSync(env, 1); err != nil {
			panic(err)
		}
		out.ckpt = env.Now() - start
		st := rig.d.Stats()
		out.pull, out.flush = st.PullTime, st.FlushTime

		start = env.Now()
		if _, err := c.Restore(env); err != nil {
			panic(err)
		}
		out.restore = env.Now() - start
	})
	return out
}

// Table1 reproduces Table I: the stage breakdown of a traditional
// (torch.save to BeeGFS-PMem) BERT checkpoint.
func Table1() []*Table {
	bert := model.TableII()[6]
	r := measureBaseline(bert, beeGFS)
	total := r.ckpt
	frac := func(d time.Duration) string { return pct(float64(d) / float64(total)) }
	t := &Table{
		ID:     "table1",
		Title:  "DNN checkpointing overhead (BERT-Large to BeeGFS-PMem)",
		Header: []string{"Operation", "Time", "Measured %", "Paper %"},
		Rows: [][]string{
			{"GPU to Main Memory", metrics.FormatDuration(r.snapshot), frac(r.snapshot), "15.5%"},
			{"Serialization", metrics.FormatDuration(r.stats.SerializeTime), frac(r.stats.SerializeTime), "41.7%"},
			{"Transmission (RDMA)", metrics.FormatDuration(r.stats.TransferTime + r.stats.MetadataTime), frac(r.stats.TransferTime + r.stats.MetadataTime), "30.0%"},
			{"Server DAX write", metrics.FormatDuration(r.stats.PersistTime), frac(r.stats.PersistTime), "12.8%"},
		},
		Notes: []string{fmt.Sprintf("total traditional checkpoint: %s", metrics.FormatDuration(total))},
	}
	return []*Table{t}
}

// Table2 prints the model zoo's headline specifications.
func Table2() []*Table {
	t := &Table{
		ID:     "table2",
		Title:  "DNN model specifications",
		Header: []string{"Model", "Layers", "Params", "Size"},
	}
	for _, s := range model.TableII() {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprint(s.NumTensors()),
			fmt.Sprintf("%.1fM", float64(s.NumParams())/1e6),
			metrics.FormatBytes(s.TotalSize()),
		})
	}
	for _, s := range model.GPTFamily() {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprint(s.NumTensors()),
			fmt.Sprintf("%.1fB", float64(s.NumParams())/1e9),
			metrics.FormatBytes(s.TotalSize()),
		})
	}
	return []*Table{t}
}

// Fig2 reproduces Figure 2: checkpoint overhead as a fraction of
// training time at CheckFreq's frequencies (VIT 1/83, GPT 1/100) using
// the traditional blocking path.
func Fig2() []*Table {
	type workload struct {
		spec     model.Spec
		interval int
		multi    bool
		paper    string
	}
	vit, _ := model.ByName("vit_l_32")
	gpts := model.GPTFamily()
	cases := []workload{
		{vit, 83, false, "~24.9%"},
		{gpts[2], 100, true, "~30%"},
		{gpts[3], 100, true, "~41%"},
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Checkpointing overhead in total training time (traditional path)",
		Header: []string{"Model", "Interval", "Ckpt time", "Compute/interval", "Overhead", "Paper"},
	}
	for _, w := range cases {
		var ckpt time.Duration
		if w.multi {
			ckpt = megatronTorchSaveDump(w.spec)
		} else {
			ckpt = measureBaseline(w.spec, beeGFS).ckpt
		}
		compute := time.Duration(w.interval) * w.spec.IterTime
		overhead := float64(ckpt) / float64(ckpt+compute)
		t.Rows = append(t.Rows, []string{
			w.spec.Name, fmt.Sprintf("1/%d", w.interval),
			metrics.FormatDuration(ckpt), metrics.FormatDuration(compute),
			pct(overhead), w.paper,
		})
	}
	t.Notes = append(t.Notes, "checkpointing blocks training on the traditional path; overhead = ckpt/(ckpt+compute)")
	return []*Table{t}
}

// Datapath reproduces the structural comparison of Figures 3 and 5:
// copies, kernel crossings, and serialization per checkpoint path.
func Datapath() []*Table {
	spec := model.TableII()[2] // resnet50: small and fast
	bg := measureBaseline(spec, beeGFS)
	ex := measureBaseline(spec, ext4NVMe)
	_ = measurePortus(spec)
	t := &Table{
		ID:     "datapath",
		Title:  "Checkpoint datapath structure (one ResNet50 checkpoint)",
		Header: []string{"Path", "Data copies", "Kernel crossings", "Serialization", "Checkpoint time"},
		Rows: [][]string{
			{"BeeGFS-PMEM (traditional)", fmt.Sprint(bg.stats.Copies + 1), fmt.Sprint(bg.stats.KernelCrossings), "yes", metrics.FormatDuration(bg.ckpt)},
			{"ext4-NVMe (local)", fmt.Sprint(ex.stats.Copies + 1), fmt.Sprint(ex.stats.KernelCrossings), "yes", metrics.FormatDuration(ex.ckpt)},
			{"Portus (zero-copy RDMA)", "0", "0", "no", metrics.FormatDuration(measurePortus(spec).ckpt)},
		},
		Notes: []string{
			"traditional copies: GPU->host staging, host->server memory, server memory->PMem",
			"Portus: the daemon pulls GPU memory into PMem directly; the training process never copies or crosses into the kernel",
		},
	}
	return []*Table{t}
}

// Fig11 reproduces Figure 11: checkpoint time of the seven Table II
// models under Portus, BeeGFS-PMem, and ext4-NVMe.
func Fig11() []*Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Checkpointing time of different models",
		Header: []string{"Model", "Portus", "BeeGFS-PMEM", "ext4-NVMe", "vs BeeGFS", "vs ext4"},
	}
	var sumBG, sumEX float64
	for _, spec := range model.TableII() {
		p := measurePortus(spec)
		bg := measureBaseline(spec, beeGFS)
		ex := measureBaseline(spec, ext4NVMe)
		t.Rows = append(t.Rows, []string{
			spec.Name, secs(p.ckpt), secs(bg.ckpt), secs(ex.ckpt),
			ratio(bg.ckpt, p.ckpt), ratio(ex.ckpt, p.ckpt),
		})
		sumBG += float64(bg.ckpt) / float64(p.ckpt)
		sumEX += float64(ex.ckpt) / float64(p.ckpt)
	}
	n := float64(len(model.TableII()))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean speedup: %.2fx vs BeeGFS-PMEM (paper: 8.49x, up to 9.23x), %.2fx vs ext4-NVMe (paper: 8.18x)", sumBG/n, sumEX/n),
		"times in seconds")
	return []*Table{t}
}

// Fig12 reproduces Figure 12: restore times for the same matrix.
func Fig12() []*Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Restoring time of different models",
		Header: []string{"Model", "Portus", "BeeGFS-PMEM", "ext4-NVMe", "vs BeeGFS", "vs ext4"},
	}
	var sumBG, sumEX float64
	for _, spec := range model.TableII() {
		p := measurePortus(spec)
		bg := measureBaseline(spec, beeGFS)
		ex := measureBaseline(spec, ext4NVMe)
		t.Rows = append(t.Rows, []string{
			spec.Name, secs(p.restore), secs(bg.restore), secs(ex.restore),
			ratio(bg.restore, p.restore), ratio(ex.restore, p.restore),
		})
		sumBG += float64(bg.restore) / float64(p.restore)
		sumEX += float64(ex.restore) / float64(p.restore)
	}
	n := float64(len(model.TableII()))
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean speedup: %.2fx vs BeeGFS-PMEM (paper: 5.15x, up to 7.0x), %.2fx vs ext4-NVMe (paper: 3.83x)", sumBG/n, sumEX/n),
		"restore gains are smaller than checkpoint gains: GPU-Direct Storage spares the baselines the host bounce (§V-C2)")
	return []*Table{t}
}

// Fig13 reproduces Figure 13: the per-stage breakdown of one BERT
// checkpoint under all three systems.
func Fig13() []*Table {
	bert := model.TableII()[6]
	p := measurePortus(bert)
	bg := measureBaseline(bert, beeGFS)
	ex := measureBaseline(bert, ext4NVMe)

	t := &Table{
		ID:     "fig13",
		Title:  "Breakdown of BERT checkpointing time",
		Header: []string{"System", "cuMemcpy", "Serialize", "Transfer", "Persist", "Total"},
		Rows: [][]string{
			{"Portus",
				"-", "-",
				metrics.FormatDuration(p.pull),
				metrics.FormatDuration(p.flush),
				metrics.FormatDuration(p.ckpt)},
			{"BeeGFS-PMEM",
				metrics.FormatDuration(bg.snapshot),
				metrics.FormatDuration(bg.stats.SerializeTime),
				metrics.FormatDuration(bg.stats.TransferTime + bg.stats.MetadataTime),
				metrics.FormatDuration(bg.stats.PersistTime),
				metrics.FormatDuration(bg.ckpt)},
			{"ext4-NVMe",
				metrics.FormatDuration(ex.snapshot),
				metrics.FormatDuration(ex.stats.SerializeTime),
				metrics.FormatDuration(ex.stats.MetadataTime),
				metrics.FormatDuration(ex.stats.PersistTime),
				metrics.FormatDuration(ex.ckpt)},
		},
		Notes: []string{
			fmt.Sprintf("serialization + cuMemcpy are %s of BeeGFS-PMEM (paper: 57.2%%) and %s of ext4-NVMe (paper: 46.5%%)",
				pct(float64(bg.snapshot+bg.stats.SerializeTime)/float64(bg.ckpt)),
				pct(float64(ex.snapshot+ex.stats.SerializeTime)/float64(ex.ckpt))),
			fmt.Sprintf("block-device interaction is %s of ext4-NVMe (paper: 53.7%%)",
				pct(float64(ex.stats.MetadataTime+ex.stats.PersistTime)/float64(ex.ckpt))),
			"RDMA transmission dominates the Portus checkpoint (one-sided reads at the GPU BAR limit)",
		},
	}
	return []*Table{t}
}

// Appendix measures the whole 76-model zoo, Portus vs BeeGFS-PMem.
func Appendix() []*Table {
	t := &Table{
		ID:     "appendix",
		Title:  "Checkpoint time across the full 76-model evaluation set",
		Header: []string{"Model", "Size", "Portus", "BeeGFS-PMEM", "Speedup"},
	}
	var sum float64
	zoo := model.Zoo()
	for _, spec := range zoo {
		p := measurePortus(spec)
		bg := measureBaseline(spec, beeGFS)
		t.Rows = append(t.Rows, []string{
			spec.Name, metrics.FormatBytes(spec.TotalSize()),
			secs(p.ckpt), secs(bg.ckpt), ratio(bg.ckpt, p.ckpt),
		})
		sum += float64(bg.ckpt) / float64(p.ckpt)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean speedup across %d models: %.2fx", len(zoo), sum/float64(len(zoo))))
	return []*Table{t}
}
