package experiments

import "testing"

// TestChaosInvariantAtTenPercent is the acceptance bar for the
// self-healing stack: at a 10% fault rate at every layer — verb
// errors, dropped control connections, torn flushes — under the fixed
// seed, the run completes with zero lost committed checkpoints, the
// newest complete version restores bit-exactly, and the healing
// counters show up in the Prometheus scrape.
func TestChaosInvariantAtTenPercent(t *testing.T) {
	o := RunChaos(ChaosSeed, 0.10, 25)
	if o.Lost != 0 {
		t.Fatalf("lost %d committed checkpoints under 10%% faults", o.Lost)
	}
	if !o.RestoredOK {
		t.Fatal("newest complete version did not restore bit-exactly")
	}
	if o.Faults == 0 {
		t.Fatal("no faults injected — the harness is not wired into the stack")
	}
	if o.Committed == 0 {
		t.Fatal("no checkpoints committed under faults")
	}
	if !o.ScrapeOK {
		t.Fatal("fault/retry/reconnect counters missing from the Prometheus scrape")
	}
}

// TestChaosIsDeterministic: the same seed and rate replay the exact
// same run — faults, retries, commits, and reconnects all match.
func TestChaosIsDeterministic(t *testing.T) {
	a := RunChaos(ChaosSeed, 0.10, 15)
	b := RunChaos(ChaosSeed, 0.10, 15)
	if a.Faults != b.Faults || a.Retries != b.Retries ||
		a.Committed != b.Committed || a.Reconnects != b.Reconnects ||
		a.FailedLoud != b.FailedLoud || a.RestoredIter != b.RestoredIter {
		t.Fatalf("two runs with the same seed diverged:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestChaosCleanRunInjectsNothing: rate zero must leave the stack
// untouched — no faults, no retries, no reconnects, full goodput.
func TestChaosCleanRunInjectsNothing(t *testing.T) {
	o := RunChaos(ChaosSeed, 0, 10)
	if o.Faults != 0 || o.Retries != 0 || o.Reconnects != 0 || o.FailedLoud != 0 {
		t.Fatalf("clean run shows healing activity: %+v", o)
	}
	if o.Committed != o.Attempted || !o.RestoredOK {
		t.Fatalf("clean run incomplete: %+v", o)
	}
}
