package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
)

// megatronPortusDumpOn measures the 16-rank GPT dump with a cluster
// override (used by the DRAM-fallback ablation).
func megatronPortusDumpOn(spec model.Spec, cmut func(*cluster.Config)) time.Duration {
	var elapsed time.Duration
	runEngine(func(env sim.Env) {
		cfg := ampereConfig()
		if cmut != nil {
			cmut(&cfg)
		}
		rig, err := newPortusRig(env, cfg, nil)
		if err != nil {
			panic(err)
		}
		placed, placements, err := placeShards(env, rig, spec)
		if err != nil {
			panic(err)
		}
		clients := make([]*client.Client, len(placed))
		for i := range placed {
			conn, err := rig.net.Dial(env, "storage")
			if err != nil {
				panic(err)
			}
			clients[i], err = client.Register(env, conn, rig.cl.Compute[placements[i].Node].RNode, placed[i])
			if err != nil {
				panic(err)
			}
		}
		start := env.Now()
		g := sim.NewGroup(env)
		for i := range clients {
			i := i
			g.Add(env, 1)
			env.Go("rank", func(env sim.Env) {
				defer g.Done(env)
				if err := clients[i].CheckpointSync(env, 1); err != nil {
					panic(err)
				}
			})
		}
		g.Wait(env)
		elapsed = env.Now() - start
	})
	return elapsed
}

// AblationDRAMTarget compares checkpointing into PMem versus the DRAM
// fallback (§IV-a, §V-B): indistinguishable for a single flow (both
// outrun the network), but DRAM lifts the aggregate ceiling for
// concurrent multi-GPU pulls — at the cost of durability.
func AblationDRAMTarget() []*Table {
	bert := model.TableII()[6]
	singlePMem := measurePortus(bert)
	singleDRAM := measurePortusOpt(bert, func(c *cluster.Config) { c.DRAMFallback = true }, nil)

	gpt := model.GPT22B()
	multiPMem := megatronPortusDumpOn(gpt, nil)
	multiDRAM := megatronPortusDumpOn(gpt, func(c *cluster.Config) { c.DRAMFallback = true })

	t := &Table{
		ID:     "ablation-dram",
		Title:  "Checkpoint target: Optane PMem vs DRAM fallback",
		Header: []string{"Workload", "PMem", "DRAM", "DRAM vs PMem"},
		Rows: [][]string{
			{"BERT-Large, 1 GPU", metrics.FormatDuration(singlePMem.ckpt), metrics.FormatDuration(singleDRAM.ckpt), ratio(singlePMem.ckpt, singleDRAM.ckpt)},
			{"GPT-22.4B, 16 GPUs", fmt.Sprintf("%.1fs", multiPMem.Seconds()), fmt.Sprintf("%.1fs", multiDRAM.Seconds()), ratio(multiPMem, multiDRAM)},
		},
		Notes: []string{
			"single-flow checkpoints see no difference — both media outrun the GPU BAR read path (the paper's §V-B observation)",
			"concurrent pulls are PMem-bandwidth-bound (6.2 GB/s aggregate); DRAM lifts the ceiling to the NIC",
			"the trade: DRAM checkpoints do not survive a storage-server power failure",
		},
	}
	return []*Table{t}
}
