package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/train"
)

// AblationChurn measures goodput under sustained failures — the regime
// the paper's introduction cites from Oobleck and Bamboo ("a failure
// usually occurs every 10 minutes"). Two parts:
//
//   - a full-fidelity simulation on ResNet50 with failures injected
//     every ~45 seconds of training, each policy at its finest feasible
//     interval — real restores, real lost-work replay;
//   - an analytic 24-hour projection for GPT-22.4B from the measured
//     checkpoint/restore costs, where simulating a day of training is
//     not worth the event count.
func AblationChurn() []*Table {
	spec := model.TableII()[2] // resnet50
	const iterations = 1500
	failEvery := int((45 * time.Second) / spec.IterTime)

	runPolicy := func(mk func(env sim.Env, rig *portusRig) train.Checkpointer, interval int) train.Result {
		var res train.Result
		runEngine(func(env sim.Env) {
			rig, err := newPortusRig(env, voltaConfig(), nil)
			if err != nil {
				panic(err)
			}
			res, err = train.Run(env, train.Config{
				Spec: spec, Policy: mk(env, rig), Interval: interval,
				Iterations: iterations, FailEvery: failEvery,
			})
			if err != nil {
				panic(err)
			}
		})
		return res
	}

	_, cfPersist := profileCheckFreq(spec)
	cfInterval := minFeasibleInterval(spec.IterTime, cfPersist)
	cfRes := runPolicy(func(env sim.Env, rig *portusRig) train.Checkpointer {
		placed, err := gpu.Place(rig.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		return baseline.NewCheckFreq(fsim.NewBeeGFS(rig.cl.Storage[0]), rig.cl.Compute[0], placed)
	}, cfInterval)

	p := measurePortus(spec)
	poInterval := minFeasibleInterval(spec.IterTime, p.ckpt)
	poRes := runPolicy(func(env sim.Env, rig *portusRig) train.Checkpointer {
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		return &client.Async{C: c}
	}, poInterval)

	simTable := &Table{
		ID: "ablation-churn",
		Title: fmt.Sprintf("Goodput under sustained failures (resnet50, %d iterations, failure every %d iters ≈ 45s)",
			iterations, failEvery),
		Header: []string{"Policy", "Interval", "Total time", "Failures", "Lost iters", "Recovery", "Goodput (iter/s)"},
		Rows: [][]string{
			{"CheckFreq (BeeGFS-PMEM)", fmt.Sprintf("1/%d", cfInterval), secs(cfRes.Elapsed),
				fmt.Sprint(cfRes.Failures), fmt.Sprint(cfRes.LostIterations), secs(cfRes.RecoveryTime),
				fmt.Sprintf("%.2f", cfRes.Throughput())},
			{"Portus (async)", fmt.Sprintf("1/%d", poInterval), secs(poRes.Elapsed),
				fmt.Sprint(poRes.Failures), fmt.Sprint(poRes.LostIterations), secs(poRes.RecoveryTime),
				fmt.Sprintf("%.2f", poRes.Throughput())},
		},
		Notes: []string{
			fmt.Sprintf("goodput gain %.2fx: finer intervals lose less work per failure (%d vs %d iterations replayed) and restores return straight into GPU memory",
				poRes.Throughput()/cfRes.Throughput(), cfRes.LostIterations, poRes.LostIterations),
		},
	}

	// Analytic 24-hour GPT-22.4B projection under 10-minute failures.
	// Each policy runs at the interval that maximizes its own goodput,
	// subject to its feasibility floor.
	gpt := model.GPT22B()
	cfPersistGPT := megatronTorchSaveDump(gpt)
	poPullGPT := megatronPortusDump(gpt)
	cfSnapshot := 2800 * time.Millisecond
	cfRestore := 90 * time.Second // 89.6 GB over the GDS read path
	poRestore := 8 * time.Second  // measured: one-sided writes at the NIC limit
	mtbf := 10 * time.Minute
	mtbfIters := float64(mtbf) / float64(gpt.IterTime)

	// perIterCost is the expected wall time per useful iteration at a
	// given interval: compute + amortized stall + amortized failure loss.
	perIterCost := func(interval int, stallPerCkpt, restore time.Duration) time.Duration {
		stall := float64(stallPerCkpt) / float64(interval)
		loss := (float64(interval)/2*float64(gpt.IterTime) + float64(restore)) / mtbfIters
		return gpt.IterTime + time.Duration(stall) + time.Duration(loss)
	}
	optimize := func(floor int, stallPerCkpt, restore time.Duration) (int, time.Duration) {
		bestI, bestC := floor, perIterCost(floor, stallPerCkpt, restore)
		for i := floor; i <= 1000; i++ {
			if c := perIterCost(i, stallPerCkpt, restore); c < bestC {
				bestI, bestC = i, c
			}
		}
		return bestI, bestC
	}
	cfFloor := minFeasibleInterval(gpt.IterTime, cfPersistGPT)
	poFloor := minFeasibleInterval(gpt.IterTime, poPullGPT)
	cfOpt, cfCost := optimize(cfFloor, cfSnapshot, cfRestore)
	poOpt, poCost := optimize(poFloor, asyncStall(gpt.IterTime, poPullGPT), poRestore)
	day := float64(24 * time.Hour)
	cfDay := int(day / float64(cfCost))
	poDay := int(day / float64(poCost))
	rpo := func(interval int, restore time.Duration) time.Duration {
		return time.Duration(interval/2)*gpt.IterTime + restore
	}

	gptTable := &Table{
		ID:     "ablation-churn-gpt",
		Title:  "Projected GPT-22.4B goodput over 24h, failure every 10 minutes (analytic, measured costs, per-policy optimal interval)",
		Header: []string{"Policy", "Floor", "Optimal interval", "Mean loss/failure", "Useful iters/day"},
		Rows: [][]string{
			{"CheckFreq (BeeGFS-PMEM)", fmt.Sprintf("1/%d", cfFloor), fmt.Sprintf("1/%d", cfOpt),
				fmt.Sprintf("%.0fs", rpo(cfOpt, cfRestore).Seconds()), fmt.Sprint(cfDay)},
			{"Portus (async)", fmt.Sprintf("1/%d", poFloor), fmt.Sprintf("1/%d", poOpt),
				fmt.Sprintf("%.0fs", rpo(poOpt, poRestore).Seconds()), fmt.Sprint(poDay)},
		},
		Notes: []string{
			fmt.Sprintf("goodput gain %.2fx; the larger win is recovery freshness: a failure costs Portus %.0fs of lost state vs CheckFreq's %.0fs",
				float64(poDay)/float64(cfDay), rpo(poOpt, poRestore).Seconds(), rpo(cfOpt, cfRestore).Seconds()),
			fmt.Sprintf("CheckFreq cannot checkpoint finer than 1/%d (persist %.0fs must drain); Portus's floor is 1/%d — when operators demand finer checkpoints than CheckFreq's floor (Figures 15/16 run 1/25), CheckFreq collapses and the gap becomes 2.4x+",
				cfFloor, cfPersistGPT.Seconds(), poFloor),
			"failure cadence from the paper's §I citations (Oobleck/Bamboo observe failures every ~10 minutes at scale)",
		},
	}
	return []*Table{simTable, gptTable}
}
