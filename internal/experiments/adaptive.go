package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
)

// profileCheckFreq measures the two CheckFreq phases for spec: the
// blocking snapshot and the background persist.
func profileCheckFreq(spec model.Spec) (snapshot, persist time.Duration) {
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, err := gpu.Place(rig.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		backend := fsim.NewBeeGFS(rig.cl.Storage[0])
		start := env.Now()
		_ = baseline.Snapshot(env, rig.cl.Compute[0], placed)
		snapshot = env.Now() - start
		cp := baseline.NewTorchSave(backend, rig.cl.Compute[0], placed)
		start = env.Now()
		if err := cp.Checkpoint(env, 1); err != nil {
			panic(err)
		}
		persist = (env.Now() - start) - snapshot
	})
	return snapshot, persist
}

// minFeasibleInterval is the finest checkpoint frequency a policy
// sustains: its pipelined phase (persist for CheckFreq, the pull for
// Portus) must complete before the next checkpoint is due, or every
// checkpoint stalls on its predecessor.
func minFeasibleInterval(iterTime, pipelined time.Duration) int {
	n := int(pipelined/iterTime) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// asyncStall is Portus-async's per-checkpoint training stall: the pull
// overlaps one iteration's forward+backward; the remainder blocks the
// update phase (the WAR barrier).
func asyncStall(iterTime, pull time.Duration) time.Duration {
	overlap := time.Duration(0.8 * float64(iterTime)) // F+B share
	if pull <= overlap {
		return 0
	}
	return pull - overlap
}

// AblationAdaptive quantifies "Portus supports finer-grained
// checkpoints" (§I, §V-E): for each model, the finest interval each
// policy can physically sustain, and the training stall paid there.
// CheckFreq's floor is its persist time (the next snapshot waits for the
// previous persist); Portus's floor is its pull time.
func AblationAdaptive() []*Table {
	t := &Table{
		ID:     "ablation-adaptive",
		Title:  "Finest sustainable checkpoint interval per policy",
		Header: []string{"Model", "Iter time", "CheckFreq min", "stall@min", "Portus min", "stall@min", "Frequency gain"},
	}
	for _, spec := range model.TableII() {
		snapshot, persist := profileCheckFreq(spec)
		cfMin := minFeasibleInterval(spec.IterTime, persist)
		p := measurePortus(spec)
		poMin := minFeasibleInterval(spec.IterTime, p.ckpt)
		t.Rows = append(t.Rows, []string{
			spec.Name,
			metrics.FormatDuration(spec.IterTime),
			fmt.Sprintf("1/%d", cfMin),
			metrics.FormatDuration(snapshot),
			fmt.Sprintf("1/%d", poMin),
			metrics.FormatDuration(asyncStall(spec.IterTime, p.ckpt)),
			fmt.Sprintf("%.1fx", float64(cfMin)/float64(poMin)),
		})
	}

	// The paper's 24-hour GPT framing (§V-E): at the Figure 15/16
	// interval, how many iterations does each policy complete per day?
	gpt := model.GPT22B()
	cfPersist := megatronTorchSaveDump(gpt)
	poPull := megatronPortusDump(gpt)
	cfSnapshot := 2800 * time.Millisecond // 16 ranks' staging copies, PCIe-shared
	const interval = fig15Interval
	cfCycle := time.Duration(interval)*gpt.IterTime + cfSnapshot
	if cfPersist+cfSnapshot > cfCycle {
		cfCycle = cfPersist + cfSnapshot // persist-bound: every cycle waits
	}
	poCycle := time.Duration(interval)*gpt.IterTime + asyncStall(gpt.IterTime, poPull)
	day := 24 * time.Hour
	cfPerDay := int(float64(interval) * float64(day) / float64(cfCycle))
	poPerDay := int(float64(interval) * float64(day) / float64(poCycle))
	t.Notes = append(t.Notes,
		fmt.Sprintf("GPT-22.4B at the Fig. 15 interval (1/%d): CheckFreq completes ~%d iterations/day, Portus ~%d — %d more (paper: ~14,400 more, §V-E)",
			interval, cfPerDay, poPerDay, poPerDay-cfPerDay),
		fmt.Sprintf("GPT-22.4B feasibility floors: CheckFreq 1/%d (persist %.0fs), Portus 1/%d (pull %.1fs)",
			minFeasibleInterval(gpt.IterTime, cfPersist), cfPersist.Seconds(),
			minFeasibleInterval(gpt.IterTime, poPull), poPull.Seconds()),
	)
	return []*Table{t}
}
