// The failover experiment proves the replicated storage tier survives
// the death of a whole storage node with zero lost committed
// checkpoints: a 4-node tier at replication factor 2 runs a sharded
// training stream, one node is killed mid-checkpoint (fabric routes
// cut, control listener and connections severed, worker pool halted),
// and the run must keep checkpointing on the survivors, restore
// byte-identically from the surviving replicas, rebuild a replacement
// node by anti-entropy re-replication, and detect a CRC-corrupted
// replica at restore time by failing over to the healthy copy.

package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// The failover grid: a small GPT partitioned 2×2 = 4 shards over one
// 4-GPU compute node, stored on 4 storage nodes at rf=2 — every node
// carries about two replica copies, so killing any one leaves a full
// copy of every shard alive.
const (
	failoverRF       = 2
	failoverStorage  = 4
	failoverIters    = 12 // checkpoints before revival
	failoverKillAt   = 6  // iteration killed mid-flight
	failoverPostRevi = 2  // checkpoints after the node rejoins
)

const failoverModelName = "failover-gpt"

func failoverSpec() model.Spec {
	return model.GPT(failoverModelName, 2, 64, 512, 10*time.Millisecond)
}

// FailoverOutcome is the run's measured behavior.
type FailoverOutcome struct {
	Victim string
	// KillIterCommitted reports whether the iteration in flight during
	// the kill still group-committed on the surviving replicas.
	KillIterCommitted bool
	// Regressions counts steps where the manifest's group-committed
	// iteration moved backward — the invariant is that this stays 0.
	Regressions int
	// CommittedFinal is the group-committed iteration after the full
	// stream (must equal failoverIters + failoverPostRevi).
	CommittedFinal uint64
	// DegradedRestoreOK: after the kill, with the victim still dead,
	// every shard restored byte-identically from surviving replicas.
	DegradedRestoreOK bool
	// RebuiltShards counts victim-owned shard copies converged on the
	// replacement node by anti-entropy; RebuiltOK requires every one.
	RebuiltShards int
	RebuiltOK     bool
	// CorruptionDetected: a deliberately corrupted replica was caught
	// by its CRC at restore and the restore failed over and verified.
	CorruptionDetected bool
	CorruptRestoreOK   bool
	Corruptions        int64
	// ScrapeOK reports the failover series appear in the Prometheus
	// rendering of the run's registry.
	ScrapeOK bool
}

// RunFailover executes the full kill/failover/rebuild/corruption
// scenario at the given seed and returns the measured outcome. It
// panics on any violated invariant so `make failover` and CI fail
// loudly.
func RunFailover(seed int64) FailoverOutcome {
	var out FailoverOutcome
	runEngine(func(env sim.Env) {
		reg := telemetry.NewRegistry()
		inj := faults.NewInjector(faults.Config{Seed: seed, Telemetry: reg})
		rig, err := newTierRig(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 4,
			GPUMemBytes:  64 << 20,
			StorageNodes: failoverStorage, PMemBytes: 256 << 20,
			Materialized: true,
		}, func(node string, dcfg *daemon.Config) {
			dcfg.Replicas = failoverRF
		})
		if err != nil {
			panic(err)
		}
		daemons := make(map[string]*daemon.Daemon, len(rig.daemons))
		pms := make(map[string]*pmem.Device, len(rig.daemons))
		for i, st := range rig.cl.Storage {
			st, d := st, rig.daemons[i]
			daemons[st.Name] = d
			pms[st.Name] = st.PMem
			// A node kill = no fabric routes + no control plane + no
			// worker pool, all at once.
			inj.RegisterNode(st.Name,
				func(env sim.Env) { rig.cl.Fabric.CutNode(st.Name) },
				func(env sim.Env) { rig.net.Shutdown(env, st.Name) },
				func(env sim.Env) { d.Halt(env) },
			)
		}

		rt := client.NewRouter(rig.pmap, rig.dial, client.RouterOptions{
			Telemetry: reg,
			Group:     failoverModelName,
			Replicas:  failoverRF,
			Client:    client.Options{Telemetry: reg},
		})
		defer rt.Close()
		placed, err := rig.placeSharded(env, rt, failoverSpec(), 2, 2)
		if err != nil {
			panic(err)
		}
		out.Victim = rt.Members()[0].Node
		apply := func(iter uint64) {
			for _, p := range placed {
				p.ApplyUpdate(iter)
			}
		}
		var committed uint64
		observe := func() {
			c := rt.Manifest().Committed()
			if c < committed {
				out.Regressions++
			}
			if c > committed {
				committed = c
			}
		}

		// Phase 1: checkpoint stream with the victim killed while
		// iteration failoverKillAt is in flight.
		for it := uint64(1); it <= failoverIters; it++ {
			apply(it)
			if it == failoverKillAt {
				gc, err := rt.CheckpointAsync(env, it)
				if err != nil {
					panic(fmt.Sprintf("failover: fan-out %d: %v", it, err))
				}
				inj.KillNode(env, out.Victim)
				if gc.Wait(env) == nil {
					out.KillIterCommitted = true
				}
			} else if err := rt.CheckpointSync(env, it); err != nil {
				panic(fmt.Sprintf("failover: checkpoint %d failed (victim %s dead since %d): %v",
					it, out.Victim, failoverKillAt, err))
			}
			observe()
		}
		if rt.Manifest().Committed() != failoverIters {
			panic(fmt.Sprintf("failover: committed %d after the stream, want %d — a committed checkpoint was lost",
				rt.Manifest().Committed(), failoverIters))
		}
		if g := reg.Gauge("portus_router_degraded_nodes", "").Value(); g != 1 {
			panic(fmt.Sprintf("failover: degraded gauge = %d with one node dead, want 1", g))
		}

		// Phase 2: degraded restore — the victim is still dead, so every
		// shard must come back from a surviving replica, byte-identical.
		apply(7777) // scramble
		iter, err := rt.Restore(env)
		if err != nil || iter != failoverIters {
			panic(fmt.Sprintf("failover: degraded restore: iter %d, err %v", iter, err))
		}
		out.DegradedRestoreOK = true
		for i, p := range placed {
			if bad := p.VerifyIteration(iter); bad != -1 {
				out.DegradedRestoreOK = false
				panic(fmt.Sprintf("failover: shard %d tensor %d mismatched after degraded restore", i, bad))
			}
		}

		// Phase 3: a replacement node joins under the victim's name with
		// a FRESH namespace — everything it now owns must be rebuilt
		// from its peers by anti-entropy.
		freshPM := pmem.New(pmem.Config{
			Name: out.Victim + "/pmem-replacement", DataSize: 256 << 20,
			MetaSize: 64 << 20, Materialized: true, Mode: pmem.Devdax,
		})
		victimIdx := -1
		for i, st := range rig.cl.Storage {
			if st.Name == out.Victim {
				victimIdx = i
			}
		}
		rig.cl.Fabric.RestoreNode(out.Victim)
		// The daemon validates its own membership at construction, so
		// the replacement re-enters the shared placement map first; the
		// router's Join below bumps the epoch again and re-places.
		nodes := append([]placement.Node(nil), rig.pmap.Nodes()...)
		readmitted := false
		for i := range nodes {
			if nodes[i].Name == out.Victim {
				nodes[i].Weight = freshPM.DataSize()
				readmitted = true
			}
		}
		if !readmitted {
			nodes = append(nodes, placement.Node{Name: out.Victim, Weight: freshPM.DataSize()})
		}
		if err := rig.pmap.Update(nodes); err != nil {
			panic(err)
		}
		newd, err := daemon.New(env, daemon.Config{
			PMem: freshPM, RNode: rig.cl.Storage[victimIdx].RNode, Fabric: rig.cl.Fabric,
			NodeName: out.Victim, Group: rig.pmap, Replicas: failoverRF,
		})
		if err != nil {
			panic(err)
		}
		l, err := rig.net.Listen(env, out.Victim)
		if err != nil {
			panic(err)
		}
		env.Go("portusd-"+out.Victim+"-r", func(env sim.Env) { newd.Serve(env, l) })
		daemons[out.Victim], pms[out.Victim] = newd, freshPM
		if err := rt.Join(env, placement.Node{Name: out.Victim, Weight: freshPM.DataSize()}); err != nil {
			panic(fmt.Sprintf("failover: rejoin: %v", err))
		}
		out.RebuiltOK = true
		for _, m := range rt.Members() {
			owned := false
			for _, n := range rt.Placement().Owners(m.Shard, failoverRF) {
				if n == out.Victim {
					owned = true
				}
			}
			if !owned {
				continue
			}
			im, err := newd.Store().Lookup(m.Shard)
			if err != nil {
				out.RebuiltOK = false
				panic(fmt.Sprintf("failover: rebuilt node missing shard %q: %v", m.Shard, err))
			}
			if _, v, ok := im.LatestDone(); !ok || v.Iteration != committed {
				out.RebuiltOK = false
				panic(fmt.Sprintf("failover: shard %q on rebuilt node at iteration %d, want %d",
					m.Shard, v.Iteration, committed))
			}
			out.RebuiltShards++
		}
		if out.RebuiltShards == 0 {
			panic("failover: rendezvous assigned the rebuilt node no shards — grid no longer exercises anti-entropy")
		}
		if g := reg.Gauge("portus_router_degraded_nodes", "").Value(); g != 0 {
			panic(fmt.Sprintf("failover: degraded gauge = %d after rejoin, want 0", g))
		}

		// Phase 4: the healed tier keeps committing, including on the
		// replacement node.
		for it := uint64(failoverIters + 1); it <= failoverIters+failoverPostRevi; it++ {
			apply(it)
			if err := rt.CheckpointSync(env, it); err != nil {
				panic(fmt.Sprintf("failover: post-rejoin checkpoint %d: %v", it, err))
			}
			observe()
		}
		out.CommittedFinal = rt.Manifest().Committed()
		if out.CommittedFinal != failoverIters+failoverPostRevi {
			panic(fmt.Sprintf("failover: committed %d after rejoin, want %d",
				out.CommittedFinal, failoverIters+failoverPostRevi))
		}

		// Phase 5: corrupt one replica's stored bytes. The restore must
		// catch it by CRC, count it, fail over to the healthy copy, and
		// still verify byte-identical.
		m0 := rt.Members()[0]
		corruptNode := m0.Replicas()[0]
		im, err := daemons[corruptNode].Store().Lookup(m0.Shard)
		if err != nil {
			panic(err)
		}
		slot, _, ok := im.LatestDone()
		if !ok {
			panic("failover: corrupt target has no complete version")
		}
		ext := im.TensorData(0, slot)
		garbage := make([]byte, 64)
		for i := range garbage {
			garbage[i] = 0xA5
		}
		pms[corruptNode].Data().Write(ext.Off, garbage)
		apply(8888) // scramble
		iter, err = rt.Restore(env)
		if err != nil || iter != out.CommittedFinal {
			panic(fmt.Sprintf("failover: restore with corrupt replica: iter %d, err %v", iter, err))
		}
		out.CorruptRestoreOK = true
		for i, p := range placed {
			if bad := p.VerifyIteration(iter); bad != -1 {
				panic(fmt.Sprintf("failover: shard %d tensor %d mismatched after corrupt-replica restore", i, bad))
			}
		}
		out.Corruptions = reg.Counter("portus_restore_corruptions_total", "").Value()
		out.CorruptionDetected = out.Corruptions >= 1
		if !out.CorruptionDetected {
			panic("failover: corrupted replica was not detected via CRC at restore")
		}

		var scrape strings.Builder
		reg.WritePrometheus(&scrape)
		s := scrape.String()
		out.ScrapeOK = strings.Contains(s, "portus_restore_corruptions_total") &&
			strings.Contains(s, "portus_router_degraded_nodes") &&
			strings.Contains(s, `portus_faults_injected_total{site="node-kill"}`)
	})
	return out
}

// Failover runs the storage-node-loss scenario and reports each
// phase's verdict.
func Failover() []*Table {
	o := RunFailover(ChaosSeed)
	t := &Table{
		ID: "failover",
		Title: fmt.Sprintf("Surviving storage-node loss: %d nodes, rf=%d, node %q killed at iteration %d",
			failoverStorage, failoverRF, o.Victim, failoverKillAt),
		Header: []string{"phase", "verdict"},
	}
	verdict := func(ok bool, okText, failText string) string {
		if ok {
			return okText
		}
		return failText
	}
	killIter := "committed on survivors"
	if !o.KillIterCommitted {
		killIter = "reported ShardError; surviving copies recorded"
	}
	t.Rows = append(t.Rows,
		[]string{"iteration in flight at kill", killIter},
		[]string{"committed-iteration regressions", fmt.Sprint(o.Regressions)},
		[]string{fmt.Sprintf("stream continued to iteration %d", failoverIters), "every post-kill checkpoint committed"},
		[]string{"degraded restore (victim dead)", verdict(o.DegradedRestoreOK, "byte-identical from surviving replicas", "FAILED")},
		[]string{"anti-entropy rebuild", fmt.Sprintf("%d shard cop(ies) converged on the replacement node", o.RebuiltShards)},
		[]string{fmt.Sprintf("healed tier to iteration %d", o.CommittedFinal), "full-strength group commits resumed"},
		[]string{"corrupt-replica restore", verdict(o.CorruptRestoreOK && o.CorruptionDetected,
			fmt.Sprintf("CRC caught %d corrupt cop(ies); failed over and verified", o.Corruptions), "FAILED")},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %d; kill = fabric routes cut + control listener and connections severed + worker pool halted", ChaosSeed),
		"zero lost committed checkpoints: the manifest's group-committed iteration never moved backward at any step",
		"corruption observability: portus_restore_corruptions_total counts CRC-failed replicas skipped at restore",
	)
	if !o.ScrapeOK {
		t.Notes = append(t.Notes, "WARNING: failover series missing from the Prometheus scrape")
	}
	return []*Table{t}
}
