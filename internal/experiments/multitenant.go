package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// mtSpec is one multi-tenant training job: small enough that the
// experiment is scheduler-bound, not bandwidth-bound.
func mtSpec(i int) model.Spec {
	return model.GPT(fmt.Sprintf("tenant%02d", i), 4, 512, 1024, 0)
}

// mtRun is one fairness-sweep point.
type mtRun struct {
	tenants    int
	makespan   time.Duration
	throughput float64 // committed checkpoints per virtual second
	meanStall  time.Duration
	fairness   float64 // max/min per-tenant mean checkpoint stall
}

// mtFairness runs `tenants` identical jobs, each checkpointing `rounds`
// times synchronously, against one daemon, and measures per-tenant mean
// checkpoint stall. It panics if any committed checkpoint is lost: every
// tenant's newest durable version must be its final acked iteration.
func mtFairness(tenants, rounds int) mtRun {
	out := mtRun{tenants: tenants}
	runEngine(func(env sim.Env) {
		cfg := voltaConfig()
		cfg.GPUsPerNode = tenants
		rig, err := newPortusRig(env, cfg, func(c *daemon.Config) { c.Workers = 4 })
		if err != nil {
			panic(err)
		}
		type tenant struct {
			c     *client.Client
			stall time.Duration
		}
		ts := make([]*tenant, tenants)
		placedAll := make([]interface{ ApplyUpdate(uint64) }, tenants)
		for i := 0; i < tenants; i++ {
			placed, c, err := rig.place(env, 0, i, mtSpec(i))
			if err != nil {
				panic(err)
			}
			ts[i] = &tenant{c: c}
			placedAll[i] = placed
		}
		start := env.Now()
		g := sim.NewGroup(env)
		for i := range ts {
			i := i
			g.Add(env, 1)
			env.Go("tenant", func(env sim.Env) {
				defer g.Done(env)
				for r := uint64(1); r <= uint64(rounds); r++ {
					placedAll[i].ApplyUpdate(r)
					t0 := env.Now()
					if err := ts[i].c.CheckpointSync(env, r); err != nil {
						panic(fmt.Sprintf("tenant %d iteration %d: %v", i, r, err))
					}
					ts[i].stall += env.Now() - t0
				}
			})
		}
		g.Wait(env)
		out.makespan = env.Now() - start
		out.throughput = float64(tenants*rounds) / out.makespan.Seconds()

		var minMean, maxMean, sum time.Duration
		for i, tn := range ts {
			mean := tn.stall / time.Duration(rounds)
			sum += mean
			if i == 0 || mean < minMean {
				minMean = mean
			}
			if mean > maxMean {
				maxMean = mean
			}
			// Zero lost committed checkpoints: the newest durable version
			// is the final iteration the daemon acked.
			m, err := rig.d.Store().Lookup(mtSpec(i).Name)
			if err != nil {
				panic(err)
			}
			if _, v, ok := m.LatestDone(); !ok || v.Iteration != uint64(rounds) {
				panic(fmt.Sprintf("tenant %d lost committed checkpoint: latest %v ok=%v, want %d",
					i, v, ok, rounds))
			}
		}
		out.meanStall = sum / time.Duration(tenants)
		if minMean > 0 {
			out.fairness = float64(maxMean) / float64(minMean)
		} else {
			out.fairness = 1
		}
	})
	return out
}

// mtPressure drives the scheduler past its bounds: one tenant bursts
// async checkpoints faster than the single worker drains (stale
// iterations must coalesce to the newest), while three more tenants
// overflow a tiny global queue (the daemon must answer BUSY and the
// clients must heal through retry). Returns the observability counters
// and the per-tenant committed frontier.
func mtPressure() (coalesced, busyReplies, clientRetries int64, committed map[string]uint64) {
	committed = make(map[string]uint64)
	runEngine(func(env sim.Env) {
		reg := telemetry.NewRegistry()
		cfg := voltaConfig()
		cfg.GPUsPerNode = 4
		rig, err := newPortusRig(env, cfg, func(c *daemon.Config) {
			c.Workers = 1
			c.QueueCap = 2
			c.ModelQueueCap = 1
			c.Telemetry = reg
		})
		if err != nil {
			panic(err)
		}
		clients := make([]*client.Client, 4)
		placed := make([]interface{ ApplyUpdate(uint64) }, 4)
		for i := 0; i < 4; i++ {
			p, c, err := rig.place(env, 0, i, mtSpec(i))
			if err != nil {
				panic(err)
			}
			clients[i], placed[i] = c, p
		}
		bursts := []uint64{8, 3, 3, 3}
		g := sim.NewGroup(env)
		for i, burst := range bursts {
			i, burst := i, burst
			g.Add(env, 1)
			env.Go("burst", func(env sim.Env) {
				defer g.Done(env)
				placed[i].ApplyUpdate(burst)
				var cps []*client.Completion
				for it := uint64(1); it <= burst; it++ {
					cp, err := clients[i].CheckpointAsync(env, it)
					if err != nil {
						panic(err)
					}
					cps = append(cps, cp)
				}
				for it, cp := range cps {
					if err := cp.Wait(env); err != nil {
						panic(fmt.Sprintf("tenant %d iteration %d under pressure: %v", i, it+1, err))
					}
				}
			})
		}
		g.Wait(env)
		coalesced = reg.Counter("portus_sched_coalesced_total", "").Value()
		busyReplies = reg.Counter("portus_sched_busy_replies_total", "").Value()
		for i, burst := range bursts {
			clientRetries += clients[i].BusyRetries()
			m, err := rig.d.Store().Lookup(mtSpec(i).Name)
			if err != nil {
				panic(err)
			}
			_, v, ok := m.LatestDone()
			if !ok || v.Iteration != burst {
				panic(fmt.Sprintf("tenant %d lost committed checkpoint under pressure: latest %v ok=%v, want %d",
					i, v, ok, burst))
			}
			committed[mtSpec(i).Name] = v.Iteration
		}
	})
	return coalesced, busyReplies, clientRetries, committed
}

// Multitenant evaluates the fair scheduler under concurrent jobs: a
// 1–16 tenant sweep reporting aggregate checkpoint throughput and the
// max/min fairness ratio, then a pressure run proving stale-request
// coalescing and BUSY backpressure are observable and lossless.
func Multitenant() []*Table {
	const rounds = 6
	sweep := &Table{
		ID:     "multitenant-sweep",
		Title:  fmt.Sprintf("Concurrent identical tenants, %d sync checkpoints each (fair policy, 4 workers)", rounds),
		Header: []string{"Tenants", "Makespan", "Aggregate ckpt/s", "Mean stall", "Fairness (max/min)"},
	}
	for _, n := range []int{1, 2, 4, 8, 16} {
		r := mtFairness(n, rounds)
		sweep.Rows = append(sweep.Rows, []string{
			fmt.Sprint(n), secs(r.makespan), fmt.Sprintf("%.1f", r.throughput),
			fmt.Sprintf("%.3fms", float64(r.meanStall)/float64(time.Millisecond)),
			fmt.Sprintf("%.2f", r.fairness),
		})
		if n == 8 && r.fairness > 2.0 {
			panic(fmt.Sprintf("fairness ratio %.2f at 8 tenants exceeds the 2.0 bound", r.fairness))
		}
	}
	sweep.Notes = append(sweep.Notes,
		"per-model FIFO lanes + weighted-fair ring: identical tenants see near-identical mean stall",
		"every tenant's newest durable version equals its final acked iteration (zero lost commits; verified)",
	)

	coalesced, busy, retries, committed := mtPressure()
	lost := 0
	for _, iter := range committed {
		if iter == 0 {
			lost++
		}
	}
	pressure := &Table{
		ID:     "multitenant-pressure",
		Title:  "Overload behavior: 1 bursting + 3 contending tenants, 1 worker, global queue cap 2",
		Header: []string{"Signal", "Value"},
		Rows: [][]string{
			{"portus_sched_coalesced_total", fmt.Sprint(coalesced)},
			{"portus_sched_busy_replies_total", fmt.Sprint(busy)},
			{"client busy retries (sum)", fmt.Sprint(retries)},
			{"tenants with lost commits", fmt.Sprint(lost)},
		},
		Notes: []string{
			"stale checkpoint requests coalesce to the newest iteration instead of queuing; superseded waiters are still acked",
			"overflow is answered with BUSY + retry-after, and client backoff heals every bounced request — no waiter is lost",
		},
	}
	return []*Table{sweep, pressure}
}
