package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/perfmodel"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "table2", "fig2", "datapath", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ablation-staging", "ablation-onesided", "ablation-doublemap",
		"ablation-workers", "ablation-bar", "ablation-frequency",
		"ablation-dram", "ablation-adaptive", "ablation-churn",
		"ablation-pipeline", "multitenant", "appendix",
	}
	have := map[string]bool{}
	for _, e := range Registry() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := ByID("fig11"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("bogus"); err == nil {
		t.Fatal("ByID accepted a bogus id")
	}
}

// parseRatio reads "8.49x" cells.
func parseRatio(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q: %v", cell, err)
	}
	return v
}

// parsePct reads "41.3%" cells.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", cell, err)
	}
	return v
}

// TestTable1MatchesPaperBreakdown pins the calibration: each stage of
// the traditional checkpoint must stay within 4 points of Table I.
func TestTable1MatchesPaperBreakdown(t *testing.T) {
	tbl := Table1()[0]
	want := map[string]float64{
		"GPU to Main Memory":  15.5,
		"Serialization":       41.7,
		"Transmission (RDMA)": 30.0,
		"Server DAX write":    12.8,
	}
	for _, row := range tbl.Rows {
		got := parsePct(t, row[2])
		if diff := got - want[row[0]]; diff > 4 || diff < -4 {
			t.Errorf("%s: measured %.1f%%, paper %.1f%%", row[0], got, want[row[0]])
		}
	}
}

// TestFig11SpeedupShape verifies the headline result: Portus beats both
// baselines on every model, the mean lands near the paper's 8.49x/8.18x,
// and ResNet50 is the best case.
func TestFig11SpeedupShape(t *testing.T) {
	tbl := Fig11()[0]
	var best string
	bestRatio := 0.0
	var sumBG float64
	for _, row := range tbl.Rows {
		bg := parseRatio(t, row[4])
		ex := parseRatio(t, row[5])
		if bg < 5 || ex < 5 {
			t.Errorf("%s: speedups %.2f / %.2f below 5x", row[0], bg, ex)
		}
		if bg > bestRatio {
			bestRatio, best = bg, row[0]
		}
		sumBG += bg
	}
	mean := sumBG / float64(len(tbl.Rows))
	if mean < 7 || mean > 10 {
		t.Errorf("mean BeeGFS speedup %.2f outside [7, 10] (paper: 8.49)", mean)
	}
	if best != "resnet50" {
		t.Errorf("best case is %s, paper says resnet50", best)
	}
	if bestRatio < 8.5 || bestRatio > 11 {
		t.Errorf("best-case speedup %.2f outside [8.5, 11] (paper: 9.23)", bestRatio)
	}
}

// TestFig12RestoreShape: restore speedups are real but smaller than
// checkpoint speedups (GDS helps the baselines).
func TestFig12RestoreShape(t *testing.T) {
	ckpt := Fig11()[0]
	rest := Fig12()[0]
	for i := range rest.Rows {
		cb := parseRatio(t, ckpt.Rows[i][4])
		rb := parseRatio(t, rest.Rows[i][4])
		if rb >= cb {
			t.Errorf("%s: restore speedup %.2f not below checkpoint %.2f", rest.Rows[i][0], rb, cb)
		}
		if rb < 3.5 {
			t.Errorf("%s: restore speedup %.2f below 3.5x", rest.Rows[i][0], rb)
		}
	}
}

// TestFig14GPTShape: torch.save needs >100 s for GPT-22.4B while Portus
// stays under 20 s, and the gap holds across scales.
func TestFig14GPTShape(t *testing.T) {
	tbl := Fig14()[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig14 rows = %d", len(tbl.Rows))
	}
	last := tbl.Rows[3]
	ts, err := strconv.ParseFloat(last[2], 64)
	if err != nil {
		t.Fatal(err)
	}
	po, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ts < 100 {
		t.Errorf("GPT-22.4B torch.save = %.1fs, paper reports >120s", ts)
	}
	if po < 10 || po > 20 {
		t.Errorf("GPT-22.4B Portus = %.1fs, paper reports ~15s", po)
	}
	for _, row := range tbl.Rows {
		if r := parseRatio(t, row[4]); r < 6 {
			t.Errorf("%s speedup %.2f below 6x", row[0], r)
		}
	}
}

// TestFig2OverheadShape: checkpoint overhead grows with model scale and
// reaches ~41% on GPT-22.4B.
func TestFig2OverheadShape(t *testing.T) {
	tbl := Fig2()[0]
	var prev float64
	for i, row := range tbl.Rows {
		got := parsePct(t, row[4])
		if got < prev {
			t.Errorf("overhead not increasing with scale at row %d", i)
		}
		prev = got
	}
	if first := parsePct(t, tbl.Rows[0][4]); first < 20 || first > 32 {
		t.Errorf("VIT overhead %.1f%% outside [20, 32] (paper: 24.9%%)", first)
	}
	if last := parsePct(t, tbl.Rows[2][4]); last < 35 || last > 52 {
		t.Errorf("GPT-22.4B overhead %.1f%% outside [35, 52] (paper: 41%%)", last)
	}
}

// TestDatapathStructure pins the structural claim of Figures 3/5.
func TestDatapathStructure(t *testing.T) {
	tbl := Datapath()[0]
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "Portus") {
			if row[1] != "0" || row[2] != "0" || row[3] != "no" {
				t.Errorf("Portus row = %v, want 0 copies, 0 crossings, no serialization", row)
			}
		} else {
			if row[1] == "0" || row[3] != "yes" {
				t.Errorf("baseline row = %v, want copies > 0 and serialization", row)
			}
		}
	}
}

// TestFig10BandwidthShape pins the datapath claims: GPU reads capped
// near 5.8 GB/s, writes near the NIC limit, saturation past 512 KiB.
func TestFig10BandwidthShape(t *testing.T) {
	tables := Fig10()
	readBW := tables[0]
	writeBW := tables[2]
	lastRead := readBW.Rows[len(readBW.Rows)-1]
	// Columns: Size, DRAM<->DRAM, DRAM<->GPU, PMEM<->DRAM, PMEM<->GPU.
	gpuRead, _ := strconv.ParseFloat(lastRead[2], 64)
	dramRead, _ := strconv.ParseFloat(lastRead[1], 64)
	if gpuRead < 5.0 || gpuRead > 5.9 {
		t.Errorf("GPU read peak %.2f GB/s, paper: 5.8", gpuRead)
	}
	if dramRead < 7.0 || dramRead > 8.5 {
		t.Errorf("DRAM read peak %.2f GB/s, paper: ~8.3", dramRead)
	}
	lastWrite := writeBW.Rows[len(writeBW.Rows)-1]
	gpuWrite, _ := strconv.ParseFloat(lastWrite[2], 64)
	if gpuWrite <= gpuRead {
		t.Errorf("GPU write peak %.2f not above read peak %.2f (BAR must not affect writes)", gpuWrite, gpuRead)
	}
}

// TestFig16Utilization pins the utilization claim within a few points.
func TestFig16Utilization(t *testing.T) {
	if testing.Short() {
		t.Skip("fig16 trains hundreds of GPT iterations")
	}
	tbl := Fig16()[0]
	// The note carries the averages; parse them out.
	note := tbl.Notes[0]
	if !strings.Contains(note, "Portus") || !strings.Contains(note, "CheckFreq") {
		t.Fatalf("note missing averages: %q", note)
	}
	var poAvg, cfAvg float64
	for _, f := range strings.Fields(note) {
		if strings.HasSuffix(f, "%") && poAvg == 0 {
			poAvg = parsePct(t, f)
		} else if strings.HasSuffix(f, "%") && strings.Contains(f, ".") && cfAvg == 0 && poAvg != 0 {
			cfAvg = parsePct(t, f)
		}
	}
	if poAvg < 70 || poAvg > 85 {
		t.Errorf("Portus utilization %.1f%% outside [70, 85] (paper: 76.4%%)", poAvg)
	}
}

// TestAblationsReportExpectedDirections smoke-checks each ablation's
// headline direction.
func TestAblationsReportExpectedDirections(t *testing.T) {
	if r := parseRatio(t, AblationStaging()[0].Rows[1][2]); r <= 1.2 {
		t.Errorf("staging slowdown %.2fx, want >1.2x", r)
	}
	if r := parseRatio(t, AblationOneSided()[0].Rows[1][2]); r <= 1.5 {
		t.Errorf("two-sided slowdown %.2fx, want >1.5x", r)
	}
	if r := parseRatio(t, AblationDoubleMap()[0].Rows[1][2]); r <= 1.1 {
		t.Errorf("fresh-allocation overhead %.2fx, want >1.1x", r)
	}
}

// TestPipelineDepthHelps pins the new ablation's headline: with 4 MiB
// chunks, pipeline depth 2 strictly beats the sequential datapath on
// BERT-Large because the flush of chunk N hides behind the pull of N+1.
func TestPipelineDepthHelps(t *testing.T) {
	spec := model.TableII()[6] // BERT-Large
	run := func(depth int) time.Duration {
		return measurePortusOpt(spec, nil, func(c *daemon.Config) {
			c.ChunkSize = perfmodel.DefaultChunk
			c.PipelineDepth = depth
		}).ckpt
	}
	d1, d2 := run(1), run(2)
	if d2 >= d1 {
		t.Errorf("depth-2 checkpoint (%v) not faster than depth-1 (%v)", d2, d1)
	}
}

// TestFig9PolicyOrdering pins the policy ranking of Figure 9 at
// per-iteration checkpoint frequency.
func TestFig9PolicyOrdering(t *testing.T) {
	tbl := Fig9()[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig9 rows = %d", len(tbl.Rows))
	}
	total := func(i int) float64 {
		v, err := strconv.ParseFloat(tbl.Rows[i][1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	torch, cf, psync, pasync := total(0), total(1), total(2), total(3)
	if cf > torch*1.05 {
		t.Errorf("CheckFreq (%.2fs) slower than torch.save (%.2fs)", cf, torch)
	}
	if psync >= cf {
		t.Errorf("Portus-sync (%.2fs) not faster than CheckFreq (%.2fs)", psync, cf)
	}
	if pasync >= psync {
		t.Errorf("Portus-async (%.2fs) not faster than Portus-sync (%.2fs)", pasync, psync)
	}
	if torch/pasync < 4 {
		t.Errorf("async advantage %.1fx below 4x at per-iteration frequency", torch/pasync)
	}
}

// TestDRAMFallbackShape pins §IV-a's fallback behaviour: no single-flow
// difference, a real multi-GPU difference.
func TestDRAMFallbackShape(t *testing.T) {
	tbl := AblationDRAMTarget()[0]
	single := parseRatio(t, tbl.Rows[0][3])
	multi := parseRatio(t, tbl.Rows[1][3])
	if single < 0.95 || single > 1.1 {
		t.Errorf("single-flow DRAM-vs-PMem ratio %.2f, want ~1.0 (the paper's §V-B claim)", single)
	}
	if multi < 1.4 {
		t.Errorf("multi-GPU DRAM speedup %.2f, want >1.4 (PMem aggregate is the bottleneck)", multi)
	}
}

// TestAdaptiveFrequencyShape: Portus's feasibility floor (pull time)
// must sit several times below CheckFreq's (persist time) on every
// model.
func TestAdaptiveFrequencyShape(t *testing.T) {
	tbl := AblationAdaptive()[0]
	for _, row := range tbl.Rows {
		gain, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if gain < 3 {
			t.Errorf("%s: frequency gain %.1fx below 3x", row[0], gain)
		}
	}
}

// TestExperimentOutputIsDeterministic renders a full figure twice and
// requires byte-identical tables — the property that makes the
// reproduction auditable.
func TestExperimentOutputIsDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		for _, tbl := range Fig11() {
			b.WriteString(tbl.String())
		}
		for _, tbl := range Fig10() {
			b.WriteString(tbl.String())
		}
		return b.String()
	}
	if render() != render() {
		t.Fatal("two renders of the same experiments differ")
	}
}

// TestMeasurementsAreDeterministic: the virtual-time harness must
// reproduce identical numbers run-to-run.
func TestMeasurementsAreDeterministic(t *testing.T) {
	a := measurePortus(model.TableII()[2])
	b := measurePortus(model.TableII()[2])
	if a.ckpt != b.ckpt || a.restore != b.restore {
		t.Fatalf("nondeterministic measurement: %v/%v vs %v/%v", a.ckpt, a.restore, b.ckpt, b.restore)
	}
	if a.ckpt <= 0 || a.ckpt > time.Second {
		t.Fatalf("resnet50 Portus checkpoint = %v, implausible", a.ckpt)
	}
}
