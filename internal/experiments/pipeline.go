package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/perfmodel"
)

// AblationPipeline sweeps the datapath engine's pipeline depth and lane
// count: tensors split into 4 MiB chunks, the PMem flush of chunk N
// overlapping the pull of chunk N+1 once depth >= 2, and chunks striped
// across one queue pair per lane. Depth 1 x 1 lane is the paper's
// strictly sequential datapath; the single-GPU pull is BAR-bound, so
// extra lanes mostly show where striping stops helping.
func AblationPipeline() []*Table {
	var out []*Table
	lanesCols := []int{1, 2, 4}
	for _, spec := range []model.Spec{model.TableII()[6], model.GPTFamily()[0]} {
		t := &Table{
			ID: "ablation-pipeline",
			Title: fmt.Sprintf("Pipeline depth x lanes: %s checkpoint (%.1f GB, 4 MiB chunks)",
				spec.Name, float64(spec.TotalSize())/perfmodel.GB),
			Header: []string{"Depth", "1 lane", "2 lanes", "4 lanes"},
		}
		var base time.Duration
		for _, depth := range []int{1, 2, 4, 8} {
			row := []string{fmt.Sprint(depth)}
			for _, lanes := range lanesCols {
				depth, lanes := depth, lanes
				r := measurePortusOpt(spec, nil, func(c *daemon.Config) {
					c.PipelineDepth = depth
					c.Lanes = lanes
					c.ChunkSize = perfmodel.DefaultChunk
				})
				if depth == 1 && lanes == 1 {
					base = r.ckpt
				}
				row = append(row, fmt.Sprintf("%s (%s)", metrics.FormatDuration(r.ckpt), ratio(base, r.ckpt)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"depth >= 2 hides the CLWB+fence flush tail behind the next chunk's pull",
			"extra lanes overlap per-chunk issue latency, but the shared 5.8 GB/s BAR read cap bounds the gain near 1.3x",
		)
		out = append(out, t)
	}
	return out
}
