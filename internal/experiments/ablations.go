package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

// measurePortusOpt is measurePortus with cluster and daemon overrides.
func measurePortusOpt(spec model.Spec, cmut func(*cluster.Config), dmut func(*daemon.Config)) portusRun {
	var out portusRun
	runEngine(func(env sim.Env) {
		cfg := voltaConfig()
		if cmut != nil {
			cmut(&cfg)
		}
		rig, err := newPortusRig(env, cfg, dmut)
		if err != nil {
			panic(err)
		}
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		start := env.Now()
		if err := c.CheckpointSync(env, 1); err != nil {
			panic(err)
		}
		out.ckpt = env.Now() - start
		start = env.Now()
		if _, err := c.Restore(env); err != nil {
			panic(err)
		}
		out.restore = env.Now() - start
	})
	return out
}

// AblationStaging compares the zero-copy pull against landing in server
// DRAM first (the design every RPC-based store is forced into).
func AblationStaging() []*Table {
	bert := model.TableII()[6]
	zero := measurePortus(bert)
	staged := measurePortusOpt(bert, nil, func(c *daemon.Config) { c.StageThroughHost = true })
	t := &Table{
		ID:     "ablation-staging",
		Title:  "Zero-copy pull vs host-DRAM staging (BERT-Large checkpoint)",
		Header: []string{"Datapath", "Checkpoint time", "Slowdown"},
		Rows: [][]string{
			{"GPU -> PMem (zero-copy)", metrics.FormatDuration(zero.ckpt), "1.00x"},
			{"GPU -> server DRAM -> PMem", metrics.FormatDuration(staged.ckpt), ratio(staged.ckpt, zero.ckpt)},
		},
		Notes: []string{"staging serializes a second pass at PMem write bandwidth behind every pull"},
	}
	return []*Table{t}
}

// AblationOneSided compares the one-sided READ data plane against a
// two-sided SEND/RECV protocol (what RPC-over-RDMA filesystems use).
func AblationOneSided() []*Table {
	bert := model.TableII()[6]
	one := measurePortus(bert)
	two := measurePortusOpt(bert, nil, func(c *daemon.Config) { c.TwoSidedData = true })
	t := &Table{
		ID:     "ablation-onesided",
		Title:  "One-sided vs two-sided data plane (BERT-Large checkpoint)",
		Header: []string{"Protocol", "Checkpoint time", "Slowdown"},
		Rows: [][]string{
			{"one-sided RDMA READ", metrics.FormatDuration(one.ckpt), "1.00x"},
			{"two-sided SEND/RECV (RPC-style)", metrics.FormatDuration(two.ckpt), ratio(two.ckpt, one.ckpt)},
		},
		Notes: []string{"two-sided adds rendezvous latency per tensor and a receiver-side bounce copy (§V-D)"},
	}
	return []*Table{t}
}

// AblationDoubleMap compares the paper's two-slot double mapping against
// allocating a fresh checkpoint structure for every version (§III-D2's
// rejected design).
func AblationDoubleMap() []*Table {
	spec := model.TableII()[5] // vit_l_32
	const rounds = 5

	var doubleMap, fresh time.Duration
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), nil)
		if err != nil {
			panic(err)
		}
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		start := env.Now()
		for i := 1; i <= rounds; i++ {
			if err := c.CheckpointSync(env, uint64(i)); err != nil {
				panic(err)
			}
		}
		doubleMap = (env.Now() - start) / rounds
	})
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, err := gpu.Place(rig.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		_ = placed
		start := env.Now()
		for i := 1; i <= rounds; i++ {
			// Fresh allocation: every version re-registers MRs, ships the
			// metadata packet, allocates PMem, and rebuilds the MIndex.
			versioned := spec
			versioned.Name = fmt.Sprintf("%s@v%d", spec.Name, i)
			vp := *placed
			vp.Spec = versioned
			conn, err := rig.net.Dial(env, "storage")
			if err != nil {
				panic(err)
			}
			c, err := client.Register(env, conn, rig.cl.Compute[0].RNode, &vp)
			if err != nil {
				panic(err)
			}
			if err := c.CheckpointSync(env, uint64(i)); err != nil {
				panic(err)
			}
		}
		fresh = (env.Now() - start) / rounds
	})
	t := &Table{
		ID:     "ablation-doublemap",
		Title:  "Double mapping vs fresh allocation per checkpoint (ViT-L/32, mean of 5)",
		Header: []string{"Scheme", "Time per checkpoint", "Overhead"},
		Rows: [][]string{
			{"double mapping (two pre-allocated slots)", metrics.FormatDuration(doubleMap), "1.00x"},
			{"fresh structure per version", metrics.FormatDuration(fresh), ratio(fresh, doubleMap)},
		},
		Notes: []string{
			"fresh allocation pays registration, metadata shipping, PMem allocation, and index construction on every version",
			"double mapping holds exactly two versions, so space stays bounded without GC",
		},
	}
	return []*Table{t}
}

// AblationWorkers sweeps the daemon thread-pool width under a 16-tenant
// concurrent checkpoint burst.
func AblationWorkers() []*Table {
	spec := model.TableII()[5] // vit_l_32, ~1.1 GiB
	const tenants = 16
	t := &Table{
		ID:     "ablation-workers",
		Title:  fmt.Sprintf("Daemon worker-pool width under %d concurrent tenants (ViT-L/32 each)", tenants),
		Header: []string{"Workers", "Makespan", "Speedup vs 1"},
	}
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8, 16} {
		var makespan time.Duration
		workers := workers
		runEngine(func(env sim.Env) {
			cfg := voltaConfig()
			cfg.GPUsPerNode = tenants
			rig, err := newPortusRig(env, cfg, func(c *daemon.Config) { c.Workers = workers })
			if err != nil {
				panic(err)
			}
			tenantClients := make([]*client.Client, tenants)
			for i := 0; i < tenants; i++ {
				s := spec
				s.Name = fmt.Sprintf("%s-tenant%d", spec.Name, i)
				_, c, err := rig.place(env, 0, i, s)
				if err != nil {
					panic(err)
				}
				tenantClients[i] = c
			}
			start := env.Now()
			g := sim.NewGroup(env)
			for i := range tenantClients {
				i := i
				g.Add(env, 1)
				env.Go("tenant", func(env sim.Env) {
					defer g.Done(env)
					if err := tenantClients[i].CheckpointSync(env, 1); err != nil {
						panic(err)
					}
				})
			}
			g.Wait(env)
			makespan = env.Now() - start
		})
		if workers == 1 {
			base = makespan
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(workers), secs(makespan), ratio(base, makespan)})
	}
	t.Notes = append(t.Notes, "scaling saturates once the aggregate PMem write bandwidth (6.2 GB/s) is the bottleneck")
	return []*Table{t}
}

// AblationBAR sweeps the GPU BAR read cap to show how much of Portus's
// checkpoint time is pinned to that hardware limit.
func AblationBAR() []*Table {
	bert := model.TableII()[6]
	t := &Table{
		ID:     "ablation-bar",
		Title:  "Sensitivity of the BERT-Large checkpoint to the GPU BAR read cap",
		Header: []string{"BAR read cap (GB/s)", "Checkpoint time", "Effective GB/s"},
	}
	for _, cap := range []float64{2, 4, 5.8, 8, 11.5} {
		rates := rdma.DefaultRates().WithGPUReadCap(cap * perfmodel.GB)
		r := measurePortusOpt(bert, func(c *cluster.Config) { c.Rates = &rates }, nil)
		eff := float64(bert.TotalSize()) / r.ckpt.Seconds() / perfmodel.GB
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.1f", cap), metrics.FormatDuration(r.ckpt), fmt.Sprintf("%.2f", eff)})
	}
	t.Notes = append(t.Notes,
		"the paper measures 5.8 GB/s on V100s (§V-B); past ~11.5 GB/s the RNIC becomes the limit",
	)
	return []*Table{t}
}

// AblationFrequency quantifies the §I dilemma: frequent checkpoints cost
// steady-state overhead but bound lost work on failure. Checkpoint and
// restore costs are measured; the expected-loss model assumes failures
// arrive uniformly at the given MTBF.
func AblationFrequency() []*Table {
	bert := model.TableII()[6]
	po := measurePortus(bert)
	bg := measureBaseline(bert, beeGFS)

	const (
		totalIters = 10000
		mtbfIters  = 2000
	)
	iterTime := bert.IterTime
	failures := float64(totalIters) / float64(mtbfIters)

	expectedTotal := func(ckpt, restore time.Duration, interval int) time.Duration {
		compute := time.Duration(totalIters) * iterTime
		overhead := time.Duration(totalIters/interval) * ckpt
		lost := time.Duration(failures * (float64(interval)/2*float64(iterTime) + float64(restore) + float64(ckpt)))
		return compute + overhead + lost
	}

	t := &Table{
		ID:     "ablation-frequency",
		Title:  fmt.Sprintf("Checkpoint interval vs total BERT training time (%d iters, failure every %d)", totalIters, mtbfIters),
		Header: []string{"Interval", "Portus total", "Traditional total"},
	}
	type best struct {
		interval int
		total    time.Duration
	}
	bestPo := best{total: 1 << 62}
	bestBG := best{total: 1 << 62}
	for _, interval := range []int{10, 25, 50, 100, 250, 500, 1000} {
		pt := expectedTotal(po.ckpt, po.restore, interval)
		bt := expectedTotal(bg.ckpt, bg.restore, interval)
		if pt < bestPo.total {
			bestPo = best{interval, pt}
		}
		if bt < bestBG.total {
			bestBG = best{interval, bt}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(interval), secs(pt), secs(bt)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal interval: Portus %d iters (total %s) vs traditional %d iters (total %s)",
			bestPo.interval, metrics.FormatDuration(bestPo.total),
			bestBG.interval, metrics.FormatDuration(bestBG.total)),
		"cheap checkpoints shift the optimum toward much finer intervals — the paper's motivation for fine-grained checkpointing",
	)
	return []*Table{t}
}
