package experiments

import "testing"

// TestChurn replays the full churn drill at the pinned seed. RunChurn
// panics on any violated invariant (permanent admission failure, lost
// committed checkpoint, zero online repack runs), so a clean return
// plus the overflow check below is the acceptance gate; run under
// -race it also exercises the maintenance lease against live traffic.
func TestChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn drill is a full overflow run; skipped in -short")
	}
	o := RunChurn(ChurnSeed)
	if o.OverflowFactor < 3 {
		t.Fatalf("overflow factor %.2f, want >= 3", o.OverflowFactor)
	}
	if o.RepackRuns == 0 {
		t.Fatal("no online repack pass ran")
	}
	if o.Verified != int64(o.Tenants) || o.Deleted != int64(o.Tenants) {
		t.Fatalf("verified %d deleted %d of %d tenants", o.Verified, o.Deleted, o.Tenants)
	}
	t.Logf("%d tenants, %.2fx overflow, %d no-space replies, %d repack runs, %d bytes moved",
		o.Tenants, o.OverflowFactor, o.NoSpaceReplies, o.RepackRuns, o.BytesMoved)
}
