package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// Quantiles summarizes one latency sample set in seconds.
type Quantiles struct {
	Count int     `json:"count"`
	Min   float64 `json:"min_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
	Mean  float64 `json:"mean_seconds"`
}

func quantiles(samples []time.Duration) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := make([]float64, len(samples))
	var sum float64
	for i, d := range samples {
		s[i] = d.Seconds()
		sum += s[i]
	}
	sort.Float64s(s)
	at := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	return Quantiles{
		Count: len(s),
		Min:   s[0],
		P50:   at(0.50),
		P90:   at(0.90),
		P99:   at(0.99),
		Max:   s[len(s)-1],
		Mean:  sum / float64(len(s)),
	}
}

// ProbeConfig describes the instrumented rig a perf probe runs on: the
// model checkpointed, how many iterations, and the datapath shape.
type ProbeConfig struct {
	Model         string `json:"model"`
	Iterations    int    `json:"iterations"`
	PipelineDepth int    `json:"pipeline_depth"`
	Lanes         int    `json:"lanes"`
	ChunkMiB      int64  `json:"chunk_mib"`
	Workers       int    `json:"workers"`
}

// ProbeResult is the trace-derived perf record of one instrumented run:
// end-to-end checkpoint quantiles, per-stage latencies harvested from
// the stitched span trees, and the tiling check (client span sums vs
// reported end-to-end latency) the perf-smoke CI job gates on.
type ProbeResult struct {
	Config             ProbeConfig          `json:"config"`
	BytesPerCheckpoint int64                `json:"bytes_per_checkpoint"`
	ThroughputGBps     float64              `json:"throughput_gbps"`
	Checkpoint         Quantiles            `json:"checkpoint_seconds"`
	Stages             map[string]Quantiles `json:"stage_seconds"`
	StitchedTraces     int                  `json:"stitched_traces"`
	// SpanSumDivergence is the worst relative gap between the sum of a
	// stitched trace's top-level span durations and its reported
	// end-to-end duration. The client's send/await spans tile the root
	// exactly, so any drift means a broken span tree.
	SpanSumDivergence float64 `json:"span_sum_divergence"`
}

// probeStages are the span names harvested into per-stage quantiles:
// the client half (send, await, busy-wait) and the daemon half
// (enqueue-wait, pull, flush, commit) of the stitched tree.
var probeStages = []string{"send", "await", "busy-wait", "enqueue-wait", "pull", "flush", "commit"}

// defaultProbe is the baseline probe shape: the paper's BERT workload
// on the sequential one-lane datapath.
func defaultProbe() ProbeConfig {
	return ProbeConfig{Model: "bert_large", Iterations: 16, PipelineDepth: 1, Lanes: 1, Workers: 4}
}

// probeOverrides maps experiment ids to probe shapes that exercise the
// configuration the experiment studies; everything else runs the
// baseline probe.
var probeOverrides = map[string]func(*ProbeConfig){
	"ablation-pipeline": func(c *ProbeConfig) { c.PipelineDepth = 4; c.Lanes = 4; c.ChunkMiB = 64 },
	"ablation-workers":  func(c *ProbeConfig) { c.Workers = 16 },
	"fig10":             func(c *ProbeConfig) { c.ChunkMiB = 128 },
	"fig14":             func(c *ProbeConfig) { c.Model = "gpt-1.5b"; c.Iterations = 8 },
	"fig15":             func(c *ProbeConfig) { c.Model = "gpt-1.5b"; c.Iterations = 8 },
	"fig16":             func(c *ProbeConfig) { c.Model = "gpt-1.5b"; c.Iterations = 8 },
}

// ProbeFor returns the probe configuration used for an experiment id.
func ProbeFor(id string) ProbeConfig {
	cfg := defaultProbe()
	if mut, ok := probeOverrides[id]; ok {
		mut(&cfg)
	}
	return cfg
}

// RunPerfProbe checkpoints cfg.Model cfg.Iterations times on a fresh
// instrumented rig and distills the trace ring into a ProbeResult. It
// runs entirely in virtual time.
func RunPerfProbe(cfg ProbeConfig) (ProbeResult, error) {
	spec, err := model.ByName(cfg.Model)
	if err != nil {
		return ProbeResult{}, err
	}
	res := ProbeResult{Config: cfg, Stages: map[string]Quantiles{}}
	var runErr error
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), func(d *daemon.Config) {
			d.Workers = cfg.Workers
			d.PipelineDepth = cfg.PipelineDepth
			d.Lanes = cfg.Lanes
			d.ChunkSize = cfg.ChunkMiB << 20
			d.TraceDepth = 2 * cfg.Iterations
		})
		if err != nil {
			runErr = err
			return
		}
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			runErr = err
			return
		}
		for i := 1; i <= cfg.Iterations; i++ {
			if err := c.CheckpointSync(env, uint64(i)); err != nil {
				runErr = fmt.Errorf("checkpoint %d: %w", i, err)
				return
			}
		}
		// The client ships its span tree after CheckpointSync returns
		// (off the training path); give the reports time to stitch.
		env.Sleep(50 * time.Millisecond)

		var latencies []time.Duration
		stageSamples := map[string][]time.Duration{}
		for _, tr := range rig.d.Traces().Snapshot() {
			if tr.Kind != "client:checkpoint" && tr.Kind != "checkpoint" {
				continue
			}
			latencies = append(latencies, tr.Duration)
			res.BytesPerCheckpoint = tr.Bytes
			if tr.Stitched {
				res.StitchedTraces++
				var sum time.Duration
				for _, sp := range tr.Root.Children {
					sum += sp.Dur()
				}
				if tr.Duration > 0 {
					div := math.Abs(float64(sum-tr.Duration)) / float64(tr.Duration)
					if div > res.SpanSumDivergence {
						res.SpanSumDivergence = div
					}
				}
			}
			for _, name := range probeStages {
				tr.Root.Walk(func(sp *telemetry.Span) {
					if sp.Name == name {
						stageSamples[name] = append(stageSamples[name], sp.Dur())
					}
				})
			}
		}
		res.Checkpoint = quantiles(latencies)
		for name, samples := range stageSamples {
			res.Stages[name] = quantiles(samples)
		}
		if res.Checkpoint.Mean > 0 {
			res.ThroughputGBps = float64(res.BytesPerCheckpoint) / res.Checkpoint.Mean / 1e9
		}
		c.Close()
	})
	return res, runErr
}

// ExperimentReport is one experiment's machine-readable record: its
// rendered tables as structured data plus the instrumented probe.
type ExperimentReport struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Tables []*Table     `json:"tables"`
	Probe  *ProbeResult `json:"probe,omitempty"`
}

// Report is the BENCH_<set>.json document.
type Report struct {
	Set         string             `json:"set"`
	Experiments []ExperimentReport `json:"experiments"`
}

// MaxDivergence returns the worst span-sum divergence across every
// probe in the report (the perf-smoke gate).
func (r *Report) MaxDivergence() float64 {
	var worst float64
	for _, e := range r.Experiments {
		if e.Probe != nil && e.Probe.SpanSumDivergence > worst {
			worst = e.Probe.SpanSumDivergence
		}
	}
	return worst
}

// RunJSON runs the given experiments with perf probes and writes the
// machine-readable report.
func RunJSON(set string, ids []string, w io.Writer) (*Report, error) {
	rep := &Report{Set: set}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			return nil, err
		}
		probe, err := RunPerfProbe(ProbeFor(id))
		if err != nil {
			return nil, fmt.Errorf("%s: perf probe: %w", id, err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentReport{
			ID: e.ID, Title: e.Title, Tables: e.Run(), Probe: &probe,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return rep, nil
}
