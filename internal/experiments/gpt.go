package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/parallel"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/train"
)

// megatronGrid is the paper's Megatron placement: 8-way tensor parallel,
// 2 pipeline stages, over 2 Client-Ampere nodes with 8 A40s each.
const (
	megatronTP    = 8
	megatronPP    = 2
	megatronNodes = 2
	megatronGPUs  = 8
)

// placeShards partitions spec and places every shard on its GPU.
func placeShards(env sim.Env, rig *portusRig, spec model.Spec) ([]*gpu.PlacedModel, []parallel.Placement, error) {
	shards, err := parallel.Partition(spec, megatronTP, megatronPP)
	if err != nil {
		return nil, nil, err
	}
	placements, err := parallel.Place(shards, megatronNodes, megatronGPUs)
	if err != nil {
		return nil, nil, err
	}
	placed := make([]*gpu.PlacedModel, len(placements))
	for i, pl := range placements {
		p, err := gpu.Place(rig.cl.GPU(pl.Node, pl.GPU), pl.Shard.Spec)
		if err != nil {
			return nil, nil, err
		}
		placed[i] = p
	}
	return placed, placements, nil
}

// megatronTorchSaveDump measures one full-model checkpoint via
// torch.save from all 16 ranks concurrently into shared BeeGFS.
func megatronTorchSaveDump(spec model.Spec) time.Duration {
	var elapsed time.Duration
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, ampereConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, placements, err := placeShards(env, rig, spec)
		if err != nil {
			panic(err)
		}
		backend := fsim.NewBeeGFS(rig.cl.Storage[0])
		start := env.Now()
		g := sim.NewGroup(env)
		for i := range placed {
			i := i
			g.Add(env, 1)
			env.Go("rank", func(env sim.Env) {
				defer g.Done(env)
				cp := baseline.NewTorchSave(backend, rig.cl.Compute[placements[i].Node], placed[i])
				if err := cp.Checkpoint(env, 1); err != nil {
					panic(err)
				}
			})
		}
		g.Wait(env)
		elapsed = env.Now() - start
	})
	return elapsed
}

// megatronPortusDump measures the same full-model checkpoint through
// Portus: 16 registered shards, 16 concurrent one-sided pulls.
func megatronPortusDump(spec model.Spec) time.Duration {
	var elapsed time.Duration
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, ampereConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, placements, err := placeShards(env, rig, spec)
		if err != nil {
			panic(err)
		}
		clients := make([]*client.Client, len(placed))
		for i := range placed {
			conn, err := rig.net.Dial(env, "storage")
			if err != nil {
				panic(err)
			}
			clients[i], err = client.Register(env, conn, rig.cl.Compute[placements[i].Node].RNode, placed[i])
			if err != nil {
				panic(err)
			}
		}
		start := env.Now()
		g := sim.NewGroup(env)
		for i := range clients {
			i := i
			g.Add(env, 1)
			env.Go("rank", func(env sim.Env) {
				defer g.Done(env)
				if err := clients[i].CheckpointSync(env, 1); err != nil {
					panic(err)
				}
			})
		}
		g.Wait(env)
		elapsed = env.Now() - start
	})
	return elapsed
}

// Fig14 reproduces Figure 14: one checkpoint dump of each GPT scale via
// Portus versus torch.save to BeeGFS.
func Fig14() []*Table {
	t := &Table{
		ID:     "fig14",
		Title:  "GPT checkpoint dump time (16 ranks, 2 nodes x 8 A40)",
		Header: []string{"Model", "Checkpoint size", "torch.save", "Portus", "Speedup"},
	}
	var sum float64
	fam := model.GPTFamily()
	for _, spec := range fam {
		ts := megatronTorchSaveDump(spec)
		po := megatronPortusDump(spec)
		t.Rows = append(t.Rows, []string{
			spec.Name, metrics.FormatBytes(spec.TotalSize()),
			secs(ts), secs(po), ratio(ts, po),
		})
		sum += float64(ts) / float64(po)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean speedup %.2fx (paper: 8.18x; GPT-22.4B: >120s -> ~15s)", sum/float64(len(fam))),
		"torch.save ranks contend in the BeeGFS daemon; Portus pulls are bounded only by aggregate PMem write bandwidth")
	return []*Table{t}
}

// gptTrainingRun trains GPT-22.4B under a policy fleet at the
// fine-grained interval used for Figures 15 and 16.
func gptTrainingRun(policy string, iterations, interval int) train.Result {
	var res train.Result
	spec := model.GPT22B()
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, ampereConfig(), nil)
		if err != nil {
			panic(err)
		}
		placed, placements, err := placeShards(env, rig, spec)
		if err != nil {
			panic(err)
		}
		var members []train.Checkpointer
		switch policy {
		case "checkfreq":
			backend := fsim.NewBeeGFS(rig.cl.Storage[0])
			for i := range placed {
				members = append(members, baseline.NewCheckFreq(backend, rig.cl.Compute[placements[i].Node], placed[i]))
			}
		case "portus-async":
			for i := range placed {
				conn, err := rig.net.Dial(env, "storage")
				if err != nil {
					panic(err)
				}
				c, err := client.Register(env, conn, rig.cl.Compute[placements[i].Node].RNode, placed[i])
				if err != nil {
					panic(err)
				}
				members = append(members, &client.Async{C: c})
			}
		default:
			panic("unknown policy " + policy)
		}
		res, err = train.Run(env, train.Config{
			Spec:       spec,
			Policy:     train.NewFleet(policy, members),
			Interval:   interval,
			Iterations: iterations,
		})
		if err != nil {
			panic(err)
		}
	})
	return res
}

// fig15Interval is the fine-grained checkpoint interval of the
// large-model training comparison.
const fig15Interval = 25

// Fig15 reproduces Figure 15: overall training time and throughput of
// GPT-22.4B under CheckFreq versus Portus.
func Fig15() []*Table {
	const iters = 100
	cf := gptTrainingRun("checkfreq", iters, fig15Interval)
	po := gptTrainingRun("portus-async", iters, fig15Interval)
	t := &Table{
		ID:     "fig15",
		Title:  fmt.Sprintf("GPT-22.4B training, %d iterations, checkpoint every %d", iters, fig15Interval),
		Header: []string{"Policy", "Total time", "Throughput (iter/s)", "Stall time", "Checkpoints"},
		Rows: [][]string{
			{"CheckFreq (BeeGFS-PMEM)", secs(cf.Elapsed), fmt.Sprintf("%.4f", cf.Throughput()), secs(cf.StallTime), fmt.Sprint(cf.Checkpoints)},
			{"Portus (async)", secs(po.Elapsed), fmt.Sprintf("%.4f", po.Throughput()), secs(po.StallTime), fmt.Sprint(po.Checkpoints)},
		},
		Notes: []string{
			fmt.Sprintf("throughput improvement: %.2fx (paper: 2.6x)", po.Throughput()/cf.Throughput()),
			"CheckFreq's next checkpoint stalls on the previous persist; Portus pulls finish well inside the interval",
		},
	}
	return []*Table{t}
}

// Fig16 reproduces Figure 16: the 500-second GPU-utilization trace of
// GPT-22.4B training under both policies.
func Fig16() []*Table {
	// Iteration counts are sized so both runs span the full 500 s
	// window (CheckFreq cycles are ~3x longer).
	const window = 500 * time.Second
	cf := gptTrainingRun("checkfreq", 100, fig15Interval)
	po := gptTrainingRun("portus-async", 225, fig15Interval)

	t := &Table{
		ID:     "fig16",
		Title:  "GPU utilization over the first 500s of GPT-22.4B training",
		Header: []string{"Window", "Portus", "CheckFreq"},
	}
	step := 25 * time.Second
	cfSeries := cf.Timeline.Series(window, step)
	poSeries := po.Timeline.Series(window, step)
	for i := range poSeries {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%3d-%3ds", i*25, (i+1)*25),
			pct(poSeries[i]),
			pct(cfSeries[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average utilization: Portus %s (paper: 76.4%%), CheckFreq %s (paper: <43%%)",
			pct(metrics.Mean(poSeries)), pct(metrics.Mean(cfSeries))),
	)
	return []*Table{t}
}
