package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestQuantilesEdges(t *testing.T) {
	if q := quantiles(nil); q.Count != 0 || q.P99 != 0 {
		t.Fatalf("empty quantiles = %+v", q)
	}
	q := quantiles([]time.Duration{time.Second})
	if q.Count != 1 || q.Min != 1 || q.P50 != 1 || q.P99 != 1 || q.Max != 1 || q.Mean != 1 {
		t.Fatalf("single-sample quantiles = %+v", q)
	}
	q = quantiles([]time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second})
	if q.Min != 1 || q.Max != 4 || q.P50 != 2 || q.Mean != 2.5 {
		t.Fatalf("quantiles = %+v", q)
	}
}

func TestProbeForOverrides(t *testing.T) {
	base := ProbeFor("fig11")
	if base != defaultProbe() {
		t.Fatalf("unknown id must use the baseline probe, got %+v", base)
	}
	pipe := ProbeFor("ablation-pipeline")
	if pipe.PipelineDepth != 4 || pipe.Lanes != 4 {
		t.Fatalf("pipeline probe = %+v", pipe)
	}
}

// TestRunPerfProbeStitchesAndTiles runs a small instrumented probe and
// checks the machine-readable invariants the perf-smoke CI job gates
// on: every checkpoint stitched, stages harvested, and span sums
// within the divergence budget (exactly zero under the sim clock).
func TestRunPerfProbeStitchesAndTiles(t *testing.T) {
	res, err := RunPerfProbe(ProbeConfig{
		Model: "resnet50", Iterations: 4, PipelineDepth: 1, Lanes: 1, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint.Count != 4 {
		t.Fatalf("checkpoint samples = %d, want 4", res.Checkpoint.Count)
	}
	if res.StitchedTraces != 4 {
		t.Fatalf("stitched = %d/4, want all", res.StitchedTraces)
	}
	if res.SpanSumDivergence != 0 {
		t.Fatalf("span-sum divergence = %v, want 0 under the sim clock", res.SpanSumDivergence)
	}
	if res.BytesPerCheckpoint <= 0 || res.ThroughputGBps <= 0 {
		t.Fatalf("throughput record = %+v", res)
	}
	for _, stage := range []string{"send", "await", "enqueue-wait", "pull", "flush", "commit"} {
		q, ok := res.Stages[stage]
		if !ok || q.Count == 0 {
			t.Fatalf("stage %q missing from probe (have %v)", stage, res.Stages)
		}
	}

	// The report document round-trips as JSON.
	rep := Report{Set: "test", Experiments: []ExperimentReport{{ID: "x", Probe: &res}}}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(&rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.MaxDivergence() != 0 {
		t.Fatalf("MaxDivergence after round trip = %v", back.MaxDivergence())
	}
}
