package experiments

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// ChurnSeed fixes the tenant size schedule so `make churn`, CI, and the
// regression test replay the exact same admission pressure.
const ChurnSeed = 1337

const (
	// churnCapacity is the data-zone size the churn deliberately
	// overflows (cumulatively, never concurrently).
	churnCapacity = 4 << 30
	// churnWaves x churnTenantsPerWave register/checkpoint/delete
	// lifecycles run against that one namespace.
	churnWaves          = 5
	churnTenantsPerWave = 6
	// churnCheckpoints per tenant before its restore proof and delete.
	churnCheckpoints = 3
)

// ChurnOutcome is the measured behavior of one churn run.
type ChurnOutcome struct {
	Tenants int
	// AdmittedBytes is the cumulative slot allocation demand (2x model
	// size per registration); OverflowFactor divides it by capacity.
	AdmittedBytes  int64
	OverflowFactor float64
	// NoSpaceReplies counts transient NO_SPACE retry-afters the daemon
	// issued — backpressure, not failures.
	NoSpaceReplies int64
	// RepackRuns and BytesMoved are the engine's online reclamation
	// activity; the run is only meaningful if RepackRuns > 0.
	RepackRuns int64
	BytesMoved int64
	// Verified counts tenants whose final restore was byte-identical;
	// Deleted counts completed lifecycles. Both must equal Tenants.
	Verified int64
	Deleted  int64
	// FragPeak is the worst fragmented-bytes reading observed between
	// waves.
	FragPeak int64
}

// churnSpec sizes one tenant deterministically from the shared rng:
// 256-512 MiB across four tensors. A wave's combined slot demand
// (6 tenants x 2 slots x ~384 MiB ~= 4.5 GiB) deliberately exceeds the
// 4 GiB zone, so late registrants in a wave really do bounce off
// NO_SPACE and retry until earlier tenants delete — while any single
// model (<= 1 GiB of slots) always fits, so admission is never
// permanently infeasible.
func churnSpec(rng *rand.Rand, wave, i int) model.Spec {
	total := (256 + rng.Int63n(257)) << 20
	name := fmt.Sprintf("churn-%d-%d", wave, i)
	spec := model.Spec{Name: name, IterTime: time.Millisecond}
	per := total / 4 / 4 * 4
	for t := 0; t < 4; t++ {
		size := per
		if t == 3 {
			size = total - 3*per
		}
		spec.Tensors = append(spec.Tensors, index.TensorMeta{
			Name:  fmt.Sprintf("%s.layer.%d.weight", name, t),
			DType: index.F32,
			Dims:  []int64{size / 4},
			Size:  size,
		})
	}
	return spec
}

// RunChurn drives tenant churn against one deliberately undersized
// namespace: waves of tenants register, checkpoint, prove a
// byte-identical restore, and delete, with cumulative admission demand
// ~3x the 4 GiB data zone. Admission must never permanently fail while
// live bytes fit capacity — out-of-space registrations are answered
// with transient NO_SPACE retry-afters while the engine reclaims — no
// committed checkpoint may be lost, and at least one online repack pass
// must run concurrent with live traffic. Any violated invariant panics
// so `make churn` and CI fail loudly.
func RunChurn(seed int64) ChurnOutcome {
	var out ChurnOutcome
	runEngine(func(env sim.Env) {
		reg := telemetry.NewRegistry()
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 4,
			GPUMemBytes: 16 << 30, PMemBytes: churnCapacity,
			Materialized: false,
		})
		if err != nil {
			panic(err)
		}
		d, err := daemon.New(env, daemon.Config{
			PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
			Workers: 4, Telemetry: reg,
			// Watermark default (0.5): a wave's deletes trip it, so
			// background passes overlap the next wave's traffic; the
			// ErrNoSpace reclaim path stays armed regardless.
			RepackAuto: true,
		})
		if err != nil {
			panic(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			panic(err)
		}
		env.Go("portusd-serve", func(env sim.Env) { d.Serve(env, l) })

		// The rng is drained up front so tenant goroutines never race on
		// it; the schedule is a pure function of the seed.
		rng := rand.New(rand.NewSource(seed))
		specs := make([][]model.Spec, churnWaves)
		for w := range specs {
			specs[w] = make([]model.Spec, churnTenantsPerWave)
			for i := range specs[w] {
				specs[w][i] = churnSpec(rng, w, i)
				out.AdmittedBytes += 2 * specs[w][i].TotalSize()
				out.Tenants++
			}
		}

		for w := 0; w < churnWaves; w++ {
			g := sim.NewGroup(env)
			for i := 0; i < churnTenantsPerWave; i++ {
				spec := specs[w][i]
				gpuIdx := i % 4
				g.Add(env, 1)
				env.Go("churn-tenant", func(env sim.Env) {
					defer g.Done(env)
					churnTenant(env, cl, net, reg, spec, gpuIdx, &out)
				})
			}
			g.Wait(env)
			if frag := d.Engine().Stats().Frag; frag > out.FragPeak {
				out.FragPeak = frag
			}
		}

		out.NoSpaceReplies = reg.Counter("portus_store_nospace_replies_total", "").Value()
		out.RepackRuns = d.Engine().RepackRuns()
		out.BytesMoved = reg.Counter("portus_store_repack_moved_bytes_total", "").Value()
		out.OverflowFactor = float64(out.AdmittedBytes) / float64(churnCapacity)

		if out.Verified != int64(out.Tenants) {
			panic(fmt.Sprintf("churn: %d/%d tenants verified a byte-identical restore — a committed checkpoint was lost",
				out.Verified, out.Tenants))
		}
		if out.Deleted != int64(out.Tenants) {
			panic(fmt.Sprintf("churn: %d/%d tenant lifecycles completed", out.Deleted, out.Tenants))
		}
		if out.RepackRuns == 0 {
			panic("churn: no online repack pass ran despite 3x cumulative overflow")
		}
		if out.OverflowFactor < 3 {
			panic(fmt.Sprintf("churn: cumulative demand only %.2fx capacity, want >= 3x", out.OverflowFactor))
		}
	})
	return out
}

// churnTenant is one register -> checkpoint -> restore-verify -> delete
// lifecycle. Every failure is a violated invariant: admission and
// checkpoints must ride out NO_SPACE and BUSY backpressure via
// retry-afters, never surface an error.
func churnTenant(env sim.Env, cl *cluster.Cluster, net *wire.SimNet, reg *telemetry.Registry,
	spec model.Spec, gpuIdx int, out *ChurnOutcome) {
	placed, err := gpu.Place(cl.GPU(0, gpuIdx), spec)
	if err != nil {
		panic(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		panic(err)
	}
	c, err := client.RegisterOpts(env, conn, cl.Compute[0].RNode, placed, client.Options{
		Telemetry: reg,
		// Registrations bounce off NO_SPACE while another tenant's
		// delete or a repack pass frees room; the budget must outlast a
		// whole wave of competitors.
		BusyRetryMax: 1000,
		BusyBackoff:  200 * time.Microsecond,
	})
	if err != nil {
		panic(fmt.Sprintf("churn: %s: admission permanently failed: %v", spec.Name, err))
	}
	for it := uint64(1); it <= churnCheckpoints; it++ {
		placed.ApplyUpdate(it)
		if err := c.CheckpointSync(env, it); err != nil {
			panic(fmt.Sprintf("churn: %s: checkpoint %d: %v", spec.Name, it, err))
		}
	}
	// Scramble the GPU and prove the newest committed version restores
	// byte-identical — including after its extents were relocated by an
	// online repack pass running under other tenants' traffic.
	placed.ApplyUpdate(churnCheckpoints + 1000)
	iter, err := c.Restore(env)
	if err != nil {
		panic(fmt.Sprintf("churn: %s: restore: %v", spec.Name, err))
	}
	if iter != churnCheckpoints {
		panic(fmt.Sprintf("churn: %s: restored iteration %d, want %d", spec.Name, iter, churnCheckpoints))
	}
	if bad := placed.VerifyIteration(iter); bad != -1 {
		panic(fmt.Sprintf("churn: %s: tensor %d not byte-identical after restore", spec.Name, bad))
	}
	atomic.AddInt64(&out.Verified, 1)
	c.Close()

	// Delete over a fresh control connection, riding out the window
	// where the lane still drains.
	dconn, err := net.Dial(env, "storage")
	if err != nil {
		panic(err)
	}
	defer dconn.Close()
	for attempt := 0; ; attempt++ {
		if err := dconn.Send(env, &wire.Msg{Type: wire.TDelete, Model: spec.Name}); err != nil {
			panic(err)
		}
		resp, err := dconn.Recv(env)
		if err != nil {
			panic(err)
		}
		if resp.Type == wire.TDeleteOK {
			break
		}
		if attempt > 50 {
			panic(fmt.Sprintf("churn: %s: delete kept failing: %s", spec.Name, resp.Error))
		}
		env.Sleep(500 * time.Microsecond)
	}
	atomic.AddInt64(&out.Deleted, 1)
}

// Churn reports the admission-under-exhaustion drill as a table.
func Churn() []*Table {
	o := RunChurn(ChurnSeed)
	t := &Table{
		ID:    "churn",
		Title: "Tenant churn against an undersized namespace with online reclamation",
		Header: []string{"tenants", "demand", "overflow", "no-space replies",
			"repack runs", "bytes moved", "frag peak", "verified", "deleted"},
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(o.Tenants),
		fmt.Sprintf("%.1f GiB", float64(o.AdmittedBytes)/(1<<30)),
		fmt.Sprintf("%.2fx", o.OverflowFactor),
		fmt.Sprint(o.NoSpaceReplies),
		fmt.Sprint(o.RepackRuns),
		fmt.Sprintf("%.1f MiB", float64(o.BytesMoved)/(1<<20)),
		fmt.Sprintf("%.1f MiB", float64(o.FragPeak)/(1<<20)),
		fmt.Sprintf("%d/%d", o.Verified, o.Tenants),
		fmt.Sprintf("%d/%d", o.Deleted, o.Tenants),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %d: %d waves of %d tenants register/checkpoint/delete 256-512 MiB models against one %d GiB namespace",
			ChurnSeed, churnWaves, churnTenantsPerWave, churnCapacity>>30),
		"every out-of-space registration was answered with a transient NO_SPACE retry-after while the engine reclaimed; zero admissions failed permanently and zero committed checkpoints were lost",
	)
	return []*Table{t}
}
