package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// ChaosSeed fixes the fault schedule so `make chaos`, CI, and the
// regression test replay the exact same fault sequence.
const ChaosSeed = 1337

// chaosCheckpoints is the checkpoint stream length per fault rate.
const chaosCheckpoints = 40

const chaosModelName = "chaos-gpt"

func chaosSpec() model.Spec {
	return model.GPT(chaosModelName, 2, 64, 512, 10*time.Millisecond)
}

// ChaosOutcome is one fault rate's measured behavior.
type ChaosOutcome struct {
	Rate       float64
	Attempted  int
	Committed  int
	FailedLoud int
	// Lost counts crash-consistency violations: steps where the newest
	// complete version on PMem was older than a checkpoint the client
	// had been told committed. The whole point is that this stays 0.
	Lost         int
	Faults       int64
	Retries      int64
	Degradations int64
	Quarantines  int64
	Reconnects   int64
	Dedups       int64
	RestoredIter uint64
	RestoredOK   bool
	// Goodput is committed checkpoints per virtual second of the run.
	Goodput float64
	// ScrapeOK reports that the fault/retry/reconnect series all appear
	// in the Prometheus rendering of the run's registry.
	ScrapeOK bool
}

// RunChaos drives one fault rate: a materialized single-GPU rig with
// faults injected at every layer — one-sided verb errors, dropped
// control connections, torn PMem flushes, and occasional route
// failures — while a training loop checkpoints every iteration. After
// the stream it scrambles the GPU and proves the newest complete
// version restores bit-exactly.
func RunChaos(seed int64, rate float64, checkpoints int) ChaosOutcome {
	out := ChaosOutcome{Rate: rate}
	runEngine(func(env sim.Env) {
		reg := telemetry.NewRegistry()
		inj := faults.NewInjector(faults.Config{
			Seed:      seed,
			Read:      faults.Rule{Rate: rate},
			Write:     faults.Rule{Rate: rate},
			Flush:     faults.Rule{Rate: rate},
			Conn:      faults.Rule{Rate: rate},
			Route:     faults.Rule{Rate: rate / 10},
			Telemetry: reg,
		})
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 1,
			GPUMemBytes: 64 << 20, PMemBytes: 512 << 20,
			Materialized: true,
		})
		if err != nil {
			panic(err)
		}
		d, err := daemon.New(env, daemon.Config{
			PMem:          cl.Storage[0].PMem,
			RNode:         cl.Storage[0].RNode,
			Fabric:        inj.Fabric(cl.Fabric),
			Workers:       2,
			PipelineDepth: 2,
			Lanes:         2,
			ChunkSize:     64 << 10,
			RetryMax:      6,
			RetryBackoff:  50 * time.Microsecond,
			LaneFailLimit: 3,
			Degrade:       true,
			Flush:         inj.Flush(cl.Storage[0].PMem),
			Telemetry:     reg,
		})
		if err != nil {
			panic(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			panic(err)
		}
		env.Go("portusd-serve", func(env sim.Env) { d.Serve(env, l) })

		dial := func(env sim.Env) (wire.Conn, error) {
			conn, err := net.Dial(env, "storage")
			if err != nil {
				return nil, err
			}
			return inj.Conn(conn), nil
		}
		placed, err := gpu.Place(cl.GPU(0, 0), chaosSpec())
		if err != nil {
			panic(err)
		}
		conn, err := dial(env)
		if err != nil {
			panic(err)
		}
		c, err := client.RegisterOpts(env, conn, cl.Compute[0].RNode, placed, client.Options{
			Telemetry:        reg,
			Dialer:           dial,
			ReconnectMax:     20,
			ReconnectBackoff: 500 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}

		var maxCommitted uint64
		for i := uint64(1); i <= uint64(checkpoints); i++ {
			placed.ApplyUpdate(i)
			out.Attempted++
			if err := c.CheckpointSync(env, i); err != nil {
				out.FailedLoud++
			} else {
				out.Committed++
				if i > maxCommitted {
					maxCommitted = i
				}
			}
			// The invariant under fire: every checkpoint the client was
			// told committed is covered by a complete version on PMem.
			if m, err := d.Store().Lookup(chaosModelName); err == nil && maxCommitted > 0 {
				if _, v, ok := m.LatestDone(); !ok || v.Iteration < maxCommitted {
					out.Lost++
				}
			}
		}
		out.Goodput = float64(out.Committed) / env.Now().Seconds()

		// Prove the newest complete version is restorable: scramble the
		// GPU, restore (retrying through injected faults), and verify
		// every tensor holds the restored iteration's exact content.
		placed.ApplyUpdate(uint64(checkpoints) + 1000)
		var iter uint64
		restoreErr := fmt.Errorf("no restore attempted")
		for attempt := 0; attempt < 10 && restoreErr != nil; attempt++ {
			iter, restoreErr = c.Restore(env)
		}
		if restoreErr == nil && iter >= maxCommitted && placed.VerifyIteration(iter) == -1 {
			out.RestoredOK = true
			out.RestoredIter = iter
		}

		out.Faults = inj.Total()
		out.Retries = reg.Counter("portus_datapath_retries_total", "").Value()
		out.Degradations = reg.Counter("portus_datapath_strategy_degradations_total", "").Value()
		out.Dedups = reg.Counter("portus_daemon_dedup_total", "").Value()
		out.Reconnects = c.Reconnects()

		var scrape strings.Builder
		reg.WritePrometheus(&scrape)
		s := scrape.String()
		out.ScrapeOK = strings.Contains(s, "portus_faults_injected_total") &&
			strings.Contains(s, "portus_datapath_retries_total") &&
			strings.Contains(s, "portus_client_reconnects_total") &&
			strings.Contains(s, "portus_datapath_quarantined_lanes")
	})
	return out
}

// Chaos sweeps fault rates over the full stack and reports checkpoint
// goodput, healing activity, and the recoverability proof at each rate.
func Chaos() []*Table {
	t := &Table{
		ID:    "chaos",
		Title: "Checkpoint goodput and recoverability under injected faults",
		Header: []string{"fault rate", "ckpts", "committed", "loud fails", "lost",
			"faults", "retries", "degraded", "reconnects", "dedups", "restored", "goodput ckpt/s"},
	}
	for _, rate := range []float64{0, 0.05, 0.10, 0.20} {
		o := RunChaos(ChaosSeed, rate, chaosCheckpoints)
		restored := "FAIL"
		if o.RestoredOK {
			restored = fmt.Sprintf("iter %d ok", o.RestoredIter)
		}
		t.Rows = append(t.Rows, []string{
			pct(o.Rate), fmt.Sprint(o.Attempted), fmt.Sprint(o.Committed),
			fmt.Sprint(o.FailedLoud), fmt.Sprint(o.Lost), fmt.Sprint(o.Faults),
			fmt.Sprint(o.Retries), fmt.Sprint(o.Degradations), fmt.Sprint(o.Reconnects),
			fmt.Sprint(o.Dedups), restored, fmt.Sprintf("%.1f", o.Goodput),
		})
		if !o.ScrapeOK {
			t.Notes = append(t.Notes, fmt.Sprintf("rate %s: healing counters missing from the Prometheus scrape", pct(rate)))
		}
		if o.Lost > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("rate %s: INVARIANT VIOLATED — a committed checkpoint was lost", pct(rate)))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed %d: verb errors, dropped control connections, and torn flushes injected at the stated rate; route failures at a tenth of it", ChaosSeed),
		"\"lost\" counts steps where PMem's newest complete version was older than an acknowledged checkpoint — zero means every failure either healed or failed loudly with the previous version restorable",
	)
	return []*Table{t}
}
