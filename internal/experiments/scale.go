// The scale experiment exercises the sharded storage tier end to end:
// GPT-1.5B partitioned Megatron-style, every shard registered with the
// storage daemon the placement map assigns it, group checkpoints fanned
// out by the client router. Sweeping the storage-node count shows
// aggregate checkpoint bandwidth growing past the single-PMem-device
// write ceiling that bounds the paper's one-AEP-node testbed.

package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/parallel"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// The scale grid: GPT-1.5B over 2 tensor-parallel ranks × 4 pipeline
// stages = 8 shards on 2 compute nodes with 4 GPUs each. Eight shard
// keys rendezvous-hash evenly over 1, 2, and 4 storage nodes, so every
// sweep point exercises a balanced tier.
const (
	scaleTP           = 2
	scalePP           = 4
	scaleComputeNodes = 2
	scaleGPUsPerNode  = 4
)

// scaleSpeedupFloor is the acceptance bar: 4 storage nodes must deliver
// at least this multiple of the 1-node aggregate checkpoint throughput.
const scaleSpeedupFloor = 2.5

// tierRig is a multi-daemon cluster: one daemon per storage node, all
// sharing one placement map, each serving on its node's name.
type tierRig struct {
	cl      *cluster.Cluster
	pmap    *placement.Map
	daemons []*daemon.Daemon
	net     *wire.SimNet
}

// newTierRig builds the rig. dmut, when non-nil, edits each member's
// daemon config (keyed by storage-node name) before construction —
// the hook point for per-node fault injection.
func newTierRig(env sim.Env, cfg cluster.Config, dmut func(node string, dcfg *daemon.Config)) (*tierRig, error) {
	cl, err := cluster.New(env, cfg)
	if err != nil {
		return nil, err
	}
	nodes := make([]placement.Node, len(cl.Storage))
	for i, st := range cl.Storage {
		nodes[i] = placement.Node{Name: st.Name, Weight: st.PMem.DataSize()}
	}
	pmap, err := placement.New(nodes...)
	if err != nil {
		return nil, err
	}
	rig := &tierRig{cl: cl, pmap: pmap, net: wire.NewSimNet()}
	for _, st := range cl.Storage {
		dcfg := daemon.Config{
			PMem:     st.PMem,
			RNode:    st.RNode,
			Fabric:   cl.Fabric,
			NodeName: st.Name,
			Group:    pmap,
		}
		if dmut != nil {
			dmut(st.Name, &dcfg)
		}
		d, err := daemon.New(env, dcfg)
		if err != nil {
			return nil, err
		}
		l, err := rig.net.Listen(env, st.Name)
		if err != nil {
			return nil, err
		}
		env.Go("portusd-"+st.Name, func(env sim.Env) { d.Serve(env, l) })
		rig.daemons = append(rig.daemons, d)
	}
	return rig, nil
}

// dial connects to a named member's control plane.
func (r *tierRig) dial(env sim.Env, node string) (wire.Conn, error) {
	return r.net.Dial(env, node)
}

// placeSharded partitions spec over the scale grid, places every shard
// on its GPU, and registers each with its owning daemon through rt.
func (r *tierRig) placeSharded(env sim.Env, rt *client.Router, spec model.Spec, tp, pp int) ([]*gpu.PlacedModel, error) {
	shards, err := parallel.Partition(spec, tp, pp)
	if err != nil {
		return nil, err
	}
	placements, err := parallel.Place(shards, len(r.cl.Compute), len(r.cl.Compute[0].GPUs))
	if err != nil {
		return nil, err
	}
	placed := make([]*gpu.PlacedModel, len(placements))
	for i, pl := range placements {
		p, err := gpu.Place(r.cl.GPU(pl.Node, pl.GPU), pl.Shard.Spec)
		if err != nil {
			return nil, err
		}
		if _, err := rt.Register(env, r.cl.Compute[pl.Node].RNode, p); err != nil {
			return nil, err
		}
		placed[i] = p
	}
	return placed, nil
}

// scaleConfig sizes the sweep cluster for n storage nodes.
func scaleConfig(storageNodes int) cluster.Config {
	return cluster.Config{
		ComputeNodes: scaleComputeNodes,
		GPUsPerNode:  scaleGPUsPerNode,
		GPUMemBytes:  48 << 30,
		StorageNodes: storageNodes,
		PMemBytes:    256 << 30,
		Materialized: false,
	}
}

// scalePoint is one sweep measurement.
type scalePoint struct {
	Nodes    int
	Shards   int
	Bytes    int64 // one group checkpoint's payload
	PerRound time.Duration
	// Throughput is aggregate checkpoint bandwidth in bytes/sec of
	// virtual time.
	Throughput float64
}

// runScalePoint checkpoints GPT-1.5B rounds times through an n-node
// tier and measures aggregate throughput.
func runScalePoint(storageNodes, rounds int) scalePoint {
	spec := model.GPTFamily()[0] // gpt-1.5b
	pt := scalePoint{Nodes: storageNodes, Shards: scaleTP * scalePP, Bytes: spec.TotalSize()}
	runEngine(func(env sim.Env) {
		rig, err := newTierRig(env, scaleConfig(storageNodes), nil)
		if err != nil {
			panic(err)
		}
		rt := client.NewRouter(rig.pmap, rig.dial, client.RouterOptions{})
		defer rt.Close()
		if _, err := rig.placeSharded(env, rt, spec, scaleTP, scalePP); err != nil {
			panic(err)
		}
		start := env.Now()
		for it := 1; it <= rounds; it++ {
			if err := rt.CheckpointSync(env, uint64(it)); err != nil {
				panic(err)
			}
		}
		elapsed := env.Now() - start
		pt.PerRound = elapsed / time.Duration(rounds)
		pt.Throughput = float64(pt.Bytes) * float64(rounds) / elapsed.Seconds()
	})
	return pt
}

// gbps renders bytes/sec as GB/s.
func gbps(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// Scale sweeps the storage tier over 1, 2, and 4 nodes and reports
// aggregate checkpoint throughput of GPT-1.5B at each size. Panics if
// the 4-node tier falls under the 2.5× acceptance floor so the CI
// perf-smoke job fails loudly on a scaling regression.
func Scale() []*Table {
	const rounds = 3
	points := []scalePoint{
		runScalePoint(1, rounds),
		runScalePoint(2, rounds),
		runScalePoint(4, rounds),
	}
	base := points[0].Throughput
	t := &Table{
		ID: "scale",
		Title: fmt.Sprintf("Sharded storage tier: GPT-1.5B (%s, %d shards) group checkpoint vs storage nodes",
			metrics.FormatBytes(points[0].Bytes), points[0].Shards),
		Header: []string{"Storage nodes", "Checkpoint time", "Aggregate throughput", "Speedup"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Nodes), secs(p.PerRound), gbps(p.Throughput),
			fmt.Sprintf("%.2fx", p.Throughput/base),
		})
	}
	speedup4 := points[2].Throughput / base
	t.Notes = append(t.Notes,
		fmt.Sprintf("1 node is bounded by a single PMem device's write bandwidth; 4 nodes by the compute-side NICs (%.2fx, floor %.1fx)",
			speedup4, scaleSpeedupFloor),
		"shards rendezvous-hash evenly over every tier size, so added nodes carry proportional load")
	if speedup4 < scaleSpeedupFloor {
		panic(fmt.Sprintf("scale: 4-node throughput %.2fx the 1-node figure, want >= %.1fx", speedup4, scaleSpeedupFloor))
	}
	return []*Table{t}
}
