package experiments

import "testing"

// TestMultitenantFairnessBound pins the headline acceptance criterion:
// 8 identical concurrent tenants finish with a max/min mean-stall ratio
// of at most 2.0, and no tenant loses a committed checkpoint (mtFairness
// panics on a lost commit).
func TestMultitenantFairnessBound(t *testing.T) {
	r := mtFairness(8, 6)
	if r.fairness > 2.0 {
		t.Fatalf("fairness ratio %.2f at 8 tenants, want <= 2.0", r.fairness)
	}
	if r.throughput <= 0 {
		t.Fatalf("aggregate throughput %.2f, want > 0", r.throughput)
	}
}

// TestMultitenantPressureObservable drives the scheduler past its
// bounds and requires both overload mechanisms to fire and be visible
// in telemetry, with every bounced request healed.
func TestMultitenantPressureObservable(t *testing.T) {
	coalesced, busy, retries, committed := mtPressure()
	if coalesced < 1 {
		t.Errorf("portus_sched_coalesced_total = %d, want >= 1", coalesced)
	}
	if busy < 1 {
		t.Errorf("portus_sched_busy_replies_total = %d, want >= 1", busy)
	}
	if retries < 1 {
		t.Errorf("client busy retries = %d, want >= 1", retries)
	}
	want := map[string]uint64{
		"tenant00": 8, "tenant01": 3, "tenant02": 3, "tenant03": 3,
	}
	for name, iter := range want {
		if committed[name] != iter {
			t.Errorf("%s committed frontier = %d, want %d", name, committed[name], iter)
		}
	}
}

// TestMultitenantFairnessScalesDown sanity-checks the sweep's lower
// points quickly: a single tenant is trivially fair and two tenants
// stay within the bound.
func TestMultitenantFairnessScalesDown(t *testing.T) {
	if r := mtFairness(1, 3); r.fairness != 1.0 {
		t.Fatalf("single-tenant fairness = %.2f, want exactly 1.0", r.fairness)
	}
	if r := mtFairness(2, 3); r.fairness > 2.0 {
		t.Fatalf("two-tenant fairness = %.2f, want <= 2.0", r.fairness)
	}
}
