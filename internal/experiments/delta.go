// The delta experiment measures incremental checkpointing end to end:
// GPT-1.5B checkpointed at 1/5/25/100% per-iteration block mutation
// rates, against a full-checkpoint baseline on the identical rig. The
// acceptance bars are the ISSUE-10 criteria: at 1% mutation the fabric
// moves <= 15% of a full checkpoint's bytes and the end-to-end
// checkpoint time sits strictly below the full baseline; at 100% the
// daemon falls back to full pulls (a delta would move more bytes than
// a full pass); and a replicated tier running deltas survives a
// mid-run node kill with byte-identical degraded restores.

package experiments

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/metrics"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
)

const (
	// deltaBlockBytes is the digest granularity of the sweep (the
	// subsystem's default, 64 KiB).
	deltaBlockBytes = 64 << 10
	// deltaWarmups is how many checkpoints precede measurement: the
	// first bootstraps the digest table, the second populates the other
	// slot's table so the skip oracle is armed (deltas engage from the
	// third checkpoint on).
	deltaWarmups = 2
	// deltaMeasured is the steady-state checkpoints averaged per point.
	deltaMeasured = 3
	// deltaBytesCeiling: fabric bytes per 1%-dirty checkpoint must stay
	// under this fraction of a full checkpoint (acceptance bar; the CI
	// gate in cmd/portus-bench additionally fails below 50% savings).
	deltaBytesCeiling = 0.15
)

// placeOpts is portusRig.place with explicit client options — delta
// runs need Options.DeltaBlockBytes.
func (r *portusRig) placeOpts(env sim.Env, node, gpuIdx int, spec model.Spec, opts client.Options) (*gpu.PlacedModel, *client.Client, error) {
	placed, err := gpu.Place(r.cl.GPU(node, gpuIdx), spec)
	if err != nil {
		return nil, nil, err
	}
	conn, err := r.net.Dial(env, "storage")
	if err != nil {
		return nil, nil, err
	}
	c, err := client.RegisterOpts(env, conn, r.cl.Compute[node].RNode, placed, opts)
	if err != nil {
		return nil, nil, err
	}
	return placed, c, nil
}

// deltaPoint is one sweep measurement: steady-state per-checkpoint
// fabric bytes and end-to-end time at a given block mutation rate.
type deltaPoint struct {
	Rate      float64
	Digests   bool
	Total     int64 // model size = one full checkpoint's payload
	PerCkpt   time.Duration
	Pulled    int64 // fabric bytes per measured checkpoint
	Fallbacks int64
	RestoreOK bool
}

// runDeltaPoint streams sparse updates at rate through a delta-enabled
// daemon and measures the steady-state checkpoints. withDigests toggles
// only the client's digest computation, so the baseline runs the
// identical daemon configuration.
func runDeltaPoint(rate float64, withDigests bool) deltaPoint {
	spec := model.GPTFamily()[0] // gpt-1.5b
	pt := deltaPoint{Rate: rate, Digests: withDigests, Total: spec.TotalSize()}
	runEngine(func(env sim.Env) {
		rig, err := newPortusRig(env, voltaConfig(), func(d *daemon.Config) {
			d.DeltaEnabled = true
		})
		if err != nil {
			panic(err)
		}
		var opts client.Options
		if withDigests {
			opts.DeltaBlockBytes = deltaBlockBytes
		}
		placed, c, err := rig.placeOpts(env, 0, 0, spec, opts)
		if err != nil {
			panic(err)
		}
		update := func(it uint64) {
			if it == 1 {
				placed.ApplyUpdate(it) // initial weights: everything is new
			} else {
				placed.ApplySparseUpdate(it, deltaBlockBytes, rate)
			}
		}
		it := uint64(0)
		for w := 0; w < deltaWarmups; w++ {
			it++
			update(it)
			if err := c.CheckpointSync(env, it); err != nil {
				panic(fmt.Sprintf("delta: warmup checkpoint %d: %v", it, err))
			}
		}
		startBytes := rig.d.Stats().BytesPulled
		startFB := rig.d.Telemetry().Counter("portus_delta_full_fallbacks_total", "").Value()
		start := env.Now()
		for m := 0; m < deltaMeasured; m++ {
			it++
			update(it)
			if err := c.CheckpointSync(env, it); err != nil {
				panic(fmt.Sprintf("delta: checkpoint %d: %v", it, err))
			}
		}
		pt.PerCkpt = (env.Now() - start) / deltaMeasured
		pt.Pulled = (rig.d.Stats().BytesPulled - startBytes) / deltaMeasured
		pt.Fallbacks = rig.d.Telemetry().Counter("portus_delta_full_fallbacks_total", "").Value() - startFB

		// The last (delta-assembled) version restores byte-identical: the
		// restored content's digests match what the GPU held at commit.
		want := placed.BlockDigests(deltaBlockBytes)
		placed.ApplyUpdate(999999) // scramble
		iter, err := c.Restore(env)
		if err != nil || iter != it {
			panic(fmt.Sprintf("delta: restore at rate %.2f: iter %d, err %v", rate, iter, err))
		}
		pt.RestoreOK = placed.VerifyDigests(deltaBlockBytes, want) == -1
		if !pt.RestoreOK {
			panic(fmt.Sprintf("delta: restore at rate %.2f not byte-identical", rate))
		}
		c.Close()
	})
	return pt
}

// The replicated-tier scenario: a 2×2-sharded GPT on a 4-node tier at
// rf=2, streaming sparse updates as incremental checkpoints, with one
// storage node killed mid-checkpoint. The survivors must keep
// committing deltas and the degraded restore must come back
// byte-identical from the surviving replicas.
const (
	deltaTierRF     = 2
	deltaTierNodes  = 4
	deltaTierBlock  = int64(4 << 10) // small model, small blocks
	deltaTierRate   = 0.05
	deltaTierIters  = 8
	deltaTierKillAt = 5
)

// deltaTierOutcome is the replication scenario's verdict.
type deltaTierOutcome struct {
	Victim            string
	CommittedFinal    uint64
	BytesSaved        int64 // summed over surviving daemons
	DegradedRestoreOK bool
}

func runDeltaTier() deltaTierOutcome {
	var out deltaTierOutcome
	spec := model.GPT("delta-gpt", 2, 64, 512, 10*time.Millisecond)
	runEngine(func(env sim.Env) {
		inj := faults.NewInjector(faults.Config{Seed: ChaosSeed})
		rig, err := newTierRig(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 4,
			GPUMemBytes:  64 << 20,
			StorageNodes: deltaTierNodes, PMemBytes: 256 << 20,
			Materialized: true,
		}, func(node string, dcfg *daemon.Config) {
			dcfg.Replicas = deltaTierRF
			dcfg.DeltaEnabled = true
		})
		if err != nil {
			panic(err)
		}
		for i, st := range rig.cl.Storage {
			st, d := st, rig.daemons[i]
			inj.RegisterNode(st.Name,
				func(env sim.Env) { rig.cl.Fabric.CutNode(st.Name) },
				func(env sim.Env) { rig.net.Shutdown(env, st.Name) },
				func(env sim.Env) { d.Halt(env) },
			)
		}
		rt := client.NewRouter(rig.pmap, rig.dial, client.RouterOptions{
			Group:    "delta-gpt",
			Replicas: deltaTierRF,
			Client:   client.Options{DeltaBlockBytes: deltaTierBlock},
		})
		defer rt.Close()
		placed, err := rig.placeSharded(env, rt, spec, 2, 2)
		if err != nil {
			panic(err)
		}
		out.Victim = rt.Members()[0].Node
		apply := func(it uint64) {
			for _, p := range placed {
				if it == 1 {
					p.ApplyUpdate(it)
				} else {
					p.ApplySparseUpdate(it, deltaTierBlock, deltaTierRate)
				}
			}
		}
		for it := uint64(1); it <= deltaTierIters; it++ {
			apply(it)
			if it == deltaTierKillAt {
				// Kill the victim while the fan-out is in flight; the group
				// may or may not commit this iteration, but nothing may
				// regress and the survivors must carry the stream on.
				gc, err := rt.CheckpointAsync(env, it)
				if err != nil {
					panic(fmt.Sprintf("delta tier: fan-out %d: %v", it, err))
				}
				inj.KillNode(env, out.Victim)
				_ = gc.Wait(env)
			} else if err := rt.CheckpointSync(env, it); err != nil {
				panic(fmt.Sprintf("delta tier: checkpoint %d (victim %s dead since %d): %v",
					it, out.Victim, deltaTierKillAt, err))
			}
		}
		out.CommittedFinal = rt.Manifest().Committed()
		if out.CommittedFinal != deltaTierIters {
			panic(fmt.Sprintf("delta tier: committed %d, want %d", out.CommittedFinal, deltaTierIters))
		}
		// Deltas genuinely ran on the tier: surviving daemons banked
		// copy-forward/skip savings.
		for i, st := range rig.cl.Storage {
			if st.Name == out.Victim {
				continue
			}
			out.BytesSaved += rig.daemons[i].Telemetry().Counter("portus_delta_bytes_saved_total", "").Value()
		}
		if out.BytesSaved <= 0 {
			panic("delta tier: no delta savings recorded — the replicated stream ran full checkpoints only")
		}

		// Degraded restore with the victim still dead: every shard comes
		// back byte-identical from a surviving replica.
		wants := make([][]uint64, len(placed))
		for i, p := range placed {
			wants[i] = p.BlockDigests(deltaTierBlock)
		}
		apply(7777) // scramble
		iter, err := rt.Restore(env)
		if err != nil || iter != deltaTierIters {
			panic(fmt.Sprintf("delta tier: degraded restore: iter %d, err %v", iter, err))
		}
		out.DegradedRestoreOK = true
		for i, p := range placed {
			if bad := p.VerifyDigests(deltaTierBlock, wants[i]); bad != -1 {
				out.DegradedRestoreOK = false
				panic(fmt.Sprintf("delta tier: shard %d block %d mismatched after degraded restore", i, bad))
			}
		}
	})
	return out
}

// DeltaSavings computes the 1%-dirty fabric-byte savings fraction vs a
// full checkpoint — the number the perf-smoke CI gate thresholds.
func DeltaSavings(p1, full deltaPoint) float64 {
	if full.Pulled == 0 {
		return 0
	}
	return 1 - float64(p1.Pulled)/float64(full.Pulled)
}

// RunDeltaSweep measures the full baseline plus every mutation-rate
// point and enforces the acceptance bars. Exported so cmd/portus-bench
// can gate CI on the same numbers the table renders.
func RunDeltaSweep() (full deltaPoint, points []deltaPoint) {
	full = runDeltaPoint(0.01, false)
	for _, rate := range []float64{0.01, 0.05, 0.25, 1.00} {
		points = append(points, runDeltaPoint(rate, true))
	}
	p1 := points[0]
	if got := float64(p1.Pulled) / float64(p1.Total); got > deltaBytesCeiling {
		panic(fmt.Sprintf("delta: 1%%-dirty checkpoint moved %.1f%% of the model over the fabric, want <= %.0f%%",
			100*got, 100*deltaBytesCeiling))
	}
	if p1.PerCkpt >= full.PerCkpt {
		panic(fmt.Sprintf("delta: 1%%-dirty checkpoint took %s, not strictly below the full baseline %s",
			p1.PerCkpt, full.PerCkpt))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Pulled < points[i-1].Pulled {
			panic(fmt.Sprintf("delta: fabric bytes not monotonic in dirty rate (%.0f%% pulled %d < %.0f%% pulled %d)",
				100*points[i].Rate, points[i].Pulled, 100*points[i-1].Rate, points[i-1].Pulled))
		}
	}
	dense := points[len(points)-1]
	if dense.Fallbacks < deltaMeasured {
		panic(fmt.Sprintf("delta: 100%%-dirty stream fell back %d times, want every measured checkpoint (%d)",
			dense.Fallbacks, deltaMeasured))
	}
	if dense.Pulled != dense.Total {
		panic(fmt.Sprintf("delta: 100%%-dirty checkpoint pulled %d bytes, want the full model %d",
			dense.Pulled, dense.Total))
	}
	return full, points
}

// Delta renders the incremental-checkpointing evaluation: the mutation
// rate sweep against the full baseline, and the replicated-tier
// node-kill scenario.
func Delta() []*Table {
	full, points := RunDeltaSweep()
	sweep := &Table{
		ID: "delta",
		Title: fmt.Sprintf("Incremental checkpointing: GPT-1.5B (%s), %d KiB blocks, steady state over %d checkpoints",
			metrics.FormatBytes(full.Total), deltaBlockBytes>>10, deltaMeasured),
		Header: []string{"Mutation rate", "Fabric bytes/ckpt", "Of full", "Ckpt time", "Speedup", "Fallbacks"},
	}
	row := func(label string, p deltaPoint) {
		sweep.Rows = append(sweep.Rows, []string{
			label,
			metrics.FormatBytes(p.Pulled),
			pct(float64(p.Pulled) / float64(p.Total)),
			secs(p.PerCkpt),
			ratio(full.PerCkpt, p.PerCkpt),
			fmt.Sprint(p.Fallbacks),
		})
	}
	row("full (no digests)", full)
	for _, p := range points {
		row(pct(p.Rate), p)
	}
	sweep.Notes = append(sweep.Notes,
		fmt.Sprintf("1%%-dirty fabric savings vs full: %s (CI gate: >= 50%%)", pct(DeltaSavings(points[0], full))),
		"clean blocks copy forward previous-slot->target-slot inside PMem; blocks the target already holds are skipped",
		"100% mutation falls back to full pulls: the delta plan would move more bytes than a full pass",
		"every point's final (delta-assembled) version restored byte-identical, digest-verified")

	o := runDeltaTier()
	tier := &Table{
		ID: "delta-tier",
		Title: fmt.Sprintf("Incremental checkpoints on a replicated tier: %d nodes, rf=%d, node %q killed at iteration %d",
			deltaTierNodes, deltaTierRF, o.Victim, deltaTierKillAt),
		Header: []string{"phase", "verdict"},
	}
	tier.Rows = append(tier.Rows,
		[]string{fmt.Sprintf("stream to iteration %d under deltas", o.CommittedFinal), "every surviving checkpoint group-committed"},
		[]string{"delta savings on survivors", metrics.FormatBytes(o.BytesSaved)},
		[]string{"degraded restore (victim dead)", "byte-identical from surviving replicas, digest-verified"},
	)
	tier.Notes = append(tier.Notes,
		"each replica runs its delta independently against its own slot tables; CRC verification at restore is unchanged")
	return []*Table{sweep, tier}
}
