package experiments

import (
	"fmt"

	"github.com/portus-sys/portus/internal/baseline"
	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/fsim"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/train"
)

// Fig9 reproduces the training-timeline comparison of Figure 9: the
// same model trained under the four checkpoint policies — PyTorch's
// synchronous torch.save, CheckFreq's snapshot-then-persist, and
// Portus's synchronous and asynchronous modes — checkpointing every
// iteration (the policy-differentiating regime the figure draws).
func Fig9() []*Table {
	spec := model.TableII()[5] // vit_l_32
	const iters = 20

	type outcome struct {
		name string
		res  train.Result
	}
	var outcomes []outcome
	run := func(name string, mk func(env sim.Env, rig *portusRig) train.Checkpointer) {
		var res train.Result
		runEngine(func(env sim.Env) {
			rig, err := newPortusRig(env, voltaConfig(), nil)
			if err != nil {
				panic(err)
			}
			res, err = train.Run(env, train.Config{
				Spec:       spec,
				Policy:     mk(env, rig),
				Interval:   1,
				Iterations: iters,
			})
			if err != nil {
				panic(err)
			}
		})
		outcomes = append(outcomes, outcome{name: name, res: res})
	}

	run("PyTorch torch.save (Fig 9a)", func(env sim.Env, rig *portusRig) train.Checkpointer {
		placed, err := gpu.Place(rig.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		return baseline.NewTorchSave(fsim.NewBeeGFS(rig.cl.Storage[0]), rig.cl.Compute[0], placed)
	})
	run("CheckFreq (Fig 9b)", func(env sim.Env, rig *portusRig) train.Checkpointer {
		placed, err := gpu.Place(rig.cl.GPU(0, 0), spec)
		if err != nil {
			panic(err)
		}
		return baseline.NewCheckFreq(fsim.NewBeeGFS(rig.cl.Storage[0]), rig.cl.Compute[0], placed)
	})
	run("Portus sync (Fig 9c)", func(env sim.Env, rig *portusRig) train.Checkpointer {
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		return &client.Sync{C: c}
	})
	run("Portus async (Fig 9d)", func(env sim.Env, rig *portusRig) train.Checkpointer {
		_, c, err := rig.place(env, 0, 0, spec)
		if err != nil {
			panic(err)
		}
		return &client.Async{C: c}
	})

	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("Training timeline under each policy (%s, checkpoint every iteration, %d iterations)", spec.Name, iters),
		Header: []string{"Policy", "Total time", "Stall/iteration", "GPU util", "vs torch.save"},
	}
	base := outcomes[0].res.Elapsed
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.name,
			secs(o.res.Elapsed),
			secs(o.res.StallTime / iters),
			pct(o.res.GPUUtilization()),
			ratio(base, o.res.Elapsed),
		})
	}
	t.Notes = append(t.Notes,
		"torch.save blocks for snapshot+serialize+write every iteration; CheckFreq hides the write but stalls on the previous persist at this frequency",
		"Portus-sync blocks only for the one-sided pull; Portus-async hides the pull behind the next iteration's forward+backward (Figure 9(d))",
	)
	return []*Table{t}
}
