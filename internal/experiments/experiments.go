// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated testbed, plus the ablation studies
// DESIGN.md §5 calls out. Each experiment is a pure function from
// nothing to renderable tables; cmd/portus-bench and the root
// bench_test.go both drive this registry.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// Table is one renderable result artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable evaluation artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() []*Table
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Traditional DNN checkpointing overhead breakdown (Table I)", Table1},
		{"table2", "DNN model specifications (Table II)", Table2},
		{"fig2", "Checkpointing overhead in training time (Figure 2)", Fig2},
		{"datapath", "Datapath structure: copies, crossings, serialization (Figures 3 & 5)", Datapath},
		{"fig9", "Training timeline under each checkpoint policy (Figure 9)", Fig9},
		{"fig10", "Portus datapath bandwidth and latency (Figure 10)", Fig10},
		{"fig11", "Checkpointing time of different models (Figure 11)", Fig11},
		{"fig12", "Restoring time of different models (Figure 12)", Fig12},
		{"fig13", "Breakdown of BERT checkpointing time (Figure 13)", Fig13},
		{"fig14", "GPT checkpoint dump time, Portus vs torch.save (Figure 14)", Fig14},
		{"fig15", "GPT-22.4B training time vs CheckFreq (Figure 15)", Fig15},
		{"fig16", "GPU utilization, Portus vs CheckFreq (Figure 16)", Fig16},
		{"ablation-staging", "Ablation: zero-copy vs host staging", AblationStaging},
		{"ablation-onesided", "Ablation: one-sided vs two-sided data plane", AblationOneSided},
		{"ablation-doublemap", "Ablation: double mapping vs fresh allocation", AblationDoubleMap},
		{"ablation-workers", "Ablation: daemon worker-pool width", AblationWorkers},
		{"ablation-bar", "Ablation: sensitivity to the GPU BAR read cap", AblationBAR},
		{"ablation-frequency", "Ablation: checkpoint frequency vs lost work (§I trade-off)", AblationFrequency},
		{"ablation-dram", "Ablation: PMem vs DRAM checkpoint target (§IV fallback)", AblationDRAMTarget},
		{"ablation-adaptive", "Ablation: finest sustainable checkpoint frequency (CheckFreq tuner)", AblationAdaptive},
		{"ablation-churn", "Ablation: goodput under sustained failures (§I churn regime)", AblationChurn},
		{"ablation-pipeline", "Ablation: datapath pipeline depth x lane striping", AblationPipeline},
		{"scale", "Sharded storage tier: aggregate checkpoint throughput vs node count", Scale},
		{"delta", "Incremental checkpointing: delta transfer and PMem copy-forward vs mutation rate", Delta},
		{"multitenant", "Multi-tenant scheduling: fairness, coalescing, backpressure", Multitenant},
		{"chaos", "Chaos: checkpoint goodput and recoverability under injected faults", Chaos},
		{"failover", "Failover: surviving storage-node loss with replicated shards", Failover},
		{"churn", "Churn: tenant turnover against a full namespace with online reclamation", Churn},
		{"appendix", "Full 76-model zoo checkpoint times (Appendix)", Appendix},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
}

// ---------------------------------------------------------------------------
// Shared harness helpers.
// ---------------------------------------------------------------------------

// portusRig is a ready cluster + daemon + control network inside a
// running engine process.
type portusRig struct {
	cl  *cluster.Cluster
	d   *daemon.Daemon
	net *wire.SimNet
}

// newPortusRig builds the rig. Call inside an engine process.
func newPortusRig(env sim.Env, cfg cluster.Config, dmut func(*daemon.Config)) (*portusRig, error) {
	cl, err := cluster.New(env, cfg)
	if err != nil {
		return nil, err
	}
	dcfg := daemon.Config{PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric}
	if dmut != nil {
		dmut(&dcfg)
	}
	d, err := daemon.New(env, dcfg)
	if err != nil {
		return nil, err
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		return nil, err
	}
	env.Go("portusd-serve", func(env sim.Env) { d.Serve(env, l) })
	return &portusRig{cl: cl, d: d, net: net}, nil
}

// place puts spec on (node, gpu) and registers it with the daemon.
func (r *portusRig) place(env sim.Env, node, gpuIdx int, spec model.Spec) (*gpu.PlacedModel, *client.Client, error) {
	placed, err := gpu.Place(r.cl.GPU(node, gpuIdx), spec)
	if err != nil {
		return nil, nil, err
	}
	conn, err := r.net.Dial(env, "storage")
	if err != nil {
		return nil, nil, err
	}
	c, err := client.Register(env, conn, r.cl.Compute[node].RNode, placed)
	if err != nil {
		return nil, nil, err
	}
	return placed, c, nil
}

// voltaConfig is the single-GPU evaluation host (Client-Volta, §V-A) in
// virtual-content mode, sized for the biggest single-GPU models.
func voltaConfig() cluster.Config {
	return cluster.Config{
		ComputeNodes: 1,
		GPUsPerNode:  4,
		GPUMemBytes:  32 << 30,
		PMemBytes:    256 << 30,
		Materialized: false,
	}
}

// ampereConfig is the two-node Megatron host (2× Client-Ampere, 8×A40).
func ampereConfig() cluster.Config {
	return cluster.Config{
		ComputeNodes: 2,
		GPUsPerNode:  8,
		GPUMemBytes:  48 << 30,
		PMemBytes:    768 << 30,
		Materialized: false,
	}
}

// runEngine runs fn as the root process of a fresh engine and returns
// after the event queue drains.
func runEngine(fn func(env sim.Env)) {
	eng := sim.NewEngine()
	eng.Go("experiment", fn)
	eng.Run()
}

// secs renders a duration in seconds with 3 decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ratio renders a speedup.
func ratio(slow, fast time.Duration) string {
	if fast == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(slow)/float64(fast))
}

// pct renders a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
