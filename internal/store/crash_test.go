package store

import (
	"errors"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/telemetry"
)

// TestOnlinePassCrashConsistency injects a power failure at every move
// boundary of an online repack pass (and every end-of-pass boundary),
// restarts the engine over the surviving media, and checks that every
// group-committed checkpoint still restores byte-identical. The
// per-extent discipline — allocate below, copy, flush, repoint with one
// failure-atomic persist, free — means the pointer always lands on an
// entirely-old or entirely-new extent; the orphaned side is exactly
// what Open's leak sweep reclaims.
func TestOnlinePassCrashConsistency(t *testing.T) {
	points := []string{
		"pre-copy", "post-copy", "post-flush", "post-point", "post-free",
		"pre-trim", "post-trim", "post-compact-table",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			pm := pmem.New(pmem.Config{Name: "pm", DataSize: 16 << 20, MetaSize: 8 << 20, Materialized: true})
			e, err := Open(Config{PMem: pm, TableCap: 16})
			if err != nil {
				t.Fatal(err)
			}
			// Three models; "a" is deleted to open gaps at the bottom of
			// the zone so b's and c's extents have somewhere to move.
			stamps := map[string][][]uint64{}
			iters := map[string][]uint64{"b": {7, 9}, "c": {3, 4}}
			for _, n := range []string{"a", "b", "c"} {
				m, err := e.CreateModel(n, metas(n, 128<<10, 64<<10))
				if err != nil {
					t.Fatal(err)
				}
				if n == "a" {
					commit(pm, m, 0, 1)
					continue
				}
				// Both slots committed: the move loop visits every
				// populated slot, and both must survive the crash.
				stamps[n] = [][]uint64{
					commit(pm, m, 0, iters[n][0]),
					commit(pm, m, 1, iters[n][1]),
				}
			}
			if err := e.DeleteModel("a"); err != nil {
				t.Fatal(err)
			}

			fired := false
			e.crashHook = func(p string) bool {
				if fired || p != point {
					return false
				}
				fired = true
				pm.Crash()
				return true
			}
			crashed := false
			for _, n := range []string{"b", "c"} {
				if _, err := e.CompactModel(n, nil); err != nil {
					if !errors.Is(err, ErrCrashed) {
						t.Fatalf("CompactModel(%s): %v", n, err)
					}
					crashed = true
					break
				}
			}
			if !crashed {
				if _, err := e.FinishPass(2, 0, time.Millisecond, telemetry.NewTraceID()); err != nil {
					if !errors.Is(err, ErrCrashed) {
						t.Fatal(err)
					}
					crashed = true
				}
			}
			if !crashed || !fired {
				t.Fatalf("crash point %q never fired (crashed=%v fired=%v)", point, crashed, fired)
			}

			// Restart: re-open the engine over the post-crash media.
			verify := func(e *Engine, phase string) {
				for _, n := range []string{"b", "c"} {
					m, err := e.Index().Lookup(n)
					if err != nil {
						t.Fatalf("%s: Lookup(%s): %v", phase, n, err)
					}
					for slot := 0; slot < 2; slot++ {
						h := m.VersionHeader(slot)
						if h.State != index.StateDone || h.Iteration != iters[n][slot] {
							t.Fatalf("%s: %s slot %d = state %s iter %d, want DONE %d",
								phase, n, slot, index.StateName(h.State), h.Iteration, iters[n][slot])
						}
						for i := range m.Tensors {
							ext := m.TensorData(i, slot)
							if got := pm.Data().StampOf(ext.Off, ext.Size); got != stamps[n][slot][i] {
								t.Fatalf("%s: %s slot %d tensor %d not byte-identical after crash at %q",
									phase, n, slot, i, point)
							}
						}
					}
				}
			}
			e2, err := Open(Config{PMem: pm, TableCap: 16})
			if err != nil {
				t.Fatalf("re-open after crash at %q: %v", point, err)
			}
			verify(e2, "post-crash")

			// The sweep must leave exactly the referenced extents live:
			// 2 models x 2 tensors x 2 slots.
			if got := len(e2.Allocator().Live()); got != 8 {
				t.Fatalf("%d live extents after sweep, want 8", got)
			}

			// A clean pass over the recovered engine must complete and
			// preserve everything again.
			var moved int64
			for _, n := range []string{"b", "c"} {
				mv, err := e2.CompactModel(n, nil)
				if err != nil {
					t.Fatalf("recovered CompactModel(%s): %v", n, err)
				}
				moved += mv
			}
			if _, err := e2.FinishPass(2, moved, time.Millisecond, telemetry.NewTraceID()); err != nil {
				t.Fatal(err)
			}
			verify(e2, "post-recovery-pass")
		})
	}
}
