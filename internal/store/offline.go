package store

// This file is the offline repacker (§III-D2, Figure 7): the engine's
// maintenance algorithm in its original, whole-namespace form, for
// images no daemon has mounted. portusctl's repack command (and the
// legacy internal/repack package, now a thin wrapper) run this path;
// its persistent write sequence is unchanged from the pre-engine tool,
// so repacked images stay byte-identical.

import (
	"fmt"
	"sort"

	"github.com/portus-sys/portus/internal/alloc"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/pmem"
)

// OfflineReport summarizes one offline repacking pass.
type OfflineReport struct {
	ModelsKept     int
	ModelsRemoved  int
	SlotsReclaimed int
	BytesMoved     int64
	// BytesInUse is the data-zone footprint after repacking.
	BytesInUse int64
	// BytesReclaimed is the space recovered versus before.
	BytesReclaimed int64
}

// keepEntry is one TensorData extent that survives repacking.
type keepEntry struct {
	m    *index.Model
	ti   int
	slot int
	off  int64
	size int64
}

// Offline compacts the namespace in place. The daemon must not be
// serving checkpoints concurrently — unlike the engine's online pass,
// this rewrite reclaims non-latest slots and removes never-done models,
// which is only safe when no tenant can come back for them.
func Offline(pm *pmem.Device, idx *index.Store) (OfflineReport, error) {
	var rep OfflineReport
	before := idx.Allocator().InUse()

	models, err := idx.Models()
	if err != nil {
		return rep, fmt.Errorf("repack: listing models: %w", err)
	}

	var keep []keepEntry
	for _, m := range models {
		slot, _, ok := m.LatestDone()
		if !ok {
			// Scenario 2 of §III-D2: the job crashed before any version
			// completed; nothing here can ever be restored.
			if err := idx.DeleteModel(m.Name); err != nil {
				return rep, fmt.Errorf("repack: removing %s: %w", m.Name, err)
			}
			rep.ModelsRemoved++
			continue
		}
		rep.ModelsKept++
		// Scenario 1: only the newest done version stays; the other slot
		// (outdated or collapsed mid-write) is reclaimed.
		other := 1 - slot
		if m.HasSlot(other) {
			m.ClearVersion(other)
			rep.SlotsReclaimed++
		}
		for i := range m.Tensors {
			ext := m.TensorData(i, slot)
			keep = append(keep, keepEntry{m: m, ti: i, slot: slot, off: ext.Off, size: ext.Size})
		}
	}

	// Compact surviving extents to a contiguous prefix, ascending source
	// order so destinations never overtake sources.
	sort.Slice(keep, func(i, j int) bool { return keep[i].off < keep[j].off })
	cursor := int64(alloc.Align)
	var live []alloc.Extent
	for _, k := range keep {
		alignedSize := (k.size + alloc.Align - 1) / alloc.Align * alloc.Align
		if k.off != cursor {
			memdev.Copy(pm.Data(), cursor, pm.Data(), k.off, k.size)
			pm.FlushData(cursor, k.size)
			k.m.SetPAddr(k.ti, k.slot, cursor)
			rep.BytesMoved += k.size
		}
		live = append(live, alloc.Extent{Off: cursor, Size: alignedSize})
		cursor += alignedSize
	}
	if err := idx.Allocator().Rebuild(live); err != nil {
		return rep, fmt.Errorf("repack: rebuilding allocation table: %w", err)
	}
	// Restore the sorted-array invariant of the ModelTable (§III-D1),
	// dropping tombstones; the rewrite flips atomically between the two
	// table generations.
	if err := idx.CompactTable(); err != nil {
		return rep, fmt.Errorf("repack: compacting ModelTable: %w", err)
	}
	rep.BytesInUse = idx.Allocator().InUse()
	rep.BytesReclaimed = before - rep.BytesInUse
	return rep, nil
}
