// Package store is the daemon's storage engine: the one layer that owns
// the PMem namespace end to end. It composes the persistent index
// (ModelTable → MIndex → TensorData), the data-zone allocator, and the
// repacker behind a single mutex and a single set of invariants:
//
//   - Transactional admission. Registering a model reserves the MIndex
//     record and allocates both version slots for every tensor as one
//     transaction — any partial failure rolls back every extent already
//     claimed instead of leaking it (index.CreateModel enforces this;
//     the engine adds the same discipline to slot re-allocation).
//   - Capacity accounting as first-class state. Live, fragmented, and
//     garbage bytes are tracked continuously and exported as
//     portus_store_*_bytes gauges, not reconstructed by an offline tool.
//   - Online reclamation. A maintenance pass compacts one model at a
//     time while the daemon keeps serving other tenants: the scheduler's
//     maintenance class leases per-model quiescence (the pass occupies
//     the model's lane like any task, so no checkpoint or restore for
//     that model can run concurrently), and every extent move follows
//     the offline repacker's crash discipline — allocate strictly below
//     the source, copy, flush, then repoint with one failure-atomic
//     persist, then free the source. A crash at any boundary leaves
//     either the old or the new extent reachable; the other side is an
//     allocated-but-unreferenced extent that Open's leak sweep reclaims.
//
// The offline repacker (portusctl repack -image) remains available for
// unmounted images and is byte-for-byte unchanged; the engine's online
// pass trades its global rewrite for per-model increments that
// interleave with live traffic.
package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/alloc"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/telemetry"
)

// ErrCrashed is returned by maintenance entry points when the test-only
// crash hook fired mid-pass: the namespace has been reverted to its
// durable image and the engine must be re-opened.
var ErrCrashed = errors.New("store: crash injected")

// Config parameterizes Open.
type Config struct {
	// PMem is the namespace the engine owns.
	PMem *pmem.Device
	// TableCap sizes the ModelTable when the namespace needs formatting;
	// 0 defaults to 64.
	TableCap int64
	// Watermark is the fragmented-bytes fraction of the data zone that
	// makes NeedsRepack true. 0 defaults to 0.5; negative disables the
	// watermark trigger (reclaim-on-ErrNoSpace still works).
	Watermark float64
	// Telemetry receives the engine's gauges, counters, and the repack
	// duration histogram; nil creates a private registry.
	Telemetry *telemetry.Registry
	// Events receives flight-recorder entries for reclaim verdicts; nil
	// disables emission.
	Events *telemetry.EventRing
}

// Stats is the engine's capacity breakdown.
type Stats struct {
	// Capacity is the data-zone size in bytes.
	Capacity int64
	// Live is the bytes held by allocated TensorData extents.
	Live int64
	// Frag is the bytes trapped in free gaps below the bump pointer —
	// reclaimable only by first-fit luck or a repack pass.
	Frag int64
	// Garbage is the bytes held by dead MIndex records in the metadata
	// zone (deleted models whose record space awaits reuse).
	Garbage int64
	// Free is the data-zone bytes still allocatable (gaps + tail).
	Free int64
	// HighWater is the bump pointer.
	HighWater int64
}

// PassReport summarizes one online repack pass (JSON-encoded into
// TRepackResp for portusctl).
type PassReport struct {
	Models         int           `json:"models"`
	BytesMoved     int64         `json:"bytes_moved"`
	BytesReclaimed int64         `json:"bytes_reclaimed"` // bump-pointer drop
	Live           int64         `json:"live_bytes"`
	Frag           int64         `json:"frag_bytes"`
	Garbage        int64         `json:"garbage_bytes"`
	Duration       time.Duration `json:"duration_ns"`
}

// String renders the report.
func (r PassReport) String() string {
	return fmt.Sprintf("repack: %d models, moved %d bytes, reclaimed %d bytes, live %d, frag %d, garbage %d, took %s",
		r.Models, r.BytesMoved, r.BytesReclaimed, r.Live, r.Frag, r.Garbage, r.Duration)
}

// Engine is the storage engine. All mutating operations serialize on
// one mutex — which is what makes alloc.TrimBrk safe to call online —
// while reads of committed state (restore paths) stay lock-free as
// before.
type Engine struct {
	pm        *pmem.Device
	idx       *index.Store
	watermark float64
	events    *telemetry.EventRing

	mu sync.Mutex

	runs       *telemetry.Counter
	movedBytes *telemetry.Counter
	dur        *telemetry.Histogram

	// crashHook, when set (tests only), runs at every crash boundary of
	// a maintenance pass with a label naming the boundary. Returning
	// true means "the device just crashed": the pass aborts with
	// ErrCrashed and must not touch the namespace again.
	crashHook func(point string) bool
}

// Open opens (or formats) the namespace and builds the engine. Any
// allocated extent no live model references — the residue of a crash
// between extent allocation and pointer repoint, or of the historical
// registration leak — is swept back to the free list.
func Open(cfg Config) (*Engine, error) {
	if cfg.TableCap == 0 {
		cfg.TableCap = 64
	}
	switch {
	case cfg.Watermark == 0:
		cfg.Watermark = 0.5
	case cfg.Watermark < 0:
		cfg.Watermark = 2 // unreachable fraction: disabled
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	idx, err := index.Open(cfg.PMem)
	if errors.Is(err, index.ErrNotFormatted) {
		idx, err = index.Format(cfg.PMem, cfg.TableCap)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{
		pm:        cfg.PMem,
		idx:       idx,
		watermark: cfg.Watermark,
		events:    cfg.Events,
	}
	if err := e.sweepLeaks(); err != nil {
		return nil, err
	}
	a := idx.Allocator()
	reg.GaugeFunc("portus_store_capacity_bytes", "data-zone capacity",
		func() float64 { return float64(a.DataSize()) })
	reg.GaugeFunc("portus_store_live_bytes", "bytes held by allocated TensorData extents",
		func() float64 { return float64(a.InUse()) })
	reg.GaugeFunc("portus_store_frag_bytes", "bytes trapped in free gaps below the bump pointer",
		func() float64 { return float64(a.FragmentedBytes()) })
	reg.GaugeFunc("portus_store_garbage_bytes", "bytes held by dead MIndex records awaiting reuse",
		func() float64 { return float64(e.garbage()) })
	e.runs = reg.Counter("portus_store_repack_runs_total", "online repack passes completed")
	e.movedBytes = reg.Counter("portus_store_repack_moved_bytes_total", "TensorData bytes relocated by online repack passes")
	e.dur = reg.Histogram("portus_store_repack_seconds", "wall time of one online repack pass", nil)
	return e, nil
}

// sweepLeaks frees every allocated extent that no model's persistent
// pointers reference. Under the engine's crash discipline such extents
// are exactly the in-flight side of an interrupted move or registration;
// their bytes are garbage by construction.
func (e *Engine) sweepLeaks() error {
	models, err := e.idx.Models()
	if err != nil {
		return fmt.Errorf("store: leak sweep: %w", err)
	}
	referenced := make(map[int64]bool)
	for _, m := range models {
		for _, pa := range m.PAddr {
			for v := 0; v < 2; v++ {
				if pa[v] != 0 {
					referenced[pa[v]] = true
				}
			}
		}
	}
	a := e.idx.Allocator()
	for _, ext := range a.Live() {
		if !referenced[ext.Off] {
			if err := a.Free(ext.Off); err != nil {
				return fmt.Errorf("store: leak sweep: %w", err)
			}
		}
	}
	return nil
}

// Index exposes the persistent index (read paths, LIST, dumps).
func (e *Engine) Index() *index.Store { return e.idx }

// Allocator exposes the data-zone allocator for accounting.
func (e *Engine) Allocator() *alloc.Allocator { return e.idx.Allocator() }

// PMem returns the underlying namespace.
func (e *Engine) PMem() *pmem.Device { return e.pm }

func (e *Engine) garbage() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.idx.MIndexDead()
}

// Stats snapshots the capacity breakdown.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

func (e *Engine) statsLocked() Stats {
	a := e.idx.Allocator()
	return Stats{
		Capacity:  a.DataSize(),
		Live:      a.InUse(),
		Frag:      a.FragmentedBytes(),
		Garbage:   e.idx.MIndexDead(),
		Free:      a.FreeBytes(),
		HighWater: a.HighWater(),
	}
}

// NeedsRepack reports whether fragmentation crossed the watermark.
func (e *Engine) NeedsRepack() bool {
	a := e.idx.Allocator()
	return float64(a.FragmentedBytes()) >= e.watermark*float64(a.DataSize())
}

// IsSpaceError reports whether err is a reclaimable space exhaustion —
// the class a repack pass (or tenant churn) can relieve, which the
// daemon answers with a typed NO_SPACE retry-after instead of a hard
// failure.
func IsSpaceError(err error) bool {
	return errors.Is(err, alloc.ErrNoSpace) || errors.Is(err, index.ErrTableFull)
}

// CreateModel runs the transactional admission path: MIndex record plus
// both version slots per tensor, all-or-nothing.
func (e *Engine) CreateModel(name string, tensors []index.TensorMeta) (*index.Model, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.idx.CreateModel(name, tensors)
}

// EnsureSlots re-allocates any version slot the offline repacker
// reclaimed (PAddr 0), transactionally: on any failure every extent
// allocated by this call is freed and no pointer is repersisted.
func (e *Engine) EnsureSlots(m *index.Model) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := e.idx.Allocator()
	type pending struct {
		ti, v int
		off   int64
	}
	var news []pending
	for v := 0; v < 2; v++ {
		if m.HasSlot(v) {
			continue
		}
		for i, tm := range m.Tensors {
			off, err := a.Allocate(tm.Size)
			if err != nil {
				for _, p := range news {
					a.Free(p.off)
				}
				return fmt.Errorf("store: re-allocating slot %d for %q: %w", v, tm.Name, err)
			}
			news = append(news, pending{ti: i, v: v, off: off})
		}
	}
	// All allocations landed; only now repoint the persistent index.
	for _, p := range news {
		m.SetPAddr(p.ti, p.v, p.off)
	}
	return nil
}

// DeleteModel removes a model: frees its extents, tombstones the table
// entry, and returns its MIndex record bytes to the reuse pool.
func (e *Engine) DeleteModel(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.idx.DeleteModel(name)
}

// hook fires the test-only crash hook; true means the device crashed
// and the caller must abort without another namespace access.
func (e *Engine) hook(point string) bool {
	return e.crashHook != nil && e.crashHook(point)
}

// CompactModel is the per-model maintenance step of an online repack
// pass. The caller must hold the model's quiesce lease (its scheduler
// lane) so no checkpoint or restore for this model is in flight; other
// models' traffic proceeds untouched.
//
// Every populated slot's extents are moved as low in the data zone as a
// strictly-below-source gap allows. Slots are never reclaimed online
// (unlike the offline tool): a live tenant's non-latest slot is its
// next checkpoint's destination, not garbage. Crash points, in order,
// per extent:
//
//	pre-copy    dst allocated, nothing references it  → swept at Open
//	post-copy   dst written, not flushed              → swept at Open
//	post-flush  dst durable, pointer still on src     → swept at Open
//	post-point  pointer repersisted to dst            → src swept at Open
//	post-free   src freed, move complete
//
// The pointer repoint is one 8-byte failure-atomic persist, so restore
// always sees entirely-old or entirely-new.
//
// cached, when non-nil, must be the handle the caller's data plane
// reads extents through (the daemon's session handle). Lookup returns a
// fresh handle with its own in-memory PAddr cache, so repointing a
// fresh one would leave the caller's copy stale — its next checkpoint
// would write through freed pointers into extents the allocator has
// since handed to someone else. The lane lease that quiesces the model
// also orders this handle mutation against the data plane's reads.
func (e *Engine) CompactModel(name string, cached *index.Model) (moved int64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := cached
	if m == nil {
		m, err = e.idx.Lookup(name)
		if err != nil {
			if errors.Is(err, index.ErrNoModel) {
				return 0, nil // deleted while the task was queued
			}
			return 0, err
		}
	}
	a := e.idx.Allocator()
	for i := range m.Tensors {
		for v := 0; v < 2; v++ {
			src := m.PAddr[i][v]
			if src == 0 {
				continue
			}
			size := m.Tensors[i].Size
			dst, ok, aerr := a.AllocateBelow(size, src)
			if aerr != nil {
				return moved, aerr
			}
			if !ok {
				continue // no gap strictly below the source
			}
			if e.hook("pre-copy") {
				return moved, ErrCrashed
			}
			memdev.Copy(e.pm.Data(), dst, e.pm.Data(), src, size)
			if e.hook("post-copy") {
				return moved, ErrCrashed
			}
			e.pm.FlushData(dst, size)
			if e.hook("post-flush") {
				return moved, ErrCrashed
			}
			m.SetPAddr(i, v, dst)
			if e.hook("post-point") {
				return moved, ErrCrashed
			}
			if err := a.Free(src); err != nil {
				return moved, err
			}
			if e.hook("post-free") {
				return moved, ErrCrashed
			}
			moved += size
		}
	}
	e.movedBytes.Add(moved)
	return moved, nil
}

// FinishPass completes an online repack pass after every model's
// CompactModel step ran: the bump pointer drops to the highest live
// byte (returning the tail to the lock-free fast path) and the
// ModelTable is compacted — both crash-atomic on their own (the trim
// persists one 8-byte word; the table flip is the same double-
// generation switch the offline tool uses). It returns the pass report
// and records the run in the engine's telemetry.
func (e *Engine) FinishPass(models int, movedBytes int64, took time.Duration, trace telemetry.TraceID) (PassReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	before := e.idx.Allocator().HighWater()
	if e.hook("pre-trim") {
		return PassReport{}, ErrCrashed
	}
	newBrk := e.idx.Allocator().TrimBrk()
	if e.hook("post-trim") {
		return PassReport{}, ErrCrashed
	}
	if err := e.idx.CompactTable(); err != nil {
		return PassReport{}, err
	}
	if e.hook("post-compact-table") {
		return PassReport{}, ErrCrashed
	}
	st := e.statsLocked()
	rep := PassReport{
		Models:         models,
		BytesMoved:     movedBytes,
		BytesReclaimed: before - newBrk,
		Live:           st.Live,
		Frag:           st.Frag,
		Garbage:        st.Garbage,
		Duration:       took,
	}
	e.runs.Inc()
	e.dur.ObserveDurationTraced(took, trace)
	return rep, nil
}

// RepackRuns reports completed online passes (the
// portus_store_repack_runs_total counter).
func (e *Engine) RepackRuns() int64 { return e.runs.Value() }
