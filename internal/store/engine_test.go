package store

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/telemetry"
)

func newTestEngine(t *testing.T, dataSize int64) *Engine {
	t.Helper()
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: dataSize, MetaSize: 8 << 20, Materialized: true})
	e, err := Open(Config{PMem: pm, TableCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func metas(prefix string, sizes ...int64) []index.TensorMeta {
	tms := make([]index.TensorMeta, len(sizes))
	for i, sz := range sizes {
		tms[i] = index.TensorMeta{Name: prefix, DType: index.F32, Dims: []int64{sz / 4}, Size: sz}
	}
	return tms
}

// commit writes a deterministic pattern into slot and marks it DONE,
// returning the per-tensor content stamps.
func commit(pm *pmem.Device, m *index.Model, slot int, iter uint64) []uint64 {
	m.SetActive(slot, iter)
	stamps := make([]uint64, len(m.Tensors))
	for i := range m.Tensors {
		ext := m.TensorData(i, slot)
		gpu.FillRegion(pm.Data(), ext.Off, ext.Size, iter*100+uint64(i))
		pm.FlushData(ext.Off, ext.Size)
		stamps[i] = pm.Data().StampOf(ext.Off, ext.Size)
	}
	m.SetDone(slot, iter, time.Unix(0, int64(iter)))
	return stamps
}

// TestAdmissionRollbackOnSecondSlot is the regression test for the
// registration leak: a model whose first version slot fits but whose
// second does not must leave the allocator exactly as it found it.
func TestAdmissionRollbackOnSecondSlot(t *testing.T) {
	e := newTestEngine(t, 1<<20)
	before := e.Allocator().InUse()

	// One 600 KiB tensor: slot 0 fits (600 KiB of ~1 MiB), slot 1 does
	// not — the failure lands mid-way through the two-slot allocation.
	_, err := e.CreateModel("leaky", metas("w", 600<<10))
	if err == nil {
		t.Fatal("CreateModel succeeded with room for only one slot")
	}
	if !IsSpaceError(err) {
		t.Fatalf("want space error, got %v", err)
	}
	if got := e.Allocator().InUse(); got != before {
		t.Fatalf("first slot's extent leaked: InUse = %d, want %d", got, before)
	}
	if got := len(e.Allocator().Live()); got != 0 {
		t.Fatalf("%d live extents after failed admission, want 0", got)
	}
	if _, err := e.Index().Lookup("leaky"); err == nil {
		t.Fatal("failed registration left a visible model")
	}

	// The reclaimed space must be immediately admissible.
	if _, err := e.CreateModel("fits", metas("w", 200<<10)); err != nil {
		t.Fatalf("admission after rollback: %v", err)
	}
}

// TestAdmissionRollbackMidSlot fails inside the second slot's tensor
// loop (first tensor of slot 1 fits, second does not) and checks every
// extent from both slots is rolled back.
func TestAdmissionRollbackMidSlot(t *testing.T) {
	e := newTestEngine(t, 1<<20)
	before := e.Allocator().InUse()
	// Slot 0: 400 + 200 = 600 KiB. Slot 1: 400 KiB fits (1000 KiB
	// total), 200 KiB does not (1 MiB zone, offset 0 reserved).
	_, err := e.CreateModel("leaky", metas("w", 400<<10, 200<<10))
	if err == nil {
		t.Fatal("CreateModel succeeded without room for both slots")
	}
	if !IsSpaceError(err) {
		t.Fatalf("want space error, got %v", err)
	}
	if got := e.Allocator().InUse(); got != before {
		t.Fatalf("partial admission leaked extents: InUse = %d, want %d", got, before)
	}
}

// TestEnsureSlotsRollback exhausts the zone mid-way through slot
// re-allocation (the post-offline-repack path) and checks the extents
// already claimed are freed.
func TestEnsureSlotsRollback(t *testing.T) {
	e := newTestEngine(t, 768<<10)
	m, err := e.CreateModel("m", metas("w", 100<<10, 150<<10))
	if err != nil {
		t.Fatal(err)
	}
	// Mimic the offline repacker reclaiming slot 1: free its extents and
	// invalidate its pointers. The two frees coalesce into one 250 KiB
	// gap.
	for i := range m.Tensors {
		if err := e.Allocator().Free(m.PAddr[i][1]); err != nil {
			t.Fatal(err)
		}
	}
	m.ClearVersion(1)
	// The filler's first slot takes 150 KiB out of the gap (leaving
	// 100 KiB) and its second slot bumps, leaving too little tail for
	// the 150 KiB tensor below.
	if _, err := e.CreateModel("filler", metas("f", 150<<10)); err != nil {
		t.Fatal(err)
	}
	before := e.Allocator().InUse()
	if err := e.EnsureSlots(m); err == nil {
		t.Fatal("EnsureSlots succeeded in an exhausted zone")
	}
	if got := e.Allocator().InUse(); got != before {
		t.Fatalf("EnsureSlots leaked on failure: InUse = %d, want %d", got, before)
	}
	if m.HasSlot(1) {
		t.Fatal("EnsureSlots repointed a slot despite failing")
	}
}

// TestStatsAccounting checks live/frag/garbage track admissions,
// deletes, and reclamation as first-class state.
func TestStatsAccounting(t *testing.T) {
	e := newTestEngine(t, 16<<20)
	pm := e.PMem()
	a, err := e.CreateModel("a", metas("a", 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CreateModel("b", metas("b", 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	commit(pm, a, 0, 1)
	commit(pm, b, 0, 1)

	st := e.Stats()
	if st.Live != 4*(64<<10) {
		t.Fatalf("Live = %d, want %d", st.Live, 4*(64<<10))
	}
	if st.Frag != 0 || st.Garbage != 0 {
		t.Fatalf("fresh engine Frag=%d Garbage=%d, want 0/0", st.Frag, st.Garbage)
	}

	if err := e.DeleteModel("a"); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Live != 2*(64<<10) {
		t.Fatalf("Live after delete = %d, want %d", st.Live, 2*(64<<10))
	}
	if st.Frag != 2*(64<<10) {
		t.Fatalf("Frag after delete = %d, want %d (a's extents sit below b's)", st.Frag, 2*(64<<10))
	}
	if st.Garbage <= 0 {
		t.Fatalf("Garbage after delete = %d, want > 0 (dead MIndex record)", st.Garbage)
	}

	// A new model must reuse both the dead record bytes and the gaps.
	if _, err := e.CreateModel("c", metas("c", 64<<10)); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Garbage != 0 {
		t.Fatalf("Garbage after record reuse = %d, want 0", st.Garbage)
	}
	if st.Frag != 0 {
		t.Fatalf("Frag after gap reuse = %d, want 0", st.Frag)
	}
}

// TestOnlinePassReclaims runs a full online pass (CompactModel per
// model + FinishPass) over a fragmented zone and checks the bump
// pointer drops, committed bytes survive, and the run is counted.
func TestOnlinePassReclaims(t *testing.T) {
	e := newTestEngine(t, 16<<20)
	pm := e.PMem()
	names := []string{"a", "b", "c"}
	models := map[string]*index.Model{}
	stamps := map[string][]uint64{}
	for _, n := range names {
		m, err := e.CreateModel(n, metas(n, 128<<10, 64<<10))
		if err != nil {
			t.Fatal(err)
		}
		models[n] = m
		stamps[n] = commit(pm, m, 0, 7)
	}
	if err := e.DeleteModel("a"); err != nil {
		t.Fatal(err)
	}
	highBefore := e.Allocator().HighWater()
	if !e.NeedsRepack() {
		// a's 384 KiB of gaps vs 16 MiB is below the default watermark;
		// explicit passes must still work.
		t.Log("below watermark (expected); running explicit pass")
	}

	var movedTotal int64
	for _, n := range []string{"b", "c"} {
		moved, err := e.CompactModel(n, nil)
		if err != nil {
			t.Fatalf("CompactModel(%s): %v", n, err)
		}
		movedTotal += moved
	}
	if movedTotal == 0 {
		t.Fatal("pass moved nothing despite gaps below live extents")
	}
	rep, err := e.FinishPass(2, movedTotal, time.Millisecond, telemetry.NewTraceID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesReclaimed <= 0 {
		t.Fatalf("BytesReclaimed = %d, want > 0", rep.BytesReclaimed)
	}
	if got := e.Allocator().HighWater(); got >= highBefore {
		t.Fatalf("bump pointer did not drop: %d -> %d", highBefore, got)
	}
	if e.RepackRuns() != 1 {
		t.Fatalf("RepackRuns = %d, want 1", e.RepackRuns())
	}
	for _, n := range []string{"b", "c"} {
		m, err := e.Index().Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		slot, v, ok := m.LatestDone()
		if !ok || v.Iteration != 7 {
			t.Fatalf("%s latest = %+v ok=%v", n, v, ok)
		}
		for i := range m.Tensors {
			ext := m.TensorData(i, slot)
			if got := pm.Data().StampOf(ext.Off, ext.Size); got != stamps[n][i] {
				t.Fatalf("%s tensor %d content changed by online pass", n, i)
			}
		}
	}
}

// TestCompactModelUpdatesCachedHandle is the regression test for the
// stale-session-handle corruption: the daemon's data plane reads
// extents through a long-lived *index.Model, so a compaction that
// repoints a fresh Lookup handle would leave that cache pointing at
// freed extents — the next checkpoint then writes into space the
// allocator may have re-issued to another tenant.
func TestCompactModelUpdatesCachedHandle(t *testing.T) {
	e := newTestEngine(t, 16<<20)
	pm := e.PMem()
	// b is created first so its extents sit below a's; deleting it opens
	// the gap the compaction moves a into.
	if _, err := e.CreateModel("b", metas("b", 128<<10)); err != nil {
		t.Fatal(err)
	}
	m, err := e.CreateModel("a", metas("a", 128<<10))
	if err != nil {
		t.Fatal(err)
	}
	commit(pm, m, 0, 1)
	if err := e.DeleteModel("b"); err != nil {
		t.Fatal(err)
	}

	before := make([]int64, 2)
	for v := 0; v < 2; v++ {
		before[v] = m.PAddr[0][v]
	}
	moved, err := e.CompactModel("a", m)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("compaction moved nothing despite a gap below the extents")
	}
	// The cached handle and the media must agree on the new pointers.
	fresh, err := e.Index().Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		if m.PAddr[0][v] != fresh.PAddr[0][v] {
			t.Fatalf("slot %d: cached handle points at %d, media at %d — the data plane would write through a freed pointer",
				v, m.PAddr[0][v], fresh.PAddr[0][v])
		}
	}
	if m.PAddr[0][0] == before[0] && m.PAddr[0][1] == before[1] {
		t.Fatal("no pointer changed despite bytes moved")
	}
}

// TestSweepLeaksOnOpen plants an allocated-but-unreferenced extent (the
// residue of a crash between allocation and repoint) and checks Open
// returns it to the free list.
func TestSweepLeaksOnOpen(t *testing.T) {
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 4 << 20, MetaSize: 8 << 20, Materialized: true})
	e, err := Open(Config{PMem: pm, TableCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateModel("m", metas("w", 64<<10)); err != nil {
		t.Fatal(err)
	}
	leak, err := e.Allocator().Allocate(96 << 10)
	if err != nil {
		t.Fatal(err)
	}
	inUse := e.Allocator().InUse()

	e2, err := Open(Config{PMem: pm, TableCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Allocator().InUse(); got != inUse-(96<<10) {
		t.Fatalf("leak sweep: InUse = %d, want %d", got, inUse-(96<<10))
	}
	for _, ext := range e2.Allocator().Live() {
		if ext.Off == leak {
			t.Fatal("leaked extent survived the open-time sweep")
		}
	}
}
