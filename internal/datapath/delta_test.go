package datapath_test

import (
	"bytes"
	"testing"

	"github.com/portus-sys/portus/internal/datapath"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// TestDeltaPlanCoversExtents: a delta plan's chunks tile exactly the
// dirty extents handed in — nothing more, nothing less — with tensor
// and PMem addressing consistent with the extent bases, and chunk
// lengths under the MinChunk-clamped bound.
func TestDeltaPlanCoversExtents(t *testing.T) {
	extents := []datapath.Extent{
		{Tensor: 0, Name: "t0", TensorOff: 0, PMemOff: 100 << 20, Size: 64 << 10},
		{Tensor: 0, Name: "t0", TensorOff: 5 << 20, PMemOff: 100<<20 + 5<<20, Size: 3<<20 + 777},
		{Tensor: 2, Name: "t2", TensorOff: 128 << 10, PMemOff: 200 << 20, Size: 64 << 10},
	}
	p := datapath.NewDeltaPlan(extents, 1<<20)
	var total int64
	for _, x := range extents {
		total += x.Size
	}
	if p.Bytes != total {
		t.Fatalf("plan bytes %d, want %d", p.Bytes, total)
	}
	// Walk chunks extent by extent: contiguous cover, consistent
	// addressing on both ends.
	ci := 0
	for _, x := range extents {
		var covered int64
		for covered < x.Size {
			c := p.Chunks[ci]
			ci++
			if c.Tensor != x.Tensor || c.Name != x.Name {
				t.Fatalf("chunk %d addresses tensor %d/%s, want %d/%s", ci-1, c.Tensor, c.Name, x.Tensor, x.Name)
			}
			if c.TensorOff != x.TensorOff+covered || c.PMemOff != x.PMemOff+covered {
				t.Fatalf("chunk %d offsets (%d,%d), want (%d,%d)",
					ci-1, c.TensorOff, c.PMemOff, x.TensorOff+covered, x.PMemOff+covered)
			}
			if c.Len <= 0 || c.Len > 1<<20 {
				t.Fatalf("chunk %d len %d out of bounds", ci-1, c.Len)
			}
			covered += c.Len
		}
		if covered != x.Size {
			t.Fatalf("extent covered %d, want %d", covered, x.Size)
		}
	}
	if ci != len(p.Chunks) {
		t.Fatalf("plan has %d chunks beyond the extents", len(p.Chunks)-ci)
	}
	// Sub-MinChunk chunk sizes clamp up, as in NewPlan.
	clamped := datapath.NewDeltaPlan(extents, 1)
	for _, c := range clamped.Chunks {
		if c.Len > perfmodel.MinChunk {
			t.Fatalf("clamped plan emitted %d-byte chunk", c.Len)
		}
	}
}

// TestDeltaPullPlusCopyForward is the incremental checkpoint datapath
// end to end at the engine level: slot 0 holds the previous version,
// the dirty extent is pulled over the fabric into slot 1, the clean
// ranges copy forward slot0→slot1 locally, and slot 1 ends up
// byte-identical to the GPU — with every slot-1 byte flushed before
// the engine returns.
func TestDeltaPullPlusCopyForward(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		const size = int64(2 << 20)
		r := newDeltaRig(env, size)

		// Full pull of version 1 into slot 0.
		full := datapath.NewPlan(r.tensors, 0)
		e := r.engine(env, 1, 1)
		if _, err := e.Pull(env, r.cx, full, nil); err != nil {
			t.Fatal(err)
		}

		// Version 2 dirties one interior 256 KiB block.
		const dOff, dLen = int64(512 << 10), int64(256 << 10)
		dirty := make([]byte, dLen)
		for i := range dirty {
			dirty[i] = byte(i*7 + 3)
		}
		r.gpu.Write(dOff, dirty)

		root := &telemetry.Span{Name: "ckpt"}
		r.flushedBytes, r.flushCalls = 0, 0
		plan := datapath.NewDeltaPlan([]datapath.Extent{
			{Tensor: 0, Name: "t0", TensorOff: dOff, PMemOff: size + dOff, Size: dLen},
		}, 0)
		pres, err := e.Pull(env, r.cx, plan, root)
		if err != nil {
			t.Fatal(err)
		}
		if pres.Bytes != dLen {
			t.Fatalf("delta pull moved %d bytes, want %d", pres.Bytes, dLen)
		}
		spans := []datapath.CopySpan{
			{Name: "t0", DstOff: size, SrcOff: 0, Size: dOff},
			{Name: "t0", DstOff: size + dOff + dLen, SrcOff: dOff + dLen, Size: size - dOff - dLen},
		}
		cres, err := e.CopyForward(env, r.cx, spans, func(dst, src, n int64) error {
			memdev.Copy(r.pm, dst, r.pm, src, n)
			return nil
		}, root)
		if err != nil {
			t.Fatal(err)
		}
		if cres.Bytes != size-dLen {
			t.Fatalf("copy-forward moved %d bytes, want %d", cres.Bytes, size-dLen)
		}
		// Slot 1 matches the GPU byte for byte.
		if !bytes.Equal(r.pm.Bytes(size, size), r.gpu.Bytes(0, size)) {
			t.Fatal("slot 1 differs from GPU after delta pull + copy-forward")
		}
		// Every slot-1 byte was flushed exactly once (pull chunk + two
		// copy spans), preserving the flush-before-DONE discipline.
		if r.flushedBytes != size {
			t.Fatalf("flushed %d bytes of slot 1, want %d", r.flushedBytes, size)
		}
		if sp := root.Find("copy-forward"); sp == nil || len(sp.Children) != len(spans) {
			t.Fatalf("copy-forward span missing or wrong arity: %+v", sp)
		}
		if cres.Transfer <= 0 {
			t.Fatal("copy-forward charged no virtual time")
		}
	})
	eng.Run()
}

// newDeltaRig is newRig with a two-slot PMem device: one tensor of the
// given size on the GPU, a data zone of 2*size, and remote/local MRs
// spanning everything so plans can address either slot.
func newDeltaRig(env sim.Env, size int64) *rig {
	r := newRig(env, true, []int64{size})
	pm2 := memdev.New("pmem2", memdev.PMEM, 2*size, true)
	r.pm = pm2
	r.cx.LocalMR = r.cx.Local.RegisterMR(env, pm2, 0, 2*size)
	return r
}
