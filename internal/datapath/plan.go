// Package datapath implements the transfer core shared by checkpoint
// (pull) and restore (push): a Plan that splits a model's tensors into
// chunks, a Strategy that knows how one chunk moves over the fabric
// (one-sided zero-copy, two-sided rendezvous, or staged through host
// DRAM), and an Engine that executes the plan — either strictly
// sequentially (pipeline depth 1, one lane, reproducing the paper's
// baseline datapath exactly) or pipelined, overlapping the PMem flush
// of chunk N with the RDMA pull of chunk N+1 and striping chunks
// across multiple queue-pair lanes.
//
// The engine preserves the daemon's crash-consistency contract: Pull
// returns only after every chunk of the plan has been flushed, so the
// caller can commit the version slot's done flag knowing the slot is
// complete on media.
package datapath

import (
	"strconv"

	"github.com/portus-sys/portus/internal/perfmodel"
)

// TensorRange describes one tensor's endpoints for a transfer: its
// TensorData extent in the PMem data zone and its size. The remote
// (GPU-side) region is identified positionally — Context.Remote is
// indexed by the tensor's position in the slice handed to NewPlan.
type TensorRange struct {
	Name    string
	PMemOff int64 // TensorData extent base within the PMem data zone
	Size    int64
}

// Chunk is one schedulable unit of datapath work: a contiguous byte
// range of one tensor, addressed on both ends.
type Chunk struct {
	Tensor    int    // index into the planned tensors (and Context.Remote)
	Name      string // tensor name, for trace spans
	Seq       int    // chunk index within its tensor
	Chunks    int    // total chunks of this tensor
	TensorOff int64  // offset within the tensor (= offset within the remote MR)
	PMemOff   int64  // absolute offset within the PMem data zone
	Len       int64
	// label is the precomputed span-name suffix ("<tensor>" or
	// "<tensor>#<seq>"): spanName runs per transfer attempt inside the
	// engine's lock, so formatting is paid once at planning time.
	label string
}

// spanName labels the chunk's trace span: "pull:<tensor>" when the
// tensor is a single chunk (the pre-chunking span name, which tooling
// keys on), "pull:<tensor>#<seq>" when split.
func (c Chunk) spanName(verb string) string {
	if c.label != "" {
		return verb + ":" + c.label
	}
	// Hand-built chunks (tests, sentinels) have no precomputed label.
	if c.Chunks <= 1 {
		return verb + ":" + c.Name
	}
	return verb + ":" + c.Name + "#" + strconv.Itoa(c.Seq)
}

// Plan is an ordered chunk schedule covering every tensor extent
// exactly once.
type Plan struct {
	Chunks []Chunk
	Bytes  int64
}

// Extent is a dirty byte range of one tensor, produced by the delta
// differ: only these ranges move over the fabric on an incremental
// checkpoint. Tensor indexes the same slice positions NewPlan uses, so
// a delta plan's chunks address Context.Remote identically to a full
// plan's.
type Extent struct {
	Tensor    int
	Name      string
	TensorOff int64 // offset within the tensor (= offset within the remote MR)
	PMemOff   int64 // absolute offset of this range within the PMem data zone
	Size      int64
}

// NewDeltaPlan builds a chunk schedule covering exactly the given dirty
// extents — the incremental-checkpoint counterpart of NewPlan. Each
// extent splits into chunks of at most chunkSize bytes under the same
// MinChunk clamp; extents themselves are never merged, so the plan
// moves precisely the bytes the differ marked dirty.
func NewDeltaPlan(extents []Extent, chunkSize int64) Plan {
	if chunkSize > 0 && chunkSize < perfmodel.MinChunk {
		chunkSize = perfmodel.MinChunk
	}
	var p Plan
	for _, x := range extents {
		p.Bytes += x.Size
		n := 1
		if chunkSize > 0 && x.Size > chunkSize {
			n = int((x.Size + chunkSize - 1) / chunkSize)
		}
		for k := 0; k < n; k++ {
			off := int64(k) * chunkSize
			ln := x.Size
			if n > 1 {
				ln = x.Size - off
				if ln > chunkSize {
					ln = chunkSize
				}
			}
			// The label carries the tensor-relative range so delta chunks
			// are distinguishable from full-plan chunks in traces.
			label := x.Name + "@" + strconv.FormatInt(x.TensorOff+off, 10)
			p.Chunks = append(p.Chunks, Chunk{
				Tensor:    x.Tensor,
				Name:      x.Name,
				Seq:       k,
				Chunks:    n,
				TensorOff: x.TensorOff + off,
				PMemOff:   x.PMemOff + off,
				Len:       ln,
				label:     label,
			})
		}
	}
	return p
}

// NewPlan splits tensors into chunks of at most chunkSize bytes.
// chunkSize <= 0 disables splitting (one chunk per tensor, matching
// the paper's one-READ-per-tensor datapath); positive values are
// clamped up to perfmodel.MinChunk, below which per-verb issue cost
// dominates any overlap gain.
func NewPlan(tensors []TensorRange, chunkSize int64) Plan {
	if chunkSize > 0 && chunkSize < perfmodel.MinChunk {
		chunkSize = perfmodel.MinChunk
	}
	var p Plan
	for ti, t := range tensors {
		p.Bytes += t.Size
		n := 1
		if chunkSize > 0 && t.Size > chunkSize {
			n = int((t.Size + chunkSize - 1) / chunkSize)
		}
		for k := 0; k < n; k++ {
			var off, ln int64
			if n == 1 {
				off, ln = 0, t.Size
			} else {
				off = int64(k) * chunkSize
				ln = t.Size - off
				if ln > chunkSize {
					ln = chunkSize
				}
			}
			label := t.Name
			if n > 1 {
				label = t.Name + "#" + strconv.Itoa(k)
			}
			p.Chunks = append(p.Chunks, Chunk{
				Tensor:    ti,
				Name:      t.Name,
				Seq:       k,
				Chunks:    n,
				TensorOff: off,
				PMemOff:   t.PMemOff + off,
				Len:       ln,
				label:     label,
			})
		}
	}
	return p
}
