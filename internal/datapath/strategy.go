package datapath

import (
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// Context carries the endpoints a transfer runs between: the daemon's
// fabric and RDMA node, the MR covering the whole PMem data zone, and
// the client's per-tensor remote regions (indexed by Chunk.Tensor).
type Context struct {
	Fabric  rdma.Fabric
	Local   *rdma.Node
	LocalMR rdma.MR
	Remote  []rdma.RemoteMR
	// Trace links this transfer's flight-recorder events (retries,
	// quarantines, degradations) to the request's trace; zero when the
	// request is untraced.
	Trace telemetry.TraceID
	// HostStage is the storage server's DRAM staging resource; required
	// by HostStaged, unused by the other strategies.
	HostStage *sim.BandwidthResource
	// Lanes, when non-empty, restricts this transfer to a leased subset
	// of the engine's lane set (the scheduler's lane-pool arbitration
	// across concurrent jobs). Empty means the engine's full set.
	Lanes []*rdma.QP
}

func (cx *Context) local(c Chunk) rdma.Slice {
	return rdma.Slice{MR: cx.LocalMR, Off: c.PMemOff, Len: c.Len}
}

func (cx *Context) remote(c Chunk) rdma.RemoteSlice {
	return rdma.RemoteSlice{MR: cx.Remote[c.Tensor], Off: c.TensorOff, Len: c.Len}
}

// Strategy moves one chunk between the client and PMem. The daemon's
// ablation variants are strategies rather than datapath branches, so
// the engine's chunking/pipelining/striping applies to all of them
// uniformly.
type Strategy interface {
	Name() string
	// Pull moves the chunk from the client's memory into PMem
	// (checkpoint direction).
	Pull(env sim.Env, cx *Context, c Chunk) error
	// Push moves the chunk from PMem into the client's memory (restore
	// direction).
	Push(env sim.Env, cx *Context, c Chunk) error
}

// OneSided is the paper's datapath: a single one-sided verb per chunk,
// zero-copy on both ends (§III-B).
type OneSided struct{}

// Name identifies the strategy in traces and benchmarks.
func (OneSided) Name() string { return "one-sided" }

// Pull issues one one-sided READ landing directly in PMem.
func (OneSided) Pull(env sim.Env, cx *Context, c Chunk) error {
	return cx.Fabric.Read(env, cx.Local, cx.local(c), cx.remote(c))
}

// Push issues one one-sided WRITE directly from PMem.
func (OneSided) Push(env sim.Env, cx *Context, c Chunk) error {
	return cx.Fabric.Write(env, cx.Local, cx.local(c), cx.remote(c))
}

// TwoSided models the rendezvous + receiver-copy cost of a two-sided
// SEND/RECV protocol on top of the same transfer (ablation; DESIGN.md
// §5).
type TwoSided struct{}

// Name identifies the strategy in traces and benchmarks.
func (TwoSided) Name() string { return "two-sided" }

// Pull charges the rendezvous latency delta, transfers, then pays the
// receiver-side copy out of the bounce buffer.
func (TwoSided) Pull(env sim.Env, cx *Context, c Chunk) error {
	env.Sleep(perfmodel.TwoSidedLatency - perfmodel.RDMALatency)
	if err := cx.Fabric.Read(env, cx.Local, cx.local(c), cx.remote(c)); err != nil {
		return err
	}
	sim.PipelineTransfer(env, c.Len, perfmodel.DefaultChunk,
		sim.Stage{Res: cx.Local.NIC(), FlowCap: perfmodel.BeeGFSTransferBW})
	return nil
}

// Push is one-sided: the restore direction has no server-side bounce
// buffer to model, and the paper's ablations vary only the checkpoint
// path.
func (TwoSided) Push(env sim.Env, cx *Context, c Chunk) error {
	return OneSided{}.Push(env, cx, c)
}

// HostStaged lands chunks in server DRAM first, then copies them to
// PMem — the extra hop Portus's zero-copy design removes (ablation).
type HostStaged struct{}

// Name identifies the strategy in traces and benchmarks.
func (HostStaged) Name() string { return "host-staged" }

// Pull transfers into DRAM, then pays the DRAM→PMem staging copy.
func (HostStaged) Pull(env sim.Env, cx *Context, c Chunk) error {
	if err := cx.Fabric.Read(env, cx.Local, cx.local(c), cx.remote(c)); err != nil {
		return err
	}
	cx.HostStage.Transfer(env, c.Len, perfmodel.PMemWriteBW, 0)
	return nil
}

// Push is one-sided (see TwoSided.Push).
func (HostStaged) Push(env sim.Env, cx *Context, c Chunk) error {
	return OneSided{}.Push(env, cx, c)
}
