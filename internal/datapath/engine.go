package datapath

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// RetryPolicy tunes the engine's self-healing behavior. The zero value
// disables it: the first error fails the run, matching the pre-retry
// datapath.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per chunk — transfer attempts and
	// flush attempts are budgeted independently. Values below 2 mean a
	// single attempt (no retry).
	MaxAttempts int
	// Backoff is the delay before the second attempt, doubling on each
	// further attempt.
	Backoff time.Duration
	// BackoffMax caps the doubled backoff; 0 leaves it uncapped.
	BackoffMax time.Duration
	// LaneFailLimit quarantines a lane after this many consecutive
	// failed attempts, re-striping its remaining chunks over the
	// healthy lanes. 0 disables quarantine; the last healthy lane is
	// never quarantined (it must either succeed or fail the run).
	LaneFailLimit int
}

// Metrics receives the engine's healing counters. All handles are
// optional; nil handles are no-ops.
type Metrics struct {
	// Retries counts re-attempted chunk transfers and flushes.
	Retries *telemetry.Counter
	// Degradations counts strategy-chain fallbacks taken on
	// route-class errors.
	Degradations *telemetry.Counter
	// QuarantinedLanes gauges lanes currently removed from a stripe
	// set; it returns to zero when the run completes.
	QuarantinedLanes *telemetry.Gauge
	// Events receives flight-recorder entries for retries, strategy
	// degradations, and lane quarantines; nil disables emission.
	Events *telemetry.EventRing
}

// Config parameterizes an Engine.
type Config struct {
	// Strategy moves individual chunks; defaults to OneSided.
	Strategy Strategy
	// Fallbacks are tried in order when the active strategy hits a
	// route-class error (the peer's MR agent is unreachable,
	// rdma.ErrNoRoute): typically one-sided → two-sided → host-staged.
	// Degradation is per-run; the next run starts at Strategy again.
	Fallbacks []Strategy
	// Depth bounds the chunks in flight past the transfer stage: with
	// depth 1 a chunk's flush completes before the next chunk's pull
	// begins; with depth d, up to d chunks may be pulled-but-not-yet-
	// flushed, overlapping flush with transfer. Defaults to 1.
	Depth int
	// Lanes are the queue pairs chunks stripe across. Defaults to a
	// single lane.
	Lanes []*rdma.QP
	// IssueCost is the per-verb posting + completion-polling cost.
	IssueCost time.Duration
	// Flush persists [off, off+n) of the PMem data zone (pull direction
	// only). A non-nil error marks the range unpersisted; the engine
	// retries under RetryPolicy and never reports success with an
	// unflushed chunk.
	Flush func(off, n int64) error
	// FlushCost models the CLWB+fence cost of flushing n bytes. It must
	// be linear in n so per-chunk and whole-batch flushing charge the
	// same total.
	FlushCost func(n int64) time.Duration
	// Retry is the self-healing policy for transient verb and flush
	// errors.
	Retry RetryPolicy
	// Metrics receives retry/degradation/quarantine telemetry.
	Metrics Metrics
}

// Result reports what an engine run moved and the wall-clock (or
// virtual) stage breakdown. Transfer covers engine start to the last
// chunk's transfer completion; Flush is the remaining tail until every
// chunk is persisted. The two always sum to the engine's total
// occupancy, so the Figure 13 breakdown stays additive even when the
// stages overlap internally.
type Result struct {
	Bytes    int64
	Transfer time.Duration
	Flush    time.Duration
	Chunks   int
	// Retries counts chunk transfers and flushes that were re-attempted
	// after a transient error.
	Retries int
	// Degradations counts strategy-chain fallbacks this run took.
	Degradations int
	// Quarantined counts lanes removed from the stripe set this run.
	Quarantined int
}

// Engine executes Plans. It is stateless across runs and safe for
// concurrent use by multiple daemon workers.
type Engine struct {
	cfg Config
}

// New creates an engine, applying Config defaults.
func New(cfg Config) *Engine {
	if cfg.Strategy == nil {
		cfg.Strategy = OneSided{}
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if len(cfg.Lanes) == 0 {
		cfg.Lanes = []*rdma.QP{{ID: 0}}
	}
	if cfg.Flush == nil {
		cfg.Flush = func(int64, int64) error { return nil }
	}
	if cfg.FlushCost == nil {
		cfg.FlushCost = func(int64) time.Duration { return 0 }
	}
	return &Engine{cfg: cfg}
}

// Strategy returns the engine's primary chunk-transfer strategy.
func (e *Engine) Strategy() Strategy { return e.cfg.Strategy }

// lanesFor resolves the lane set a run stripes across: the context's
// leased subset when one is set, else the engine's full set.
func (e *Engine) lanesFor(cx *Context) []*rdma.QP {
	if len(cx.Lanes) > 0 {
		return cx.Lanes
	}
	return e.cfg.Lanes
}

func (e *Engine) maxAttempts() int {
	if e.cfg.Retry.MaxAttempts < 1 {
		return 1
	}
	return e.cfg.Retry.MaxAttempts
}

// backoff returns the pre-retry delay after `attempt` failed attempts:
// Backoff doubled per extra failure, capped at BackoffMax.
func (e *Engine) backoff(attempt int) time.Duration {
	d := e.cfg.Retry.Backoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if max := e.cfg.Retry.BackoffMax; max > 0 && d >= max {
			return max
		}
	}
	if max := e.cfg.Retry.BackoffMax; max > 0 && d > max {
		d = max
	}
	return d
}

// isRouteErr classifies errors that mean the peer's MR agent is
// unreachable — the trigger for strategy degradation. Addressing errors
// (bad rkey, out of bounds) are not route-class: no fallback strategy
// can fix a wrong address, so they fail fast.
func isRouteErr(err error) bool { return errors.Is(err, rdma.ErrNoRoute) }

// run is the per-operation healing state: the degradation chain cursor
// and the counters that land in Result.
type run struct {
	mu           sync.Mutex
	chain        []Strategy
	cur          int
	retries      int
	degradations int
	quarantined  int
	// trace links the run's flight-recorder events to the request.
	trace telemetry.TraceID
}

func (e *Engine) newRun(cx *Context) *run {
	chain := make([]Strategy, 0, 1+len(e.cfg.Fallbacks))
	chain = append(chain, e.cfg.Strategy)
	chain = append(chain, e.cfg.Fallbacks...)
	return &run{chain: chain, trace: cx.Trace}
}

func (r *run) strategy() Strategy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.chain[r.cur]
}

// event records a healing decision in the flight recorder (nil-safe).
func (r *run) event(e *Engine, env sim.Env, kind telemetry.EventKind, detail string) {
	e.cfg.Metrics.Events.Emit(telemetry.Event{
		Time:   env.Now(),
		Kind:   kind,
		Trace:  r.trace,
		Detail: detail,
	})
}

// degrade advances to the next fallback strategy; it reports false when
// the chain is exhausted (the caller must treat the error as final or
// spend a retry attempt on the current strategy).
func (r *run) degrade(e *Engine, env sim.Env) bool {
	r.mu.Lock()
	if r.cur+1 >= len(r.chain) {
		r.mu.Unlock()
		return false
	}
	r.cur++
	r.degradations++
	from, to := r.chain[r.cur-1].Name(), r.chain[r.cur].Name()
	r.mu.Unlock()
	e.cfg.Metrics.Degradations.Inc()
	r.event(e, env, telemetry.EvStrategyDegrade, from+" -> "+to)
	return true
}

func (r *run) noteRetry(e *Engine, env sim.Env, chunk string) {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
	e.cfg.Metrics.Retries.Inc()
	r.event(e, env, telemetry.EvDatapathRetry, chunk)
}

func (r *run) quarantine(e *Engine, env sim.Env, laneID int) {
	r.mu.Lock()
	r.quarantined++
	r.mu.Unlock()
	e.cfg.Metrics.QuarantinedLanes.Inc()
	r.event(e, env, telemetry.EvLaneQuarantine, "lane "+strconv.Itoa(laneID))
}

// finish returns quarantined lanes to the gauge (quarantine is scoped
// to one run; the next run stripes over the full lane set again) and
// stamps the healing counters into res.
func (r *run) finish(e *Engine, res *Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quarantined > 0 {
		e.cfg.Metrics.QuarantinedLanes.Add(int64(-r.quarantined))
	}
	res.Retries = r.retries
	res.Degradations = r.degradations
	res.Quarantined = r.quarantined
}

// laneContext returns cx, or a clone routed through the lane's own
// fabric when one is set (per-lane fault injection, multi-rail NICs).
func laneContext(cx *Context, qp *rdma.QP) *Context {
	if qp.Fabric == nil {
		return cx
	}
	clone := *cx
	clone.Fabric = qp.Fabric
	return &clone
}

// workItem is one chunk's place in a striped run, carrying its attempt
// budget across lanes when a quarantined lane hands it back.
type workItem struct {
	c        Chunk
	attempts int
}

// Pull runs the checkpoint direction: every chunk is transferred into
// PMem and flushed; Pull returns only once all chunks are persisted,
// so the caller may commit the version's done flag. That invariant
// survives healing: a retried or re-striped chunk still flushes before
// Pull returns, and a flush that keeps failing past the retry budget
// fails the whole run. Under root it builds a "pull" span (one child
// span per chunk attempt, with bytes and lane attributes) and a "flush"
// span covering the flush tail; the spans are contiguous, so they sum
// with the caller's other stages to the end-to-end latency.
func (e *Engine) Pull(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	if root == nil {
		root = &telemetry.Span{}
	}
	if e.cfg.Depth == 1 && len(e.lanesFor(cx)) == 1 {
		return e.pullSequential(env, cx, p, root)
	}
	return e.pullPipelined(env, cx, p, root)
}

// pullSequential is the depth-1, single-lane path: transfer every
// chunk, then flush the whole batch. With no faults it reproduces the
// pre-engine datapath's timing and span structure exactly.
func (e *Engine) pullSequential(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	rs := e.newRun(cx)
	lane0 := e.lanesFor(cx)[0]
	lcx := laneContext(cx, lane0)
	t0 := env.Now()
	pull := root.Child("pull", t0)
	var pulled int64
	for _, c := range p.Chunks {
		attempts := 0
		for {
			sp := pull.Child(c.spanName("pull"), env.Now())
			env.Sleep(e.cfg.IssueCost)
			err := rs.strategy().Pull(env, lcx, c)
			if err == nil {
				pulled += c.Len
				sp.SetAttr("bytes", strconv.FormatInt(c.Len, 10))
				sp.SetAttr("lane", strconv.Itoa(lane0.ID))
				if attempts > 0 {
					sp.SetAttr("attempt", strconv.Itoa(attempts+1))
				}
				sp.EndAt(env.Now())
				break
			}
			sp.SetAttr("error", err.Error())
			sp.EndAt(env.Now())
			if isRouteErr(err) && rs.degrade(e, env) {
				continue // fresh strategy, immediate re-attempt
			}
			attempts++
			if attempts >= e.maxAttempts() {
				pull.EndAt(env.Now())
				var res Result
				rs.finish(e, &res)
				return res, fmt.Errorf("pulling %s: %w", c.Name, err)
			}
			rs.noteRetry(e, env, "pull "+c.Name)
			env.Sleep(e.backoff(attempts))
		}
	}
	t1 := env.Now()
	pull.EndAt(t1)
	flush := root.Child("flush", t1)
	for _, c := range p.Chunks {
		attempts := 0
		for {
			err := e.cfg.Flush(c.PMemOff, c.Len)
			if err == nil {
				break
			}
			attempts++
			if attempts >= e.maxAttempts() {
				flush.EndAt(env.Now())
				var res Result
				rs.finish(e, &res)
				return res, fmt.Errorf("flushing %s: %w", c.Name, err)
			}
			rs.noteRetry(e, env, "flush "+c.Name)
			// A re-flush pays the CLWB cost for this chunk again on top
			// of the batch cost charged below.
			env.Sleep(e.backoff(attempts) + e.cfg.FlushCost(c.Len))
		}
	}
	env.Sleep(e.cfg.FlushCost(pulled))
	t2 := env.Now()
	flush.EndAt(t2)
	res := Result{Bytes: pulled, Transfer: t1 - t0, Flush: t2 - t1, Chunks: len(p.Chunks)}
	rs.finish(e, &res)
	return res, nil
}

// pullPipelined overlaps stages: lane processes pull chunks from a
// shared work queue (bounded by depth tokens) and hand them to a
// flusher process that persists each chunk as it lands and returns the
// token. A chunk's flush therefore runs while later chunks are still
// in flight, but no chunk is ever unflushed when Pull returns.
//
// Healing: a failed attempt retries on the same lane with backoff; a
// lane that fails LaneFailLimit consecutive attempts requeues its chunk
// and leaves the stripe set (quarantine), so the remaining chunks
// re-stripe over the healthy lanes; a chunk that exhausts MaxAttempts
// fails the run. Work-queue sends and closes happen under mu (guarded
// by workClosed) so a quarantined lane can never send on a closed
// queue.
func (e *Engine) pullPipelined(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	rs := e.newRun(cx)
	laneSet := e.lanesFor(cx)
	t0 := env.Now()
	pull := root.Child("pull", t0)

	tokens := sim.NewMailbox[struct{}](env)
	for i := 0; i < e.cfg.Depth; i++ {
		tokens.Send(env, struct{}{})
	}
	work := sim.NewMailbox[*workItem](env)
	flushQ := sim.NewMailbox[Chunk](env)
	lanes := sim.NewGroup(env)
	flushed := sim.NewSignal(env)

	var (
		mu          sync.Mutex
		failed      bool
		workClosed  bool
		firstErr    error
		pulled      int64
		lastPullEnd time.Duration
		flushedN    int
		healthy     = len(laneSet)
	)
	total := len(p.Chunks)
	for i := range p.Chunks {
		work.Send(env, &workItem{c: p.Chunks[i]})
	}
	if total == 0 {
		workClosed = true
		work.Close(env)
	}
	// closeWork is called with mu held.
	closeWork := func(env sim.Env) {
		if !workClosed {
			workClosed = true
			work.Close(env)
		}
	}

	lanes.Add(env, len(laneSet))
	for _, qp := range laneSet {
		qp := qp
		env.Go(fmt.Sprintf("datapath-lane-%d", qp.ID), func(env sim.Env) {
			defer lanes.Done(env)
			lcx := laneContext(cx, qp)
			consec := 0
			for {
				it, ok := work.Recv(env)
				if !ok {
					return
				}
				for {
					// Bound chunks in flight past the transfer stage.
					// Tokens are conserved: the flusher (or a failing
					// lane) always returns them, so blocked lanes cannot
					// starve.
					tokens.Recv(env)

					mu.Lock()
					if failed {
						mu.Unlock()
						tokens.Send(env, struct{}{})
						return
					}
					sp := pull.Child(it.c.spanName("pull"), env.Now())
					mu.Unlock()

					env.Sleep(e.cfg.IssueCost)
					err := rs.strategy().Pull(env, lcx, it.c)
					now := env.Now()

					if err == nil {
						mu.Lock()
						consec = 0
						pulled += it.c.Len
						if now > lastPullEnd {
							lastPullEnd = now
						}
						sp.SetAttr("bytes", strconv.FormatInt(it.c.Len, 10))
						sp.SetAttr("lane", strconv.Itoa(qp.ID))
						if it.attempts > 0 {
							sp.SetAttr("attempt", strconv.Itoa(it.attempts+1))
						}
						sp.EndAt(now)
						mu.Unlock()
						flushQ.Send(env, it.c) // the chunk carries its token to the flusher
						break
					}

					tokens.Send(env, struct{}{})
					mu.Lock()
					sp.SetAttr("error", err.Error())
					sp.EndAt(now)
					if isRouteErr(err) && rs.degrade(e, env) {
						mu.Unlock()
						continue // fresh strategy, immediate re-attempt
					}
					it.attempts++
					if it.attempts >= e.maxAttempts() {
						if firstErr == nil {
							firstErr = fmt.Errorf("pulling %s: %w", it.c.Name, err)
						}
						failed = true
						closeWork(env)
						mu.Unlock()
						return
					}
					rs.noteRetry(e, env, "pull "+it.c.Name)
					consec++
					if lim := e.cfg.Retry.LaneFailLimit; lim > 0 && consec >= lim && healthy > 1 {
						healthy--
						rs.quarantine(e, env, qp.ID)
						if !workClosed {
							work.Send(env, it) // re-stripe over the healthy lanes
						}
						mu.Unlock()
						return
					}
					mu.Unlock()
					env.Sleep(e.backoff(it.attempts))
				}
			}
		})
	}

	env.Go("datapath-flusher", func(env sim.Env) {
		for {
			c, ok := flushQ.Recv(env)
			if !ok || c.Len < 0 { // sentinel: every pulled chunk is behind us
				flushed.Fire(env)
				return
			}
			attempts := 0
			for {
				err := e.cfg.Flush(c.PMemOff, c.Len)
				env.Sleep(e.cfg.FlushCost(c.Len))
				if err == nil {
					break
				}
				attempts++
				if attempts >= e.maxAttempts() {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("flushing %s: %w", c.Name, err)
					}
					failed = true
					closeWork(env)
					mu.Unlock()
					break
				}
				rs.noteRetry(e, env, "flush "+c.Name)
				env.Sleep(e.backoff(attempts))
			}
			mu.Lock()
			flushedN++
			if flushedN == total && !failed {
				closeWork(env) // all persisted: release the idle lanes
			}
			mu.Unlock()
			tokens.Send(env, struct{}{})
		}
	})

	lanes.Wait(env)
	flushQ.Send(env, Chunk{Len: -1})
	flushed.Wait(env)

	if firstErr != nil {
		// Close the stage span even on failure: an unclosed span (End ==
		// 0) renders with a negative duration in dumps.
		pull.EndAt(env.Now())
		var res Result
		rs.finish(e, &res)
		return res, firstErr
	}
	if lastPullEnd < t0 { // empty plan: no chunk ever completed
		lastPullEnd = t0
	}
	pull.EndAt(lastPullEnd)
	flush := root.Child("flush", lastPullEnd)
	end := env.Now()
	flush.EndAt(end)
	res := Result{Bytes: pulled, Transfer: lastPullEnd - t0, Flush: end - lastPullEnd, Chunks: len(p.Chunks)}
	rs.finish(e, &res)
	return res, nil
}

// CopySpan is one clean range an incremental checkpoint carries forward
// inside PMem: SrcOff (the active slot's copy) to DstOff (the slot
// being written), never crossing the fabric.
type CopySpan struct {
	Name   string
	DstOff int64 // absolute offset within the PMem data zone
	SrcOff int64
	Size   int64
}

// CopyFn performs one local PMem-to-PMem copy of n bytes. The daemon
// supplies it (the engine has no device handle); it must leave the
// destination range unflushed — the engine charges and drives the flush
// itself so the flush-before-DONE discipline stays in one place.
type CopyFn func(dstOff, srcOff, n int64) error

// CopyForward executes the local half of an incremental checkpoint:
// every span is copied active→target inside PMem and flushed before
// CopyForward returns, so the caller can commit the target slot's done
// flag exactly as after a full Pull. Time is charged per span from the
// modeled PMem read + write bandwidth plus the standard flush cost.
// Under root it builds a "copy-forward" span with one child per span.
func (e *Engine) CopyForward(env sim.Env, cx *Context, spans []CopySpan, cp CopyFn, root *telemetry.Span) (Result, error) {
	if root == nil {
		root = &telemetry.Span{}
	}
	t0 := env.Now()
	cf := root.Child("copy-forward", t0)
	var copied int64
	for _, s := range spans {
		sp := cf.Child("copy:"+s.Name, env.Now())
		if err := cp(s.DstOff, s.SrcOff, s.Size); err != nil {
			sp.SetAttr("error", err.Error())
			sp.EndAt(env.Now())
			cf.EndAt(env.Now())
			return Result{Bytes: copied}, fmt.Errorf("copy-forward %s: %w", s.Name, err)
		}
		env.Sleep(perfmodel.PMemCopyTime(s.Size))
		if err := e.cfg.Flush(s.DstOff, s.Size); err != nil {
			sp.SetAttr("error", err.Error())
			sp.EndAt(env.Now())
			cf.EndAt(env.Now())
			return Result{Bytes: copied}, fmt.Errorf("copy-forward flush %s: %w", s.Name, err)
		}
		env.Sleep(e.cfg.FlushCost(s.Size))
		copied += s.Size
		sp.SetAttr("bytes", strconv.FormatInt(s.Size, 10))
		sp.EndAt(env.Now())
	}
	end := env.Now()
	cf.EndAt(end)
	return Result{Bytes: copied, Transfer: end - t0, Chunks: len(spans)}, nil
}

// Push runs the restore direction: chunks move from PMem back into the
// client's memory. There is no flush stage; with multiple lanes the
// chunks stripe, otherwise they run in order. The same healing policy
// applies: bounded per-chunk retry, per-run strategy degradation, and
// lane quarantine on striped runs. Under root it builds a "push" span
// with one child per chunk attempt.
func (e *Engine) Push(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	if root == nil {
		root = &telemetry.Span{}
	}
	rs := e.newRun(cx)
	laneSet := e.lanesFor(cx)
	t0 := env.Now()
	push := root.Child("push", t0)

	if len(laneSet) == 1 {
		lcx := laneContext(cx, laneSet[0])
		var pushed int64
		for _, c := range p.Chunks {
			attempts := 0
			for {
				sp := push.Child(c.spanName("push"), env.Now())
				env.Sleep(e.cfg.IssueCost)
				err := rs.strategy().Push(env, lcx, c)
				if err == nil {
					pushed += c.Len
					sp.SetAttr("bytes", strconv.FormatInt(c.Len, 10))
					sp.SetAttr("lane", strconv.Itoa(laneSet[0].ID))
					if attempts > 0 {
						sp.SetAttr("attempt", strconv.Itoa(attempts+1))
					}
					sp.EndAt(env.Now())
					break
				}
				sp.SetAttr("error", err.Error())
				sp.EndAt(env.Now())
				if isRouteErr(err) && rs.degrade(e, env) {
					continue
				}
				attempts++
				if attempts >= e.maxAttempts() {
					push.EndAt(env.Now())
					var res Result
					rs.finish(e, &res)
					return res, fmt.Errorf("restoring %s: %w", c.Name, err)
				}
				rs.noteRetry(e, env, "push "+c.Name)
				env.Sleep(e.backoff(attempts))
			}
		}
		push.EndAt(env.Now())
		res := Result{Bytes: pushed, Transfer: push.Dur(), Chunks: len(p.Chunks)}
		rs.finish(e, &res)
		return res, nil
	}

	var (
		mu         sync.Mutex
		failed     bool
		workClosed bool
		firstErr   error
		pushed     int64
		doneN      int
		healthy    = len(laneSet)
	)
	total := len(p.Chunks)
	work := sim.NewMailbox[*workItem](env)
	for i := range p.Chunks {
		work.Send(env, &workItem{c: p.Chunks[i]})
	}
	if total == 0 {
		workClosed = true
		work.Close(env)
	}
	closeWork := func(env sim.Env) { // called with mu held
		if !workClosed {
			workClosed = true
			work.Close(env)
		}
	}
	lanes := sim.NewGroup(env)
	lanes.Add(env, len(laneSet))
	for _, qp := range laneSet {
		qp := qp
		env.Go(fmt.Sprintf("datapath-lane-%d", qp.ID), func(env sim.Env) {
			defer lanes.Done(env)
			lcx := laneContext(cx, qp)
			consec := 0
			for {
				it, ok := work.Recv(env)
				if !ok {
					return
				}
				for {
					mu.Lock()
					if failed {
						mu.Unlock()
						return
					}
					sp := push.Child(it.c.spanName("push"), env.Now())
					mu.Unlock()

					env.Sleep(e.cfg.IssueCost)
					err := rs.strategy().Push(env, lcx, it.c)
					now := env.Now()

					if err == nil {
						mu.Lock()
						consec = 0
						pushed += it.c.Len
						sp.SetAttr("bytes", strconv.FormatInt(it.c.Len, 10))
						sp.SetAttr("lane", strconv.Itoa(qp.ID))
						if it.attempts > 0 {
							sp.SetAttr("attempt", strconv.Itoa(it.attempts+1))
						}
						sp.EndAt(now)
						doneN++
						if doneN == total {
							closeWork(env)
						}
						mu.Unlock()
						break
					}

					mu.Lock()
					sp.SetAttr("error", err.Error())
					sp.EndAt(now)
					if isRouteErr(err) && rs.degrade(e, env) {
						mu.Unlock()
						continue
					}
					it.attempts++
					if it.attempts >= e.maxAttempts() {
						if firstErr == nil {
							firstErr = fmt.Errorf("restoring %s: %w", it.c.Name, err)
						}
						failed = true
						closeWork(env)
						mu.Unlock()
						return
					}
					rs.noteRetry(e, env, "push "+it.c.Name)
					consec++
					if lim := e.cfg.Retry.LaneFailLimit; lim > 0 && consec >= lim && healthy > 1 {
						healthy--
						rs.quarantine(e, env, qp.ID)
						if !workClosed {
							work.Send(env, it)
						}
						mu.Unlock()
						return
					}
					mu.Unlock()
					env.Sleep(e.backoff(it.attempts))
				}
			}
		})
	}
	lanes.Wait(env)
	if firstErr != nil {
		// Close the stage span even on failure (see pullPipelined).
		push.EndAt(env.Now())
		var res Result
		rs.finish(e, &res)
		return res, firstErr
	}
	push.EndAt(env.Now())
	res := Result{Bytes: pushed, Transfer: push.Dur(), Chunks: len(p.Chunks)}
	rs.finish(e, &res)
	return res, nil
}
