package datapath

import (
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// Config parameterizes an Engine.
type Config struct {
	// Strategy moves individual chunks; defaults to OneSided.
	Strategy Strategy
	// Depth bounds the chunks in flight past the transfer stage: with
	// depth 1 a chunk's flush completes before the next chunk's pull
	// begins; with depth d, up to d chunks may be pulled-but-not-yet-
	// flushed, overlapping flush with transfer. Defaults to 1.
	Depth int
	// Lanes are the queue pairs chunks stripe across. Defaults to a
	// single lane.
	Lanes []*rdma.QP
	// IssueCost is the per-verb posting + completion-polling cost.
	IssueCost time.Duration
	// Flush persists [off, off+n) of the PMem data zone (pull direction
	// only).
	Flush func(off, n int64)
	// FlushCost models the CLWB+fence cost of flushing n bytes. It must
	// be linear in n so per-chunk and whole-batch flushing charge the
	// same total.
	FlushCost func(n int64) time.Duration
}

// Result reports what an engine run moved and the wall-clock (or
// virtual) stage breakdown. Transfer covers engine start to the last
// chunk's transfer completion; Flush is the remaining tail until every
// chunk is persisted. The two always sum to the engine's total
// occupancy, so the Figure 13 breakdown stays additive even when the
// stages overlap internally.
type Result struct {
	Bytes    int64
	Transfer time.Duration
	Flush    time.Duration
	Chunks   int
}

// Engine executes Plans. It is stateless across runs and safe for
// concurrent use by multiple daemon workers.
type Engine struct {
	cfg Config
}

// New creates an engine, applying Config defaults.
func New(cfg Config) *Engine {
	if cfg.Strategy == nil {
		cfg.Strategy = OneSided{}
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	if len(cfg.Lanes) == 0 {
		cfg.Lanes = []*rdma.QP{{ID: 0}}
	}
	if cfg.Flush == nil {
		cfg.Flush = func(int64, int64) {}
	}
	if cfg.FlushCost == nil {
		cfg.FlushCost = func(int64) time.Duration { return 0 }
	}
	return &Engine{cfg: cfg}
}

// Strategy returns the engine's chunk-transfer strategy.
func (e *Engine) Strategy() Strategy { return e.cfg.Strategy }

// Pull runs the checkpoint direction: every chunk is transferred into
// PMem and flushed; Pull returns only once all chunks are persisted,
// so the caller may commit the version's done flag. Under root it
// builds a "pull" span (one child span per chunk, with bytes and lane
// attributes) and a "flush" span covering the flush tail; the spans
// are contiguous, so they sum with the caller's other stages to the
// end-to-end latency.
func (e *Engine) Pull(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	if root == nil {
		root = &telemetry.Span{}
	}
	if e.cfg.Depth == 1 && len(e.cfg.Lanes) == 1 {
		return e.pullSequential(env, cx, p, root)
	}
	return e.pullPipelined(env, cx, p, root)
}

// pullSequential is the depth-1, single-lane path: transfer every
// chunk, then flush the whole batch. It reproduces the pre-engine
// datapath's timing and span structure exactly.
func (e *Engine) pullSequential(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	t0 := env.Now()
	pull := root.Child("pull", t0)
	var pulled int64
	for _, c := range p.Chunks {
		sp := pull.Child(c.spanName("pull"), env.Now())
		env.Sleep(e.cfg.IssueCost)
		if err := e.cfg.Strategy.Pull(env, cx, c); err != nil {
			return Result{}, fmt.Errorf("pulling %s: %w", c.Name, err)
		}
		pulled += c.Len
		sp.SetAttr("bytes", fmt.Sprint(c.Len))
		sp.SetAttr("lane", fmt.Sprint(e.cfg.Lanes[0].ID))
		sp.EndAt(env.Now())
	}
	t1 := env.Now()
	pull.EndAt(t1)
	flush := root.Child("flush", t1)
	for _, c := range p.Chunks {
		e.cfg.Flush(c.PMemOff, c.Len)
	}
	env.Sleep(e.cfg.FlushCost(pulled))
	t2 := env.Now()
	flush.EndAt(t2)
	return Result{Bytes: pulled, Transfer: t1 - t0, Flush: t2 - t1, Chunks: len(p.Chunks)}, nil
}

// pullPipelined overlaps stages: lane processes pull chunks (striped
// over a shared cursor, bounded by depth tokens) and hand them to a
// flusher process that persists each chunk as it lands and returns the
// token. A chunk's flush therefore runs while later chunks are still
// in flight, but no chunk is ever unflushed when Pull returns.
func (e *Engine) pullPipelined(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	t0 := env.Now()
	pull := root.Child("pull", t0)

	tokens := sim.NewMailbox[struct{}](env)
	for i := 0; i < e.cfg.Depth; i++ {
		tokens.Send(env, struct{}{})
	}
	flushQ := sim.NewMailbox[Chunk](env)
	lanes := sim.NewGroup(env)
	flushed := sim.NewSignal(env)

	var (
		mu          sync.Mutex
		next        int
		failed      bool
		firstErr    error
		pulled      int64
		lastPullEnd time.Duration
	)

	lanes.Add(env, len(e.cfg.Lanes))
	for _, qp := range e.cfg.Lanes {
		qp := qp
		env.Go(fmt.Sprintf("datapath-lane-%d", qp.ID), func(env sim.Env) {
			defer lanes.Done(env)
			for {
				mu.Lock()
				if failed || next >= len(p.Chunks) {
					mu.Unlock()
					return
				}
				c := p.Chunks[next]
				next++
				mu.Unlock()

				// Bound chunks in flight past the transfer stage. Tokens
				// are conserved: the flusher (or an erroring lane)
				// always returns them, so blocked lanes cannot starve.
				tokens.Recv(env)

				mu.Lock()
				if failed {
					mu.Unlock()
					tokens.Send(env, struct{}{})
					return
				}
				sp := pull.Child(c.spanName("pull"), env.Now())
				mu.Unlock()

				env.Sleep(e.cfg.IssueCost)
				err := e.cfg.Strategy.Pull(env, cx, c)
				now := env.Now()

				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("pulling %s: %w", c.Name, err)
					}
					failed = true
					mu.Unlock()
					tokens.Send(env, struct{}{})
					return
				}
				pulled += c.Len
				if now > lastPullEnd {
					lastPullEnd = now
				}
				sp.SetAttr("bytes", fmt.Sprint(c.Len))
				sp.SetAttr("lane", fmt.Sprint(qp.ID))
				sp.EndAt(now)
				mu.Unlock()

				flushQ.Send(env, c)
			}
		})
	}

	env.Go("datapath-flusher", func(env sim.Env) {
		for {
			c, ok := flushQ.Recv(env)
			if !ok || c.Len < 0 { // sentinel: every pulled chunk is behind us
				flushed.Fire(env)
				return
			}
			e.cfg.Flush(c.PMemOff, c.Len)
			env.Sleep(e.cfg.FlushCost(c.Len))
			tokens.Send(env, struct{}{})
		}
	})

	lanes.Wait(env)
	flushQ.Send(env, Chunk{Len: -1})
	flushed.Wait(env)

	if firstErr != nil {
		return Result{}, firstErr
	}
	if lastPullEnd < t0 { // empty plan: no chunk ever completed
		lastPullEnd = t0
	}
	pull.EndAt(lastPullEnd)
	flush := root.Child("flush", lastPullEnd)
	end := env.Now()
	flush.EndAt(end)
	return Result{Bytes: pulled, Transfer: lastPullEnd - t0, Flush: end - lastPullEnd, Chunks: len(p.Chunks)}, nil
}

// Push runs the restore direction: chunks move from PMem back into the
// client's memory. There is no flush stage; with multiple lanes the
// chunks stripe, otherwise they run in order. Under root it builds a
// "push" span with one child per chunk.
func (e *Engine) Push(env sim.Env, cx *Context, p Plan, root *telemetry.Span) (Result, error) {
	if root == nil {
		root = &telemetry.Span{}
	}
	t0 := env.Now()
	push := root.Child("push", t0)

	if len(e.cfg.Lanes) == 1 {
		var pushed int64
		for _, c := range p.Chunks {
			sp := push.Child(c.spanName("push"), env.Now())
			env.Sleep(e.cfg.IssueCost)
			if err := e.cfg.Strategy.Push(env, cx, c); err != nil {
				return Result{}, fmt.Errorf("restoring %s: %w", c.Name, err)
			}
			pushed += c.Len
			sp.SetAttr("bytes", fmt.Sprint(c.Len))
			sp.SetAttr("lane", fmt.Sprint(e.cfg.Lanes[0].ID))
			sp.EndAt(env.Now())
		}
		push.EndAt(env.Now())
		return Result{Bytes: pushed, Transfer: push.Dur(), Chunks: len(p.Chunks)}, nil
	}

	var (
		mu       sync.Mutex
		next     int
		failed   bool
		firstErr error
		pushed   int64
	)
	lanes := sim.NewGroup(env)
	lanes.Add(env, len(e.cfg.Lanes))
	for _, qp := range e.cfg.Lanes {
		qp := qp
		env.Go(fmt.Sprintf("datapath-lane-%d", qp.ID), func(env sim.Env) {
			defer lanes.Done(env)
			for {
				mu.Lock()
				if failed || next >= len(p.Chunks) {
					mu.Unlock()
					return
				}
				c := p.Chunks[next]
				next++
				sp := push.Child(c.spanName("push"), env.Now())
				mu.Unlock()

				env.Sleep(e.cfg.IssueCost)
				err := e.cfg.Strategy.Push(env, cx, c)
				now := env.Now()

				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("restoring %s: %w", c.Name, err)
					}
					failed = true
					mu.Unlock()
					return
				}
				pushed += c.Len
				sp.SetAttr("bytes", fmt.Sprint(c.Len))
				sp.SetAttr("lane", fmt.Sprint(qp.ID))
				sp.EndAt(now)
				mu.Unlock()
			}
		})
	}
	lanes.Wait(env)
	if firstErr != nil {
		return Result{}, firstErr
	}
	push.EndAt(env.Now())
	return Result{Bytes: pushed, Transfer: push.Dur(), Chunks: len(p.Chunks)}, nil
}
