package datapath_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/datapath"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
)

// healEngine builds an engine with an explicit retry policy on top of
// the shared rig.
func (r *rig) healEngine(env sim.Env, depth, lanes int, cfgMut func(*datapath.Config)) *datapath.Engine {
	cfg := datapath.Config{
		Depth:     depth,
		Lanes:     rdma.ConnectLanes(env, r.storage, lanes),
		IssueCost: perfmodel.RDMAReadIssueCost,
		Flush: func(off, n int64) error {
			r.flushCalls++
			r.flushedBytes += n
			return nil
		},
		FlushCost: func(n int64) time.Duration {
			return time.Duration(float64(n) / float64(perfmodel.MiB) * float64(perfmodel.FlushPerMiB))
		},
		Retry: datapath.RetryPolicy{MaxAttempts: 5, Backoff: 10 * time.Microsecond},
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	return datapath.New(cfg)
}

// TestPullRetriesTransientVerbErrors: a fabric that fails the first two
// reads heals under the retry policy in both the sequential and the
// pipelined path — the run succeeds, the content is intact, and exactly
// the two re-attempts are reported.
func TestPullRetriesTransientVerbErrors(t *testing.T) {
	for _, cfg := range []struct{ depth, lanes int }{{1, 1}, {4, 2}} {
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{2 << 20, 2 << 20})
			r.gpu.WriteStamp(0, 2<<20, 7)
			r.gpu.WriteStamp(2<<20, 2<<20, 8)
			inj := faults.NewInjector(faults.Config{Read: faults.Rule{From: 1, To: 2}})
			r.cx.Fabric = inj.Fabric(r.cx.Fabric)
			e := r.healEngine(env, cfg.depth, cfg.lanes, nil)
			p := datapath.NewPlan(r.tensors, 1<<20)
			res, err := e.Pull(env, r.cx, p, nil)
			if err != nil {
				t.Fatalf("depth=%d lanes=%d: %v", cfg.depth, cfg.lanes, err)
			}
			if res.Retries != 2 {
				t.Fatalf("depth=%d lanes=%d: retries = %d, want 2", cfg.depth, cfg.lanes, res.Retries)
			}
			if got := r.pm.StampOf(0, 2<<20); got != 7 {
				t.Fatalf("tensor 0 stamp = %d after healed pull", got)
			}
			if r.flushedBytes != p.Bytes {
				t.Fatalf("flushed %d bytes, want %d", r.flushedBytes, p.Bytes)
			}
		})
		eng.Run()
	}
}

// TestPullWithoutRetryPolicyFailsFast: the zero RetryPolicy keeps the
// pre-healing contract — the first transient error fails the run.
func TestPullWithoutRetryPolicyFailsFast(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		r := newRig(env, false, []int64{1 << 20})
		r.gpu.WriteStamp(0, 1<<20, 1)
		inj := faults.NewInjector(faults.Config{Read: faults.Rule{From: 1, To: 1}})
		r.cx.Fabric = inj.Fabric(r.cx.Fabric)
		e := r.engine(env, 1, 1) // the plain rig engine has no retry policy
		_, err := e.Pull(env, r.cx, datapath.NewPlan(r.tensors, 0), nil)
		if err == nil || !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("err = %v, want the injected failure surfaced", err)
		}
	})
	eng.Run()
}

// TestLaneQuarantineReStripes: one lane of two rides a fabric that
// always fails; after LaneFailLimit consecutive failures the lane is
// quarantined and its chunks re-stripe over the healthy lane, so the
// pull completes.
func TestLaneQuarantineReStripes(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		r := newRig(env, false, []int64{4 << 20})
		r.gpu.WriteStamp(0, 4<<20, 9)
		bad := faults.NewInjector(faults.Config{Read: faults.Rule{Rate: 1}})
		e := r.healEngine(env, 2, 2, func(cfg *datapath.Config) {
			cfg.Lanes[1].Fabric = bad.Fabric(r.cx.Fabric)
			cfg.Retry.MaxAttempts = 10
			cfg.Retry.LaneFailLimit = 2
		})
		p := datapath.NewPlan(r.tensors, 1<<20)
		res, err := e.Pull(env, r.cx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Quarantined != 1 {
			t.Fatalf("quarantined = %d, want 1", res.Quarantined)
		}
		if got := r.pm.StampOf(0, 4<<20); got != 9 {
			t.Fatalf("stamp = %d after re-striped pull", got)
		}
		if r.flushedBytes != p.Bytes {
			t.Fatalf("flushed %d bytes, want %d", r.flushedBytes, p.Bytes)
		}
	})
	eng.Run()
}

// TestRouteErrorDegradesStrategy: a route-class error (peer agent
// unreachable) does not burn a retry attempt — the engine falls through
// the strategy chain immediately and the run reports the degradation.
func TestRouteErrorDegradesStrategy(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		r := newRig(env, false, []int64{1 << 20})
		r.gpu.WriteStamp(0, 1<<20, 4)
		inj := faults.NewInjector(faults.Config{Route: faults.Rule{From: 1, To: 1}})
		r.cx.Fabric = inj.Fabric(r.cx.Fabric)
		e := r.healEngine(env, 1, 1, func(cfg *datapath.Config) {
			cfg.Strategy = datapath.OneSided{}
			cfg.Fallbacks = []datapath.Strategy{datapath.TwoSided{}}
			cfg.Retry.MaxAttempts = 1 // degradation alone must save the run
		})
		res, err := e.Pull(env, r.cx, datapath.NewPlan(r.tensors, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degradations != 1 || res.Retries != 0 {
			t.Fatalf("degradations = %d retries = %d, want 1 and 0", res.Degradations, res.Retries)
		}
		if got := r.pm.StampOf(0, 1<<20); got != 4 {
			t.Fatalf("stamp = %d after degraded pull", got)
		}
	})
	eng.Run()
}

// TestFlushRetriesAndExhausts: a torn flush is re-attempted under the
// retry budget; when the budget runs out, Pull fails rather than commit
// an unpersisted chunk — in the sequential and pipelined paths alike.
func TestFlushRetriesAndExhausts(t *testing.T) {
	for _, cfg := range []struct{ depth, lanes int }{{1, 1}, {2, 2}} {
		// Heals: the first flush call fails, the retry succeeds.
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{1 << 20})
			r.gpu.WriteStamp(0, 1<<20, 2)
			calls := 0
			e := r.healEngine(env, cfg.depth, cfg.lanes, func(c *datapath.Config) {
				c.Flush = func(off, n int64) error {
					calls++
					if calls == 1 {
						return errors.New("torn flush")
					}
					return nil
				}
			})
			res, err := e.Pull(env, r.cx, datapath.NewPlan(r.tensors, 0), nil)
			if err != nil {
				t.Fatalf("depth=%d: %v", cfg.depth, err)
			}
			if res.Retries < 1 {
				t.Fatalf("depth=%d: retries = %d, want >= 1", cfg.depth, res.Retries)
			}
		})
		eng.Run()

		// Exhausts: a flush that never succeeds fails the run.
		eng = sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{1 << 20})
			r.gpu.WriteStamp(0, 1<<20, 2)
			e := r.healEngine(env, cfg.depth, cfg.lanes, func(c *datapath.Config) {
				c.Flush = func(off, n int64) error { return errors.New("dead media") }
				c.Retry.MaxAttempts = 3
			})
			_, err := e.Pull(env, r.cx, datapath.NewPlan(r.tensors, 0), nil)
			if err == nil || !strings.Contains(err.Error(), "flushing") {
				t.Fatalf("depth=%d: err = %v, want flushing failure", cfg.depth, err)
			}
		})
		eng.Run()
	}
}

// TestPushRetriesTransientVerbErrors: the restore direction heals the
// same way, single-lane and striped.
func TestPushRetriesTransientVerbErrors(t *testing.T) {
	for _, lanes := range []int{1, 2} {
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{2 << 20})
			r.pm.WriteStamp(0, 2<<20, 5)
			inj := faults.NewInjector(faults.Config{Write: faults.Rule{From: 1, To: 1}})
			r.cx.Fabric = inj.Fabric(r.cx.Fabric)
			e := r.healEngine(env, 1, lanes, nil)
			res, err := e.Push(env, r.cx, datapath.NewPlan(r.tensors, 1<<20), nil)
			if err != nil {
				t.Fatalf("lanes=%d: %v", lanes, err)
			}
			if res.Retries != 1 {
				t.Fatalf("lanes=%d: retries = %d, want 1", lanes, res.Retries)
			}
			if got := r.gpu.StampOf(0, 2<<20); got != 5 {
				t.Fatalf("lanes=%d: stamp = %d after healed push", lanes, got)
			}
		})
		eng.Run()
	}
}
