package datapath_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/portus-sys/portus/internal/datapath"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// Property (satellite of the datapath refactor): for any tensor layout
// and any chunk size, the plan's chunks exactly cover every tensor
// extent — contiguous from offset zero, no overlap, no gap — respect
// the chunk-size bound, and address PMem consistently with the tensor
// base.
func TestPlanExactCoverProperty(t *testing.T) {
	prop := func(sizes []uint32, chunkKiB uint16) bool {
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		tensors := make([]datapath.TensorRange, len(sizes))
		var off int64
		for i, s := range sizes {
			sz := int64(s % (8 << 20)) // cap at 8 MiB per tensor
			tensors[i] = datapath.TensorRange{Name: fmt.Sprintf("t%d", i), PMemOff: off, Size: sz}
			off += sz
		}
		chunk := int64(chunkKiB) * 1024
		p := datapath.NewPlan(tensors, chunk)
		bound := chunk
		if bound > 0 && bound < perfmodel.MinChunk {
			bound = perfmodel.MinChunk
		}
		next := make([]int64, len(tensors))
		var total int64
		for _, c := range p.Chunks {
			if c.Tensor < 0 || c.Tensor >= len(tensors) {
				return false
			}
			tr := tensors[c.Tensor]
			if c.TensorOff != next[c.Tensor] { // contiguous: no overlap, no gap
				return false
			}
			if c.PMemOff != tr.PMemOff+c.TensorOff {
				return false
			}
			if c.Len < 0 || (bound > 0 && c.Len > bound) {
				return false
			}
			next[c.Tensor] += c.Len
			total += c.Len
		}
		for i, tr := range tensors {
			if next[i] != tr.Size { // exact cover
				return false
			}
		}
		return total == p.Bytes
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// rig is a minimal two-node fabric: tensors on a client GPU device,
// a PMem-like data zone on the storage node.
type rig struct {
	gpu, pm *memdev.Device
	storage *rdma.Node
	cx      *datapath.Context
	tensors []datapath.TensorRange

	flushedBytes int64
	flushCalls   int
}

// newRig lays out the given tensor sizes back to back on both devices
// and registers one remote MR per tensor, as the daemon does.
func newRig(env sim.Env, materialized bool, sizes []int64) *rig {
	var total int64
	for _, s := range sizes {
		total += s
	}
	fabric := rdma.NewSimFabric()
	client := rdma.NewNode(env, "client")
	storage := rdma.NewNode(env, "storage")
	fabric.AddNode(client)
	fabric.AddNode(storage)
	r := &rig{
		gpu:     memdev.New("gpu0", memdev.GPU, total, materialized),
		pm:      memdev.New("pmem0", memdev.PMEM, total, materialized),
		storage: storage,
	}
	var remote []rdma.RemoteMR
	var off int64
	for i, s := range sizes {
		mr := client.RegisterMR(env, r.gpu, off, s)
		remote = append(remote, rdma.RemoteMR{Node: "client", RKey: mr.RKey, Len: s})
		r.tensors = append(r.tensors, datapath.TensorRange{Name: fmt.Sprintf("t%d", i), PMemOff: off, Size: s})
		off += s
	}
	r.cx = &datapath.Context{
		Fabric:  fabric,
		Local:   storage,
		LocalMR: storage.RegisterMR(env, r.pm, 0, total),
		Remote:  remote,
	}
	return r
}

func (r *rig) engine(env sim.Env, depth, lanes int) *datapath.Engine {
	return datapath.New(datapath.Config{
		Depth:     depth,
		Lanes:     rdma.ConnectLanes(env, r.storage, lanes),
		IssueCost: perfmodel.RDMAReadIssueCost,
		Flush: func(off, n int64) error {
			r.flushCalls++
			r.flushedBytes += n
			return nil
		},
		FlushCost: func(n int64) time.Duration {
			return time.Duration(float64(n) / float64(perfmodel.MiB) * float64(perfmodel.FlushPerMiB))
		},
	})
}

// pullElapsed runs one Pull on a fresh rig and reports its virtual
// duration.
func pullElapsed(t *testing.T, depth, lanes int, chunk int64) time.Duration {
	t.Helper()
	var elapsed time.Duration
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		r := newRig(env, false, []int64{64 << 20})
		r.gpu.WriteStamp(0, 64<<20, 0xabc)
		e := r.engine(env, depth, lanes)
		p := datapath.NewPlan(r.tensors, chunk)
		t0 := env.Now()
		if _, err := e.Pull(env, r.cx, p, nil); err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - t0
		if r.flushedBytes != 64<<20 {
			t.Errorf("flushed %d bytes, want %d", r.flushedBytes, 64<<20)
		}
	})
	eng.Run()
	return elapsed
}

// TestPipelineDepthOverlapsFlush is the headline behavior: with chunked
// transfers, depth >= 2 hides the PMem flush behind the next chunk's
// pull and must be strictly faster than the sequential depth-1
// schedule in virtual time.
func TestPipelineDepthOverlapsFlush(t *testing.T) {
	chunk := int64(4 << 20)
	d1 := pullElapsed(t, 1, 1, chunk)
	d2 := pullElapsed(t, 2, 1, chunk)
	d4 := pullElapsed(t, 4, 1, chunk)
	if d2 >= d1 {
		t.Fatalf("depth 2 (%v) not faster than depth 1 (%v)", d2, d1)
	}
	if d4 > d2 {
		t.Fatalf("depth 4 (%v) slower than depth 2 (%v)", d4, d2)
	}
}

// TestChunkedPullPreservesStamps: content fingerprints survive the
// chunked, pipelined, multi-lane virtual-buffer path — every tensor
// extent on PMem reads back the stamp written on the GPU.
func TestChunkedPullPreservesStamps(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		sizes := []int64{8 << 20, 1 << 20, 5<<20 + 12345}
		r := newRig(env, false, sizes)
		for i, tr := range r.tensors {
			r.gpu.WriteStamp(tr.PMemOff, tr.Size, uint64(1000+i))
		}
		e := r.engine(env, 4, 2)
		p := datapath.NewPlan(r.tensors, 1<<20)
		res, err := e.Pull(env, r.cx, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chunks != len(p.Chunks) || res.Bytes != p.Bytes {
			t.Fatalf("result = %+v, plan has %d chunks / %d bytes", res, len(p.Chunks), p.Bytes)
		}
		for i, tr := range r.tensors {
			if got := r.pm.StampOf(tr.PMemOff, tr.Size); got != uint64(1000+i) {
				t.Fatalf("tensor %d stamp = %d, want %d", i, got, 1000+i)
			}
		}
		if r.flushedBytes != p.Bytes || r.flushCalls != len(p.Chunks) {
			t.Fatalf("flush coverage: %d bytes in %d calls, want %d in %d",
				r.flushedBytes, r.flushCalls, p.Bytes, len(p.Chunks))
		}
	})
	eng.Run()
}

// TestChunkedRoundTripMaterialized: real bytes survive the chunked path
// in both directions — pull into PMem, wipe the GPU, push back.
func TestChunkedRoundTripMaterialized(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		sizes := []int64{1 << 20, 300<<10 + 7}
		r := newRig(env, true, sizes)
		var want []byte
		var total int64
		for _, s := range sizes {
			total += s
		}
		for i := int64(0); i < total; i++ {
			want = append(want, byte(i*31+7))
		}
		r.gpu.Write(0, want)

		e := r.engine(env, 2, 2)
		p := datapath.NewPlan(r.tensors, perfmodel.MinChunk)
		if _, err := e.Pull(env, r.cx, p, nil); err != nil {
			t.Fatal(err)
		}
		if got := r.pm.Bytes(0, total); !bytes.Equal(got, want) {
			t.Fatal("PMem content differs from GPU content after chunked pull")
		}
		r.gpu.Write(0, make([]byte, total)) // wipe
		if _, err := e.Push(env, r.cx, p, nil); err != nil {
			t.Fatal(err)
		}
		if got := r.gpu.Bytes(0, total); !bytes.Equal(got, want) {
			t.Fatal("GPU content differs after chunked push restore")
		}
	})
	eng.Run()
}

// TestEngineSpanStagesContiguous: in every mode the engine's pull and
// flush spans tile the engine's occupancy — pull start to flush end
// with no gap — so the daemon's span-sum invariant holds for pipelined
// configurations too.
func TestEngineSpanStagesContiguous(t *testing.T) {
	for _, cfg := range []struct{ depth, lanes int }{{1, 1}, {4, 1}, {2, 2}} {
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{16 << 20, 16 << 20})
			r.gpu.WriteStamp(0, 16<<20, 1)
			r.gpu.WriteStamp(16<<20, 16<<20, 2)
			e := r.engine(env, cfg.depth, cfg.lanes)
			p := datapath.NewPlan(r.tensors, 4<<20)
			root := &telemetry.Span{Name: "op"}
			t0 := env.Now()
			res, err := e.Pull(env, r.cx, p, root)
			if err != nil {
				t.Fatal(err)
			}
			end := env.Now()
			pull := root.Find("pull")
			flush := root.Find("flush")
			if pull == nil || flush == nil {
				t.Fatalf("depth=%d lanes=%d: missing stage spans", cfg.depth, cfg.lanes)
			}
			if pull.Start != t0 || pull.End != flush.Start || flush.End != end {
				t.Fatalf("depth=%d lanes=%d: stages not contiguous: pull [%v,%v), flush [%v,%v), engine [%v,%v)",
					cfg.depth, cfg.lanes, pull.Start, pull.End, flush.Start, flush.End, t0, end)
			}
			if res.Transfer != pull.Dur() || res.Flush != flush.Dur() {
				t.Fatalf("result breakdown %v/%v != span durations %v/%v",
					res.Transfer, res.Flush, pull.Dur(), flush.Dur())
			}
			if len(pull.Children) != len(p.Chunks) {
				t.Fatalf("pull has %d chunk spans, want %d", len(pull.Children), len(p.Chunks))
			}
			for _, sp := range pull.Children {
				if !strings.HasPrefix(sp.Name, "pull:") || sp.Attrs["bytes"] == "" || sp.Attrs["lane"] == "" {
					t.Fatalf("chunk span malformed: %+v", sp)
				}
			}
		})
		eng.Run()
	}
}

// TestPullErrorNamesTensor: a failing chunk surfaces as a wrapped
// per-tensor error in both the sequential and pipelined paths, and the
// engine still terminates cleanly (no leaked lane deadlocks).
func TestPullErrorNamesTensor(t *testing.T) {
	for _, cfg := range []struct{ depth, lanes int }{{1, 1}, {4, 2}} {
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			r := newRig(env, false, []int64{1 << 20, 1 << 20})
			r.gpu.WriteStamp(0, 2<<20, 3)
			r.cx.Remote[1].RKey = 9999 // unknown key: second tensor fails
			e := r.engine(env, cfg.depth, cfg.lanes)
			p := datapath.NewPlan(r.tensors, 0)
			_, err := e.Pull(env, r.cx, p, nil)
			if err == nil || !strings.Contains(err.Error(), "pulling t1:") {
				t.Fatalf("depth=%d lanes=%d: err = %v, want wrapped t1 error", cfg.depth, cfg.lanes, err)
			}
		})
		eng.Run()
	}
}
