package rdma

import (
	"fmt"

	"github.com/portus-sys/portus/internal/sim"
)

// SimFabric is the in-process fabric for virtual-time experiments: data
// moves between devices immediately and time is charged on a chunked
// pipeline across the source device, source NIC, destination NIC, and
// destination device.
type SimFabric struct {
	nodes map[string]*Node
	boxes map[string]*sim.Mailbox[simMsg]
	cut   map[string]bool
}

type simMsg struct {
	payload []byte
	size    int64
}

// NewSimFabric creates an empty fabric.
func NewSimFabric() *SimFabric {
	return &SimFabric{
		nodes: make(map[string]*Node),
		boxes: make(map[string]*sim.Mailbox[simMsg]),
		cut:   make(map[string]bool),
	}
}

// AddNode attaches a node to the fabric switch.
func (f *SimFabric) AddNode(n *Node) { f.nodes[n.name] = n }

func (f *SimFabric) node(name string) (*Node, error) {
	n, ok := f.nodes[name]
	if !ok || f.cut[name] {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, name)
	}
	return n, nil
}

// CutNode severs every fabric route to and from name: subsequent verbs
// touching the node fail with ErrNoRoute, as if its RNIC lost link.
// The node stays attached so RestoreNode can bring it back.
func (f *SimFabric) CutNode(name string) { f.cut[name] = true }

// RestoreNode re-establishes routes to a previously cut node.
func (f *SimFabric) RestoreNode(name string) { delete(f.cut, name) }

// Read pulls r into l with a one-sided RDMA READ issued from local.
func (f *SimFabric) Read(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	if f.cut[local.name] {
		return fmt.Errorf("%w: %s", ErrNoRoute, local.name)
	}
	remote, err := f.node(r.MR.Node)
	if err != nil {
		return err
	}
	rmr, lmr, err := checkPair(remote, local, r, l)
	if err != nil {
		return err
	}
	if err := copyRegions(lmr.Dev, lmr.Off+l.Off, rmr.Dev, rmr.Off+r.Off, l.Len); err != nil {
		return err
	}
	srcRates := remote.rates.ForKind(rmr.Dev.Kind())
	dstRates := local.rates.ForKind(lmr.Dev.Kind())
	sim.PipelineTransfer(env, l.Len, pipeChunk(l.Len),
		sim.Stage{Res: remote.devRead[rmr.Dev], FlowCap: srcRates.ReadFlowCap, Latency: local.rates.ReadLatency},
		sim.Stage{Res: remote.nic},
		sim.Stage{Res: local.nic},
		sim.Stage{Res: local.devWrit[lmr.Dev], FlowCap: dstRates.WriteFlowCap},
	)
	return nil
}

// Write pushes l into r with a one-sided RDMA WRITE issued from local.
func (f *SimFabric) Write(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	if f.cut[local.name] {
		return fmt.Errorf("%w: %s", ErrNoRoute, local.name)
	}
	remote, err := f.node(r.MR.Node)
	if err != nil {
		return err
	}
	rmr, lmr, err := checkPair(remote, local, r, l)
	if err != nil {
		return err
	}
	if err := copyRegions(rmr.Dev, rmr.Off+r.Off, lmr.Dev, lmr.Off+l.Off, l.Len); err != nil {
		return err
	}
	srcRates := local.rates.ForKind(lmr.Dev.Kind())
	dstRates := remote.rates.ForKind(rmr.Dev.Kind())
	sim.PipelineTransfer(env, l.Len, pipeChunk(l.Len),
		sim.Stage{Res: local.devRead[lmr.Dev], FlowCap: srcRates.ReadFlowCap, Latency: local.rates.WriteLatency},
		sim.Stage{Res: local.nic},
		sim.Stage{Res: remote.nic},
		sim.Stage{Res: remote.devWrit[rmr.Dev], FlowCap: dstRates.WriteFlowCap},
	)
	return nil
}

// Send delivers payload to the peer's (node, qp) receive queue, charging
// size bytes at the two-sided protocol rate.
func (f *SimFabric) Send(env sim.Env, local *Node, remote, qp string, payload []byte, size int64) error {
	if f.cut[local.name] {
		return fmt.Errorf("%w: %s", ErrNoRoute, local.name)
	}
	rn, err := f.node(remote)
	if err != nil {
		return err
	}
	sim.PipelineTransfer(env, size, pipeChunk(size),
		sim.Stage{Res: local.nic, Latency: local.rates.SendLatency},
		sim.Stage{Res: rn.nic},
	)
	if size <= 0 {
		env.Sleep(local.rates.SendLatency)
	}
	f.box(env, remote, qp).Send(env, simMsg{payload: payload, size: size})
	return nil
}

// Recv blocks until a message arrives on (local, qp).
func (f *SimFabric) Recv(env sim.Env, local *Node, qp string) ([]byte, int64, error) {
	m, ok := f.box(env, local.name, qp).Recv(env)
	if !ok {
		return nil, 0, fmt.Errorf("rdma: recv on closed qp %s/%s", local.name, qp)
	}
	return m.payload, m.size, nil
}

func (f *SimFabric) box(env sim.Env, node, qp string) *sim.Mailbox[simMsg] {
	key := node + "/" + qp
	b, ok := f.boxes[key]
	if !ok {
		b = sim.NewMailbox[simMsg](env)
		f.boxes[key] = b
	}
	return b
}

// checkPair validates the remote and local slices and returns their MRs.
func checkPair(remote, local *Node, r RemoteSlice, l Slice) (MR, MR, error) {
	if l.Len != r.Len {
		return MR{}, MR{}, fmt.Errorf("rdma: length mismatch: local %d, remote %d", l.Len, r.Len)
	}
	rmr, err := remote.lookup(r.MR.RKey, r.Off, r.Len)
	if err != nil {
		return MR{}, MR{}, err
	}
	lmr, err := local.lookup(l.MR.RKey, l.Off, l.Len)
	if err != nil {
		return MR{}, MR{}, err
	}
	return rmr, lmr, nil
}
