// Package rdma provides the verbs-level substrate Portus is built on:
// memory regions with remote keys, queue pairs, one-sided READ/WRITE and
// two-sided SEND/RECV operations.
//
// Two fabrics implement the wire:
//
//   - SimFabric runs in-process under the discrete-event engine. Data
//     moves between memdev devices immediately (bytes or content
//     stamps), and virtual time is charged on a chunked pipeline across
//     the source device, both NICs, and the destination device — so NIC
//     contention, the GPU BAR read cap, and PMem bandwidth limits all
//     emerge naturally.
//
//   - TCPFabric runs over real sockets, one agent per node, in the
//     spirit of SoftRoCE: one-sided verbs are served entirely by the
//     remote agent, never by the remote application thread, preserving
//     the property Portus depends on (the training process does not
//     participate in checkpoint transfers).
//
// Verbs are blocking (post + poll-completion combined): Portus daemon
// workers issue them from their own processes.
package rdma

import (
	"errors"
	"fmt"
	"sync"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/sim"
)

// Errors reported by verbs.
var (
	ErrBadRKey      = errors.New("rdma: unknown remote key")
	ErrOutOfBounds  = errors.New("rdma: access outside memory region")
	ErrNoRoute      = errors.New("rdma: unknown peer node")
	ErrModeMismatch = errors.New("rdma: materialized/virtual mode mismatch between endpoints")
)

// MR is a registered memory region on the local node.
type MR struct {
	RKey uint64
	Dev  *memdev.Device
	Off  int64 // base offset within Dev
	Len  int64
}

// RemoteMR is a handle to a memory region on a peer, as learned from a
// registration packet.
type RemoteMR struct {
	Node string
	RKey uint64
	Len  int64
}

// Node is one RDMA-capable host: an RNIC plus its registered regions.
type Node struct {
	name  string
	rates RateTable

	mu   sync.Mutex
	mrs  map[uint64]MR
	next uint64

	// Simulated resources (nil under a real environment).
	nic     *sim.BandwidthResource
	devRead map[*memdev.Device]*sim.BandwidthResource
	devWrit map[*memdev.Device]*sim.BandwidthResource
}

// NewNode creates a node with the default rate table. Under a simulated
// environment its NIC and device resources are created on env's engine.
func NewNode(env sim.Env, name string) *Node {
	return NewNodeWithRates(env, name, DefaultRates())
}

// NewNodeWithRates creates a node with an explicit rate table (used by
// ablation benches, e.g. varying the BAR read cap).
func NewNodeWithRates(env sim.Env, name string, rates RateTable) *Node {
	n := &Node{
		name:    name,
		rates:   rates,
		mrs:     make(map[uint64]MR),
		devRead: make(map[*memdev.Device]*sim.BandwidthResource),
		devWrit: make(map[*memdev.Device]*sim.BandwidthResource),
	}
	n.nic = sim.NewBandwidthResource(env, name+"/nic", rates.NICBandwidth)
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// NIC exposes the node's simulated NIC resource (for utilization
// reporting in experiments).
func (n *Node) NIC() *sim.BandwidthResource { return n.nic }

// RegisterMR registers [off, off+len) of dev and returns the region with
// its remote key, as nv_peer_mem does for GPU memory.
func (n *Node) RegisterMR(env sim.Env, dev *memdev.Device, off, length int64) MR {
	if off < 0 || length < 0 || off+length > dev.Size() {
		panic(fmt.Sprintf("rdma: register [%d,%d) outside device %s", off, off+length, dev.Name()))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.next++
	mr := MR{RKey: n.next, Dev: dev, Off: off, Len: length}
	n.mrs[mr.RKey] = mr
	n.ensureDevResourcesLocked(env, dev)
	return mr
}

// DeregisterMR removes a region; subsequent remote access fails with
// ErrBadRKey.
func (n *Node) DeregisterMR(rkey uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.mrs, rkey)
}

// MRCount reports the number of live registrations.
func (n *Node) MRCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mrs)
}

func (n *Node) lookup(rkey uint64, off, length int64) (MR, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	mr, ok := n.mrs[rkey]
	if !ok {
		return MR{}, fmt.Errorf("%w: rkey %d on %s", ErrBadRKey, rkey, n.name)
	}
	if off < 0 || length < 0 || off+length > mr.Len {
		return MR{}, fmt.Errorf("%w: [%d,%d) of MR len %d", ErrOutOfBounds, off, off+length, mr.Len)
	}
	return mr, nil
}

func (n *Node) ensureDevResourcesLocked(env sim.Env, dev *memdev.Device) {
	if _, ok := n.devRead[dev]; ok {
		return
	}
	dr := n.rates.ForKind(dev.Kind())
	n.devRead[dev] = sim.NewBandwidthResource(env, dev.Name()+"/rd", dr.ReadBW)
	n.devWrit[dev] = sim.NewBandwidthResource(env, dev.Name()+"/wr", dr.WriteBW)
}

// Slice names a byte range inside a local MR.
type Slice struct {
	MR  MR
	Off int64 // offset within the MR
	Len int64
}

// RemoteSlice names a byte range inside a peer's MR.
type RemoteSlice struct {
	MR  RemoteMR
	Off int64
	Len int64
}

// Fabric carries verbs between nodes.
type Fabric interface {
	// Read pulls remote bytes into the local slice (one-sided).
	Read(env sim.Env, local *Node, l Slice, r RemoteSlice) error
	// Write pushes local bytes into the remote slice (one-sided).
	Write(env sim.Env, local *Node, l Slice, r RemoteSlice) error
	// Send delivers a message to the peer's queue pair (two-sided); the
	// payload size is charged at the two-sided protocol's rate.
	Send(env sim.Env, local *Node, remote, qp string, payload []byte, size int64) error
	// Recv blocks until a message for (node, qp) arrives.
	Recv(env sim.Env, local *Node, qp string) ([]byte, int64, error)
}
