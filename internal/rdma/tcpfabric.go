package rdma

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/sim"
)

// copyRegions moves n bytes (or the content stamp) between devices,
// converting the mixed-mode panic into an error at the verbs boundary.
func copyRegions(dst *memdev.Device, dstOff int64, src *memdev.Device, srcOff, n int64) error {
	if dst.Materialized() != src.Materialized() {
		return fmt.Errorf("%w: %s -> %s", ErrModeMismatch, src.Name(), dst.Name())
	}
	memdev.Copy(dst, dstOff, src, srcOff, n)
	return nil
}

// TCPFabric carries verbs over real sockets. Each served node runs an
// agent goroutine that owns its MR table; one-sided READ/WRITE are
// handled entirely by the agent, so the remote application never
// participates — the soft equivalent of RDMA's bypass property.
type TCPFabric struct {
	env sim.Env

	mu     sync.Mutex
	peers  map[string]string // node name -> agent address
	conns  map[string]*agentConn
	recvs  map[string]*sim.Mailbox[simMsg]
	closed []io.Closer
}

// agentConn is a cached connection to a peer agent; requests on it are
// serialized.
type agentConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPFabric creates a fabric using env (normally a RealEnv) for its
// receive queues.
func NewTCPFabric(env sim.Env) *TCPFabric {
	return &TCPFabric{
		env:   env,
		peers: make(map[string]string),
		conns: make(map[string]*agentConn),
		recvs: make(map[string]*sim.Mailbox[simMsg]),
	}
}

// Serve starts the agent for node on addr (empty means an ephemeral
// loopback port) and returns the bound address. Peers reach the node's
// MRs through this agent.
func (f *TCPFabric) Serve(n *Node, addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rdma: agent listen: %w", err)
	}
	f.mu.Lock()
	f.peers[n.name] = ln.Addr().String()
	f.closed = append(f.closed, ln)
	f.mu.Unlock()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go f.serveConn(n, c)
		}
	}()
	return ln.Addr().String(), nil
}

// AddPeer registers the address of a remote node's agent (out-of-band
// address exchange, as InfiniBand does with its subnet manager).
func (f *TCPFabric) AddPeer(name, addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.peers[name] = addr
}

// PeerAddr looks up the agent address registered for a node (including
// nodes served by this fabric).
func (f *TCPFabric) PeerAddr(name string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	addr, ok := f.peers[name]
	return addr, ok
}

// Close shuts down all agents served by this fabric.
func (f *TCPFabric) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.closed {
		c.Close()
	}
	for _, ac := range f.conns {
		ac.c.Close()
	}
}

// Wire opcodes.
const (
	opRead  = 1
	opWrite = 2
	opSend  = 3
)

// Payload modes.
const (
	payloadBytes = 0
	payloadStamp = 1
)

func (f *TCPFabric) dial(remote string) (*agentConn, error) {
	f.mu.Lock()
	if ac, ok := f.conns[remote]; ok {
		f.mu.Unlock()
		return ac, nil
	}
	addr, ok := f.peers[remote]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, remote)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rdma: dial agent %s: %w", remote, err)
	}
	ac := &agentConn{c: c}
	f.mu.Lock()
	if prev, ok := f.conns[remote]; ok {
		f.mu.Unlock()
		c.Close()
		return prev, nil
	}
	f.conns[remote] = ac
	f.mu.Unlock()
	return ac, nil
}

// Read pulls r into l by asking the remote agent for the region content.
func (f *TCPFabric) Read(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	if l.Len != r.Len {
		return fmt.Errorf("rdma: length mismatch: local %d, remote %d", l.Len, r.Len)
	}
	lmr, err := local.lookup(l.MR.RKey, l.Off, l.Len)
	if err != nil {
		return err
	}
	ac, err := f.dial(r.MR.Node)
	if err != nil {
		return err
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	req := make([]byte, 0, 32)
	req = append(req, opRead)
	req = binary.LittleEndian.AppendUint64(req, r.MR.RKey)
	req = binary.LittleEndian.AppendUint64(req, uint64(r.Off))
	req = binary.LittleEndian.AppendUint64(req, uint64(r.Len))
	if err := writeFrame(ac.c, req); err != nil {
		return err
	}
	resp, err := readFrame(ac.c)
	if err != nil {
		return err
	}
	if resp[0] != 0 {
		return fmt.Errorf("rdma: remote read: %s", resp[1:])
	}
	return applyPayload(lmr.Dev, lmr.Off+l.Off, l.Len, resp[1:])
}

// Write pushes l into r by shipping the region content to the remote
// agent.
func (f *TCPFabric) Write(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	if l.Len != r.Len {
		return fmt.Errorf("rdma: length mismatch: local %d, remote %d", l.Len, r.Len)
	}
	lmr, err := local.lookup(l.MR.RKey, l.Off, l.Len)
	if err != nil {
		return err
	}
	ac, err := f.dial(r.MR.Node)
	if err != nil {
		return err
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	req := make([]byte, 0, 64)
	req = append(req, opWrite)
	req = binary.LittleEndian.AppendUint64(req, r.MR.RKey)
	req = binary.LittleEndian.AppendUint64(req, uint64(r.Off))
	req = binary.LittleEndian.AppendUint64(req, uint64(r.Len))
	req = appendPayload(req, lmr.Dev, lmr.Off+l.Off, l.Len)
	if err := writeFrame(ac.c, req); err != nil {
		return err
	}
	resp, err := readFrame(ac.c)
	if err != nil {
		return err
	}
	if resp[0] != 0 {
		return fmt.Errorf("rdma: remote write: %s", resp[1:])
	}
	return nil
}

// Send delivers payload to the remote node's (qp) receive queue.
func (f *TCPFabric) Send(env sim.Env, local *Node, remote, qp string, payload []byte, size int64) error {
	ac, err := f.dial(remote)
	if err != nil {
		return err
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	req := make([]byte, 0, 64+len(payload))
	req = append(req, opSend)
	req = binary.LittleEndian.AppendUint16(req, uint16(len(qp)))
	req = append(req, qp...)
	req = binary.LittleEndian.AppendUint64(req, uint64(size))
	req = append(req, payload...)
	if err := writeFrame(ac.c, req); err != nil {
		return err
	}
	resp, err := readFrame(ac.c)
	if err != nil {
		return err
	}
	if resp[0] != 0 {
		return fmt.Errorf("rdma: remote send: %s", resp[1:])
	}
	return nil
}

// Recv blocks until a message for (local, qp) arrives.
func (f *TCPFabric) Recv(env sim.Env, local *Node, qp string) ([]byte, int64, error) {
	m, ok := f.box(local.name, qp).Recv(env)
	if !ok {
		return nil, 0, fmt.Errorf("rdma: recv on closed qp %s/%s", local.name, qp)
	}
	return m.payload, m.size, nil
}

func (f *TCPFabric) box(node, qp string) *sim.Mailbox[simMsg] {
	key := node + "/" + qp
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.recvs[key]
	if !ok {
		b = sim.NewMailbox[simMsg](f.env)
		f.recvs[key] = b
	}
	return b
}

// serveConn handles one peer connection against node's MR table.
func (f *TCPFabric) serveConn(n *Node, c net.Conn) {
	defer c.Close()
	for {
		req, err := readFrame(c)
		if err != nil {
			return
		}
		resp := f.handle(n, req)
		if err := writeFrame(c, resp); err != nil {
			return
		}
	}
}

func (f *TCPFabric) handle(n *Node, req []byte) []byte {
	fail := func(err error) []byte { return append([]byte{1}, err.Error()...) }
	if len(req) < 1 {
		return fail(fmt.Errorf("empty request"))
	}
	switch req[0] {
	case opRead:
		if len(req) < 25 {
			return fail(fmt.Errorf("short read request"))
		}
		rkey := binary.LittleEndian.Uint64(req[1:])
		off := int64(binary.LittleEndian.Uint64(req[9:]))
		length := int64(binary.LittleEndian.Uint64(req[17:]))
		mr, err := n.lookup(rkey, off, length)
		if err != nil {
			return fail(err)
		}
		return appendPayload([]byte{0}, mr.Dev, mr.Off+off, length)
	case opWrite:
		if len(req) < 26 {
			return fail(fmt.Errorf("short write request"))
		}
		rkey := binary.LittleEndian.Uint64(req[1:])
		off := int64(binary.LittleEndian.Uint64(req[9:]))
		length := int64(binary.LittleEndian.Uint64(req[17:]))
		mr, err := n.lookup(rkey, off, length)
		if err != nil {
			return fail(err)
		}
		if err := applyPayload(mr.Dev, mr.Off+off, length, req[25:]); err != nil {
			return fail(err)
		}
		return []byte{0}
	case opSend:
		if len(req) < 3 {
			return fail(fmt.Errorf("short send request"))
		}
		qpLen := int(binary.LittleEndian.Uint16(req[1:]))
		if len(req) < 3+qpLen+8 {
			return fail(fmt.Errorf("short send request"))
		}
		qp := string(req[3 : 3+qpLen])
		size := int64(binary.LittleEndian.Uint64(req[3+qpLen:]))
		payload := append([]byte(nil), req[3+qpLen+8:]...)
		f.box(n.name, qp).Send(f.env, simMsg{payload: payload, size: size})
		return []byte{0}
	default:
		return fail(fmt.Errorf("unknown op %d", req[0]))
	}
}

// appendPayload encodes the content of a device region: raw bytes for
// materialized devices, an 8-byte stamp for virtual ones.
func appendPayload(dst []byte, dev *memdev.Device, off, n int64) []byte {
	if dev.Materialized() {
		dst = append(dst, payloadBytes)
		return append(dst, dev.Bytes(off, n)...)
	}
	dst = append(dst, payloadStamp)
	return binary.LittleEndian.AppendUint64(dst, dev.StampOf(off, n))
}

// applyPayload decodes a payload into a device region.
func applyPayload(dev *memdev.Device, off, n int64, payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("rdma: empty payload")
	}
	switch payload[0] {
	case payloadBytes:
		if !dev.Materialized() {
			return fmt.Errorf("%w: raw bytes for virtual device %s", ErrModeMismatch, dev.Name())
		}
		if int64(len(payload)-1) != n {
			return fmt.Errorf("rdma: payload length %d, want %d", len(payload)-1, n)
		}
		dev.Write(off, payload[1:])
	case payloadStamp:
		if dev.Materialized() {
			return fmt.Errorf("%w: stamp for materialized device %s", ErrModeMismatch, dev.Name())
		}
		if len(payload) != 9 {
			return fmt.Errorf("rdma: bad stamp payload length %d", len(payload))
		}
		dev.WriteStamp(off, n, binary.LittleEndian.Uint64(payload[1:]))
	default:
		return fmt.Errorf("rdma: unknown payload mode %d", payload[0])
	}
	return nil
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, p []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rdma: write frame header: %w", err)
	}
	if _, err := w.Write(p); err != nil {
		return fmt.Errorf("rdma: write frame body: %w", err)
	}
	return nil
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > 1<<30 {
		return nil, fmt.Errorf("rdma: oversized frame (%d bytes)", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, fmt.Errorf("rdma: read frame body: %w", err)
	}
	return p, nil
}
