package rdma

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/sim"
)

// newTCPPair serves two nodes over loopback agents and wires their peer
// tables together.
func newTCPPair(t *testing.T) (env sim.Env, f *TCPFabric, client, server *Node) {
	t.Helper()
	renv := sim.NewRealEnv()
	f = NewTCPFabric(renv)
	client = NewNode(renv, "client")
	server = NewNode(renv, "server")
	for _, n := range []*Node{client, server} {
		if _, err := f.Serve(n, ""); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(f.Close)
	return renv, f, client, server
}

func TestTCPReadMaterialized(t *testing.T) {
	env, f, client, server := newTCPPair(t)
	cgpu := memdev.New("gpu0", memdev.GPU, 1<<20, true)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<20, true)
	cgpu.Write(100, []byte("weights"))
	rmr := client.RegisterMR(env, cgpu, 100, 7)
	lmr := server.RegisterMR(env, spm, 0, 7)

	err := f.Read(env, server,
		Slice{MR: lmr, Len: 7},
		RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 7}, Len: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := spm.Bytes(0, 7); !bytes.Equal(got, []byte("weights")) {
		t.Fatalf("pulled %q over TCP", got)
	}
}

func TestTCPWriteMaterialized(t *testing.T) {
	env, f, client, server := newTCPPair(t)
	cgpu := memdev.New("gpu0", memdev.GPU, 1<<20, true)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<20, true)
	spm.Write(0, []byte("checkpoint"))
	lmr := server.RegisterMR(env, spm, 0, 10)
	rmr := client.RegisterMR(env, cgpu, 0, 10)

	err := f.Write(env, server,
		Slice{MR: lmr, Len: 10},
		RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 10}, Len: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := cgpu.Bytes(0, 10); !bytes.Equal(got, []byte("checkpoint")) {
		t.Fatalf("restored %q over TCP", got)
	}
}

func TestTCPVirtualStamps(t *testing.T) {
	env, f, client, server := newTCPPair(t)
	cgpu := memdev.New("gpu0", memdev.GPU, 1<<40, false)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<40, false)
	cgpu.WriteStamp(0, 1<<30, 77)
	rmr := client.RegisterMR(env, cgpu, 0, 1<<30)
	lmr := server.RegisterMR(env, spm, 0, 1<<30)

	err := f.Read(env, server,
		Slice{MR: lmr, Len: 1 << 30},
		RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 1 << 30}, Len: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := spm.StampOf(0, 1<<30); got != 77 {
		t.Fatalf("virtual stamp over TCP = %d, want 77", got)
	}
}

func TestTCPBadRKeyReportsRemoteError(t *testing.T) {
	env, f, _, server := newTCPPair(t)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<20, true)
	lmr := server.RegisterMR(env, spm, 0, 8)
	err := f.Read(env, server,
		Slice{MR: lmr, Len: 8},
		RemoteSlice{MR: RemoteMR{Node: "client", RKey: 42, Len: 8}, Len: 8})
	if err == nil || !strings.Contains(err.Error(), "unknown remote key") {
		t.Fatalf("err = %v, want remote rkey error", err)
	}
}

func TestTCPSendRecv(t *testing.T) {
	env, f, client, server := newTCPPair(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload, size, err := f.Recv(env, server, "ctrl")
		if err != nil {
			t.Error(err)
			return
		}
		if string(payload) != "REGISTER" || size != 8 {
			t.Errorf("recv = %q (%d)", payload, size)
		}
	}()
	if err := f.Send(env, client, "server", "ctrl", []byte("REGISTER"), 8); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestTCPConcurrentOneSidedOps(t *testing.T) {
	env, f, client, server := newTCPPair(t)
	cgpu := memdev.New("gpu0", memdev.GPU, 1<<20, true)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<20, true)
	const n = 16
	rmrs := make([]MR, n)
	lmrs := make([]MR, n)
	for i := 0; i < n; i++ {
		cgpu.Write(int64(i)*64, []byte{byte(i + 1)})
		rmrs[i] = client.RegisterMR(env, cgpu, int64(i)*64, 1)
		lmrs[i] = server.RegisterMR(env, spm, int64(i)*64, 1)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := f.Read(env, server,
				Slice{MR: lmrs[i], Len: 1},
				RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmrs[i].RKey, Len: 1}, Len: 1})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got := spm.Bytes(int64(i)*64, 1)[0]; got != byte(i+1) {
			t.Fatalf("slot %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	env, f, _, server := newTCPPair(t)
	spm := memdev.New("pmem0", memdev.PMEM, 1<<20, true)
	lmr := server.RegisterMR(env, spm, 0, 8)
	err := f.Read(env, server,
		Slice{MR: lmr, Len: 8},
		RemoteSlice{MR: RemoteMR{Node: "nowhere", RKey: 1, Len: 8}, Len: 8})
	if err == nil {
		t.Fatal("read to unknown peer succeeded")
	}
}
