package rdma

import (
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// InstrumentedFabric wraps a Fabric with per-operation telemetry:
// bytes moved and op latency, labeled by fabric name and verb. Latency
// is measured on the caller's env clock, so simulated fabrics report
// virtual time and the TCP fabric reports wall-clock time.
type InstrumentedFabric struct {
	inner Fabric

	readOps, writeOps, sendOps       *telemetry.Counter
	readBytes, writeBytes, sendBytes *telemetry.Counter
	errs                             *telemetry.Counter
	readLat, writeLat                *telemetry.Histogram
}

// Instrument wraps f so every verb is counted and timed into reg. The
// name label distinguishes fabrics when several share a registry.
func Instrument(name string, f Fabric, reg *telemetry.Registry) *InstrumentedFabric {
	fl := telemetry.L("fabric", name)
	op := func(verb string) []telemetry.Label {
		return []telemetry.Label{fl, telemetry.L("op", verb)}
	}
	return &InstrumentedFabric{
		inner:      f,
		readOps:    reg.Counter("portus_rdma_ops_total", "completed RDMA verbs", op("read")...),
		writeOps:   reg.Counter("portus_rdma_ops_total", "completed RDMA verbs", op("write")...),
		sendOps:    reg.Counter("portus_rdma_ops_total", "completed RDMA verbs", op("send")...),
		readBytes:  reg.Counter("portus_rdma_bytes_total", "bytes moved by RDMA verbs", op("read")...),
		writeBytes: reg.Counter("portus_rdma_bytes_total", "bytes moved by RDMA verbs", op("write")...),
		sendBytes:  reg.Counter("portus_rdma_bytes_total", "bytes moved by RDMA verbs", op("send")...),
		errs:       reg.Counter("portus_rdma_errors_total", "failed RDMA verbs", fl),
		readLat:    reg.Histogram("portus_rdma_op_seconds", "RDMA verb latency", nil, op("read")...),
		writeLat:   reg.Histogram("portus_rdma_op_seconds", "RDMA verb latency", nil, op("write")...),
	}
}

// Inner returns the wrapped fabric.
func (f *InstrumentedFabric) Inner() Fabric { return f.inner }

// Read pulls remote bytes into the local slice, timing the verb.
func (f *InstrumentedFabric) Read(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	t0 := env.Now()
	err := f.inner.Read(env, local, l, r)
	if err != nil {
		f.errs.Inc()
		return err
	}
	f.readOps.Inc()
	f.readBytes.Add(l.Len)
	f.readLat.ObserveDuration(env.Now() - t0)
	return nil
}

// Write pushes local bytes into the remote slice, timing the verb.
func (f *InstrumentedFabric) Write(env sim.Env, local *Node, l Slice, r RemoteSlice) error {
	t0 := env.Now()
	err := f.inner.Write(env, local, l, r)
	if err != nil {
		f.errs.Inc()
		return err
	}
	f.writeOps.Inc()
	f.writeBytes.Add(l.Len)
	f.writeLat.ObserveDuration(env.Now() - t0)
	return nil
}

// Send delivers a two-sided message, counting payload bytes.
func (f *InstrumentedFabric) Send(env sim.Env, local *Node, remote, qp string, payload []byte, size int64) error {
	err := f.inner.Send(env, local, remote, qp, payload, size)
	if err != nil {
		f.errs.Inc()
		return err
	}
	f.sendOps.Inc()
	f.sendBytes.Add(size)
	return nil
}

// Recv blocks until a message for (node, qp) arrives.
func (f *InstrumentedFabric) Recv(env sim.Env, local *Node, qp string) ([]byte, int64, error) {
	return f.inner.Recv(env, local, qp)
}

// AddPeer forwards explicit peer-address exchange to the wrapped fabric
// when it supports it (the TCP soft-RDMA fabric), preserving the
// daemon's registration flow through the wrapper.
func (f *InstrumentedFabric) AddPeer(name, addr string) {
	if pa, ok := f.inner.(interface{ AddPeer(name, addr string) }); ok {
		pa.AddPeer(name, addr)
	}
}
