package rdma_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

func TestInstrumentedFabricCountsVerbs(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		reg := telemetry.NewRegistry()
		inner := rdma.NewSimFabric()
		fab := rdma.Instrument("sim", inner, reg)

		a := rdma.NewNode(env, "a")
		b := rdma.NewNode(env, "b")
		inner.AddNode(a)
		inner.AddNode(b)
		devA := memdev.New("a/mem", memdev.DRAM, 4096, true)
		devB := memdev.New("b/mem", memdev.DRAM, 4096, true)
		mrA := a.RegisterMR(env, devA, 0, 4096)
		mrB := b.RegisterMR(env, devB, 0, 4096)
		devB.Write(0, bytes.Repeat([]byte{7}, 1024))

		local := rdma.Slice{MR: mrA, Off: 0, Len: 1024}
		remote := rdma.RemoteSlice{MR: rdma.RemoteMR{Node: "b", RKey: mrB.RKey, Len: 4096}, Len: 1024}
		if err := fab.Read(env, a, local, remote); err != nil {
			t.Fatal(err)
		}
		if err := fab.Write(env, a, local, remote); err != nil {
			t.Fatal(err)
		}
		// A verb against an unknown rkey counts as an error.
		bad := remote
		bad.MR.RKey = 999
		if err := fab.Read(env, a, local, bad); err == nil {
			t.Fatal("expected bad-rkey error")
		}

		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		out := buf.String()
		for _, want := range []string{
			`portus_rdma_ops_total{fabric="sim",op="read"} 1`,
			`portus_rdma_ops_total{fabric="sim",op="write"} 1`,
			`portus_rdma_bytes_total{fabric="sim",op="read"} 1024`,
			`portus_rdma_errors_total{fabric="sim"} 1`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}
		// Latency histograms must have recorded the simulated transfer
		// time of successful verbs.
		samples, err := telemetry.ParseText(strings.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := telemetry.HistogramQuantile(samples, "portus_rdma_op_seconds", 0.5); !ok {
			t.Error("no rdma op latency histogram in exposition")
		}
		if fab.Inner() != inner {
			t.Error("Inner must return the wrapped fabric")
		}
	})
	eng.Run()
}
