package rdma

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/sim"
)

// testPair builds a client (with a GPU and DRAM) and a server (with PMem
// and DRAM) on a sim fabric, then runs fn inside the engine.
func runSimPair(t *testing.T, materialized bool, fn func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device)) time.Duration {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		f := NewSimFabric()
		client := NewNode(env, "client")
		server := NewNode(env, "server")
		f.AddNode(client)
		f.AddNode(server)
		size := int64(256 << 20)
		if materialized {
			size = 1 << 20 // materialized tests touch small regions only
		}
		cgpu := memdev.New("gpu0", memdev.GPU, size, materialized)
		spm := memdev.New("pmem0", memdev.PMEM, size, materialized)
		fn(env, f, client, server, cgpu, spm)
	})
	return eng.Run()
}

func TestOneSidedReadMovesContent(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		cgpu.Write(4096, []byte("tensor-bytes"))
		rmr := client.RegisterMR(env, cgpu, 4096, 12)
		lmr := server.RegisterMR(env, spm, 0, 12)
		err := f.Read(env, server,
			Slice{MR: lmr, Off: 0, Len: 12},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 12}, Off: 0, Len: 12})
		if err != nil {
			t.Fatal(err)
		}
		if got := spm.Bytes(0, 12); !bytes.Equal(got, []byte("tensor-bytes")) {
			t.Fatalf("server pulled %q", got)
		}
	})
}

func TestOneSidedWriteMovesContent(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		spm.Write(128, []byte("restored!"))
		lmr := server.RegisterMR(env, spm, 128, 9)
		rmr := client.RegisterMR(env, cgpu, 0, 9)
		err := f.Write(env, server,
			Slice{MR: lmr, Off: 0, Len: 9},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 9}, Off: 0, Len: 9})
		if err != nil {
			t.Fatal(err)
		}
		if got := cgpu.Bytes(0, 9); !bytes.Equal(got, []byte("restored!")) {
			t.Fatalf("client received %q", got)
		}
	})
}

func TestVirtualStampTravelsOverFabric(t *testing.T) {
	runSimPair(t, false, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		cgpu.WriteStamp(0, 64<<20, 0x1234)
		rmr := client.RegisterMR(env, cgpu, 0, 64<<20)
		lmr := server.RegisterMR(env, spm, 0, 64<<20)
		err := f.Read(env, server,
			Slice{MR: lmr, Off: 0, Len: 64 << 20},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 64 << 20}, Off: 0, Len: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if got := spm.StampOf(0, 64<<20); got != 0x1234 {
			t.Fatalf("stamp = %#x, want 0x1234", got)
		}
	})
}

func TestGPUReadIsBARCapped(t *testing.T) {
	// Reading 64 MiB from GPU memory must run at ~5.8 GB/s, not NIC rate.
	const size = 64 << 20
	elapsed := runSimPair(t, false, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		cgpu.WriteStamp(0, size, 1)
		rmr := client.RegisterMR(env, cgpu, 0, size)
		lmr := server.RegisterMR(env, spm, 0, size)
		if err := f.Read(env, server,
			Slice{MR: lmr, Len: size},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: size}, Len: size}); err != nil {
			t.Fatal(err)
		}
	})
	secs := float64(size) / perfmodel.GPUBARReadBW
	ideal := time.Duration(secs * float64(time.Second))
	if elapsed < ideal || elapsed > ideal*115/100 {
		t.Fatalf("BAR-capped read took %v, want within [%v, %v]", elapsed, ideal, ideal*115/100)
	}
}

func TestGPUWriteIsNotBARCapped(t *testing.T) {
	// Writing into GPU memory (restore direction) is NIC-limited
	// (~11.5 GB/s), i.e. roughly 2x faster than the BAR-capped read.
	const size = 64 << 20
	elapsed := runSimPair(t, false, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		spm.WriteStamp(0, size, 1)
		lmr := server.RegisterMR(env, spm, 0, size)
		rmr := client.RegisterMR(env, cgpu, 0, size)
		if err := f.Write(env, server,
			Slice{MR: lmr, Len: size},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: size}, Len: size}); err != nil {
			t.Fatal(err)
		}
	})
	secs := float64(size) / perfmodel.NICBandwidth
	ideal := time.Duration(secs * float64(time.Second))
	if elapsed < ideal || elapsed > ideal*115/100 {
		t.Fatalf("restore write took %v, want within [%v, %v]", elapsed, ideal, ideal*115/100)
	}
}

func TestConcurrentReadsSharePMemBandwidth(t *testing.T) {
	// 8 concurrent GPU pulls into PMem: per-flow 5.8 GB/s would need
	// 46.4 GB/s aggregate, but PMem sustains 6.2 GB/s — so 8×64 MiB
	// lands in ~(8*64MiB)/6.2GB/s.
	const size = 64 << 20
	eng := sim.NewEngine()
	var last time.Duration
	eng.Go("root", func(env sim.Env) {
		f := NewSimFabric()
		server := NewNode(env, "server")
		f.AddNode(server)
		spm := memdev.New("pmem0", memdev.PMEM, 1<<30, false)
		for i := 0; i < 8; i++ {
			i := i
			client := NewNode(env, nodeName(i))
			f.AddNode(client)
			gpu := memdev.New("gpu", memdev.GPU, size, false)
			gpu.WriteStamp(0, size, uint64(i+1))
			rmr := client.RegisterMR(env, gpu, 0, size)
			lmr := server.RegisterMR(env, spm, int64(i)*size, size)
			env.Go("pull", func(env sim.Env) {
				err := f.Read(env, server,
					Slice{MR: lmr, Len: size},
					RemoteSlice{MR: RemoteMR{Node: client.name, RKey: rmr.RKey, Len: size}, Len: size})
				if err != nil {
					t.Error(err)
				}
				if env.Now() > last {
					last = env.Now()
				}
			})
		}
	})
	eng.Run()
	secs := float64(8*size) / perfmodel.PMemWriteBW
	ideal := time.Duration(secs * float64(time.Second))
	if math.Abs(float64(last-ideal)) > 0.15*float64(ideal) {
		t.Fatalf("8 concurrent pulls finished at %v, want ~%v", last, ideal)
	}
}

func nodeName(i int) string { return string(rune('a'+i)) + "-node" }

func TestReadBadRKeyFails(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		lmr := server.RegisterMR(env, spm, 0, 16)
		err := f.Read(env, server,
			Slice{MR: lmr, Len: 16},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: 999, Len: 16}, Len: 16})
		if !errors.Is(err, ErrBadRKey) {
			t.Fatalf("err = %v, want ErrBadRKey", err)
		}
	})
}

func TestReadOutOfBoundsFails(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		rmr := client.RegisterMR(env, cgpu, 0, 16)
		lmr := server.RegisterMR(env, spm, 0, 32)
		err := f.Read(env, server,
			Slice{MR: lmr, Len: 32},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 16}, Off: 0, Len: 32})
		if !errors.Is(err, ErrOutOfBounds) {
			t.Fatalf("err = %v, want ErrOutOfBounds", err)
		}
	})
}

func TestDeregisterRevokesAccess(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		rmr := client.RegisterMR(env, cgpu, 0, 16)
		lmr := server.RegisterMR(env, spm, 0, 16)
		client.DeregisterMR(rmr.RKey)
		err := f.Read(env, server,
			Slice{MR: lmr, Len: 16},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 16}, Len: 16})
		if !errors.Is(err, ErrBadRKey) {
			t.Fatalf("err = %v, want ErrBadRKey after deregister", err)
		}
		if client.MRCount() != 0 {
			t.Fatalf("MRCount = %d, want 0", client.MRCount())
		}
	})
}

func TestUnknownPeerFails(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		lmr := server.RegisterMR(env, spm, 0, 16)
		err := f.Read(env, server,
			Slice{MR: lmr, Len: 16},
			RemoteSlice{MR: RemoteMR{Node: "ghost", RKey: 1, Len: 16}, Len: 16})
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("err = %v, want ErrNoRoute", err)
		}
	})
}

func TestTwoSidedSendRecv(t *testing.T) {
	runSimPair(t, true, func(env sim.Env, f *SimFabric, client, server *Node, cgpu, spm *memdev.Device) {
		env.Go("sender", func(env sim.Env) {
			if err := f.Send(env, client, "server", "qp1", []byte("DO_CHECKPOINT"), 13); err != nil {
				t.Error(err)
			}
		})
		payload, size, err := f.Recv(env, server, "qp1")
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) != "DO_CHECKPOINT" || size != 13 {
			t.Fatalf("recv = %q (%d)", payload, size)
		}
	})
}

func TestRateTableOverride(t *testing.T) {
	rt := DefaultRates().WithGPUReadCap(2 * perfmodel.GB)
	if rt.GPU.ReadBW != 2*perfmodel.GB || rt.GPU.ReadFlowCap != 2*perfmodel.GB {
		t.Fatal("WithGPUReadCap did not override both fields")
	}
	if DefaultRates().GPU.ReadBW != perfmodel.GPUBARReadBW {
		t.Fatal("WithGPUReadCap mutated the default table")
	}
}

func TestForKindSelectsRates(t *testing.T) {
	rt := DefaultRates()
	if rt.ForKind(memdev.GPU).ReadBW != perfmodel.GPUBARReadBW {
		t.Error("GPU rates wrong")
	}
	if rt.ForKind(memdev.PMEM).WriteBW != perfmodel.PMemWriteBW {
		t.Error("PMEM rates wrong")
	}
	if rt.ForKind(memdev.DRAM).ReadFlowCap != perfmodel.DRAMRemoteReadBW {
		t.Error("DRAM rates wrong")
	}
	if rt.ForKind(memdev.NVMe).ReadBW != perfmodel.NVMeReadBW {
		t.Error("NVMe rates wrong")
	}
}

func TestPipeChunkBounds(t *testing.T) {
	if c := pipeChunk(1 << 10); c != 64*perfmodel.KiB {
		t.Errorf("small chunk = %d", c)
	}
	if c := pipeChunk(1 << 40); c != 8*perfmodel.MiB {
		t.Errorf("large chunk = %d", c)
	}
	if c := pipeChunk(640 * perfmodel.MiB); c != 10*perfmodel.MiB || c == 0 {
		// 640MiB/64 = 10MiB > 8MiB cap
		if c != 8*perfmodel.MiB {
			t.Errorf("mid chunk = %d", c)
		}
	}
}
