package rdma

import (
	"testing"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/sim"
)

// BenchmarkSimFabricRead measures simulated one-sided READ dispatch
// cost (the per-tensor overhead of a checkpoint pull), 4 MiB virtual
// payloads.
func BenchmarkSimFabricRead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		eng.Go("bench", func(env sim.Env) {
			f := NewSimFabric()
			server := NewNode(env, "server")
			client := NewNode(env, "client")
			f.AddNode(server)
			f.AddNode(client)
			gpu := memdev.New("gpu", memdev.GPU, 1<<30, false)
			pm := memdev.New("pm", memdev.PMEM, 1<<30, false)
			gpu.WriteStamp(0, 4<<20, 1)
			rmr := client.RegisterMR(env, gpu, 0, 4<<20)
			lmr := server.RegisterMR(env, pm, 0, 4<<20)
			for j := 0; j < 64; j++ {
				err := f.Read(env, server,
					Slice{MR: lmr, Len: 4 << 20},
					RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 4 << 20}, Len: 4 << 20})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		eng.Run()
	}
}

// BenchmarkTCPFabricRead measures real soft-RDMA read latency over
// loopback with 64 KiB materialized payloads.
func BenchmarkTCPFabricRead(b *testing.B) {
	env := sim.NewRealEnv()
	f := NewTCPFabric(env)
	defer f.Close()
	server := NewNode(env, "server")
	client := NewNode(env, "client")
	if _, err := f.Serve(server, ""); err != nil {
		b.Fatal(err)
	}
	if _, err := f.Serve(client, ""); err != nil {
		b.Fatal(err)
	}
	gpu := memdev.New("gpu", memdev.GPU, 1<<20, true)
	pm := memdev.New("pm", memdev.PMEM, 1<<20, true)
	rmr := client.RegisterMR(env, gpu, 0, 64<<10)
	lmr := server.RegisterMR(env, pm, 0, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := f.Read(env, server,
			Slice{MR: lmr, Len: 64 << 10},
			RemoteSlice{MR: RemoteMR{Node: "client", RKey: rmr.RKey, Len: 64 << 10}, Len: 64 << 10})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegisterMR measures registration throughput.
func BenchmarkRegisterMR(b *testing.B) {
	env := sim.NewRealEnv()
	n := NewNode(env, "client")
	dev := memdev.New("gpu", memdev.GPU, 1<<40, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RegisterMR(env, dev, int64(i)%(1<<30), 4096)
	}
}
