package rdma

import (
	"time"

	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
)

// DeviceRates gives the bandwidth model of one device kind as seen by
// remote DMA: aggregate read/write capacities of the device and per-flow
// caps on the access path.
type DeviceRates struct {
	ReadBW       float64 // aggregate device read capacity (bytes/s)
	WriteBW      float64 // aggregate device write capacity
	ReadFlowCap  float64 // per-flow cap for remote reads; 0 = uncapped
	WriteFlowCap float64 // per-flow cap for remote writes
}

// RateTable is the full performance model of a node's DMA paths.
type RateTable struct {
	NICBandwidth float64
	ReadLatency  time.Duration // one-sided verb latency
	WriteLatency time.Duration
	SendLatency  time.Duration // two-sided rendezvous latency
	DRAM         DeviceRates
	GPU          DeviceRates
	PMEM         DeviceRates
	NVMe         DeviceRates
}

// DefaultRates returns the calibrated rate table from perfmodel: the
// 5.8 GB/s GPU BAR read cap (writes unaffected), the 8.3 GB/s DRAM
// remote-read peak, and PMem's aggregate 6.2 GB/s write capacity.
func DefaultRates() RateTable {
	return RateTable{
		NICBandwidth: perfmodel.NICBandwidth,
		ReadLatency:  perfmodel.RDMALatency,
		WriteLatency: perfmodel.RDMALatency,
		SendLatency:  perfmodel.TwoSidedLatency,
		DRAM: DeviceRates{
			ReadBW:      perfmodel.ServerDRAMBW,
			WriteBW:     perfmodel.ServerDRAMBW,
			ReadFlowCap: perfmodel.DRAMRemoteReadBW,
		},
		GPU: DeviceRates{
			// The base address register unit disables prefetching for
			// remote reads of GPU memory; the whole device is capped at
			// 5.8 GB/s (§V-B). Writes bypass the BAR bottleneck.
			ReadBW:       perfmodel.GPUBARReadBW,
			WriteBW:      perfmodel.GPUWriteBW,
			ReadFlowCap:  perfmodel.GPUBARReadBW,
			WriteFlowCap: perfmodel.GPUWriteBW,
		},
		PMEM: DeviceRates{
			ReadBW:  perfmodel.PMemReadBW,
			WriteBW: perfmodel.PMemWriteBW,
		},
		NVMe: DeviceRates{
			ReadBW:  perfmodel.NVMeReadBW,
			WriteBW: perfmodel.NVMeWriteBW,
		},
	}
}

// ForKind selects the rates for a device kind.
func (t RateTable) ForKind(k memdev.Kind) DeviceRates {
	switch k {
	case memdev.GPU:
		return t.GPU
	case memdev.PMEM:
		return t.PMEM
	case memdev.NVMe:
		return t.NVMe
	default:
		return t.DRAM
	}
}

// WithGPUReadCap returns a copy of the table with the GPU BAR read cap
// replaced — used by the BAR-sensitivity ablation.
func (t RateTable) WithGPUReadCap(bw float64) RateTable {
	t.GPU.ReadBW = bw
	t.GPU.ReadFlowCap = bw
	return t
}

// pipeChunk picks the chunk size for a pipelined transfer: ~1/64 of the
// message bounded to [64 KiB, 8 MiB], so large transfers converge to the
// bottleneck rate while small ones stay latency-dominated.
func pipeChunk(size int64) int64 {
	c := size / 64
	if c < 64*perfmodel.KiB {
		c = 64 * perfmodel.KiB
	}
	if c > 8*perfmodel.MiB {
		c = 8 * perfmodel.MiB
	}
	return c
}
