package rdma

import (
	"time"

	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/sim"
)

// QP is one connected queue pair — a "lane" the datapath engine stripes
// chunks across. Verbs issued on different lanes proceed concurrently
// and share the node's NIC and device bandwidth under the simulation
// engine's processor-sharing model, so multi-lane striping helps
// exactly when a single flow cannot saturate a stage (e.g. the GPU BAR
// read cap below the NIC line rate).
//
// A QP carries no per-connection state of its own in this model — the
// fabric routes by node name and rkey — but it is a real cost center:
// establishing each lane beyond the first pays the queue-pair creation
// and connection handshake.
type QP struct {
	// ID is the lane index, used for trace-span attribution.
	ID int
	// Node is the local RDMA node the lane issues verbs from.
	Node *Node
	// Fabric, when set, overrides the transfer context's fabric for
	// verbs issued on this lane. Multi-rail deployments route lanes over
	// different RNICs, and the fault-injection harness uses it to fail a
	// single lane while the rest of the stripe set stays healthy.
	Fabric Fabric
}

// ConnectLanes establishes count queue pairs on node and returns them.
// The first lane rides the connection the control plane has already
// paid for (client registration charges QPConnectCost); every
// additional lane charges one more queue-pair handshake. count < 1 is
// treated as 1.
func ConnectLanes(env sim.Env, node *Node, count int) []*QP {
	if count < 1 {
		count = 1
	}
	if count > 1 {
		env.Sleep(time.Duration(count-1) * perfmodel.QPConnectCost)
	}
	lanes := make([]*QP, count)
	for i := range lanes {
		lanes[i] = &QP{ID: i, Node: node}
	}
	return lanes
}
