// Package model describes the DNN models whose checkpoints the system
// moves: tensor metadata (name, dtype, shape, size), synthetic weight
// content, and per-model training-iteration compute times. The zoo
// reproduces the paper's Table II exactly for the seven headline models,
// provides the Megatron GPT family (1.5B–22.4B parameters, checkpoint
// sizes 6–89.6 GB), and a programmatic zoo of 76 models matching the
// paper's full evaluation set in count and size distribution.
package model

import (
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/index"
)

// Spec is one trainable model.
type Spec struct {
	Name    string
	Tensors []index.TensorMeta
	// IterTime is the per-iteration compute time (forward + backward +
	// update) on the paper's hardware, calibrated in DESIGN.md §2.
	IterTime time.Duration
}

// TotalSize returns the checkpoint payload in bytes (parameters only,
// one version).
func (s Spec) TotalSize() int64 {
	var sum int64
	for _, t := range s.Tensors {
		sum += t.Size
	}
	return sum
}

// NumParams estimates the parameter count (float32 elements).
func (s Spec) NumParams() int64 { return s.TotalSize() / 4 }

// NumTensors returns the tensor (layer) count.
func (s Spec) NumTensors() int { return len(s.Tensors) }

// TensorSeed returns the deterministic content seed for tensor i at a
// given training iteration: weights change every update step, so the
// seed folds the iteration in. Equal (model, tensor, iteration) always
// produces equal content — the basis of end-to-end restore checks.
func (s Spec) TensorSeed(i int, iteration uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(s.Name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h = (h ^ uint64(i)) * 1099511628211
	h = (h ^ iteration) * 1099511628211
	return h
}

// synthesize builds a model with the given tensor count and total byte
// size, distributing bytes the way real vision/NLP models do: one or two
// dominant embedding/classifier tensors plus a long tail of layer
// weights and small biases. The sizes are deterministic in name.
func synthesize(name string, tensors int, totalBytes int64, iterTime time.Duration) Spec {
	if tensors < 1 {
		panic("model: tensor count must be positive")
	}
	weights := make([]float64, tensors)
	var wsum float64
	rng := splitmix(hashName(name))
	for i := range weights {
		// Power-law-ish distribution: a few heavy tensors, many light.
		u := float64(rng()%1000)/1000 + 0.001
		w := u * u * u
		if i%4 == 3 { // every fourth tensor is a small bias/norm tensor
			w *= 0.01
		}
		weights[i] = w
		wsum += w
	}
	spec := Spec{Name: name, IterTime: iterTime}
	var used int64
	for i := 0; i < tensors; i++ {
		var size int64
		if i == tensors-1 {
			size = totalBytes - used
		} else {
			size = int64(float64(totalBytes) * weights[i] / wsum)
		}
		// Keep every tensor at least one float and 4-byte aligned.
		if size < 4 {
			size = 4
		}
		size = size / 4 * 4
		if used+size > totalBytes && i < tensors-1 {
			size = 4
		}
		used += size
		elems := size / 4
		spec.Tensors = append(spec.Tensors, index.TensorMeta{
			Name:  fmt.Sprintf("%s.layer.%d.weight", name, i),
			DType: index.F32,
			Dims:  factorDims(elems),
			Size:  size,
		})
	}
	return spec
}

// factorDims shapes an element count into a plausible 1-2D shape.
func factorDims(elems int64) []int64 {
	if elems < 1024 {
		return []int64{elems}
	}
	for d := int64(1024); d >= 2; d /= 2 {
		if elems%d == 0 {
			return []int64{elems / d, d}
		}
	}
	return []int64{elems}
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range []byte(s) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// splitmix returns a deterministic uint64 stream.
func splitmix(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

const mib = int64(1) << 20

// Table II of the paper: the seven representative models with their
// exact layer counts and parameter sizes. Iteration times are calibrated
// so Figure 2's checkpoint-overhead fractions hold (DESIGN.md §2).
var tableII = []struct {
	name     string
	layers   int
	sizeMiB  int64
	iterTime time.Duration
}{
	{"alexnet", 16, 233, 40 * time.Millisecond},
	{"convnext_base", 344, 338, 95 * time.Millisecond},
	{"resnet50", 161, 97, 55 * time.Millisecond},
	{"swin_b", 329, 335, 105 * time.Millisecond},
	{"vgg19_bn", 70, 548, 80 * time.Millisecond},
	{"vit_l_32", 296, 1169, 67 * time.Millisecond},
	{"bert_large", 396, 1282, 120 * time.Millisecond},
}

// TableII returns the paper's seven representative models.
func TableII() []Spec {
	out := make([]Spec, len(tableII))
	for i, m := range tableII {
		out[i] = synthesize(m.name, m.layers, m.sizeMiB*mib, m.iterTime)
	}
	return out
}

// ByName returns a zoo model by name.
func ByName(name string) (Spec, error) {
	for _, s := range Zoo() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range GPTFamily() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}

// GPT synthesizes a Megatron-style GPT with the given transformer
// geometry. Checkpoint bytes = 4 × parameter count (fp32 master
// weights, as the paper's checkpoint sizes imply: 22.4B params =
// 89.6 GB).
func GPT(name string, layers int, hidden int64, vocab int64, iterTime time.Duration) Spec {
	spec := Spec{Name: name, IterTime: iterTime}
	add := func(tname string, dims ...int64) {
		elems := int64(1)
		for _, d := range dims {
			elems *= d
		}
		spec.Tensors = append(spec.Tensors, index.TensorMeta{
			Name: tname, DType: index.F32, Dims: dims, Size: elems * 4,
		})
	}
	add(name+".embedding.word_embeddings.weight", vocab, hidden)
	add(name+".embedding.position_embeddings.weight", 2048, hidden)
	for l := 0; l < layers; l++ {
		p := fmt.Sprintf("%s.encoder.layers.%d", name, l)
		add(p+".input_layernorm.weight", hidden)
		add(p+".input_layernorm.bias", hidden)
		add(p+".self_attention.query_key_value.weight", 3*hidden, hidden)
		add(p+".self_attention.query_key_value.bias", 3*hidden)
		add(p+".self_attention.dense.weight", hidden, hidden)
		add(p+".self_attention.dense.bias", hidden)
		add(p+".post_attention_layernorm.weight", hidden)
		add(p+".post_attention_layernorm.bias", hidden)
		add(p+".mlp.dense_h_to_4h.weight", 4*hidden, hidden)
		add(p+".mlp.dense_h_to_4h.bias", 4*hidden)
		add(p+".mlp.dense_4h_to_h.weight", hidden, 4*hidden)
		add(p+".mlp.dense_4h_to_h.bias", hidden)
	}
	add(name+".final_layernorm.weight", hidden)
	add(name+".final_layernorm.bias", hidden)
	return spec
}

// GPTFamily returns the four GPT scales the paper evaluates (Fig. 14),
// 1.5 to 22.4 billion parameters. Iteration times are calibrated so
// GPT-22.4B's checkpoint overhead reaches 41% (Fig. 2) at one checkpoint
// per 100 iterations.
func GPTFamily() []Spec {
	return []Spec{
		GPT("gpt-1.5b", 48, 1600, 50304, 280*time.Millisecond),
		GPT("gpt-5b", 44, 3072, 50304, 640*time.Millisecond),
		GPT("gpt-10b", 48, 4096, 50304, 1260*time.Millisecond),
		GPT("gpt-22.4b", 48, 6144, 52224, 1730*time.Millisecond),
	}
}

// GPT22B returns the paper's largest evaluated model.
func GPT22B() Spec { return GPTFamily()[3] }

// Zoo returns the full 76-model evaluation set: Table II plus the
// torchvision/NLP families the paper's appendix covers. Parameter
// counts approximate the published architectures; the checkpoint-cost
// distribution (tensor counts and byte sizes) is what matters here.
func Zoo() []Spec {
	type entry struct {
		name    string
		layers  int
		sizeMiB int64
	}
	families := []entry{
		// ResNet family.
		{"resnet18", 62, 45}, {"resnet34", 110, 83}, {"resnet101", 314, 170},
		{"resnet152", 467, 230}, {"wide_resnet50_2", 161, 263}, {"resnext50_32x4d", 161, 96},
		// VGG family.
		{"vgg11", 22, 507}, {"vgg13", 26, 508}, {"vgg16", 32, 528}, {"vgg19", 38, 548},
		{"vgg11_bn", 38, 507}, {"vgg13_bn", 46, 508}, {"vgg16_bn", 58, 528},
		// DenseNet family.
		{"densenet121", 364, 31}, {"densenet169", 508, 54}, {"densenet201", 604, 77},
		// ViT family.
		{"vit_b_16", 152, 330}, {"vit_b_32", 152, 336}, {"vit_l_16", 296, 1161},
		{"vit_h_14", 392, 2416},
		// Swin family.
		{"swin_t", 173, 108}, {"swin_s", 293, 189}, {"swin_v2_b", 329, 336},
		// ConvNeXt family.
		{"convnext_tiny", 172, 109}, {"convnext_small", 292, 191}, {"convnext_large", 344, 754},
		// EfficientNet family.
		{"efficientnet_b0", 213, 20}, {"efficientnet_b1", 301, 30}, {"efficientnet_b2", 301, 35},
		{"efficientnet_b3", 340, 47}, {"efficientnet_b4", 418, 74}, {"efficientnet_b5", 506, 116},
		{"efficientnet_b6", 584, 165}, {"efficientnet_b7", 711, 255},
		// MobileNet/others.
		{"mobilenet_v2", 158, 14}, {"mobilenet_v3_large", 174, 21}, {"mobilenet_v3_small", 142, 10},
		{"shufflenet_v2_x1_0", 170, 9}, {"squeezenet1_0", 52, 5}, {"googlenet", 187, 25},
		{"inception_v3", 292, 91}, {"mnasnet1_0", 158, 17}, {"regnet_y_8gf", 243, 150},
		{"regnet_y_16gf", 303, 320}, {"regnet_y_32gf", 335, 554},
		// Detection / segmentation backbones.
		{"fcn_resnet50", 178, 135}, {"deeplabv3_resnet101", 338, 233},
		{"maskrcnn_resnet50_fpn", 255, 170}, {"retinanet_resnet50_fpn", 225, 130},
		{"ssd300_vgg16", 95, 136},
		// NLP family.
		{"bert_base", 199, 418}, {"roberta_base", 199, 480}, {"roberta_large", 396, 1356},
		{"distilbert_base", 100, 254}, {"albert_base_v2", 25, 45}, {"electra_base", 199, 418},
		{"xlm_roberta_base", 199, 1064}, {"gpt2", 148, 498}, {"gpt2_medium", 290, 1354},
		{"gpt2_large", 434, 2954}, {"t5_small", 131, 232}, {"t5_base", 257, 850},
		{"bart_base", 259, 532}, {"longformer_base", 243, 567},
		// Speech / recommendation.
		{"wav2vec2_base", 215, 361}, {"deepspeech2", 42, 333}, {"dlrm_small", 26, 2048},
		{"ncf", 12, 121}, {"din", 31, 64},
	}
	out := TableII()
	for _, e := range families {
		out = append(out, synthesize(e.name, e.layers, e.sizeMiB*mib, DefaultIterTime(e.sizeMiB*mib)))
	}
	return out
}

// DefaultIterTime estimates an iteration time for zoo models the paper
// does not calibrate individually: compute scales sublinearly with
// parameter bytes.
func DefaultIterTime(sizeBytes int64) time.Duration {
	ms := 20 + float64(sizeBytes)/float64(mib)*0.09
	return time.Duration(ms * float64(time.Millisecond))
}
