package model

import (
	"testing"
	"time"
)

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[string]struct {
		layers  int
		sizeMiB int64
	}{
		"alexnet":       {16, 233},
		"convnext_base": {344, 338},
		"resnet50":      {161, 97},
		"swin_b":        {329, 335},
		"vgg19_bn":      {70, 548},
		"vit_l_32":      {296, 1169},
		"bert_large":    {396, 1282},
	}
	specs := TableII()
	if len(specs) != len(want) {
		t.Fatalf("TableII has %d models, want %d", len(specs), len(want))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected model %q", s.Name)
			continue
		}
		if s.NumTensors() != w.layers {
			t.Errorf("%s: %d layers, want %d", s.Name, s.NumTensors(), w.layers)
		}
		if got := s.TotalSize(); got != w.sizeMiB*mib {
			t.Errorf("%s: size %d, want %d MiB", s.Name, got, w.sizeMiB)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := TableII()[0]
	b := TableII()[0]
	if len(a.Tensors) != len(b.Tensors) {
		t.Fatal("nondeterministic tensor count")
	}
	for i := range a.Tensors {
		if a.Tensors[i].Size != b.Tensors[i].Size || a.Tensors[i].Name != b.Tensors[i].Name {
			t.Fatalf("tensor %d differs across calls", i)
		}
	}
}

func TestTensorSizesPositiveAndAligned(t *testing.T) {
	for _, s := range Zoo() {
		for _, tm := range s.Tensors {
			if tm.Size < 4 || tm.Size%4 != 0 {
				t.Fatalf("%s/%s: size %d", s.Name, tm.Name, tm.Size)
			}
			if len(tm.Dims) == 0 || len(tm.Dims) > 4 {
				t.Fatalf("%s/%s: %d dims", s.Name, tm.Name, len(tm.Dims))
			}
		}
	}
}

func TestGPTFamilySizes(t *testing.T) {
	fam := GPTFamily()
	if len(fam) != 4 {
		t.Fatalf("GPT family has %d members", len(fam))
	}
	// Checkpoint sizes must span the paper's range: ~6 GB to ~89.6 GB.
	small := fam[0].TotalSize()
	big := fam[3].TotalSize()
	if small < 5<<30 || small > 8<<30 {
		t.Fatalf("gpt-1.5b checkpoint = %.1f GB, want ~6 GB", float64(small)/1e9)
	}
	if big < 85e9 || big > 95e9 {
		t.Fatalf("gpt-22.4b checkpoint = %.1f GB, want ~89.6 GB", float64(big)/1e9)
	}
	// Parameter count of the flagship must be ~22.4B.
	if p := GPT22B().NumParams(); p < 21e9 || p > 24e9 {
		t.Fatalf("gpt-22.4b params = %.1fB", float64(p)/1e9)
	}
}

func TestZooHas76Models(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 76 {
		t.Fatalf("zoo has %d models, want 76 (the paper's evaluation set)", len(zoo))
	}
	seen := map[string]bool{}
	for _, s := range zoo {
		if seen[s.Name] {
			t.Fatalf("duplicate zoo model %q", s.Name)
		}
		seen[s.Name] = true
		if s.IterTime <= 0 {
			t.Fatalf("%s: no iteration time", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("resnet50")
	if err != nil || s.Name != "resnet50" {
		t.Fatalf("ByName(resnet50) = %v, %v", s.Name, err)
	}
	if _, err := ByName("gpt-22.4b"); err != nil {
		t.Fatalf("ByName(gpt-22.4b): %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName(nonexistent) succeeded")
	}
}

func TestTensorSeedChangesWithIteration(t *testing.T) {
	s := TableII()[0]
	if s.TensorSeed(0, 1) == s.TensorSeed(0, 2) {
		t.Fatal("seed does not change across iterations")
	}
	if s.TensorSeed(0, 1) == s.TensorSeed(1, 1) {
		t.Fatal("seed does not change across tensors")
	}
	if s.TensorSeed(0, 1) != s.TensorSeed(0, 1) {
		t.Fatal("seed not deterministic")
	}
}

func TestGPTStructure(t *testing.T) {
	g := GPT("g", 2, 64, 1000, time.Millisecond)
	// 2 embeddings + 2*12 layer tensors + 2 final layernorm.
	if got := g.NumTensors(); got != 2+24+2 {
		t.Fatalf("tensors = %d", got)
	}
	if g.TotalSize()%4 != 0 {
		t.Fatal("unaligned GPT size")
	}
}

func TestDefaultIterTimeMonotone(t *testing.T) {
	if DefaultIterTime(1<<20) >= DefaultIterTime(1<<30) {
		t.Fatal("iteration time not increasing with model size")
	}
}
