// Package perfmodel centralizes every performance-model constant used by
// the simulated substrates. Constants that the paper states explicitly
// are quoted from it (section references in comments); the rest are
// calibrated so that the paper's reported breakdowns and speedups hold,
// as documented in DESIGN.md §2.
//
// All bandwidths are bytes per second; all latencies are time.Duration.
package perfmodel

import "time"

// Byte-size units.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// GB is a decimal gigabyte per second base for bandwidth constants.
const GB = 1e9

// Network fabric (Mellanox ConnectX-5/6, 100 Gbps InfiniBand; §V-A).
const (
	// NICBandwidth is the effective peak of a 100 Gbps link after
	// protocol overheads (~92% of 12.5 GB/s).
	NICBandwidth = 11.5 * GB
	// RDMALatency is the one-sided verb latency. Calibrated so that
	// transfers ≥512 KiB reach ≥95% of peak bandwidth, which is the
	// saturation point the paper reports in §V-B.
	RDMALatency = 2200 * time.Nanosecond
	// TwoSidedLatency is the two-sided SEND/RECV rendezvous latency
	// (RPC-over-RDMA, as used by BeeGFS; §V-D).
	TwoSidedLatency = 5500 * time.Nanosecond
	// TCPLatency is the control-plane round-trip cost over IPoIB.
	TCPLatency = 30 * time.Microsecond
)

// GPU device (NVIDIA V100 / A40 behind PCIe 4.0; §V-B).
const (
	// GPUBARReadBW is the peak bandwidth for remote reads of GPU memory.
	// The paper measures 5.8 GB/s and attributes the cap to the base
	// address register (BAR) unit, which disables prefetching (§V-B).
	GPUBARReadBW = 5.8 * GB
	// GPUWriteBW is the peak for remote writes into GPU memory; the
	// paper observes BAR does not affect writes (§V-B, Fig. 10(d)).
	GPUWriteBW = 12.0 * GB
	// CuMemcpyBW is the effective device-to-host copy bandwidth seen by
	// the baseline checkpoint path (calibrated from Table I: the
	// GPU→main-memory stage is 15.5% of the traditional checkpoint).
	CuMemcpyBW = 4.36 * GB
	// PCIeNodeBW is the aggregate host PCIe bandwidth shared by all GPUs
	// on one node for device-to-host staging copies.
	PCIeNodeBW = 16.0 * GB
)

// Client main memory (DDR4-3200; §V-A).
const (
	// DRAMRemoteReadBW is the peak for one-sided RDMA reads of client
	// DRAM. The paper states GPU BAR reads are 30% slower than DRAM
	// reads, i.e. DRAM reads peak at 5.8/0.7 ≈ 8.3 GB/s (§V-B).
	DRAMRemoteReadBW = 8.3 * GB
	// DRAMRemoteWriteBW is the peak for one-sided RDMA writes into
	// client DRAM (NIC-limited).
	DRAMRemoteWriteBW = 11.5 * GB
)

// Persistent memory (6×256 GB Intel Optane DC, 3 DIMMs interleaved per
// namespace; §V-A).
const (
	// PMemWriteBW is the aggregate sustained write bandwidth of the
	// devdax namespace (≈2 GB/s per interleaved DIMM). This becomes the
	// bottleneck for highly concurrent multi-GPU checkpoints (Fig. 14:
	// 89.6 GB in ~15 s ⇒ ≈6 GB/s).
	PMemWriteBW = 6.2 * GB
	// PMemReadBW is the aggregate sustained read bandwidth.
	PMemReadBW = 18.0 * GB
	// PMemLatency is the media write latency (negligible next to RDMA).
	PMemLatency = 300 * time.Nanosecond
	// ServerDRAMBW is the storage server's DRAM bandwidth (never the
	// bottleneck; the paper notes DRAM vs PMem does not change Portus
	// checkpoint performance, §V-B).
	ServerDRAMBW = 35.0 * GB
)

// Baseline serialization (torch.save-style pickling; Table I: 41.7% of
// the traditional checkpoint time).
const (
	// SerializeBW is the single-stream serialization throughput.
	SerializeBW = 1.62 * GB
	// DeserializeBW is the single-stream deserialization throughput
	// during restore.
	DeserializeBW = 3.2 * GB
	// SerializerNodeBW is the aggregate serialization throughput of one
	// compute node when many ranks serialize concurrently (CPU and
	// memory-bandwidth bound).
	SerializerNodeBW = 3.2 * GB
	// SerializePerTensor is the per-tensor header/metadata encode cost.
	SerializePerTensor = 4 * time.Microsecond
)

// BeeGFS-on-PMem shared filesystem baseline (§II-B, §V).
const (
	// BeeGFSTransferBW is the effective single-flow client→server
	// throughput of the two-sided RPC-over-RDMA protocol (calibrated
	// jointly with the metadata model so the transmission stage lands at
	// Table I's 30.0% of the traditional BERT checkpoint).
	BeeGFSTransferBW = 3.06 * GB
	// BeeGFSServerBW is the daemon's aggregate ingest capacity.
	BeeGFSServerBW = 3.2 * GB
	// BeeGFSContention is the synchronization-contention coefficient of
	// the daemon: effective capacity = BeeGFSServerBW/(1+α(n−1)) with n
	// concurrent writers. Calibrated so 16 concurrent Megatron ranks
	// writing 89.6 GB take >120 s (Fig. 14) while a single writer is
	// unaffected.
	BeeGFSContention = 0.185
	// BeeGFSDAXWriteBW is the server-side DAX persist stage (Table I:
	// 12.8% of the traditional checkpoint).
	BeeGFSDAXWriteBW = 5.27 * GB
	// BeeGFSMetadataBase is the fixed per-checkpoint-file metadata cost
	// (path resolution, permission checks, striping setup).
	BeeGFSMetadataBase = 10 * time.Millisecond
	// BeeGFSMetadataPerTensor is the per-layer metadata cost of the
	// traditional path (chunked small writes through the striping
	// layer); the paper blames metadata operations for ResNet50's
	// worst-case 9.23× gap (§V-C1) — ResNet50 has many small tensors.
	BeeGFSMetadataPerTensor = 560 * time.Microsecond
	// BeeGFSKernelCrossing is the cost of one user/kernel crossing on
	// the client or server VFS path.
	BeeGFSKernelCrossing = 4 * time.Microsecond
)

// Local ext4 on NVMe SSD baseline (§V-A: PCIe 4.0 NVMe, max sequential
// write 2.7 GB/s per the paper's §V-B; effective throughput is lower due
// to the block layer, journaling, and page-cache copies — Fig. 13: 53.7%
// of local checkpoint time is spent interacting with block devices).
const (
	// NVMeWriteBW is the raw sequential write bandwidth.
	NVMeWriteBW = 2.7 * GB
	// NVMeReadBW is the raw sequential read bandwidth.
	NVMeReadBW = 3.5 * GB
	// Ext4EffectiveWriteBW is the end-to-end effective write throughput
	// including kernel crossings, journal, and page-cache copies.
	Ext4EffectiveWriteBW = 1.05 * GB
	// Ext4EffectiveReadBW is the effective read throughput (reads skip
	// the journal, and GPU-Direct Storage bypasses the page cache).
	Ext4EffectiveReadBW = 3.4 * GB
	// Ext4SyscallOverhead is the per-write-syscall cost.
	Ext4SyscallOverhead = 3 * time.Microsecond
	// Ext4WriteChunk is the syscall granularity of the baseline writer.
	Ext4WriteChunk = 1 * MiB
)

// Portus-specific costs.
const (
	// MRRegisterPerGiB is the cost of pinning and registering one GiB of
	// device memory as an RDMA memory region (nv_peer_mem page-table
	// setup). Paying it once per training job — instead of once per
	// checkpoint version — is why Portus pre-allocates the double-mapped
	// slots (§III-D2).
	MRRegisterPerGiB = 50 * time.Millisecond
	// QPConnectCost is queue-pair creation plus the connection
	// handshake.
	QPConnectCost = 8 * time.Millisecond
	// RDMAReadIssueCost is the per-verb posting + completion-polling
	// cost on the daemon for each one-sided READ (one per tensor).
	RDMAReadIssueCost = 6 * time.Microsecond
	// IndexInsertCost is the cost of creating one MIndex tensor record
	// and its PMem allocation at registration time.
	IndexInsertCost = 2 * time.Microsecond
	// FlushPerMiB is the CLWB+fence flush cost per MiB of TensorData.
	FlushPerMiB = 9 * time.Microsecond
	// DigestBW is the client-side throughput of computing block digests
	// over resident GPU tensors for incremental checkpointing (a
	// memory-bandwidth-bound xxHash/FNV pass fused with the optimizer's
	// last touch of the weights).
	DigestBW = 150 * GB
)

// PMemCopyTime models a local PMem-to-PMem copy of n bytes (the
// copy-forward stage of an incremental checkpoint): the media is read
// at PMemReadBW and written at PMemWriteBW, and the stages do not
// overlap within one span.
func PMemCopyTime(n int64) time.Duration {
	secs := float64(n)/PMemReadBW + float64(n)/PMemWriteBW
	return time.Duration(secs * float64(time.Second))
}

// DigestTime models computing block digests over n bytes at DigestBW.
func DigestTime(n int64) time.Duration {
	return time.Duration(float64(n) / DigestBW * float64(time.Second))
}

// Restore-path costs.
const (
	// GDSRestoreBW is the effective storage→GPU bandwidth of the
	// baselines' GPU-Direct-Storage restore (bounded by the same
	// two-sided transfer for BeeGFS and the NVMe read path for ext4).
	GDSRestoreBW = 2.25 * GB
	// RestoreReconstruct is the fixed model-reconstruction overhead of
	// deserializing a checkpoint container during restore.
	RestoreReconstruct = 4 * time.Millisecond
	// RestorePerTensor is the per-tensor reconstruction cost (object
	// allocation, shape checks) during baseline restore.
	RestorePerTensor = 130 * time.Microsecond
)

// DefaultChunk is the chunk size used for pipelined multi-stage
// transfers in the simulated datapath.
const DefaultChunk = 4 * MiB

// Pipelined datapath engine defaults (internal/datapath).
const (
	// DefaultPipelineDepth is the number of chunks allowed in flight
	// between the pull and flush stages. Depth 1 degenerates to the
	// strictly sequential pull-everything-then-flush datapath.
	DefaultPipelineDepth = 1
	// DefaultLanes is the number of queue pairs a transfer stripes
	// chunks across.
	DefaultLanes = 1
	// MinChunk is the smallest chunk the planner will split a tensor
	// into; below this the per-verb issue cost dominates any overlap
	// gain.
	MinChunk = 256 * KiB
)
