package telemetry_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/telemetry"
)

// TestTraceRingConcurrentAddSnapshotOnComplete hammers the ring from
// writer, reader, and subscriber goroutines at once; run under -race
// this is the S3 concurrency check.
func TestTraceRingConcurrentAddSnapshotOnComplete(t *testing.T) {
	ring := telemetry.NewTraceRing(16)
	var completed atomic.Int64
	ring.OnComplete(func(*telemetry.Trace) { completed.Add(1) })

	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := telemetry.NewTrace("checkpoint", "m", uint64(w*perWriter+i), 0)
				tr.ID = telemetry.NewTraceID()
				tr.Finish(time.Duration(i))
				ring.Add(tr)
				if i%7 == 0 {
					// Late OnComplete registration must be safe mid-stream.
					ring.OnComplete(func(*telemetry.Trace) {})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			for _, tr := range ring.Snapshot() {
				// Snapshot traces are safe to read while writers run.
				_ = tr.Duration
				_ = tr.Root.Dur()
			}
		}
	}()
	wg.Wait()
	<-done
	if got := completed.Load(); got < writers*perWriter {
		t.Fatalf("first OnComplete handler saw %d traces, want >= %d", got, writers*perWriter)
	}
	if ring.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", ring.Total(), writers*perWriter)
	}
}

// TestTraceRingWraparoundNewestFirstAcrossSeam adds 2.5x capacity and
// checks the snapshot order crosses the ring seam correctly.
func TestTraceRingWraparoundNewestFirstAcrossSeam(t *testing.T) {
	const cap = 4
	ring := telemetry.NewTraceRing(cap)
	for i := 0; i < 10; i++ {
		tr := telemetry.NewTrace("checkpoint", "m", uint64(i), 0)
		tr.Finish(time.Duration(i))
		ring.Add(tr)
	}
	snap := ring.Snapshot()
	if len(snap) != cap {
		t.Fatalf("snapshot len = %d, want %d", len(snap), cap)
	}
	for i := 0; i < cap; i++ {
		if want := uint64(9 - i); snap[i].Iteration != want {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, snap[i].Iteration, want)
		}
	}
}

func TestTraceRingFindByID(t *testing.T) {
	ring := telemetry.NewTraceRing(4)
	id := telemetry.NewTraceID()
	tr := telemetry.NewTrace("checkpoint", "m", 1, 0)
	tr.ID = id
	tr.Finish(time.Millisecond)
	ring.Add(tr)
	if got := ring.Find(id); got != tr {
		t.Fatalf("Find(%s) = %v, want the added trace", id, got)
	}
	if got := ring.Find(telemetry.NewTraceID()); got != nil {
		t.Fatalf("Find(unknown) = %v, want nil", got)
	}
	if got := ring.Find(0); got != nil {
		t.Fatal("Find(0) must not match untraced entries")
	}
}

// TestTraceRingStitchGraftsUnderParentSpan is the stitching contract:
// the daemon tree ends up under the client span named by ParentSpan,
// the ring slot is replaced, and previously published snapshots are
// untouched (traces are immutable once added).
func TestTraceRingStitchGraftsUnderParentSpan(t *testing.T) {
	ring := telemetry.NewTraceRing(4)
	id := telemetry.NewTraceID()

	daemonTr := telemetry.NewTrace("checkpoint", "m", 3, 10)
	daemonTr.ID = id
	daemonTr.ParentSpan = telemetry.NextSpanID()
	daemonTr.Bytes = 4096
	daemonTr.Finish(40)
	ring.Add(daemonTr)
	before := ring.Snapshot()

	clientRoot := &telemetry.Span{Name: "client:checkpoint", Start: 0}
	send := clientRoot.Child("send", 0)
	send.EndAt(10)
	await := clientRoot.Child("await", 10)
	await.ID = daemonTr.ParentSpan
	await.EndAt(50)
	clientRoot.EndAt(50)

	stitched := ring.Stitch(id, clientRoot)
	if stitched == nil {
		t.Fatal("Stitch returned nil for a known id")
	}
	if !stitched.Stitched || stitched.ID != id {
		t.Fatalf("stitched = %+v", stitched)
	}
	if stitched.Root != clientRoot || stitched.Duration != 50 {
		t.Fatalf("stitched root/duration = %v/%v", stitched.Root.Name, stitched.Duration)
	}
	// Daemon subtree grafted under the await span, not the root.
	if len(await.Children) != 1 || await.Children[0] != daemonTr.Root {
		t.Fatalf("await children = %+v, want the daemon root", await.Children)
	}
	// Identity metadata carried over from the daemon trace.
	if stitched.Bytes != 4096 || stitched.Iteration != 3 || stitched.Kind != "checkpoint" {
		t.Fatalf("stitched metadata = %+v", stitched)
	}
	// Ring now serves the stitched trace; the old snapshot still holds
	// the original object.
	after := ring.Snapshot()
	if after[0] != stitched {
		t.Fatal("ring slot not replaced with the stitched trace")
	}
	if before[0] != daemonTr {
		t.Fatal("pre-stitch snapshot must keep pointing at the original trace")
	}

	// A second report for the same id must not double-stitch.
	if again := ring.Stitch(id, clientRoot); again != nil {
		t.Fatalf("second Stitch = %v, want nil", again)
	}
}

func TestTraceRingStitchUnknownParentFallsBackToRoot(t *testing.T) {
	ring := telemetry.NewTraceRing(2)
	id := telemetry.NewTraceID()
	daemonTr := telemetry.NewTrace("checkpoint", "m", 1, 0)
	daemonTr.ID = id
	daemonTr.ParentSpan = 0xdeadbeef // never minted client-side
	daemonTr.Finish(10)
	ring.Add(daemonTr)

	clientRoot := &telemetry.Span{Name: "client:checkpoint"}
	clientRoot.EndAt(12)
	if st := ring.Stitch(id, clientRoot); st == nil {
		t.Fatal("Stitch must succeed even when the parent span is missing")
	}
	if len(clientRoot.Children) != 1 || clientRoot.Children[0] != daemonTr.Root {
		t.Fatal("daemon tree must graft under the client root as a fallback")
	}
}

func TestTraceRingStitchMisses(t *testing.T) {
	ring := telemetry.NewTraceRing(2)
	root := &telemetry.Span{Name: "client:checkpoint"}
	if ring.Stitch(telemetry.NewTraceID(), root) != nil {
		t.Fatal("Stitch on an empty ring must return nil")
	}
	if ring.Stitch(0, root) != nil {
		t.Fatal("Stitch of the zero id must return nil")
	}
	var nilRing *telemetry.TraceRing
	if nilRing.Stitch(telemetry.NewTraceID(), root) != nil {
		t.Fatal("Stitch on a nil ring must return nil")
	}
}

func TestTraceIDMarshalRoundTrip(t *testing.T) {
	id := telemetry.TraceID(0xabcdef)
	text, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(text) != "0000000000abcdef" {
		t.Fatalf("marshal = %q", text)
	}
	var back telemetry.TraceID
	if err := back.UnmarshalText(text); err != nil || back != id {
		t.Fatalf("round trip = %v, %v", back, err)
	}
	var zero telemetry.TraceID
	if err := zero.UnmarshalText([]byte("untraced")); err != nil || zero != 0 {
		t.Fatalf("untraced = %v, %v", zero, err)
	}
	if telemetry.TraceID(0).String() != "untraced" {
		t.Fatalf("zero id renders as %q", telemetry.TraceID(0).String())
	}
}
