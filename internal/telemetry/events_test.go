package telemetry_test

import (
	"sync"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/telemetry"
)

func TestEventRingSeqAndNewestFirst(t *testing.T) {
	ring := telemetry.NewEventRing(4)
	for i := 0; i < 3; i++ {
		ring.Emit(telemetry.Event{Kind: telemetry.EvSchedAdmit, Iteration: uint64(i)})
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, wantIter := range []uint64{2, 1, 0} {
		if snap[i].Iteration != wantIter {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, snap[i].Iteration, wantIter)
		}
	}
	// Seq is assigned by the ring, monotonically from 1.
	if snap[2].Seq != 1 || snap[0].Seq != 3 {
		t.Fatalf("seqs = [%d %d %d], want [3 2 1]", snap[0].Seq, snap[1].Seq, snap[2].Seq)
	}
}

func TestEventRingWraparound(t *testing.T) {
	ring := telemetry.NewEventRing(3)
	for i := 0; i < 7; i++ {
		ring.Emit(telemetry.Event{Kind: telemetry.EvDatapathRetry, Iteration: uint64(i)})
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Newest-first across the ring seam.
	for i, wantIter := range []uint64{6, 5, 4} {
		if snap[i].Iteration != wantIter {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, snap[i].Iteration, wantIter)
		}
	}
	if ring.Total() != 7 {
		t.Fatalf("Total = %d, want 7", ring.Total())
	}
}

func TestEventRingWindowOldestFirst(t *testing.T) {
	ring := telemetry.NewEventRing(8)
	for i := 0; i < 5; i++ {
		ring.Emit(telemetry.Event{
			Kind: telemetry.EvSchedBusy,
			Time: time.Duration(i) * time.Millisecond, Iteration: uint64(i),
		})
	}
	win := ring.Window(2 * time.Millisecond)
	if len(win) != 3 {
		t.Fatalf("window len = %d, want 3", len(win))
	}
	// Oldest-first within the window, so it reads as a timeline.
	for i, wantIter := range []uint64{2, 3, 4} {
		if win[i].Iteration != wantIter {
			t.Fatalf("window[%d].Iteration = %d, want %d", i, win[i].Iteration, wantIter)
		}
	}
}

func TestNilEventRingIsNoOp(t *testing.T) {
	var ring *telemetry.EventRing
	ring.Emit(telemetry.Event{Kind: telemetry.EvFaultInject})
	if ring.Snapshot() != nil || ring.Window(0) != nil || ring.Total() != 0 {
		t.Fatal("nil ring must read as empty")
	}
}

func TestEventRingConcurrentEmitSnapshot(t *testing.T) {
	ring := telemetry.NewEventRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ring.Emit(telemetry.Event{Kind: telemetry.EvSchedAdmit, Iteration: uint64(g)})
				if i%10 == 0 {
					_ = ring.Snapshot()
					_ = ring.Window(0)
				}
			}
		}(g)
	}
	wg.Wait()
	if ring.Total() != 8*200 {
		t.Fatalf("Total = %d, want %d", ring.Total(), 8*200)
	}
	snap := ring.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq >= snap[i-1].Seq {
			t.Fatalf("snapshot not strictly newest-first at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestWatchdogWithinBudgetIsFree(t *testing.T) {
	events := telemetry.NewEventRing(8)
	slow := telemetry.NewRegistry().Counter("slow", "")
	wd := telemetry.NewWatchdog(100*time.Millisecond, events, slow)
	tr := telemetry.NewTrace("checkpoint", "m", 1, 0)
	tr.Finish(50 * time.Millisecond)
	wd.Observe(tr)
	if slow.Value() != 0 || len(wd.Incidents()) != 0 || events.Total() != 0 {
		t.Fatal("within-budget transfer must not trip the watchdog")
	}
}

func TestWatchdogCapturesSlowTransfer(t *testing.T) {
	events := telemetry.NewEventRing(8)
	slow := telemetry.NewRegistry().Counter("slow", "")
	wd := telemetry.NewWatchdog(10*time.Millisecond, events, slow)

	// Context the transfer ran in: events inside its lifetime land in the
	// captured window, older ones don't.
	events.Emit(telemetry.Event{Kind: telemetry.EvSchedAdmit, Time: 1 * time.Millisecond})
	events.Emit(telemetry.Event{Kind: telemetry.EvDatapathRetry, Time: 25 * time.Millisecond})

	tr := telemetry.NewTrace("checkpoint", "m", 7, 20*time.Millisecond)
	tr.Finish(50 * time.Millisecond)
	wd.Observe(tr)

	if slow.Value() != 1 {
		t.Fatalf("slow counter = %v, want 1", slow.Value())
	}
	incidents := wd.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incidents))
	}
	inc := incidents[0]
	if inc.Trace != tr {
		t.Fatal("incident must capture the offending trace")
	}
	// The window covers the transfer's lifetime but excludes the
	// admit event from before it started — and excludes the
	// watchdog's own marker, which is emitted after capture.
	if len(inc.Events) != 1 || inc.Events[0].Kind != telemetry.EvDatapathRetry {
		t.Fatalf("incident window = %+v, want just the in-flight retry", inc.Events)
	}
	snap := events.Snapshot()
	if snap[0].Kind != telemetry.EvWatchdogSlow {
		t.Fatalf("newest event = %s, want %s", snap[0].Kind, telemetry.EvWatchdogSlow)
	}
}

func TestWatchdogDisabledAndNilSafe(t *testing.T) {
	wd := telemetry.NewWatchdog(0, nil, nil)
	tr := telemetry.NewTrace("checkpoint", "m", 1, 0)
	tr.Finish(time.Hour)
	wd.Observe(tr) // budget 0: disabled, must not panic on nil ring/counter
	if len(wd.Incidents()) != 0 {
		t.Fatal("disabled watchdog must not record incidents")
	}
	if wd.Budget() != 0 {
		t.Fatalf("Budget = %v, want 0", wd.Budget())
	}
}
