package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteWaterfall renders a trace's span tree as a text waterfall:
// indented span names, offset and duration columns, and a proportional
// bar showing where each span sits inside the root's window. portusctl
// uses it for `portusctl trace <model>`.
func WriteWaterfall(w io.Writer, t *Trace) {
	if t == nil || t.Root == nil {
		fmt.Fprintln(w, "(no trace)")
		return
	}
	header := fmt.Sprintf("%s %s iter=%d bytes=%d dur=%s", t.Kind, t.Model, t.Iteration, t.Bytes, t.Duration)
	if t.ID != 0 {
		header += " trace=" + t.ID.String()
	}
	if t.Stitched {
		header += " (stitched)"
	}
	if t.Err != "" {
		header += " err=" + t.Err
	}
	fmt.Fprintln(w, header)

	// Column widths: name column sized to the deepest indented name.
	nameW := 0
	t.Root.Walk(func(s *Span) {
		if n := len(spanLabel(s)) + 2*spanDepth(t.Root, s); n > nameW {
			nameW = n
		}
	})
	if nameW < 12 {
		nameW = 12
	}

	const barW = 40
	total := t.Root.Dur()
	if total <= 0 {
		total = 1
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		name := strings.Repeat("  ", depth) + spanLabel(s)
		off := s.Start - t.Root.Start
		bar := renderBar(off, s.Dur(), total, barW)
		fmt.Fprintf(w, "%-*s %10s %10s  |%s|\n", nameW, name, fmtDur(off), fmtDur(s.Dur()), bar)
		children := append([]*Span(nil), s.Children...)
		sort.SliceStable(children, func(i, j int) bool { return children[i].Start < children[j].Start })
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
}

func spanLabel(s *Span) string {
	if bytes, ok := s.Attrs["bytes"]; ok {
		return s.Name + " (" + bytes + "B)"
	}
	return s.Name
}

func spanDepth(root, target *Span) int {
	depth := -1
	var walk func(s *Span, d int)
	walk = func(s *Span, d int) {
		if s == target {
			depth = d
			return
		}
		for _, c := range s.Children {
			walk(c, d+1)
		}
	}
	walk(root, 0)
	if depth < 0 {
		return 0
	}
	return depth
}

func renderBar(off, dur, total time.Duration, width int) string {
	start := int(float64(off) / float64(total) * float64(width))
	n := int(float64(dur) / float64(total) * float64(width))
	if start < 0 {
		start = 0
	}
	if start > width {
		start = width
	}
	if n < 1 && dur > 0 {
		n = 1
	}
	if start+n > width {
		n = width - start
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat(" ", start) + strings.Repeat("=", n) + strings.Repeat(" ", width-start-n)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/1e3)
	}
}
