package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value exactly at a bound lands in that bucket.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []uint64{2, 4, 6, 7} // le=1: {0.5,1}, le=2: +{1.5,2}, le=4: +{3,4}, +Inf: +{9}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+9; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	cases := []struct{ q, want float64 }{
		{0.25, 10},
		{0.5, 20},
		{0.99, 39.6},
		{1.0, 40},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 0.5 {
			t.Errorf("Quantile(%v) = %v, want ≈%v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Everything beyond the last finite bound clamps to it.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("Sum after ObserveDuration = %v, want 0.25", got)
	}
}

func TestNilMetricHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestQuantileFromBucketsMatchesHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.004, 0.05, 0.05, 0.5} {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		direct := h.Quantile(q)
		fromBuckets := QuantileFromBuckets(h.Bounds(), h.Cumulative(), q)
		if math.Abs(direct-fromBuckets) > 1e-12 {
			t.Fatalf("q=%v: direct %v != from-buckets %v", q, direct, fromBuckets)
		}
	}
}

func TestDefLatencyBucketsIncreasing(t *testing.T) {
	b := DefLatencyBuckets()
	if len(b) < 10 {
		t.Fatalf("too few default buckets: %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v", i, b)
		}
	}
}
