package telemetry_test

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
)

// TestSpanNestingUnderSimClock builds a span tree from a simulated
// process's virtual clock and checks stage durations are exact.
func TestSpanNestingUnderSimClock(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		tr := telemetry.NewTrace("checkpoint", "bert", 7, env.Now())
		wait := tr.Root.Child("enqueue-wait", env.Now())
		env.Sleep(3 * time.Millisecond)
		wait.EndAt(env.Now())

		pull := tr.Root.Child("pull", env.Now())
		for i := 0; i < 2; i++ {
			sp := pull.Child("pull:tensor", env.Now())
			env.Sleep(5 * time.Millisecond)
			sp.EndAt(env.Now())
		}
		pull.EndAt(env.Now())

		flush := tr.Root.Child("flush", env.Now())
		env.Sleep(2 * time.Millisecond)
		flush.EndAt(env.Now())
		tr.Finish(env.Now())

		if tr.Duration != 15*time.Millisecond {
			t.Errorf("trace duration = %v, want 15ms", tr.Duration)
		}
		if got := wait.Dur(); got != 3*time.Millisecond {
			t.Errorf("enqueue-wait = %v, want 3ms", got)
		}
		if got := pull.Dur(); got != 10*time.Millisecond {
			t.Errorf("pull = %v, want 10ms", got)
		}
		if len(pull.Children) != 2 {
			t.Errorf("pull children = %d, want 2", len(pull.Children))
		}
		// Children must sum to the root duration (contiguous stages).
		var sum time.Duration
		for _, c := range tr.Root.Children {
			sum += c.Dur()
		}
		if sum != tr.Duration {
			t.Errorf("stage sum %v != trace duration %v", sum, tr.Duration)
		}
		if tr.Root.Find("flush") != flush {
			t.Error("Find(flush) did not locate the span")
		}
		if tr.Root.Find("nope") != nil {
			t.Error("Find of missing span must be nil")
		}
	})
	eng.Run()
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	ring := telemetry.NewTraceRing(3)
	for i := 0; i < 5; i++ {
		tr := telemetry.NewTrace("checkpoint", "m", uint64(i), 0)
		tr.Finish(time.Duration(i))
		ring.Add(tr)
	}
	snap := ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, wantIter := range []uint64{4, 3, 2} { // newest first
		if snap[i].Iteration != wantIter {
			t.Fatalf("snapshot[%d].Iteration = %d, want %d", i, snap[i].Iteration, wantIter)
		}
	}
	if ring.Total() != 5 {
		t.Fatalf("Total = %d, want 5", ring.Total())
	}
}

func TestTraceRingOnComplete(t *testing.T) {
	ring := telemetry.NewTraceRing(2)
	var seen []uint64
	ring.OnComplete(func(tr *telemetry.Trace) { seen = append(seen, tr.Iteration) })
	for i := 0; i < 3; i++ {
		ring.Add(telemetry.NewTrace("restore", "m", uint64(i), 0))
	}
	if len(seen) != 3 || seen[0] != 0 || seen[2] != 2 {
		t.Fatalf("OnComplete saw %v, want [0 1 2]", seen)
	}
}

func TestNilTraceRingIsNoOp(t *testing.T) {
	var ring *telemetry.TraceRing
	ring.Add(telemetry.NewTrace("checkpoint", "m", 0, 0))
	ring.OnComplete(func(*telemetry.Trace) {})
	if ring.Snapshot() != nil || ring.Total() != 0 {
		t.Fatal("nil ring must read as empty")
	}
}

func TestSpanAttrs(t *testing.T) {
	sp := &telemetry.Span{Name: "pull"}
	sp.SetAttr("bytes", "4096")
	if sp.Attrs["bytes"] != "4096" {
		t.Fatalf("attrs = %v", sp.Attrs)
	}
}
