package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/telemetry"
)

func newAdminServer(t *testing.T) (*httptest.Server, *telemetry.Registry, *telemetry.TraceRing) {
	t.Helper()
	reg := telemetry.NewRegistry()
	ring := telemetry.NewTraceRing(8)
	srv := httptest.NewServer(telemetry.Handler(reg, ring))
	t.Cleanup(srv.Close)
	return srv, reg, ring
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpointExpositionFormat(t *testing.T) {
	srv, reg, _ := newAdminServer(t)
	reg.Counter("portus_daemon_checkpoints_total", "completed checkpoints").Add(5)
	reg.Histogram("portus_checkpoint_seconds", "latency", []float64{0.1, 1}).Observe(0.2)

	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	samples, err := telemetry.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, body)
	}
	found := false
	for _, s := range samples {
		if s.Name == "portus_daemon_checkpoints_total" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter not in exposition:\n%s", body)
	}
	if _, ok := telemetry.HistogramQuantile(samples, "portus_checkpoint_seconds", 0.5); !ok {
		t.Fatalf("histogram not scrapeable:\n%s", body)
	}
}

func TestTracesEndpointJSON(t *testing.T) {
	srv, _, ring := newAdminServer(t)
	tr := telemetry.NewTrace("checkpoint", "bert", 3, 0)
	sp := tr.Root.Child("pull", 0)
	sp.EndAt(2 * time.Millisecond)
	tr.Bytes = 1 << 20
	tr.Finish(3 * time.Millisecond)
	ring.Add(tr)

	code, body, hdr := get(t, srv.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var traces []*telemetry.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces did not decode: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Model != "bert" || traces[0].Iteration != 3 {
		t.Fatalf("traces = %+v", traces)
	}
	if len(traces[0].Root.Children) != 1 || traces[0].Root.Children[0].Name != "pull" {
		t.Fatalf("span tree lost in JSON: %+v", traces[0].Root)
	}
}

func TestTracesEndpointEmptyIsArray(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	_, body, _ := get(t, srv.URL+"/debug/traces")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty traces body = %q, want []", body)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestEventsEndpointJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewTraceRing(8)
	events := telemetry.NewEventRing(8)
	slow := reg.Counter("portus_slow_transfers_total", "")
	wd := telemetry.NewWatchdog(10*time.Millisecond, events, slow)
	ring.OnComplete(wd.Observe)
	srv := httptest.NewServer(telemetry.AdminHandler(reg, ring, events, wd))
	t.Cleanup(srv.Close)

	events.Emit(telemetry.Event{Kind: telemetry.EvSchedAdmit, Model: "m", Time: time.Millisecond})
	tr := telemetry.NewTrace("checkpoint", "m", 1, 0)
	tr.Finish(time.Second) // over budget: captured by the watchdog
	ring.Add(tr)

	code, body, hdr := get(t, srv.URL+"/debug/events")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("code=%d content-type=%q", code, hdr.Get("Content-Type"))
	}
	var doc struct {
		Budget   string            `json:"watchdog_budget"`
		Events   []telemetry.Event `json:"events"`
		Slow     []json.RawMessage `json:"slow_transfers"`
		Emitted  uint64            `json:"events_total"`
		Retained int               `json:"events_retained"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("events doc does not parse: %v\n%s", err, body)
	}
	if doc.Budget != "10ms" {
		t.Fatalf("budget = %q, want 10ms", doc.Budget)
	}
	if len(doc.Slow) != 1 {
		t.Fatalf("slow incidents = %d, want 1", len(doc.Slow))
	}
	// Admit event + the watchdog marker, newest first.
	if len(doc.Events) != 2 || doc.Events[0].Kind != telemetry.EvWatchdogSlow {
		t.Fatalf("events = %+v", doc.Events)
	}
	if doc.Emitted != 2 || doc.Retained != 2 {
		t.Fatalf("emitted/retained = %d/%d, want 2/2", doc.Emitted, doc.Retained)
	}
}

func TestEventsEndpointNilSafe(t *testing.T) {
	srv, _, _ := newAdminServer(t) // Handler(): no events ring, no watchdog
	code, body, _ := get(t, srv.URL+"/debug/events")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(body, `"events": []`) || !strings.Contains(body, `"slow_transfers": []`) {
		t.Fatalf("nil rings must serve empty arrays, got:\n%s", body)
	}
}

func TestTracesEndpointFiltersByID(t *testing.T) {
	srv, _, ring := newAdminServer(t)
	a := telemetry.NewTrace("checkpoint", "m", 1, 0)
	a.ID = telemetry.NewTraceID()
	a.Finish(time.Millisecond)
	b := telemetry.NewTrace("checkpoint", "m", 2, 0)
	b.ID = telemetry.NewTraceID()
	b.Finish(time.Millisecond)
	ring.Add(a)
	ring.Add(b)

	code, body, _ := get(t, srv.URL+"/debug/traces?id="+a.ID.String())
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	var traces []*telemetry.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Iteration != 1 {
		t.Fatalf("id filter returned %+v", traces)
	}
	if code, _, _ := get(t, srv.URL+"/debug/traces?id=zzz"); code != http.StatusBadRequest {
		t.Fatalf("malformed id: code = %d, want 400", code)
	}
}

func TestPprofEndpointServes(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	code, body, _ := get(t, srv.URL+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine: code=%d body=%.80q", code, body)
	}
}

func TestRuntimeMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"portus_go_goroutines",
		"portus_go_heap_alloc_bytes",
		"portus_go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
}
