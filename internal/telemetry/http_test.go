package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/telemetry"
)

func newAdminServer(t *testing.T) (*httptest.Server, *telemetry.Registry, *telemetry.TraceRing) {
	t.Helper()
	reg := telemetry.NewRegistry()
	ring := telemetry.NewTraceRing(8)
	srv := httptest.NewServer(telemetry.Handler(reg, ring))
	t.Cleanup(srv.Close)
	return srv, reg, ring
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpointExpositionFormat(t *testing.T) {
	srv, reg, _ := newAdminServer(t)
	reg.Counter("portus_daemon_checkpoints_total", "completed checkpoints").Add(5)
	reg.Histogram("portus_checkpoint_seconds", "latency", []float64{0.1, 1}).Observe(0.2)

	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	samples, err := telemetry.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, body)
	}
	found := false
	for _, s := range samples {
		if s.Name == "portus_daemon_checkpoints_total" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter not in exposition:\n%s", body)
	}
	if _, ok := telemetry.HistogramQuantile(samples, "portus_checkpoint_seconds", 0.5); !ok {
		t.Fatalf("histogram not scrapeable:\n%s", body)
	}
}

func TestTracesEndpointJSON(t *testing.T) {
	srv, _, ring := newAdminServer(t)
	tr := telemetry.NewTrace("checkpoint", "bert", 3, 0)
	sp := tr.Root.Child("pull", 0)
	sp.EndAt(2 * time.Millisecond)
	tr.Bytes = 1 << 20
	tr.Finish(3 * time.Millisecond)
	ring.Add(tr)

	code, body, hdr := get(t, srv.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var traces []*telemetry.Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces did not decode: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].Model != "bert" || traces[0].Iteration != 3 {
		t.Fatalf("traces = %+v", traces)
	}
	if len(traces[0].Root.Children) != 1 || traces[0].Root.Children[0].Name != "pull" {
		t.Fatalf("span tree lost in JSON: %+v", traces[0].Root)
	}
}

func TestTracesEndpointEmptyIsArray(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	_, body, _ := get(t, srv.URL+"/debug/traces")
	if strings.TrimSpace(body) != "[]" {
		t.Fatalf("empty traces body = %q, want []", body)
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newAdminServer(t)
	code, body, _ := get(t, srv.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}
