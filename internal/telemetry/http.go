package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the basic admin surface for a registry + trace ring.
// It is AdminHandler without a flight recorder or watchdog.
func Handler(reg *Registry, traces *TraceRing) http.Handler {
	return AdminHandler(reg, traces, nil, nil)
}

// AdminHandler serves the full admin surface:
//
//	/metrics       Prometheus text exposition format (with exemplar comments)
//	/debug/traces  JSON array of recent span trees, newest first
//	               (?model= and ?id= filter; ?id= takes a hex trace id)
//	/debug/events  flight recorder: recent events + slow-transfer incidents
//	/debug/pprof/  Go runtime profiles (heap, goroutine, profile, trace)
//	/healthz       200 "ok"
//
// Any argument may be nil (the corresponding endpoint serves an empty
// document).
func AdminHandler(reg *Registry, traces *TraceRing, events *EventRing, watchdog *Watchdog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := traces.Snapshot()
		model := r.URL.Query().Get("model")
		var id TraceID
		if q := r.URL.Query().Get("id"); q != "" {
			if err := id.UnmarshalText([]byte(q)); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		out := make([]*Trace, 0, len(snap))
		for _, t := range snap {
			if model != "" && t.Model != model {
				continue
			}
			if id != 0 && t.ID != id {
				continue
			}
			out = append(out, t)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		evs := events.Snapshot()
		if evs == nil {
			evs = []Event{}
		}
		incidents := watchdog.Incidents()
		if incidents == nil {
			incidents = []SlowIncident{}
		}
		doc := struct {
			Budget   string         `json:"watchdog_budget,omitempty"`
			Events   []Event        `json:"events"`
			Slow     []SlowIncident `json:"slow_transfers"`
			Emitted  uint64         `json:"events_total"`
			Retained int            `json:"events_retained"`
		}{
			Events:   evs,
			Slow:     incidents,
			Emitted:  events.Total(),
			Retained: len(evs),
		}
		if b := watchdog.Budget(); b > 0 {
			doc.Budget = b.String()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
