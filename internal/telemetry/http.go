package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the admin surface for a registry + trace ring:
//
//	/metrics       Prometheus text exposition format
//	/debug/traces  JSON array of recent span trees, newest first
//	/healthz       200 "ok"
//
// Either argument may be nil (the corresponding endpoint serves an
// empty document).
func Handler(reg *Registry, traces *TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := traces.Snapshot()
		if snap == nil {
			snap = []*Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
