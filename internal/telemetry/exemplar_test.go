package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// S4: quantile edge cases — empty, single-sample, and all-equal
// histograms must return finite, sane values.
func TestHistogramQuantileSingleAndAllEqual(t *testing.T) {
	single := NewHistogram([]float64{0.1, 1, 10})
	single.Observe(0.05)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := single.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("single-sample Quantile(%v) = %v", q, got)
		}
		if got > 0.1 {
			t.Fatalf("single-sample Quantile(%v) = %v, want <= first bound", q, got)
		}
	}

	equal := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		equal.Observe(1.5)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := equal.Quantile(q)
		if math.IsNaN(got) || got < 1 || got > 2 {
			t.Fatalf("all-equal Quantile(%v) = %v, want within (1, 2]", q, got)
		}
	}

	// Out-of-range q must not panic or go negative on any of them.
	for _, h := range []*Histogram{NewHistogram(nil), single, equal} {
		for _, q := range []float64{-1, 2} {
			if got := h.Quantile(q); math.IsNaN(got) || got < 0 {
				t.Fatalf("Quantile(%v) = %v", q, got)
			}
		}
	}
}

func TestExemplarTracksWorstObservation(t *testing.T) {
	h := NewHistogram(nil)
	if _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram must have no exemplar")
	}
	h.ObserveTraced(0.2, TraceID(2))
	h.ObserveTraced(0.9, TraceID(9))
	h.ObserveTraced(0.5, TraceID(5))
	ex, ok := h.Exemplar()
	if !ok || ex.Trace != TraceID(9) || ex.Value != 0.9 {
		t.Fatalf("exemplar = %+v ok=%v, want the worst traced observation", ex, ok)
	}
	// Untraced observations count toward the histogram but never
	// displace the exemplar, even when slower.
	h.ObserveTraced(5, 0)
	h.Observe(10)
	if ex, _ := h.Exemplar(); ex.Trace != TraceID(9) {
		t.Fatalf("exemplar displaced by untraced observation: %+v", ex)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
}

// S4: the exemplar must stay consistent (a value/trace pair that was
// actually observed, and the maximum of the set) under concurrent
// traced observes; run under -race.
func TestExemplarConcurrentObserves(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				// Value encodes the trace id, so the pair is checkable.
				id := uint64(g*per + i)
				h.ObserveDurationTraced(time.Duration(id)*time.Microsecond, TraceID(id))
			}
		}(g)
	}
	wg.Wait()
	ex, ok := h.Exemplar()
	if !ok {
		t.Fatal("no exemplar after concurrent observes")
	}
	wantID := uint64(goroutines * per)
	if ex.Trace != TraceID(wantID) {
		t.Fatalf("exemplar trace = %s, want %s", ex.Trace, TraceID(wantID))
	}
	if want := (time.Duration(wantID) * time.Microsecond).Seconds(); math.Abs(ex.Value-want) > 1e-12 {
		t.Fatalf("exemplar value = %v, want %v (pair must stay consistent)", ex.Value, want)
	}
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestExemplarInExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_seconds", "demo", nil)
	h.ObserveTraced(0.25, TraceID(0xbeef))
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "# EXEMPLAR demo_seconds 0.25 trace_id=000000000000beef") {
		t.Fatalf("exposition missing exemplar comment:\n%s", out)
	}
	// Exemplar lines are comments: the scrape must still parse.
	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition with exemplars does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
}
