package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies flight-recorder events. Kinds are dotted
// subsystem.verb strings so /debug/events output can be filtered with a
// plain substring match.
type EventKind string

// Flight-recorder event kinds emitted across the daemon.
const (
	EvSchedAdmit      EventKind = "sched.admit"
	EvSchedCoalesce   EventKind = "sched.coalesce"
	EvSchedDedup      EventKind = "sched.dedup"
	EvSchedBusy       EventKind = "sched.busy"
	EvDatapathRetry   EventKind = "datapath.retry"
	EvLaneQuarantine  EventKind = "datapath.quarantine"
	EvLaneRecover     EventKind = "datapath.recover"
	EvStrategyDegrade EventKind = "datapath.degrade"
	EvFaultInject     EventKind = "fault.inject"
	EvClientReconnect EventKind = "client.reconnect"
	EvWatchdogSlow    EventKind = "watchdog.slow"
	// Admin operations: operator-triggered list/archive/delete requests,
	// recorded so portusctl events shows who touched the stored models.
	EvAdminList   EventKind = "admin.list"
	EvAdminDump   EventKind = "admin.dump"
	EvAdminDelete EventKind = "admin.delete"
	// EvAdminLoad records an anti-entropy install of a checkpoint
	// container into PMem (replica rebuild).
	EvAdminLoad EventKind = "admin.load"
	// EvNodeKill records a whole-node fault injection severing a
	// storage node's listener, fabric routes, and worker pool.
	EvNodeKill EventKind = "fault.node-kill"
	// EvStoreReclaim records a reclaim verdict on the admission path: a
	// registration hit a space error and the engine either freed enough
	// to retry or stayed exhausted (Detail says which).
	EvStoreReclaim EventKind = "store.reclaim"
	// EvStoreRepack records a completed online repack pass with its
	// report summary in Detail.
	EvStoreRepack EventKind = "store.repack"
	// EvDeltaPlan records an accepted incremental-checkpoint plan:
	// Detail carries the pull/copy-forward/skip byte split.
	EvDeltaPlan EventKind = "delta.plan"
	// EvDeltaFallback records a checkpoint that requested delta but ran
	// full, with the reason in Detail (no table, layout mismatch,
	// untrusted table, or a plan that would move more than a full pass).
	EvDeltaFallback EventKind = "delta.fallback"
)

// Event is one flight-recorder entry: a typed, timestamped record of a
// scheduling or datapath decision, linked to its trace when the request
// carried one. Times are env.Now() values, comparable with span times.
type Event struct {
	Seq       uint64        `json:"seq"`
	Time      time.Duration `json:"time"`
	Kind      EventKind     `json:"kind"`
	Model     string        `json:"model,omitempty"`
	Iteration uint64        `json:"iteration,omitempty"`
	Trace     TraceID       `json:"trace_id,omitempty"`
	Detail    string        `json:"detail,omitempty"`
}

// EventRing is a bounded, concurrency-safe flight recorder. Writers pay
// one short mutex hold per event; the ring overwrites oldest-first. All
// methods are nil-safe so instrumented code needs no enablement checks.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	seq   uint64
	total uint64
}

// DefEventDepth is the default flight-recorder capacity.
const DefEventDepth = 1024

// NewEventRing creates a ring holding up to capacity events (minimum 1;
// capacity <= 0 selects DefEventDepth).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefEventDepth
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Emit records e, stamping its sequence number.
func (r *EventRing) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns retained events, newest first.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Window returns retained events with Time >= since, oldest first —
// the "surrounding event window" a slow-transfer incident captures.
func (r *EventRing) Window(since time.Duration) []Event {
	snap := r.Snapshot()
	// snap is newest-first; collect matches then reverse.
	var out []Event
	for _, e := range snap {
		if e.Time >= since {
			out = append(out, e)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Total reports how many events have ever been emitted.
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SlowIncident is a watchdog snapshot: the trace that blew the latency
// budget plus the flight-recorder window covering its lifetime.
type SlowIncident struct {
	Budget time.Duration `json:"budget"`
	Trace  *Trace        `json:"trace"`
	Events []Event       `json:"events,omitempty"`
}

// Watchdog watches completed traces and snapshots any transfer whose
// end-to-end duration exceeds the configured budget. Register Observe
// with TraceRing.OnComplete. A zero budget disables the watchdog.
type Watchdog struct {
	budget time.Duration
	events *EventRing
	slow   *Counter

	mu        sync.Mutex
	incidents []SlowIncident
	max       int
}

// NewWatchdog builds a watchdog with the given latency budget, flight
// recorder (may be nil), and slow-transfer counter (may be nil).
func NewWatchdog(budget time.Duration, events *EventRing, slow *Counter) *Watchdog {
	return &Watchdog{budget: budget, events: events, slow: slow, max: 8}
}

// Budget reports the configured latency budget.
func (w *Watchdog) Budget() time.Duration {
	if w == nil {
		return 0
	}
	return w.budget
}

// Observe inspects one completed trace; call it from
// TraceRing.OnComplete. Transfers within budget are free (one compare).
func (w *Watchdog) Observe(t *Trace) {
	if w == nil || w.budget <= 0 || t == nil || t.Duration <= w.budget {
		return
	}
	w.slow.Inc()
	// Capture the window before emitting the slow event so the incident
	// holds only events that preceded (or overlapped) the transfer.
	win := w.events.Window(t.Root.Start)
	w.events.Emit(Event{
		Time:      t.Root.End,
		Kind:      EvWatchdogSlow,
		Model:     t.Model,
		Iteration: t.Iteration,
		Trace:     t.ID,
		Detail:    "duration " + t.Duration.String() + " > budget " + w.budget.String(),
	})
	w.mu.Lock()
	w.incidents = append(w.incidents, SlowIncident{Budget: w.budget, Trace: t, Events: win})
	if len(w.incidents) > w.max {
		w.incidents = w.incidents[len(w.incidents)-w.max:]
	}
	w.mu.Unlock()
}

// Incidents returns retained slow-transfer snapshots, newest first.
func (w *Watchdog) Incidents() []SlowIncident {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SlowIncident, len(w.incidents))
	for i := range w.incidents {
		out[i] = w.incidents[len(w.incidents)-1-i]
	}
	return out
}
