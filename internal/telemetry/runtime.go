package telemetry

import "runtime"

// RegisterRuntimeMetrics exports Go runtime health gauges on reg:
// goroutine count, heap usage, and GC activity. Values are sampled at
// scrape time via runtime.ReadMemStats, so the cost (a brief
// stop-the-world) is paid by the scraper, not the datapath.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("portus_go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	mem := func(pick func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return pick(&ms)
		}
	}
	reg.GaugeFunc("portus_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("portus_go_heap_objects", "Number of allocated heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapObjects) }))
	reg.GaugeFunc("portus_go_sys_bytes", "Bytes of memory obtained from the OS.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.Sys) }))
	reg.CounterFunc("portus_go_gc_cycles_total", "Completed GC cycles.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("portus_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.PauseTotalNs) / 1e9 }))
}
