package telemetry

import (
	"sync"
	"time"
)

// Span is one timed stage of a request, possibly with nested child
// stages. Times are env.Now() values (virtual under the simulation
// engine, elapsed wall-clock otherwise), so durations are exact in both
// runtimes. Spans are built by the single worker that owns the request
// and must not be mutated after the trace is added to a ring.
type Span struct {
	Name     string            `json:"name"`
	Start    time.Duration     `json:"start"`
	End      time.Duration     `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// Child opens a nested span starting at start.
func (s *Span) Child(name string, start time.Duration) *Span {
	c := &Span{Name: name, Start: start}
	s.Children = append(s.Children, c)
	return c
}

// EndAt closes the span at end.
func (s *Span) EndAt(end time.Duration) { s.End = end }

// Dur reports the span's duration.
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// SetAttr attaches a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// Find returns the first child (depth-first, including s itself) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// Trace is one completed request lifecycle: a root span tree plus
// request identity. Kind is "checkpoint" or "restore".
type Trace struct {
	Kind      string        `json:"kind"`
	Model     string        `json:"model"`
	Iteration uint64        `json:"iteration"`
	Bytes     int64         `json:"bytes"`
	Err       string        `json:"error,omitempty"`
	Root      *Span         `json:"root"`
	Duration  time.Duration `json:"duration"`
}

// NewTrace opens a trace whose root span starts at start.
func NewTrace(kind, model string, iteration uint64, start time.Duration) *Trace {
	return &Trace{
		Kind:      kind,
		Model:     model,
		Iteration: iteration,
		Root:      &Span{Name: kind, Start: start},
	}
}

// Finish closes the root span at end and records the total duration.
func (t *Trace) Finish(end time.Duration) {
	t.Root.EndAt(end)
	t.Duration = t.Root.Dur()
}

// TraceRing keeps the last N completed traces and notifies observers as
// traces complete. Safe for concurrent use; traces are immutable once
// added.
type TraceRing struct {
	mu       sync.Mutex
	buf      []*Trace
	next     int
	total    int64
	handlers []func(*Trace)
}

// NewTraceRing creates a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, 0, capacity)}
}

// Add records a completed trace, evicting the oldest when full, then
// invokes completion handlers synchronously (handlers must be fast —
// they run on the datapath worker).
func (r *TraceRing) Add(t *Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	handlers := r.handlers
	r.mu.Unlock()
	for _, h := range handlers {
		h(t)
	}
}

// OnComplete registers fn to run for every subsequently added trace.
func (r *TraceRing) OnComplete(fn func(*Trace)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers = append(r.handlers, fn)
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	// buf[next-1] is the newest once the ring has wrapped; before that,
	// the newest is the last appended element.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Total reports how many traces have ever been added.
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
