package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across processes. The
// client mints it and carries it on every wire message; the daemon
// adopts it so both halves of a checkpoint land in the same trace. The
// zero value means "untraced" — messages from clients that predate
// trace propagation decode with ID 0 and are served normally.
type TraceID uint64

// String renders the ID the way it appears in exemplars and waterfalls.
func (id TraceID) String() string {
	if id == 0 {
		return "untraced"
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// MarshalText renders the hex form for JSON documents.
func (id TraceID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText accepts the hex form (or "untraced"/empty for zero).
func (id *TraceID) UnmarshalText(b []byte) error {
	s := string(b)
	if s == "" || s == "untraced" {
		*id = 0
		return nil
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return fmt.Errorf("telemetry: bad trace id %q: %w", s, err)
	}
	*id = TraceID(v)
	return nil
}

// idCounter feeds NewTraceID and NextSpanID. A process-local counter is
// deterministic under the simulation engine (no entropy source) and
// unique within one process, which is the collision scope that matters:
// in sim mode all actors share the process, and in TCP mode the daemon
// only ever compares IDs minted by one client per connection.
var idCounter atomic.Uint64

// NewTraceID mints a fresh non-zero trace ID.
func NewTraceID() TraceID { return TraceID(idCounter.Add(1)) }

// NextSpanID mints a span ID, unique within the process. Only spans
// that a remote peer must graft under (e.g. the client's await span)
// need IDs; purely local spans may leave ID zero.
func NextSpanID() uint64 { return idCounter.Add(1) }

// Span is one timed stage of a request, possibly with nested child
// stages. Times are env.Now() values (virtual under the simulation
// engine, elapsed wall-clock otherwise), so durations are exact in both
// runtimes. Spans are built by the single worker that owns the request
// and must not be mutated after the trace is added to a ring.
type Span struct {
	ID       uint64            `json:"id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Duration     `json:"start"`
	End      time.Duration     `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// Child opens a nested span starting at start.
func (s *Span) Child(name string, start time.Duration) *Span {
	c := &Span{Name: name, Start: start}
	s.Children = append(s.Children, c)
	return c
}

// EndAt closes the span at end.
func (s *Span) EndAt(end time.Duration) { s.End = end }

// Dur reports the span's duration.
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// SetAttr attaches a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// Find returns the first child (depth-first, including s itself) with
// the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// FindByID returns the first span (depth-first, including s itself)
// with the given non-zero ID, or nil.
func (s *Span) FindByID(id uint64) *Span {
	if id == 0 {
		return nil
	}
	if s.ID == id {
		return s
	}
	for _, c := range s.Children {
		if m := c.FindByID(id); m != nil {
			return m
		}
	}
	return nil
}

// Walk visits s and every descendant depth-first.
func (s *Span) Walk(fn func(*Span)) {
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Trace is one completed request lifecycle: a root span tree plus
// request identity. Kind is "checkpoint" or "restore".
type Trace struct {
	// ID is the client-minted trace ID; zero for untraced requests.
	ID TraceID `json:"trace_id,omitempty"`
	// ParentSpan is the client-side span ID the daemon's root should be
	// grafted under when the client's half of the trace arrives.
	ParentSpan uint64 `json:"parent_span,omitempty"`
	// Stitched marks a trace whose Root already contains both the
	// client- and daemon-side span trees.
	Stitched  bool          `json:"stitched,omitempty"`
	Kind      string        `json:"kind"`
	Model     string        `json:"model"`
	Iteration uint64        `json:"iteration"`
	Bytes     int64         `json:"bytes"`
	Err       string        `json:"error,omitempty"`
	Root      *Span         `json:"root"`
	Duration  time.Duration `json:"duration"`
}

// NewTrace opens a trace whose root span starts at start.
func NewTrace(kind, model string, iteration uint64, start time.Duration) *Trace {
	return &Trace{
		Kind:      kind,
		Model:     model,
		Iteration: iteration,
		Root:      &Span{Name: kind, Start: start},
	}
}

// Finish closes the root span at end and records the total duration.
func (t *Trace) Finish(end time.Duration) {
	t.Root.EndAt(end)
	t.Duration = t.Root.Dur()
}

// TraceRing keeps the last N completed traces and notifies observers as
// traces complete. Safe for concurrent use; traces are immutable once
// added.
type TraceRing struct {
	mu       sync.Mutex
	buf      []*Trace
	next     int
	total    int64
	handlers []func(*Trace)
}

// NewTraceRing creates a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, 0, capacity)}
}

// Add records a completed trace, evicting the oldest when full, then
// invokes completion handlers synchronously (handlers must be fast —
// they run on the datapath worker).
func (r *TraceRing) Add(t *Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	handlers := r.handlers
	r.mu.Unlock()
	for _, h := range handlers {
		h(t)
	}
}

// OnComplete registers fn to run for every subsequently added trace.
func (r *TraceRing) OnComplete(fn func(*Trace)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers = append(r.handlers, fn)
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.buf))
	// buf[next-1] is the newest once the ring has wrapped; before that,
	// the newest is the last appended element.
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Total reports how many traces have ever been added.
func (r *TraceRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Find returns the newest retained trace with the given ID, or nil.
func (r *TraceRing) Find(id TraceID) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	for _, t := range r.Snapshot() {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Stitch grafts a client-side span tree onto the retained daemon trace
// with the given ID, producing the end-to-end view. The daemon root is
// appended under the client span whose ID matches the trace's
// ParentSpan (the client's await span), falling back to the client
// root. Because retained traces are immutable, the ring slot is
// replaced with a new Trace — snapshots taken earlier stay valid. The
// stitched trace's Duration becomes the client root's duration (true
// end-to-end latency). Returns the stitched trace, or nil when no
// retained trace carries the ID.
func (r *TraceRing) Stitch(id TraceID, clientRoot *Span) *Trace {
	if r == nil || id == 0 || clientRoot == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.buf); i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		old := r.buf[idx]
		if old == nil || old.ID != id || old.Stitched {
			continue
		}
		graft := clientRoot
		if p := clientRoot.FindByID(old.ParentSpan); p != nil {
			graft = p
		}
		graft.Children = append(graft.Children, old.Root)
		stitched := &Trace{
			ID:        id,
			Stitched:  true,
			Kind:      old.Kind,
			Model:     old.Model,
			Iteration: old.Iteration,
			Bytes:     old.Bytes,
			Err:       old.Err,
			Root:      clientRoot,
			Duration:  clientRoot.Dur(),
		}
		r.buf[idx] = stitched
		return stitched
	}
	return nil
}
