package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets is the default bucket layout for latency histograms
// (seconds): exponential from 50µs to ~52s, sized for the Portus
// datapath, whose checkpoint latencies span sub-millisecond small
// models to tens of seconds for GPT-22B class pulls.
func DefLatencyBuckets() []float64 {
	bounds := make([]float64, 0, 21)
	for v := 50e-6; v < 60; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations are float64 values (latencies are observed in seconds);
// quantiles are estimated by linear interpolation inside the target
// bucket, as Prometheus's histogram_quantile does.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Uint64
	infCnt  atomic.Uint64 // observations above the last bound
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum

	exMu  sync.Mutex
	ex    Exemplar
	hasEx bool
}

// Exemplar links a histogram's worst observation to the trace that
// produced it, so a bad quantile points straight at its span tree.
type Exemplar struct {
	Value float64 `json:"value"`
	Trace TraceID `json:"trace_id"`
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// NewHistogram builds a standalone histogram (registry-free; tests and
// ad-hoc aggregation).
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records v. Buckets are upper-inclusive (le semantics).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.infCnt.Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveTraced records v and, when id is non-zero and v is the worst
// value seen so far, remembers (v, id) as the histogram's exemplar.
func (h *Histogram) ObserveTraced(v float64, id TraceID) {
	h.Observe(v)
	if h == nil || id == 0 {
		return
	}
	h.exMu.Lock()
	if !h.hasEx || v > h.ex.Value {
		h.ex = Exemplar{Value: v, Trace: id}
		h.hasEx = true
	}
	h.exMu.Unlock()
}

// ObserveDurationTraced records d in seconds with a trace exemplar.
func (h *Histogram) ObserveDurationTraced(d time.Duration, id TraceID) {
	h.ObserveTraced(d.Seconds(), id)
}

// Exemplar returns the trace-linked worst observation, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.ex, h.hasEx
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative bucket counts aligned with
// Bounds(), plus the +Inf total as the final element.
func (h *Histogram) Cumulative() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.bounds)+1)
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	out[len(h.bounds)] = cum + h.infCnt.Load()
	return out
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the target bucket. It
// returns 0 with no observations; observations beyond the last bound
// clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return QuantileFromBuckets(h.bounds, h.Cumulative(), q)
}

// QuantileFromBuckets estimates a quantile from cumulative bucket
// counts: bounds are the finite upper bounds and cum has len(bounds)+1
// entries, the last being the all-observations total (+Inf bucket).
// portusctl uses this to compute p50/p99 from a scraped exposition.
func QuantileFromBuckets(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 || cum[len(cum)-1] == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := cum[len(cum)-1]
	rank := q * float64(total)
	for i, bound := range bounds {
		if float64(cum[i]) < rank {
			continue
		}
		lower, lowerCum := 0.0, uint64(0)
		if i > 0 {
			lower, lowerCum = bounds[i-1], cum[i-1]
		}
		inBucket := cum[i] - lowerCum
		if inBucket == 0 {
			return bound
		}
		frac := (rank - float64(lowerCum)) / float64(inBucket)
		if frac < 0 {
			frac = 0
		}
		return lower + (bound-lower)*frac
	}
	// Rank falls in the +Inf bucket: clamp to the largest finite bound.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) writeSeries(w io.Writer, name, labels string) {
	cum := h.Cumulative()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, fmt.Sprintf("le=%q", formatFloat(bound)))), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(labels, `le="+Inf"`)), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), h.Count())
	// Exemplars ride as comment lines: the classic text format has no
	// exemplar syntax, and ParseText (like any text-format scraper)
	// skips '#' lines, so old consumers are unaffected.
	if ex, ok := h.Exemplar(); ok {
		fmt.Fprintf(w, "# EXEMPLAR %s%s %s trace_id=%s\n", name, braced(labels), formatFloat(ex.Value), ex.Trace)
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
