package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", L("kind", "read"))
	b := r.Counter("ops_total", "ops", L("kind", "read"))
	c := r.Counter("ops_total", "ops", L("kind", "write"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared handle value = %d, want 2", b.Value())
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("portus_checkpoints_total", "completed checkpoints").Add(3)
	r.Gauge("portus_queue_depth", "jobs waiting").Set(2)
	r.CounterFunc("portus_flush_bytes_total", "flushed bytes", func() float64 { return 4096 })
	h := r.Histogram("portus_checkpoint_seconds", "e2e latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP portus_checkpoints_total completed checkpoints",
		"# TYPE portus_checkpoints_total counter",
		"portus_checkpoints_total 3",
		"# TYPE portus_queue_depth gauge",
		"portus_queue_depth 2",
		"portus_flush_bytes_total 4096",
		"# TYPE portus_checkpoint_seconds histogram",
		`portus_checkpoint_seconds_bucket{le="0.1"} 1`,
		`portus_checkpoint_seconds_bucket{le="1"} 2`,
		`portus_checkpoint_seconds_bucket{le="+Inf"} 3`,
		"portus_checkpoint_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "portus_checkpoint_seconds") > strings.Index(out, "portus_queue_depth") {
		t.Error("families not sorted by name")
	}
	// The output must parse back.
	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseText on own output: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "c").Inc()
				r.Gauge("g", "g").Add(1)
				r.Histogram("h_seconds", "h", nil, L("worker", string(rune('a'+g)))).Observe(float64(i) * 1e-4)
				if i%50 == 0 {
					var buf bytes.Buffer
					r.WritePrometheus(&buf)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("h_seconds", "h", nil, L("worker", "a")).Count(); got != 200 {
		t.Fatalf("histogram count = %d, want 200", got)
	}
}

func TestParseTextSamples(t *testing.T) {
	in := `# HELP x help text
# TYPE x counter
x 42
y{a="1",b="two words"} 3.5
z_bucket{le="+Inf"} 7
`
	samples, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	if samples[0].Name != "x" || samples[0].Value != 42 {
		t.Fatalf("sample 0 = %+v", samples[0])
	}
	if samples[1].Labels["b"] != "two words" || samples[1].Value != 3.5 {
		t.Fatalf("sample 1 = %+v", samples[1])
	}
	if samples[2].Labels["le"] != "+Inf" {
		t.Fatalf("sample 2 = %+v", samples[2])
	}
}

func TestHistogramQuantileFromSamples(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "lat", []float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the (0.01, 0.1] bucket
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p50, ok := HistogramQuantile(samples, "lat_seconds", 0.5)
	if !ok {
		t.Fatal("no histogram found in samples")
	}
	if p50 < 0.01 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within (0.01, 0.1]", p50)
	}
	if _, ok := HistogramQuantile(samples, "missing_seconds", 0.5); ok {
		t.Fatal("quantile of missing histogram must report !ok")
	}
}
