// Package telemetry is Portus's dependency-free observability layer: a
// registry of atomic counters, gauges, and fixed-bucket latency
// histograms with quantile estimation, plus lightweight trace spans for
// the checkpoint/restore lifecycle and a ring buffer of recently
// completed traces.
//
// Everything is clock-agnostic: durations are observed as values the
// caller computed from its sim.Env clock, so simulated runs report
// virtual-time latencies and TCP deployments report wall-clock ones
// through the same instruments.
//
// The registry renders in the Prometheus text exposition format (served
// by the daemon's admin endpoint); ParseText reads the same format back,
// which is how portusctl renders live stats tables.
//
// All metric handles are nil-safe: methods on a nil *Counter, *Gauge,
// or *Histogram are no-ops, so instrumented code paths need no "is
// telemetry enabled" branches.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metric is one exported series inside a family.
type metric interface {
	// writeSeries renders the series' sample lines. labels is the
	// pre-rendered label body ("" or `k="v",...`).
	writeSeries(w io.Writer, name, labels string)
}

func (c *Counter) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.Value())
}

func (g *Gauge) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), g.Value())
}

// counterFunc samples an externally owned cumulative value at scrape
// time (e.g. the PMem device's flush counters).
type counterFunc struct {
	fn func() float64
}

func (c counterFunc) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(c.fn()))
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, "+Inf"/"-Inf"/"NaN" spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// family is all series sharing one metric name.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]metric // keyed by rendered label body
	order           []string          // label bodies in registration order
}

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. The zero value is not usable;
// create one with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns (creating if needed) the family for name, checking
// the type is consistent across registrations.
func (r *Registry) getFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

// renderLabels produces the canonical label body: keys sorted, values
// escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// getOrCreate returns the series for labels inside f, creating it with
// mk on first use.
func (f *family) getOrCreate(labels []Label, mk func() metric) metric {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := mk()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// Counter returns the counter for (name, labels), registering it on
// first use. Repeated calls with the same identity return the same
// handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, "counter")
	return f.getOrCreate(labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, "gauge")
	return f.getOrCreate(labels, func() metric { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — for cumulative values owned by another component.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, "counter")
	f.getOrCreate(labels, func() metric { return counterFunc{fn: fn} })
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time — for instantaneous values owned by another component (e.g. the
// scheduler's queue depth).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, "gauge")
	f.getOrCreate(labels, func() metric { return counterFunc{fn: fn} })
}

// Histogram returns the histogram for (name, labels) with the given
// bucket upper bounds (nil = DefLatencyBuckets). Bounds are fixed at
// first registration; later calls reuse the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.getFamily(name, help, "histogram")
	return f.getOrCreate(labels, func() metric { return newHistogram(bounds) }).(*Histogram)
}

// WritePrometheus renders every registered family in the text
// exposition format, families sorted by name, series in registration
// order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			f.series[key].writeSeries(w, f.name, key)
		}
		f.mu.Unlock()
	}
}
