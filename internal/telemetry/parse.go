package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText reads the Prometheus text exposition format (the subset
// WritePrometheus emits: HELP/TYPE comments and simple sample lines).
// portusctl uses it to render live stats tables from /metrics.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else if rest[i] == '{' {
		s.Name = rest[:i]
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		s.Name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	// Drop an optional trailing timestamp.
	if i := strings.IndexByte(tok, ' '); i >= 0 {
		tok = tok[:i]
	}
	switch tok {
	case "+Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	}
	return strconv.ParseFloat(tok, 64)
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label body %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		// Find the closing unescaped quote.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value for %s", key)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return fmt.Errorf("label %s: %w", key, err)
		}
		into[key] = val
		body = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return nil
}

func inf(sign int) float64 { return math.Inf(sign) }

// HistogramQuantile estimates the q-quantile of a scraped histogram
// from its <name>_bucket samples (cumulative le buckets). It returns
// ok=false when no buckets for name exist or the histogram is empty.
func HistogramQuantile(samples []Sample, name string, q float64) (float64, bool) {
	type bkt struct {
		le  float64
		cum uint64
	}
	var bkts []bkt
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		leStr, ok := s.Labels["le"]
		if !ok {
			continue
		}
		var le float64
		if leStr == "+Inf" {
			le = inf(1)
		} else {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = v
		}
		bkts = append(bkts, bkt{le: le, cum: uint64(s.Value)})
	}
	if len(bkts) == 0 {
		return 0, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	var bounds []float64
	var cum []uint64
	for _, b := range bkts {
		if b.le >= inf(1) {
			continue
		}
		bounds = append(bounds, b.le)
		cum = append(cum, b.cum)
	}
	// Append the +Inf total (last sorted bucket).
	cum = append(cum, bkts[len(bkts)-1].cum)
	if cum[len(cum)-1] == 0 {
		return 0, false
	}
	return QuantileFromBuckets(bounds, cum, q), true
}
