// Package memdev provides simulated byte-addressable device memory: the
// state substrate behind the GPU, client DRAM, and persistent-memory
// devices. A device holds either materialized bytes (real data, used by
// correctness tests and the TCP-backed runtime) or virtual content
// stamps (64-bit content fingerprints tracked per region, used by
// large-model benchmarks where allocating tens of gigabytes would be
// wasteful). Stamps propagate through every copy, so end-to-end transfer
// correctness is checkable in both modes.
//
// Devices carry no timing; the datapath layers (rdma, fsim) charge
// modeled costs. All methods are safe for concurrent use.
package memdev

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Kind labels what a device models.
type Kind int

// Device kinds.
const (
	DRAM Kind = iota + 1
	GPU
	PMEM
	NVMe
)

// String returns the conventional name of the device kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "dram"
	case GPU:
		return "gpu"
	case PMEM:
		return "pmem"
	case NVMe:
		return "nvme"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Device is one simulated memory device.
type Device struct {
	name         string
	kind         Kind
	size         int64
	materialized bool

	mu     sync.Mutex
	data   []byte       // materialized mode
	stamps []stampEntry // virtual mode: disjoint stamped regions
	brk    int64        // bump-allocation watermark
}

// stampEntry records that region [off, off+n) holds bytes [srcOff,
// srcOff+n) of a parent content blob of total length srcLen whose
// fingerprint is stamp. A complete entry (srcOff == 0 && srcLen == n)
// holds the whole content; fragments arise when chunked transfers copy
// sub-ranges of a stamped region. Adjacent fragments of the same parent
// coalesce on write, so a chunk-by-chunk copy of a full region
// reassembles into a complete entry on the destination.
type stampEntry struct {
	off, n int64
	stamp  uint64
	srcOff int64
	srcLen int64
}

// complete reports whether the entry holds its parent content in full.
func (e stampEntry) complete() bool { return e.srcOff == 0 && e.srcLen == e.n }

// New creates a device of the given byte size. When materialized is true
// the device allocates real backing bytes; otherwise it tracks content
// stamps only.
func New(name string, kind Kind, size int64, materialized bool) *Device {
	d := &Device{name: name, kind: kind, size: size, materialized: materialized}
	if materialized {
		d.data = make([]byte, size)
	}
	return d
}

// Name returns the device's name.
func (d *Device) Name() string { return d.name }

// Kind returns what the device models.
func (d *Device) Kind() Kind { return d.kind }

// Size returns the device's capacity in bytes.
func (d *Device) Size() int64 { return d.size }

// Materialized reports whether the device holds real bytes.
func (d *Device) Materialized() bool { return d.materialized }

// Alloc reserves n bytes with a simple bump allocator and returns the
// region's base offset. It is sufficient for GPU tensor placement; the
// PMem daemon uses the richer alloc package instead.
func (d *Device) Alloc(n int64) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.brk+n > d.size {
		return 0, fmt.Errorf("memdev: %s: out of memory (%d requested, %d free)", d.name, n, d.size-d.brk)
	}
	off := d.brk
	d.brk += n
	return off, nil
}

// Allocated reports the bump-allocation watermark.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.brk
}

func (d *Device) check(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("memdev: %s: access [%d,%d) outside device of size %d", d.name, off, off+n, d.size))
	}
}

// Write stores p at off. The device must be materialized.
func (d *Device) Write(off int64, p []byte) {
	d.check(off, int64(len(p)))
	if !d.materialized {
		panic("memdev: Write on virtual device; use WriteStamp")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(d.data[off:], p)
}

// Read fills p from off. The device must be materialized.
func (d *Device) Read(off int64, p []byte) {
	d.check(off, int64(len(p)))
	if !d.materialized {
		panic("memdev: Read on virtual device; use StampOf")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(p, d.data[off:off+int64(len(p))])
}

// Bytes returns a copy of the region [off, off+n). The device must be
// materialized.
func (d *Device) Bytes(off, n int64) []byte {
	p := make([]byte, n)
	d.Read(off, p)
	return p
}

// WriteStamp records that region [off, off+n) now holds content with the
// given fingerprint. Valid in both modes; on a materialized device it is
// ignored (the bytes are the truth).
func (d *Device) WriteStamp(off, n int64, stamp uint64) {
	d.check(off, n)
	if d.materialized {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.setStampLocked(off, n, stamp)
}

func (d *Device) setStampLocked(off, n int64, stamp uint64) {
	d.insertLocked(stampEntry{off: off, n: n, stamp: stamp, srcOff: 0, srcLen: n})
}

// WriteStampBatch records many scattered complete regions in one pass —
// the sparse-optimizer write shape, where a training iteration dirties
// thousands of blocks across the device. Regions must be ascending and
// non-overlapping. Equivalent to calling WriteStamp per region, but one
// merge walk over the entry list instead of a splice per write. Ignored
// on a materialized device, like WriteStamp.
func (d *Device) WriteStampBatch(regions []StampRegion) {
	if d.materialized || len(regions) == 0 {
		return
	}
	for i, r := range regions {
		d.check(r.Off, r.N)
		if i > 0 && r.Off < regions[i-1].Off+regions[i-1].N {
			panic("memdev: WriteStampBatch regions not ascending and disjoint")
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]stampEntry, 0, len(d.stamps)+2*len(regions))
	si := 0
	for _, r := range regions {
		end := r.Off + r.N
		// Keep entries entirely before this write.
		for si < len(d.stamps) && d.stamps[si].off+d.stamps[si].n <= r.Off {
			out = append(out, d.stamps[si])
			si++
		}
		// Clip the straddler's left remainder.
		if si < len(d.stamps) && d.stamps[si].off < r.Off {
			left := d.stamps[si]
			left.n = r.Off - left.off
			out = append(out, left)
		}
		out = append(out, stampEntry{off: r.Off, n: r.N, stamp: r.Stamp, srcOff: 0, srcLen: r.N})
		// Drop entries the write covers; clip the right straddler in
		// place so the next write (or the tail copy) sees the remainder.
		for si < len(d.stamps) && d.stamps[si].off+d.stamps[si].n <= end {
			si++
		}
		if si < len(d.stamps) && d.stamps[si].off < end {
			cut := end - d.stamps[si].off
			d.stamps[si].off += cut
			d.stamps[si].srcOff += cut
			d.stamps[si].n -= cut
		}
	}
	out = append(out, d.stamps[si:]...)
	d.stamps = coalesce(out)
}

// searchLocked returns the index of the first entry whose region ends
// after off. Entries are disjoint and sorted by offset, so their end
// offsets are sorted too and the slice is binary-searchable.
func (d *Device) searchLocked(off int64) int {
	return sort.Search(len(d.stamps), func(i int) bool {
		return d.stamps[i].off+d.stamps[i].n > off
	})
}

// insertLocked replaces any entries overlapping e's region with e, then
// coalesces adjacent fragments carrying contiguous pieces of the same
// parent content back into larger fragments (and, eventually, complete
// entries). Entries only partially overlapped by e are clipped, not
// dropped: their surviving ranges stay behind as fragments of the same
// parent, so punching a small write into a large stamped region (a
// sparse optimizer step dirtying one block of a tensor) keeps the rest
// of the region's content identity intact. Delta checkpointing depends
// on this — the clean blocks around a dirty one must fingerprint the
// same before and after a PMem round trip.
func (d *Device) insertLocked(e stampEntry) {
	d.spliceLocked(e.off, e.n, []stampEntry{e})
}

// spliceLocked replaces the window [off, off+n) with run — disjoint
// entries, ascending, tiling the window exactly — clipping the partially
// overlapped boundary entries and re-coalescing only around the splice.
// The entry list is kept sorted and maximally coalesced, so the work is
// O(log n) search + O(overlap) rebuild + a memmove when the list length
// changes; a same-shape overwrite (the steady state of checkpointing
// into a fixed slot) moves nothing.
func (d *Device) spliceLocked(off, n int64, run []stampEntry) {
	end := off + n
	s := d.stamps
	lo := d.searchLocked(off)
	hi := lo
	for hi < len(s) && s[hi].off < end {
		hi++
	}
	// Window to rebuild: one kept neighbor on each side participates in
	// coalescing with the new run.
	wlo, whi := lo, hi
	if wlo > 0 {
		wlo--
	}
	if whi < len(s) {
		whi++
	}
	repl := make([]stampEntry, 0, (lo-wlo)+len(run)+2+(whi-hi))
	repl = append(repl, s[wlo:lo]...)
	if lo < hi && s[lo].off < off { // left remainder survives
		left := s[lo]
		left.n = off - left.off
		repl = append(repl, left)
	}
	repl = append(repl, run...)
	if lo < hi && s[hi-1].off+s[hi-1].n > end { // right remainder survives
		cut := end - s[hi-1].off
		right := s[hi-1]
		right.off += cut
		right.srcOff += cut
		right.n -= cut
		repl = append(repl, right)
	}
	repl = append(repl, s[hi:whi]...)
	d.stamps = spliceEntries(s, wlo, whi, coalesce(repl))
}

// coalesce merges adjacent fragments of the same parent content in a
// sorted run, in place.
func coalesce(run []stampEntry) []stampEntry {
	merged := run[:0]
	for _, o := range run {
		if len(merged) > 0 {
			p := &merged[len(merged)-1]
			if p.off+p.n == o.off && p.stamp == o.stamp &&
				p.srcLen == o.srcLen && p.srcOff+p.n == o.srcOff {
				p.n += o.n
				continue
			}
		}
		merged = append(merged, o)
	}
	return merged
}

// spliceEntries replaces s[lo:hi] with repl, moving the tail only when
// the length changes.
func spliceEntries(s []stampEntry, lo, hi int, repl []stampEntry) []stampEntry {
	delta := len(repl) - (hi - lo)
	switch {
	case delta == 0:
		copy(s[lo:hi], repl)
		return s
	case delta < 0:
		copy(s[lo:], repl)
		copy(s[lo+len(repl):], s[hi:])
		return s[:len(s)+delta]
	default:
		old := len(s)
		s = append(s, make([]stampEntry, delta)...)
		copy(s[hi+delta:], s[hi:old])
		copy(s[lo:], repl)
		return s
	}
}

// fragmentLocked finds the entry wholly containing [off, off+n) and
// returns it as a fragment positioned at that sub-range.
func (d *Device) fragmentLocked(off, n int64) (stampEntry, bool) {
	if i := d.searchLocked(off); i < len(d.stamps) {
		e := d.stamps[i]
		if e.off <= off && off+n <= e.off+e.n {
			return stampEntry{
				off:    off,
				n:      n,
				stamp:  e.stamp,
				srcOff: e.srcOff + (off - e.off),
				srcLen: e.srcLen,
			}, true
		}
	}
	return stampEntry{}, false
}

// fragmentsLocked returns the entries covering [off, off+n) clipped to
// that window, ascending, with uncovered gaps filled by unknown
// (stamp 0) entries so the result tiles the window exactly. Offsets are
// in this device's coordinates; callers re-base them.
func (d *Device) fragmentsLocked(off, n int64) []stampEntry {
	cur, end := off, off+n
	var out []stampEntry
	for i := d.searchLocked(off); i < len(d.stamps); i++ { // sorted by offset
		e := d.stamps[i]
		if e.off >= end {
			break
		}
		c0, c1 := e.off, e.off+e.n
		if c0 < cur {
			c0 = cur
		}
		if c1 > end {
			c1 = end
		}
		if c0 > cur {
			out = append(out, stampEntry{off: cur, n: c0 - cur, srcLen: c0 - cur})
		}
		out = append(out, stampEntry{
			off:    c0,
			n:      c1 - c0,
			stamp:  e.stamp,
			srcOff: e.srcOff + (c0 - e.off),
			srcLen: e.srcLen,
		})
		cur = c1
	}
	if cur < end {
		out = append(out, stampEntry{off: cur, n: end - cur, srcLen: end - cur})
	}
	return out
}

// StampOf returns the content fingerprint of region [off, off+n). On a
// materialized device it hashes the bytes; on a virtual device it returns
// the recorded stamp, or 0 if the region was never written or does not
// exactly match a stamped region.
func (d *Device) StampOf(off, n int64) uint64 {
	d.check(off, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.materialized {
		h := fnv.New64a()
		h.Write(d.data[off : off+n])
		return h.Sum64()
	}
	if i := d.searchLocked(off); i < len(d.stamps) {
		if e := d.stamps[i]; e.off == off && e.n == n && e.complete() {
			return e.stamp
		}
	}
	return 0
}

// Fingerprint returns a content fingerprint of region [off, off+n) that
// is defined in both modes, including fragmented virtual regions where
// StampOf gives up with 0. On a materialized device it hashes the bytes
// (identical to StampOf). On a virtual device a region exactly covered
// by one complete entry returns that entry's raw stamp — again identical
// to StampOf, so whole-region fingerprints stay comparable across both
// APIs — while any other coverage hashes the covering fragment run
// (relative offset, length, stamp, and parent position of each piece,
// gaps included as stamp-0 pieces), so changing any piece's content
// changes the fingerprint. Copies preserve fragment identity, which
// makes Fingerprint stable across chunked transfers and slot-to-slot
// copy-forwards of the same content.
func (d *Device) Fingerprint(off, n int64) uint64 {
	d.check(off, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.materialized {
		h := fnv.New64a()
		h.Write(d.data[off : off+n])
		return h.Sum64()
	}
	if i := d.searchLocked(off); i < len(d.stamps) {
		if e := d.stamps[i]; e.off == off && e.n == n && e.complete() {
			return e.stamp
		}
	}
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for _, f := range d.fragmentsLocked(off, n) {
		put(uint64(f.off - off))
		put(uint64(f.n))
		put(f.stamp)
		put(uint64(f.srcOff))
		put(uint64(f.srcLen))
	}
	return h.Sum64()
}

// Copy moves n bytes from src[srcOff] to dst[dstOff]. Both devices must
// be in the same mode; in materialized mode real bytes are copied, in
// virtual mode the content stamp propagates — including sub-range
// copies of a stamped region, which land as fragments and coalesce back
// into the full region once every chunk has arrived. This is what lets
// chunked datapath transfers and ranged flushes preserve content
// identity on virtual buffers.
func Copy(dst *Device, dstOff int64, src *Device, srcOff, n int64) {
	if dst.materialized != src.materialized {
		panic(fmt.Sprintf("memdev: mixed-mode copy %s -> %s", src.name, dst.name))
	}
	src.check(srcOff, n)
	dst.check(dstOff, n)
	if n == 0 {
		return
	}
	if dst.materialized {
		buf := src.Bytes(srcOff, n)
		dst.Write(dstOff, buf)
		return
	}
	// Collect the covering fragments under the source lock, then splice
	// them into the destination in one pass (they tile [dstOff,
	// dstOff+n) exactly). The locks are held sequentially, never nested,
	// so a self-copy (slot-to-slot copy-forward within one device)
	// cannot deadlock.
	src.mu.Lock()
	frags := src.fragmentsLocked(srcOff, n)
	src.mu.Unlock()
	for i := range frags {
		frags[i].off += dstOff - srcOff
	}
	dst.mu.Lock()
	dst.spliceLocked(dstOff, n, frags)
	dst.mu.Unlock()
}

// Snapshot returns a deep copy of the device's content state (bytes or
// stamps). Used by the pmem package to implement flush/crash semantics.
func (d *Device) Snapshot() *Content {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Content{materialized: d.materialized}
	if d.materialized {
		c.data = append([]byte(nil), d.data...)
	} else {
		c.stamps = append([]stampEntry(nil), d.stamps...)
	}
	return c
}

// Restore replaces the device's content state with a previously taken
// snapshot.
func (d *Device) Restore(c *Content) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.materialized != d.materialized {
		panic("memdev: snapshot mode mismatch")
	}
	if d.materialized {
		copy(d.data, c.data)
	} else {
		d.stamps = append(d.stamps[:0], c.stamps...)
	}
}

// StampRegion describes one stamped region of a virtual device.
type StampRegion struct {
	Off, N int64
	Stamp  uint64
}

// Stamps returns the stamped regions of a virtual device, in no
// particular order. Incomplete fragments (a chunked write interrupted
// mid-region, e.g. by a crash between chunk flushes) are omitted: their
// content is partial and must read back as unknown after an image
// round-trip. On a materialized device it returns nil.
func (d *Device) Stamps() []StampRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.materialized {
		return nil
	}
	out := make([]StampRegion, 0, len(d.stamps))
	for _, e := range d.stamps {
		if e.complete() {
			out = append(out, StampRegion{Off: e.off, N: e.n, Stamp: e.stamp})
		}
	}
	return out
}

// Content is an opaque deep copy of a device's state.
type Content struct {
	materialized bool
	data         []byte
	stamps       []stampEntry
}
