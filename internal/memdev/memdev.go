// Package memdev provides simulated byte-addressable device memory: the
// state substrate behind the GPU, client DRAM, and persistent-memory
// devices. A device holds either materialized bytes (real data, used by
// correctness tests and the TCP-backed runtime) or virtual content
// stamps (64-bit content fingerprints tracked per region, used by
// large-model benchmarks where allocating tens of gigabytes would be
// wasteful). Stamps propagate through every copy, so end-to-end transfer
// correctness is checkable in both modes.
//
// Devices carry no timing; the datapath layers (rdma, fsim) charge
// modeled costs. All methods are safe for concurrent use.
package memdev

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Kind labels what a device models.
type Kind int

// Device kinds.
const (
	DRAM Kind = iota + 1
	GPU
	PMEM
	NVMe
)

// String returns the conventional name of the device kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "dram"
	case GPU:
		return "gpu"
	case PMEM:
		return "pmem"
	case NVMe:
		return "nvme"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Device is one simulated memory device.
type Device struct {
	name         string
	kind         Kind
	size         int64
	materialized bool

	mu     sync.Mutex
	data   []byte       // materialized mode
	stamps []stampEntry // virtual mode: disjoint stamped regions
	brk    int64        // bump-allocation watermark
}

// stampEntry records that region [off, off+n) holds bytes [srcOff,
// srcOff+n) of a parent content blob of total length srcLen whose
// fingerprint is stamp. A complete entry (srcOff == 0 && srcLen == n)
// holds the whole content; fragments arise when chunked transfers copy
// sub-ranges of a stamped region. Adjacent fragments of the same parent
// coalesce on write, so a chunk-by-chunk copy of a full region
// reassembles into a complete entry on the destination.
type stampEntry struct {
	off, n int64
	stamp  uint64
	srcOff int64
	srcLen int64
}

// complete reports whether the entry holds its parent content in full.
func (e stampEntry) complete() bool { return e.srcOff == 0 && e.srcLen == e.n }

// New creates a device of the given byte size. When materialized is true
// the device allocates real backing bytes; otherwise it tracks content
// stamps only.
func New(name string, kind Kind, size int64, materialized bool) *Device {
	d := &Device{name: name, kind: kind, size: size, materialized: materialized}
	if materialized {
		d.data = make([]byte, size)
	}
	return d
}

// Name returns the device's name.
func (d *Device) Name() string { return d.name }

// Kind returns what the device models.
func (d *Device) Kind() Kind { return d.kind }

// Size returns the device's capacity in bytes.
func (d *Device) Size() int64 { return d.size }

// Materialized reports whether the device holds real bytes.
func (d *Device) Materialized() bool { return d.materialized }

// Alloc reserves n bytes with a simple bump allocator and returns the
// region's base offset. It is sufficient for GPU tensor placement; the
// PMem daemon uses the richer alloc package instead.
func (d *Device) Alloc(n int64) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.brk+n > d.size {
		return 0, fmt.Errorf("memdev: %s: out of memory (%d requested, %d free)", d.name, n, d.size-d.brk)
	}
	off := d.brk
	d.brk += n
	return off, nil
}

// Allocated reports the bump-allocation watermark.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.brk
}

func (d *Device) check(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("memdev: %s: access [%d,%d) outside device of size %d", d.name, off, off+n, d.size))
	}
}

// Write stores p at off. The device must be materialized.
func (d *Device) Write(off int64, p []byte) {
	d.check(off, int64(len(p)))
	if !d.materialized {
		panic("memdev: Write on virtual device; use WriteStamp")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(d.data[off:], p)
}

// Read fills p from off. The device must be materialized.
func (d *Device) Read(off int64, p []byte) {
	d.check(off, int64(len(p)))
	if !d.materialized {
		panic("memdev: Read on virtual device; use StampOf")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(p, d.data[off:off+int64(len(p))])
}

// Bytes returns a copy of the region [off, off+n). The device must be
// materialized.
func (d *Device) Bytes(off, n int64) []byte {
	p := make([]byte, n)
	d.Read(off, p)
	return p
}

// WriteStamp records that region [off, off+n) now holds content with the
// given fingerprint. Valid in both modes; on a materialized device it is
// ignored (the bytes are the truth).
func (d *Device) WriteStamp(off, n int64, stamp uint64) {
	d.check(off, n)
	if d.materialized {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.setStampLocked(off, n, stamp)
}

func (d *Device) setStampLocked(off, n int64, stamp uint64) {
	d.insertLocked(stampEntry{off: off, n: n, stamp: stamp, srcOff: 0, srcLen: n})
}

// insertLocked replaces any entries overlapping e's region with e, then
// coalesces adjacent fragments carrying contiguous pieces of the same
// parent content back into larger fragments (and, eventually, complete
// entries).
func (d *Device) insertLocked(e stampEntry) {
	kept := d.stamps[:0]
	for _, o := range d.stamps {
		if o.off+o.n <= e.off || o.off >= e.off+e.n {
			kept = append(kept, o)
		}
	}
	d.stamps = append(kept, e)
	sort.Slice(d.stamps, func(i, j int) bool { return d.stamps[i].off < d.stamps[j].off })
	merged := d.stamps[:0]
	for _, o := range d.stamps {
		if len(merged) > 0 {
			p := &merged[len(merged)-1]
			if p.off+p.n == o.off && p.stamp == o.stamp &&
				p.srcLen == o.srcLen && p.srcOff+p.n == o.srcOff {
				p.n += o.n
				continue
			}
		}
		merged = append(merged, o)
	}
	d.stamps = merged
}

// fragmentLocked finds the entry wholly containing [off, off+n) and
// returns it as a fragment positioned at that sub-range.
func (d *Device) fragmentLocked(off, n int64) (stampEntry, bool) {
	for _, e := range d.stamps {
		if e.off <= off && off+n <= e.off+e.n {
			return stampEntry{
				off:    off,
				n:      n,
				stamp:  e.stamp,
				srcOff: e.srcOff + (off - e.off),
				srcLen: e.srcLen,
			}, true
		}
	}
	return stampEntry{}, false
}

// StampOf returns the content fingerprint of region [off, off+n). On a
// materialized device it hashes the bytes; on a virtual device it returns
// the recorded stamp, or 0 if the region was never written or does not
// exactly match a stamped region.
func (d *Device) StampOf(off, n int64) uint64 {
	d.check(off, n)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.materialized {
		h := fnv.New64a()
		h.Write(d.data[off : off+n])
		return h.Sum64()
	}
	for _, e := range d.stamps {
		if e.off == off && e.n == n && e.complete() {
			return e.stamp
		}
	}
	return 0
}

// Copy moves n bytes from src[srcOff] to dst[dstOff]. Both devices must
// be in the same mode; in materialized mode real bytes are copied, in
// virtual mode the content stamp propagates — including sub-range
// copies of a stamped region, which land as fragments and coalesce back
// into the full region once every chunk has arrived. This is what lets
// chunked datapath transfers and ranged flushes preserve content
// identity on virtual buffers.
func Copy(dst *Device, dstOff int64, src *Device, srcOff, n int64) {
	if dst.materialized != src.materialized {
		panic(fmt.Sprintf("memdev: mixed-mode copy %s -> %s", src.name, dst.name))
	}
	src.check(srcOff, n)
	dst.check(dstOff, n)
	if n == 0 {
		return
	}
	if dst.materialized {
		buf := src.Bytes(srcOff, n)
		dst.Write(dstOff, buf)
		return
	}
	src.mu.Lock()
	frag, ok := src.fragmentLocked(srcOff, n)
	src.mu.Unlock()
	if !ok {
		// The range spans no single stamped region: content unknown.
		frag = stampEntry{stamp: 0, srcOff: 0, srcLen: n}
	}
	frag.off, frag.n = dstOff, n
	dst.mu.Lock()
	dst.insertLocked(frag)
	dst.mu.Unlock()
}

// Snapshot returns a deep copy of the device's content state (bytes or
// stamps). Used by the pmem package to implement flush/crash semantics.
func (d *Device) Snapshot() *Content {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Content{materialized: d.materialized}
	if d.materialized {
		c.data = append([]byte(nil), d.data...)
	} else {
		c.stamps = append([]stampEntry(nil), d.stamps...)
	}
	return c
}

// Restore replaces the device's content state with a previously taken
// snapshot.
func (d *Device) Restore(c *Content) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.materialized != d.materialized {
		panic("memdev: snapshot mode mismatch")
	}
	if d.materialized {
		copy(d.data, c.data)
	} else {
		d.stamps = append(d.stamps[:0], c.stamps...)
	}
}

// StampRegion describes one stamped region of a virtual device.
type StampRegion struct {
	Off, N int64
	Stamp  uint64
}

// Stamps returns the stamped regions of a virtual device, in no
// particular order. Incomplete fragments (a chunked write interrupted
// mid-region, e.g. by a crash between chunk flushes) are omitted: their
// content is partial and must read back as unknown after an image
// round-trip. On a materialized device it returns nil.
func (d *Device) Stamps() []StampRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.materialized {
		return nil
	}
	out := make([]StampRegion, 0, len(d.stamps))
	for _, e := range d.stamps {
		if e.complete() {
			out = append(out, StampRegion{Off: e.off, N: e.n, Stamp: e.stamp})
		}
	}
	return out
}

// Content is an opaque deep copy of a device's state.
type Content struct {
	materialized bool
	data         []byte
	stamps       []stampEntry
}
