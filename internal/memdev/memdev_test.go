package memdev

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMaterializedReadWrite(t *testing.T) {
	d := New("dram0", DRAM, 1024, true)
	msg := []byte("hello, tensors")
	d.Write(100, msg)
	got := d.Bytes(100, int64(len(msg)))
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, want %q", got, msg)
	}
}

func TestMaterializedCopy(t *testing.T) {
	src := New("a", GPU, 256, true)
	dst := New("b", PMEM, 256, true)
	src.Write(0, []byte{1, 2, 3, 4})
	Copy(dst, 10, src, 0, 4)
	if got := dst.Bytes(10, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("copied bytes = %v", got)
	}
}

func TestMaterializedStampMatchesContent(t *testing.T) {
	a := New("a", DRAM, 64, true)
	b := New("b", DRAM, 64, true)
	a.Write(0, []byte("same"))
	b.Write(8, []byte("same"))
	if a.StampOf(0, 4) != b.StampOf(8, 4) {
		t.Fatal("equal content produced different stamps")
	}
	b.Write(8, []byte("diff"))
	if a.StampOf(0, 4) == b.StampOf(8, 4) {
		t.Fatal("different content produced equal stamps")
	}
}

func TestVirtualStampPropagation(t *testing.T) {
	src := New("gpu", GPU, 1<<40, false) // 1 TiB costs nothing
	dst := New("pmem", PMEM, 1<<40, false)
	src.WriteStamp(1<<30, 4<<20, 0xdeadbeef)
	Copy(dst, 2<<30, src, 1<<30, 4<<20)
	if got := dst.StampOf(2<<30, 4<<20); got != 0xdeadbeef {
		t.Fatalf("stamp after copy = %#x, want 0xdeadbeef", got)
	}
}

func TestVirtualOverwriteInvalidates(t *testing.T) {
	d := New("v", DRAM, 1024, false)
	d.WriteStamp(0, 100, 1)
	d.WriteStamp(50, 100, 2) // overlaps the first region
	if got := d.StampOf(0, 100); got != 0 {
		t.Fatalf("stale region stamp = %d, want 0 after overlapping write", got)
	}
	if got := d.StampOf(50, 100); got != 2 {
		t.Fatalf("new region stamp = %d, want 2", got)
	}
}

func TestVirtualUnwrittenRegionIsZero(t *testing.T) {
	d := New("v", DRAM, 1024, false)
	if d.StampOf(10, 10) != 0 {
		t.Fatal("unwritten region has nonzero stamp")
	}
}

func TestMixedModeCopyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed-mode copy did not panic")
		}
	}()
	Copy(New("a", DRAM, 8, true), 0, New("b", DRAM, 8, false), 0, 8)
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New("a", DRAM, 8, true)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds access did not panic")
		}
	}()
	d.Write(4, []byte("too long"))
}

func TestAllocBump(t *testing.T) {
	d := New("gpu", GPU, 100, true)
	a, err := d.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 40 {
		t.Fatalf("alloc offsets = %d, %d; want 0, 40", a, b)
	}
	if d.Allocated() != 100 {
		t.Fatalf("Allocated = %d, want 100", d.Allocated())
	}
	if _, err := d.Alloc(1); err == nil {
		t.Fatal("over-allocation succeeded")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New("pm", PMEM, 64, true)
	d.Write(0, []byte("stable"))
	snap := d.Snapshot()
	d.Write(0, []byte("dirty!"))
	d.Restore(snap)
	if got := d.Bytes(0, 6); !bytes.Equal(got, []byte("stable")) {
		t.Fatalf("after restore: %q", got)
	}
}

func TestSnapshotRestoreVirtual(t *testing.T) {
	d := New("pm", PMEM, 1024, false)
	d.WriteStamp(0, 16, 7)
	snap := d.Snapshot()
	d.WriteStamp(0, 16, 9)
	d.Restore(snap)
	if got := d.StampOf(0, 16); got != 7 {
		t.Fatalf("restored stamp = %d, want 7", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{DRAM: "dram", GPU: "gpu", PMEM: "pmem", NVMe: "nvme"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Property: for any sequence of disjoint stamped writes, every region
// reads back its own stamp.
func TestDisjointStampsProperty(t *testing.T) {
	prop := func(stamps []uint64) bool {
		if len(stamps) > 64 {
			stamps = stamps[:64]
		}
		d := New("v", DRAM, int64(len(stamps)+1)*128, false)
		for i, s := range stamps {
			d.WriteStamp(int64(i)*128, 128, s)
		}
		for i, s := range stamps {
			if d.StampOf(int64(i)*128, 128) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualChunkedCopyReassembles(t *testing.T) {
	src := New("gpu", GPU, 1<<30, false)
	dst := New("pmem", PMEM, 1<<30, false)
	const base, size = int64(4 << 20), int64(16 << 20)
	src.WriteStamp(base, size, 0xfeedface)
	// Copy in unequal chunks, out of order.
	for _, c := range []struct{ off, n int64 }{
		{8 << 20, 4 << 20}, {0, 8 << 20}, {12 << 20, 4 << 20},
	} {
		Copy(dst, 1<<20+c.off, src, base+c.off, c.n)
	}
	if got := dst.StampOf(1<<20, size); got != 0xfeedface {
		t.Fatalf("reassembled stamp = %#x, want 0xfeedface", got)
	}
}

func TestVirtualSubRangeCopyOfFragment(t *testing.T) {
	a := New("a", DRAM, 1<<20, false)
	b := New("b", DRAM, 1<<20, false)
	c := New("c", DRAM, 1<<20, false)
	a.WriteStamp(0, 1024, 42)
	// Move the two halves to b, then rebuild the whole on c from b's
	// fragments: stamps must survive two hops of sub-range copies.
	Copy(b, 0, a, 0, 512)
	Copy(b, 512, a, 512, 512)
	Copy(c, 0, b, 0, 512)
	Copy(c, 512, b, 512, 512)
	if got := c.StampOf(0, 1024); got != 42 {
		t.Fatalf("two-hop chunked stamp = %d, want 42", got)
	}
}

func TestVirtualIncompleteFragmentReadsZero(t *testing.T) {
	src := New("s", DRAM, 4096, false)
	dst := New("d", DRAM, 4096, false)
	src.WriteStamp(0, 1024, 9)
	Copy(dst, 0, src, 0, 512) // only half arrives
	if got := dst.StampOf(0, 1024); got != 0 {
		t.Fatalf("half-copied region stamp = %d, want 0", got)
	}
	if got := dst.StampOf(0, 512); got != 0 {
		t.Fatalf("bare fragment stamp = %d, want 0 (not full content)", got)
	}
}

func TestVirtualFragmentOverwriteDrops(t *testing.T) {
	src := New("s", DRAM, 4096, false)
	dst := New("d", DRAM, 4096, false)
	src.WriteStamp(0, 1024, 7)
	Copy(dst, 0, src, 0, 512)
	Copy(dst, 512, src, 512, 512)
	dst.WriteStamp(256, 64, 3) // punch a hole mid-region
	if got := dst.StampOf(0, 1024); got != 0 {
		t.Fatalf("punched region stamp = %d, want 0", got)
	}
	if got := dst.StampOf(256, 64); got != 3 {
		t.Fatalf("hole stamp = %d, want 3", got)
	}
}

func TestStampsOmitsFragments(t *testing.T) {
	src := New("s", DRAM, 4096, false)
	dst := New("d", DRAM, 4096, false)
	src.WriteStamp(0, 1024, 11)
	src.WriteStamp(2048, 256, 12)
	Copy(dst, 0, src, 0, 512)       // incomplete: fragment only
	Copy(dst, 2048, src, 2048, 256) // complete
	regions := dst.Stamps()
	if len(regions) != 1 {
		t.Fatalf("Stamps() = %v, want exactly the complete region", regions)
	}
	if r := regions[0]; r.Off != 2048 || r.N != 256 || r.Stamp != 12 {
		t.Fatalf("Stamps()[0] = %+v", r)
	}
}

// Property: copying any materialized region preserves byte equality.
func TestCopyPreservesBytesProperty(t *testing.T) {
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		src := New("s", DRAM, int64(len(data)), true)
		dst := New("d", DRAM, int64(len(data)), true)
		src.Write(0, data)
		Copy(dst, 0, src, 0, int64(len(data)))
		return bytes.Equal(dst.Bytes(0, int64(len(data))), data) &&
			src.StampOf(0, int64(len(data))) == dst.StampOf(0, int64(len(data)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
