package pmem

import (
	"bytes"
	"testing"
)

func TestDRAMFallbackLosesEverythingOnCrash(t *testing.T) {
	d := New(Config{Name: "fallback", DataSize: 1 << 20, MetaSize: 4096, Materialized: true, Media: MediaDRAM})
	if d.Media() != MediaDRAM {
		t.Fatal("media not recorded")
	}
	d.WriteMeta(0, []byte("index"))
	d.FlushMeta(0, 5)
	d.Data().Write(0, []byte("weights"))
	d.FlushData(0, 7)

	d.Crash() // power failure: DRAM holds nothing

	if got := d.MetaBytes(0, 5); !bytes.Equal(got, make([]byte, 5)) {
		t.Fatalf("meta survived a DRAM crash: %q", got)
	}
	if got := d.Data().Bytes(0, 7); !bytes.Equal(got, make([]byte, 7)) {
		t.Fatalf("data survived a DRAM crash: %q", got)
	}
}

func TestDRAMFallbackStillServesFlushSemantics(t *testing.T) {
	// Flush/Persist are no-ops durability-wise on DRAM but must remain
	// callable so the daemon code path is identical on both media.
	d := New(Config{Name: "fallback", DataSize: 4096, MetaSize: 4096, Media: MediaDRAM})
	d.WriteMeta(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	d.Persist8(0)
	if got := d.MetaBytes(0, 8); !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("reads broken on DRAM medium")
	}
}

func TestMediaNames(t *testing.T) {
	if MediaPMem.String() != "pmem" || MediaDRAM.String() != "dram" {
		t.Fatal("media names wrong")
	}
}

func TestDRAMDataZoneKindIsDRAM(t *testing.T) {
	d := New(Config{Name: "fb", DataSize: 4096, Media: MediaDRAM})
	if d.Data().Kind().String() != "dram" {
		t.Fatalf("data zone kind = %v, want dram (drives the rate model)", d.Data().Kind())
	}
	p := New(Config{Name: "pm", DataSize: 4096})
	if p.Data().Kind().String() != "pmem" {
		t.Fatalf("default data zone kind = %v", p.Data().Kind())
	}
}
