// Package pmem simulates an Intel Optane DC persistent-memory namespace
// as Portus uses it: byte-addressable, directly accessed from user space
// (devdax), with an explicit flush boundary standing in for
// CLWB+SFENCE. Writes land in a volatile cache image; only flushed
// regions survive Crash. This lets the double-mapping consistency scheme
// of the Portus daemon be tested against real crash semantics rather
// than assumed correct.
//
// A device has two zones sharing one address space:
//
//   - a metadata zone (always materialized) holding the persistent
//     three-level index — ModelTable, MIndex records — so offline tools
//     can re-parse a raw image;
//   - a data zone holding TensorData, materialized or virtual
//     (stamp-tracked) depending on configuration.
package pmem

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"github.com/portus-sys/portus/internal/memdev"
)

// Mode mirrors the kernel provisioning mode of the namespace.
type Mode int

// Namespace modes.
const (
	// Devdax exposes the namespace as a character device for direct
	// user-space access — the mode Portus requires (§III-D1).
	Devdax Mode = iota + 1
	// Fsdax exposes the namespace through a DAX filesystem — the mode
	// the BeeGFS-PMem baseline stacks on.
	Fsdax
)

// String returns the kernel name of the mode.
func (m Mode) String() string {
	switch m {
	case Devdax:
		return "devdax"
	case Fsdax:
		return "fsdax"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Media selects the backing medium.
type Media int

// Backing media.
const (
	// MediaPMem is Optane persistent memory (the default): flushed
	// state survives Crash.
	MediaPMem Media = iota
	// MediaDRAM is the paper's fallback when no PMem is detected
	// (§IV-a): same byte-addressable interface and faster writes, but
	// Crash loses everything — checkpoints only survive process
	// restarts, not power failures.
	MediaDRAM
)

// String names the medium.
func (m Media) String() string {
	if m == MediaDRAM {
		return "dram"
	}
	return "pmem"
}

// Config describes a namespace.
type Config struct {
	Name string
	// DataSize is the data-zone capacity in bytes.
	DataSize int64
	// MetaSize is the metadata-zone capacity; defaults to 16 MiB.
	MetaSize int64
	// Materialized selects real bytes (true) or stamp tracking (false)
	// for the data zone. The metadata zone is always materialized.
	Materialized bool
	// Mode is the namespace provisioning mode; defaults to Devdax.
	Mode Mode
	// Media selects PMem (default) or the volatile DRAM fallback.
	Media Media
}

// Device is one simulated persistent-memory namespace.
type Device struct {
	cfg Config

	meta       *memdev.Device
	metaDur    *memdev.Device // durable (flushed) image of meta
	data       *memdev.Device
	dataDur    *memdev.Device // durable (flushed) image of data
	crashCount int

	// Flush accounting (atomic: daemon workers flush concurrently under
	// the real runtime). The daemon exports these through its telemetry
	// registry.
	dataFlushOps   atomic.Int64
	dataFlushBytes atomic.Int64
	metaFlushOps   atomic.Int64
}

// New creates a namespace.
func New(cfg Config) *Device {
	if cfg.MetaSize == 0 {
		cfg.MetaSize = 16 << 20
	}
	if cfg.Mode == 0 {
		cfg.Mode = Devdax
	}
	kind := memdev.PMEM
	if cfg.Media == MediaDRAM {
		kind = memdev.DRAM
	}
	return &Device{
		cfg:     cfg,
		meta:    memdev.New(cfg.Name+"/meta", kind, cfg.MetaSize, true),
		metaDur: memdev.New(cfg.Name+"/meta.dur", kind, cfg.MetaSize, true),
		data:    memdev.New(cfg.Name+"/data", kind, cfg.DataSize, cfg.Materialized),
		dataDur: memdev.New(cfg.Name+"/data.dur", kind, cfg.DataSize, cfg.Materialized),
	}
}

// Media reports the backing medium.
func (d *Device) Media() Media { return d.cfg.Media }

// Name returns the namespace name.
func (d *Device) Name() string { return d.cfg.Name }

// Mode returns the provisioning mode.
func (d *Device) Mode() Mode { return d.cfg.Mode }

// DataSize returns the data-zone capacity.
func (d *Device) DataSize() int64 { return d.cfg.DataSize }

// MetaSize returns the metadata-zone capacity.
func (d *Device) MetaSize() int64 { return d.cfg.MetaSize }

// Materialized reports whether the data zone holds real bytes.
func (d *Device) Materialized() bool { return d.cfg.Materialized }

// Data returns the data-zone device, which the daemon registers as RDMA
// memory regions for TensorData.
func (d *Device) Data() *memdev.Device { return d.data }

// CrashCount reports how many times Crash has been invoked (for tests).
func (d *Device) CrashCount() int { return d.crashCount }

// WriteMeta stores p at off in the metadata zone. The write is volatile
// until FlushMeta covers it.
func (d *Device) WriteMeta(off int64, p []byte) { d.meta.Write(off, p) }

// ReadMeta fills p from off in the metadata zone.
func (d *Device) ReadMeta(off int64, p []byte) { d.meta.Read(off, p) }

// MetaBytes returns a copy of [off, off+n) of the metadata zone.
func (d *Device) MetaBytes(off, n int64) []byte { return d.meta.Bytes(off, n) }

// FlushMeta persists metadata-zone region [off, off+n), standing in for
// CLWB of each line plus SFENCE.
func (d *Device) FlushMeta(off, n int64) {
	d.metaFlushOps.Add(1)
	memdev.Copy(d.metaDur, off, d.meta, off, n)
}

// Persist8 atomically persists the 8-byte word at off in the metadata
// zone — the failure-atomic store Portus relies on for version flags.
func (d *Device) Persist8(off int64) { d.FlushMeta(off, 8) }

// FlushData persists data-zone region [off, off+n).
func (d *Device) FlushData(off, n int64) {
	d.dataFlushOps.Add(1)
	d.dataFlushBytes.Add(n)
	memdev.Copy(d.dataDur, off, d.data, off, n)
}

// DataFlushOps reports how many data-zone flushes have run.
func (d *Device) DataFlushOps() int64 { return d.dataFlushOps.Load() }

// DataFlushBytes reports the cumulative bytes covered by data-zone
// flushes.
func (d *Device) DataFlushBytes() int64 { return d.dataFlushBytes.Load() }

// MetaFlushOps reports how many metadata-zone flushes (including
// Persist8 version-flag commits) have run.
func (d *Device) MetaFlushOps() int64 { return d.metaFlushOps.Load() }

// Crash simulates a power failure: all writes not covered by a flush are
// lost, and the device state reverts to the durable image. On the DRAM
// fallback medium nothing is durable: the whole namespace is wiped.
func (d *Device) Crash() {
	d.crashCount++
	if d.cfg.Media == MediaDRAM {
		fresh := New(d.cfg)
		d.meta, d.metaDur = fresh.meta, fresh.metaDur
		d.data, d.dataDur = fresh.data, fresh.dataDur
		return
	}
	d.meta.Restore(d.metaDur.Snapshot())
	d.data.Restore(d.dataDur.Snapshot())
}

// Image file format.
const (
	imageMagic   = "PORTUSPM"
	imageVersion = 1
)

// SaveImage writes the durable state of the namespace to w, in the
// format portusctl understands.
func (d *Device) SaveImage(w io.Writer) error {
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, imageMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, imageVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d.cfg.Mode))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.cfg.MetaSize))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.cfg.DataSize))
	mat := byte(0)
	if d.cfg.Materialized {
		mat = 1
	}
	hdr = append(hdr, mat)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("pmem: write image header: %w", err)
	}
	if _, err := w.Write(d.metaDur.Bytes(0, d.cfg.MetaSize)); err != nil {
		return fmt.Errorf("pmem: write meta zone: %w", err)
	}
	if d.cfg.Materialized {
		if _, err := w.Write(d.dataDur.Bytes(0, d.cfg.DataSize)); err != nil {
			return fmt.Errorf("pmem: write data zone: %w", err)
		}
		return nil
	}
	stamps := d.dataDur.Stamps()
	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(stamps)))
	for _, s := range stamps {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Off))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.N))
		buf = binary.LittleEndian.AppendUint64(buf, s.Stamp)
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("pmem: write stamp table: %w", err)
	}
	return nil
}

// LoadImage reconstructs a namespace from an image produced by
// SaveImage. The loaded state is durable (as if freshly flushed).
func LoadImage(name string, r io.Reader) (*Device, error) {
	hdr := make([]byte, len(imageMagic)+4+4+8+8+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pmem: read image header: %w", err)
	}
	if string(hdr[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("pmem: bad image magic %q", hdr[:len(imageMagic)])
	}
	p := hdr[len(imageMagic):]
	if v := binary.LittleEndian.Uint32(p); v != imageVersion {
		return nil, fmt.Errorf("pmem: unsupported image version %d", v)
	}
	cfg := Config{
		Name:         name,
		Mode:         Mode(binary.LittleEndian.Uint32(p[4:])),
		MetaSize:     int64(binary.LittleEndian.Uint64(p[8:])),
		DataSize:     int64(binary.LittleEndian.Uint64(p[16:])),
		Materialized: p[24] == 1,
	}
	d := New(cfg)
	meta := make([]byte, cfg.MetaSize)
	if _, err := io.ReadFull(r, meta); err != nil {
		return nil, fmt.Errorf("pmem: read meta zone: %w", err)
	}
	d.meta.Write(0, meta)
	d.metaDur.Write(0, meta)
	if cfg.Materialized {
		data := make([]byte, cfg.DataSize)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pmem: read data zone: %w", err)
		}
		d.data.Write(0, data)
		d.dataDur.Write(0, data)
		return d, nil
	}
	var cnt [8]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, fmt.Errorf("pmem: read stamp count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	rec := make([]byte, 24)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("pmem: read stamp record %d: %w", i, err)
		}
		off := int64(binary.LittleEndian.Uint64(rec))
		ln := int64(binary.LittleEndian.Uint64(rec[8:]))
		stamp := binary.LittleEndian.Uint64(rec[16:])
		d.data.WriteStamp(off, ln, stamp)
		d.dataDur.WriteStamp(off, ln, stamp)
	}
	return d, nil
}

// SaveImageFile writes the durable image to path.
func (d *Device) SaveImageFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pmem: create image: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("pmem: close image: %w", cerr)
		}
	}()
	return d.SaveImage(f)
}

// LoadImageFile reconstructs a namespace from the image at path.
func LoadImageFile(name, path string) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pmem: open image: %w", err)
	}
	defer f.Close()
	return LoadImage(name, f)
}
