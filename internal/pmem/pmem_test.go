package pmem

import (
	"bytes"
	"testing"
)

func newTestDevice(materialized bool) *Device {
	return New(Config{Name: "pmem0", DataSize: 1 << 20, MetaSize: 4096, Materialized: materialized})
}

func TestDefaults(t *testing.T) {
	d := New(Config{Name: "p", DataSize: 1024})
	if d.Mode() != Devdax {
		t.Errorf("default mode = %v, want devdax", d.Mode())
	}
	if d.MetaSize() != 16<<20 {
		t.Errorf("default meta size = %d, want 16MiB", d.MetaSize())
	}
	if Devdax.String() != "devdax" || Fsdax.String() != "fsdax" {
		t.Error("mode names wrong")
	}
}

func TestUnflushedWriteLostOnCrash(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(0, []byte("unflushed"))
	d.Crash()
	got := d.MetaBytes(0, 9)
	if !bytes.Equal(got, make([]byte, 9)) {
		t.Fatalf("unflushed write survived crash: %q", got)
	}
	if d.CrashCount() != 1 {
		t.Fatalf("CrashCount = %d", d.CrashCount())
	}
}

func TestFlushedWriteSurvivesCrash(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(10, []byte("durable"))
	d.FlushMeta(10, 7)
	d.WriteMeta(100, []byte("volatile"))
	d.Crash()
	if got := d.MetaBytes(10, 7); !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("flushed write lost: %q", got)
	}
	if got := d.MetaBytes(100, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unflushed write survived: %q", got)
	}
}

func TestPersist8Atomicity(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	d.Persist8(64)
	d.WriteMeta(64, []byte{9, 9, 9, 9, 9, 9, 9, 9}) // not persisted
	d.Crash()
	if got := d.MetaBytes(64, 8); !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("Persist8 state lost: %v", got)
	}
}

func TestDataZoneCrashSemanticsMaterialized(t *testing.T) {
	d := newTestDevice(true)
	d.Data().Write(0, []byte("tensor-v1"))
	d.FlushData(0, 9)
	d.Data().Write(0, []byte("tensor-v2"))
	d.Crash()
	if got := d.Data().Bytes(0, 9); !bytes.Equal(got, []byte("tensor-v1")) {
		t.Fatalf("data zone after crash: %q", got)
	}
}

func TestDataZoneCrashSemanticsVirtual(t *testing.T) {
	d := newTestDevice(false)
	d.Data().WriteStamp(0, 4096, 111)
	d.FlushData(0, 4096)
	d.Data().WriteStamp(0, 4096, 222)
	d.Crash()
	if got := d.Data().StampOf(0, 4096); got != 111 {
		t.Fatalf("data stamp after crash = %d, want 111", got)
	}
}

func TestImageRoundTripMaterialized(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(0, []byte("index!"))
	d.FlushMeta(0, 6)
	d.Data().Write(128, []byte("payload"))
	d.FlushData(128, 7)

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MetaBytes(0, 6), []byte("index!")) {
		t.Fatal("meta zone lost in image round trip")
	}
	if !bytes.Equal(got.Data().Bytes(128, 7), []byte("payload")) {
		t.Fatal("data zone lost in image round trip")
	}
	// Loaded state must be durable.
	got.Crash()
	if !bytes.Equal(got.Data().Bytes(128, 7), []byte("payload")) {
		t.Fatal("loaded image not durable")
	}
}

func TestImageRoundTripVirtual(t *testing.T) {
	d := newTestDevice(false)
	d.Data().WriteStamp(4096, 8192, 0xabc)
	d.FlushData(4096, 8192)

	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Materialized() {
		t.Fatal("virtual image loaded as materialized")
	}
	if s := got.Data().StampOf(4096, 8192); s != 0xabc {
		t.Fatalf("stamp after image round trip = %#x, want 0xabc", s)
	}
}

func TestImageOnlyContainsDurableState(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(0, []byte("volatile"))
	var buf bytes.Buffer
	if err := d.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImage("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MetaBytes(0, 8), make([]byte, 8)) {
		t.Fatal("image contained unflushed state")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	d := newTestDevice(true)
	d.WriteMeta(0, []byte("hello"))
	d.FlushMeta(0, 5)
	path := t.TempDir() + "/pm.img"
	if err := d.SaveImageFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadImageFile("copy", path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.MetaBytes(0, 5), []byte("hello")) {
		t.Fatal("file image round trip lost meta")
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, err := LoadImage("x", bytes.NewReader([]byte("not an image at all........"))); err == nil {
		t.Fatal("LoadImage accepted garbage")
	}
}
