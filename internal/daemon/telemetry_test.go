package daemon_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// startTracedDaemon wires a daemon with an explicit registry on a tiny
// cluster and registers a small model through the real control plane.
func startTracedDaemon(t *testing.T, env sim.Env) (*daemon.Daemon, *telemetry.Registry, *client.Client) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 16 << 20, PMemBytes: 32 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d, err := daemon.New(env, daemon.Config{
		PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
		Telemetry: reg, TraceDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	spec := model.GPT("traced", 2, 64, 512, 10*time.Millisecond)
	placed, err := gpu.Place(cl.GPU(0, 0), spec)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	placed.ApplyUpdate(1)
	return d, reg, c
}

// TestCheckpointSpanTreeSumsToEndToEnd is the acceptance check: one
// checkpoint under the simulated clock must produce a span tree with
// enqueue-wait, per-tensor pull, flush, and commit stages whose
// durations sum exactly to the trace's end-to-end latency.
func TestCheckpointSpanTreeSumsToEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		snap := d.Traces().Snapshot()
		if len(snap) != 1 {
			t.Fatalf("trace ring holds %d traces, want 1", len(snap))
		}
		tr := snap[0]
		if tr.Kind != "checkpoint" || tr.Model != "traced" || tr.Iteration != 1 {
			t.Fatalf("trace identity = %+v", tr)
		}
		if tr.Err != "" {
			t.Fatalf("trace error = %q", tr.Err)
		}
		if tr.Bytes != c.Model().Spec.TotalSize() {
			t.Fatalf("trace bytes = %d, want %d", tr.Bytes, c.Model().Spec.TotalSize())
		}

		var sum time.Duration
		for _, name := range []string{"enqueue-wait", "pull", "flush", "commit"} {
			sp := tr.Root.Find(name)
			if sp == nil {
				t.Fatalf("span %q missing from trace", name)
			}
			sum += sp.Dur()
		}
		if tr.Duration <= 0 {
			t.Fatal("trace duration must be positive under the sim clock")
		}
		// Stages are contiguous: under virtual time they sum exactly.
		if sum != tr.Duration {
			t.Fatalf("stage sum %v != end-to-end %v", sum, tr.Duration)
		}

		pull := tr.Root.Find("pull")
		if len(pull.Children) != len(c.Model().Spec.Tensors) {
			t.Fatalf("pull has %d per-tensor spans, want %d", len(pull.Children), len(c.Model().Spec.Tensors))
		}
		for _, sp := range pull.Children {
			if !strings.HasPrefix(sp.Name, "pull:") || sp.Dur() <= 0 || sp.Attrs["bytes"] == "" {
				t.Fatalf("per-tensor span malformed: %+v", sp)
			}
		}
	})
	eng.Run()
}

func TestRestoreTraceAndPushTime(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restore(env); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.PushTime <= 0 {
			t.Fatalf("Stats.PushTime = %v, want > 0 after a restore", st.PushTime)
		}
		if st.QueueDepth != 0 {
			t.Fatalf("Stats.QueueDepth = %d, want 0 when idle", st.QueueDepth)
		}
		if st.Errors != 0 {
			t.Fatalf("Stats.Errors = %d, want 0", st.Errors)
		}
		snap := d.Traces().Snapshot()
		if len(snap) != 2 || snap[0].Kind != "restore" || snap[1].Kind != "checkpoint" {
			t.Fatalf("trace ring order: %d traces, kinds %v", len(snap), kinds(snap))
		}
		if snap[0].Root.Find("push") == nil {
			t.Fatal("restore trace missing push span")
		}
	})
	eng.Run()
}

func kinds(traces []*telemetry.Trace) []string {
	out := make([]string, len(traces))
	for i, tr := range traces {
		out[i] = tr.Kind
	}
	return out
}

func TestDaemonErrorsCountedInStatsAndRegistry(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, reg, c := startTracedDaemon(t, env)
		// Restore before any checkpoint exists is a client-visible error.
		if _, err := c.Restore(env); err == nil {
			t.Fatal("expected restore error with no complete version")
		}
		if st := d.Stats(); st.Errors != 1 {
			t.Fatalf("Stats.Errors = %d, want 1", st.Errors)
		}
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		if !strings.Contains(buf.String(), "portus_daemon_errors_total 1") {
			t.Fatalf("registry missing error count:\n%s", buf.String())
		}
	})
	eng.Run()
}

func TestDaemonMetricsExposition(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		_, reg, c := startTracedDaemon(t, env)
		for i := uint64(1); i <= 3; i++ {
			if err := c.CheckpointSync(env, i); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		out := buf.String()
		for _, want := range []string{
			"portus_daemon_checkpoints_total 3",
			"portus_daemon_registered_total 1",
			"portus_daemon_queue_depth 0",
			"portus_pmem_flush_ops_total",
			"portus_daemon_pull_seconds_total",
			`portus_rdma_ops_total{fabric="data",op="read"}`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q", want)
			}
		}
		samples, err := telemetry.ParseText(strings.NewReader(out))
		if err != nil {
			t.Fatalf("exposition does not parse: %v", err)
		}
		p99, ok := telemetry.HistogramQuantile(samples, "portus_checkpoint_seconds", 0.99)
		if !ok || p99 <= 0 {
			t.Fatalf("p99 checkpoint latency = %v ok=%v, want positive", p99, ok)
		}
	})
	eng.Run()
}
