package daemon_test

import (
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// deltaBlock is small relative to the test model (~371 KiB over 28
// tensors) so sparse updates genuinely leave most blocks clean.
const deltaBlock = int64(4 << 10)

// deltaRig wires a delta-enabled daemon and a digest-computing client
// around one small model, returning the PMem device for crash
// inspection.
func deltaRig(t *testing.T, env sim.Env, dmut func(*daemon.Config)) (*daemon.Daemon, *gpu.PlacedModel, *client.Client, *pmem.Device) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 8 << 20, PMemBytes: 16 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemon.Config{
		PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
		DeltaEnabled: true,
	}
	if dmut != nil {
		dmut(&cfg)
	}
	d, err := daemon.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("m", 2, 32, 128, 0))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.RegisterOpts(env, conn, cl.Compute[0].RNode, placed,
		client.Options{DeltaBlockBytes: deltaBlock})
	if err != nil {
		t.Fatal(err)
	}
	return d, placed, c, cl.Storage[0].PMem
}

func fallbacks(d *daemon.Daemon) int64 {
	return d.Telemetry().Counter("portus_delta_full_fallbacks_total", "").Value()
}

// TestDeltaCheckpointReducesFabricBytes is the incremental path end to
// end. The first checkpoint bootstraps the digest table (full, not a
// fallback); the second still runs full because the target slot has no
// skip oracle yet (counted as a fallback); from the third on, sparse
// updates pull only the dirty blocks. Every version restores
// byte-identical, and a dense update falls back to full.
func TestDeltaCheckpointReducesFabricBytes(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c, _ := deltaRig(t, env, nil)
		total := placed.Spec.TotalSize()

		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().BytesPulled; got != total {
			t.Fatalf("bootstrap pulled %d bytes, want full %d", got, total)
		}
		if n := fallbacks(d); n != 0 {
			t.Fatalf("bootstrap counted %d fallbacks", n)
		}

		// Second checkpoint: the previous version's table is trusted, but
		// with no target-slot table nothing can skip, so pull+copy would
		// cost a full pass — fallback, by the byte-accounting rule.
		placed.ApplySparseUpdate(2, deltaBlock, 0.05)
		if err := c.CheckpointSync(env, 2); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().BytesPulled; got != 2*total {
			t.Fatalf("warmup pulled %d bytes, want 2×%d", got, total)
		}
		if n := fallbacks(d); n != 1 {
			t.Fatalf("warmup counted %d fallbacks, want 1", n)
		}

		// Third checkpoint: both slots now carry trusted tables; only the
		// blocks dirtied since the previous version cross the fabric.
		placed.ApplySparseUpdate(3, deltaBlock, 0.05)
		want3 := placed.BlockDigests(deltaBlock)
		if err := c.CheckpointSync(env, 3); err != nil {
			t.Fatal(err)
		}
		pulled3 := d.Stats().BytesPulled - 2*total
		if pulled3 <= 0 || pulled3 >= total/2 {
			t.Fatalf("delta checkpoint pulled %d of %d bytes", pulled3, total)
		}
		if n := fallbacks(d); n != 1 {
			t.Fatalf("delta checkpoint counted %d fallbacks, want 1", n)
		}

		// The delta-assembled slot restores byte-identical.
		placed.ApplyUpdate(9)
		iter, err := c.Restore(env)
		if err != nil || iter != 3 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
		if bad := placed.VerifyDigests(deltaBlock, want3); bad != -1 {
			t.Fatalf("block %d wrong after delta restore", bad)
		}

		// A dense update rewrites every block: pull alone would cost a
		// full pass, so the daemon falls back — counted and still correct.
		placed.ApplyUpdate(4)
		if err := c.CheckpointSync(env, 4); err != nil {
			t.Fatal(err)
		}
		if n := fallbacks(d); n != 2 {
			t.Fatalf("dense checkpoint counted %d fallbacks, want 2", n)
		}
		placed.ApplyUpdate(9)
		if iter, err := c.Restore(env); err != nil || iter != 4 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
		if bad := placed.VerifyIteration(4); bad != -1 {
			t.Fatalf("tensor %d wrong after fallback restore", bad)
		}
	})
	eng.Run()
}

// TestDeltaDisabledDaemonFallsBack: a digest-carrying client against a
// daemon with delta off runs full checkpoints, counted as fallbacks,
// with correctness untouched.
func TestDeltaDisabledDaemonFallsBack(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c, _ := deltaRig(t, env, func(cfg *daemon.Config) { cfg.DeltaEnabled = false })
		total := placed.Spec.TotalSize()
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		placed.ApplySparseUpdate(2, deltaBlock, 0.05)
		want2 := placed.BlockDigests(deltaBlock)
		if err := c.CheckpointSync(env, 2); err != nil {
			t.Fatal(err)
		}
		if got := d.Stats().BytesPulled; got != 2*total {
			t.Fatalf("pulled %d bytes with delta off, want 2×%d", got, total)
		}
		if n := fallbacks(d); n != 2 {
			t.Fatalf("counted %d fallbacks, want 2", n)
		}
		placed.ApplyUpdate(9)
		if iter, err := c.Restore(env); err != nil || iter != 2 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
		if bad := placed.VerifyDigests(deltaBlock, want2); bad != -1 {
			t.Fatalf("block %d wrong", bad)
		}
	})
	eng.Run()
}

// TestDeltaBlockPinRejectsMismatch: a daemon pinned to one block size
// treats a client computing another as a fallback to full.
func TestDeltaBlockPinRejectsMismatch(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c, _ := deltaRig(t, env, func(cfg *daemon.Config) { cfg.DeltaBlockBytes = 64 << 10 })
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		placed.ApplySparseUpdate(2, deltaBlock, 0.05)
		if err := c.CheckpointSync(env, 2); err != nil {
			t.Fatal(err)
		}
		if got, total := d.Stats().BytesPulled, 2*placed.Spec.TotalSize(); got != total {
			t.Fatalf("pulled %d bytes under block mismatch, want %d", got, total)
		}
		if n := fallbacks(d); n != 2 {
			t.Fatalf("counted %d fallbacks, want 2", n)
		}
	})
	eng.Run()
}

// TestDeltaCrashBoundaries cuts the power at each crash boundary of an
// in-flight delta checkpoint and verifies the atomicity contract: the
// interrupted iteration never commits, the previous version stays
// restorable (restore verifies its stored CRC, so success means not
// torn), and the durable state a reopen observes is either cleanly old
// or cleanly distrusted.
func TestDeltaCrashBoundaries(t *testing.T) {
	for _, stage := range []string{"pre-copy-forward", "post-copy-forward", "post-table"} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			eng := sim.NewEngine()
			eng.Go("test", func(env sim.Env) {
				d, placed, c, pm := deltaRig(t, env, nil)
				// Two warmups so iteration 3 runs genuinely incrementally
				// (both slots carry trusted digest tables).
				placed.ApplyUpdate(1)
				if err := c.CheckpointSync(env, 1); err != nil {
					t.Fatal(err)
				}
				placed.ApplySparseUpdate(2, deltaBlock, 0.05)
				want2 := placed.BlockDigests(deltaBlock)
				if err := c.CheckpointSync(env, 2); err != nil {
					t.Fatal(err)
				}

				placed.ApplySparseUpdate(3, deltaBlock, 0.05)
				fired := false
				d.SetDeltaCrash(func(s string) bool {
					if s != stage {
						return false
					}
					fired = true
					pm.Crash()
					return true
				})
				err := c.CheckpointSync(env, 3)
				if !fired {
					t.Fatalf("stage %s never reached", stage)
				}
				if err == nil || !strings.Contains(err.Error(), "injected crash") {
					t.Fatalf("checkpoint survived the crash: %v", err)
				}
				d.SetDeltaCrash(nil)

				// Durable state: reopen the namespace as recovery would and
				// check nothing of iteration 3 committed.
				s2, err := index.Open(pm)
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				m2, err := s2.Lookup("m")
				if err != nil {
					t.Fatal(err)
				}
				slot, hdr, ok := m2.LatestDone()
				if !ok || hdr.Iteration != 2 {
					t.Fatalf("surviving version = %+v (ok=%v), want iteration 2", hdr, ok)
				}
				// A digest table the crash left on the target slot (persisted
				// just before the DONE flag at "post-table") must be
				// distrusted: its iteration cannot match any DONE header.
				if tbl, ok := s2.DeltaGet(m2, 1-slot); ok && tbl.Iteration == hdr.Iteration {
					t.Fatalf("crashed slot's table claims the surviving iteration %d", tbl.Iteration)
				}

				// The surviving version restores intact through the daemon.
				placed.ApplyUpdate(9)
				iter, err := c.Restore(env)
				if err != nil || iter != 2 {
					t.Fatalf("restore after crash = %d, %v", iter, err)
				}
				if bad := placed.VerifyDigests(deltaBlock, want2); bad != -1 {
					t.Fatalf("block %d wrong after crash restore", bad)
				}

				// And the system recovers: the next checkpoint commits and
				// restores normally.
				placed.ApplySparseUpdate(4, deltaBlock, 0.05)
				want4 := placed.BlockDigests(deltaBlock)
				if err := c.CheckpointSync(env, 4); err != nil {
					t.Fatalf("post-crash checkpoint: %v", err)
				}
				placed.ApplyUpdate(9)
				if iter, err := c.Restore(env); err != nil || iter != 4 {
					t.Fatalf("post-crash restore = %d, %v", iter, err)
				}
				if bad := placed.VerifyDigests(deltaBlock, want4); bad != -1 {
					t.Fatalf("block %d wrong after recovery", bad)
				}
			})
			eng.Run()
		})
	}
}
