package daemon_test

import (
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// fullRig wires cluster + daemon + net and registers one tiny model.
func fullRig(t *testing.T, env sim.Env, dmut func(*daemon.Config)) (*daemon.Daemon, *gpu.PlacedModel, *client.Client) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 8 << 20, PMemBytes: 16 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemon.Config{PMem: cl.Storage.PMem, RNode: cl.Storage.RNode, Fabric: cl.Fabric}
	if dmut != nil {
		dmut(&cfg)
	}
	d, err := daemon.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("m", 2, 32, 128, 0))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	return d, placed, c
}

func TestDaemonCheckpointRestoreCounts(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c := fullRig(t, env, nil)
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restore(env); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.Registered != 1 || st.Checkpoints != 1 || st.Restores != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if st.PullTime <= 0 {
			t.Fatal("pull time not recorded")
		}
		if st.BytesPulled != st.BytesPushed || st.BytesPulled != placed.Spec.TotalSize() {
			t.Fatalf("byte counters = %+v", st)
		}
	})
	eng.Run()
}

func TestDaemonAblationPathsStillCorrect(t *testing.T) {
	// The ablation datapaths (two-sided, host staging) must be slower but
	// byte-identical.
	for _, mut := range []func(*daemon.Config){
		func(c *daemon.Config) { c.TwoSidedData = true },
		func(c *daemon.Config) { c.StageThroughHost = true },
	} {
		mut := mut
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			_, placed, c := fullRig(t, env, mut)
			placed.ApplyUpdate(3)
			if err := c.CheckpointSync(env, 3); err != nil {
				t.Fatal(err)
			}
			placed.ApplyUpdate(4)
			iter, err := c.Restore(env)
			if err != nil || iter != 3 {
				t.Fatalf("restore = %d, %v", iter, err)
			}
			if bad := placed.VerifyIteration(3); bad != -1 {
				t.Fatalf("tensor %d wrong under ablation datapath", bad)
			}
		})
		eng.Run()
	}
}

func TestDaemonBusyRejection(t *testing.T) {
	// A second operation on a model with one in flight is rejected: the
	// paper's one-worker-per-model independence (§III-D1).
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		_, placed, c := fullRig(t, env, nil)
		placed.ApplyUpdate(1)
		cp, err := c.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Immediately request another: the daemon must refuse.
		if err := c.CheckpointSync(env, 2); err == nil {
			t.Fatal("concurrent checkpoint on the same model accepted")
		}
		if err := cp.Wait(env); err != nil {
			t.Fatal(err)
		}
		// After completion the model accepts work again.
		placed.ApplyUpdate(3)
		if err := c.CheckpointSync(env, 3); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
}
