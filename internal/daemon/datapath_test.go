package daemon_test

import (
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// fullRig wires cluster + daemon + net and registers one tiny model.
func fullRig(t *testing.T, env sim.Env, dmut func(*daemon.Config)) (*daemon.Daemon, *gpu.PlacedModel, *client.Client) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 8 << 20, PMemBytes: 16 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemon.Config{PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric}
	if dmut != nil {
		dmut(&cfg)
	}
	d, err := daemon.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("m", 2, 32, 128, 0))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	return d, placed, c
}

func TestDaemonCheckpointRestoreCounts(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c := fullRig(t, env, nil)
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Restore(env); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.Registered != 1 || st.Checkpoints != 1 || st.Restores != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if st.PullTime <= 0 {
			t.Fatal("pull time not recorded")
		}
		if st.BytesPulled != st.BytesPushed || st.BytesPulled != placed.Spec.TotalSize() {
			t.Fatalf("byte counters = %+v", st)
		}
	})
	eng.Run()
}

func TestDaemonAblationPathsStillCorrect(t *testing.T) {
	// The ablation datapaths (two-sided, host staging) must be slower but
	// byte-identical.
	for _, mut := range []func(*daemon.Config){
		func(c *daemon.Config) { c.TwoSidedData = true },
		func(c *daemon.Config) { c.StageThroughHost = true },
	} {
		mut := mut
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			_, placed, c := fullRig(t, env, mut)
			placed.ApplyUpdate(3)
			if err := c.CheckpointSync(env, 3); err != nil {
				t.Fatal(err)
			}
			placed.ApplyUpdate(4)
			iter, err := c.Restore(env)
			if err != nil || iter != 3 {
				t.Fatalf("restore = %d, %v", iter, err)
			}
			if bad := placed.VerifyIteration(3); bad != -1 {
				t.Fatalf("tensor %d wrong under ablation datapath", bad)
			}
		})
		eng.Run()
	}
}

// chunkedRig is fullRig with a roomier cluster and a model whose
// embedding tensors exceed the minimum chunk size, so ChunkSize
// configurations genuinely split tensors.
func chunkedRig(t *testing.T, env sim.Env, dmut func(*daemon.Config)) (*daemon.Daemon, *gpu.PlacedModel, *client.Client) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 32 << 20, PMemBytes: 64 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemon.Config{PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric}
	if dmut != nil {
		dmut(&cfg)
	}
	d, err := daemon.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("m", 1, 256, 1024, 0))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	return d, placed, c
}

// TestDaemonChunkedPipelinedRoundTrip drives a materialized checkpoint
// and restore through the chunked, pipelined, multi-lane datapath and
// verifies the restored bytes.
func TestDaemonChunkedPipelinedRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c := chunkedRig(t, env, func(cfg *daemon.Config) {
			cfg.ChunkSize = 256 << 10
			cfg.PipelineDepth = 4
			cfg.Lanes = 2
		})
		placed.ApplyUpdate(5)
		if err := c.CheckpointSync(env, 5); err != nil {
			t.Fatal(err)
		}
		placed.ApplyUpdate(6) // diverge, then roll back
		iter, err := c.Restore(env)
		if err != nil || iter != 5 {
			t.Fatalf("restore = %d, %v", iter, err)
		}
		if bad := placed.VerifyIteration(5); bad != -1 {
			t.Fatalf("tensor %d wrong after chunked pipelined round trip", bad)
		}
		st := d.Stats()
		if st.PullTime <= 0 || st.FlushTime <= 0 || st.PushTime <= 0 {
			t.Fatalf("stage times not recorded: %+v", st)
		}
	})
	eng.Run()
}

// TestDaemonPipelineDepthFaster measures the same checkpoint under
// depth 1 and depth 4 (both chunked): overlapping flush with pull must
// strictly reduce virtual checkpoint latency.
func TestDaemonPipelineDepthFaster(t *testing.T) {
	run := func(depth int) time.Duration {
		var elapsed time.Duration
		eng := sim.NewEngine()
		eng.Go("test", func(env sim.Env) {
			_, placed, c := chunkedRig(t, env, func(cfg *daemon.Config) {
				cfg.ChunkSize = 256 << 10
				cfg.PipelineDepth = depth
			})
			placed.ApplyUpdate(1)
			t0 := env.Now()
			if err := c.CheckpointSync(env, 1); err != nil {
				t.Fatal(err)
			}
			elapsed = env.Now() - t0
		})
		eng.Run()
		return elapsed
	}
	d1, d4 := run(1), run(4)
	if d4 >= d1 {
		t.Fatalf("depth 4 checkpoint (%v) not faster than depth 1 (%v)", d4, d1)
	}
}

func TestDaemonConcurrentCheckpointsQueue(t *testing.T) {
	// A second checkpoint on a model with one in flight is queued (or
	// coalesced into the newer iteration), never hard-rejected: per-model
	// lanes still execute one task at a time — the paper's
	// one-worker-per-model independence (§III-D1) — but the scheduler
	// queues behind the in-flight operation instead of bouncing.
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, placed, c := fullRig(t, env, nil)
		placed.ApplyUpdate(1)
		cp, err := c.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Immediately request another: both must complete.
		if err := c.CheckpointSync(env, 2); err != nil {
			t.Fatalf("second checkpoint while one in flight: %v", err)
		}
		if err := cp.Wait(env); err != nil {
			t.Fatal(err)
		}
		if st := d.Stats(); st.Errors != 0 {
			t.Fatalf("errors = %d, want 0", st.Errors)
		}
		// The newest committed version is the newer iteration.
		m, err := d.Store().Lookup("m")
		if err != nil {
			t.Fatal(err)
		}
		if _, v, ok := m.LatestDone(); !ok || v.Iteration != 2 {
			t.Fatalf("latest done = %+v ok=%v, want iteration 2", v, ok)
		}
		// After completion the model accepts further work.
		placed.ApplyUpdate(3)
		if err := c.CheckpointSync(env, 3); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
}

// TestDaemonDuplicateInFlightBothAnswered races a second connection's
// DO_CHECKPOINT for the same model and iteration against one already in
// flight. The duplicate must park on the running (or committed) work and
// both connections receive CHECKPOINT_DONE, while the transfer executes
// once.
func TestDaemonDuplicateInFlightBothAnswered(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 1,
			GPUMemBytes: 8 << 20, PMemBytes: 16 << 20, Materialized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		d, err := daemon.New(env, daemon.Config{
			PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("serve", func(env sim.Env) { d.Serve(env, l) })
		placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("m", 2, 32, 128, 0))
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
		if err != nil {
			t.Fatal(err)
		}
		placed.ApplyUpdate(1)
		cp, err := c.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		// A second connection retries the same iteration while the first
		// is in flight; sessions are keyed by model, so no re-register.
		conn2, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn2.Send(env, &wire.Msg{
			Type: wire.TDoCheckpoint, Model: "m", Iteration: 1,
		}); err != nil {
			t.Fatal(err)
		}
		reply, err := conn2.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != wire.TCheckpointDone || reply.Iteration != 1 {
			t.Fatalf("duplicate conn reply = %+v, want CHECKPOINT_DONE iter 1", reply)
		}
		if err := cp.Wait(env); err != nil {
			t.Fatalf("original checkpoint: %v", err)
		}
		st := d.Stats()
		if st.Checkpoints != 1 {
			t.Fatalf("checkpoints = %d, want 1 (duplicate must not re-execute)", st.Checkpoints)
		}
		if st.Errors != 0 {
			t.Fatalf("errors = %d, want 0", st.Errors)
		}
		if got := reg.Counter("portus_daemon_dedup_total", "").Value(); got < 1 {
			t.Fatalf("portus_daemon_dedup_total = %d, want >= 1", got)
		}
	})
	eng.Run()
}
