package daemon_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// settleTraces lets the client's fire-and-forget trace report cross the
// simulated control plane and stitch into the daemon's ring.
func settleTraces(env sim.Env) { env.Sleep(20 * time.Millisecond) }

// TestStitchedTraceSumsToEndToEnd extends the PR-1 acceptance check
// across the wire: after the client's trace report lands, the ring
// holds ONE stitched trace whose root is the client's span tree, whose
// client-side spans tile the end-to-end latency exactly, and whose
// daemon-side tree hangs under the await span.
func TestStitchedTraceSumsToEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		settleTraces(env)

		snap := d.Traces().Snapshot()
		if len(snap) != 1 {
			t.Fatalf("trace ring holds %d traces, want 1 (stitching must replace, not append)", len(snap))
		}
		tr := snap[0]
		if !tr.Stitched {
			t.Fatal("trace not stitched after the client report")
		}
		if tr.ID == 0 {
			t.Fatal("stitched trace carries no client-minted TraceID")
		}
		if tr.Kind != "checkpoint" || tr.Model != "traced" || tr.Iteration != 1 {
			t.Fatalf("stitched identity = kind=%q model=%q iter=%d", tr.Kind, tr.Model, tr.Iteration)
		}
		if tr.Root.Name != "client:checkpoint" {
			t.Fatalf("stitched root = %q, want the client root", tr.Root.Name)
		}

		// Client-side spans tile the root: send + await == end to end.
		send, await := tr.Root.Find("send"), tr.Root.Find("await")
		if send == nil || await == nil {
			t.Fatal("stitched trace missing client send/await spans")
		}
		if got := send.Dur() + await.Dur(); got != tr.Duration {
			t.Fatalf("client span sum %v != end-to-end %v", got, tr.Duration)
		}
		if tr.Duration <= 0 {
			t.Fatal("stitched duration must be positive")
		}

		// The daemon's tree grafts under await, and its own stages still
		// sum to the daemon-side span exactly.
		var dmn *telemetry.Span
		for _, sp := range await.Children {
			if sp.Name == "checkpoint" {
				dmn = sp
			}
		}
		if dmn == nil {
			t.Fatalf("daemon tree not grafted under await: children %+v", await.Children)
		}
		var sum time.Duration
		for _, name := range []string{"enqueue-wait", "pull", "flush", "commit"} {
			sp := dmn.Find(name)
			if sp == nil {
				t.Fatalf("daemon stage %q missing from stitched tree", name)
			}
			sum += sp.Dur()
		}
		if sum != dmn.Dur() {
			t.Fatalf("daemon stage sum %v != daemon span %v", sum, dmn.Dur())
		}

		// The waterfall renders the whole stitched tree.
		var buf bytes.Buffer
		telemetry.WriteWaterfall(&buf, tr)
		out := buf.String()
		for _, want := range []string{"client:checkpoint", "send", "await", "enqueue-wait", "flush", "trace=" + tr.ID.String()} {
			if !strings.Contains(out, want) {
				t.Fatalf("waterfall missing %q:\n%s", want, out)
			}
		}
	})
	eng.Run()
}

// TestUntracedClientStillServed is the compatibility check: a raw
// request with a zero TraceID (an old client that predates trace
// propagation) must be served normally and produce an ordinary,
// unstitched daemon trace.
func TestUntracedClientStillServed(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		// Reach the daemon over a second raw connection, using the
		// session the instrumented client registered.
		net := simNetOf(t, env, d)
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TDoCheckpoint, Model: "traced", Iteration: 9}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TCheckpointDone || resp.Iteration != 9 {
			t.Fatalf("untraced checkpoint response = %+v", resp)
		}
		settleTraces(env)
		snap := d.Traces().Snapshot()
		if len(snap) != 1 {
			t.Fatalf("trace ring holds %d traces, want 1", len(snap))
		}
		tr := snap[0]
		if tr.ID != 0 || tr.Stitched {
			t.Fatalf("untraced request produced id=%s stitched=%v, want zero/unstitched", tr.ID, tr.Stitched)
		}
		if tr.Err != "" || tr.Root.Find("pull") == nil {
			t.Fatalf("untraced trace malformed: %+v", tr)
		}
		_ = c
	})
	eng.Run()
}

// TestTraceReportForEvictedTraceIsIgnored: a report whose trace has
// already left the ring (or never existed) must not error the
// connection or disturb other traffic.
func TestTraceReportForUnknownTraceIsIgnored(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		net := simNetOf(t, env, d)
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		// Unknown id, garbage payload: fire-and-forget, no reply.
		if err := conn.Send(env, &wire.Msg{Type: wire.TTraceReport, Model: "traced", TraceID: 0xfeed, Payload: []byte("{not json")}); err != nil {
			t.Fatal(err)
		}
		// The connection still serves ordinary requests afterwards.
		if err := conn.Send(env, &wire.Msg{Type: wire.TList}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TListResp {
			t.Fatalf("resp after trace report = %+v, want LIST_RESP (report must not generate a reply)", resp)
		}
		_ = c
	})
	eng.Run()
}

// simNetOf serves an already-running daemon on a second control-plane
// listener, so tests can dial raw wire connections alongside the
// instrumented client startTracedDaemon registered.
func simNetOf(t *testing.T, env sim.Env, d *daemon.Daemon) *wire.SimNet {
	t.Helper()
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve-raw", func(env sim.Env) { d.Serve(env, l) })
	return net
}

// TestWatchdogCapturesSlowCheckpoint pushes a transfer past the
// watchdog budget with an injected fabric delay (internal/faults) and
// checks the full evidence chain: portus_slow_transfers_total
// increments, the incident lands with its trace, and the flight
// recorder holds both the injected-fault events and the watchdog
// marker.
func TestWatchdogCapturesSlowCheckpoint(t *testing.T) {
	// Pass 1 (no faults, no budget): measure the baseline checkpoint
	// duration under the deterministic sim clock.
	var baseline time.Duration
	eng := sim.NewEngine()
	eng.Go("baseline", func(env sim.Env) {
		d, _, c := startTracedDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		baseline = d.Traces().Snapshot()[0].Duration
	})
	eng.Run()
	if baseline <= 0 {
		t.Fatalf("baseline duration = %v", baseline)
	}

	// Pass 2: budget just above baseline, every verb delayed enough to
	// blow well past it.
	eng = sim.NewEngine()
	eng.Go("slow", func(env sim.Env) {
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 1, GPUsPerNode: 1,
			GPUMemBytes: 16 << 20, PMemBytes: 32 << 20, Materialized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		// Every data-plane verb stalls for a full baseline, so one
		// checkpoint overshoots the budget by construction.
		inj := faults.NewInjector(faults.Config{
			Delay: faults.Rule{Rate: 1}, DelayBy: baseline,
		})
		d, err := daemon.New(env, daemon.Config{
			PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode,
			Fabric:    inj.Fabric(cl.Fabric),
			Telemetry: reg, TraceDepth: 8,
			SlowBudget: baseline + baseline/4,
		})
		if err != nil {
			t.Fatal(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

		spec := model.GPT("traced", 2, 64, 512, 10*time.Millisecond)
		placed, err := gpu.Place(cl.GPU(0, 0), spec)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
		if err != nil {
			t.Fatal(err)
		}
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		settleTraces(env)

		if got := countSlow(reg); got != 1 {
			t.Fatalf("portus_slow_transfers_total = %v, want 1", got)
		}
		incidents := d.Watchdog().Incidents()
		if len(incidents) != 1 {
			t.Fatalf("incidents = %d, want 1", len(incidents))
		}
		inc := incidents[0]
		if inc.Trace == nil || inc.Trace.Kind != "checkpoint" {
			t.Fatalf("incident trace = %+v", inc.Trace)
		}
		if inc.Budget != baseline+baseline/4 {
			t.Fatalf("incident budget = %v, want %v", inc.Budget, baseline+baseline/4)
		}
		var sawWatchdog bool
		for _, ev := range d.Events().Snapshot() {
			if ev.Kind == telemetry.EvWatchdogSlow {
				sawWatchdog = true
			}
		}
		if !sawWatchdog {
			t.Fatal("flight recorder missing the watchdog.slow marker")
		}
	})
	eng.Run()
}

func countSlow(reg *telemetry.Registry) float64 {
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	samples, err := telemetry.ParseText(&buf)
	if err != nil {
		return -1
	}
	for _, s := range samples {
		if s.Name == "portus_slow_transfers_total" {
			return s.Value
		}
	}
	return -1
}
