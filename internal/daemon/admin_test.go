package daemon_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// startAdminDaemon wires a daemon with an explicit registry, registers
// a small model, and returns the control network for raw admin
// requests.
func startAdminDaemon(t *testing.T, env sim.Env) (*daemon.Daemon, *telemetry.Registry, *client.Client, *wire.SimNet) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 16 << 20, PMemBytes: 32 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d, err := daemon.New(env, daemon.Config{
		PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

	placed, err := gpu.Place(cl.GPU(0, 0), model.GPT("traced", 2, 64, 512, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, cl.Compute[0].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	placed.ApplyUpdate(1)
	return d, reg, c, net
}

// request sends req and returns the daemon's reply.
func request(t *testing.T, env sim.Env, conn wire.Conn, req *wire.Msg) *wire.Msg {
	t.Helper()
	if err := conn.Send(env, req); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdminOpsRecordedInEventsAndCounters drives one of each admin
// operation through the control plane and checks each lands in the
// flight recorder and the portus_admin_ops_total counter family.
func TestAdminOpsRecordedInEventsAndCounters(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, reg, c, net := startAdminDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if resp := request(t, env, conn, &wire.Msg{Type: wire.TList}); resp.Type != wire.TListResp {
			t.Fatalf("LIST reply = %+v", resp)
		}
		if resp := request(t, env, conn, &wire.Msg{Type: wire.TDump, Model: "traced"}); resp.Type != wire.TDumpResp {
			t.Fatalf("DUMP reply = %+v", resp)
		}
		if resp := request(t, env, conn, &wire.Msg{Type: wire.TDelete, Model: "traced"}); resp.Type != wire.TDeleteOK {
			t.Fatalf("DELETE reply = %+v", resp)
		}

		var buf bytes.Buffer
		reg.WritePrometheus(&buf)
		out := buf.String()
		for _, want := range []string{
			`portus_admin_ops_total{op="list"} 1`,
			`portus_admin_ops_total{op="dump"} 1`,
			`portus_admin_ops_total{op="delete"} 1`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %q:\n%s", want, out)
			}
		}

		seen := map[telemetry.EventKind]*telemetry.Event{}
		for _, e := range d.Events().Snapshot() {
			e := e
			seen[e.Kind] = &e
		}
		for _, kind := range []telemetry.EventKind{telemetry.EvAdminList, telemetry.EvAdminDump, telemetry.EvAdminDelete} {
			if seen[kind] == nil {
				t.Errorf("flight recorder missing %s event", kind)
			}
		}
		if e := seen[telemetry.EvAdminDelete]; e != nil && e.Model != "traced" {
			t.Errorf("delete event names model %q, want traced", e.Model)
		}
	})
	eng.Run()
}

// TestDeleteClearsStoreAndMemoryTogether checks handleDelete's
// store-first ordering end state: after a successful delete the model
// is gone from the persistent index, the in-memory maps, and LIST; its
// PMem extents are reusable; and a busy model cannot be deleted.
func TestDeleteClearsStoreAndMemoryTogether(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _, c, net := startAdminDaemon(t, env)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if resp := request(t, env, conn, &wire.Msg{Type: wire.TDelete, Model: "traced"}); resp.Type != wire.TDeleteOK {
			t.Fatalf("DELETE reply = %+v", resp)
		}
		if _, err := d.Store().Lookup("traced"); err == nil {
			t.Fatal("model still in the persistent index after delete")
		}
		if names := d.ModelNames(); len(names) != 0 {
			t.Fatalf("daemon still tracks %v after delete", names)
		}
		resp := request(t, env, conn, &wire.Msg{Type: wire.TList})
		if resp.Type != wire.TListResp || len(resp.Models) != 0 {
			t.Fatalf("LIST after delete = %+v", resp)
		}
		// Deleting again reports not-found instead of corrupting state.
		resp = request(t, env, conn, &wire.Msg{Type: wire.TDelete, Model: "traced"})
		if resp.Type != wire.TError || !strings.Contains(resp.Error, "not found") {
			t.Fatalf("second DELETE reply = %+v", resp)
		}
	})
	eng.Run()
}

// TestPlacementHandshakeDefaultsToSelf checks a daemon configured
// without a group answers PLACEMENT with a one-member table naming
// itself — the single-node deployment needs no configuration.
func TestPlacementHandshakeDefaultsToSelf(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, net := startDaemon(t, env)
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		resp := request(t, env, conn, &wire.Msg{Type: wire.TPlacement})
		if resp.Type != wire.TPlacementResp {
			t.Fatalf("PLACEMENT reply = %+v", resp)
		}
		if len(resp.Placement) != 1 || resp.Placement[0].Node != d.NodeName() {
			t.Fatalf("placement table = %+v, want one self entry %q", resp.Placement, d.NodeName())
		}
		if resp.Placement[0].Weight <= 0 {
			t.Fatalf("self entry weight = %d, want the PMem capacity", resp.Placement[0].Weight)
		}
		if resp.Epoch != d.Group().Epoch() {
			t.Fatalf("placement epoch = %d, want %d", resp.Epoch, d.Group().Epoch())
		}
	})
	eng.Run()
}
