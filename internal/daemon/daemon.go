// Package daemon implements the Portus Daemon: the user-space service on
// the storage node that owns the devdax PMem namespace and performs all
// checkpoint data movement (§III-B).
//
// On registration it builds the model's three-level index — ModelTable
// entry, MIndex record, and two pre-allocated TensorData version slots
// per tensor — and keeps the in-DRAM ModelMap (a red-black tree) for
// lookups. On DO_CHECKPOINT a thread-pool worker pulls every tensor from
// the client's GPU memory with one-sided RDMA READs directly into PMem:
// no serialization, no kernel crossings, no intermediate copies. Restore
// is the inverse — one-sided RDMA WRITEs from PMem into GPU memory.
//
// Crash consistency follows the paper's double-mapping scheme: the
// target version slot is marked active (8-byte failure-atomic persist)
// before any data moves, its TensorData is flushed, and only then is the
// slot marked done — so recovery always finds the newest complete
// version.
package daemon

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/portus-sys/portus/internal/datapath"
	"github.com/portus-sys/portus/internal/delta"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/memdev"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rbtree"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sched"
	"github.com/portus-sys/portus/internal/serialize"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/store"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// Config parameterizes a daemon.
type Config struct {
	PMem   *pmem.Device
	RNode  *rdma.Node
	Fabric rdma.Fabric
	// NodeName identifies this daemon's storage node within a
	// multi-daemon group; defaults to the RDMA node's name. Reported in
	// LIST responses and checked against the placement table.
	NodeName string
	// Group is the storage tier's placement table, shared by every
	// member daemon. Nil means a single-node group containing only this
	// daemon (the classic topology); registrations for models the table
	// assigns elsewhere are refused, steering stale clients to re-fetch
	// routing via PLACEMENT.
	Group *placement.Map
	// Replicas is the group's replication factor: a registration is
	// accepted when this node is any of the model's top-Replicas
	// rendezvous owners, not just the primary. 0 or 1 means unreplicated
	// (the classic topology).
	Replicas int
	// Workers sizes the thread pool; defaults to 8.
	Workers int
	// TableCap bounds the ModelTable; defaults to 512.
	TableCap int64
	// QueueCap bounds the requests queued across all models before the
	// daemon answers BUSY; 0 defaults to 64, negative means unbounded.
	QueueCap int
	// ModelQueueCap bounds the requests queued per model; 0 defaults to
	// 8, negative means unbounded.
	ModelQueueCap int
	// SchedPolicy selects the scheduler's picker: "fair" (weighted
	// round-robin across models, restores first — the default) or
	// "fifo" (strict global arrival order).
	SchedPolicy string
	// TwoSidedData switches the data plane to two-sided SEND/RECV-style
	// transfer costs (ablation only; see DESIGN.md §5).
	TwoSidedData bool
	// StageThroughHost adds a host-DRAM staging hop on the storage node
	// instead of the zero-copy pull (ablation only).
	StageThroughHost bool
	// PipelineDepth bounds the chunks in flight past the pull stage:
	// depth 1 (the default) is the strictly sequential
	// pull-everything-then-flush datapath; depth d >= 2 overlaps the
	// PMem flush of chunk N with the pull of chunk N+1.
	PipelineDepth int
	// Lanes is the number of queue pairs checkpoint/restore transfers
	// stripe chunks across; defaults to 1. Each lane beyond the first
	// pays one queue-pair connection at daemon startup.
	Lanes int
	// ChunkSize splits tensors into transfer chunks of at most this
	// many bytes; 0 (the default) keeps one chunk per tensor. Pipelining
	// and striping schedule whole chunks, so splitting only matters for
	// models dominated by a few huge tensors.
	ChunkSize int64
	// RetryMax bounds per-chunk transfer/flush attempts on transient
	// errors: 0 defaults to 3, negative disables retry (one attempt).
	RetryMax int
	// RetryBackoff is the delay before a chunk's second attempt,
	// doubling per further attempt; 0 defaults to 100µs, negative
	// disables backoff.
	RetryBackoff time.Duration
	// LaneFailLimit quarantines a lane after this many consecutive
	// failed attempts, re-striping its chunks over the healthy lanes:
	// 0 defaults to 3, negative disables quarantine.
	LaneFailLimit int
	// Degrade enables strategy degradation: when the active datapath
	// strategy hits a route-class error (the client's MR agent is
	// unreachable), the engine falls back one-sided → two-sided →
	// host-staged for the rest of that operation.
	Degrade bool
	// Flush overrides the PMem data-zone flush (fault injection); nil
	// uses PMem.FlushData, which cannot fail.
	Flush func(off, n int64) error
	// Telemetry receives the daemon's counters, gauges, and latency
	// histograms; nil creates a private registry (readable through
	// Daemon.Telemetry).
	Telemetry *telemetry.Registry
	// TraceDepth sizes the ring buffer of completed checkpoint/restore
	// traces; defaults to 64.
	TraceDepth int
	// EventDepth sizes the flight recorder (the bounded ring of typed
	// scheduling/datapath/fault events served at /debug/events);
	// defaults to 1024.
	EventDepth int
	// SlowBudget is the slow-transfer watchdog's latency budget: any
	// checkpoint or restore whose end-to-end (daemon-side) duration
	// exceeds it increments portus_slow_transfers_total and snapshots
	// its trace plus the surrounding flight-recorder window. 0 disables
	// the watchdog.
	SlowBudget time.Duration
	// RepackWatermark is the fragmented-bytes fraction of the data zone
	// at which the storage engine reports NeedsRepack; 0 defaults to
	// 0.5, negative disables the watermark (reclaim still runs when a
	// registration hits ErrNoSpace).
	RepackWatermark float64
	// RepackAuto starts an online repack pass in the background whenever
	// the watermark trips after a delete. Off by default; the
	// ErrNoSpace-triggered reclaim-then-retry on the registration path
	// is always on.
	RepackAuto bool
	// DeltaEnabled accepts incremental checkpoints: a DO_CHECKPOINT
	// carrying a block-digest vector is diffed against the previous
	// version's persisted digest table, only the dirty blocks are pulled
	// over the fabric, and the clean blocks copy forward inside PMem.
	// Off by default; digest vectors from delta clients are then ignored
	// (full checkpoint, counted as a fallback).
	DeltaEnabled bool
	// DeltaBlockBytes, when nonzero, pins the digest block size this
	// daemon accepts: a client vector at any other block size falls back
	// to a full checkpoint. 0 accepts whatever block size the client
	// used.
	DeltaBlockBytes int64
}

// Stats is a consistent snapshot of the daemon's cumulative counters:
//
//   - Registered, Checkpoints, Restores count successfully completed
//     registrations, committed checkpoint versions, and finished
//     restores.
//   - Errors counts every error the daemon has reported to a client
//     (malformed requests and datapath failures; BUSY backpressure
//     replies are counted separately in portus_sched_busy_replies_total).
//   - QueueDepth is the number of requests currently queued in the
//     scheduler but not yet picked up by a worker (an instantaneous
//     gauge read straight from the scheduler, not a cumulative count).
//   - BytesPulled and BytesPushed total the checkpoint (GPU→PMem) and
//     restore (PMem→GPU) data volumes.
//   - PullTime, FlushTime, and PushTime give the cumulative stage
//     breakdown of the datapath (Figure 13): one-sided READ pulls,
//     PMem flushes, and restore-side one-sided WRITE pushes.
type Stats struct {
	Registered  int64
	Checkpoints int64
	Restores    int64
	Errors      int64
	QueueDepth  int64
	BytesPulled int64
	BytesPushed int64
	PullTime    time.Duration
	FlushTime   time.Duration
	PushTime    time.Duration
}

// Daemon is a running Portus server.
type Daemon struct {
	cfg Config
	// eng is the storage engine owning the PMem namespace: transactional
	// admission, capacity accounting, and online reclamation all route
	// through it. store is the engine's index handle (read paths).
	eng    *store.Engine
	store  *index.Store
	dataMR rdma.MR

	// repackMu guards pass: the single in-flight online repack pass
	// (nil when none). Passes never overlap; a trigger arriving during
	// one joins it instead.
	repackMu sync.Mutex
	pass     *repackPass

	// nodeName and group identify this daemon's place in the storage
	// tier; group is never nil after New.
	nodeName string
	group    *placement.Map
	replicas int

	// flush is the resolved data-zone flush (cfg.Flush or the PMem
	// default), shared by the datapath engine and the anti-entropy LOAD
	// path.
	flush func(off, n int64) error

	// sched owns admission, dedup, coalescing, ordering, and
	// backpressure for every checkpoint/restore request; the daemon's
	// request path is a thin shim around Submit/Next/Done.
	sched *sched.Scheduler
	// lanePool leases the RDMA lane set fairly across concurrent
	// transfers instead of striping every job over all lanes.
	lanePool *sched.LanePool

	mu       sync.Mutex
	modelMap *rbtree.Tree[string, int64] // ModelMap: name -> info_offset
	sessions map[string]*session

	// connMu guards the set of live control connections; Halt closes
	// them all so a killed node's clients see the peer reset instead of
	// waiting on a silent daemon.
	connMu sync.Mutex
	conns  map[wire.Conn]struct{}

	stats struct {
		registered  atomic.Int64
		checkpoints atomic.Int64
		restores    atomic.Int64
		errors      atomic.Int64
		bytesPulled atomic.Int64
		bytesPushed atomic.Int64
		pullNanos   atomic.Int64
		flushNanos  atomic.Int64
		pushNanos   atomic.Int64
		// deltaDirty holds the last accepted delta plan's dirty ratio
		// as float64 bits (gauges are integral, so it is served through
		// a GaugeFunc).
		deltaDirty atomic.Uint64
	}

	// deltaCrash is a test hook fired at the crash boundaries of an
	// incremental checkpoint ("pre-copy-forward", "post-copy-forward",
	// "post-table"); returning true makes the request die at that point,
	// as a power failure would, committing nothing further.
	deltaCrash func(stage string) bool

	tel telem

	// engine executes checkpoint pulls and restore pushes over the
	// chunked, optionally pipelined/striped datapath.
	engine *datapath.Engine

	// staging resources for the ablation path
	hostStage *sim.BandwidthResource
}

// telem bundles the daemon's registered metric handles and the
// completed-trace ring.
type telem struct {
	reg      *telemetry.Registry
	traces   *telemetry.TraceRing
	events   *telemetry.EventRing
	watchdog *telemetry.Watchdog

	registered, checkpoints, restores, errors *telemetry.Counter
	bytesPulled, bytesPushed                  *telemetry.Counter
	retries, degradations, dedups             *telemetry.Counter
	slowTransfers                             *telemetry.Counter
	adminList, adminDump, adminDelete         *telemetry.Counter
	adminLoad, crcFailures                    *telemetry.Counter
	nospaceReplies                            *telemetry.Counter
	deltaSaved, deltaFallbacks                *telemetry.Counter
	quarantined                               *telemetry.Gauge

	ckptLatency    *telemetry.Histogram // enqueue → commit, end to end
	enqueueWait    *telemetry.Histogram
	pullStage      *telemetry.Histogram
	flushStage     *telemetry.Histogram
	pushStage      *telemetry.Histogram
	restoreLatency *telemetry.Histogram
}

func newTelem(reg *telemetry.Registry, traceDepth, eventDepth int, slowBudget time.Duration, pm *pmem.Device) telem {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if traceDepth == 0 {
		traceDepth = 64
	}
	t := telem{
		reg:         reg,
		traces:      telemetry.NewTraceRing(traceDepth),
		events:      telemetry.NewEventRing(eventDepth),
		registered:  reg.Counter("portus_daemon_registered_total", "model registrations accepted"),
		checkpoints: reg.Counter("portus_daemon_checkpoints_total", "checkpoint versions committed"),
		restores:    reg.Counter("portus_daemon_restores_total", "restores completed"),
		errors:      reg.Counter("portus_daemon_errors_total", "errors reported to clients"),
		bytesPulled: reg.Counter("portus_daemon_bytes_pulled_total", "checkpoint bytes pulled from GPU memory"),
		bytesPushed: reg.Counter("portus_daemon_bytes_pushed_total", "restore bytes pushed to GPU memory"),

		retries:      reg.Counter("portus_datapath_retries_total", "chunk transfers and flushes re-attempted after a transient error"),
		degradations: reg.Counter("portus_datapath_strategy_degradations_total", "datapath strategy fallbacks taken on route-class errors"),
		dedups:       reg.Counter("portus_daemon_dedup_total", "retried requests deduplicated instead of double-executed"),
		quarantined:  reg.Gauge("portus_datapath_quarantined_lanes", "lanes currently quarantined out of a transfer's stripe set"),

		slowTransfers: reg.Counter("portus_slow_transfers_total", "transfers whose end-to-end duration exceeded the slow-transfer budget"),

		adminList:   reg.Counter("portus_admin_ops_total", "admin operations served", telemetry.L("op", "list")),
		adminDump:   reg.Counter("portus_admin_ops_total", "admin operations served", telemetry.L("op", "dump")),
		adminDelete: reg.Counter("portus_admin_ops_total", "admin operations served", telemetry.L("op", "delete")),
		adminLoad:   reg.Counter("portus_admin_ops_total", "admin operations served", telemetry.L("op", "load")),

		crcFailures: reg.Counter("portus_daemon_crc_mismatch_total", "restore or load attempts that failed the stored-version CRC check"),

		nospaceReplies: reg.Counter("portus_store_nospace_replies_total", "registrations answered with a transient NO_SPACE retry-after (backpressure, not failures)"),

		deltaSaved:     reg.Counter("portus_delta_bytes_saved_total", "bytes an incremental checkpoint kept off the fabric (copy-forward + skipped blocks)"),
		deltaFallbacks: reg.Counter("portus_delta_full_fallbacks_total", "checkpoints that requested delta but ran full (missing/mismatched digest table, or delta costlier than full)"),

		ckptLatency:    reg.Histogram("portus_checkpoint_seconds", "end-to-end checkpoint latency (enqueue to commit)", nil),
		enqueueWait:    reg.Histogram("portus_checkpoint_enqueue_wait_seconds", "time a checkpoint job waits for a worker", nil),
		pullStage:      reg.Histogram("portus_checkpoint_pull_seconds", "one-sided RDMA pull stage duration", nil),
		flushStage:     reg.Histogram("portus_checkpoint_flush_seconds", "PMem flush stage duration", nil),
		pushStage:      reg.Histogram("portus_restore_push_seconds", "one-sided RDMA push stage duration", nil),
		restoreLatency: reg.Histogram("portus_restore_seconds", "end-to-end restore latency (enqueue to done)", nil),
	}
	reg.CounterFunc("portus_pmem_flush_ops_total", "data-zone flush operations",
		func() float64 { return float64(pm.DataFlushOps()) })
	reg.CounterFunc("portus_pmem_flush_bytes_total", "bytes covered by data-zone flushes",
		func() float64 { return float64(pm.DataFlushBytes()) })
	reg.CounterFunc("portus_pmem_meta_flush_ops_total", "metadata-zone flush operations (incl. version-flag commits)",
		func() float64 { return float64(pm.MetaFlushOps()) })
	// The watchdog observes every completed trace as it lands in the
	// ring; stitching a client tree in later never re-triggers it.
	t.watchdog = telemetry.NewWatchdog(slowBudget, t.events, t.slowTransfers)
	t.traces.OnComplete(t.watchdog.Observe)
	return t
}

// session is the live state of one registered model: the client's GPU
// memory regions keyed one-to-one to the model's tensors. Admission,
// dedup, and in-flight tracking all live in the scheduler; the session
// carries no request state.
type session struct {
	clientNode string
	mrs        []rdma.RemoteMR
	model      *index.Model
}

// reqCtx is the daemon-side payload of a scheduled task: the session
// the request runs against and the connection its reply goes to.
// Duplicate and coalesced submissions each carry their own reqCtx, so
// every surviving connection gets its acknowledgment.
type reqCtx struct {
	sess *session
	conn wire.Conn
	// digests/deltaBlock carry a delta client's block-digest vector from
	// DO_CHECKPOINT to the worker; empty means full checkpoint.
	digests    []uint64
	deltaBlock int64
}

// New opens (or formats) the namespace and starts the worker pool.
func New(env sim.Env, cfg Config) (*Daemon, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.TableCap == 0 {
		cfg.TableCap = 512
	}
	// The telemetry bundle comes first so the storage engine's gauges
	// land in the same registry.
	tel := newTelem(cfg.Telemetry, cfg.TraceDepth, cfg.EventDepth, cfg.SlowBudget, cfg.PMem)
	eng, err := store.Open(store.Config{
		PMem:      cfg.PMem,
		TableCap:  cfg.TableCap,
		Watermark: cfg.RepackWatermark,
		Telemetry: tel.reg,
		Events:    tel.events,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: opening namespace: %w", err)
	}
	var policy sched.Policy
	switch cfg.SchedPolicy {
	case "", "fair":
		policy = sched.Fair
	case "fifo":
		policy = sched.FIFO
	default:
		return nil, fmt.Errorf("daemon: unknown scheduler policy %q (want fair or fifo)", cfg.SchedPolicy)
	}
	nodeName := cfg.NodeName
	if nodeName == "" {
		nodeName = cfg.RNode.Name()
	}
	group := cfg.Group
	if group == nil {
		// Classic single-node topology: a one-member table that assigns
		// everything to this daemon.
		group, err = placement.New(placement.Node{Name: nodeName, Weight: cfg.PMem.DataSize()})
		if err != nil {
			return nil, fmt.Errorf("daemon: self placement: %w", err)
		}
	} else if _, ok := group.Lookup(nodeName); !ok {
		return nil, fmt.Errorf("daemon: node %q is not a member of the placement map", nodeName)
	}
	replicas := cfg.Replicas
	if replicas < 1 {
		replicas = 1
	}
	d := &Daemon{
		cfg:      cfg,
		eng:      eng,
		store:    eng.Index(),
		nodeName: nodeName,
		group:    group,
		replicas: replicas,
		modelMap: rbtree.New[string, int64](),
		sessions: make(map[string]*session),
		tel:      tel,
	}
	d.sched = sched.New(env, sched.Config{
		ModelQueueCap: cfg.ModelQueueCap,
		GlobalCap:     cfg.QueueCap,
		Workers:       cfg.Workers,
		Policy:        policy,
		Telemetry:     d.tel.reg,
		Events:        d.tel.events,
	})
	// The queue-depth gauge samples the scheduler — the single source of
	// truth — instead of mirroring it in a second atomic.
	d.tel.reg.GaugeFunc("portus_daemon_queue_depth", "requests queued in the scheduler but not yet picked up by a worker",
		func() float64 { return float64(d.sched.QueueDepth()) })
	// Route all data-plane verbs through the instrumented fabric so
	// per-op bytes and latency land in the registry.
	d.cfg.Fabric = rdma.Instrument("data", cfg.Fabric, d.tel.reg)
	// Register the whole data zone once; verbs address TensorData by
	// offset within it.
	d.dataMR = cfg.RNode.RegisterMR(env, cfg.PMem.Data(), 0, cfg.PMem.DataSize())
	if cfg.StageThroughHost || cfg.Degrade {
		// Degradation's last fallback stages through host DRAM, so the
		// staging resource must exist whenever the chain can reach it.
		d.hostStage = sim.NewBandwidthResource(env, "daemon/host-stage", perfmodel.ServerDRAMBW)
	}
	// The ablation variants are datapath strategies, not branches: the
	// engine's chunking, pipelining, and lane striping apply to all of
	// them uniformly.
	var strat datapath.Strategy = datapath.OneSided{}
	switch {
	case cfg.TwoSidedData:
		strat = datapath.TwoSided{}
	case cfg.StageThroughHost:
		strat = datapath.HostStaged{}
	}
	var fallbacks []datapath.Strategy
	if cfg.Degrade {
		for _, s := range []datapath.Strategy{datapath.OneSided{}, datapath.TwoSided{}, datapath.HostStaged{}} {
			if s.Name() != strat.Name() {
				fallbacks = append(fallbacks, s)
			}
		}
	}
	retry := datapath.RetryPolicy{
		MaxAttempts:   cfg.RetryMax,
		Backoff:       cfg.RetryBackoff,
		BackoffMax:    10 * time.Millisecond,
		LaneFailLimit: cfg.LaneFailLimit,
	}
	switch {
	case retry.MaxAttempts == 0:
		retry.MaxAttempts = 3
	case retry.MaxAttempts < 0:
		retry.MaxAttempts = 1
	}
	switch {
	case retry.Backoff == 0:
		retry.Backoff = 100 * time.Microsecond
	case retry.Backoff < 0:
		retry.Backoff = 0
	}
	switch {
	case retry.LaneFailLimit == 0:
		retry.LaneFailLimit = 3
	case retry.LaneFailLimit < 0:
		retry.LaneFailLimit = 0
	}
	flush := cfg.Flush
	if flush == nil {
		pm := cfg.PMem
		flush = func(off, n int64) error { pm.FlushData(off, n); return nil }
	}
	d.flush = flush
	engineLanes := rdma.ConnectLanes(env, cfg.RNode, cfg.Lanes)
	d.lanePool = sched.NewLanePool(engineLanes, d.tel.reg)
	d.engine = datapath.New(datapath.Config{
		Strategy:  strat,
		Fallbacks: fallbacks,
		Depth:     cfg.PipelineDepth,
		Lanes:     engineLanes,
		IssueCost: perfmodel.RDMAReadIssueCost,
		Flush:     flush,
		FlushCost: flushCost,
		Retry:     retry,
		Metrics: datapath.Metrics{
			Retries:          d.tel.retries,
			Degradations:     d.tel.degradations,
			QuarantinedLanes: d.tel.quarantined,
			Events:           d.tel.events,
		},
	})
	// Rebuild ModelMap from the persistent ModelTable (daemon restart).
	models, err := d.store.Models()
	if err != nil {
		return nil, fmt.Errorf("daemon: rebuilding ModelMap: %w", err)
	}
	for _, m := range models {
		d.modelMap.Put(m.Name, m.InfoOff())
	}
	// Cumulative stage times, sampled from the stats atomics at scrape
	// time (the Figure 13 breakdown as counters).
	d.tel.reg.CounterFunc("portus_daemon_pull_seconds_total", "cumulative RDMA pull stage time",
		func() float64 { return time.Duration(d.stats.pullNanos.Load()).Seconds() })
	d.tel.reg.CounterFunc("portus_daemon_flush_seconds_total", "cumulative PMem flush stage time",
		func() float64 { return time.Duration(d.stats.flushNanos.Load()).Seconds() })
	d.tel.reg.CounterFunc("portus_daemon_push_seconds_total", "cumulative restore push stage time",
		func() float64 { return time.Duration(d.stats.pushNanos.Load()).Seconds() })
	d.tel.reg.GaugeFunc("portus_delta_dirty_ratio", "fraction of the model the last accepted incremental checkpoint pulled over the fabric",
		func() float64 { return math.Float64frombits(d.stats.deltaDirty.Load()) })
	for w := 0; w < cfg.Workers; w++ {
		env.Go(fmt.Sprintf("portusd-worker-%d", w), d.worker)
	}
	return d, nil
}

// Store exposes the persistent index (for portusctl and the repacker).
func (d *Daemon) Store() *index.Store { return d.store }

// Engine exposes the storage engine (capacity stats, online repack).
func (d *Daemon) Engine() *store.Engine { return d.eng }

// NodeName is this daemon's storage-node identity within its group.
func (d *Daemon) NodeName() string { return d.nodeName }

// Group exposes the placement table this daemon serves PLACEMENT from.
func (d *Daemon) Group() *placement.Map { return d.group }

// Replicas is the group's replication factor as this daemon enforces
// it (>= 1).
func (d *Daemon) Replicas() int { return d.replicas }

// Halt stops the worker pool and severs every live control
// connection: workers blocked in Next return, queued tasks are
// dropped, later submissions are rejected with BUSY, and connected
// clients see the peer reset instead of waiting on a silent daemon.
// Whole-node fault injection uses it (together with closing the
// listener and cutting fabric routes) to make a storage node dead;
// a replacement daemon is a fresh New on a fresh namespace.
func (d *Daemon) Halt(env sim.Env) {
	d.sched.Close(env)
	d.connMu.Lock()
	conns := make([]wire.Conn, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.conns = nil
	d.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Telemetry exposes the daemon's metrics registry (served by the admin
// endpoint's /metrics).
func (d *Daemon) Telemetry() *telemetry.Registry { return d.tel.reg }

// Traces exposes the ring of recently completed checkpoint/restore
// traces (served by /debug/traces; portusd's -verbose log subscribes
// via OnComplete).
func (d *Daemon) Traces() *telemetry.TraceRing { return d.tel.traces }

// Events exposes the flight recorder — the bounded ring of typed
// scheduling/datapath/fault events (served by /debug/events).
func (d *Daemon) Events() *telemetry.EventRing { return d.tel.events }

// Watchdog exposes the slow-transfer watchdog (budget and captured
// incidents; served by /debug/events).
func (d *Daemon) Watchdog() *telemetry.Watchdog { return d.tel.watchdog }

// Stats snapshots the daemon counters; see Stats for field semantics.
func (d *Daemon) Stats() Stats {
	return Stats{
		Registered:  d.stats.registered.Load(),
		Checkpoints: d.stats.checkpoints.Load(),
		Restores:    d.stats.restores.Load(),
		Errors:      d.stats.errors.Load(),
		QueueDepth:  d.sched.QueueDepth(),
		BytesPulled: d.stats.bytesPulled.Load(),
		BytesPushed: d.stats.bytesPushed.Load(),
		PullTime:    time.Duration(d.stats.pullNanos.Load()),
		FlushTime:   time.Duration(d.stats.flushNanos.Load()),
		PushTime:    time.Duration(d.stats.pushNanos.Load()),
	}
}

// ModelNames returns the ModelMap keys in order.
func (d *Daemon) ModelNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.modelMap.Keys()
}

// Serve accepts control connections until the listener closes.
func (d *Daemon) Serve(env sim.Env, l wire.Listener) {
	for {
		conn, err := l.Accept(env)
		if err != nil {
			return
		}
		env.Go("portusd-conn", func(env sim.Env) { d.handleConn(env, conn) })
	}
}

func (d *Daemon) handleConn(env sim.Env, conn wire.Conn) {
	d.connMu.Lock()
	if d.conns == nil {
		d.conns = make(map[wire.Conn]struct{})
	}
	d.conns[conn] = struct{}{}
	d.connMu.Unlock()
	defer func() {
		d.connMu.Lock()
		delete(d.conns, conn)
		d.connMu.Unlock()
	}()
	for {
		m, err := conn.Recv(env)
		if err != nil {
			return
		}
		switch m.Type {
		case wire.TRegister:
			d.handleRegister(env, conn, m)
		case wire.TDoCheckpoint:
			d.enqueue(env, conn, m, sched.ClassCheckpoint)
		case wire.TRestore:
			d.enqueue(env, conn, m, sched.ClassRestore)
		case wire.TList:
			d.handleList(env, conn)
		case wire.TDelete:
			d.handleDelete(env, conn, m)
		case wire.TDump:
			d.handleDump(env, conn, m)
		case wire.TLoad:
			d.handleLoad(env, conn, m)
		case wire.TRepack:
			d.handleRepack(env, conn, m)
		case wire.TPlacement:
			d.handlePlacement(env, conn)
		case wire.TTraceReport:
			d.handleTraceReport(m)
		default:
			// Echo the request's type so the client can correlate the
			// error to whichever waiter sent the malformed message.
			d.sendErrFor(env, conn, m.Type, m.Iteration, m.Model, fmt.Sprintf("unexpected message %s", m.Type))
		}
	}
}

// handleTraceReport stitches a client-reported span tree into the
// matching daemon trace. The report is fire-and-forget — no reply even
// on malformed payloads, since the client never waits on one — and
// reports for traces already evicted from the ring are dropped.
func (d *Daemon) handleTraceReport(m *wire.Msg) {
	if m.TraceID == 0 || len(m.Payload) == 0 {
		return
	}
	var root telemetry.Span
	if err := json.Unmarshal(m.Payload, &root); err != nil {
		return
	}
	d.tel.traces.Stitch(telemetry.TraceID(m.TraceID), &root)
}

// sendErrFor reports an error correlated to the failing request so the
// client can release the matching waiter. Control-plane send failures
// mean the client is gone; the connection loop observes it on the next
// Recv.
func (d *Daemon) sendErrFor(env sim.Env, conn wire.Conn, inReplyTo wire.Type, iter uint64, model, msg string) {
	d.sendErrCode(env, conn, inReplyTo, wire.ErrCodeNone, iter, model, msg)
}

// sendErrCode is sendErrFor with a machine-readable classification, so
// clients can map the failure to a typed sentinel instead of
// string-matching.
func (d *Daemon) sendErrCode(env sim.Env, conn wire.Conn, inReplyTo wire.Type, code wire.ErrCode, iter uint64, model, msg string) {
	d.stats.errors.Add(1)
	d.tel.errors.Inc()
	_ = conn.Send(env, &wire.Msg{
		Type: wire.TError, InReplyTo: inReplyTo, Code: code, Iteration: iter, Model: model, Error: msg,
	})
}

// peerAdder is implemented by fabrics that need explicit peer-address
// exchange (the TCP soft-RDMA fabric).
type peerAdder interface {
	AddPeer(name, addr string)
}

// handleRegister builds (or re-attaches) the persistent structure for a
// model and records the client's memory regions.
func (d *Daemon) handleRegister(env sim.Env, conn wire.Conn, m *wire.Msg) {
	if len(m.Tensors) == 0 {
		d.sendErrFor(env, conn, wire.TRegister, 0, m.Model, "registration packet has no tensors")
		return
	}
	owners := d.group.Owners(m.Model, d.replicas)
	if !memberOf(owners, d.nodeName) {
		// A misrouted registration means the client holds a stale table;
		// refusing it here (naming the replica set and epoch) keeps each
		// model's data on exactly its owner daemons.
		d.sendErrCode(env, conn, wire.TRegister, wire.ErrCodeMisplaced, 0, m.Model,
			fmt.Sprintf("model %q is placed on %v (placement epoch %d), not %q", m.Model, owners, d.group.Epoch(), d.nodeName))
		return
	}
	if m.FabricAddr != "" {
		if pa, ok := d.cfg.Fabric.(peerAdder); ok {
			pa.AddPeer(m.ClientNode, m.FabricAddr)
		}
	}
	metas := make([]index.TensorMeta, len(m.Tensors))
	mrs := make([]rdma.RemoteMR, len(m.Tensors))
	for i, t := range m.Tensors {
		metas[i] = index.TensorMeta{Name: t.Name, DType: index.DType(t.DType), Dims: t.Dims, Size: t.Size}
		mrs[i] = rdma.RemoteMR{Node: m.ClientNode, RKey: t.RKey, Len: t.Size}
	}
	env.Sleep(time.Duration(len(m.Tensors)) * perfmodel.IndexInsertCost)

	d.mu.Lock()
	model, err := d.admitLocked(m.Model, metas)
	d.mu.Unlock()
	if err != nil && store.IsSpaceError(err) {
		// Reclaim-then-retry: run (or join) an online repack pass, then
		// try the admission once more before surfacing anything.
		d.tel.events.Emit(telemetry.Event{
			Time: env.Now(), Kind: telemetry.EvStoreReclaim, Model: m.Model,
			Detail: fmt.Sprintf("registration hit %v; reclaiming", err),
		})
		d.runRepack(env, true)
		d.mu.Lock()
		model, err = d.admitLocked(m.Model, metas)
		d.mu.Unlock()
	}
	if err != nil {
		if store.IsSpaceError(err) {
			// Still exhausted after reclaiming: transient backpressure,
			// not a hard failure. Space comes back as tenants delete, so
			// the client backs off and re-registers, mirroring BUSY.
			d.tel.nospaceReplies.Inc()
			d.tel.events.Emit(telemetry.Event{
				Time: env.Now(), Kind: telemetry.EvStoreReclaim, Model: m.Model,
				Detail: "still exhausted after reclaim; NO_SPACE retry-after",
			})
			_ = conn.Send(env, &wire.Msg{
				Type: wire.TError, InReplyTo: wire.TRegister, Code: wire.ErrCodeNoSpace,
				Model: m.Model, Error: err.Error(), RetryAfter: 2 * time.Millisecond,
			})
			return
		}
		d.sendErrFor(env, conn, wire.TRegister, 0, m.Model, err.Error())
		return
	}
	d.mu.Lock()
	d.sessions[m.Model] = &session{clientNode: m.ClientNode, mrs: mrs, model: model}
	d.mu.Unlock()

	d.stats.registered.Add(1)
	d.tel.registered.Inc()
	if err := conn.Send(env, &wire.Msg{Type: wire.TRegisterOK, Model: m.Model}); err != nil {
		return
	}
}

// errStructMismatch distinguishes a re-registration whose tensors don't
// match the stored model from space errors on the admission path.
var errStructMismatch = errors.New("registration does not match stored model structure")

// admitLocked is the transactional admission step shared by REGISTER
// and LOAD: create the model (all-or-nothing through the engine) or
// re-attach to the stored structure, restoring any version slot the
// offline repacker reclaimed. Caller holds d.mu.
func (d *Daemon) admitLocked(name string, metas []index.TensorMeta) (*index.Model, error) {
	model, err := d.store.Lookup(name)
	if err != nil {
		// Fresh model: create ModelTable entry, MIndex, TensorData x2.
		model, err = d.eng.CreateModel(name, metas)
		if err != nil {
			return nil, err
		}
		d.modelMap.Put(name, model.InfoOff())
		return model, nil
	}
	if !metasMatch(model.Tensors, metas) {
		// Re-registration after a client restart must describe the same
		// structure, or the persistent index cannot serve it.
		return nil, errStructMismatch
	}
	// A repacked model keeps only its newest version; restore the
	// double mapping before training resumes.
	if err := d.eng.EnsureSlots(model); err != nil {
		return nil, err
	}
	return model, nil
}

func memberOf(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

func metasMatch(a, b []index.TensorMeta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Size != b[i].Size || a[i].DType != b[i].DType {
			return false
		}
	}
	return true
}

// enqueue routes a checkpoint/restore request into the scheduler. The
// scheduler owns admission, dedup, coalescing, and ordering under a
// single lock, so the old CAS-vs-park race window between a failed
// busy flip and the duplicate-park check no longer exists.
func (d *Daemon) enqueue(env sim.Env, conn wire.Conn, m *wire.Msg, class sched.Class) {
	d.mu.Lock()
	sess, ok := d.sessions[m.Model]
	d.mu.Unlock()
	if !ok {
		d.sendErrCode(env, conn, m.Type, wire.ErrCodeNotRegistered, m.Iteration, m.Model, "model not registered on this daemon")
		return
	}
	// A DO_CHECKPOINT retried after a reconnect (the original DONE was
	// lost with the connection) is keyed by (model, iteration): if that
	// iteration already committed, ack it from the index instead of
	// double-executing.
	if class == sched.ClassCheckpoint && d.committed(sess, m.Iteration) {
		d.tel.dedups.Inc()
		var crc uint64
		for v := 0; v < 2; v++ {
			if h := sess.model.VersionHeader(v); h.State == index.StateDone && h.Iteration == m.Iteration {
				crc = h.CRC
			}
		}
		_ = conn.Send(env, &wire.Msg{Type: wire.TCheckpointDone, Model: m.Model, Iteration: m.Iteration, CRC: crc})
		return
	}
	res := d.sched.Submit(env, &sched.Task{
		Model:      m.Model,
		Class:      class,
		Iteration:  m.Iteration,
		EnqueuedAt: env.Now(),
		TraceID:    telemetry.TraceID(m.TraceID),
		ParentSpan: m.SpanID,
		Payload:    &reqCtx{sess: sess, conn: conn, digests: m.Digests, deltaBlock: m.DeltaBlock},
	})
	switch res.Verdict {
	case sched.Deduped:
		// The identical request is queued or in flight; this connection
		// is parked on it and answered when it completes.
		d.tel.dedups.Inc()
	case sched.Rejected:
		// Backpressure, not an error: the client re-sends after the
		// hinted delay.
		_ = conn.Send(env, &wire.Msg{
			Type: wire.TBusy, InReplyTo: m.Type, Iteration: m.Iteration,
			Model: m.Model, RetryAfter: res.RetryAfter,
		})
	}
}

// committed reports whether iter is already a complete version on PMem.
func (d *Daemon) committed(sess *session, iter uint64) bool {
	for v := 0; v < 2; v++ {
		if h := sess.model.VersionHeader(v); h.State == index.StateDone && h.Iteration == iter {
			return true
		}
	}
	return false
}

// worker is one thread-pool member: it owns whole tasks, touching only
// its task's MIndex and TensorData (the paper's per-worker
// independence). doCheckpoint/doRestore release the task's lane
// (sched.Done) themselves before fanning replies out; the deferred-
// style Done here is an idempotent backstop so a missed path can never
// wedge a lane.
func (d *Daemon) worker(env sim.Env) {
	for {
		t, ok := d.sched.Next(env)
		if !ok {
			return
		}
		switch t.Class {
		case sched.ClassCheckpoint:
			d.doCheckpoint(env, t, t.Payload.(*reqCtx))
		case sched.ClassRestore:
			d.doRestore(env, t, t.Payload.(*reqCtx))
		case sched.ClassMaintenance:
			d.doMaintenance(env, t)
		}
		d.sched.Done(env, t)
	}
}

// maintCtx is the payload of a maintenance task: the pass it belongs
// to, so the last finishing model completes the pass.
type maintCtx struct {
	pass *repackPass
}

// repackPass tracks one online repack pass across its per-model
// maintenance tasks. done fires when every model's step finished and
// the engine's FinishPass ran.
type repackPass struct {
	mu        sync.Mutex
	remaining int
	models    int
	moved     int64
	err       error
	report    store.PassReport

	started time.Duration
	trace   telemetry.TraceID
	done    *sim.Signal
}

// runRepack starts an online repack pass — or joins the active one —
// and, when wait is true, blocks until it completes. One maintenance
// task per stored model is submitted to the scheduler's maintenance
// class: each task leases its model's lane (quiescing that model's
// traffic while queued checkpoints/restores keep strict priority), and
// the last one to finish trims the bump pointer and compacts the
// ModelTable.
func (d *Daemon) runRepack(env sim.Env, wait bool) *repackPass {
	d.repackMu.Lock()
	if p := d.pass; p != nil {
		d.repackMu.Unlock()
		if wait {
			p.done.Wait(env)
		}
		return p
	}
	names := d.ModelNames()
	p := &repackPass{
		remaining: len(names),
		models:    len(names),
		started:   env.Now(),
		trace:     telemetry.NewTraceID(),
		done:      sim.NewSignal(env),
	}
	d.pass = p
	d.repackMu.Unlock()
	if len(names) == 0 {
		d.finishPass(env, p)
	}
	for _, name := range names {
		res := d.sched.Submit(env, &sched.Task{
			Model:      name,
			Class:      sched.ClassMaintenance,
			EnqueuedAt: env.Now(),
			TraceID:    p.trace,
			Payload:    &maintCtx{pass: p},
		})
		if res.Verdict == sched.Rejected {
			// Only a closed scheduler rejects maintenance; count the
			// model as done so the pass still completes.
			d.passStep(env, p, 0, nil)
		}
		// Deduped cannot happen (one task per model per pass, and passes
		// never overlap), but if it ever did, doMaintenance fans pass
		// completion out to Dups as well.
	}
	if wait {
		p.done.Wait(env)
	}
	return p
}

// passStep records one model's maintenance step; the last step closes
// the pass.
func (d *Daemon) passStep(env sim.Env, p *repackPass, moved int64, err error) {
	p.mu.Lock()
	p.moved += moved
	if err != nil && p.err == nil {
		p.err = err
	}
	p.remaining--
	last := p.remaining == 0
	p.mu.Unlock()
	if last {
		d.finishPass(env, p)
	}
}

// finishPass runs the engine's end-of-pass step (bump-pointer trim +
// live ModelTable compaction), records the report, and releases
// everyone waiting on the pass.
func (d *Daemon) finishPass(env sim.Env, p *repackPass) {
	rep, err := d.eng.FinishPass(p.models, p.moved, env.Now()-p.started, p.trace)
	p.mu.Lock()
	if err != nil && p.err == nil {
		p.err = err
	}
	p.report = rep
	perr := p.err
	p.mu.Unlock()
	detail := rep.String()
	if perr != nil {
		detail = "pass error: " + perr.Error()
	}
	d.tel.events.Emit(telemetry.Event{
		Time: env.Now(), Kind: telemetry.EvStoreRepack, Trace: p.trace, Detail: detail,
	})
	d.repackMu.Lock()
	d.pass = nil
	d.repackMu.Unlock()
	p.done.Fire(env)
}

// doMaintenance executes one model's slice of an online repack pass.
// Holding the lane's running slot IS the quiesce lease: no checkpoint
// or restore for this model can dispatch until sched.Done.
func (d *Daemon) doMaintenance(env sim.Env, t *sched.Task) {
	mc := t.Payload.(*maintCtx)
	// Compact through the session's live handle (when one exists) so the
	// repoint lands in the same in-memory PAddr cache the checkpoint and
	// restore paths read; a fresh Lookup would leave the session stale.
	var cached *index.Model
	d.mu.Lock()
	if sess := d.sessions[t.Model]; sess != nil {
		cached = sess.model
	}
	d.mu.Unlock()
	moved, err := d.eng.CompactModel(t.Model, cached)
	if moved > 0 {
		// Model the copy + flush time of the relocated bytes while the
		// lease is still held.
		env.Sleep(flushCost(moved))
	}
	d.sched.Done(env, t)
	// If the model was deleted while this task waited, drop its lane.
	d.mu.Lock()
	_, alive := d.modelMap.Get(t.Model)
	d.mu.Unlock()
	if !alive {
		d.sched.Forget(t.Model)
	}
	d.passStep(env, mc.pass, moved, err)
	for _, dp := range t.Dups {
		if m2, ok := dp.(*maintCtx); ok {
			d.passStep(env, m2.pass, 0, nil)
		}
	}
}

// maybeAutoRepack kicks a background pass when the watermark trips and
// auto mode is on.
func (d *Daemon) maybeAutoRepack(env sim.Env) {
	if !d.cfg.RepackAuto || !d.eng.NeedsRepack() {
		return
	}
	d.runRepack(env, false)
}

// handleRepack runs one online repack pass to completion and answers
// with its JSON report — portusctl repack -addr.
func (d *Daemon) handleRepack(env sim.Env, conn wire.Conn, m *wire.Msg) {
	p := d.runRepack(env, true)
	p.mu.Lock()
	rep, perr := p.report, p.err
	p.mu.Unlock()
	if perr != nil {
		d.sendErrFor(env, conn, wire.TRepack, 0, "", perr.Error())
		return
	}
	payload, err := json.Marshal(rep)
	if err != nil {
		d.sendErrFor(env, conn, wire.TRepack, 0, "", err.Error())
		return
	}
	_ = conn.Send(env, &wire.Msg{Type: wire.TRepackResp, InReplyTo: wire.TRepack, Payload: payload})
}

// plan builds the chunk schedule for one version slot of a model, and
// the transfer context binding it to the client's remote regions.
func (d *Daemon) plan(sess *session, slot int) (datapath.Plan, *datapath.Context) {
	m := sess.model
	tensors := make([]datapath.TensorRange, len(m.Tensors))
	for i, tm := range m.Tensors {
		ext := m.TensorData(i, slot)
		tensors[i] = datapath.TensorRange{Name: tm.Name, PMemOff: ext.Off, Size: ext.Size}
	}
	cx := &datapath.Context{
		Fabric:    d.cfg.Fabric,
		Local:     d.cfg.RNode,
		LocalMR:   d.dataMR,
		Remote:    sess.mrs,
		HostStage: d.hostStage,
	}
	return datapath.NewPlan(tensors, d.cfg.ChunkSize), cx
}

// deltaPlan is a prepared incremental checkpoint: the dirty extents to
// pull over the fabric, the clean spans to copy forward locally in
// PMem, and the byte accounting behind the decision.
type deltaPlan struct {
	plan                         datapath.Plan
	spans                        []datapath.CopySpan
	pull, copied, skipped, total int64
}

// modelSizes collects a model's tensor sizes (the delta layout) and
// their sum.
func modelSizes(m *index.Model) ([]int64, int64) {
	sizes := make([]int64, len(m.Tensors))
	var total int64
	for i, tm := range m.Tensors {
		sizes[i] = tm.Size
		total += tm.Size
	}
	return sizes, total
}

// planDelta decides whether a checkpoint can run incrementally. It must
// run BEFORE SetActive: the decision reads both slots' version headers
// and persisted digest tables, and SetActive destroys the target
// slot's header. A nil return means run a full checkpoint; every nil
// on a request that asked for delta is counted and flight-recorded as
// a fallback.
func (d *Daemon) planDelta(env sim.Env, t *sched.Task, rc *reqCtx, slot int) *deltaPlan {
	if rc.deltaBlock <= 0 || len(rc.digests) == 0 {
		return nil // pre-delta client: full checkpoint is the contract, not a fallback
	}
	fallback := func(reason string) *deltaPlan {
		d.tel.deltaFallbacks.Inc()
		d.tel.events.Emit(telemetry.Event{
			Time: env.Now(), Kind: telemetry.EvDeltaFallback,
			Model: t.Model, Iteration: t.Iteration, Trace: t.TraceID, Detail: reason,
		})
		return nil
	}
	if !d.cfg.DeltaEnabled {
		return fallback("delta disabled on this daemon")
	}
	block := rc.deltaBlock
	if want := d.cfg.DeltaBlockBytes; want > 0 && block != want {
		return fallback(fmt.Sprintf("client block %d bytes, daemon pinned to %d", block, want))
	}
	m := rc.sess.model
	sizes, total := modelSizes(m)
	layout := delta.LayoutHash(sizes, block)
	count := delta.BlockCount(sizes, block)
	if len(rc.digests) != count {
		return fallback(fmt.Sprintf("digest vector has %d blocks, layout needs %d", len(rc.digests), count))
	}
	prevSlot, prevHdr, ok := m.LatestDone()
	if !ok {
		// First version of this model: nothing could ever delta against
		// it, so the full pull is the contract rather than a fallback.
		return nil
	}
	if prevSlot == slot {
		return fallback("previous complete version occupies the target slot")
	}
	active, ok := d.store.DeltaGet(m, prevSlot)
	if !ok || active.Iteration != prevHdr.Iteration || !active.Matches(block, layout, count) {
		return fallback("previous version has no trusted digest table")
	}
	// The target slot's table is only a skip oracle: when it is stale or
	// missing, every clean block copies forward instead of skipping —
	// correct either way, just slower.
	var target []uint64
	if h := m.VersionHeader(slot); h.State == index.StateDone {
		if tt, ok := d.store.DeltaGet(m, slot); ok && tt.Iteration == h.Iteration && tt.Matches(block, layout, count) {
			target = tt.Digests
		}
	}
	diff := delta.ThreeWay(sizes, block, rc.digests, active.Digests, target)
	if diff.PullBytes+diff.CopyBytes >= total {
		return fallback(fmt.Sprintf("delta would move %d of %d bytes; full pull is cheaper",
			diff.PullBytes+diff.CopyBytes, total))
	}
	dp := &deltaPlan{pull: diff.PullBytes, copied: diff.CopyBytes, skipped: diff.SkipBytes, total: total}
	var extents []datapath.Extent
	for _, x := range diff.Pull {
		ext := m.TensorData(x.Tensor, slot)
		extents = append(extents, datapath.Extent{
			Tensor: x.Tensor, Name: m.Tensors[x.Tensor].Name,
			TensorOff: x.TensorOff, PMemOff: ext.Off + x.TensorOff, Size: x.Size,
		})
	}
	dp.plan = datapath.NewDeltaPlan(extents, d.cfg.ChunkSize)
	for _, x := range diff.Copy {
		dst := m.TensorData(x.Tensor, slot)
		src := m.TensorData(x.Tensor, prevSlot)
		dp.spans = append(dp.spans, datapath.CopySpan{
			Name:   m.Tensors[x.Tensor].Name,
			DstOff: dst.Off + x.TensorOff, SrcOff: src.Off + x.TensorOff, Size: x.Size,
		})
	}
	return dp
}

// errInjectedCrash marks a deltaCrash-hook abort: the request dies as a
// power failure would, with nothing later persisted.
var errInjectedCrash = errors.New("injected crash")

func (d *Daemon) crashAt(stage string) bool {
	return d.deltaCrash != nil && d.deltaCrash(stage)
}

// copyForward runs the local half of an incremental checkpoint and
// folds its timing into the pull result (the copy is flush-dominated
// PMem work, so it lands in the flush stage of the Figure 13
// breakdown).
func (d *Daemon) copyForward(env sim.Env, cx *datapath.Context, dp *deltaPlan, root *telemetry.Span, res *datapath.Result) error {
	if d.crashAt("pre-copy-forward") {
		return errInjectedCrash
	}
	data := d.cfg.PMem.Data()
	cres, err := d.engine.CopyForward(env, cx, dp.spans, func(dst, src, n int64) error {
		memdev.Copy(data, dst, data, src, n)
		return nil
	}, root)
	if err != nil {
		return err
	}
	res.Flush += cres.Transfer
	if d.crashAt("post-copy-forward") {
		return errInjectedCrash
	}
	return nil
}

// putDigests persists the client's digest vector as the slot's table so
// the NEXT checkpoint can delta against this version. A failed persist
// only costs that next delta (it falls back to full); the checkpoint
// itself is already intact on media.
func (d *Daemon) putDigests(env sim.Env, t *sched.Task, rc *reqCtx, slot int) {
	m := rc.sess.model
	sizes, _ := modelSizes(m)
	if len(rc.digests) != delta.BlockCount(sizes, rc.deltaBlock) {
		return // malformed vector: never persist a table the differ would mistrust
	}
	tbl := &delta.Table{
		BlockBytes: rc.deltaBlock,
		Iteration:  t.Iteration,
		Layout:     delta.LayoutHash(sizes, rc.deltaBlock),
		Digests:    rc.digests,
	}
	if err := d.store.DeltaPut(m, slot, tbl); err != nil {
		d.tel.events.Emit(telemetry.Event{
			Time: env.Now(), Kind: telemetry.EvDeltaFallback,
			Model: m.Name, Iteration: t.Iteration, Trace: t.TraceID,
			Detail: "digest table persist failed (next delta runs full): " + err.Error(),
		})
	}
}

// doCheckpoint pulls the model from GPU memory into the target version
// slot, building the span tree of the request lifecycle as it goes:
// enqueue-wait, the engine's pull/flush stages, and the version-flag
// commit. The engine returns only once every chunk is flushed, so the
// done flag never commits over unpersisted data regardless of pipeline
// depth. A request carrying a trusted digest vector runs incrementally:
// only the dirty extents cross the fabric, the clean blocks copy
// forward from the previous version's slot inside PMem (flushed under
// the same discipline), and blocks the target slot already holds are
// skipped outright.
func (d *Daemon) doCheckpoint(env sim.Env, t *sched.Task, rc *reqCtx) {
	m := rc.sess.model
	slot := m.TargetSlot()
	dp := d.planDelta(env, t, rc, slot)
	m.SetActive(slot, t.Iteration)

	tr := telemetry.NewTrace("checkpoint", m.Name, t.Iteration, t.EnqueuedAt)
	tr.ID = t.TraceID
	tr.ParentSpan = t.ParentSpan
	t0 := env.Now()
	wait := tr.Root.Child("enqueue-wait", t.EnqueuedAt)
	wait.EndAt(t0)

	plan, cx := d.plan(rc.sess, slot)
	if dp != nil {
		plan = dp.plan
	}
	cx.Trace = t.TraceID
	lease := d.lanePool.Acquire()
	cx.Lanes = lease.Lanes()
	res, err := d.engine.Pull(env, cx, plan, tr.Root)
	if err == nil && dp != nil {
		err = d.copyForward(env, cx, dp, tr.Root, &res)
	}
	lease.Release()
	if err != nil {
		tr.Err = err.Error()
		tr.Finish(env.Now())
		d.tel.traces.Add(tr)
		// Free the lane before touching the waiter lists: once the task
		// leaves the running set, Dups/Coalesced are stable.
		d.sched.Done(env, t)
		d.sendErrFor(env, rc.conn, wire.TDoCheckpoint, t.Iteration, m.Name, tr.Err)
		for _, dp := range t.Dups {
			d.sendErrFor(env, dp.(*reqCtx).conn, wire.TDoCheckpoint, t.Iteration, m.Name, tr.Err)
		}
		for _, st := range t.Coalesced {
			d.sendErrFor(env, st.Payload.(*reqCtx).conn, wire.TDoCheckpoint, st.Iteration, m.Name, tr.Err)
		}
		return
	}
	commit := tr.Root.Child("commit", env.Now())
	// Persist the client's digest vector for this slot — before the DONE
	// flag, so a crash in between leaves a table whose iteration cannot
	// match the slot header (it is distrusted, never wrong). Full
	// checkpoints persist it too: that is what bootstraps the first
	// delta.
	if d.cfg.DeltaEnabled && rc.deltaBlock > 0 && len(rc.digests) > 0 {
		d.putDigests(env, t, rc, slot)
	}
	if d.crashAt("post-table") {
		commit.EndAt(env.Now())
		tr.Err = errInjectedCrash.Error()
		tr.Finish(env.Now())
		d.tel.traces.Add(tr)
		d.sched.Done(env, t)
		d.sendErrFor(env, rc.conn, wire.TDoCheckpoint, t.Iteration, m.Name, tr.Err)
		return
	}
	// Fingerprint the slot's freshly-flushed content and persist the
	// stamp with the DONE flag: every replica of this pull computes the
	// same CRC, so a torn or corrupted copy is detectable at restore.
	crc := d.contentCRC(m, slot)
	m.SetDoneCRC(slot, t.Iteration, time.Unix(0, int64(env.Now())), crc)
	commit.EndAt(env.Now())
	if dp != nil {
		d.stats.deltaDirty.Store(math.Float64bits(float64(dp.pull) / float64(dp.total)))
		d.tel.deltaSaved.Add(dp.total - dp.pull)
		d.tel.events.Emit(telemetry.Event{
			Time: env.Now(), Kind: telemetry.EvDeltaPlan,
			Model: m.Name, Iteration: t.Iteration, Trace: t.TraceID,
			Detail: fmt.Sprintf("pull %d copy %d skip %d of %d bytes", dp.pull, dp.copied, dp.skipped, dp.total),
		})
	}

	d.stats.pullNanos.Add(int64(res.Transfer))
	d.stats.flushNanos.Add(int64(res.Flush))
	d.stats.checkpoints.Add(1)
	d.stats.bytesPulled.Add(res.Bytes)
	tr.Bytes = res.Bytes
	tr.Finish(env.Now())
	d.tel.checkpoints.Inc()
	d.tel.bytesPulled.Add(res.Bytes)
	d.tel.ckptLatency.ObserveDurationTraced(tr.Duration, tr.ID)
	d.tel.enqueueWait.ObserveDurationTraced(wait.Dur(), tr.ID)
	d.tel.pullStage.ObserveDurationTraced(res.Transfer, tr.ID)
	d.tel.flushStage.ObserveDurationTraced(res.Flush, tr.ID)
	d.tel.traces.Add(tr)
	d.sched.Done(env, t)
	// The original connection may have died mid-pull; duplicate waiters
	// from the client's reconnect get the same DONE, so a committed
	// version is always acknowledged on whichever connection survives.
	// Coalesced waiters asked for an older iteration that this newer
	// commit supersedes; each is acknowledged with its own iteration.
	done := &wire.Msg{Type: wire.TCheckpointDone, Model: m.Name, Iteration: t.Iteration, Slot: slot, CRC: crc}
	_ = rc.conn.Send(env, done)
	for _, dp := range t.Dups {
		_ = dp.(*reqCtx).conn.Send(env, done)
	}
	for _, st := range t.Coalesced {
		_ = st.Payload.(*reqCtx).conn.Send(env, &wire.Msg{
			Type: wire.TCheckpointDone, Model: m.Name, Iteration: st.Iteration, Slot: slot,
		})
	}
}

// contentCRC fingerprints one version slot's tensor extents: the hash
// of the actual PMem bytes in materialized mode, or of the extents'
// content fingerprints in virtual mode (Fingerprint, not StampOf: a
// delta-written slot holds pulled and copied-forward fragments side by
// side, which StampOf cannot summarize; on an unfragmented extent the
// two are identical, so pre-delta CRCs still verify). Replicas that
// assembled the same content compute the same value, so the stamp
// identifies the copy's content, not its location or how it got there.
func (d *Daemon) contentCRC(m *index.Model, slot int) uint64 {
	h := crc64.New(crcTable)
	var b [8]byte
	for i := range m.Tensors {
		ext := m.TensorData(i, slot)
		if d.cfg.PMem.Materialized() {
			h.Write(d.cfg.PMem.Data().Bytes(ext.Off, ext.Size))
		} else {
			binary.LittleEndian.PutUint64(b[:], d.cfg.PMem.Data().Fingerprint(ext.Off, ext.Size))
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

var crcTable = crc64.MakeTable(crc64.ECMA)

func flushCost(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / float64(perfmodel.MiB) * float64(perfmodel.FlushPerMiB))
}

// doRestore writes a done version into the client's GPU memory: the
// newest one by default, or — when the request names an iteration — the
// exact slot holding it, which is how a striped group restore pins
// every shard to the manifest's group-committed iteration.
func (d *Daemon) doRestore(env sim.Env, t *sched.Task, rc *reqCtx) {
	m := rc.sess.model
	fail := func(code wire.ErrCode, iter uint64, msg string) {
		d.sched.Done(env, t)
		d.sendErrCode(env, rc.conn, wire.TRestore, code, iter, m.Name, msg)
		for _, dp := range t.Dups {
			d.sendErrCode(env, dp.(*reqCtx).conn, wire.TRestore, code, iter, m.Name, msg)
		}
	}
	var (
		slot int
		v    index.Version
		ok   bool
	)
	if t.Iteration != 0 {
		for s := 0; s < 2; s++ {
			if h := m.VersionHeader(s); h.State == index.StateDone && h.Iteration == t.Iteration {
				slot, v, ok = s, h, true
				break
			}
		}
		if !ok {
			fail(wire.ErrCodeNoCheckpoint, t.Iteration, fmt.Sprintf("iteration %d has no complete version on PMem", t.Iteration))
			return
		}
	} else if slot, v, ok = m.LatestDone(); !ok {
		fail(wire.ErrCodeNoCheckpoint, 0, "no complete checkpoint version on PMem")
		return
	}
	// Integrity gate: re-fingerprint the stored copy against the stamp
	// persisted with its DONE flag before any byte reaches GPU memory. A
	// mismatch means this copy is torn or corrupted — the client fails
	// over to another replica.
	if v.CRC != 0 {
		if got := d.contentCRC(m, slot); got != v.CRC {
			d.tel.crcFailures.Inc()
			fail(wire.ErrCodeCorrupt, v.Iteration,
				fmt.Sprintf("iteration %d failed integrity check (stored CRC %016x, computed %016x)", v.Iteration, v.CRC, got))
			return
		}
	}
	tr := telemetry.NewTrace("restore", m.Name, v.Iteration, t.EnqueuedAt)
	tr.ID = t.TraceID
	tr.ParentSpan = t.ParentSpan
	t0 := env.Now()
	wait := tr.Root.Child("enqueue-wait", t.EnqueuedAt)
	wait.EndAt(t0)
	plan, cx := d.plan(rc.sess, slot)
	cx.Trace = t.TraceID
	lease := d.lanePool.Acquire()
	cx.Lanes = lease.Lanes()
	res, err := d.engine.Push(env, cx, plan, tr.Root)
	lease.Release()
	if err != nil {
		tr.Err = err.Error()
		tr.Finish(env.Now())
		d.tel.traces.Add(tr)
		fail(wire.ErrCodeNone, v.Iteration, tr.Err)
		return
	}
	d.stats.pushNanos.Add(int64(res.Transfer))
	d.stats.restores.Add(1)
	d.stats.bytesPushed.Add(res.Bytes)
	tr.Bytes = res.Bytes
	tr.Finish(env.Now())
	d.tel.restores.Inc()
	d.tel.bytesPushed.Add(res.Bytes)
	d.tel.restoreLatency.ObserveDurationTraced(tr.Duration, tr.ID)
	d.tel.pushStage.ObserveDurationTraced(res.Transfer, tr.ID)
	d.tel.enqueueWait.ObserveDurationTraced(wait.Dur(), tr.ID)
	d.tel.traces.Add(tr)
	d.sched.Done(env, t)
	done := &wire.Msg{Type: wire.TRestoreDone, Model: m.Name, Iteration: v.Iteration, Slot: slot}
	_ = rc.conn.Send(env, done)
	for _, dp := range t.Dups {
		_ = dp.(*reqCtx).conn.Send(env, done)
	}
}

// handleList reports all stored models, stamped with this node's
// identity and each model's placement owner so portusctl (and the
// client router's manifest rebuild) can see shard ownership.
func (d *Daemon) handleList(env sim.Env, conn wire.Conn) {
	models, err := d.store.Models()
	if err != nil {
		d.sendErrFor(env, conn, wire.TList, 0, "", err.Error())
		return
	}
	d.tel.adminList.Inc()
	d.tel.events.Emit(telemetry.Event{
		Time: env.Now(), Kind: telemetry.EvAdminList,
		Detail: fmt.Sprintf("%d models", len(models)),
	})
	resp := &wire.Msg{Type: wire.TListResp}
	for _, m := range models {
		info := wire.ModelInfo{
			Name:    m.Name,
			Tensors: len(m.Tensors),
			Bytes:   m.TotalSize(),
			Slot0:   index.StateName(m.VersionHeader(0).State),
			Slot1:   index.StateName(m.VersionHeader(1).State),
			Node:    d.nodeName,
			Owner:   d.group.Owner(m.Name),
		}
		for s, dst := range []*uint64{&info.Slot0Iter, &info.Slot1Iter} {
			if h := m.VersionHeader(s); h.State == index.StateDone {
				*dst = h.Iteration
				if s == 0 {
					info.Slot0CRC = h.CRC
				} else {
					info.Slot1CRC = h.CRC
				}
			}
		}
		if _, v, ok := m.LatestDone(); ok {
			info.HasDone = true
			info.LatestIter = v.Iteration
		}
		resp.Models = append(resp.Models, info)
	}
	if err := conn.Send(env, resp); err != nil {
		return
	}
}

// handlePlacement answers with the group's placement table, letting a
// client configured with any single member discover the whole tier.
func (d *Daemon) handlePlacement(env sim.Env, conn wire.Conn) {
	resp := &wire.Msg{Type: wire.TPlacementResp, Epoch: d.group.Epoch(), Replicas: d.replicas}
	for _, n := range d.group.Nodes() {
		resp.Placement = append(resp.Placement, wire.PlacementEntry{
			Node: n.Name, CtrlAddr: n.CtrlAddr, FabricAddr: n.FabricAddr, Weight: n.Weight,
		})
	}
	_ = conn.Send(env, resp)
}

// handleDump archives a model's newest complete version as a
// torch.save-style container and ships it over the control plane — the
// one place Portus ever serializes (§VI: "Portus will perform
// serialization only upon an archive of a checkpoint"), and it happens
// on the daemon, off the training path.
func (d *Daemon) handleDump(env sim.Env, conn wire.Conn, m *wire.Msg) {
	model, err := d.store.Lookup(m.Model)
	if err != nil {
		d.sendErrFor(env, conn, wire.TDump, 0, m.Model, err.Error())
		return
	}
	var (
		slot int
		v    index.Version
		ok   bool
	)
	if m.Iteration != 0 {
		// Pinned dump: anti-entropy re-replication archives the exact
		// group-committed iteration, not whatever is newest here.
		for s := 0; s < 2; s++ {
			if h := model.VersionHeader(s); h.State == index.StateDone && h.Iteration == m.Iteration {
				slot, v, ok = s, h, true
				break
			}
		}
		if !ok {
			d.sendErrCode(env, conn, wire.TDump, wire.ErrCodeNoCheckpoint, m.Iteration, m.Model,
				fmt.Sprintf("iteration %d has no complete version to archive", m.Iteration))
			return
		}
	} else if slot, v, ok = model.LatestDone(); !ok {
		d.sendErrCode(env, conn, wire.TDump, wire.ErrCodeNoCheckpoint, 0, m.Model, "no complete checkpoint version to archive")
		return
	}
	d.tel.adminDump.Inc()
	d.tel.events.Emit(telemetry.Event{
		Time: env.Now(), Kind: telemetry.EvAdminDump,
		Model: m.Model, Iteration: v.Iteration,
	})
	ckpt := &serialize.Checkpoint{Model: model.Name, Iteration: v.Iteration}
	for i, tm := range model.Tensors {
		ext := model.TensorData(i, slot)
		blob := serialize.Blob{Meta: tm}
		if d.cfg.PMem.Materialized() {
			blob.Data = d.cfg.PMem.Data().Bytes(ext.Off, ext.Size)
		} else {
			blob.Virtual = true
			blob.Stamp = d.cfg.PMem.Data().StampOf(ext.Off, ext.Size)
		}
		ckpt.Tensors = append(ckpt.Tensors, blob)
	}
	// The archive pass pays the serialization cost Portus keeps off the
	// checkpoint path.
	env.Sleep(time.Duration(len(ckpt.Tensors)) * perfmodel.SerializePerTensor)
	env.Sleep(sim.TransferTime(ckpt.ModeledSize(), perfmodel.SerializeBW, 0, 0))
	var buf bytes.Buffer
	if err := serialize.Encode(&buf, ckpt); err != nil {
		d.sendErrFor(env, conn, wire.TDump, 0, m.Model, err.Error())
		return
	}
	if err := conn.Send(env, &wire.Msg{
		Type: wire.TDumpResp, Model: m.Model, Iteration: v.Iteration, Payload: buf.Bytes(), CRC: v.CRC,
	}); err != nil {
		return
	}
}

// handleLoad installs a serialized checkpoint container (the DUMP_RESP
// payload format) into PMem as a DONE version — the anti-entropy path
// that rebuilds a replacement replica from a healthy peer's archived
// copy, without the source GPU in the loop. The install is verified
// against the shipped CRC before its DONE flag commits, and is
// idempotent for an already-present iteration.
func (d *Daemon) handleLoad(env sim.Env, conn wire.Conn, m *wire.Msg) {
	ckpt, err := serialize.Decode(bytes.NewReader(m.Payload))
	if err != nil {
		d.sendErrFor(env, conn, wire.TLoad, m.Iteration, m.Model, fmt.Sprintf("decoding container: %v", err))
		return
	}
	if m.Model != "" && ckpt.Model != m.Model {
		d.sendErrFor(env, conn, wire.TLoad, m.Iteration, m.Model,
			fmt.Sprintf("container holds model %q, not %q", ckpt.Model, m.Model))
		return
	}
	if ckpt.Iteration == 0 || len(ckpt.Tensors) == 0 {
		d.sendErrFor(env, conn, wire.TLoad, m.Iteration, ckpt.Model, "container has no committed iteration or tensors")
		return
	}
	owners := d.group.Owners(ckpt.Model, d.replicas)
	if !memberOf(owners, d.nodeName) {
		d.sendErrCode(env, conn, wire.TLoad, wire.ErrCodeMisplaced, ckpt.Iteration, ckpt.Model,
			fmt.Sprintf("model %q is placed on %v (placement epoch %d), not %q", ckpt.Model, owners, d.group.Epoch(), d.nodeName))
		return
	}
	metas := make([]index.TensorMeta, len(ckpt.Tensors))
	for i, b := range ckpt.Tensors {
		metas[i] = b.Meta
	}
	d.mu.Lock()
	model, err := d.admitLocked(ckpt.Model, metas)
	d.mu.Unlock()
	if err != nil {
		msg := err.Error()
		if errors.Is(err, errStructMismatch) {
			msg = "container does not match stored model structure"
		}
		d.sendErrFor(env, conn, wire.TLoad, ckpt.Iteration, ckpt.Model, msg)
		return
	}
	for s := 0; s < 2; s++ {
		if h := model.VersionHeader(s); h.State == index.StateDone && h.Iteration == ckpt.Iteration {
			_ = conn.Send(env, &wire.Msg{Type: wire.TLoadOK, Model: ckpt.Model, Iteration: ckpt.Iteration, CRC: h.CRC})
			return
		}
	}
	slot := model.TargetSlot()
	model.SetActive(slot, ckpt.Iteration)
	var wrote int64
	for i, blob := range ckpt.Tensors {
		ext := model.TensorData(i, slot)
		if blob.Virtual {
			d.cfg.PMem.Data().WriteStamp(ext.Off, ext.Size, blob.Stamp)
		} else {
			if int64(len(blob.Data)) != ext.Size {
				d.sendErrFor(env, conn, wire.TLoad, ckpt.Iteration, ckpt.Model,
					fmt.Sprintf("tensor %q payload is %d bytes, slot holds %d", blob.Meta.Name, len(blob.Data), ext.Size))
				return
			}
			d.cfg.PMem.Data().Write(ext.Off, blob.Data)
		}
		if err := d.flush(ext.Off, ext.Size); err != nil {
			d.sendErrFor(env, conn, wire.TLoad, ckpt.Iteration, ckpt.Model, fmt.Sprintf("flushing tensor %q: %v", blob.Meta.Name, err))
			return
		}
		wrote += ext.Size
	}
	// Pay the deserialization cost (the inverse of the archive pass) and
	// the PMem write bandwidth for the installed bytes.
	env.Sleep(time.Duration(len(ckpt.Tensors)) * perfmodel.SerializePerTensor)
	env.Sleep(sim.TransferTime(wrote, perfmodel.SerializeBW, 0, 0))
	crc := d.contentCRC(model, slot)
	if m.CRC != 0 && crc != m.CRC {
		// The copy does not match the source's fingerprint: leave the
		// slot ACTIVE (never restorable) rather than commit a bad DONE.
		d.tel.crcFailures.Inc()
		d.sendErrCode(env, conn, wire.TLoad, wire.ErrCodeCorrupt, ckpt.Iteration, ckpt.Model,
			fmt.Sprintf("installed copy failed integrity check (source CRC %016x, computed %016x)", m.CRC, crc))
		return
	}
	model.SetDoneCRC(slot, ckpt.Iteration, time.Unix(0, int64(env.Now())), crc)
	d.tel.adminLoad.Inc()
	d.tel.events.Emit(telemetry.Event{
		Time: env.Now(), Kind: telemetry.EvAdminLoad, Model: ckpt.Model, Iteration: ckpt.Iteration,
	})
	_ = conn.Send(env, &wire.Msg{Type: wire.TLoadOK, Model: ckpt.Model, Iteration: ckpt.Iteration, CRC: crc})
}

// handleDelete removes a finished model and frees its PMem. The store
// delete runs first: if it fails, the in-memory maps are untouched, so
// the model stays visible and servable instead of lingering on PMem as
// an orphan the daemon no longer knows about.
func (d *Daemon) handleDelete(env sim.Env, conn wire.Conn, m *wire.Msg) {
	// A maintenance lease alone doesn't block deletion: doMaintenance
	// forgets the lane afterward, and the engine's CompactModel treats a
	// vanished model as a no-op.
	if !d.sched.IdleTenant(m.Model) {
		d.sendErrFor(env, conn, wire.TDelete, 0, m.Model, "model has an operation in flight")
		return
	}
	d.mu.Lock()
	err := d.eng.DeleteModel(m.Model)
	if err == nil {
		delete(d.sessions, m.Model)
		d.modelMap.Delete(m.Model)
	}
	d.mu.Unlock()
	if err != nil {
		d.sendErrFor(env, conn, wire.TDelete, 0, m.Model, err.Error())
		return
	}
	d.sched.Forget(m.Model)
	d.tel.adminDelete.Inc()
	d.tel.events.Emit(telemetry.Event{
		Time: env.Now(), Kind: telemetry.EvAdminDelete, Model: m.Model,
	})
	if err := conn.Send(env, &wire.Msg{Type: wire.TDeleteOK, Model: m.Model}); err != nil {
		return
	}
	// Deletion turns live bytes into garbage; reclaim in the background
	// once the watermark trips.
	d.maybeAutoRepack(env)
}
