package daemon

// SetDeltaCrash installs the incremental-checkpoint crash-injection
// hook. Tests use it to cut the power at the copy-forward and
// digest-table boundaries of a delta checkpoint; returning true from
// the hook aborts the request as a power failure would.
func (d *Daemon) SetDeltaCrash(f func(stage string) bool) { d.deltaCrash = f }
