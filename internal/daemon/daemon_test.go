package daemon_test

import (
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// startDaemon wires a daemon on a tiny cluster and returns a dialer.
func startDaemon(t *testing.T, env sim.Env) (*daemon.Daemon, *wire.SimNet) {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 1, GPUsPerNode: 1,
		GPUMemBytes: 1 << 20, PMemBytes: 1 << 20, Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(env, daemon.Config{PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric})
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("serve", func(env sim.Env) { d.Serve(env, l) })
	return d, net
}

func expectError(t *testing.T, env sim.Env, conn wire.Conn, req *wire.Msg, substr string) {
	t.Helper()
	if err := conn.Send(env, req); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TError || !strings.Contains(resp.Error, substr) {
		t.Fatalf("resp = %+v, want error containing %q", resp, substr)
	}
	// Every error echoes the request's type, so a client with several
	// requests in flight can correlate the failure to the right waiter.
	if resp.InReplyTo != req.Type {
		t.Fatalf("error InReplyTo = %v, want the request's type %v echoed", resp.InReplyTo, req.Type)
	}
}

func TestDaemonRejectsMalformedRequests(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		_, net := startDaemon(t, env)
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		// Registration without tensors.
		expectError(t, env, conn, &wire.Msg{Type: wire.TRegister, Model: "m"}, "no tensors")
		// Checkpoint of an unregistered model.
		expectError(t, env, conn, &wire.Msg{Type: wire.TDoCheckpoint, Model: "ghost"}, "not registered")
		// Restore of an unregistered model.
		expectError(t, env, conn, &wire.Msg{Type: wire.TRestore, Model: "ghost"}, "not registered")
		// Delete of a nonexistent model.
		expectError(t, env, conn, &wire.Msg{Type: wire.TDelete, Model: "ghost"}, "not found")
		// Unknown message type.
		expectError(t, env, conn, &wire.Msg{Type: wire.Type(99)}, "unexpected message")
	})
	eng.Run()
}

func TestDaemonEmptyList(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		_, net := startDaemon(t, env)
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TList}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TListResp || len(resp.Models) != 0 {
			t.Fatalf("resp = %+v", resp)
		}
	})
	eng.Run()
}

func TestDaemonDefaults(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		d, _ := startDaemon(t, env)
		if st := d.Stats(); st.Checkpoints != 0 || st.Registered != 0 {
			t.Fatalf("fresh daemon stats = %+v", st)
		}
		if names := d.ModelNames(); len(names) != 0 {
			t.Fatalf("fresh daemon models = %v", names)
		}
	})
	eng.Run()
}
