package client_test

import (
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// countSent tallies messages of one type on a scriptConn.
func countSent(sc *scriptConn, ty wire.Type) int {
	n := 0
	for _, m := range sc.sent {
		if m.Type == ty {
			n++
		}
	}
	return n
}

// TestClientResendsAfterBusy: a BUSY reply does not fail the request —
// the client re-sends it after the daemon's RetryAfter hint and the
// eventual DONE completes the original waiter. Virtual clock only, no
// wall-clock sleeps.
func TestClientResendsAfterBusy(t *testing.T) {
	var finished bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		sc := newScriptConn(env)
		sc.in.Send(env, &wire.Msg{Type: wire.TRegisterOK, Model: "m"})
		c, err := client.Register(env, sc, h.cl.Compute[0].RNode, placed)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := c.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		t0 := env.Now()
		sc.in.Send(env, &wire.Msg{
			Type: wire.TBusy, Model: "m", Iteration: 1,
			InReplyTo: wire.TDoCheckpoint, RetryAfter: 5 * time.Millisecond,
		})
		// Give the retry process room to fire in virtual time.
		env.Sleep(20 * time.Millisecond)
		if got := countSent(sc, wire.TDoCheckpoint); got != 2 {
			t.Fatalf("DO_CHECKPOINT sent %d times, want 2 (original + busy retry)", got)
		}
		resend := sc.sent[len(sc.sent)-1]
		if resend.Iteration != 1 {
			t.Fatalf("retry iteration = %d, want 1", resend.Iteration)
		}
		if got := c.BusyRetries(); got != 1 {
			t.Fatalf("BusyRetries = %d, want 1", got)
		}
		// The re-send waited at least the daemon's hint.
		if waited := env.Now() - t0; waited < 5*time.Millisecond {
			t.Fatalf("retry after %v, want >= the 5ms hint", waited)
		}
		sc.in.Send(env, &wire.Msg{Type: wire.TCheckpointDone, Model: "m", Iteration: 1})
		if err := cp.Wait(env); err != nil {
			t.Fatalf("checkpoint after busy retry: %v", err)
		}
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("run never completed: the busy retry lost the waiter")
	}
}

// TestClientBusyRetryBudgetExhausts: a request that keeps bouncing
// fails with an explicit error once BusyRetryMax is spent, instead of
// retrying forever.
func TestClientBusyRetryBudgetExhausts(t *testing.T) {
	var finished bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		sc := newScriptConn(env)
		sc.in.Send(env, &wire.Msg{Type: wire.TRegisterOK, Model: "m"})
		c, err := client.RegisterOpts(env, sc, h.cl.Compute[0].RNode, placed, client.Options{
			BusyRetryMax: 2,
			BusyBackoff:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cp, err := c.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		busy := &wire.Msg{Type: wire.TBusy, Model: "m", Iteration: 1, InReplyTo: wire.TDoCheckpoint}
		for i := 0; i < 3; i++ {
			sc.in.Send(env, busy)
			env.Sleep(20 * time.Millisecond)
		}
		if err := cp.Wait(env); err == nil || !strings.Contains(err.Error(), "daemon busy") {
			t.Fatalf("err = %v, want a daemon-busy exhaustion error", err)
		}
		// Original + exactly BusyRetryMax re-sends; the bounce past the
		// budget fails the waiter instead of re-sending.
		if got := countSent(sc, wire.TDoCheckpoint); got != 3 {
			t.Fatalf("DO_CHECKPOINT sent %d times, want 3", got)
		}
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("run never completed")
	}
}

// TestClientBackoffUnderFullDaemonQueue drives real backpressure end to
// end. Same-model overflow coalesces rather than rejecting, so the
// global queue is filled by one tenant and a second tenant's checkpoint
// is the one that bounces: the daemon answers BUSY with a retry-after
// hint, the client re-sends with capped backoff, and every checkpoint
// still commits.
func TestClientBackoffUnderFullDaemonQueue(t *testing.T) {
	var finished bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		cl, err := cluster.New(env, cluster.Config{
			ComputeNodes: 2, GPUsPerNode: 1,
			GPUMemBytes: 16 << 20, PMemBytes: 64 << 20, Materialized: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		d, err := daemon.New(env, daemon.Config{
			PMem: cl.Storage[0].PMem, RNode: cl.Storage[0].RNode, Fabric: cl.Fabric,
			Workers: 1, QueueCap: 1, ModelQueueCap: 1, Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("portusd-serve", func(env sim.Env) { d.Serve(env, l) })
		connect := func(node int, name string) (*client.Client, *gpu.PlacedModel) {
			placed, err := gpu.Place(cl.GPU(node, 0), tinySpec(name))
			if err != nil {
				t.Fatal(err)
			}
			conn, err := net.Dial(env, "storage")
			if err != nil {
				t.Fatal(err)
			}
			c, err := client.Register(env, conn, cl.Compute[node].RNode, placed)
			if err != nil {
				t.Fatal(err)
			}
			return c, placed
		}
		cm, _ := connect(0, "m")
		cn, _ := connect(1, "n")
		// Tenant m saturates the single worker and the global queue:
		// iteration 1 runs, iteration 2 occupies the only queue slot.
		cp1, err := cm.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		cp2, err := cm.CheckpointAsync(env, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Tenant n's checkpoint finds the global queue full, is bounced
		// with BUSY, and must heal through the client's retry loop.
		cpn, err := cn.CheckpointAsync(env, 1)
		if err != nil {
			t.Fatal(err)
		}
		for name, cp := range map[string]*client.Completion{"m/1": cp1, "m/2": cp2, "n/1": cpn} {
			if err := cp.Wait(env); err != nil {
				t.Fatalf("checkpoint %s after backpressure: %v", name, err)
			}
		}
		if got := cn.BusyRetries(); got < 1 {
			t.Fatalf("BusyRetries = %d, want >= 1 (the global queue was full)", got)
		}
		if got := reg.Counter("portus_sched_busy_replies_total", "").Value(); got < 1 {
			t.Fatalf("portus_sched_busy_replies_total = %d, want >= 1", got)
		}
		for name, want := range map[string]uint64{"m": 2, "n": 1} {
			mdl, err := d.Store().Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, v, ok := mdl.LatestDone(); !ok || v.Iteration != want {
				t.Fatalf("%s latest done = %+v ok=%v, want iteration %d", name, v, ok, want)
			}
		}
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("run never completed: a bounced checkpoint hung")
	}
}
