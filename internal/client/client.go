// Package client implements the Portus Client library: the
// framework-side extension that registers a training job's GPU-resident
// tensors with the daemon and drives checkpoints and restores over the
// control plane (§III-B, §III-E, §III-F).
//
// Registration collects each tensor's fixed GPU address, registers it as
// an RDMA memory region (the nv_peer_mem step), and ships the metadata
// packet — layer names, dtypes, shapes, remote keys — to the daemon over
// TCP. Checkpoints are then a single "DO_CHECKPOINT" message: the daemon
// pulls the data; the training process never copies, serializes, or
// crosses into the kernel.
//
// Two checkpoint policies mirror Figure 9:
//
//   - Sync waits for CHECKPOINT_DONE before returning (Figure 9(c)).
//   - Async returns immediately after sending the request and only
//     stalls the *update* phase if the pull has not finished by then
//     (Figure 9(d)) — parameters are stable during forward and backward,
//     so the pull hides behind them.
//
// With Options.Dialer set the client self-heals from control-plane
// drops: the receive loop redials with capped exponential backoff,
// re-registers (the daemon accepts an idempotent re-register for an
// identical model structure), and re-sends every request that was still
// awaiting a reply. The daemon deduplicates a re-sent DO_CHECKPOINT by
// (model, iteration), so a retry after reconnect never double-executes.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// restoreKey is the sentinel iteration for restore waiters: the client
// cannot know the restored iteration in advance, so all restore replies
// match this key.
const restoreKey = ^uint64(0)

// Client is one registered model's handle to the Portus daemon.
type Client struct {
	node  *rdma.Node
	model *gpu.PlacedModel
	mrs   []rdma.MR
	opts  Options

	// regMsg is the registration packet, kept for reconnect handshakes.
	regMsg *wire.Msg

	mu      sync.Mutex
	conn    wire.Conn
	closed  bool
	pending map[pendingKey]*reply
	// order preserves waiter arming order for uncorrelated errors and
	// deterministic post-reconnect re-sends.
	order []pendingKey

	// Stalled accumulates training time lost waiting for checkpoint
	// completion (sync waits plus async update-phase stalls).
	Stalled time.Duration

	// Telemetry handles; nil (a no-op) unless Options.Telemetry was set.
	ckpts       *telemetry.Counter
	errs        *telemetry.Counter
	reconnects  *telemetry.Counter
	busyRetries *telemetry.Counter
	syncLat     *telemetry.Histogram
	ckptLat     *telemetry.Histogram
	restoreLat  *telemetry.Histogram
}

type pendingKey struct {
	t    wire.Type
	iter uint64
}

type reply struct {
	sig *sim.Signal
	msg *wire.Msg
	// busy counts BUSY backpressure bounces this request has absorbed,
	// bounding the re-send loop and scaling its backoff.
	busy int
	// Trace context for the request: the client-minted identity plus
	// the client-side span tree under construction. trace/await are
	// mutated only under Client.mu until the report is shipped; traceID
	// and awaitID ride on every (re-)send of the request so the daemon
	// adopts the same identity across retries and reconnects.
	trace   *telemetry.Trace
	await   *telemetry.Span
	traceID telemetry.TraceID
	awaitID uint64
	// restoreIter is the exact iteration a RESTORE asked for (0 means
	// newest); re-sends after BUSY or reconnect must repeat it so a
	// pinned group restore stays pinned.
	restoreIter uint64
	// digests/deltaBlock are the block-digest vector a delta-enabled
	// DO_CHECKPOINT carried; re-sends after BUSY or reconnect must
	// repeat them or the daemon would silently fall back to a full
	// checkpoint on the retry.
	digests    []uint64
	deltaBlock int64
}

// ErrNoCheckpoint reports a restore (or pinned dump) that found no
// committed checkpoint version to serve. Match with errors.Is.
var ErrNoCheckpoint = errors.New("client: no committed checkpoint to restore")

// ErrCorruptReplica reports a stored copy that failed its CRC
// integrity check; a replicated router fails over to another replica.
// Match with errors.Is.
var ErrCorruptReplica = errors.New("client: checkpoint copy failed integrity check")

// ErrUnreachable reports transport loss — the connection died or a
// request deadline expired with the daemon silent. Routers treat it as
// a suspect-node signal rather than an application error. Match with
// errors.Is.
var ErrUnreachable = errors.New("client: daemon unreachable")

// ErrNoSpace reports that the daemon's persistent namespace stayed out
// of space even after online reclamation, and the client exhausted its
// retry budget waiting for room. Match with errors.Is.
var ErrNoSpace = errors.New("client: daemon out of PMem space")

func (r *reply) wait(env sim.Env) (*wire.Msg, error) {
	r.sig.Wait(env)
	if r.msg.Type == wire.TError {
		// Map the daemon's machine-readable classification (or the code
		// this client stamped on a locally-fabricated error) to a typed
		// sentinel; unclassified errors stay generic.
		switch r.msg.Code {
		case wire.ErrCodeNoCheckpoint:
			return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, r.msg.Error)
		case wire.ErrCodeCorrupt:
			return nil, fmt.Errorf("%w: %s", ErrCorruptReplica, r.msg.Error)
		case wire.ErrCodeUnreachable:
			return nil, fmt.Errorf("%w: %s", ErrUnreachable, r.msg.Error)
		case wire.ErrCodeNoSpace:
			return nil, fmt.Errorf("%w: %s", ErrNoSpace, r.msg.Error)
		}
		return nil, fmt.Errorf("daemon error: %s", r.msg.Error)
	}
	return r.msg, nil
}

// Options tunes registration.
type Options struct {
	// FabricAddr is this client's soft-RDMA agent address, shipped in
	// the registration packet so the daemon's fabric can reach the
	// client's memory regions across processes (TCP deployments only).
	FabricAddr string
	// Telemetry, when set, receives client-side checkpoint/restore
	// latency histograms and error/reconnect counters labeled by model.
	Telemetry *telemetry.Registry
	// Dialer, when set, enables automatic reconnect: after a
	// control-plane failure the client redials, re-registers, and
	// re-sends its outstanding requests instead of failing them.
	Dialer func(env sim.Env) (wire.Conn, error)
	// ReconnectMax caps consecutive reconnect attempts before the
	// client gives up and fails its waiters; 0 defaults to 8.
	ReconnectMax int
	// ReconnectBackoff is the delay before the second reconnect
	// attempt, doubling per attempt up to 500ms; 0 defaults to 2ms.
	ReconnectBackoff time.Duration
	// RequestTimeout fails any single request not answered within it
	// with a deadline error; 0 disables deadlines.
	RequestTimeout time.Duration
	// BusyRetryMax caps how many BUSY backpressure bounces one request
	// absorbs before it fails; 0 defaults to 16.
	BusyRetryMax int
	// BusyBackoff is the client-side floor for the first re-send delay
	// after a BUSY, doubling per bounce; the daemon's RetryAfter hint
	// is honored when it is longer. 0 defaults to 1ms.
	BusyBackoff time.Duration
	// BusyBackoffMax caps the doubled client-side backoff (the daemon
	// hint is trusted beyond it); 0 defaults to 100ms.
	BusyBackoffMax time.Duration
	// Events, when set, receives flight-recorder entries for client
	// reconnects (useful when the client shares a process with the
	// daemon, as in sim runs).
	Events *telemetry.EventRing
	// DeltaBlockBytes enables incremental checkpointing: every
	// DO_CHECKPOINT carries a per-block digest vector at this block
	// size, letting a delta-enabled daemon pull only the blocks that
	// changed since the previous version and copy the rest forward
	// inside PMem. 0 disables it (full checkpoints, the pre-delta wire
	// shape).
	DeltaBlockBytes int64
}

// Register collects tensor pointers, registers each as an RDMA MR, and
// sends the registration packet. It blocks until the daemon acknowledges
// the three-level index is ready.
func Register(env sim.Env, conn wire.Conn, node *rdma.Node, m *gpu.PlacedModel) (*Client, error) {
	return RegisterOpts(env, conn, node, m, Options{})
}

// RegisterOpts is Register with explicit options.
func RegisterOpts(env sim.Env, conn wire.Conn, node *rdma.Node, m *gpu.PlacedModel, opts Options) (*Client, error) {
	c := &Client{
		conn:    conn,
		node:    node,
		model:   m,
		opts:    opts,
		pending: make(map[pendingKey]*reply),
	}
	// Reconnects and busy retries are always counted — Reconnects() and
	// BusyRetries() must report the truth even when no telemetry
	// registry is wired up.
	c.reconnects = &telemetry.Counter{}
	c.busyRetries = &telemetry.Counter{}
	if reg := opts.Telemetry; reg != nil {
		ml := telemetry.L("model", m.Spec.Name)
		c.ckpts = reg.Counter("portus_client_checkpoints_total", "checkpoints completed by this client", ml)
		c.errs = reg.Counter("portus_client_errors_total", "client-visible daemon/connection errors", ml)
		c.reconnects = reg.Counter("portus_client_reconnects_total", "control-plane reconnects this client performed", ml)
		c.busyRetries = reg.Counter("portus_client_busy_retries_total", "requests re-sent after a BUSY backpressure reply", ml)
		c.syncLat = reg.Histogram("portus_client_checkpoint_sync_seconds", "blocking checkpoint latency as seen by training", nil, ml)
		c.ckptLat = reg.Histogram("portus_client_checkpoint_seconds", "request-to-commit checkpoint latency (sync and async)", nil, ml)
		c.restoreLat = reg.Histogram("portus_client_restore_seconds", "restore latency as seen by training", nil, ml)
	}
	// Queue-pair setup plus pinning the tensor address space for DMA —
	// paid once per training job thanks to the pre-allocated version
	// slots (§III-D2).
	regGiB := float64(m.Spec.TotalSize()) / float64(1<<30)
	env.Sleep(perfmodel.QPConnectCost +
		time.Duration(regGiB*float64(perfmodel.MRRegisterPerGiB)))
	msg := &wire.Msg{Type: wire.TRegister, Model: m.Spec.Name, ClientNode: node.Name(), FabricAddr: opts.FabricAddr}
	for i, tm := range m.Spec.Tensors {
		mr := node.RegisterMR(env, m.GPU.Mem(), m.Offs[i], tm.Size)
		c.mrs = append(c.mrs, mr)
		msg.Tensors = append(msg.Tensors, wire.TensorRef{
			Name: tm.Name, DType: uint8(tm.DType), Dims: tm.Dims, Size: tm.Size, RKey: mr.RKey,
		})
	}
	c.regMsg = msg
	r := c.expect(env, wire.TRegisterOK, 0)
	if err := c.sendRequest(env, pendingKey{t: wire.TRegisterOK}, msg); err != nil {
		return nil, fmt.Errorf("client: sending registration: %w", err)
	}
	env.Go("portus-client-recv", c.recvLoop)
	if _, err := r.wait(env); err != nil {
		return nil, fmt.Errorf("client: registering %s: %w", m.Spec.Name, err)
	}
	return c, nil
}

// recvLoop dispatches daemon replies to their waiters. On a connection
// failure it reconnects when a dialer is configured; only when
// reconnecting is impossible (or exhausted) does it fail the waiters.
func (c *Client) recvLoop(env sim.Env) {
	for {
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		m, err := conn.Recv(env)
		if err != nil {
			if c.reconnect(env) {
				continue
			}
			// Connection gone for good: release every waiter, oldest
			// first, with an error.
			c.mu.Lock()
			for _, k := range c.order {
				r := c.pending[k]
				r.msg = &wire.Msg{Type: wire.TError, Code: wire.ErrCodeUnreachable, Error: err.Error()}
				r.sig.Fire(env)
				delete(c.pending, k)
			}
			c.order = nil
			c.mu.Unlock()
			return
		}
		if m.Type == wire.TBusy {
			c.handleBusy(env, m)
			continue
		}
		if m.Type == wire.TError && m.Code == wire.ErrCodeNoSpace && c.handleNoSpace(env, m) {
			continue
		}
		key := pendingKey{t: m.Type, iter: m.Iteration}
		if m.Type == wire.TRestoreDone {
			key.iter = restoreKey
		}
		c.mu.Lock()
		if m.Type == wire.TError {
			c.releaseErrorLocked(env, m)
			c.mu.Unlock()
			continue
		}
		if r, ok := c.pending[key]; ok {
			r.msg = m
			r.sig.Fire(env)
			c.removeLocked(key)
		}
		c.mu.Unlock()
	}
}

// handleBusy reacts to a BUSY backpressure reply: the daemon's queue
// was full, so the request was not admitted. The waiter stays armed
// and a delayed process re-sends the request after the daemon's
// RetryAfter hint (or the client's own capped exponential backoff,
// whichever is longer). A request that keeps bouncing past
// BusyRetryMax fails with an error instead of retrying forever.
func (c *Client) handleBusy(env sim.Env, m *wire.Msg) {
	var key pendingKey
	var resend *wire.Msg
	switch m.InReplyTo {
	case wire.TDoCheckpoint:
		key = pendingKey{t: wire.TCheckpointDone, iter: m.Iteration}
		resend = &wire.Msg{Type: wire.TDoCheckpoint, Model: c.model.Spec.Name, Iteration: m.Iteration}
		// Delta fields are re-attached under the lock below, once the
		// waiter is known.
	case wire.TRestore:
		key = pendingKey{t: wire.TRestoreDone, iter: restoreKey}
		resend = &wire.Msg{Type: wire.TRestore, Model: c.model.Spec.Name}
	default:
		return // uncorrelated BUSY: nothing to re-send
	}
	c.mu.Lock()
	r, ok := c.pending[key]
	if !ok {
		c.mu.Unlock()
		return
	}
	// Re-sends carry the original trace identity so the daemon's trace
	// (and its eventual stitch) survives the backpressure bounce.
	resend.TraceID = uint64(r.traceID)
	resend.SpanID = r.awaitID
	if resend.Type == wire.TRestore {
		resend.Iteration = r.restoreIter
	}
	if resend.Type == wire.TDoCheckpoint {
		resend.Digests, resend.DeltaBlock = r.digests, r.deltaBlock
	}
	r.busy++
	max := c.opts.BusyRetryMax
	if max <= 0 {
		max = 16
	}
	if r.busy > max {
		c.removeLocked(key)
		c.mu.Unlock()
		r.msg = &wire.Msg{Type: wire.TError, Error: fmt.Sprintf("daemon busy: gave up after %d retries of %s", max, m.InReplyTo)}
		r.sig.Fire(env)
		c.errs.Inc()
		return
	}
	base := c.opts.BusyBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	cap := c.opts.BusyBackoffMax
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	delay := base
	for i := 1; i < r.busy && delay < cap; i++ {
		delay *= 2
	}
	if delay > cap {
		delay = cap
	}
	if m.RetryAfter > delay {
		delay = m.RetryAfter // the daemon knows its backlog better
	}
	c.mu.Unlock()
	c.busyRetries.Inc()
	busyAt := env.Now()
	env.Go("portus-client-busy-retry", func(env sim.Env) {
		env.Sleep(delay)
		c.mu.Lock()
		cur, ok := c.pending[key]
		conn := c.conn
		closed := c.closed
		var bw *telemetry.Span
		if ok && cur == r && !closed && r.await != nil {
			// The busy-wait span nests inside await, so the await span
			// still tiles the request window end to end.
			bw = r.await.Child("busy-wait", busyAt)
		}
		c.mu.Unlock()
		if !ok || cur != r || closed {
			return // answered (or deadline-failed) while we backed off
		}
		// A failed re-send surfaces on the receive loop, which owns
		// reconnect; the waiter stays armed either way.
		_ = conn.Send(env, resend)
		if bw != nil {
			c.mu.Lock()
			bw.EndAt(env.Now())
			c.mu.Unlock()
		}
	})
}

// handleNoSpace reacts to a NO_SPACE registration reply: the daemon's
// namespace stayed exhausted even after an online reclamation pass, so
// admission was refused *transiently* — another tenant's delete or
// repack may free room. The registration waiter stays armed and the
// packet is re-sent after the daemon's RetryAfter hint (or the client's
// capped exponential backoff, whichever is longer), sharing the BUSY
// retry budget. It reports false when the reply should fall through to
// normal error delivery (no hint, no waiter, or budget exhausted).
func (c *Client) handleNoSpace(env sim.Env, m *wire.Msg) bool {
	if m.InReplyTo != wire.TRegister || m.RetryAfter <= 0 {
		return false
	}
	key := pendingKey{t: wire.TRegisterOK}
	c.mu.Lock()
	r, ok := c.pending[key]
	if !ok {
		c.mu.Unlock()
		return false
	}
	r.busy++
	max := c.opts.BusyRetryMax
	if max <= 0 {
		max = 16
	}
	if r.busy > max {
		c.removeLocked(key)
		c.mu.Unlock()
		r.msg = &wire.Msg{Type: wire.TError, Code: wire.ErrCodeNoSpace,
			Error: fmt.Sprintf("gave up after %d retries: %s", max, m.Error)}
		r.sig.Fire(env)
		c.errs.Inc()
		return true
	}
	base := c.opts.BusyBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	cap := c.opts.BusyBackoffMax
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	delay := base
	for i := 1; i < r.busy && delay < cap; i++ {
		delay *= 2
	}
	if delay > cap {
		delay = cap
	}
	if m.RetryAfter > delay {
		delay = m.RetryAfter // the daemon knows its reclaim cadence better
	}
	c.mu.Unlock()
	c.busyRetries.Inc()
	env.Go("portus-client-nospace-retry", func(env sim.Env) {
		env.Sleep(delay)
		c.mu.Lock()
		cur, ok := c.pending[key]
		conn := c.conn
		closed := c.closed
		c.mu.Unlock()
		if !ok || cur != r || closed {
			return // answered (or deadline-failed) while we backed off
		}
		_ = conn.Send(env, c.regMsg)
	})
	return true
}

// reconnect redials with capped exponential backoff, replays the
// registration handshake, and re-sends every request still awaiting a
// reply. It reports false when no dialer is configured, the client was
// closed, or the attempt budget is exhausted.
func (c *Client) reconnect(env sim.Env) bool {
	c.mu.Lock()
	dialer := c.opts.Dialer
	closed := c.closed
	c.mu.Unlock()
	if dialer == nil || closed {
		return false
	}
	max := c.opts.ReconnectMax
	if max <= 0 {
		max = 8
	}
	backoff := c.opts.ReconnectBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	for attempt := 1; attempt <= max; attempt++ {
		if attempt > 1 {
			env.Sleep(backoff)
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
		conn, err := dialer(env)
		if err != nil {
			continue
		}
		// Re-register before anything else: the daemon accepts an
		// idempotent re-register for an identical structure, and no
		// other reply can arrive on a fresh connection first.
		if err := conn.Send(env, c.regMsg); err != nil {
			conn.Close()
			continue
		}
		m, err := conn.Recv(env)
		if err != nil || m.Type != wire.TRegisterOK {
			conn.Close()
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return false
		}
		c.conn = conn
		// The original registration may itself have raced the drop;
		// this handshake just answered it.
		regKey := pendingKey{t: wire.TRegisterOK}
		var regWaiter *reply
		if r, ok := c.pending[regKey]; ok {
			regWaiter = r
			r.msg = m
			c.removeLocked(regKey)
		}
		// Re-send outstanding requests in arming order, each carrying
		// its original trace identity. The daemon dedups a
		// DO_CHECKPOINT whose iteration committed (or is in flight), so
		// retries never double-execute.
		var resend []*wire.Msg
		for _, k := range c.order {
			w := c.pending[k]
			switch k.t {
			case wire.TCheckpointDone:
				resend = append(resend, &wire.Msg{Type: wire.TDoCheckpoint, Model: c.model.Spec.Name, Iteration: k.iter,
					TraceID: uint64(w.traceID), SpanID: w.awaitID,
					Digests: w.digests, DeltaBlock: w.deltaBlock})
			case wire.TRestoreDone:
				resend = append(resend, &wire.Msg{Type: wire.TRestore, Model: c.model.Spec.Name,
					Iteration: w.restoreIter, TraceID: uint64(w.traceID), SpanID: w.awaitID})
			}
		}
		c.mu.Unlock()
		if regWaiter != nil {
			regWaiter.sig.Fire(env)
		}
		c.reconnects.Inc()
		c.opts.Events.Emit(telemetry.Event{
			Time:   env.Now(),
			Kind:   telemetry.EvClientReconnect,
			Model:  c.model.Spec.Name,
			Detail: fmt.Sprintf("reconnected on attempt %d, re-sending %d requests", attempt, len(resend)),
		})
		for _, msg := range resend {
			if err := conn.Send(env, msg); err != nil {
				break // Recv will observe the failure and reconnect again
			}
		}
		return true
	}
	return false
}

// expect arms a waiter for (t, iter); it must be armed before the
// request is sent so a fast reply cannot be dropped. With a request
// timeout configured, a deadline process fails the waiter if no reply
// (or reconnect re-delivery) lands in time.
func (c *Client) expect(env sim.Env, t wire.Type, iter uint64) *reply {
	r := &reply{sig: sim.NewSignal(env)}
	key := pendingKey{t: t, iter: iter}
	c.mu.Lock()
	c.pending[key] = r
	c.order = append(c.order, key)
	c.mu.Unlock()
	if d := c.opts.RequestTimeout; d > 0 {
		env.Go("portus-client-deadline", func(env sim.Env) {
			env.Sleep(d)
			c.mu.Lock()
			if cur, ok := c.pending[key]; !ok || cur != r {
				// Answered in time (or the key was re-armed by a newer
				// request — never fail someone else's waiter).
				c.mu.Unlock()
				return
			}
			c.removeLocked(key)
			c.mu.Unlock()
			r.msg = &wire.Msg{Type: wire.TError, Code: wire.ErrCodeUnreachable, Error: fmt.Sprintf("request deadline %v exceeded waiting for %s", d, t)}
			r.sig.Fire(env)
		})
	}
	return r
}

// sendRequest ships a request whose reply waiter is already armed. If
// the send fails but the client can reconnect, the waiter stays armed:
// the receive loop's reconnect handshake re-sends every outstanding
// request, so the caller keeps waiting as if the send had succeeded.
// Otherwise the waiter is removed — leaving it armed would let a later
// uncorrelated ERROR release the stale waiter instead of a live one.
func (c *Client) sendRequest(env sim.Env, key pendingKey, msg *wire.Msg) error {
	c.mu.Lock()
	conn := c.conn
	canHeal := c.opts.Dialer != nil && !c.closed
	c.mu.Unlock()
	err := conn.Send(env, msg)
	if err == nil || canHeal {
		return nil
	}
	c.mu.Lock()
	c.removeLocked(key)
	c.mu.Unlock()
	return err
}

// removeLocked drops a released waiter from the map and the order list.
func (c *Client) removeLocked(key pendingKey) {
	delete(c.pending, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// releaseErrorLocked routes an ERROR to its waiter. Correlated errors
// (InReplyTo set by the daemon) release the exact waiter; uncorrelated
// ones release the oldest, deterministically.
func (c *Client) releaseErrorLocked(env sim.Env, m *wire.Msg) {
	var key pendingKey
	switch m.InReplyTo {
	case wire.TRegister:
		key = pendingKey{t: wire.TRegisterOK}
	case wire.TDoCheckpoint:
		key = pendingKey{t: wire.TCheckpointDone, iter: m.Iteration}
	case wire.TRestore:
		key = pendingKey{t: wire.TRestoreDone, iter: restoreKey}
	default:
		if len(c.order) == 0 {
			return
		}
		key = c.order[0]
	}
	r, ok := c.pending[key]
	if !ok {
		if len(c.order) == 0 {
			return
		}
		key = c.order[0]
		r = c.pending[key]
	}
	r.msg = m
	r.sig.Fire(env)
	c.removeLocked(key)
}

// CheckpointSync persists the current weights and blocks until the
// daemon commits the version.
func (c *Client) CheckpointSync(env sim.Env, iteration uint64) error {
	start := env.Now()
	cp, err := c.CheckpointAsync(env, iteration)
	if err != nil {
		return err
	}
	if err := cp.Wait(env); err != nil {
		return fmt.Errorf("client: checkpoint %d: %w", iteration, err)
	}
	c.Stalled += env.Now() - start
	c.syncLat.ObserveDurationTraced(env.Now()-start, cp.r.traceID)
	return nil
}

// CheckpointAsync sends DO_CHECKPOINT and returns a completion handle
// without waiting. It mints the request's trace: a "client:checkpoint"
// root with a "send" span covering the control-plane send and an
// "await" span covering everything after it. The await span's ID rides
// on the wire so the daemon grafts its own span tree under it when the
// two halves are stitched.
func (c *Client) CheckpointAsync(env sim.Env, iteration uint64) (*Completion, error) {
	t0 := env.Now()
	tr := telemetry.NewTrace("client:checkpoint", c.model.Spec.Name, iteration, t0)
	tr.ID = telemetry.NewTraceID()
	// With delta enabled, fingerprint the resident weights before the
	// request goes out: the digest vector rides on DO_CHECKPOINT so the
	// daemon can pull only the blocks that changed. The hash pass is
	// charged to the client (it is memory-bandwidth bound, ~40ms for a
	// 6 GB model — small next to the transfer it saves).
	var digests []uint64
	if block := c.opts.DeltaBlockBytes; block > 0 {
		dg := tr.Root.Child("digest", t0)
		digests = c.model.BlockDigests(block)
		env.Sleep(perfmodel.DigestTime(c.model.Spec.TotalSize()))
		dg.EndAt(env.Now())
	}
	send := tr.Root.Child("send", env.Now())
	awaitID := telemetry.NextSpanID()
	r := c.expect(env, wire.TCheckpointDone, iteration)
	key := pendingKey{t: wire.TCheckpointDone, iter: iteration}
	c.mu.Lock()
	r.traceID, r.awaitID = tr.ID, awaitID
	r.digests, r.deltaBlock = digests, c.opts.DeltaBlockBytes
	c.mu.Unlock()
	msg := &wire.Msg{Type: wire.TDoCheckpoint, Model: c.model.Spec.Name, Iteration: iteration,
		TraceID: uint64(tr.ID), SpanID: awaitID,
		Digests: digests, DeltaBlock: c.opts.DeltaBlockBytes}
	if err := c.sendRequest(env, key, msg); err != nil {
		c.errs.Inc()
		return nil, fmt.Errorf("client: DO_CHECKPOINT: %w", err)
	}
	now := env.Now()
	send.EndAt(now)
	await := tr.Root.Child("await", now)
	await.ID = awaitID
	c.mu.Lock()
	r.trace, r.await = tr, await
	c.mu.Unlock()
	return &Completion{r: r, c: c, start: now}, nil
}

// finishTrace closes a request's client-side spans and ships the span
// tree to the daemon as a TRACE_REPORT so the daemon can stitch the
// end-to-end trace. The send happens on a spawned process: under the
// simulation engine a control-plane send sleeps the sender, and the
// report must never charge that latency to the training loop. Span
// mutation and encoding happen under c.mu (a late busy-retry process
// touches the same tree under the same lock).
func (c *Client) finishTrace(env sim.Env, r *reply, iteration uint64, err error) {
	c.mu.Lock()
	tr, await := r.trace, r.await
	r.trace, r.await = nil, nil // report at most once
	conn := c.conn
	if tr == nil {
		c.mu.Unlock()
		return
	}
	now := env.Now()
	await.EndAt(now)
	tr.Finish(now)
	if iteration != 0 {
		tr.Iteration = iteration
	}
	if err != nil {
		tr.Err = err.Error()
	}
	payload, jerr := json.Marshal(tr.Root)
	c.mu.Unlock()
	if jerr != nil {
		return
	}
	report := &wire.Msg{Type: wire.TTraceReport, Model: tr.Model, Iteration: tr.Iteration,
		TraceID: uint64(tr.ID), Payload: payload}
	env.Go("portus-client-trace-report", func(env sim.Env) {
		_ = conn.Send(env, report)
	})
}

// Completion is an in-flight checkpoint handle.
type Completion struct {
	r     *reply
	c     *Client
	start time.Duration
	err   error
	ok    bool
}

// Wait blocks until the checkpoint commits.
func (cp *Completion) Wait(env sim.Env) error {
	if cp.ok {
		return cp.err
	}
	_, err := cp.r.wait(env)
	cp.ok = true
	cp.err = err
	if cp.c != nil {
		if err != nil {
			cp.c.errs.Inc()
		} else {
			cp.c.ckpts.Inc()
			cp.c.ckptLat.ObserveDurationTraced(env.Now()-cp.start, cp.r.traceID)
		}
		cp.c.finishTrace(env, cp.r, 0, err)
	}
	return err
}

// Done reports completion without blocking.
func (cp *Completion) Done(env sim.Env) bool {
	return cp.ok || cp.r.sig.Fired(env)
}

// CRC returns the content fingerprint the daemon stamped on the
// CHECKPOINT_DONE reply — meaningful only after Wait returned nil.
// Replicated routers compare it across copies and record it in the
// group manifest.
func (cp *Completion) CRC() uint64 {
	if cp.ok && cp.err == nil && cp.r.msg != nil {
		return cp.r.msg.CRC
	}
	return 0
}

// Restore asks the daemon to write the newest complete version into GPU
// memory (the model object must already be placed, "empty"), blocking
// until the write completes. It returns the restored iteration.
func (c *Client) Restore(env sim.Env) (uint64, error) {
	return c.restore(env, 0)
}

// RestoreAt is Restore pinned to an exact iteration: the daemon serves
// the version slot holding it, or fails if that iteration is not a
// complete version on PMem. Group restores use this to land every
// shard on the manifest's group-committed iteration.
func (c *Client) RestoreAt(env sim.Env, iteration uint64) (uint64, error) {
	if iteration == 0 {
		return 0, fmt.Errorf("client: RestoreAt: iteration must be nonzero")
	}
	return c.restore(env, iteration)
}

func (c *Client) restore(env sim.Env, iteration uint64) (uint64, error) {
	start := env.Now()
	tr := telemetry.NewTrace("client:restore", c.model.Spec.Name, iteration, start)
	tr.ID = telemetry.NewTraceID()
	send := tr.Root.Child("send", start)
	awaitID := telemetry.NextSpanID()
	r := c.expect(env, wire.TRestoreDone, restoreKey)
	key := pendingKey{t: wire.TRestoreDone, iter: restoreKey}
	c.mu.Lock()
	r.traceID, r.awaitID = tr.ID, awaitID
	r.restoreIter = iteration
	c.mu.Unlock()
	msg := &wire.Msg{Type: wire.TRestore, Model: c.model.Spec.Name, Iteration: iteration,
		TraceID: uint64(tr.ID), SpanID: awaitID}
	if err := c.sendRequest(env, key, msg); err != nil {
		c.errs.Inc()
		return 0, fmt.Errorf("client: RESTORE: %w", err)
	}
	now := env.Now()
	send.EndAt(now)
	await := tr.Root.Child("await", now)
	await.ID = awaitID
	c.mu.Lock()
	r.trace, r.await = tr, await
	c.mu.Unlock()
	m, err := r.wait(env)
	if err != nil {
		c.errs.Inc()
		c.finishTrace(env, r, 0, err)
		return 0, fmt.Errorf("client: restore: %w", err)
	}
	c.model.Iteration = m.Iteration
	c.restoreLat.ObserveDurationTraced(env.Now()-start, tr.ID)
	c.finishTrace(env, r, m.Iteration, nil)
	return m.Iteration, nil
}

// Reconnects reports how many control-plane reconnects this client has
// performed (0 when telemetry is disabled).
func (c *Client) Reconnects() int64 { return c.reconnects.Value() }

// BusyRetries reports how many requests this client re-sent after a
// BUSY backpressure reply.
func (c *Client) BusyRetries() int64 { return c.busyRetries.Value() }

// MRCount reports how many memory regions this client registered.
func (c *Client) MRCount() int { return len(c.mrs) }

// Model returns the placed model this client serves.
func (c *Client) Model() *gpu.PlacedModel { return c.model }

// Close tears down the control connection and disables reconnect.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}
