package client_test

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/sim"
)

// crashRun drives n checkpoints with a power failure injected at
// crashDelay (virtual time), power-fails once more to drop unflushed
// state, recovers with a fresh daemon, and checks the double-mapping
// invariant the paper promises ("at least one valid checkpoint version
// present on PMEM", §III-D2):
//
//	(a) recovery finds a done version,
//	(b) its iteration was actually checkpointed, and
//	(c) its TensorData matches that iteration's weights exactly.
func crashRun(t *testing.T, crashDelay time.Duration, n int) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, err := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		if err != nil {
			t.Fatal(err)
		}
		c := h.connect(t, env, 0, placed)

		env.Go("power-failure", func(env sim.Env) {
			env.Sleep(crashDelay)
			h.cl.Storage[0].PMem.Crash()
		})

		var completed []uint64
		for iter := uint64(1); iter <= uint64(n); iter++ {
			placed.ApplyUpdate(iter)
			// Checkpoints continue after the crash; post-crash slots are
			// flushed and committed again, so later versions are durable.
			if err := c.CheckpointSync(env, iter); err != nil {
				t.Fatalf("crash=%v iter=%d: %v", crashDelay, iter, err)
			}
			completed = append(completed, iter)
		}

		// Final power failure drops anything unflushed; recover.
		h.cl.Storage[0].PMem.Crash()
		d2, err := daemon.New(env, daemon.Config{
			PMem:   h.cl.Storage[0].PMem,
			RNode:  h.cl.Storage[0].RNode,
			Fabric: h.cl.Fabric,
		})
		if err != nil {
			t.Fatalf("crash=%v: reopening namespace: %v", crashDelay, err)
		}
		m, err := d2.Store().Lookup("m")
		if err != nil {
			t.Fatalf("crash=%v: model lost: %v", crashDelay, err)
		}
		slot, v, ok := m.LatestDone()
		if !ok {
			t.Fatalf("crash=%v: no done version recovered", crashDelay)
		}
		found := false
		for _, it := range completed {
			if v.Iteration == it {
				found = true
			}
		}
		if !found {
			t.Fatalf("crash=%v: recovered iteration %d was never checkpointed", crashDelay, v.Iteration)
		}
		for i := range m.Tensors {
			ext := m.TensorData(i, slot)
			got := h.cl.Storage[0].PMem.Data().StampOf(ext.Off, ext.Size)
			want := placed.ExpectedStamp(i, v.Iteration)
			if got != want {
				t.Fatalf("crash=%v: tensor %d of recovered iteration %d has wrong content", crashDelay, i, v.Iteration)
			}
		}
	})
	eng.Run()
}

// TestCrashMidSequenceInvariant sweeps deterministic crash points across
// the whole span of a three-checkpoint run.
func TestCrashMidSequenceInvariant(t *testing.T) {
	for _, crashMs := range []int{0, 1, 3, 5, 8, 12, 20, 40, 80, 150, 300, 600} {
		crashRun(t, time.Duration(crashMs)*time.Millisecond, 3)
	}
}

// TestCrashAnywhereProperty fuzzes the crash instant and checkpoint
// count over the same invariant.
func TestCrashAnywhereProperty(t *testing.T) {
	prop := func(crashMicros uint32, rounds uint8) bool {
		n := int(rounds%4) + 2
		delay := time.Duration(crashMicros%2_000_000) * time.Microsecond
		// crashRun fails the test directly on violation; reaching the end
		// means the invariant held.
		crashRun(t, delay, n)
		return !t.Failed()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
