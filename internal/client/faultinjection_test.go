package client_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/index"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// flakyFabric fails one-sided reads while armed, modeling RNIC
// completion errors mid-pull.
type flakyFabric struct {
	rdma.Fabric
	failReads bool
	failed    int
}

var errInjected = errors.New("injected RNIC completion error")

func (f *flakyFabric) Read(env sim.Env, local *rdma.Node, l rdma.Slice, r rdma.RemoteSlice) error {
	if f.failReads {
		f.failed++
		return errInjected
	}
	return f.Fabric.Read(env, local, l, r)
}

// TestPullFailureLeavesConsistentState injects verb failures into a
// checkpoint pull and verifies: the client sees the error, the victim
// slot never reaches done, the previous version stays restorable, and
// the system recovers fully once the fabric heals.
func TestPullFailureLeavesConsistentState(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		cl, err := clusterForFault(t, env)
		if err != nil {
			t.Fatal(err)
		}
		flaky := &flakyFabric{Fabric: cl.fabric}
		d, err := daemon.New(env, daemon.Config{PMem: cl.pm, RNode: cl.storage, Fabric: flaky})
		if err != nil {
			t.Fatal(err)
		}
		net := wire.NewSimNet()
		l, err := net.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("serve", func(env sim.Env) { d.Serve(env, l) })

		placed, err := gpu.Place(cl.gpu, tinySpec("m"))
		if err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Register(env, conn, cl.client, placed)
		if err != nil {
			t.Fatal(err)
		}

		// A good checkpoint first.
		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}

		// Break the fabric; the next checkpoint must fail loudly.
		flaky.failReads = true
		placed.ApplyUpdate(2)
		err = c.CheckpointSync(env, 2)
		if err == nil || !strings.Contains(err.Error(), "injected RNIC") {
			t.Fatalf("checkpoint during fault = %v, want injected error", err)
		}
		if flaky.failed == 0 {
			t.Fatal("fault never triggered")
		}

		// The victim slot must be visibly incomplete and iteration 1
		// still restorable.
		m, err := d.Store().Lookup("m")
		if err != nil {
			t.Fatal(err)
		}
		if _, v, ok := m.LatestDone(); !ok || v.Iteration != 1 {
			t.Fatalf("latest done after fault = %+v ok=%v, want iteration 1", v, ok)
		}
		if s := m.VersionHeader(m.TargetSlot()).State; s == index.StateDone {
			t.Fatal("victim slot reached done despite failed pull")
		}

		// Heal the fabric: the same model checkpoints and restores fine.
		flaky.failReads = false
		placed.ApplyUpdate(3)
		if err := c.CheckpointSync(env, 3); err != nil {
			t.Fatalf("checkpoint after heal: %v", err)
		}
		placed.ApplyUpdate(4)
		iter, err := c.Restore(env)
		if err != nil || iter != 3 {
			t.Fatalf("restore after heal = %d, %v", iter, err)
		}
		if bad := placed.VerifyIteration(3); bad != -1 {
			t.Fatalf("tensor %d wrong after heal", bad)
		}
	})
	eng.Run()
}

// minimal fault-test topology (distinct from the harness: we need to
// wrap the fabric before the daemon sees it).
type faultCluster struct {
	fabric  *rdma.SimFabric
	storage *rdma.Node
	client  *rdma.Node
	gpu     *gpu.GPU
	pm      *pmem.Device
}

func clusterForFault(t *testing.T, env sim.Env) (*faultCluster, error) {
	t.Helper()
	f := rdma.NewSimFabric()
	storage := rdma.NewNode(env, "storage")
	clientNode := rdma.NewNode(env, "client0")
	f.AddNode(storage)
	f.AddNode(clientNode)
	g := gpu.New("gpu0", 8<<20, true)
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 16 << 20, MetaSize: 8 << 20, Materialized: true})
	return &faultCluster{fabric: f, storage: storage, client: clientNode, gpu: g, pm: pm}, nil
}
