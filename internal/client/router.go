// Router: the client-side half of the sharded storage tier. A training
// job's shards are registered with the daemons the placement table
// assigns each one — the top-rf rendezvous owners at replication
// factor rf; checkpoints fan out across every replica concurrently;
// restores stripe back from the healthiest replica of each shard,
// pinned to the manifest's group-committed iteration and verified
// against the CRC stamped at commit. Each replica reuses the full
// single-daemon Client machinery — reconnect, busy backoff, tracing —
// against its own daemon.
//
// Failure handling: transport-class errors (dial failure, request
// timeout, a severed fabric route) mark the node suspect. A suspect
// node is removed from the placement map (an epoch bump), every shard
// is re-placed over the survivors, and missing replicas are rebuilt by
// anti-entropy re-replication — so checkpoints continue degraded and
// no committed iteration is ever lost. A recovered or replacement node
// re-enters through Join, which runs the same re-place + rebuild path.

package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// Dial connects to a named storage daemon's control plane.
type Dial func(env sim.Env, node string) (wire.Conn, error)

// ShardError is the typed partial-failure report of a group operation:
// it names the lagging shard and the daemon that owns it, so an
// operator knows exactly which member held back the commit.
type ShardError struct {
	Shard     string
	Node      string
	Iteration uint64
	Err       error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %q on %q lagging at iteration %d: %v", e.Shard, e.Node, e.Iteration, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// RouterOptions tunes a Router.
type RouterOptions struct {
	// Client is the template for every replica's Options; a nil Dialer
	// gets one wired to the replica's node, enabling per-replica
	// reconnect out of the box.
	Client Options
	// Telemetry receives the router's per-shard and group histograms.
	Telemetry *telemetry.Registry
	// Group labels the router's metrics (typically the parent model
	// name); defaults to the first registered shard's name.
	Group string
	// Replicas is the replication factor: every shard is registered on
	// its top-Replicas rendezvous owners and each checkpoint is written
	// to all of them. 0 or 1 means unreplicated (the classic tier).
	Replicas int
}

// replica is one copy of a shard: a full Client against the daemon on
// its node.
type replica struct {
	node string
	c    *Client
	// down marks a replica whose connection setup failed; it stays in
	// the list (index-stable) until a rebalance replaces it.
	down bool
}

// RouterMember is one shard's binding: the shard name, its primary
// storage node, and the live Client against that node's daemon. Under
// replication the member also carries one Client per additional
// replica; Node/C always track the current primary (promoted on
// failover).
type RouterMember struct {
	Shard string
	Node  string
	C     *Client

	replicas []*replica
	rnode    *rdma.Node
	placed   *gpu.PlacedModel
	lat      *telemetry.Histogram
	fails    *telemetry.Counter
}

// Replicas names the nodes currently holding this shard's copies.
func (m *RouterMember) Replicas() []string {
	out := make([]string, 0, len(m.replicas))
	for _, rep := range m.replicas {
		out = append(out, rep.node)
	}
	return out
}

func (m *RouterMember) findReplica(node string) *replica {
	for _, rep := range m.replicas {
		if rep.node == node {
			return rep
		}
	}
	return nil
}

// Router routes a sharded model's traffic across the storage tier.
type Router struct {
	pmap     *placement.Map
	dial     Dial
	opts     RouterOptions
	manifest *placement.Manifest
	rf       int

	mu       sync.Mutex
	members  []*RouterMember
	suspects map[string]bool

	groupLat    *telemetry.Histogram
	degraded    *telemetry.Gauge
	corruptions *telemetry.Counter
}

// NewRouter creates a router over a placement table.
func NewRouter(pmap *placement.Map, dial Dial, opts RouterOptions) *Router {
	rf := opts.Replicas
	if rf < 1 {
		rf = 1
	}
	r := &Router{
		pmap: pmap, dial: dial, opts: opts,
		manifest: placement.NewManifest(),
		rf:       rf,
		suspects: make(map[string]bool),
	}
	if reg := opts.Telemetry; reg != nil {
		r.degraded = reg.Gauge("portus_router_degraded_nodes",
			"storage nodes currently suspected dead by this router")
		r.corruptions = reg.Counter("portus_restore_corruptions_total",
			"restore attempts that hit a CRC-corrupt replica and failed over")
	}
	return r
}

// FetchPlacement asks any one daemon for the tier's placement table —
// the discovery handshake that lets a router be configured with a
// single member address.
func FetchPlacement(env sim.Env, conn wire.Conn) (*placement.Map, error) {
	if err := conn.Send(env, &wire.Msg{Type: wire.TPlacement}); err != nil {
		return nil, fmt.Errorf("client: PLACEMENT: %w", err)
	}
	m, err := conn.Recv(env)
	if err != nil {
		return nil, fmt.Errorf("client: PLACEMENT reply: %w", err)
	}
	if m.Type != wire.TPlacementResp {
		return nil, fmt.Errorf("client: unexpected %s reply to PLACEMENT", m.Type)
	}
	nodes := make([]placement.Node, len(m.Placement))
	for i, p := range m.Placement {
		nodes[i] = placement.Node{Name: p.Node, CtrlAddr: p.CtrlAddr, FabricAddr: p.FabricAddr, Weight: p.Weight}
	}
	return placement.NewAtEpoch(m.Epoch, nodes...)
}

// Placement exposes the routing table.
func (r *Router) Placement() *placement.Map { return r.pmap }

// Manifest exposes the group commit record.
func (r *Router) Manifest() *placement.Manifest { return r.manifest }

// Replicas is the router's replication factor (>= 1).
func (r *Router) Replicas() int { return r.rf }

// Members lists the registered shards in registration order.
func (r *Router) Members() []*RouterMember {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RouterMember, len(r.members))
	copy(out, r.members)
	return out
}

// Owner reports which storage node the placement table assigns a shard.
func (r *Router) Owner(shard string) string { return r.pmap.Owner(shard) }

// Suspects names the storage nodes this router currently believes
// dead, sorted by name.
func (r *Router) Suspects() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for n := range r.suspects {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// Register binds one placed shard to its owner daemons: it dials each
// of the shard's top-rf rendezvous owners, runs the normal
// registration handshake there, and declares the replica set in the
// manifest. node is the compute node hosting the shard's GPU memory.
func (r *Router) Register(env sim.Env, node *rdma.Node, placed *gpu.PlacedModel) (*RouterMember, error) {
	shard := placed.Spec.Name
	owners := r.pmap.Owners(shard, r.rf)
	if len(owners) == 0 {
		return nil, fmt.Errorf("client: no placement for shard %q", shard)
	}
	m := &RouterMember{Shard: shard, rnode: node, placed: placed}
	for _, owner := range owners {
		rep, err := r.connectReplica(env, m, owner)
		if err != nil {
			return nil, err
		}
		m.replicas = append(m.replicas, rep)
	}
	m.Node, m.C = m.replicas[0].node, m.replicas[0].c
	if reg := r.opts.Telemetry; reg != nil {
		group := r.opts.Group
		if group == "" {
			group = shard
		}
		m.lat = reg.Histogram("portus_router_checkpoint_seconds",
			"per-shard checkpoint latency as seen by the router", nil,
			telemetry.L("model", group), telemetry.L("shard", shard), telemetry.L("node", m.Node))
		m.fails = reg.Counter("portus_router_shard_failures_total",
			"group operations this shard failed or lagged",
			telemetry.L("model", group), telemetry.L("shard", shard), telemetry.L("node", m.Node))
		if r.groupLat == nil {
			r.groupLat = reg.Histogram("portus_router_group_checkpoint_seconds",
				"group checkpoint latency (all shards committed)", nil,
				telemetry.L("model", group))
		}
	}
	r.manifest.AddShard(shard)
	r.manifest.SetOwners(shard, owners)
	r.mu.Lock()
	r.members = append(r.members, m)
	r.mu.Unlock()
	return m, nil
}

// connectReplica dials owner and registers the member's shard there.
func (r *Router) connectReplica(env sim.Env, m *RouterMember, owner string) (*replica, error) {
	if _, ok := r.pmap.Lookup(owner); !ok {
		return nil, fmt.Errorf("client: no placement for node %q", owner)
	}
	opts := r.opts.Client
	if opts.Telemetry == nil {
		opts.Telemetry = r.opts.Telemetry
	}
	if opts.Dialer == nil {
		owner := owner
		opts.Dialer = func(env sim.Env) (wire.Conn, error) { return r.dial(env, owner) }
	}
	conn, err := opts.Dialer(env)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s for shard %q: %w", owner, m.Shard, err)
	}
	c, err := RegisterOpts(env, conn, m.rnode, m.placed, opts)
	if err != nil {
		return nil, fmt.Errorf("client: registering shard %q on %s: %w", m.Shard, owner, err)
	}
	return &replica{node: owner, c: c}, nil
}

// isTransportErr classifies suspect-node signals: the connection died,
// a request deadline expired with the daemon silent, or the fabric has
// no route — as opposed to application errors the daemon answered
// with.
func isTransportErr(err error) bool {
	return errors.Is(err, ErrUnreachable) || errors.Is(err, wire.ErrClosed) || errors.Is(err, rdma.ErrNoRoute)
}

// gcOp is one (shard, replica) leg of a fanned group checkpoint.
type gcOp struct {
	m   *RouterMember
	rep *replica
	cp  *Completion
	err error
}

// GroupCompletion tracks one fanned-out group checkpoint.
type GroupCompletion struct {
	r     *Router
	iter  uint64
	start time.Duration
	ops   []*gcOp
	done  bool
	err   error
}

// CheckpointAsync fans DO_CHECKPOINT out to every live replica of
// every shard concurrently and returns a group handle. A send-phase
// failure on some replica is reported by Wait as a ShardError; the
// other legs proceed regardless.
func (r *Router) CheckpointAsync(env sim.Env, iteration uint64) (*GroupCompletion, error) {
	r.mu.Lock()
	if len(r.members) == 0 {
		r.mu.Unlock()
		return nil, errors.New("client: router has no registered shards")
	}
	gc := &GroupCompletion{r: r, iter: iteration, start: env.Now()}
	for _, m := range r.members {
		live := 0
		for _, rep := range m.replicas {
			if rep.down || r.suspects[rep.node] {
				continue
			}
			live++
			gc.ops = append(gc.ops, &gcOp{m: m, rep: rep})
		}
		if live == 0 {
			gc.ops = append(gc.ops, &gcOp{m: m, rep: nil,
				err: fmt.Errorf("%w: shard %q has no live replica", ErrUnreachable, m.Shard)})
		}
	}
	r.mu.Unlock()
	g := sim.NewGroup(env)
	for _, op := range gc.ops {
		if op.rep == nil {
			continue
		}
		op := op
		g.Add(env, 1)
		env.Go("portus-router-ckpt", func(env sim.Env) {
			defer g.Done(env)
			op.cp, op.err = op.rep.c.CheckpointAsync(env, iteration)
		})
	}
	g.Wait(env)
	return gc, nil
}

// Wait blocks until every replica of every shard commits the iteration
// (the group becomes restorable at it and the manifest records each
// copy), or returns a ShardError naming the first lagging leg. Copies
// that did commit are still recorded in the manifest, so a partial
// failure never un-commits the previous group iteration. Transport
// failures mark their node suspect and trigger an epoch-bump failover
// so the next checkpoint proceeds on the survivors.
func (gc *GroupCompletion) Wait(env sim.Env) error {
	if gc.done {
		return gc.err
	}
	gc.done = true
	g := sim.NewGroup(env)
	for _, op := range gc.ops {
		if op.cp == nil {
			continue
		}
		op := op
		g.Add(env, 1)
		env.Go("portus-router-wait", func(env sim.Env) {
			defer g.Done(env)
			t0 := env.Now()
			if err := op.cp.Wait(env); err != nil {
				op.err = err
				return
			}
			gc.r.manifest.DoneOn(op.m.Shard, op.rep.node, gc.iter)
			if crc := op.cp.CRC(); crc != 0 {
				gc.r.manifest.SetCRC(op.m.Shard, gc.iter, crc)
			}
			if op.m.lat != nil {
				op.m.lat.ObserveDuration(env.Now() - t0)
			}
		})
	}
	g.Wait(env)
	var suspects []string
	for _, op := range gc.ops {
		if op.err == nil {
			continue
		}
		if op.m.fails != nil {
			op.m.fails.Inc()
		}
		node := op.m.Node
		if op.rep != nil {
			node = op.rep.node
		}
		if op.rep != nil && isTransportErr(op.err) {
			suspects = append(suspects, node)
		}
		if gc.err == nil {
			gc.err = &ShardError{Shard: op.m.Shard, Node: node, Iteration: gc.iter, Err: op.err}
		}
	}
	for _, n := range suspects {
		gc.r.MarkSuspect(env, n)
	}
	if gc.err == nil && gc.r.groupLat != nil {
		gc.r.groupLat.ObserveDuration(env.Now() - gc.start)
	}
	return gc.err
}

// Done reports completion of every leg without blocking.
func (gc *GroupCompletion) Done(env sim.Env) bool {
	if gc.done {
		return true
	}
	for _, op := range gc.ops {
		if op.err != nil {
			continue
		}
		if op.cp == nil || !op.cp.Done(env) {
			return false
		}
	}
	return true
}

// CheckpointSync is CheckpointAsync + Wait.
func (r *Router) CheckpointSync(env sim.Env, iteration uint64) error {
	gc, err := r.CheckpointAsync(env, iteration)
	if err != nil {
		return err
	}
	return gc.Wait(env)
}

// MarkSuspect declares a storage node dead: its manifest copies are
// dropped (the data is presumed lost), it is removed from the
// placement membership (an epoch bump re-placing every shard over the
// survivors), and missing replicas are re-registered and anti-entropy
// rebuilt so checkpoints continue — degraded — with no committed
// iteration lost. Idempotent.
func (r *Router) MarkSuspect(env sim.Env, node string) {
	r.mu.Lock()
	if r.suspects[node] {
		r.mu.Unlock()
		return
	}
	r.suspects[node] = true
	n := len(r.suspects)
	r.mu.Unlock()
	if r.degraded != nil {
		r.degraded.Set(int64(n))
	}
	r.manifest.DropNode(node)
	var survivors []placement.Node
	r.mu.Lock()
	for _, pn := range r.pmap.Nodes() {
		if !r.suspects[pn.Name] {
			survivors = append(survivors, pn)
		}
	}
	r.mu.Unlock()
	if len(survivors) > 0 && len(survivors) < r.pmap.Len() {
		_ = r.pmap.Update(survivors)
	}
	r.rebalance(env)
}

// Join (re-)admits a storage node: it enters the placement map (an
// epoch bump), every shard is re-placed at the new epoch, and copies
// the node now owns are rebuilt from its peers by anti-entropy
// re-replication. The node's daemon must already be serving.
func (r *Router) Join(env sim.Env, n placement.Node) error {
	r.mu.Lock()
	delete(r.suspects, n.Name)
	cnt := len(r.suspects)
	// Replica clients that pointed at the dead incarnation are stale —
	// mark them down so rebalance dials the replacement daemon fresh.
	for _, m := range r.members {
		if rep := m.findReplica(n.Name); rep != nil {
			rep.down = true
			if rep.c != nil {
				rep.c.Close()
			}
		}
	}
	r.mu.Unlock()
	if r.degraded != nil {
		r.degraded.Set(int64(cnt))
	}
	nodes := r.pmap.Nodes()
	found := false
	for i := range nodes {
		if nodes[i].Name == n.Name {
			nodes[i] = n
			found = true
		}
	}
	if !found {
		nodes = append(nodes, n)
	}
	if err := r.pmap.Update(nodes); err != nil {
		return fmt.Errorf("client: join %s: %w", n.Name, err)
	}
	return r.rebalance(env)
}

// rebalance re-places every shard at the current placement epoch:
// owner sets are re-declared in the manifest, replicas missing from
// the new owner sets are registered, a dead primary is demoted in
// favor of the first live replica, and owner copies lagging the
// group-committed iteration are rebuilt from a healthy holder
// (anti-entropy). Connection failures leave the shard degraded rather
// than failing the rebalance; the error returned is the first rebuild
// failure, if any.
func (r *Router) rebalance(env sim.Env) error {
	target := r.manifest.Committed()
	var firstErr error
	r.mu.Lock()
	members := make([]*RouterMember, len(r.members))
	copy(members, r.members)
	r.mu.Unlock()
	for _, m := range members {
		owners := r.pmap.Owners(m.Shard, r.rf)
		r.manifest.SetOwners(m.Shard, owners)
		for _, owner := range owners {
			r.mu.Lock()
			rep := m.findReplica(owner)
			suspect := r.suspects[owner]
			r.mu.Unlock()
			if suspect {
				continue
			}
			if rep != nil && !rep.down {
				continue
			}
			nrep, err := r.connectReplica(env, m, owner)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			r.mu.Lock()
			if rep != nil {
				rep.c, rep.down = nrep.c, false
			} else {
				m.replicas = append(m.replicas, nrep)
			}
			r.mu.Unlock()
		}
		// Prune replicas the new epoch no longer assigns this shard —
		// an epoch bump re-places shards, it doesn't accumulate copies —
		// and re-point the primary at a live owner.
		ownerSet := make(map[string]bool, len(owners))
		for _, o := range owners {
			ownerSet[o] = true
		}
		r.mu.Lock()
		kept := m.replicas[:0]
		for _, rep := range m.replicas {
			if ownerSet[rep.node] {
				kept = append(kept, rep)
			} else if rep.c != nil {
				rep.c.Close()
			}
		}
		m.replicas = kept
		if !ownerSet[m.Node] || r.suspects[m.Node] {
			for _, rep := range m.replicas {
				if !rep.down && !r.suspects[rep.node] {
					m.Node, m.C = rep.node, rep.c
					break
				}
			}
		}
		r.mu.Unlock()
		if target != 0 {
			if err := r.antiEntropyShard(env, m, target); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// AntiEntropy rebuilds every owner copy lagging the group-committed
// iteration from a healthy holder of that iteration. No-op when
// nothing has committed yet.
func (r *Router) AntiEntropy(env sim.Env) error {
	target := r.manifest.Committed()
	if target == 0 {
		return nil
	}
	var firstErr error
	for _, m := range r.Members() {
		if err := r.antiEntropyShard(env, m, target); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// antiEntropyShard copies shard m's committed iteration from a holder
// to every live owner replica that lacks it: DUMP from the source
// (pinned to the iteration), LOAD into the laggard, CRC verified at
// both ends.
func (r *Router) antiEntropyShard(env sim.Env, m *RouterMember, target uint64) error {
	holders := make(map[string]bool)
	for _, n := range r.manifest.HoldersOf(m.Shard, target) {
		holders[n] = true
	}
	owners := make(map[string]bool)
	for _, n := range r.manifest.Owners(m.Shard) {
		owners[n] = true
	}
	var src string
	r.mu.Lock()
	for _, rep := range m.replicas {
		if !rep.down && !r.suspects[rep.node] && holders[rep.node] {
			src = rep.node
			break
		}
	}
	// Only owner copies are rebuilt: pushing a shard onto a node the
	// current epoch doesn't assign it would be refused as misplaced.
	var laggards []string
	for _, rep := range m.replicas {
		if !rep.down && !r.suspects[rep.node] && owners[rep.node] && !holders[rep.node] {
			laggards = append(laggards, rep.node)
		}
	}
	r.mu.Unlock()
	if len(laggards) == 0 {
		return nil
	}
	if src == "" {
		return fmt.Errorf("client: anti-entropy: no healthy holder of iteration %d for shard %q", target, m.Shard)
	}
	payload, crc, err := r.dumpShard(env, src, m.Shard, target)
	if err != nil {
		return err
	}
	var firstErr error
	for _, node := range laggards {
		if err := r.loadShard(env, node, m.Shard, target, payload, crc); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.manifest.DoneOn(m.Shard, node, target)
		if crc != 0 {
			r.manifest.SetCRC(m.Shard, target, crc)
		}
	}
	return firstErr
}

// dumpShard archives one shard's pinned iteration from node.
func (r *Router) dumpShard(env sim.Env, node, shard string, iter uint64) ([]byte, uint64, error) {
	conn, err := r.dial(env, node)
	if err != nil {
		return nil, 0, fmt.Errorf("client: anti-entropy: dialing %s: %w", node, err)
	}
	defer conn.Close()
	if err := conn.Send(env, &wire.Msg{Type: wire.TDump, Model: shard, Iteration: iter}); err != nil {
		return nil, 0, fmt.Errorf("client: anti-entropy: DUMP to %s: %w", node, err)
	}
	resp, err := conn.Recv(env)
	if err != nil {
		return nil, 0, fmt.Errorf("client: anti-entropy: DUMP reply from %s: %w", node, err)
	}
	if resp.Type != wire.TDumpResp {
		return nil, 0, fmt.Errorf("client: anti-entropy: %s from %s: %s", resp.Type, node, resp.Error)
	}
	return resp.Payload, resp.CRC, nil
}

// loadShard installs an archived shard iteration on node.
func (r *Router) loadShard(env sim.Env, node, shard string, iter uint64, payload []byte, crc uint64) error {
	conn, err := r.dial(env, node)
	if err != nil {
		return fmt.Errorf("client: anti-entropy: dialing %s: %w", node, err)
	}
	defer conn.Close()
	if err := conn.Send(env, &wire.Msg{Type: wire.TLoad, Model: shard, Iteration: iter, Payload: payload, CRC: crc}); err != nil {
		return fmt.Errorf("client: anti-entropy: LOAD to %s: %w", node, err)
	}
	resp, err := conn.Recv(env)
	if err != nil {
		return fmt.Errorf("client: anti-entropy: LOAD reply from %s: %w", node, err)
	}
	if resp.Type != wire.TLoadOK {
		return fmt.Errorf("client: anti-entropy: %s from %s: %s", resp.Type, node, resp.Error)
	}
	return nil
}

// Restore stripes the group-committed iteration back concurrently,
// each shard served from the healthiest replica holding it. With an
// empty manifest (a fresh router after a failure) it first rebuilds
// the manifest from the daemons' LIST responses. A replica failing its
// CRC integrity check is counted in portus_restore_corruptions_total
// and the restore fails over to the next holder; transport failures
// mark the node suspect and fail over likewise. Returns the restored
// iteration.
func (r *Router) Restore(env sim.Env) (uint64, error) {
	members := r.Members()
	if len(members) == 0 {
		return 0, errors.New("client: router has no registered shards")
	}
	target := r.manifest.Committed()
	if target == 0 {
		if err := r.SyncManifest(env); err != nil {
			return 0, err
		}
		target = r.manifest.Committed()
	}
	if target == 0 {
		return 0, fmt.Errorf("%w: no group-committed iteration", ErrNoCheckpoint)
	}
	g := sim.NewGroup(env)
	errs := make([]error, len(members))
	nodes := make([]string, len(members))
	for i, m := range members {
		i, m := i, m
		nodes[i] = m.Node
		g.Add(env, 1)
		env.Go("portus-router-restore", func(env sim.Env) {
			defer g.Done(env)
			nodes[i], errs[i] = r.restoreShard(env, m, target)
		})
	}
	g.Wait(env)
	for i, m := range members {
		if errs[i] != nil {
			if m.fails != nil {
				m.fails.Inc()
			}
			return 0, &ShardError{Shard: m.Shard, Node: nodes[i], Iteration: target, Err: errs[i]}
		}
	}
	return target, nil
}

// restoreShard serves one shard's pinned restore, failing over across
// replicas: known holders of the iteration first, then the remaining
// live replicas. Returns the node that served it.
func (r *Router) restoreShard(env sim.Env, m *RouterMember, target uint64) (string, error) {
	holders := make(map[string]bool)
	for _, n := range r.manifest.HoldersOf(m.Shard, target) {
		holders[n] = true
	}
	r.mu.Lock()
	var candidates []*replica
	for _, rep := range m.replicas {
		if !rep.down && !r.suspects[rep.node] && holders[rep.node] {
			candidates = append(candidates, rep)
		}
	}
	for _, rep := range m.replicas {
		if !rep.down && !r.suspects[rep.node] && !holders[rep.node] {
			candidates = append(candidates, rep)
		}
	}
	r.mu.Unlock()
	if len(candidates) == 0 {
		return m.Node, fmt.Errorf("%w: shard %q has no live replica", ErrUnreachable, m.Shard)
	}
	var lastNode string
	var lastErr error
	for _, rep := range candidates {
		_, err := rep.c.RestoreAt(env, target)
		if err == nil {
			return rep.node, nil
		}
		lastNode, lastErr = rep.node, err
		switch {
		case errors.Is(err, ErrCorruptReplica):
			if r.corruptions != nil {
				r.corruptions.Inc()
			}
		case errors.Is(err, ErrNoCheckpoint):
			// This copy lags the manifest (e.g. a freshly rebuilt
			// replica racing anti-entropy); try the next holder.
		case isTransportErr(err):
			r.MarkSuspect(env, rep.node)
		default:
			return rep.node, err
		}
	}
	return lastNode, lastErr
}

// SyncManifest rebuilds the manifest from the daemons' LIST responses:
// each replica copy's recent-done window (and its CRC stamps) is
// reconstructed from the version slots its daemon reports. This is how
// a restarted router learns what is restorable without any client-side
// persistence. Under replication an unreachable node is marked suspect
// and skipped; unreplicated routers keep the strict error.
func (r *Router) SyncManifest(env sim.Env) error {
	byNode := make(map[string][]*RouterMember)
	for _, m := range r.Members() {
		r.mu.Lock()
		reps := append([]*replica(nil), m.replicas...)
		r.mu.Unlock()
		for _, rep := range reps {
			if rep.down {
				continue
			}
			byNode[rep.node] = append(byNode[rep.node], m)
		}
	}
	var nodes []string
	for node := range byNode {
		nodes = append(nodes, node)
	}
	sortStrings(nodes)
	for _, node := range nodes {
		r.mu.Lock()
		suspect := r.suspects[node]
		r.mu.Unlock()
		if suspect {
			continue
		}
		infos, err := r.listNode(env, node)
		if err != nil {
			if r.rf > 1 {
				r.MarkSuspect(env, node)
				continue
			}
			return err
		}
		for _, m := range byNode[node] {
			if mi, ok := infos[m.Shard]; ok {
				r.manifest.ObserveOn(m.Shard, node, mi.Slot0Iter, mi.Slot1Iter)
				r.manifest.SetCRC(m.Shard, mi.Slot0Iter, mi.Slot0CRC)
				r.manifest.SetCRC(m.Shard, mi.Slot1Iter, mi.Slot1CRC)
			}
		}
	}
	return nil
}

// listNode runs one LIST exchange against node.
func (r *Router) listNode(env sim.Env, node string) (map[string]wire.ModelInfo, error) {
	conn, err := r.dial(env, node)
	if err != nil {
		return nil, fmt.Errorf("client: manifest sync: dialing %s: %w", node, err)
	}
	defer conn.Close()
	if err := conn.Send(env, &wire.Msg{Type: wire.TList}); err != nil {
		return nil, fmt.Errorf("client: manifest sync: LIST to %s: %w", node, err)
	}
	resp, err := conn.Recv(env)
	if err != nil {
		return nil, fmt.Errorf("client: manifest sync: LIST reply from %s: %w", node, err)
	}
	if resp.Type != wire.TListResp {
		return nil, fmt.Errorf("client: manifest sync: unexpected %s reply from %s", resp.Type, node)
	}
	infos := make(map[string]wire.ModelInfo, len(resp.Models))
	for _, mi := range resp.Models {
		infos[mi.Name] = mi
	}
	return infos, nil
}

// Close tears down every replica client.
func (r *Router) Close() error {
	var first error
	for _, m := range r.Members() {
		for _, rep := range m.replicas {
			if rep.c == nil {
				continue
			}
			if err := rep.c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
