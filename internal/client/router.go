// Router: the client-side half of the sharded storage tier. A training
// job's shards are registered with the daemon the placement table
// assigns each one; checkpoints fan out across the owning daemons
// concurrently; restores stripe back from all of them, pinned to the
// manifest's group-committed iteration. Each member reuses the full
// single-daemon Client machinery — reconnect, busy backoff, tracing —
// against its own daemon.

package client

import (
	"errors"
	"fmt"
	"time"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// Dial connects to a named storage daemon's control plane.
type Dial func(env sim.Env, node string) (wire.Conn, error)

// ShardError is the typed partial-failure report of a group operation:
// it names the lagging shard and the daemon that owns it, so an
// operator knows exactly which member held back the commit.
type ShardError struct {
	Shard     string
	Node      string
	Iteration uint64
	Err       error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %q on %q lagging at iteration %d: %v", e.Shard, e.Node, e.Iteration, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// RouterOptions tunes a Router.
type RouterOptions struct {
	// Client is the template for every member's Options; a nil Dialer
	// gets one wired to the member's owning node, enabling per-member
	// reconnect out of the box.
	Client Options
	// Telemetry receives the router's per-shard and group histograms.
	Telemetry *telemetry.Registry
	// Group labels the router's metrics (typically the parent model
	// name); defaults to the first registered shard's name.
	Group string
}

// RouterMember is one shard's binding: the shard name, its owning
// storage node, and the live Client against that node's daemon.
type RouterMember struct {
	Shard string
	Node  string
	C     *Client

	lat   *telemetry.Histogram
	fails *telemetry.Counter
}

// Router routes a sharded model's traffic across the storage tier.
type Router struct {
	pmap     *placement.Map
	dial     Dial
	opts     RouterOptions
	manifest *placement.Manifest

	members  []*RouterMember
	groupLat *telemetry.Histogram
}

// NewRouter creates a router over a placement table.
func NewRouter(pmap *placement.Map, dial Dial, opts RouterOptions) *Router {
	return &Router{pmap: pmap, dial: dial, opts: opts, manifest: placement.NewManifest()}
}

// FetchPlacement asks any one daemon for the tier's placement table —
// the discovery handshake that lets a router be configured with a
// single member address.
func FetchPlacement(env sim.Env, conn wire.Conn) (*placement.Map, error) {
	if err := conn.Send(env, &wire.Msg{Type: wire.TPlacement}); err != nil {
		return nil, fmt.Errorf("client: PLACEMENT: %w", err)
	}
	m, err := conn.Recv(env)
	if err != nil {
		return nil, fmt.Errorf("client: PLACEMENT reply: %w", err)
	}
	if m.Type != wire.TPlacementResp {
		return nil, fmt.Errorf("client: unexpected %s reply to PLACEMENT", m.Type)
	}
	nodes := make([]placement.Node, len(m.Placement))
	for i, p := range m.Placement {
		nodes[i] = placement.Node{Name: p.Node, CtrlAddr: p.CtrlAddr, FabricAddr: p.FabricAddr, Weight: p.Weight}
	}
	return placement.NewAtEpoch(m.Epoch, nodes...)
}

// Placement exposes the routing table.
func (r *Router) Placement() *placement.Map { return r.pmap }

// Manifest exposes the group commit record.
func (r *Router) Manifest() *placement.Manifest { return r.manifest }

// Members lists the registered shards in registration order.
func (r *Router) Members() []*RouterMember {
	out := make([]*RouterMember, len(r.members))
	copy(out, r.members)
	return out
}

// Owner reports which storage node the placement table assigns a shard.
func (r *Router) Owner(shard string) string { return r.pmap.Owner(shard) }

// Register binds one placed shard to its owning daemon: it dials the
// owner, runs the normal registration handshake there, and adds the
// shard to the manifest. node is the compute node hosting the shard's
// GPU memory.
func (r *Router) Register(env sim.Env, node *rdma.Node, placed *gpu.PlacedModel) (*RouterMember, error) {
	shard := placed.Spec.Name
	owner, ok := r.pmap.Lookup(r.pmap.Owner(shard))
	if !ok {
		return nil, fmt.Errorf("client: no placement for shard %q", shard)
	}
	opts := r.opts.Client
	if opts.Telemetry == nil {
		opts.Telemetry = r.opts.Telemetry
	}
	if opts.Dialer == nil {
		opts.Dialer = func(env sim.Env) (wire.Conn, error) { return r.dial(env, owner.Name) }
	}
	conn, err := opts.Dialer(env)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s for shard %q: %w", owner.Name, shard, err)
	}
	c, err := RegisterOpts(env, conn, node, placed, opts)
	if err != nil {
		return nil, fmt.Errorf("client: registering shard %q on %s: %w", shard, owner.Name, err)
	}
	m := &RouterMember{Shard: shard, Node: owner.Name, C: c}
	if reg := r.opts.Telemetry; reg != nil {
		group := r.opts.Group
		if group == "" {
			group = shard
		}
		m.lat = reg.Histogram("portus_router_checkpoint_seconds",
			"per-shard checkpoint latency as seen by the router", nil,
			telemetry.L("model", group), telemetry.L("shard", shard), telemetry.L("node", owner.Name))
		m.fails = reg.Counter("portus_router_shard_failures_total",
			"group operations this shard failed or lagged",
			telemetry.L("model", group), telemetry.L("shard", shard), telemetry.L("node", owner.Name))
		if r.groupLat == nil {
			r.groupLat = reg.Histogram("portus_router_group_checkpoint_seconds",
				"group checkpoint latency (all shards committed)", nil,
				telemetry.L("model", group))
		}
	}
	r.manifest.AddShard(shard)
	r.members = append(r.members, m)
	return m, nil
}

// GroupCompletion tracks one fanned-out group checkpoint.
type GroupCompletion struct {
	r     *Router
	iter  uint64
	start time.Duration
	cps   []*Completion // index-aligned with r.members; nil where send failed
	errs  []error       // send-phase errors, index-aligned
	done  bool
	err   error
}

// CheckpointAsync fans DO_CHECKPOINT out to every shard's daemon
// concurrently and returns a group handle. A send-phase failure on some
// member is reported by Wait as a ShardError; the other members'
// checkpoints proceed regardless.
func (r *Router) CheckpointAsync(env sim.Env, iteration uint64) (*GroupCompletion, error) {
	if len(r.members) == 0 {
		return nil, errors.New("client: router has no registered shards")
	}
	gc := &GroupCompletion{
		r: r, iter: iteration, start: env.Now(),
		cps:  make([]*Completion, len(r.members)),
		errs: make([]error, len(r.members)),
	}
	g := sim.NewGroup(env)
	for i, m := range r.members {
		i, m := i, m
		g.Add(env, 1)
		env.Go("portus-router-ckpt", func(env sim.Env) {
			defer g.Done(env)
			gc.cps[i], gc.errs[i] = m.C.CheckpointAsync(env, iteration)
		})
	}
	g.Wait(env)
	return gc, nil
}

// Wait blocks until every shard's daemon commits the iteration (the
// group becomes restorable at it and the manifest records that), or
// returns a ShardError naming the first lagging shard. Shards that did
// commit are still recorded in the manifest, so a partial failure never
// un-commits the previous group iteration.
func (gc *GroupCompletion) Wait(env sim.Env) error {
	if gc.done {
		return gc.err
	}
	gc.done = true
	g := sim.NewGroup(env)
	for i, m := range gc.r.members {
		if gc.cps[i] == nil {
			continue
		}
		i, m := i, m
		g.Add(env, 1)
		env.Go("portus-router-wait", func(env sim.Env) {
			defer g.Done(env)
			t0 := env.Now()
			if err := gc.cps[i].Wait(env); err != nil {
				gc.errs[i] = err
				return
			}
			gc.r.manifest.Done(m.Shard, gc.iter)
			m.lat.ObserveDuration(env.Now() - t0)
		})
	}
	g.Wait(env)
	for i, m := range gc.r.members {
		if gc.errs[i] != nil {
			m.fails.Inc()
			if gc.err == nil {
				gc.err = &ShardError{Shard: m.Shard, Node: m.Node, Iteration: gc.iter, Err: gc.errs[i]}
			}
		}
	}
	if gc.err == nil && gc.r.groupLat != nil {
		gc.r.groupLat.ObserveDuration(env.Now() - gc.start)
	}
	return gc.err
}

// Done reports completion of every shard without blocking.
func (gc *GroupCompletion) Done(env sim.Env) bool {
	if gc.done {
		return true
	}
	for i, cp := range gc.cps {
		if gc.errs[i] != nil {
			continue
		}
		if cp == nil || !cp.Done(env) {
			return false
		}
	}
	return true
}

// CheckpointSync is CheckpointAsync + Wait.
func (r *Router) CheckpointSync(env sim.Env, iteration uint64) error {
	gc, err := r.CheckpointAsync(env, iteration)
	if err != nil {
		return err
	}
	return gc.Wait(env)
}

// Restore stripes the group-committed iteration back concurrently from
// every shard's daemon. With an empty manifest (a fresh router after a
// failure) it first rebuilds the manifest from the daemons' LIST
// responses. Returns the restored iteration.
func (r *Router) Restore(env sim.Env) (uint64, error) {
	if len(r.members) == 0 {
		return 0, errors.New("client: router has no registered shards")
	}
	target := r.manifest.Committed()
	if target == 0 {
		if err := r.SyncManifest(env); err != nil {
			return 0, err
		}
		target = r.manifest.Committed()
	}
	if target == 0 {
		return 0, errors.New("client: no group-committed iteration to restore")
	}
	g := sim.NewGroup(env)
	errs := make([]error, len(r.members))
	for i, m := range r.members {
		i, m := i, m
		g.Add(env, 1)
		env.Go("portus-router-restore", func(env sim.Env) {
			defer g.Done(env)
			_, errs[i] = m.C.RestoreAt(env, target)
		})
	}
	g.Wait(env)
	for i, m := range r.members {
		if errs[i] != nil {
			m.fails.Inc()
			return 0, &ShardError{Shard: m.Shard, Node: m.Node, Iteration: target, Err: errs[i]}
		}
	}
	return target, nil
}

// SyncManifest rebuilds the manifest from the daemons' LIST responses:
// each shard's recent-done window is reconstructed from the version
// slots its owning daemon reports. This is how a restarted router
// learns what is restorable without any client-side persistence.
func (r *Router) SyncManifest(env sim.Env) error {
	byNode := make(map[string][]*RouterMember)
	for _, m := range r.members {
		byNode[m.Node] = append(byNode[m.Node], m)
	}
	for node, members := range byNode {
		conn, err := r.dial(env, node)
		if err != nil {
			return fmt.Errorf("client: manifest sync: dialing %s: %w", node, err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TList}); err != nil {
			conn.Close()
			return fmt.Errorf("client: manifest sync: LIST to %s: %w", node, err)
		}
		resp, err := conn.Recv(env)
		conn.Close()
		if err != nil {
			return fmt.Errorf("client: manifest sync: LIST reply from %s: %w", node, err)
		}
		if resp.Type != wire.TListResp {
			return fmt.Errorf("client: manifest sync: unexpected %s reply from %s", resp.Type, node)
		}
		infos := make(map[string]wire.ModelInfo, len(resp.Models))
		for _, mi := range resp.Models {
			infos[mi.Name] = mi
		}
		for _, m := range members {
			if mi, ok := infos[m.Shard]; ok {
				r.manifest.Observe(m.Shard, mi.Slot0Iter, mi.Slot1Iter)
			}
		}
	}
	return nil
}

// Close tears down every member client.
func (r *Router) Close() error {
	var first error
	for _, m := range r.members {
		if err := m.C.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
