package client_test

import (
	"net"
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/pmem"
	"github.com/portus-sys/portus/internal/rdma"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// TestFullSystemOverTCP runs the daemon and a client in the same test
// binary but communicating only through real sockets: gob control plane
// plus the soft-RDMA agent fabric. This is the configuration the
// portusd / portus-train executables use.
func TestFullSystemOverTCP(t *testing.T) {
	env := sim.NewRealEnv()
	fabric := rdma.NewTCPFabric(env)
	defer fabric.Close()

	// Storage side.
	storageNode := rdma.NewNode(env, "storage")
	if _, err := fabric.Serve(storageNode, ""); err != nil {
		t.Fatal(err)
	}
	pm := pmem.New(pmem.Config{Name: "pm0", DataSize: 32 << 20, MetaSize: 8 << 20, Materialized: true})
	d, err := daemon.New(env, daemon.Config{PMem: pm, RNode: storageNode, Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go d.Serve(env, wire.NetListener{L: ln})

	// Client side.
	clientNode := rdma.NewNode(env, "client0")
	if _, err := fabric.Serve(clientNode, ""); err != nil {
		t.Fatal(err)
	}
	g := gpu.New("v100-0", 16<<20, true)
	placed, err := gpu.Place(g, tinySpec("tcp-model"))
	if err != nil {
		t.Fatal(err)
	}
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, wire.NewNetConn(sock), clientNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Checkpoint at iteration 5, train onward, restore.
	placed.ApplyUpdate(5)
	if err := c.CheckpointSync(env, 5); err != nil {
		t.Fatal(err)
	}
	placed.ApplyUpdate(6)
	iter, err := c.Restore(env)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 5 {
		t.Fatalf("restored iteration %d, want 5", iter)
	}
	if bad := placed.VerifyIteration(5); bad != -1 {
		t.Fatalf("tensor %d content wrong after TCP restore", bad)
	}

	// The checkpoint must be durable on the (simulated) PMem: crash and
	// re-open the namespace image.
	pm.Crash()
	d2, err := daemon.New(env, daemon.Config{PMem: pm, RNode: storageNode, Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	m, err := d2.Store().Lookup("tcp-model")
	if err != nil {
		t.Fatal(err)
	}
	if _, v, ok := m.LatestDone(); !ok || v.Iteration != 5 {
		t.Fatalf("after crash: %+v ok=%v, want durable iteration 5", v, ok)
	}
}

// TestTCPAsyncPolicy exercises the async completion path over real
// sockets.
func TestTCPAsyncPolicy(t *testing.T) {
	env := sim.NewRealEnv()
	fabric := rdma.NewTCPFabric(env)
	defer fabric.Close()

	storageNode := rdma.NewNode(env, "storage")
	if _, err := fabric.Serve(storageNode, ""); err != nil {
		t.Fatal(err)
	}
	pm := pmem.New(pmem.Config{Name: "pm0", DataSize: 32 << 20, MetaSize: 8 << 20, Materialized: true})
	d, err := daemon.New(env, daemon.Config{PMem: pm, RNode: storageNode, Fabric: fabric})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go d.Serve(env, wire.NetListener{L: ln})

	clientNode := rdma.NewNode(env, "client0")
	if _, err := fabric.Serve(clientNode, ""); err != nil {
		t.Fatal(err)
	}
	g := gpu.New("a40-0", 16<<20, true)
	placed, err := gpu.Place(g, tinySpec("async-model"))
	if err != nil {
		t.Fatal(err)
	}
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, wire.NewNetConn(sock), clientNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	async := &client.Async{C: c}
	for iter := uint64(1); iter <= 3; iter++ {
		placed.ApplyUpdate(iter)
		if err := async.Checkpoint(env, iter); err != nil {
			t.Fatal(err)
		}
		async.BeforeUpdate(env, iter) // WAR barrier before mutating weights
	}
	async.Drain(env)
	got, err := async.Restore(env)
	if err != nil || got != 3 {
		t.Fatalf("restore = %d, %v; want 3", got, err)
	}
	if bad := placed.VerifyIteration(3); bad != -1 {
		t.Fatalf("tensor %d wrong after async TCP restore", bad)
	}
}
