package client_test

import (
	"errors"
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/sim"
)

// killNode is the test-sized whole-node failure: fabric routes cut, the
// control listener and every accepted connection severed, worker pool
// halted. Identical teardown order to the failover experiment.
func (h *tierHarness) killNode(env sim.Env, node string) {
	h.cl.Fabric.CutNode(node)
	h.net.Shutdown(env, node)
	h.daemons[node].Halt(env)
}

// startReplicatedTier is startTier at replication factor 2.
func startReplicatedTier(t *testing.T, env sim.Env, storageNodes int) (*tierHarness, *client.Router) {
	t.Helper()
	h := startTier(t, env, storageNodes, func(node string, dcfg *daemon.Config) {
		dcfg.Replicas = 2
	})
	r := client.NewRouter(h.pmap, h.dial, client.RouterOptions{Replicas: 2})
	return h, r
}

// TestRouterReplicatedCheckpointRestore pins steady-state RF=2: every
// shard lands on two nodes, the manifest requires both copies before a
// group commit, and restore verifies byte-for-byte.
func TestRouterReplicatedCheckpointRestore(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h, r := startReplicatedTier(t, env, 4)
		defer r.Close()
		placed := h.placeTiny(t, env, r, "replicated")

		for _, m := range r.Members() {
			if got := len(m.Replicas()); got != 2 {
				t.Fatalf("shard %s has %d replicas (%v), want 2", m.Shard, got, m.Replicas())
			}
		}

		for iter := uint64(1); iter <= 3; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
			if got := r.Manifest().Committed(); got != iter {
				t.Fatalf("after iteration %d, manifest commits %d", iter, got)
			}
		}
		applyAll(placed, 99)
		iter, err := r.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 3 {
			t.Fatalf("restored iteration %d, want 3", iter)
		}
		verifyAll(t, placed, 3)

		// Every storage node holds real checkpoint bytes: with four
		// shards at RF=2 over four nodes, nobody should sit idle.
		for node, d := range h.daemons {
			if d.Stats().Checkpoints == 0 {
				t.Fatalf("node %s wrote no checkpoints at RF=2", node)
			}
		}
	})
	eng.Run()
}

// TestRouterNodeLossMidCheckpointAsync kills a whole storage node while
// a group checkpoint is in flight (run under -race in CI): the
// checkpoint stream must keep committing on the survivors, the
// committed iteration must never regress, and the group must restore
// byte-identically with the victim still dead.
func TestRouterNodeLossMidCheckpointAsync(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h, r := startReplicatedTier(t, env, 4)
		defer r.Close()
		placed := h.placeTiny(t, env, r, "node-loss")

		for iter := uint64(1); iter <= 2; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}

		victim := r.Members()[0].Node
		applyAll(placed, 3)
		gc, err := r.CheckpointAsync(env, 3)
		if err != nil {
			t.Fatal(err)
		}
		h.killNode(env, victim)
		switch err := gc.Wait(env); {
		case err == nil:
			// All surviving copies landed before the fan-out noticed:
			// iteration 3 committed through the replicas.
		default:
			var se *client.ShardError
			if !errors.As(err, &se) {
				t.Fatalf("mid-flight kill returned %T (%v), want *client.ShardError or nil", err, err)
			}
		}
		if got := r.Manifest().Committed(); got < 2 {
			t.Fatalf("committed iteration regressed to %d after node loss", got)
		}

		// Degraded progress: later checkpoints re-place the victim's
		// shards on survivors and keep committing.
		for iter := uint64(4); iter <= 5; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatalf("degraded checkpoint %d: %v", iter, err)
			}
		}
		if got := r.Manifest().Committed(); got != 5 {
			t.Fatalf("degraded stream committed %d, want 5", got)
		}
		for _, m := range r.Members() {
			for _, n := range m.Replicas() {
				if n == victim {
					t.Fatalf("shard %s still lists dead node %s as a replica", m.Shard, victim)
				}
			}
		}

		applyAll(placed, 99)
		iter, err := r.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 5 {
			t.Fatalf("restored iteration %d with %s dead, want 5", iter, victim)
		}
		verifyAll(t, placed, 5)
	})
	eng.Run()
}

// TestRouterRestoreFailsOverDeadPrimary kills a node while no
// checkpoint is in flight and goes straight to restore: the router must
// discover the loss from the dead dial, fail over to the surviving
// replica, and still restore the last committed iteration.
func TestRouterRestoreFailsOverDeadPrimary(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h, r := startReplicatedTier(t, env, 4)
		defer r.Close()
		placed := h.placeTiny(t, env, r, "dead-primary")
		for iter := uint64(1); iter <= 2; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}

		h.killNode(env, r.Members()[0].Node)
		applyAll(placed, 99)
		iter, err := r.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 2 {
			t.Fatalf("restored iteration %d, want 2", iter)
		}
		verifyAll(t, placed, 2)
	})
	eng.Run()
}
