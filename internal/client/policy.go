package client

import (
	"github.com/portus-sys/portus/internal/sim"
)

// Sync is the Portus synchronous checkpoint policy (Figure 9(c)): the
// training loop blocks until the daemon commits the version. Even
// blocking, it is serialization-free and copy-free.
type Sync struct {
	C *Client
}

// Name identifies the policy.
func (s *Sync) Name() string { return "Portus-Sync" }

// Checkpoint persists iteration's weights, blocking until durable.
func (s *Sync) Checkpoint(env sim.Env, iteration uint64) error {
	return s.C.CheckpointSync(env, iteration)
}

// BeforeUpdate is a no-op: the checkpoint completed before returning.
func (s *Sync) BeforeUpdate(env sim.Env, iteration uint64) {}

// Drain is a no-op.
func (s *Sync) Drain(env sim.Env) {}

// Restore loads the newest complete version into GPU memory.
func (s *Sync) Restore(env sim.Env) (uint64, error) { return s.C.Restore(env) }

// Async is the Portus asynchronous policy (Figure 9(d)): DO_CHECKPOINT
// is sent between backward and update, training proceeds through the
// next forward/backward (parameters are read-only there), and the update
// phase stalls only if the daemon's pull has not finished — the
// write-after-read hazard barrier.
type Async struct {
	C        *Client
	inflight *Completion
}

// Name identifies the policy.
func (a *Async) Name() string { return "Portus-Async" }

// Checkpoint triggers the pull and returns immediately.
func (a *Async) Checkpoint(env sim.Env, iteration uint64) error {
	cp, err := a.C.CheckpointAsync(env, iteration)
	if err != nil {
		return err
	}
	a.inflight = cp
	return nil
}

// BeforeUpdate enforces the WAR barrier: the optimizer must not mutate
// tensors the daemon is still reading.
func (a *Async) BeforeUpdate(env sim.Env, iteration uint64) {
	if a.inflight == nil {
		return
	}
	if !a.inflight.Done(env) {
		start := env.Now()
		// A pull failure surfaces through Drain/Restore; the barrier only
		// cares that the read finished.
		_ = a.inflight.Wait(env)
		a.C.Stalled += env.Now() - start
	} else {
		_ = a.inflight.Wait(env)
	}
	a.inflight = nil
}

// Drain waits out any in-flight pull.
func (a *Async) Drain(env sim.Env) {
	if a.inflight != nil {
		_ = a.inflight.Wait(env)
		a.inflight = nil
	}
}

// Restore loads the newest complete version into GPU memory.
func (a *Async) Restore(env sim.Env) (uint64, error) {
	a.Drain(env)
	return a.C.Restore(env)
}
