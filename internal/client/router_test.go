package client_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/parallel"
	"github.com/portus-sys/portus/internal/placement"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// tierHarness is a multi-daemon storage tier: one daemon per storage
// node, all sharing one placement map, each listening on its node name.
type tierHarness struct {
	cl      *cluster.Cluster
	pmap    *placement.Map
	daemons map[string]*daemon.Daemon
	net     *wire.SimNet
}

func startTier(t *testing.T, env sim.Env, storageNodes int, dmut func(node string, dcfg *daemon.Config)) *tierHarness {
	t.Helper()
	cl, err := cluster.New(env, cluster.Config{
		ComputeNodes: 2,
		GPUsPerNode:  2,
		GPUMemBytes:  16 << 20,
		StorageNodes: storageNodes,
		PMemBytes:    32 << 20,
		Materialized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]placement.Node, len(cl.Storage))
	for i, st := range cl.Storage {
		nodes[i] = placement.Node{Name: st.Name, Weight: st.PMem.DataSize()}
	}
	pmap, err := placement.New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	h := &tierHarness{cl: cl, pmap: pmap, daemons: map[string]*daemon.Daemon{}, net: wire.NewSimNet()}
	for _, st := range cl.Storage {
		dcfg := daemon.Config{
			PMem:     st.PMem,
			RNode:    st.RNode,
			Fabric:   cl.Fabric,
			NodeName: st.Name,
			Group:    pmap,
		}
		if dmut != nil {
			dmut(st.Name, &dcfg)
		}
		d, err := daemon.New(env, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		l, err := h.net.Listen(env, st.Name)
		if err != nil {
			t.Fatal(err)
		}
		env.Go("portusd-"+st.Name, func(env sim.Env) { d.Serve(env, l) })
		h.daemons[st.Name] = d
	}
	return h
}

func (h *tierHarness) dial(env sim.Env, node string) (wire.Conn, error) {
	return h.net.Dial(env, node)
}

// placeTiny partitions a tiny model 2x2 and registers all four shards
// through the router, returning the placed shards in placement order.
func (h *tierHarness) placeTiny(t *testing.T, env sim.Env, r *client.Router, name string) []*gpu.PlacedModel {
	t.Helper()
	shards, err := parallel.Partition(tinySpec(name), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	placements, err := parallel.Place(shards, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	placed := make([]*gpu.PlacedModel, len(placements))
	for i, pl := range placements {
		p, err := gpu.Place(h.cl.GPU(pl.Node, pl.GPU), pl.Shard.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Register(env, h.cl.Compute[pl.Node].RNode, p); err != nil {
			t.Fatal(err)
		}
		placed[i] = p
	}
	return placed
}

func applyAll(placed []*gpu.PlacedModel, iter uint64) {
	for _, p := range placed {
		p.ApplyUpdate(iter)
	}
}

func verifyAll(t *testing.T, placed []*gpu.PlacedModel, iter uint64) {
	t.Helper()
	for i, p := range placed {
		if bad := p.VerifyIteration(iter); bad != -1 {
			t.Fatalf("shard %d (%s) tensor %d wrong after restoring iteration %d", i, p.Spec.Name, bad, iter)
		}
	}
}

// TestRouterShardedCheckpointRestore drives the whole sharded datapath:
// four shards registered across two daemons by placement, group
// checkpoints fanned out, and a striped restore of the group-committed
// iteration.
func TestRouterShardedCheckpointRestore(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startTier(t, env, 2, nil)
		r := client.NewRouter(h.pmap, h.dial, client.RouterOptions{})
		defer r.Close()
		placed := h.placeTiny(t, env, r, "routed")

		// Placement must actually use both members, or this test would
		// silently degrade to the single-daemon path.
		byNode := map[string]int{}
		for _, m := range r.Members() {
			byNode[m.Node]++
		}
		if len(byNode) != 2 {
			t.Fatalf("4 shards placed on %d storage nodes (%v), want 2", len(byNode), byNode)
		}

		for iter := uint64(1); iter <= 3; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
			if got := r.Manifest().Committed(); got != iter {
				t.Fatalf("after iteration %d, manifest commits %d", iter, got)
			}
		}

		applyAll(placed, 99) // weights move on
		iter, err := r.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 3 {
			t.Fatalf("restored iteration %d, want 3", iter)
		}
		verifyAll(t, placed, 3)

		// Both daemons did real work.
		for node, d := range h.daemons {
			st := d.Stats()
			if st.Checkpoints == 0 || st.Restores == 0 {
				t.Fatalf("daemon %s stats = %+v, want checkpoints and restores", node, st)
			}
		}
	})
	eng.Run()
}

// TestRouterKillMidCheckpointKeepsCommittedIteration is the tier's
// crash-consistency acceptance test: killing one shard's daemon mid
// group checkpoint must (a) surface a typed ShardError naming the
// lagging shard and its node, (b) leave the manifest at the previous
// group-committed iteration, and (c) keep that iteration fully
// restorable — zero committed checkpoints lost.
func TestRouterKillMidCheckpointKeepsCommittedIteration(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		// Every daemon gets a kill switch wired into its PMem flush
		// stage; flipping one simulates that node dying mid-checkpoint
		// (its in-flight flush errors and keeps erroring).
		kills := map[string]*atomic.Bool{}
		h := startTier(t, env, 2, func(node string, dcfg *daemon.Config) {
			sw := &atomic.Bool{}
			kills[node] = sw
			pm := dcfg.PMem
			dcfg.Flush = func(off, n int64) error {
				if sw.Load() {
					return errors.New("injected: storage node down")
				}
				pm.FlushData(off, n)
				return nil
			}
		})
		r := client.NewRouter(h.pmap, h.dial, client.RouterOptions{})
		defer r.Close()
		placed := h.placeTiny(t, env, r, "killed")

		for iter := uint64(1); iter <= 2; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}

		victim := r.Members()[0].Node
		kills[victim].Store(true)
		applyAll(placed, 3)
		err := r.CheckpointSync(env, 3)
		if err == nil {
			t.Fatal("group checkpoint succeeded with a dead member")
		}
		var se *client.ShardError
		if !errors.As(err, &se) {
			t.Fatalf("error %T (%v), want *client.ShardError", err, err)
		}
		if se.Node != victim || se.Iteration != 3 {
			t.Fatalf("ShardError names %s iteration %d, want %s iteration 3", se.Node, se.Iteration, victim)
		}
		if r.Owner(se.Shard) != victim {
			t.Fatalf("ShardError names shard %q, which %s does not own", se.Shard, victim)
		}
		if got := r.Manifest().Committed(); got != 2 {
			t.Fatalf("manifest commits %d after partial failure, want 2", got)
		}
		if lag := r.Manifest().Lagging(3); len(lag) == 0 {
			t.Fatal("manifest reports no lagging shard for iteration 3")
		}

		// The previous group iteration restores in full, striped across
		// the survivor and the "dead" node (restores read, not flush).
		applyAll(placed, 99)
		iter, err := r.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 2 {
			t.Fatalf("restored iteration %d, want 2", iter)
		}
		verifyAll(t, placed, 2)
	})
	eng.Run()
}

// TestRouterFetchPlacementDiscovery checks the wire handshake: a client
// configured with a single member address discovers the full table and
// routes through it.
func TestRouterFetchPlacementDiscovery(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startTier(t, env, 2, nil)
		conn, err := h.net.Dial(env, "storage1")
		if err != nil {
			t.Fatal(err)
		}
		pmap, err := client.FetchPlacement(env, conn)
		conn.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pmap.Len() != 2 || pmap.Epoch() != h.pmap.Epoch() {
			t.Fatalf("fetched table has %d nodes at epoch %d, want 2 at %d", pmap.Len(), pmap.Epoch(), h.pmap.Epoch())
		}
		for _, key := range []string{"a", "b", "model/mp_rank_00_pp_00"} {
			if got, want := pmap.Owner(key), h.pmap.Owner(key); got != want {
				t.Fatalf("fetched table routes %q to %s, daemon's routes to %s", key, got, want)
			}
		}

		r := client.NewRouter(pmap, h.dial, client.RouterOptions{})
		defer r.Close()
		placed := h.placeTiny(t, env, r, "discovered")
		applyAll(placed, 1)
		if err := r.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
}

// TestRouterSyncManifestAfterRestart proves a restarted training job
// can find the group-committed iteration with no client-side state: a
// fresh router rebuilds the manifest from the daemons' LIST responses.
func TestRouterSyncManifestAfterRestart(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startTier(t, env, 2, nil)
		r := client.NewRouter(h.pmap, h.dial, client.RouterOptions{})
		placed := h.placeTiny(t, env, r, "restarted")
		for iter := uint64(1); iter <= 2; iter++ {
			applyAll(placed, iter)
			if err := r.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}
		r.Close()

		// "Restart": a brand-new router over the same tier, re-registering
		// the same shards, with an empty manifest.
		r2 := client.NewRouter(h.pmap, h.dial, client.RouterOptions{})
		defer r2.Close()
		shards, err := parallel.Partition(tinySpec("restarted"), 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		placements, err := parallel.Place(shards, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, pl := range placements {
			if _, err := r2.Register(env, h.cl.Compute[pl.Node].RNode, placed[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got := r2.Manifest().Committed(); got != 0 {
			t.Fatalf("fresh router's manifest commits %d before sync", got)
		}
		applyAll(placed, 99)
		iter, err := r2.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 2 {
			t.Fatalf("restored iteration %d after restart, want 2", iter)
		}
		verifyAll(t, placed, 2)
	})
	eng.Run()
}

// TestRouterRefusesMisplacedShard checks daemons enforce the placement
// map: registering a model with a daemon that does not own it fails
// with the owner named.
func TestRouterRefusesMisplacedShard(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startTier(t, env, 2, nil)
		spec := tinySpec("misplaced")
		wrong := cluster.StorageNodeName(0)
		if h.pmap.Owner(spec.Name) == wrong {
			wrong = cluster.StorageNodeName(1)
		}
		placed, err := gpu.Place(h.cl.GPU(0, 0), spec)
		if err != nil {
			t.Fatal(err)
		}
		conn, err := h.net.Dial(env, wrong)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := client.Register(env, conn, h.cl.Compute[0].RNode, placed); err == nil {
			t.Fatal("daemon accepted a model the placement map assigns elsewhere")
		}
	})
	eng.Run()
}

// TestRestoreAtPinnedIteration checks the exact-iteration restore the
// router's striped recovery rides on: either DONE slot is addressable
// by iteration, anything else fails loudly.
func TestRestoreAtPinnedIteration(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, err := gpu.Place(h.cl.GPU(0, 0), tinySpec("pinned"))
		if err != nil {
			t.Fatal(err)
		}
		c := h.connect(t, env, 0, placed)
		for iter := uint64(5); iter <= 6; iter++ {
			placed.ApplyUpdate(iter)
			if err := c.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}

		// Both resident versions restore by exact iteration, not just
		// the newest.
		for _, want := range []uint64{5, 6, 5} {
			placed.ApplyUpdate(99)
			iter, err := c.RestoreAt(env, want)
			if err != nil {
				t.Fatal(err)
			}
			if iter != want {
				t.Fatalf("RestoreAt(%d) restored %d", want, iter)
			}
			if bad := placed.VerifyIteration(want); bad != -1 {
				t.Fatalf("tensor %d wrong after RestoreAt(%d)", bad, want)
			}
		}

		// Iteration 4 was evicted by the double-mapped slot rotation.
		if _, err := c.RestoreAt(env, 4); err == nil {
			t.Fatal("RestoreAt(4) succeeded for an evicted iteration")
		}
		if _, err := c.RestoreAt(env, 0); err == nil {
			t.Fatal("RestoreAt(0) succeeded; 0 must be rejected")
		}
	})
	eng.Run()
}
