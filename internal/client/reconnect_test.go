package client_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/faults"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/telemetry"
	"github.com/portus-sys/portus/internal/wire"
)

// scriptConn is a hand-driven control connection: the test queues
// daemon replies into in and can make Send fail on demand.
type scriptConn struct {
	env      sim.Env
	in       *sim.Mailbox[*wire.Msg]
	sent     []*wire.Msg
	failSend bool
}

func newScriptConn(env sim.Env) *scriptConn {
	return &scriptConn{env: env, in: sim.NewMailbox[*wire.Msg](env)}
}

func (c *scriptConn) Send(env sim.Env, m *wire.Msg) error {
	if c.failSend {
		return fmt.Errorf("script: send failed")
	}
	c.sent = append(c.sent, m)
	return nil
}

func (c *scriptConn) Recv(env sim.Env) (*wire.Msg, error) {
	m, ok := c.in.Recv(env)
	if !ok {
		return nil, wire.ErrClosed
	}
	return m, nil
}

func (c *scriptConn) Close() error {
	if !c.in.Closed(c.env) {
		c.in.Close(c.env)
	}
	return nil
}

// TestFailedSendDoesNotLeakWaiter is the regression test for the armed-
// waiter leak: a request whose Send fails (with no reconnect dialer)
// must remove its waiter. With the leak, the stale iteration-1 waiter
// stayed oldest in the arming order and swallowed the next uncorrelated
// daemon ERROR, leaving the live request hanging forever.
func TestFailedSendDoesNotLeakWaiter(t *testing.T) {
	var errSeen, doneSeen bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		sc := newScriptConn(env)
		sc.in.Send(env, &wire.Msg{Type: wire.TRegisterOK, Model: "m"})
		c, err := client.Register(env, sc, h.cl.Compute[0].RNode, placed)
		if err != nil {
			t.Fatal(err)
		}

		sc.failSend = true
		if _, err := c.CheckpointAsync(env, 1); err == nil {
			t.Fatal("checkpoint with failing send must error without a dialer")
		}
		sc.failSend = false

		// The live request: an uncorrelated ERROR must release THIS
		// waiter, not the failed request's stale one.
		cp, err := c.CheckpointAsync(env, 2)
		if err != nil {
			t.Fatal(err)
		}
		sc.in.Send(env, &wire.Msg{Type: wire.TError, Error: "synthetic daemon error"})
		if err := cp.Wait(env); err == nil || !strings.Contains(err.Error(), "synthetic daemon error") {
			t.Fatalf("live waiter got %v, want the synthetic error", err)
		}
		errSeen = true

		// And the normal completion path still works afterwards.
		cp3, err := c.CheckpointAsync(env, 3)
		if err != nil {
			t.Fatal(err)
		}
		sc.in.Send(env, &wire.Msg{Type: wire.TCheckpointDone, Model: "m", Iteration: 3})
		if err := cp3.Wait(env); err != nil {
			t.Fatal(err)
		}
		doneSeen = true
	})
	eng.Run()
	// A leaked waiter leaves the test proc parked forever and the engine
	// abandons it silently — so assert the waits actually returned.
	if !errSeen || !doneSeen {
		t.Fatalf("waits never returned (errSeen=%v doneSeen=%v): waiter leaked", errSeen, doneSeen)
	}
}

// TestClientReconnectResumesCheckpoints: the control connection is
// dropped deterministically mid-run; the client redials, re-registers,
// re-sends the outstanding DO_CHECKPOINT, and training proceeds with no
// visible failure.
func TestClientReconnectResumesCheckpoints(t *testing.T) {
	var finished bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		reg := telemetry.NewRegistry()
		// Drop exactly the 4th client-side control-plane operation: the
		// DO_CHECKPOINT send (or the Recv awaiting its reply) mid-stream.
		inj := faults.NewInjector(faults.Config{Conn: faults.Rule{From: 4, To: 4}})
		dial := func(env sim.Env) (wire.Conn, error) {
			conn, err := h.net.Dial(env, "storage")
			if err != nil {
				return nil, err
			}
			return inj.Conn(conn), nil
		}
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		conn, err := dial(env)
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.RegisterOpts(env, conn, h.cl.Compute[0].RNode, placed, client.Options{
			Telemetry: reg,
			Dialer:    dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 4; i++ {
			placed.ApplyUpdate(i)
			if err := c.CheckpointSync(env, i); err != nil {
				t.Fatalf("checkpoint %d: %v", i, err)
			}
		}
		if got := inj.Injected(faults.SiteConn); got != 1 {
			t.Fatalf("injected %d connection drops, want 1", got)
		}
		if got := c.Reconnects(); got != 1 {
			t.Fatalf("reconnects = %d, want 1", got)
		}
		placed.ApplyUpdate(99)
		iter, err := c.Restore(env)
		if err != nil || iter != 4 {
			t.Fatalf("restore after reconnect = %d, %v; want 4", iter, err)
		}
		if bad := placed.VerifyIteration(4); bad != -1 {
			t.Fatalf("tensor %d content wrong after reconnect + restore", bad)
		}
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("run never completed: a request hung across the reconnect")
	}
}

// TestDaemonRepeatedCheckpointDeduplicated: re-sending a DO_CHECKPOINT
// for an iteration that already committed (the client's retry path
// after a reconnect) is answered from the index, not re-executed.
func TestDaemonRepeatedCheckpointDeduplicated(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)
		placed.ApplyUpdate(7)
		for i := 0; i < 2; i++ {
			if err := c.CheckpointSync(env, 7); err != nil {
				t.Fatalf("checkpoint send %d: %v", i, err)
			}
		}
		if st := h.d.Stats(); st.Checkpoints != 1 {
			t.Fatalf("daemon executed %d checkpoints, want 1 (second deduplicated)", st.Checkpoints)
		}
		dedups := h.d.Telemetry().Counter("portus_daemon_dedup_total", "").Value()
		if dedups != 1 {
			t.Fatalf("portus_daemon_dedup_total = %d, want 1", dedups)
		}
	})
	eng.Run()
}

// TestDaemonRestartEndToEndRecovery: after a daemon crash, a new daemon
// over the same PMem namespace rebuilds the model map from the three-
// level index, accepts re-registration, restores the newest complete
// version, and keeps taking checkpoints.
func TestDaemonRestartEndToEndRecovery(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)
		for i := uint64(4); i <= 5; i++ {
			placed.ApplyUpdate(i)
			if err := c.CheckpointSync(env, i); err != nil {
				t.Fatal(err)
			}
		}

		// The daemon "crashes": a fresh daemon instance mounts the same
		// namespace and serves on a new address.
		d2, err := daemon.New(env, daemon.Config{
			PMem:   h.cl.Storage[0].PMem,
			RNode:  h.cl.Storage[0].RNode,
			Fabric: h.cl.Fabric,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := d2.Store().Lookup("m")
		if err != nil {
			t.Fatalf("restarted daemon lost the model: %v", err)
		}
		if _, v, ok := m.LatestDone(); !ok || v.Iteration != 5 {
			t.Fatalf("newest complete version after restart = %+v ok=%v, want iteration 5", v, ok)
		}
		l2, err := h.net.Listen(env, "storage-restarted")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("portusd-restarted", func(env sim.Env) { d2.Serve(env, l2) })

		// The training job restarts too: empty weights, re-register,
		// restore, continue checkpointing against the new daemon.
		placed2, _ := gpu.Place(h.cl.GPU(0, 1), tinySpec("m"))
		conn, err := h.net.Dial(env, "storage-restarted")
		if err != nil {
			t.Fatal(err)
		}
		c2, err := client.Register(env, conn, h.cl.Compute[0].RNode, placed2)
		if err != nil {
			t.Fatalf("re-registration after daemon restart: %v", err)
		}
		iter, err := c2.Restore(env)
		if err != nil || iter != 5 {
			t.Fatalf("restore after restart = %d, %v; want 5", iter, err)
		}
		if bad := placed2.VerifyIteration(5); bad != -1 {
			t.Fatalf("tensor %d content wrong after restart restore", bad)
		}
		placed2.ApplyUpdate(6)
		if err := c2.CheckpointSync(env, 6); err != nil {
			t.Fatalf("checkpoint on restarted daemon: %v", err)
		}
		if _, v, ok := m.LatestDone(); !ok || v.Iteration != 6 {
			t.Fatalf("latest after post-restart checkpoint = %+v, want 6", v)
		}
	})
	eng.Run()
}

// TestRequestDeadlineFailsUnansweredRequest: with RequestTimeout set, a
// request whose reply never arrives fails with a deadline error instead
// of hanging training forever.
func TestRequestDeadlineFailsUnansweredRequest(t *testing.T) {
	var deadlineSeen bool
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		sc := newScriptConn(env)
		sc.in.Send(env, &wire.Msg{Type: wire.TRegisterOK, Model: "m"})
		c, err := client.RegisterOpts(env, sc, h.cl.Compute[0].RNode, placed, client.Options{
			RequestTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cp, err := c.CheckpointAsync(env, 1) // no reply is ever queued
		if err != nil {
			t.Fatal(err)
		}
		if err := cp.Wait(env); err == nil || !strings.Contains(err.Error(), "deadline") {
			t.Fatalf("err = %v, want a deadline error", err)
		}
		deadlineSeen = true
	})
	eng.Run()
	if !deadlineSeen {
		t.Fatal("deadline never fired: request hung")
	}
}
