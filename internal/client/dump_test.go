package client_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/serialize"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// TestDumpArchivesNewestVersion checks the §VI archive path: the daemon
// serializes the newest complete version into a torch.save-style
// container whose payload matches the checkpointed weights exactly.
func TestDumpArchivesNewestVersion(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, err := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		if err != nil {
			t.Fatal(err)
		}
		c := h.connect(t, env, 0, placed)
		placed.ApplyUpdate(4)
		if err := c.CheckpointSync(env, 4); err != nil {
			t.Fatal(err)
		}
		placed.ApplyUpdate(5)
		if err := c.CheckpointSync(env, 5); err != nil {
			t.Fatal(err)
		}

		conn, err := h.net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TDump, Model: "m"}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TDumpResp || resp.Iteration != 5 {
			t.Fatalf("dump resp = %+v", resp)
		}
		ckpt, err := serialize.Decode(bytes.NewReader(resp.Payload))
		if err != nil {
			t.Fatal(err)
		}
		if ckpt.Model != "m" || ckpt.Iteration != 5 {
			t.Fatalf("container header = %s@%d", ckpt.Model, ckpt.Iteration)
		}
		if len(ckpt.Tensors) != len(placed.Spec.Tensors) {
			t.Fatalf("container has %d tensors", len(ckpt.Tensors))
		}
		// The archived bytes must equal iteration 5's weights.
		for i, blob := range ckpt.Tensors {
			want := gpu.Pattern(blob.Meta.Size, placed.Spec.TensorSeed(i, 5))
			if !bytes.Equal(blob.Data, want) {
				t.Fatalf("tensor %d archived content mismatch", i)
			}
		}
	})
	eng.Run()
}

func TestDumpWithoutCheckpointFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		h.connect(t, env, 0, placed)
		conn, err := h.net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TDump, Model: "m"}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TError || !strings.Contains(resp.Error, "no complete checkpoint") {
			t.Fatalf("resp = %+v", resp)
		}
		// Unknown model too.
		if err := conn.Send(env, &wire.Msg{Type: wire.TDump, Model: "ghost"}); err != nil {
			t.Fatal(err)
		}
		resp, err = conn.Recv(env)
		if err != nil || resp.Type != wire.TError {
			t.Fatalf("resp = %+v, %v", resp, err)
		}
	})
	eng.Run()
}
