package client_test

import (
	"strings"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/client"
	"github.com/portus-sys/portus/internal/cluster"
	"github.com/portus-sys/portus/internal/daemon"
	"github.com/portus-sys/portus/internal/gpu"
	"github.com/portus-sys/portus/internal/model"
	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/sim"
	"github.com/portus-sys/portus/internal/wire"
)

// harness wires a cluster, a running daemon, and a sim control network.
type harness struct {
	cl  *cluster.Cluster
	d   *daemon.Daemon
	net *wire.SimNet
}

func startHarness(t *testing.T, env sim.Env, materialized bool, cfgMut func(*cluster.Config)) *harness {
	t.Helper()
	cfg := cluster.Config{
		ComputeNodes: 1,
		GPUsPerNode:  4,
		GPUMemBytes:  8 << 30,
		PMemBytes:    64 << 30,
		Materialized: materialized,
	}
	if materialized {
		cfg.GPUMemBytes = 16 << 20
		cfg.PMemBytes = 32 << 20
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	cl, err := cluster.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(env, daemon.Config{
		PMem:   cl.Storage[0].PMem,
		RNode:  cl.Storage[0].RNode,
		Fabric: cl.Fabric,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := wire.NewSimNet()
	l, err := net.Listen(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	env.Go("portusd-serve", func(env sim.Env) { d.Serve(env, l) })
	return &harness{cl: cl, d: d, net: net}
}

func (h *harness) connect(t *testing.T, env sim.Env, node int, placed *gpu.PlacedModel) *client.Client {
	t.Helper()
	conn, err := h.net.Dial(env, "storage")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Register(env, conn, h.cl.Compute[node].RNode, placed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tinySpec(name string) model.Spec {
	return model.GPT(name, 2, 64, 512, 10*time.Millisecond)
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, err := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		if err != nil {
			t.Fatal(err)
		}
		c := h.connect(t, env, 0, placed)

		placed.ApplyUpdate(10)
		if err := c.CheckpointSync(env, 10); err != nil {
			t.Fatal(err)
		}
		placed.ApplyUpdate(11) // weights move on
		iter, err := c.Restore(env)
		if err != nil {
			t.Fatal(err)
		}
		if iter != 10 {
			t.Fatalf("restored iteration %d, want 10", iter)
		}
		if bad := placed.VerifyIteration(10); bad != -1 {
			t.Fatalf("tensor %d content wrong after Portus restore", bad)
		}
		st := h.d.Stats()
		if st.Checkpoints != 1 || st.Restores != 1 {
			t.Fatalf("daemon stats = %+v", st)
		}
		if st.BytesPulled != placed.Spec.TotalSize() {
			t.Fatalf("BytesPulled = %d, want %d", st.BytesPulled, placed.Spec.TotalSize())
		}
	})
	eng.Run()
}

func TestDoubleMappingAlternatesSlots(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)

		for iter := uint64(1); iter <= 4; iter++ {
			placed.ApplyUpdate(iter)
			if err := c.CheckpointSync(env, iter); err != nil {
				t.Fatal(err)
			}
		}
		// After 4 checkpoints the newest (iter 4) must be restorable.
		placed.ApplyUpdate(99)
		iter, err := c.Restore(env)
		if err != nil || iter != 4 {
			t.Fatalf("restore = %d, %v; want 4", iter, err)
		}
		m, err := h.d.Store().Lookup("m")
		if err != nil {
			t.Fatal(err)
		}
		// Both slots must be done; they hold iterations 3 and 4.
		v0, v1 := m.VersionHeader(0), m.VersionHeader(1)
		got := map[uint64]bool{v0.Iteration: true, v1.Iteration: true}
		if !got[3] || !got[4] {
			t.Fatalf("slots hold iterations %d and %d, want 3 and 4", v0.Iteration, v1.Iteration)
		}
	})
	eng.Run()
}

func TestAsyncPolicyHidesPullBehindCompute(t *testing.T) {
	// bert_large pull takes ~232ms at 5.8 GB/s. With 300ms of
	// forward+backward, the async policy must stall (barrier) for much
	// less than the sync policy does.
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, false, nil)
		bert := model.TableII()[6]

		placedA, _ := gpu.Place(h.cl.GPU(0, 0), withName(bert, "bert-sync"))
		cSync := h.connect(t, env, 0, placedA)
		placedB, _ := gpu.Place(h.cl.GPU(0, 1), withName(bert, "bert-async"))
		cAsync := h.connect(t, env, 0, placedB)

		sync := &client.Sync{C: cSync}
		async := &client.Async{C: cAsync}

		// Sync: checkpoint then immediately update.
		if err := sync.Checkpoint(env, 1); err != nil {
			t.Fatal(err)
		}
		sync.BeforeUpdate(env, 1)

		// Async: checkpoint, simulate F+B compute, then the barrier.
		if err := async.Checkpoint(env, 1); err != nil {
			t.Fatal(err)
		}
		env.Sleep(300 * time.Millisecond) // next iteration's F+B
		async.BeforeUpdate(env, 1)

		if cSync.Stalled < 200*time.Millisecond {
			t.Fatalf("sync stall %v suspiciously small", cSync.Stalled)
		}
		if cAsync.Stalled > cSync.Stalled/3 {
			t.Fatalf("async stall %v not hidden (sync %v)", cAsync.Stalled, cSync.Stalled)
		}
	})
	eng.Run()
}

func withName(s model.Spec, name string) model.Spec {
	s.Name = name
	return s
}

func TestPortusCheckpointSpeedShape(t *testing.T) {
	// The headline claim: a BERT-large Portus checkpoint takes
	// ~size/5.8GB/s ≈ 240ms — versus ~2s for the traditional path.
	eng := sim.NewEngine()
	var ckptTime time.Duration
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, false, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), model.TableII()[6])
		c := h.connect(t, env, 0, placed)
		start := env.Now()
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		ckptTime = env.Now() - start
	})
	eng.Run()
	size := model.TableII()[6].TotalSize()
	ideal := time.Duration(float64(size) / perfmodel.GPUBARReadBW * float64(time.Second))
	if ckptTime < ideal || ckptTime > ideal*130/100 {
		t.Fatalf("Portus BERT checkpoint = %v, want within [%v, %v]", ckptTime, ideal, ideal*130/100)
	}
}

func TestMultiTenantConcurrentCheckpoints(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		names := []string{"tenant-a", "tenant-b", "tenant-c", "tenant-d"}
		clients := make([]*client.Client, len(names))
		placed := make([]*gpu.PlacedModel, len(names))
		for i, n := range names {
			p, err := gpu.Place(h.cl.GPU(0, i), tinySpec(n))
			if err != nil {
				t.Fatal(err)
			}
			placed[i] = p
			clients[i] = h.connect(t, env, 0, p)
		}
		g := sim.NewGroup(env)
		for i := range clients {
			i := i
			g.Add(env, 1)
			env.Go("tenant", func(env sim.Env) {
				defer g.Done(env)
				placed[i].ApplyUpdate(uint64(i + 1))
				if err := clients[i].CheckpointSync(env, uint64(i+1)); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait(env)
		if st := h.d.Stats(); st.Checkpoints != 4 {
			t.Fatalf("daemon completed %d checkpoints, want 4", st.Checkpoints)
		}
		// Every tenant restores its own content.
		for i := range clients {
			placed[i].ApplyUpdate(77)
			iter, err := clients[i].Restore(env)
			if err != nil || iter != uint64(i+1) {
				t.Fatalf("tenant %d restore = %d, %v", i, iter, err)
			}
			if bad := placed[i].VerifyIteration(uint64(i + 1)); bad != -1 {
				t.Fatalf("tenant %d tensor %d wrong", i, bad)
			}
		}
	})
	eng.Run()
}

func TestRestoreWithoutCheckpointFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)
		if _, err := c.Restore(env); err == nil || !strings.Contains(err.Error(), "no complete checkpoint") {
			t.Fatalf("restore err = %v, want 'no complete checkpoint'", err)
		}
	})
	eng.Run()
}

func TestCrashDuringPullRecoversPreviousVersion(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)

		placed.ApplyUpdate(1)
		if err := c.CheckpointSync(env, 1); err != nil {
			t.Fatal(err)
		}
		// Start a second checkpoint asynchronously and crash the PMem
		// mid-pull (before the done flag persists).
		placed.ApplyUpdate(2)
		if _, err := c.CheckpointAsync(env, 2); err != nil {
			t.Fatal(err)
		}
		// Crash while the pull is in flight (pull takes >0 time; crash now).
		h.cl.Storage[0].PMem.Crash()

		// A new daemon opens the same namespace and must serve iter 1.
		d2, err := daemon.New(env, daemon.Config{
			PMem:   h.cl.Storage[0].PMem,
			RNode:  h.cl.Storage[0].RNode,
			Fabric: h.cl.Fabric,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := d2.Store().Lookup("m")
		if err != nil {
			t.Fatal(err)
		}
		slot, v, ok := m.LatestDone()
		if !ok || v.Iteration != 1 {
			t.Fatalf("recovered slot %d iter %d ok=%v, want iter 1", slot, v.Iteration, ok)
		}
	})
	eng.Run()
}

func TestDaemonRestartRebuildsModelMap(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		for i, n := range []string{"zebra", "alpha", "mike"} {
			placed, _ := gpu.Place(h.cl.GPU(0, i), tinySpec(n))
			c := h.connect(t, env, 0, placed)
			placed.ApplyUpdate(5)
			if err := c.CheckpointSync(env, 5); err != nil {
				t.Fatal(err)
			}
		}
		d2, err := daemon.New(env, daemon.Config{
			PMem:   h.cl.Storage[0].PMem,
			RNode:  h.cl.Storage[0].RNode,
			Fabric: h.cl.Fabric,
		})
		if err != nil {
			t.Fatal(err)
		}
		names := d2.ModelNames()
		if len(names) != 3 || names[0] != "alpha" || names[1] != "mike" || names[2] != "zebra" {
			t.Fatalf("ModelMap after restart = %v (must be sorted)", names)
		}
	})
	eng.Run()
}

func TestReregisterAfterClientRestart(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		c := h.connect(t, env, 0, placed)
		placed.ApplyUpdate(42)
		if err := c.CheckpointSync(env, 42); err != nil {
			t.Fatal(err)
		}

		// The client restarts: a fresh empty model on another GPU,
		// re-registration against the same stored structure, restore.
		placed2, _ := gpu.Place(h.cl.GPU(0, 1), tinySpec("m"))
		c2 := h.connect(t, env, 0, placed2)
		iter, err := c2.Restore(env)
		if err != nil || iter != 42 {
			t.Fatalf("restore after re-register = %d, %v", iter, err)
		}
		if bad := placed2.VerifyIteration(42); bad != -1 {
			t.Fatalf("tensor %d wrong after re-register restore", bad)
		}
	})
	eng.Run()
}

func TestReregisterStructureMismatchRejected(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("m"))
		h.connect(t, env, 0, placed)

		different, _ := gpu.Place(h.cl.GPU(0, 1), model.GPT("m", 3, 32, 256, 0))
		conn, err := h.net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		_, err = client.Register(env, conn, h.cl.Compute[0].RNode, different)
		if err == nil || !strings.Contains(err.Error(), "does not match") {
			t.Fatalf("mismatched re-registration err = %v", err)
		}
	})
	eng.Run()
}

func TestListAndDelete(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		h := startHarness(t, env, true, nil)
		placed, _ := gpu.Place(h.cl.GPU(0, 0), tinySpec("job1"))
		c := h.connect(t, env, 0, placed)
		placed.ApplyUpdate(9)
		if err := c.CheckpointSync(env, 9); err != nil {
			t.Fatal(err)
		}

		conn, err := h.net.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, &wire.Msg{Type: wire.TList}); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != wire.TListResp || len(resp.Models) != 1 {
			t.Fatalf("list resp = %+v", resp)
		}
		info := resp.Models[0]
		if info.Name != "job1" || !info.HasDone || info.LatestIter != 9 {
			t.Fatalf("model info = %+v", info)
		}

		if err := conn.Send(env, &wire.Msg{Type: wire.TDelete, Model: "job1"}); err != nil {
			t.Fatal(err)
		}
		if resp, err = conn.Recv(env); err != nil || resp.Type != wire.TDeleteOK {
			t.Fatalf("delete resp = %+v, %v", resp, err)
		}
		if names := h.d.ModelNames(); len(names) != 0 {
			t.Fatalf("models after delete = %v", names)
		}
	})
	eng.Run()
}
