package serialize

import (
	"bytes"
	"io"
	"testing"

	"github.com/portus-sys/portus/internal/index"
)

func benchCheckpoint(tensors int, payload int64) *Checkpoint {
	c := &Checkpoint{Model: "bench", Iteration: 1}
	for i := 0; i < tensors; i++ {
		c.Tensors = append(c.Tensors, Blob{
			Meta: index.TensorMeta{Name: "layer.weight", DType: index.F32, Dims: []int64{payload / 4}, Size: payload},
			Data: make([]byte, payload),
		})
	}
	return c
}

func BenchmarkEncode(b *testing.B) {
	c := benchCheckpoint(64, 1<<20) // 64 MiB container
	b.SetBytes(c.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Encode(io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	c := benchCheckpoint(64, 1<<20)
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
