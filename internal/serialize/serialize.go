// Package serialize implements the torch.save-style checkpoint
// container the baselines (and portusctl dump) use: a self-describing
// file with per-tensor metadata headers followed by payload blobs. This
// is exactly the work Portus eliminates from the checkpoint path — the
// paper measures it at 41.7% of a traditional checkpoint (Table I) —
// but Portus still performs it when archiving a checkpoint out of PMem
// to a general format (§IV-b).
//
// Payloads carry either real bytes (materialized runs) or an 8-byte
// content stamp (virtual runs); the flag is per tensor.
package serialize

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/portus-sys/portus/internal/index"
)

const (
	magic   = "PTCKPT01"
	maxName = 1 << 12
	maxDims = 4
)

// ErrBadContainer reports a malformed checkpoint file.
var ErrBadContainer = errors.New("serialize: malformed checkpoint container")

// Blob is one serialized tensor.
type Blob struct {
	Meta index.TensorMeta
	// Data holds the payload for materialized checkpoints; nil for
	// virtual ones.
	Data []byte
	// Stamp is the content fingerprint for virtual checkpoints.
	Stamp uint64
	// Virtual marks stamp-only payloads.
	Virtual bool
}

// Checkpoint is a deserialized container.
type Checkpoint struct {
	Model     string
	Iteration uint64
	Tensors   []Blob
}

// PayloadBytes sums the tensor payload sizes (whether or not the bytes
// are materialized).
func (c *Checkpoint) PayloadBytes() int64 {
	var sum int64
	for _, b := range c.Tensors {
		sum += b.Meta.Size
	}
	return sum
}

// EncodedSize returns the exact on-wire size of the container without
// encoding it — the baselines charge serialization cost against this.
func (c *Checkpoint) EncodedSize() int64 {
	size := int64(len(magic)) + 2 + int64(len(c.Model)) + 8 + 4
	for _, b := range c.Tensors {
		size += 2 + int64(len(b.Meta.Name)) + 1 + 1 + int64(len(b.Meta.Dims))*8 + 8 + 1
		if b.Virtual {
			size += 8
		} else {
			size += b.Meta.Size
		}
	}
	return size
}

// ModeledSize returns the container size as if every payload were
// materialized — the size performance models must charge, independent of
// whether this run tracks real bytes or content stamps.
func (c *Checkpoint) ModeledSize() int64 {
	size := int64(len(magic)) + 2 + int64(len(c.Model)) + 8 + 4
	for _, b := range c.Tensors {
		size += 2 + int64(len(b.Meta.Name)) + 1 + 1 + int64(len(b.Meta.Dims))*8 + 8 + 1 + b.Meta.Size
	}
	return size
}

// Encode writes the container to w.
func Encode(w io.Writer, c *Checkpoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	writeString(bw, c.Model)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], c.Iteration)
	bw.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(c.Tensors)))
	bw.Write(u32[:])
	for _, b := range c.Tensors {
		writeString(bw, b.Meta.Name)
		bw.WriteByte(byte(b.Meta.DType))
		bw.WriteByte(byte(len(b.Meta.Dims)))
		for _, d := range b.Meta.Dims {
			binary.LittleEndian.PutUint64(u64[:], uint64(d))
			bw.Write(u64[:])
		}
		binary.LittleEndian.PutUint64(u64[:], uint64(b.Meta.Size))
		bw.Write(u64[:])
		if b.Virtual {
			bw.WriteByte(1)
			binary.LittleEndian.PutUint64(u64[:], b.Stamp)
			bw.Write(u64[:])
			continue
		}
		bw.WriteByte(0)
		if int64(len(b.Data)) != b.Meta.Size {
			return fmt.Errorf("serialize: tensor %q has %d payload bytes, metadata says %d",
				b.Meta.Name, len(b.Data), b.Meta.Size)
		}
		if _, err := bw.Write(b.Data); err != nil {
			return fmt.Errorf("serialize: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}

func writeString(w *bufio.Writer, s string) {
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(s)))
	w.Write(u16[:])
	w.WriteString(s)
}

// Decode parses a container from r.
func Decode(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadContainer, err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadContainer, head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{Model: name}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("%w: iteration: %v", ErrBadContainer, err)
	}
	c.Iteration = binary.LittleEndian.Uint64(u64[:])
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: tensor count: %v", ErrBadContainer, err)
	}
	count := binary.LittleEndian.Uint32(u32[:])
	if count > 1<<22 {
		return nil, fmt.Errorf("%w: absurd tensor count %d", ErrBadContainer, count)
	}
	for i := uint32(0); i < count; i++ {
		var b Blob
		if b.Meta.Name, err = readString(br); err != nil {
			return nil, err
		}
		hdr := make([]byte, 2)
		if _, err := io.ReadFull(br, hdr); err != nil {
			return nil, fmt.Errorf("%w: tensor header: %v", ErrBadContainer, err)
		}
		b.Meta.DType = index.DType(hdr[0])
		ndims := int(hdr[1])
		if ndims > maxDims {
			return nil, fmt.Errorf("%w: %d dims", ErrBadContainer, ndims)
		}
		for d := 0; d < ndims; d++ {
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return nil, fmt.Errorf("%w: dims: %v", ErrBadContainer, err)
			}
			b.Meta.Dims = append(b.Meta.Dims, int64(binary.LittleEndian.Uint64(u64[:])))
		}
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: size: %v", ErrBadContainer, err)
		}
		b.Meta.Size = int64(binary.LittleEndian.Uint64(u64[:]))
		if b.Meta.Size < 0 || b.Meta.Size > 1<<40 {
			return nil, fmt.Errorf("%w: tensor size %d", ErrBadContainer, b.Meta.Size)
		}
		mode, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: payload mode: %v", ErrBadContainer, err)
		}
		switch mode {
		case 1:
			b.Virtual = true
			if _, err := io.ReadFull(br, u64[:]); err != nil {
				return nil, fmt.Errorf("%w: stamp: %v", ErrBadContainer, err)
			}
			b.Stamp = binary.LittleEndian.Uint64(u64[:])
		case 0:
			if b.Meta.Size > 0 {
				b.Data = make([]byte, b.Meta.Size)
				if _, err := io.ReadFull(br, b.Data); err != nil {
					return nil, fmt.Errorf("%w: payload: %v", ErrBadContainer, err)
				}
			}
		default:
			return nil, fmt.Errorf("%w: payload mode %d", ErrBadContainer, mode)
		}
		c.Tensors = append(c.Tensors, b)
	}
	return c, nil
}

func readString(br *bufio.Reader) (string, error) {
	var u16 [2]byte
	if _, err := io.ReadFull(br, u16[:]); err != nil {
		return "", fmt.Errorf("%w: string: %v", ErrBadContainer, err)
	}
	n := binary.LittleEndian.Uint16(u16[:])
	if n > maxName {
		return "", fmt.Errorf("%w: string length %d", ErrBadContainer, n)
	}
	s := make([]byte, n)
	if _, err := io.ReadFull(br, s); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrBadContainer, err)
	}
	return string(s), nil
}
