package serialize

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/portus-sys/portus/internal/index"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Model:     "resnet50",
		Iteration: 8300,
		Tensors: []Blob{
			{
				Meta: index.TensorMeta{Name: "conv1.weight", DType: index.F32, Dims: []int64{64, 3, 7, 7}, Size: 16},
				Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
			},
			{
				Meta:    index.TensorMeta{Name: "fc.weight", DType: index.F16, Dims: []int64{1000, 2048}, Size: 4096000},
				Stamp:   0xabcdef,
				Virtual: true,
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestEncodedSizeIsExact(t *testing.T) {
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	if got := c.EncodedSize(); got != int64(buf.Len()) {
		t.Fatalf("EncodedSize = %d, actual = %d", got, buf.Len())
	}
}

func TestPayloadBytes(t *testing.T) {
	c := sampleCheckpoint()
	if got := c.PayloadBytes(); got != 16+4096000 {
		t.Fatalf("PayloadBytes = %d", got)
	}
}

func TestEncodeRejectsShortPayload(t *testing.T) {
	c := &Checkpoint{
		Model: "m",
		Tensors: []Blob{{
			Meta: index.TensorMeta{Name: "t", DType: index.F32, Dims: []int64{4}, Size: 16},
			Data: []byte{1, 2}, // wrong length
		}},
	}
	if err := Encode(&bytes.Buffer{}, c); err == nil {
		t.Fatal("Encode accepted mismatched payload")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("WRONGMAG followed by stuff"),
		append([]byte(magic), 0xff, 0xff), // absurd name length follows
	} {
		if _, err := Decode(bytes.NewReader(in)); !errors.Is(err, ErrBadContainer) {
			t.Fatalf("Decode(%q) err = %v, want ErrBadContainer", in, err)
		}
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	c := sampleCheckpoint()
	c.Tensors = c.Tensors[:1] // materialized tensor only
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-4]
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("Decode accepted truncated payload")
	}
}

// Property: every well-formed checkpoint round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	type spec struct {
		Name    []byte
		Payload []byte
		Stamp   uint64
		Virtual bool
		Dims    uint8
	}
	prop := func(model []byte, iter uint64, specs []spec) bool {
		if len(model) > 256 || len(specs) > 32 {
			return true
		}
		c := &Checkpoint{Model: string(model), Iteration: iter}
		for _, s := range specs {
			if len(s.Name) > 128 {
				s.Name = s.Name[:128]
			}
			b := Blob{Virtual: s.Virtual, Stamp: 0}
			b.Meta.Name = string(s.Name)
			b.Meta.DType = index.F32
			ndims := int(s.Dims%4) + 1
			for d := 0; d < ndims; d++ {
				b.Meta.Dims = append(b.Meta.Dims, int64(d+1))
			}
			if s.Virtual {
				b.Stamp = s.Stamp
				b.Meta.Size = int64(len(s.Payload)) + 1
			} else {
				b.Data = append([]byte(nil), s.Payload...)
				b.Meta.Size = int64(len(s.Payload))
			}
			c.Tensors = append(c.Tensors, b)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			return false
		}
		if int64(buf.Len()) != c.EncodedSize() {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
