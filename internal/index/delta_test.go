package index

import (
	"errors"
	"testing"

	"github.com/portus-sys/portus/internal/alloc"
	"github.com/portus-sys/portus/internal/delta"
	"github.com/portus-sys/portus/internal/pmem"
)

func testTable(count int, iter uint64) *delta.Table {
	t := &delta.Table{BlockBytes: 64 << 10, Iteration: iter, Layout: 0xfeedface}
	for i := 0; i < count; i++ {
		t.Digests = append(t.Digests, uint64(i)*31+iter)
	}
	return t
}

func sameTable(a, b *delta.Table) bool {
	if a.BlockBytes != b.BlockBytes || a.Iteration != b.Iteration ||
		a.Layout != b.Layout || len(a.Digests) != len(b.Digests) {
		return false
	}
	for i := range a.Digests {
		if a.Digests[i] != b.Digests[i] {
			return false
		}
	}
	return true
}

func TestDeltaPutGetRoundTrip(t *testing.T) {
	pm, s := newStore(t)
	m, err := s.CreateModel("bert", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.DeltaGet(m, 0); ok {
		t.Fatal("DeltaGet hit before any put")
	}
	want0, want1 := testTable(40, 7), testTable(40, 8)
	if err := s.DeltaPut(m, 0, want0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeltaPut(m, 1, want1); err != nil {
		t.Fatal(err)
	}
	for slot, want := range map[int]*delta.Table{0: want0, 1: want1} {
		got, ok := s.DeltaGet(m, slot)
		if !ok || !sameTable(got, want) {
			t.Fatalf("slot %d round trip: ok=%v got=%+v", slot, ok, got)
		}
	}

	// In-place rewrite with the same digest count.
	want0b := testTable(40, 9)
	if err := s.DeltaPut(m, 0, want0b); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.DeltaGet(m, 0); !ok || !sameTable(got, want0b) {
		t.Fatal("in-place rewrite lost")
	}

	// Tables survive a flush + reopen.
	pm.FlushMeta(0, pm.MetaSize())
	s2, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Lookup("bert")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.DeltaGet(m2, 0); !ok || !sameTable(got, want0b) {
		t.Fatal("slot-0 table lost across reopen")
	}
	if got, ok := s2.DeltaGet(m2, 1); !ok || !sameTable(got, want1) {
		t.Fatal("slot-1 table lost across reopen")
	}
}

func TestDeltaDropOnDeleteAndClear(t *testing.T) {
	_, s := newStore(t)
	m, err := s.CreateModel("bert", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeltaPut(m, 0, testTable(8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeltaPut(m, 1, testTable(8, 2)); err != nil {
		t.Fatal(err)
	}
	m.ClearVersion(1)
	if _, ok := s.DeltaGet(m, 1); ok {
		t.Fatal("cleared slot kept its digest table")
	}
	if _, ok := s.DeltaGet(m, 0); !ok {
		t.Fatal("ClearVersion(1) dropped slot 0's table")
	}
	if err := s.DeleteModel("bert"); err != nil {
		t.Fatal(err)
	}
	// A new model reusing the MIndex offset must not inherit the table.
	m2, err := s.CreateModel("bert2", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	if m2.InfoOff() != m.InfoOff() {
		t.Fatalf("expected MIndex reuse (%d vs %d)", m2.InfoOff(), m.InfoOff())
	}
	if _, ok := s.DeltaGet(m2, 0); ok {
		t.Fatal("new model inherited the deleted model's digest table")
	}
	// The dead records' space is reused, not leaked.
	before := s.DeltaBytes()
	if err := s.DeltaPut(m2, 0, testTable(8, 3)); err != nil {
		t.Fatal(err)
	}
	if s.DeltaBytes() != before {
		t.Fatalf("dead record not reused: region grew %d -> %d", before, s.DeltaBytes())
	}
	if got, ok := s.DeltaGet(m2, 0); !ok || got.Iteration != 3 {
		t.Fatalf("reused record unreadable: ok=%v got=%+v", ok, got)
	}
}

func TestDeltaSizeChangeReallocates(t *testing.T) {
	_, s := newStore(t)
	m, err := s.CreateModel("bert", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeltaPut(m, 0, testTable(8, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeltaPut(m, 0, testTable(16, 2)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.DeltaGet(m, 0); !ok || len(got.Digests) != 16 || got.Iteration != 2 {
		t.Fatalf("resized table wrong: ok=%v got=%+v", ok, got)
	}
}

func TestDeltaRegionExhaustionReportsNoSpace(t *testing.T) {
	pm := pmem.New(pmem.Config{Name: "pm0", DataSize: 1 << 30, MetaSize: AllocTableLen + 1<<20, Materialized: false})
	s, err := Format(pm, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.CreateModel("m", []TensorMeta{{Name: "t", DType: F32, Size: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the vector so every put needs a fresh allocation until the
	// region hits the MIndex break.
	var sawNoSpace bool
	for count := 1 << 10; count < 1<<22; count *= 2 {
		if err := s.DeltaPut(m, 0, testTable(count, 1)); err != nil {
			if !errors.Is(err, alloc.ErrNoSpace) {
				t.Fatalf("exhaustion error is not ErrNoSpace: %v", err)
			}
			sawNoSpace = true
			break
		}
	}
	if !sawNoSpace {
		t.Fatal("delta region never reported exhaustion")
	}
	// The store must remain usable: smaller tables still persist.
	if err := s.DeltaPut(m, 1, testTable(4, 2)); err != nil {
		t.Fatalf("store unusable after delta exhaustion: %v", err)
	}
}

// TestDeltaPutCrashBoundaries injects a power failure at every crash
// boundary of the digest-table persist and proves reopen yields either
// the old table, the new table, or a clean miss — never a torn record,
// and never a store that fails to open. pmem.Crash reverts unflushed
// lines, exactly like the PR 9 repack harness.
func TestDeltaPutCrashBoundaries(t *testing.T) {
	for _, point := range []string{"delta-invalidate", "delta-body", "delta-validate", "delta-publish"} {
		t.Run(point, func(t *testing.T) {
			pm, s := newStore(t)
			m, err := s.CreateModel("bert", bertTensors())
			if err != nil {
				t.Fatal(err)
			}
			old := testTable(32, 5)
			if err := s.DeltaPut(m, 0, old); err != nil {
				t.Fatal(err)
			}
			// Second slot uses a different size so "delta-publish" (fresh
			// allocation) fires too.
			slot := 0
			next := testTable(32, 6)
			if point == "delta-publish" {
				slot, next = 1, testTable(64, 6)
			}
			pm.FlushMeta(0, pm.MetaSize())

			fired := false
			s.crashHook = func(p string) bool {
				if p != point {
					return false
				}
				fired = true
				pm.Crash()
				return true
			}
			err = s.DeltaPut(m, slot, next)
			if !fired {
				t.Fatalf("crash point %q never fired", point)
			}
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("DeltaPut after crash: %v", err)
			}

			s2, err := Open(pm)
			if err != nil {
				t.Fatalf("reopen after crash at %q: %v", point, err)
			}
			m2, err := s2.Lookup("bert")
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := s2.DeltaGet(m2, slot); ok {
				if !sameTable(got, old) && !sameTable(got, next) {
					t.Fatalf("crash at %q exposed a torn table: %+v", point, got)
				}
				if slot == 1 {
					t.Fatalf("crash at %q exposed an unpublished record", point)
				}
			}
			// The untouched slot-0 table must still be readable after a
			// fresh-allocation crash.
			if slot == 1 {
				if got, ok := s2.DeltaGet(m2, 0); !ok || !sameTable(got, old) {
					t.Fatal("crash during fresh allocation damaged the neighboring record")
				}
			}
			// And the reopened store keeps working.
			if err := s2.DeltaPut(m2, slot, next); err != nil {
				t.Fatalf("post-crash DeltaPut: %v", err)
			}
			if got, ok := s2.DeltaGet(m2, slot); !ok || !sameTable(got, next) {
				t.Fatal("post-crash table not readable")
			}
		})
	}
}
