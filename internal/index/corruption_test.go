package index

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/portus-sys/portus/internal/pmem"
)

// buildValidImage creates a formatted namespace with two models and a
// committed checkpoint version.
func buildValidImage(t testing.TB) *pmem.Device {
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 64 << 20, MetaSize: 8 << 20, Materialized: false})
	s, err := Format(pm, 16)
	if err != nil {
		t.Fatal(err)
	}
	tensors := []TensorMeta{
		{Name: "w0", DType: F32, Dims: []int64{256}, Size: 1024},
		{Name: "w1", DType: F32, Dims: []int64{64, 64}, Size: 16384},
	}
	for _, name := range []string{"alpha", "beta"} {
		m, err := s.CreateModel(name, tensors)
		if err != nil {
			t.Fatal(err)
		}
		m.SetActive(0, 7)
		m.SetDone(0, 7, time.Unix(0, 1))
	}
	return pm
}

// TestCorruptionNeverPanics flips random bytes across the metadata zone
// and requires Open + Models to either succeed or fail with an error —
// never panic. This is the safety contract of portusctl's
// parse-from-raw-image path.
func TestCorruptionNeverPanics(t *testing.T) {
	prop := func(offsets []uint32, values []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on corrupt image: %v", r)
				ok = false
			}
		}()
		pm := buildValidImage(t)
		n := len(offsets)
		if len(values) < n {
			n = len(values)
		}
		for i := 0; i < n; i++ {
			off := int64(offsets[i]) % pm.MetaSize()
			pm.WriteMeta(off, []byte{values[i]})
		}
		s, err := Open(pm)
		if err != nil {
			return true // rejecting a corrupt image is correct
		}
		models, err := s.Models()
		if err != nil {
			return true
		}
		for _, m := range models {
			_ = m.TotalSize()
			_, _, _ = m.LatestDone()
			for i := range m.Tensors {
				for v := 0; v < 2; v++ {
					_ = m.TensorData(i, v)
				}
			}
		}
		_, _ = s.Lookup("alpha")
		_ = s.Names()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTargetedCorruption drives specific corruption sites through the
// validation paths.
func TestTargetedCorruption(t *testing.T) {
	corrupt := func(mutate func(pm *pmem.Device)) error {
		pm := buildValidImage(t)
		mutate(pm)
		s, err := Open(pm)
		if err != nil {
			return err
		}
		_, err = s.Models()
		return err
	}

	// Superblock table capacity pointing past the zone.
	err := corrupt(func(pm *pmem.Device) {
		pm.WriteMeta(sbTableCap, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})
	})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized table cap: err = %v, want ErrCorrupt", err)
	}

	// ModelTable entry pointing outside the metadata zone: the entry
	// must read as a tombstone, not crash.
	pm := buildValidImage(t)
	s, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	pm.WriteMeta(superSize, huge) // first entry's infoOff
	names := s.Names()
	if len(names) != 1 {
		t.Errorf("names after pointer corruption = %v, want just the intact model", names)
	}

	// MIndex tensor count overflowing the zone.
	pm2 := buildValidImage(t)
	s2, err := Open(pm2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s2.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	pm2.WriteMeta(m.InfoOff()+4, []byte{0xff, 0xff, 0xff, 0x7f})
	if _, err := s2.Lookup("alpha"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tensor-count corruption: err = %v, want ErrCorrupt", err)
	}
}
