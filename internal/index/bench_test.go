package index

import (
	"fmt"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/pmem"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 1 << 40, MetaSize: 64 << 20})
	s, err := Format(pm, 8192)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchTensors(n int) []TensorMeta {
	out := make([]TensorMeta, n)
	for i := range out {
		out[i] = TensorMeta{
			Name:  fmt.Sprintf("encoder.layers.%d.weight", i),
			DType: F32,
			Dims:  []int64{1024, 1024},
			Size:  4 << 20,
		}
	}
	return out
}

// BenchmarkCreateModel measures building the full persistent structure
// for a 400-tensor model (BERT-scale): MIndex record, 800 TensorData
// allocations, ModelTable publish. The store is rotated when its table
// or allocation slots fill across escalating b.N runs.
func BenchmarkCreateModel(b *testing.B) {
	s := benchStore(b)
	tensors := benchTensors(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CreateModel(fmt.Sprintf("m%d", i), tensors); err != nil {
			b.StopTimer()
			s = benchStore(b)
			b.StartTimer()
			if _, err := s.CreateModel(fmt.Sprintf("m%d", i), tensors); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLookup measures MIndex loading by name.
func BenchmarkLookup(b *testing.B) {
	s := benchStore(b)
	tensors := benchTensors(400)
	for i := 0; i < 64; i++ {
		if _, err := s.CreateModel(fmt.Sprintf("m%d", i), tensors); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(fmt.Sprintf("m%d", i&63)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVersionCommit measures the per-checkpoint index work: mark
// active, mark done (the only metadata a Portus checkpoint writes).
func BenchmarkVersionCommit(b *testing.B) {
	s := benchStore(b)
	m, err := s.CreateModel("m", benchTensors(400))
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := m.TargetSlot()
		m.SetActive(slot, uint64(i))
		m.SetDone(slot, uint64(i), now)
	}
}
