// Package index implements Portus's three-level persistent index
// (§III-D1):
//
//	ModelTable ──► MIndex ──► TensorData
//
// The root-level ModelTable is an array in the PMem metadata zone
// mapping model names to MIndex offsets. Each MIndex record holds a
// model's full tensor metadata — layer count, per-tensor name, dtype,
// shape, size — plus persistent pointers (data-zone offsets) to the
// TensorData regions, of which there are two per tensor: the double
// mapping that keeps one valid checkpoint version durable at all times
// (§III-D2, Figure 6). TensorData regions are raw tensor payloads
// pulled straight from GPU memory over RDMA; no serialization ever
// touches them.
//
// The structure is built once at model registration; each checkpoint
// afterwards rewrites only the target version header and the tensor
// payloads. Version-state transitions use 8-byte failure-atomic
// persists, so recovery can always pick the newest slot whose state is
// StateDone.
//
// ModelTable writes: new entries are appended (entry persisted before
// the count), because inserting in sorted position would shift entries
// non-atomically. The sorted-array invariant the paper describes is
// restored by CompactTable — a crash-atomic rewrite that uses two table
// generations and flips between them with one failure-atomic persist,
// the same double-mapping idea the version slots use. Lookups never
// depend on sortedness: the daemon's in-DRAM ModelMap (a red-black
// tree, package rbtree) serves them.
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/portus-sys/portus/internal/alloc"
	"github.com/portus-sys/portus/internal/delta"
	"github.com/portus-sys/portus/internal/pmem"
)

// On-media layout constants.
const (
	superMagic  = 0x5849535554524f50 // "PORTUSIX" little-endian
	mindexMagic = 0x5844494d         // "MIDX"

	superSize  = 64
	nameMax    = 126
	entrySize  = 8 + 2 + nameMax // infoOff | nameLen | name
	tensorName = 96
	tensorRec  = tensorName + 2 + 2 + 4*8 + 8 + 16 // name|dtype|ndims|dims|size|paddr[2]
	verHdrSize = 32                                // state | iteration | savedAt | crc
	mindexHdr  = 8 + 2 + nameMax + 2 + 2*verHdrSize

	// AllocTableLen is the metadata-zone space reserved for the
	// allocation table (at the end of the zone).
	AllocTableLen = 4 << 20

	// headerMin is the smallest plausible allocation-table header, used
	// to validate a superblock's alloc offset.
	headerMin = 32
)

// Superblock field offsets.
const (
	sbMagic    = 0
	sbVersion  = 8
	sbTableOff = 16
	sbTableCap = 24
	// sbCountGen packs the live entry count (bits 63..1) and the active
	// table generation (bit 0) into one word, so compaction can switch
	// both with a single failure-atomic persist — the same double-
	// mapping idea the version slots use.
	sbCountGen  = 32
	sbMindexBrk = 40
	sbAllocOff  = 48
	// sbDeltaBrk is the bottom of the delta digest-table region, which
	// grows downward from the allocation table toward the MIndex break.
	// Pre-delta images hold zero here, which Open reads as "empty region
	// at allocOff" — a gob-style compatible extension of the superblock.
	sbDeltaBrk = 56
)

// Delta digest-table record layout: a packed sequence of records filling
// [deltaBrk, allocOff), each
//
//	recLen | state | infoOff | slot | blockBytes | iteration | layout |
//	count | digests[count] | crc
//
// of uint64 words. recLen is written once at allocation and never
// changes, so the region stays walkable whatever state each record is
// in; state is the 8-byte failure-atomic validity toggle (invalid while
// a rewrite is in flight, dead after the owning model or slot goes
// away); crc covers words [2, 8+count) and catches torn body writes.
const (
	deltaHdr     = 64 // words 0..7
	deltaInvalid = uint64(0)
	deltaValid   = uint64(1)
	deltaDead    = uint64(2)
)

// ErrCrashed is returned by DeltaPut when the test-only crash hook fired
// mid-persist: the namespace has been reverted and must not be touched
// again through this Store.
var ErrCrashed = errors.New("index: crash injected")

// deltaKey identifies a digest record: the owning model's MIndex offset
// plus the version slot.
type deltaKey struct {
	infoOff int64
	slot    int
}

// Version states. The zero state means the slot has never completed a
// checkpoint.
const (
	StateEmpty  uint64 = 0
	StateActive uint64 = 1
	StateDone   uint64 = 2
)

// StateName returns a human-readable version state.
func StateName(s uint64) string {
	switch s {
	case StateEmpty:
		return "empty"
	case StateActive:
		return "active"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// DType identifies a tensor element type.
type DType uint8

// Tensor element types.
const (
	F32 DType = iota + 1
	F16
	BF16
	I64
	I32
	U8
)

// String returns the framework-style dtype name.
func (d DType) String() string {
	switch d {
	case F32:
		return "float32"
	case F16:
		return "float16"
	case BF16:
		return "bfloat16"
	case I64:
		return "int64"
	case I32:
		return "int32"
	case U8:
		return "uint8"
	default:
		return fmt.Sprintf("dtype(%d)", uint8(d))
	}
}

// ElemSize returns the element width in bytes.
func (d DType) ElemSize() int64 {
	switch d {
	case F32, I32:
		return 4
	case F16, BF16:
		return 2
	case I64:
		return 8
	case U8:
		return 1
	default:
		return 0
	}
}

// TensorMeta describes one tensor of a model, as carried in the
// registration packet and stored in the MIndex record.
type TensorMeta struct {
	Name  string
	DType DType
	Dims  []int64 // up to 4 dimensions
	Size  int64   // payload bytes
}

// Errors.
var (
	ErrNotFormatted = errors.New("index: namespace not formatted")
	ErrModelExists  = errors.New("index: model already registered")
	ErrNoModel      = errors.New("index: model not found")
	ErrTableFull    = errors.New("index: ModelTable full")
	ErrCorrupt      = errors.New("index: corrupt record")
)

// Store is an open three-level index on one namespace.
type Store struct {
	pm    *pmem.Device
	alloc *alloc.Allocator

	tableBase  int64 // generation-0 table; generation 1 follows it
	tableCap   int64
	tableGen   int64 // active generation (0 or 1)
	allocOff   int64
	modelCount int64
	mindexBrk  int64
	deltaBrk   int64 // bottom of the delta digest-table region

	// deltaIdx maps (model, slot) to its digest record; deltaFree holds
	// dead records by size for reuse. Both rebuilt at Open by walking the
	// record region.
	deltaIdx  map[deltaKey]int64
	deltaFree map[int64][]int64

	// crashHook, when set (tests only), runs at every crash boundary of
	// a digest-table persist; returning true means "the device just
	// crashed": the operation aborts with ErrCrashed and must not touch
	// the namespace again.
	crashHook func(point string) bool

	// mindexFree tracks dead MIndex byte ranges (deleted models) below
	// the break, sorted by offset and coalesced. In-memory only: the
	// on-media layout is unchanged (a dead record is simply one no table
	// entry references), so images stay byte-compatible with pre-engine
	// tools. Rebuilt at Open from the gaps between live records;
	// CreateModel first-fits from it before bumping the break.
	mindexFree []alloc.Extent
}

// tableOff returns the active table region's base offset.
func (s *Store) tableOff() int64 {
	return s.tableBase + s.tableGen*s.tableCap*entrySize
}

// persistCountGen writes the packed count|generation word atomically.
func (s *Store) persistCountGen() {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s.modelCount<<1|s.tableGen))
	s.pm.WriteMeta(sbCountGen, b[:])
	s.pm.Persist8(sbCountGen)
}

// Format initializes a namespace: superblock, empty ModelTable with
// tableCap entries, and a fresh allocation table.
func Format(pm *pmem.Device, tableCap int64) (*Store, error) {
	allocOff := pm.MetaSize() - AllocTableLen
	tableBase := int64(superSize)
	// Two table generations, so compaction can rewrite the inactive one
	// and flip atomically.
	mindexStart := tableBase + 2*tableCap*entrySize
	if mindexStart >= allocOff {
		return nil, fmt.Errorf("index: metadata zone too small for %d table entries", tableCap)
	}
	a, err := alloc.Format(pm, allocOff, AllocTableLen)
	if err != nil {
		return nil, err
	}
	s := &Store{
		pm:        pm,
		alloc:     a,
		tableBase: tableBase,
		tableCap:  tableCap,
		allocOff:  allocOff,
		mindexBrk: mindexStart,
		deltaBrk:  allocOff,
		deltaIdx:  map[deltaKey]int64{},
		deltaFree: map[int64][]int64{},
	}
	sb := make([]byte, superSize)
	binary.LittleEndian.PutUint64(sb[sbMagic:], superMagic)
	binary.LittleEndian.PutUint64(sb[sbVersion:], 1)
	binary.LittleEndian.PutUint64(sb[sbTableOff:], uint64(tableBase))
	binary.LittleEndian.PutUint64(sb[sbTableCap:], uint64(tableCap))
	binary.LittleEndian.PutUint64(sb[sbCountGen:], 0)
	binary.LittleEndian.PutUint64(sb[sbMindexBrk:], uint64(s.mindexBrk))
	binary.LittleEndian.PutUint64(sb[sbAllocOff:], uint64(allocOff))
	binary.LittleEndian.PutUint64(sb[sbDeltaBrk:], uint64(s.deltaBrk))
	pm.WriteMeta(0, sb)
	pm.FlushMeta(0, superSize)
	return s, nil
}

// Open parses an existing index from the raw namespace — the path both
// the restarted daemon and portusctl take.
func Open(pm *pmem.Device) (*Store, error) {
	sb := pm.MetaBytes(0, superSize)
	if binary.LittleEndian.Uint64(sb[sbMagic:]) != superMagic {
		return nil, ErrNotFormatted
	}
	countGen := binary.LittleEndian.Uint64(sb[sbCountGen:])
	s := &Store{
		pm:         pm,
		tableBase:  int64(binary.LittleEndian.Uint64(sb[sbTableOff:])),
		tableCap:   int64(binary.LittleEndian.Uint64(sb[sbTableCap:])),
		tableGen:   int64(countGen & 1),
		modelCount: int64(countGen >> 1),
		mindexBrk:  int64(binary.LittleEndian.Uint64(sb[sbMindexBrk:])),
		allocOff:   int64(binary.LittleEndian.Uint64(sb[sbAllocOff:])),
		deltaBrk:   int64(binary.LittleEndian.Uint64(sb[sbDeltaBrk:])),
	}
	if s.tableBase < superSize || s.tableCap < 0 || s.modelCount < 0 ||
		s.modelCount > s.tableCap ||
		s.tableCap > (pm.MetaSize()-s.tableBase)/(2*entrySize) ||
		s.allocOff <= 0 || s.allocOff > pm.MetaSize()-headerMin {
		return nil, fmt.Errorf("%w: implausible superblock", ErrCorrupt)
	}
	if s.deltaBrk == 0 {
		// Pre-delta image: the spare superblock word is zero, meaning an
		// empty digest region sitting at the allocation table.
		s.deltaBrk = s.allocOff
	}
	if s.deltaBrk < s.mindexBrk || s.deltaBrk > s.allocOff {
		return nil, fmt.Errorf("%w: implausible delta break", ErrCorrupt)
	}
	a, err := alloc.Open(pm, s.allocOff)
	if err != nil {
		return nil, err
	}
	s.alloc = a
	s.rebuildMIndexFree()
	s.rebuildDelta()
	return s, nil
}

// rebuildMIndexFree reconstructs the dead-record free list from the gaps
// between live MIndex records in [mindexStart, mindexBrk). Best-effort:
// if any live record fails to decode the list stays empty, which only
// disables reuse (Open still succeeds exactly as before).
func (s *Store) rebuildMIndexFree() {
	s.mindexFree = nil
	type span struct{ off, end int64 }
	var live []span
	for i := int64(0); i < s.modelCount; i++ {
		name, infoOff := s.entryAt(i)
		if name == "" {
			continue
		}
		m, err := s.loadMIndex(infoOff)
		if err != nil {
			return
		}
		live = append(live, span{m.off, m.off + int64(mindexHdr) + int64(len(m.Tensors))*tensorRec})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].off < live[j].off })
	prev := s.mindexStart()
	for _, sp := range live {
		if sp.off > prev {
			s.mindexFree = append(s.mindexFree, alloc.Extent{Off: prev, Size: sp.off - prev})
		}
		if sp.end > prev {
			prev = sp.end
		}
	}
	if s.mindexBrk > prev {
		s.mindexFree = append(s.mindexFree, alloc.Extent{Off: prev, Size: s.mindexBrk - prev})
	}
}

// mindexStart is the first byte of the MIndex region (past both table
// generations).
func (s *Store) mindexStart() int64 {
	return s.tableBase + 2*s.tableCap*entrySize
}

// freeMIndexRange returns a dead record's bytes to the in-memory free
// list, keeping it sorted and coalesced.
func (s *Store) freeMIndexRange(off, size int64) {
	s.mindexFree = append(s.mindexFree, alloc.Extent{Off: off, Size: size})
	sort.Slice(s.mindexFree, func(i, j int) bool { return s.mindexFree[i].Off < s.mindexFree[j].Off })
	out := s.mindexFree[:1]
	for _, e := range s.mindexFree[1:] {
		last := &out[len(out)-1]
		if last.Off+last.Size == e.Off {
			last.Size += e.Size
		} else {
			out = append(out, e)
		}
	}
	s.mindexFree = out
}

// MIndexDead reports the bytes held in dead MIndex records — garbage the
// engine's capacity accounting charges against the metadata zone.
func (s *Store) MIndexDead() int64 {
	var sum int64
	for _, e := range s.mindexFree {
		sum += e.Size
	}
	return sum
}

// Allocator exposes the data-zone allocator (for space accounting and
// the repacker).
func (s *Store) Allocator() *alloc.Allocator { return s.alloc }

// PMem returns the underlying namespace.
func (s *Store) PMem() *pmem.Device { return s.pm }

// ModelCount reports the number of live table entries (tombstones
// excluded).
func (s *Store) ModelCount() int {
	n := 0
	for i := int64(0); i < s.modelCount; i++ {
		if name, _ := s.entryAt(i); name != "" {
			n++
		}
	}
	return n
}

// entryAt decodes table entry i; a tombstoned or corrupt entry returns
// ("", 0).
func (s *Store) entryAt(i int64) (string, int64) {
	raw := s.pm.MetaBytes(s.tableOff()+i*entrySize, entrySize)
	infoOff := int64(binary.LittleEndian.Uint64(raw))
	// Overflow-safe bounds check: infoOff+mindexHdr could wrap.
	if infoOff <= 0 || infoOff > s.pm.MetaSize()-mindexHdr {
		return "", 0
	}
	nameLen := int(binary.LittleEndian.Uint16(raw[8:]))
	if nameLen > nameMax {
		return "", 0
	}
	return string(raw[10 : 10+nameLen]), infoOff
}

// Names returns all live model names in table order.
func (s *Store) Names() []string {
	var out []string
	for i := int64(0); i < s.modelCount; i++ {
		if name, _ := s.entryAt(i); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// CreateModel allocates the full persistent structure for a model: an
// MIndex record plus two TensorData extents per tensor, and publishes
// it in the ModelTable. The entry is persisted before the table count,
// so a crash can never expose a half-written record.
//
// Admission is transactional: if any allocation fails part-way (data
// zone exhausted at the Nth slot, MIndex region full), every extent
// already claimed is freed before the error returns — no leaks for the
// caller's retry to trip over.
func (s *Store) CreateModel(name string, tensors []TensorMeta) (*Model, error) {
	if name == "" || len(name) > nameMax {
		return nil, fmt.Errorf("index: invalid model name %q", name)
	}
	if strings.ContainsRune(name, 0) {
		return nil, fmt.Errorf("index: model name contains NUL")
	}
	if _, err := s.Lookup(name); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrModelExists, name)
	}
	if s.modelCount >= s.tableCap {
		return nil, ErrTableFull
	}
	// Validate everything before touching the allocator so most bad
	// registrations never need the rollback path.
	for _, tm := range tensors {
		if tm.Size <= 0 {
			return nil, fmt.Errorf("index: tensor %q has invalid size %d", tm.Name, tm.Size)
		}
		if len(tm.Dims) > 4 {
			return nil, fmt.Errorf("index: tensor %q has %d dims (max 4)", tm.Name, len(tm.Dims))
		}
	}

	m := &Model{s: s, Name: name, Tensors: tensors, PAddr: make([][2]int64, len(tensors))}

	// Allocate both version slots for every tensor, rolling back all
	// prior slots on failure.
	rollback := func() {
		for i := range m.PAddr {
			for v := 0; v < 2; v++ {
				if m.PAddr[i][v] != 0 {
					s.alloc.Free(m.PAddr[i][v])
					m.PAddr[i][v] = 0
				}
			}
		}
	}
	for i, tm := range tensors {
		for v := 0; v < 2; v++ {
			off, err := s.alloc.Allocate(tm.Size)
			if err != nil {
				rollback()
				return nil, fmt.Errorf("index: allocating TensorData for %q: %w", tm.Name, err)
			}
			m.PAddr[i][v] = off
		}
	}

	// Claim MIndex record space: first-fit a dead record's bytes, else
	// bump the break. Reuse is crash-safe for the same reason the append
	// is — nothing references the region until the table entry (written
	// last) publishes it.
	recLen := int64(mindexHdr) + int64(len(tensors))*tensorRec
	reused := false
	for i, e := range s.mindexFree {
		if e.Size < recLen {
			continue
		}
		m.off = e.Off
		if e.Size == recLen {
			s.mindexFree = append(s.mindexFree[:i], s.mindexFree[i+1:]...)
		} else {
			s.mindexFree[i] = alloc.Extent{Off: e.Off + recLen, Size: e.Size - recLen}
		}
		reused = true
		break
	}
	if !reused {
		m.off = s.mindexBrk
		if m.off+recLen > s.deltaBrk {
			rollback()
			return nil, fmt.Errorf("index: MIndex region exhausted: %w", alloc.ErrNoSpace)
		}
	}
	rec := make([]byte, recLen)
	binary.LittleEndian.PutUint32(rec[0:], mindexMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(tensors)))
	binary.LittleEndian.PutUint16(rec[8:], uint16(len(name)))
	copy(rec[10:10+nameMax], name)
	// Version headers start zeroed (StateEmpty).
	p := int64(mindexHdr)
	for i, tm := range tensors {
		tn := tm.Name
		if len(tn) > tensorName {
			tn = tn[:tensorName]
		}
		copy(rec[p:p+tensorName], tn)
		rec[p+tensorName] = byte(tm.DType)
		rec[p+tensorName+1] = byte(len(tm.Name)) // original length (capped display)
		rec[p+tensorName+2] = byte(len(tm.Dims))
		for di, dim := range tm.Dims {
			binary.LittleEndian.PutUint64(rec[p+tensorName+4+int64(di)*8:], uint64(dim))
		}
		binary.LittleEndian.PutUint64(rec[p+tensorName+36:], uint64(tm.Size))
		binary.LittleEndian.PutUint64(rec[p+tensorName+44:], uint64(m.PAddr[i][0]))
		binary.LittleEndian.PutUint64(rec[p+tensorName+52:], uint64(m.PAddr[i][1]))
		p += tensorRec
	}
	s.pm.WriteMeta(m.off, rec)
	s.pm.FlushMeta(m.off, recLen)

	if !reused {
		// Bump and persist the MIndex break.
		s.mindexBrk += recLen
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(s.mindexBrk))
		s.pm.WriteMeta(sbMindexBrk, b[:])
		s.pm.Persist8(sbMindexBrk)
	}

	// Publish: entry first, count last.
	entry := make([]byte, entrySize)
	binary.LittleEndian.PutUint64(entry, uint64(m.off))
	binary.LittleEndian.PutUint16(entry[8:], uint16(len(name)))
	copy(entry[10:], name)
	at := s.tableOff() + s.modelCount*entrySize
	s.pm.WriteMeta(at, entry)
	s.pm.FlushMeta(at, entrySize)
	s.modelCount++
	s.persistCountGen()
	return m, nil
}

// Lookup loads a model's MIndex by name.
func (s *Store) Lookup(name string) (*Model, error) {
	for i := int64(0); i < s.modelCount; i++ {
		n, infoOff := s.entryAt(i)
		if n == name {
			return s.loadMIndex(infoOff)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNoModel, name)
}

// Models loads every live model.
func (s *Store) Models() ([]*Model, error) {
	var out []*Model
	for i := int64(0); i < s.modelCount; i++ {
		name, infoOff := s.entryAt(i)
		if name == "" {
			continue
		}
		m, err := s.loadMIndex(infoOff)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// DeleteModel tombstones a model's table entry and frees its TensorData
// extents. The MIndex record's bytes go on the in-memory dead list for
// the next CreateModel to reuse; its on-media content is untouched (no
// layout change versus pre-engine images).
func (s *Store) DeleteModel(name string) error {
	for i := int64(0); i < s.modelCount; i++ {
		n, infoOff := s.entryAt(i)
		if n != name {
			continue
		}
		m, err := s.loadMIndex(infoOff)
		if err != nil {
			return err
		}
		for _, pa := range m.PAddr {
			for v := 0; v < 2; v++ {
				if pa[v] == 0 {
					continue // slot already reclaimed by a repack pass
				}
				if err := s.alloc.Free(pa[v]); err != nil {
					return fmt.Errorf("index: freeing TensorData: %w", err)
				}
			}
		}
		var z [8]byte
		at := s.tableOff() + i*entrySize
		s.pm.WriteMeta(at, z[:]) // infoOff = 0 tombstone
		s.pm.Persist8(at)
		s.freeMIndexRange(m.off, int64(mindexHdr)+int64(len(m.Tensors))*tensorRec)
		// Drop the model's digest records: a later CreateModel may reuse
		// this MIndex offset, and a stale table under the same key would
		// diff a new model against a dead one's content.
		s.deltaDrop(m.off, 0)
		s.deltaDrop(m.off, 1)
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNoModel, name)
}

// CompactTable rewrites the ModelTable sorted by name with tombstones
// dropped — restoring the paper's sorted-array invariant (§III-D1). The
// rewrite is crash-atomic: live entries land in the inactive table
// generation, and one failure-atomic persist of the packed
// count|generation word switches over. A crash at any point leaves
// either the old or the new table fully visible.
func (s *Store) CompactTable() error {
	type liveEntry struct {
		name    string
		infoOff int64
	}
	var live []liveEntry
	for i := int64(0); i < s.modelCount; i++ {
		if name, infoOff := s.entryAt(i); name != "" {
			live = append(live, liveEntry{name, infoOff})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })

	newGen := 1 - s.tableGen
	newOff := s.tableBase + newGen*s.tableCap*entrySize
	buf := make([]byte, int64(len(live))*entrySize)
	for i, e := range live {
		p := buf[int64(i)*entrySize:]
		binary.LittleEndian.PutUint64(p, uint64(e.infoOff))
		binary.LittleEndian.PutUint16(p[8:], uint16(len(e.name)))
		copy(p[10:], e.name)
	}
	if len(buf) > 0 {
		s.pm.WriteMeta(newOff, buf)
		s.pm.FlushMeta(newOff, int64(len(buf)))
	}
	s.tableGen = newGen
	s.modelCount = int64(len(live))
	s.persistCountGen() // the atomic switch
	return nil
}

// TableSorted reports whether the live entries appear in name order
// (true after CompactTable; appends may break it again).
func (s *Store) TableSorted() bool {
	prev := ""
	for i := int64(0); i < s.modelCount; i++ {
		name, _ := s.entryAt(i)
		if name == "" {
			continue
		}
		if name < prev {
			return false
		}
		prev = name
	}
	return true
}

// loadMIndex decodes the MIndex record at off, validating every length
// and offset so a corrupt image yields ErrCorrupt rather than a panic.
func (s *Store) loadMIndex(off int64) (*Model, error) {
	if off < 0 || off > s.pm.MetaSize()-mindexHdr {
		return nil, fmt.Errorf("%w: MIndex offset %d outside metadata zone", ErrCorrupt, off)
	}
	hdr := s.pm.MetaBytes(off, mindexHdr)
	if binary.LittleEndian.Uint32(hdr) != mindexMagic {
		return nil, fmt.Errorf("%w: bad MIndex magic at %d", ErrCorrupt, off)
	}
	cnt := int64(binary.LittleEndian.Uint32(hdr[4:]))
	if cnt < 0 || cnt > (s.pm.MetaSize()-off-mindexHdr)/tensorRec {
		return nil, fmt.Errorf("%w: tensor count %d overflows metadata zone", ErrCorrupt, cnt)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[8:]))
	if nameLen > nameMax {
		return nil, fmt.Errorf("%w: name length %d", ErrCorrupt, nameLen)
	}
	m := &Model{
		s:       s,
		off:     off,
		Name:    string(hdr[10 : 10+nameLen]),
		Tensors: make([]TensorMeta, cnt),
		PAddr:   make([][2]int64, cnt),
	}
	raw := s.pm.MetaBytes(off+mindexHdr, cnt*tensorRec)
	for i := int64(0); i < cnt; i++ {
		rec := raw[i*tensorRec:]
		name := rec[:tensorName]
		if z := strings.IndexByte(string(name), 0); z >= 0 {
			name = name[:z]
		}
		ndims := int(rec[tensorName+2])
		if ndims > 4 {
			return nil, fmt.Errorf("%w: tensor %d has %d dims", ErrCorrupt, i, ndims)
		}
		dims := make([]int64, ndims)
		for di := 0; di < ndims; di++ {
			dims[di] = int64(binary.LittleEndian.Uint64(rec[tensorName+4+di*8:]))
		}
		size := int64(binary.LittleEndian.Uint64(rec[tensorName+36:]))
		if size < 0 || size > s.pm.DataSize() {
			return nil, fmt.Errorf("%w: tensor %d size %d", ErrCorrupt, i, size)
		}
		m.Tensors[i] = TensorMeta{
			Name:  string(name),
			DType: DType(rec[tensorName]),
			Dims:  dims,
			Size:  size,
		}
		for v := 0; v < 2; v++ {
			paddr := int64(binary.LittleEndian.Uint64(rec[tensorName+44+v*8:]))
			if paddr < 0 || (paddr > 0 && paddr > s.pm.DataSize()-size) {
				return nil, fmt.Errorf("%w: tensor %d slot %d points outside the data zone", ErrCorrupt, i, v)
			}
			m.PAddr[i][v] = paddr
		}
	}
	return m, nil
}

// Model is a loaded MIndex: the second-level record of the index.
type Model struct {
	s   *Store
	off int64

	Name    string
	Tensors []TensorMeta
	// PAddr[i][v] is the data-zone offset of tensor i's TensorData in
	// version slot v — the persistent pointers of the paper's MIndex.
	PAddr [][2]int64
}

// InfoOff returns the MIndex record's metadata-zone offset (the value
// stored in the ModelTable).
func (m *Model) InfoOff() int64 { return m.off }

// TotalSize returns the model's payload bytes (one version).
func (m *Model) TotalSize() int64 {
	var sum int64
	for _, t := range m.Tensors {
		sum += t.Size
	}
	return sum
}

// Version is a decoded version header.
type Version struct {
	State     uint64
	Iteration uint64
	SavedAt   time.Time
	// CRC is the content fingerprint stamped when the version was
	// marked DONE (zero when written by the CRC-less SetDone path).
	CRC uint64
}

func (m *Model) verOff(slot int) int64 {
	return m.off + 8 + 2 + nameMax + 2 + int64(slot)*verHdrSize
}

// VersionHeader reads version slot 0 or 1.
func (m *Model) VersionHeader(slot int) Version {
	raw := m.s.pm.MetaBytes(m.verOff(slot), verHdrSize)
	return Version{
		State:     binary.LittleEndian.Uint64(raw[0:]),
		Iteration: binary.LittleEndian.Uint64(raw[8:]),
		SavedAt:   time.Unix(0, int64(binary.LittleEndian.Uint64(raw[16:]))),
		CRC:       binary.LittleEndian.Uint64(raw[24:]),
	}
}

// SetActive marks slot as receiving a new checkpoint at iteration. The
// state word is persisted atomically first so a crash mid-transfer
// leaves the slot visibly incomplete.
func (m *Model) SetActive(slot int, iteration uint64) {
	off := m.verOff(slot)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], StateActive)
	m.s.pm.WriteMeta(off, b[:])
	m.s.pm.Persist8(off)
	binary.LittleEndian.PutUint64(b[:], iteration)
	m.s.pm.WriteMeta(off+8, b[:])
	m.s.pm.Persist8(off + 8)
}

// SetDone marks slot as a complete, restorable checkpoint without an
// integrity stamp. Callers must have flushed the slot's TensorData
// first; the state word is the commit point (8-byte failure-atomic
// persist).
func (m *Model) SetDone(slot int, iteration uint64, savedAt time.Time) {
	m.SetDoneCRC(slot, iteration, savedAt, 0)
}

// SetDoneCRC is SetDone carrying the version's content fingerprint.
// The CRC is persisted before the state word so a DONE header always
// pairs with its stamp.
func (m *Model) SetDoneCRC(slot int, iteration uint64, savedAt time.Time, crc uint64) {
	off := m.verOff(slot)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], iteration)
	m.s.pm.WriteMeta(off+8, b[:])
	m.s.pm.Persist8(off + 8)
	binary.LittleEndian.PutUint64(b[:], uint64(savedAt.UnixNano()))
	m.s.pm.WriteMeta(off+16, b[:])
	m.s.pm.Persist8(off + 16)
	binary.LittleEndian.PutUint64(b[:], crc)
	m.s.pm.WriteMeta(off+24, b[:])
	m.s.pm.Persist8(off + 24)
	binary.LittleEndian.PutUint64(b[:], StateDone)
	m.s.pm.WriteMeta(off, b[:])
	m.s.pm.Persist8(off)
}

// LatestDone returns the slot holding the newest complete checkpoint.
func (m *Model) LatestDone() (slot int, v Version, ok bool) {
	v0, v1 := m.VersionHeader(0), m.VersionHeader(1)
	switch {
	case v0.State == StateDone && v1.State == StateDone:
		if v1.Iteration > v0.Iteration {
			return 1, v1, true
		}
		return 0, v0, true
	case v0.State == StateDone:
		return 0, v0, true
	case v1.State == StateDone:
		return 1, v1, true
	default:
		return 0, Version{}, false
	}
}

// TargetSlot returns the slot the next checkpoint should overwrite: the
// one that is not the latest done version.
func (m *Model) TargetSlot() int {
	if slot, _, ok := m.LatestDone(); ok {
		return 1 - slot
	}
	return 0
}

// TensorData returns the data-zone extent of tensor i in version slot v.
func (m *Model) TensorData(i, v int) alloc.Extent {
	return alloc.Extent{Off: m.PAddr[i][v], Size: m.Tensors[i].Size}
}

// SetPAddr repoints tensor i's version-v TensorData to a new data-zone
// offset and persists the pointer (used by the repacker and by slot
// re-allocation after repacking).
func (m *Model) SetPAddr(i, v int, off int64) {
	m.PAddr[i][v] = off
	at := m.off + mindexHdr + int64(i)*tensorRec + tensorName + 44 + int64(v)*8
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(off))
	m.s.pm.WriteMeta(at, b[:])
	m.s.pm.Persist8(at)
}

// ClearVersion marks slot v empty and invalidates its tensor pointers
// (the repacker's treatment of outdated or collapsed versions). The
// slot's digest record goes with it: a cleared slot holds no content to
// diff against.
func (m *Model) ClearVersion(v int) {
	off := m.verOff(v)
	var b [8]byte // zero = StateEmpty
	m.s.pm.WriteMeta(off, b[:])
	m.s.pm.Persist8(off)
	for i := range m.Tensors {
		m.SetPAddr(i, v, 0)
	}
	m.s.deltaDrop(m.off, v)
}

// HasSlot reports whether slot v still owns TensorData extents (false
// after the repacker reclaimed it). Offset 0 is reserved: the allocator
// never places an extent there.
func (m *Model) HasSlot(v int) bool {
	return len(m.Tensors) > 0 && m.PAddr[0][v] != 0
}

// ---------------------------------------------------------------------------
// Delta digest tables.
// ---------------------------------------------------------------------------

// deltaRecLen returns the on-media size of a record holding count
// digests.
func deltaRecLen(count int) int64 { return deltaHdr + int64(count)*8 + 8 }

// deltaCRC fingerprints a record's body words (everything past recLen
// and state, up to but excluding the trailing crc word).
func deltaCRC(body []byte) uint64 {
	h := fnv64aInit
	for _, b := range body {
		h = (h ^ uint64(b)) * fnv64aPrime
	}
	return h
}

// FNV-64a, inlined so record validation needs no allocation.
const (
	fnv64aInit  = uint64(14695981039346656037)
	fnv64aPrime = uint64(1099511628211)
)

// rebuildDelta reconstructs the digest-record map and dead-record free
// list by walking the packed region [deltaBrk, allocOff). Best-effort:
// an implausible record length abandons the walk, which only disables
// delta lookups past that point (checkpoints fall back to full).
func (s *Store) rebuildDelta() {
	s.deltaIdx = map[deltaKey]int64{}
	s.deltaFree = map[int64][]int64{}
	off := s.deltaBrk
	for off+deltaHdr <= s.allocOff {
		raw := s.pm.MetaBytes(off, deltaHdr)
		recLen := int64(binary.LittleEndian.Uint64(raw[0:]))
		if recLen < deltaRecLen(0) || recLen%8 != 0 || off+recLen > s.allocOff {
			return
		}
		state := binary.LittleEndian.Uint64(raw[8:])
		switch state {
		case deltaValid, deltaInvalid:
			key := deltaKey{
				infoOff: int64(binary.LittleEndian.Uint64(raw[16:])),
				slot:    int(binary.LittleEndian.Uint64(raw[24:])),
			}
			s.deltaIdx[key] = off
		case deltaDead:
			s.deltaFree[recLen] = append(s.deltaFree[recLen], off)
		default:
			return
		}
		off += recLen
	}
}

// DeltaBytes reports the metadata-zone space held by the digest-table
// region (live and dead records).
func (s *Store) DeltaBytes() int64 { return s.allocOff - s.deltaBrk }

// crash fires the test-only crash hook; true means the device crashed
// at this boundary and the caller must abort.
func (s *Store) crash(point string) bool {
	return s.crashHook != nil && s.crashHook(point)
}

// DeltaPut persists slot's digest table for model m. The write is
// crash-safe at every boundary: a fresh record becomes visible only when
// the region break is persisted after the record is fully flushed, and
// an in-place rewrite toggles the record invalid first, so a crash
// leaves either the old table, the new table, or a visibly invalid
// record (which DeltaGet treats as missing — the next checkpoint runs
// full). Running out of metadata space is reported as
// alloc.ErrNoSpace-wrapped so callers can degrade to full checkpoints
// without failing the request.
func (s *Store) DeltaPut(m *Model, slot int, t *delta.Table) error {
	if slot != 0 && slot != 1 {
		return fmt.Errorf("index: invalid version slot %d", slot)
	}
	recLen := deltaRecLen(len(t.Digests))
	key := deltaKey{infoOff: m.off, slot: slot}

	// An existing record of a different size cannot be rewritten in
	// place: retire it and allocate fresh.
	if off, ok := s.deltaIdx[key]; ok {
		if int64(binary.LittleEndian.Uint64(s.pm.MetaBytes(off, 8))) != recLen {
			s.deltaDrop(m.off, slot)
		}
	}

	body := make([]byte, recLen-16)
	binary.LittleEndian.PutUint64(body[0:], uint64(m.off))
	binary.LittleEndian.PutUint64(body[8:], uint64(slot))
	binary.LittleEndian.PutUint64(body[16:], uint64(t.BlockBytes))
	binary.LittleEndian.PutUint64(body[24:], t.Iteration)
	binary.LittleEndian.PutUint64(body[32:], t.Layout)
	binary.LittleEndian.PutUint64(body[40:], uint64(len(t.Digests)))
	for i, d := range t.Digests {
		binary.LittleEndian.PutUint64(body[48+i*8:], d)
	}
	binary.LittleEndian.PutUint64(body[len(body)-8:], deltaCRC(body[:len(body)-8]))

	var b [8]byte
	if off, ok := s.deltaIdx[key]; ok {
		// In-place rewrite: invalidate, write body, revalidate.
		if s.crash("delta-invalidate") {
			return ErrCrashed
		}
		binary.LittleEndian.PutUint64(b[:], deltaInvalid)
		s.pm.WriteMeta(off+8, b[:])
		s.pm.Persist8(off + 8)
		if s.crash("delta-body") {
			return ErrCrashed
		}
		s.pm.WriteMeta(off+16, body)
		s.pm.FlushMeta(off+16, int64(len(body)))
		if s.crash("delta-validate") {
			return ErrCrashed
		}
		binary.LittleEndian.PutUint64(b[:], deltaValid)
		s.pm.WriteMeta(off+8, b[:])
		s.pm.Persist8(off + 8)
		return nil
	}

	// Reuse a dead record of the exact size, else claim fresh space
	// below the break.
	if free := s.deltaFree[recLen]; len(free) > 0 {
		off := free[len(free)-1]
		s.deltaFree[recLen] = free[:len(free)-1]
		if s.crash("delta-invalidate") {
			return ErrCrashed
		}
		binary.LittleEndian.PutUint64(b[:], deltaInvalid)
		s.pm.WriteMeta(off+8, b[:])
		s.pm.Persist8(off + 8)
		if s.crash("delta-body") {
			return ErrCrashed
		}
		s.pm.WriteMeta(off+16, body)
		s.pm.FlushMeta(off+16, int64(len(body)))
		if s.crash("delta-validate") {
			return ErrCrashed
		}
		binary.LittleEndian.PutUint64(b[:], deltaValid)
		s.pm.WriteMeta(off+8, b[:])
		s.pm.Persist8(off + 8)
		s.deltaIdx[key] = off
		return nil
	}

	off := s.deltaBrk - recLen
	if off < s.mindexBrk {
		return fmt.Errorf("index: delta region exhausted: %w", alloc.ErrNoSpace)
	}
	if s.crash("delta-body") {
		return ErrCrashed
	}
	rec := make([]byte, recLen)
	binary.LittleEndian.PutUint64(rec[0:], uint64(recLen))
	binary.LittleEndian.PutUint64(rec[8:], deltaValid)
	copy(rec[16:], body)
	s.pm.WriteMeta(off, rec)
	s.pm.FlushMeta(off, recLen)
	if s.crash("delta-publish") {
		return ErrCrashed
	}
	// Publish: the break persist makes the record visible atomically.
	s.deltaBrk = off
	binary.LittleEndian.PutUint64(b[:], uint64(s.deltaBrk))
	s.pm.WriteMeta(sbDeltaBrk, b[:])
	s.pm.Persist8(sbDeltaBrk)
	s.deltaIdx[key] = off
	return nil
}

// DeltaGet loads slot's persisted digest table for model m, or reports
// a miss for anything not fully valid: no record, an in-flight rewrite
// that never revalidated, or a body that fails its CRC.
func (s *Store) DeltaGet(m *Model, slot int) (*delta.Table, bool) {
	off, ok := s.deltaIdx[deltaKey{infoOff: m.off, slot: slot}]
	if !ok {
		return nil, false
	}
	hdr := s.pm.MetaBytes(off, deltaHdr)
	recLen := int64(binary.LittleEndian.Uint64(hdr[0:]))
	if binary.LittleEndian.Uint64(hdr[8:]) != deltaValid {
		return nil, false
	}
	count := int64(binary.LittleEndian.Uint64(hdr[56:]))
	if count < 0 || deltaRecLen(int(count)) != recLen {
		return nil, false
	}
	body := s.pm.MetaBytes(off+16, recLen-16)
	if deltaCRC(body[:len(body)-8]) != binary.LittleEndian.Uint64(body[len(body)-8:]) {
		return nil, false
	}
	t := &delta.Table{
		BlockBytes: int64(binary.LittleEndian.Uint64(hdr[32:])),
		Iteration:  binary.LittleEndian.Uint64(hdr[40:]),
		Layout:     binary.LittleEndian.Uint64(hdr[48:]),
		Digests:    make([]uint64, count),
	}
	for i := range t.Digests {
		t.Digests[i] = binary.LittleEndian.Uint64(body[48+i*8:])
	}
	return t, true
}

// DeltaDrop retires slot's digest record for model m (no-op when none
// exists). Exposed for the daemon's delete path; DeleteModel and
// ClearVersion call it internally.
func (m *Model) DeltaDrop(slot int) { m.s.deltaDrop(m.off, slot) }

func (s *Store) deltaDrop(infoOff int64, slot int) {
	key := deltaKey{infoOff: infoOff, slot: slot}
	off, ok := s.deltaIdx[key]
	if !ok {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], deltaDead)
	s.pm.WriteMeta(off+8, b[:])
	s.pm.Persist8(off + 8)
	delete(s.deltaIdx, key)
	recLen := int64(binary.LittleEndian.Uint64(s.pm.MetaBytes(off, 8)))
	s.deltaFree[recLen] = append(s.deltaFree[recLen], off)
}
