package index

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/pmem"
)

func compactFixture(t *testing.T) (*pmem.Device, *Store) {
	t.Helper()
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 64 << 20, MetaSize: 8 << 20})
	s, err := Format(pm, 32)
	if err != nil {
		t.Fatal(err)
	}
	small := []TensorMeta{{Name: "w", DType: F32, Dims: []int64{16}, Size: 64}}
	for _, name := range []string{"zebra", "alpha", "mike", "delta", "kilo"} {
		m, err := s.CreateModel(name, small)
		if err != nil {
			t.Fatal(err)
		}
		m.SetActive(0, 1)
		m.SetDone(0, 1, time.Unix(0, 1))
	}
	return pm, s
}

func TestCompactTableSortsAndDropsTombstones(t *testing.T) {
	pm, s := compactFixture(t)
	if err := s.DeleteModel("mike"); err != nil {
		t.Fatal(err)
	}
	if s.TableSorted() {
		t.Fatal("append-order table should not be sorted in this fixture")
	}
	if err := s.CompactTable(); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("table not sorted after compaction: %v", names)
	}
	if len(names) != 4 {
		t.Fatalf("names = %v, want 4 (tombstone dropped)", names)
	}
	if !s.TableSorted() {
		t.Fatal("TableSorted() = false after compaction")
	}
	// Every model still resolves and keeps its versions.
	for _, n := range names {
		m, err := s.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, v, ok := m.LatestDone(); !ok || v.Iteration != 1 {
			t.Fatalf("%s lost its version after compaction", n)
		}
	}
	// The compacted table must be durable.
	pm.Crash()
	s2, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Names(); !sort.StringsAreSorted(got) || len(got) != 4 {
		t.Fatalf("recovered table = %v", got)
	}
}

func TestCompactTableIsCrashAtomic(t *testing.T) {
	// Crash between the inactive-table write and the generation flip:
	// the OLD table must still be fully visible.
	pm, s := compactFixture(t)
	if err := s.DeleteModel("alpha"); err != nil {
		t.Fatal(err)
	}
	// Simulate the partial compaction: write the new generation's
	// entries without flipping (equivalent to crashing mid-CompactTable,
	// since the flip is the single Persist8).
	// We emulate by compacting fully, then crashing BEFORE the flip is
	// durable: roll the flip back by re-writing the old packed word.
	oldCount := int64(len(s.Names()))
	oldGen := s.tableGen
	if err := s.CompactTable(); err != nil {
		t.Fatal(err)
	}
	// Undo only the flip (as if it never persisted).
	s.tableGen = oldGen
	s.modelCount = oldCount + 1 // tombstone slot still counted pre-compaction
	s.persistCountGen()
	pm.Crash()

	s2, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	names := s2.Names()
	if len(names) != int(oldCount) {
		t.Fatalf("old-generation table corrupted: %v", names)
	}
	for _, n := range []string{"zebra", "mike", "delta", "kilo"} {
		if _, err := s2.Lookup(n); err != nil {
			t.Fatalf("model %s lost: %v", n, err)
		}
	}
}

func TestAppendAfterCompaction(t *testing.T) {
	_, s := compactFixture(t)
	if err := s.CompactTable(); err != nil {
		t.Fatal(err)
	}
	small := []TensorMeta{{Name: "w", DType: F32, Dims: []int64{16}, Size: 64}}
	if _, err := s.CreateModel("aaa-new", small); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("aaa-new"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Names()); got != 6 {
		t.Fatalf("names after post-compaction append = %d", got)
	}
	// Compacting again restores sortedness including the new entry.
	if err := s.CompactTable(); err != nil {
		t.Fatal(err)
	}
	if !s.TableSorted() {
		t.Fatal("second compaction did not sort")
	}
}

func TestRepeatedCompactionAlternatesGenerations(t *testing.T) {
	_, s := compactFixture(t)
	for i := 0; i < 4; i++ {
		if err := s.CompactTable(); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Names()); got != 5 {
			t.Fatalf("round %d: %d names", i, got)
		}
	}
}

func TestCompactLargeTable(t *testing.T) {
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 64 << 20, MetaSize: 8 << 20})
	s, err := Format(pm, 128)
	if err != nil {
		t.Fatal(err)
	}
	small := []TensorMeta{{Name: "w", DType: F32, Dims: []int64{16}, Size: 64}}
	for i := 127; i >= 0; i-- { // reverse order to force real sorting
		if _, err := s.CreateModel(fmt.Sprintf("model-%03d", i), small); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompactTable(); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 128 || !sort.StringsAreSorted(names) {
		t.Fatalf("large compaction wrong: %d names, sorted=%v", len(names), sort.StringsAreSorted(names))
	}
}
