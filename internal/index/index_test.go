package index

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/portus-sys/portus/internal/pmem"
)

func newStore(t *testing.T) (*pmem.Device, *Store) {
	t.Helper()
	pm := pmem.New(pmem.Config{Name: "pm0", DataSize: 4 << 30, MetaSize: 8 << 20, Materialized: false})
	s, err := Format(pm, 64)
	if err != nil {
		t.Fatal(err)
	}
	return pm, s
}

func bertTensors() []TensorMeta {
	return []TensorMeta{
		{Name: "bert.embeddings.word_embeddings.weight", DType: F32, Dims: []int64{30522, 1024}, Size: 30522 * 1024 * 4},
		{Name: "bert.encoder.layer.0.attention.self.query.weight", DType: F32, Dims: []int64{1024, 1024}, Size: 1024 * 1024 * 4},
		{Name: "bert.encoder.layer.0.attention.self.query.bias", DType: F32, Dims: []int64{1024}, Size: 1024 * 4},
	}
}

func TestCreateAndLookup(t *testing.T) {
	_, s := newStore(t)
	m, err := s.CreateModel("bert-large", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Lookup("bert-large")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "bert-large" || len(got.Tensors) != 3 {
		t.Fatalf("lookup = %q with %d tensors", got.Name, len(got.Tensors))
	}
	for i := range got.Tensors {
		if got.Tensors[i].Name != m.Tensors[i].Name ||
			got.Tensors[i].Size != m.Tensors[i].Size ||
			got.Tensors[i].DType != m.Tensors[i].DType {
			t.Fatalf("tensor %d mismatch: %+v vs %+v", i, got.Tensors[i], m.Tensors[i])
		}
		if got.PAddr[i] != m.PAddr[i] {
			t.Fatalf("tensor %d persistent pointers differ", i)
		}
	}
	if got.InfoOff() != m.InfoOff() {
		t.Fatal("InfoOff mismatch")
	}
}

func TestDoubleMappingAllocatesTwoExtentsPerTensor(t *testing.T) {
	_, s := newStore(t)
	m, err := s.CreateModel("m", bertTensors())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := range m.Tensors {
		for v := 0; v < 2; v++ {
			ext := m.TensorData(i, v)
			if ext.Size != m.Tensors[i].Size {
				t.Fatalf("extent size %d, want %d", ext.Size, m.Tensors[i].Size)
			}
			if seen[ext.Off] {
				t.Fatalf("extent %d reused across slots", ext.Off)
			}
			seen[ext.Off] = true
		}
	}
	if want := 2 * len(m.Tensors); s.Allocator().Live() == nil || len(s.Allocator().Live()) != want {
		t.Fatalf("allocator has %d live extents, want %d", len(s.Allocator().Live()), want)
	}
}

func TestDuplicateModelRejected(t *testing.T) {
	_, s := newStore(t)
	if _, err := s.CreateModel("m", bertTensors()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateModel("m", bertTensors()); !errors.Is(err, ErrModelExists) {
		t.Fatalf("err = %v, want ErrModelExists", err)
	}
}

func TestLookupMissingModel(t *testing.T) {
	_, s := newStore(t)
	if _, err := s.Lookup("ghost"); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
}

func TestVersionStateMachine(t *testing.T) {
	_, s := newStore(t)
	m, _ := s.CreateModel("m", bertTensors())

	if _, _, ok := m.LatestDone(); ok {
		t.Fatal("fresh model has a done version")
	}
	if m.TargetSlot() != 0 {
		t.Fatalf("fresh TargetSlot = %d", m.TargetSlot())
	}

	m.SetActive(0, 100)
	if v := m.VersionHeader(0); v.State != StateActive || v.Iteration != 100 {
		t.Fatalf("after SetActive: %+v", v)
	}
	if _, _, ok := m.LatestDone(); ok {
		t.Fatal("active version reported as done")
	}

	at := time.Unix(0, 12345)
	m.SetDone(0, 100, at)
	slot, v, ok := m.LatestDone()
	if !ok || slot != 0 || v.Iteration != 100 || !v.SavedAt.Equal(at) {
		t.Fatalf("LatestDone = %d, %+v, %v", slot, v, ok)
	}
	if m.TargetSlot() != 1 {
		t.Fatalf("TargetSlot after first done = %d", m.TargetSlot())
	}

	m.SetActive(1, 200)
	m.SetDone(1, 200, time.Unix(0, 23456))
	if slot, v, _ := m.LatestDone(); slot != 1 || v.Iteration != 200 {
		t.Fatalf("LatestDone after second checkpoint = %d, %+v", slot, v)
	}
	if m.TargetSlot() != 0 {
		t.Fatalf("TargetSlot should alternate, got %d", m.TargetSlot())
	}
}

func TestCrashDuringActiveKeepsOldVersion(t *testing.T) {
	pm, s := newStore(t)
	m, _ := s.CreateModel("m", bertTensors())
	m.SetDone(0, 100, time.Now())
	m.SetActive(1, 200) // transfer begins...
	pm.Crash()          // ...and power fails

	s2, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	slot, v, ok := m2.LatestDone()
	if !ok || slot != 0 || v.Iteration != 100 {
		t.Fatalf("recovery picked %d %+v %v, want slot 0 iter 100", slot, v, ok)
	}
	// The interrupted slot must still be visibly incomplete.
	if got := m2.VersionHeader(1).State; got != StateActive {
		t.Fatalf("slot 1 state = %s, want active", StateName(got))
	}
}

func TestOpenAfterCrashBeforePublish(t *testing.T) {
	// Crash after MIndex flush but before the table count persist: the
	// model must be invisible and the store still consistent.
	pm, s := newStore(t)
	if _, err := s.CreateModel("published", bertTensors()); err != nil {
		t.Fatal(err)
	}
	// Manually mimic a half-registration: CreateModel persists count
	// last, so crashing right before that leaves count at 1. We emulate
	// by crashing now (count=1 persisted) — then verify a fresh half
	// crash state: create, crash without any extra flush.
	if _, err := s.CreateModel("half", bertTensors()); err != nil {
		t.Fatal(err)
	}
	// Roll back to the durable image from *before* "half" would require
	// intercepting internal flushes; instead verify both are durable,
	// which CreateModel guarantees by flushing in publish order.
	pm.Crash()
	s2, err := Open(pm)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Names()); got != 2 {
		t.Fatalf("recovered %d models, want 2", got)
	}
}

func TestDeleteModelFreesSpace(t *testing.T) {
	_, s := newStore(t)
	if _, err := s.CreateModel("dead", bertTensors()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateModel("live", bertTensors()); err != nil {
		t.Fatal(err)
	}
	before := s.Allocator().InUse()
	if err := s.DeleteModel("dead"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup("dead"); !errors.Is(err, ErrNoModel) {
		t.Fatalf("deleted model still resolvable: %v", err)
	}
	if got := s.Allocator().InUse(); got >= before {
		t.Fatalf("InUse %d not reduced from %d", got, before)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "live" {
		t.Fatalf("Names = %v", names)
	}
	if s.ModelCount() != 1 {
		t.Fatalf("ModelCount = %d", s.ModelCount())
	}
	if err := s.DeleteModel("dead"); !errors.Is(err, ErrNoModel) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestOpenUnformattedFails(t *testing.T) {
	pm := pmem.New(pmem.Config{Name: "raw", DataSize: 1 << 20})
	if _, err := Open(pm); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
}

func TestIndexSurvivesImageRoundTrip(t *testing.T) {
	pm, s := newStore(t)
	m, _ := s.CreateModel("m", bertTensors())
	m.SetDone(0, 42, time.Unix(0, 99))
	// Write recognizable tensor content and flush it.
	ext := m.TensorData(0, 0)
	pm.Data().WriteStamp(ext.Off, ext.Size, 0xfeed)
	pm.FlushData(ext.Off, ext.Size)

	var buf bytes.Buffer
	if err := pm.SaveImage(&buf); err != nil {
		t.Fatal(err)
	}
	pm2, err := pmem.LoadImage("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(pm2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Lookup("m")
	if err != nil {
		t.Fatal(err)
	}
	if _, v, ok := m2.LatestDone(); !ok || v.Iteration != 42 {
		t.Fatalf("version lost in image: %+v %v", v, ok)
	}
	ext2 := m2.TensorData(0, 0)
	if got := pm2.Data().StampOf(ext2.Off, ext2.Size); got != 0xfeed {
		t.Fatalf("TensorData stamp after image = %#x", got)
	}
}

func TestTableFull(t *testing.T) {
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 16 << 20, MetaSize: 8 << 20})
	s, err := Format(pm, 2)
	if err != nil {
		t.Fatal(err)
	}
	small := []TensorMeta{{Name: "w", DType: F32, Dims: []int64{4}, Size: 16}}
	for i := 0; i < 2; i++ {
		if _, err := s.CreateModel(fmt.Sprintf("m%d", i), small); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.CreateModel("m2", small); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestInvalidInputs(t *testing.T) {
	_, s := newStore(t)
	if _, err := s.CreateModel("", nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.CreateModel("m", []TensorMeta{{Name: "t", Size: 0}}); err == nil {
		t.Error("zero-size tensor accepted")
	}
	if _, err := s.CreateModel("m", []TensorMeta{{Name: "t", Size: 8, Dims: []int64{1, 1, 1, 1, 1}}}); err == nil {
		t.Error("5-dim tensor accepted")
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.CreateModel(string(long), nil); err == nil {
		t.Error("oversized name accepted")
	}
}

func TestDTypeProperties(t *testing.T) {
	cases := map[DType]struct {
		name string
		size int64
	}{
		F32: {"float32", 4}, F16: {"float16", 2}, BF16: {"bfloat16", 2},
		I64: {"int64", 8}, I32: {"int32", 4}, U8: {"uint8", 1},
	}
	for d, want := range cases {
		if d.String() != want.name || d.ElemSize() != want.size {
			t.Errorf("%v: %s/%d", d, d.String(), d.ElemSize())
		}
	}
}

func TestStateName(t *testing.T) {
	if StateName(StateEmpty) != "empty" || StateName(StateActive) != "active" || StateName(StateDone) != "done" {
		t.Fatal("state names wrong")
	}
}

// Property: any set of models with random tensor shapes round-trips
// through the persistent index byte-exactly.
func TestMIndexRoundTripProperty(t *testing.T) {
	type tensorSpec struct {
		Elems uint16
		Dims  uint8
		DT    uint8
	}
	prop := func(specs []tensorSpec) bool {
		if len(specs) == 0 || len(specs) > 50 {
			return true
		}
		pm := pmem.New(pmem.Config{Name: "pm", DataSize: 1 << 30, MetaSize: 8 << 20})
		s, err := Format(pm, 8)
		if err != nil {
			return false
		}
		tensors := make([]TensorMeta, len(specs))
		for i, sp := range specs {
			dt := DType(sp.DT%6) + 1
			ndims := int(sp.Dims%4) + 1
			dims := make([]int64, ndims)
			elems := int64(sp.Elems) + 1
			for d := range dims {
				dims[d] = elems
			}
			tensors[i] = TensorMeta{
				Name:  fmt.Sprintf("layer.%d.weight", i),
				DType: dt,
				Dims:  dims,
				Size:  elems * dt.ElemSize(),
			}
		}
		if _, err := s.CreateModel("model", tensors); err != nil {
			return false
		}
		pm.Crash() // everything CreateModel wrote must be durable
		s2, err := Open(pm)
		if err != nil {
			return false
		}
		m, err := s2.Lookup("model")
		if err != nil {
			return false
		}
		if len(m.Tensors) != len(tensors) {
			return false
		}
		for i := range tensors {
			got, want := m.Tensors[i], tensors[i]
			if got.Name != want.Name || got.DType != want.DType || got.Size != want.Size {
				return false
			}
			if len(got.Dims) != len(want.Dims) {
				return false
			}
			for d := range want.Dims {
				if got.Dims[d] != want.Dims[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
