package wire

import (
	"net"
	"reflect"
	"testing"

	"github.com/portus-sys/portus/internal/sim"
)

// roundTrip sends want over a real TCP loopback gob connection and
// returns what the far side decoded.
func roundTrip(t *testing.T, want *Msg) *Msg {
	t.Helper()
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		defer nc.Close()
		m, err := nc.Recv(env)
		if err != nil {
			return
		}
		done <- m
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	defer nc.Close()
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	return <-done
}

// TestPlacementRespGobRoundTrip pins the placement discovery reply's
// wire shape: the table epoch and every member entry survive gob.
func TestPlacementRespGobRoundTrip(t *testing.T) {
	want := &Msg{
		Type:  TPlacementResp,
		Epoch: 7,
		Placement: []PlacementEntry{
			{Node: "storage0", CtrlAddr: "10.0.0.1:7470", FabricAddr: "10.0.0.1:7471", Weight: 256 << 30},
			{Node: "storage1", CtrlAddr: "10.0.0.2:7470", FabricAddr: "10.0.0.2:7471", Weight: 512 << 30},
		},
	}
	got := roundTrip(t, want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PLACEMENT_RESP gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestListRespShardFieldsGobRoundTrip pins the sharded-tier additions
// to LIST_RESP: per-slot iterations plus the answering node and the
// placement owner.
func TestListRespShardFieldsGobRoundTrip(t *testing.T) {
	want := &Msg{
		Type: TListResp,
		Models: []ModelInfo{{
			Name: "gpt/mp_rank_00_pp_01", Tensors: 12, Bytes: 1 << 20,
			Slot0: "DONE", Slot1: "ACTIVE", HasDone: true, LatestIter: 9,
			Slot0Iter: 9, Slot1Iter: 8,
			Node: "storage1", Owner: "storage1",
		}},
	}
	got := roundTrip(t, want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LIST_RESP gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestPlacementTypeNames(t *testing.T) {
	for ty, want := range map[Type]string{
		TPlacement:     "PLACEMENT",
		TPlacementResp: "PLACEMENT_RESP",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}
