package wire

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
)

// byteConn adapts a byte slice into a net.Conn so NetConn.Recv can be
// driven from arbitrary (possibly corrupt) input without a socket.
type byteConn struct{ r *bytes.Reader }

func (c *byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c *byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c *byteConn) Close() error                       { return nil }
func (c *byteConn) LocalAddr() net.Addr                { return nil }
func (c *byteConn) RemoteAddr() net.Addr               { return nil }
func (c *byteConn) SetDeadline(t time.Time) error      { return nil }
func (c *byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *byteConn) SetWriteDeadline(t time.Time) error { return nil }

func encodeMsg(t testing.TB, m *Msg) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMsgDecode hammers the control-plane decode path with corrupted
// byte streams: whatever a misbehaving peer sends, Recv must return an
// error — never panic, never spin.
func FuzzMsgDecode(f *testing.F) {
	enc := func(m *Msg) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(enc(sampleMsg()))
	f.Add(enc(&Msg{Type: TLoad, Model: "gpt", Iteration: 9, CRC: 0xdeadbeef, Payload: []byte("container-bytes")}))
	f.Add(enc(&Msg{Type: TError, Code: ErrCodeCorrupt, Error: "crc mismatch", InReplyTo: TRestore}))
	f.Add(enc(&Msg{Type: TPlacementResp, Epoch: 3, Replicas: 2,
		Placement: []PlacementEntry{{Node: "storage0", CtrlAddr: "s0:7000", FabricAddr: "s0:7001", Weight: 1 << 30}}}))
	f.Add(enc(&Msg{Type: TListResp, Models: []ModelInfo{
		{Name: "m", Slot0: "DONE", Slot0Iter: 4, Slot0CRC: 0xfeed, Slot1Iter: 3, Slot1CRC: 0xbeef, Node: "s1", Owner: "s1"},
	}}))
	f.Add(enc(&Msg{Type: TDoCheckpoint, Model: "gpt", Iteration: 12,
		DeltaBlock: 64 << 10, Digests: []uint64{0xfeed, 0, 0xbeef, ^uint64(0)}}))
	f.Add(enc(&Msg{Type: TDoCheckpoint, Model: "gpt", Iteration: 13, DeltaBlock: -1}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		env := sim.NewRealEnv()
		nc := NewNetConn(&byteConn{r: bytes.NewReader(data)})
		// A stream may legitimately hold several messages; drain a
		// bounded number so valid prefixes followed by garbage are
		// exercised too.
		for i := 0; i < 8; i++ {
			if _, err := nc.Recv(env); err != nil {
				return
			}
		}
	})
}

// TestReplicationFieldsGobRoundTrip pins the wire shape of the fields
// the replication protocol added: ERROR classification codes, the
// PLACEMENT_RESP replication factor, per-slot CRCs on LIST_RESP, and
// the LOAD anti-entropy install with payload + integrity mark.
func TestReplicationFieldsGobRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	for _, want := range []*Msg{
		{Type: TError, Model: "gpt", Code: ErrCodeNoCheckpoint, Error: "no committed version", InReplyTo: TRestore},
		{Type: TError, Model: "gpt", Code: ErrCodeCorrupt, Error: "crc mismatch", InReplyTo: TRestore},
		{Type: TError, Model: "gpt", Code: ErrCodeMisplaced, Error: "placed elsewhere", InReplyTo: TLoad},
		{Type: TPlacementResp, Epoch: 7, Replicas: 2, Placement: []PlacementEntry{
			{Node: "storage0", CtrlAddr: "s0:7000", FabricAddr: "s0:7001", Weight: 256 << 20},
			{Node: "storage1", CtrlAddr: "s1:7000", FabricAddr: "s1:7001", Weight: 256 << 20},
		}},
		{Type: TListResp, Models: []ModelInfo{{
			Name: "gpt/mp_rank_00", Tensors: 12, Bytes: 1 << 20,
			Slot0: "DONE", Slot1: "DONE", HasDone: true, LatestIter: 9,
			Slot0Iter: 9, Slot1Iter: 8, Slot0CRC: 0xabad1dea, Slot1CRC: 0x5eed,
			Node: "storage1", Owner: "storage1",
		}}},
		{Type: TLoad, Model: "gpt/mp_rank_00", Iteration: 9, CRC: 0xabad1dea, Payload: []byte("serialized container")},
		{Type: TCheckpointDone, Model: "gpt", Iteration: 4, CRC: 0x1234},
		{Type: TDoCheckpoint, Model: "gpt", Iteration: 7, DeltaBlock: 64 << 10,
			Digests: []uint64{1, 2, 3, 0xdeadbeefcafef00d}},
	} {
		nc := NewNetConn(&byteConn{r: bytes.NewReader(encodeMsg(t, want))})
		got, err := nc.Recv(env)
		if err != nil {
			t.Fatalf("%s: recv: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s gob round trip mismatch:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestReplicationFieldsGobCompat pins backward compatibility: a message
// encoded by a pre-replication peer (none of the new fields set) must
// decode with Code/Replicas/CRC/Slot CRCs at their zero values rather
// than failing, so mixed-version tiers keep talking.
func TestReplicationFieldsGobCompat(t *testing.T) {
	env := sim.NewRealEnv()
	old := &Msg{Type: TError, Model: "m", Error: "busy flag stuck", InReplyTo: TDoCheckpoint}
	nc := NewNetConn(&byteConn{r: bytes.NewReader(encodeMsg(t, old))})
	got, err := nc.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != ErrCodeNone || got.CRC != 0 || got.Replicas != 0 {
		t.Fatalf("legacy ERROR decoded non-zero replication fields: %+v", got)
	}
	oldList := &Msg{Type: TListResp, Models: []ModelInfo{{Name: "m", Slot0: "DONE", Slot0Iter: 3}}}
	nc = NewNetConn(&byteConn{r: bytes.NewReader(encodeMsg(t, oldList))})
	got, err = nc.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if mi := got.Models[0]; mi.Slot0CRC != 0 || mi.Slot1CRC != 0 {
		t.Fatalf("legacy LIST_RESP decoded non-zero CRCs: %+v", mi)
	}
}

// TestDeltaFieldsGobCompat pins the old-client path of incremental
// checkpointing: a DO_CHECKPOINT encoded by a pre-delta client carries
// no digest vector, so a delta-enabled daemon must decode the zero
// values (nil Digests, DeltaBlock 0) that mean "run a full checkpoint".
func TestDeltaFieldsGobCompat(t *testing.T) {
	env := sim.NewRealEnv()
	old := &Msg{Type: TDoCheckpoint, Model: "gpt", Iteration: 42, TraceID: 7, SpanID: 9}
	nc := NewNetConn(&byteConn{r: bytes.NewReader(encodeMsg(t, old))})
	got, err := nc.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digests != nil || got.DeltaBlock != 0 {
		t.Fatalf("legacy DO_CHECKPOINT decoded non-zero delta fields: %+v", got)
	}
	// And the reverse: a delta client's digest vector survives the trip
	// byte-for-byte, including zero digests inside the vector (gob must
	// not collapse them).
	newMsg := &Msg{Type: TDoCheckpoint, Model: "gpt", Iteration: 43,
		DeltaBlock: 128 << 10, Digests: []uint64{0, 5, 0, 7}}
	nc = NewNetConn(&byteConn{r: bytes.NewReader(encodeMsg(t, newMsg))})
	got, err = nc.Recv(env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, newMsg) {
		t.Fatalf("delta DO_CHECKPOINT round trip mismatch:\n got %+v\nwant %+v", got, newMsg)
	}
}

// TestErrCodeNames pins the diagnostic names of the error taxonomy.
func TestErrCodeNames(t *testing.T) {
	for code, want := range map[ErrCode]string{
		ErrCodeNone:          "NONE",
		ErrCodeNoCheckpoint:  "NO_CHECKPOINT",
		ErrCodeCorrupt:       "CORRUPT",
		ErrCodeNotRegistered: "NOT_REGISTERED",
		ErrCodeMisplaced:     "MISPLACED",
		ErrCodeUnreachable:   "UNREACHABLE",
	} {
		if got := code.String(); got != want {
			t.Errorf("ErrCode(%d).String() = %q, want %q", code, got, want)
		}
	}
}
