// Package wire is the Portus control plane: the TCP-over-IPoIB socket
// protocol between Portus Client and Portus Daemon (§III-B). It carries
// model registration packets (tensor metadata plus RDMA remote keys),
// the DO_CHECKPOINT / CHECKPOINT_DONE exchange, restore requests, and
// portusctl management traffic. Bulk tensor data never travels here —
// that is the one-sided RDMA datapath's job.
//
// Two transports implement the same Conn interface: an in-process
// simulated network (virtual-time latency per message) and real TCP with
// gob encoding.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/portus-sys/portus/internal/perfmodel"
	"github.com/portus-sys/portus/internal/sim"
)

// Type discriminates control messages.
type Type uint8

// Message types.
const (
	TRegister Type = iota + 1
	TRegisterOK
	TDoCheckpoint
	TCheckpointDone
	TRestore
	TRestoreDone
	TList
	TListResp
	TDelete
	TDeleteOK
	TDump
	TDumpResp
	TError
	TBusy
	// TTraceReport carries the client's half of a span tree after a
	// traced request completes, so the daemon can stitch the end-to-end
	// trace. Payload holds the JSON-encoded telemetry.Span; TraceID
	// identifies the daemon trace to graft onto. Fire-and-forget: the
	// daemon never replies, and old daemons that predate the type just
	// log an unknown-message error without disturbing the session.
	TTraceReport
	// TPlacement asks a daemon for the storage tier's placement table;
	// TPlacementResp answers with the membership and its epoch, so a
	// client configured with any one member discovers the whole group's
	// routing instead of being configured with it.
	TPlacement
	TPlacementResp
	// TLoad installs a serialized checkpoint container (the DUMP_RESP
	// payload format) directly into a daemon's PMem as a DONE version —
	// the anti-entropy path that rebuilds a replacement replica from a
	// healthy peer's copy. TLoadOK acknowledges the install.
	TLoad
	TLoadOK
	// TRepack asks a running daemon to execute one online repack pass
	// (quiesced per model through the scheduler's maintenance class) and
	// waits for it to finish. TRepackResp carries the JSON-encoded
	// store.PassReport in Payload.
	TRepack
	TRepackResp
)

// typeNames is the Type.String lookup table, hoisted to package level:
// String runs on hot logging/labeling paths, and allocating a map per
// call showed up in profiles.
var typeNames = [...]string{
	TRegister: "REGISTER", TRegisterOK: "REGISTER_OK",
	TDoCheckpoint: "DO_CHECKPOINT", TCheckpointDone: "CHECKPOINT_DONE",
	TRestore: "RESTORE", TRestoreDone: "RESTORE_DONE",
	TList: "LIST", TListResp: "LIST_RESP",
	TDelete: "DELETE", TDeleteOK: "DELETE_OK",
	TDump: "DUMP", TDumpResp: "DUMP_RESP",
	TError: "ERROR", TBusy: "BUSY",
	TTraceReport: "TRACE_REPORT",
	TPlacement:   "PLACEMENT", TPlacementResp: "PLACEMENT_RESP",
	TLoad: "LOAD", TLoadOK: "LOAD_OK",
	TRepack: "REPACK", TRepackResp: "REPACK_RESP",
}

// ErrCode classifies an ERROR reply so clients can map daemon failures
// to typed sentinels instead of string-matching. Gob-compatible
// addition: zero (ErrCodeNone) means "unclassified", which is all a
// pre-replication daemon ever sends.
type ErrCode uint16

// Error codes.
const (
	ErrCodeNone ErrCode = iota
	// ErrCodeNoCheckpoint: no committed checkpoint version exists for
	// the requested model/iteration.
	ErrCodeNoCheckpoint
	// ErrCodeCorrupt: the stored copy failed its CRC integrity check; a
	// replicated client should fail over to another replica.
	ErrCodeCorrupt
	// ErrCodeNotRegistered: the model has no session on this daemon.
	ErrCodeNotRegistered
	// ErrCodeMisplaced: the placement table assigns the model elsewhere.
	ErrCodeMisplaced
	// ErrCodeUnreachable is never sent by a daemon: clients stamp it on
	// locally-fabricated ERROR replies (connection gone, request
	// deadline exceeded) so routers can tell transport loss — a suspect
	// node — from an application error.
	ErrCodeUnreachable
	// ErrCodeNoSpace: the data zone (or index) is out of space even
	// after an online reclamation pass. Registration replies carry a
	// RetryAfter hint — churned space may come back as tenants delete —
	// so clients back off and retry like they do for BUSY.
	ErrCodeNoSpace
)

// errCodeNames is the ErrCode.String lookup table.
var errCodeNames = [...]string{
	ErrCodeNone: "NONE", ErrCodeNoCheckpoint: "NO_CHECKPOINT",
	ErrCodeCorrupt: "CORRUPT", ErrCodeNotRegistered: "NOT_REGISTERED",
	ErrCodeMisplaced: "MISPLACED", ErrCodeUnreachable: "UNREACHABLE",
	ErrCodeNoSpace: "NO_SPACE",
}

// String names an error code.
func (c ErrCode) String() string {
	if int(c) < len(errCodeNames) && errCodeNames[c] != "" {
		return errCodeNames[c]
	}
	return fmt.Sprintf("ERRCODE(%d)", uint16(c))
}

// String names a message type.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// TensorRef is one tensor's registration record: metadata plus the
// remote key of its GPU memory region.
type TensorRef struct {
	Name  string
	DType uint8
	Dims  []int64
	Size  int64
	RKey  uint64
}

// ModelInfo summarizes a stored model for LIST responses.
type ModelInfo struct {
	Name       string
	Tensors    int
	Bytes      int64
	Slot0      string // version-state names
	Slot1      string
	LatestIter uint64
	HasDone    bool
	// Slot0Iter/Slot1Iter are the iterations held in each version slot
	// (meaningful when the matching state is DONE) — the raw material a
	// router needs to rebuild a group manifest from LIST responses.
	Slot0Iter uint64
	Slot1Iter uint64
	// Slot0CRC/Slot1CRC are the content fingerprints stamped into each
	// DONE record (zero for versions written before integrity stamping).
	Slot0CRC uint64
	Slot1CRC uint64
	// Node is the storage node answering the LIST; Owner is the node
	// the placement table assigns the model to. They differ only when a
	// model predates a membership change. Empty on pre-tier daemons.
	Node  string
	Owner string
}

// PlacementEntry is one storage-tier member in a PLACEMENT_RESP.
type PlacementEntry struct {
	Node       string
	CtrlAddr   string
	FabricAddr string
	// Weight is the member's placement weight (PMem capacity in bytes).
	Weight int64
}

// Msg is one control-plane message.
type Msg struct {
	Type       Type
	Model      string
	ClientNode string // RDMA node name of the client (for verbs routing)
	FabricAddr string // client agent address (TCP fabric peer exchange)
	Iteration  uint64
	Slot       int
	Error      string
	// InReplyTo carries the request type an ERROR or BUSY responds to,
	// so clients can release (or re-arm) the right waiter.
	InReplyTo Type
	// Code classifies an ERROR reply (gob-compatible addition; zero
	// from old daemons means unclassified).
	Code ErrCode
	// RetryAfter is the daemon's backpressure hint on a BUSY reply: how
	// long the client should wait before re-sending the request.
	RetryAfter time.Duration
	// TraceID propagates the client-minted trace identity; SpanID is
	// the client-side span the daemon's work should be grafted under.
	// Both are gob-compatible additions: messages from clients that
	// predate them decode with zero values, meaning "untraced", and old
	// decoders simply discard the fields.
	TraceID uint64
	SpanID  uint64
	Tensors []TensorRef
	Models  []ModelInfo
	// Epoch and Placement carry the placement table on PLACEMENT_RESP.
	// Gob-compatible additions: absent on old encoders, ignored by old
	// decoders.
	Epoch     uint64
	Placement []PlacementEntry
	// Replicas is the daemon's replication factor on PLACEMENT_RESP, so
	// tooling can render replica sets without separate configuration.
	Replicas int
	// CRC carries a checkpoint content fingerprint: stamped on
	// CHECKPOINT_DONE and DUMP_RESP, required on LOAD so the receiving
	// daemon records the same integrity mark as the source copy.
	CRC uint64
	// Digests carries the client's per-block content digest vector on
	// DO_CHECKPOINT (one 64-bit digest per DeltaBlock-sized block of
	// every tensor, flattened in registration order); DeltaBlock is the
	// block size the vector was computed under. Gob-compatible
	// additions: a pre-delta client sends neither, the daemon sees an
	// empty vector, and the checkpoint runs as a full transfer — old
	// clients keep working against a delta-enabled daemon.
	Digests    []uint64
	DeltaBlock int64
	// Payload carries a serialized checkpoint container (DUMP_RESP) or
	// a JSON span tree (TRACE_REPORT).
	Payload []byte
}

// approxSize estimates the wire size for latency modeling.
func (m *Msg) approxSize() int64 {
	size := int64(64 + len(m.Model) + len(m.ClientNode) + len(m.Error))
	for _, t := range m.Tensors {
		size += int64(len(t.Name)) + 48
	}
	size += int64(len(m.Models)) * 96
	for _, p := range m.Placement {
		size += int64(len(p.Node)+len(p.CtrlAddr)+len(p.FabricAddr)) + 16
	}
	size += int64(len(m.Digests)) * 8
	size += int64(len(m.Payload))
	return size
}

// ErrClosed reports operations on a closed connection.
var ErrClosed = errors.New("wire: connection closed")

// Conn is a bidirectional control channel.
type Conn interface {
	Send(env sim.Env, m *Msg) error
	Recv(env sim.Env) (*Msg, error)
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	Accept(env sim.Env) (Conn, error)
	Close() error
}

// SimNet is the in-process network for virtual-time runs.
type SimNet struct {
	listeners map[string]*SimListener
}

// NewSimNet creates an empty network.
func NewSimNet() *SimNet {
	return &SimNet{listeners: make(map[string]*SimListener)}
}

// SimListener is a simulated listening socket.
type SimListener struct {
	name   string
	accept *sim.Mailbox[*simConn]
}

// Listen binds name on the simulated network.
func (n *SimNet) Listen(env sim.Env, name string) (*SimListener, error) {
	if _, ok := n.listeners[name]; ok {
		return nil, fmt.Errorf("wire: address %q already bound", name)
	}
	l := &SimListener{name: name, accept: sim.NewMailbox[*simConn](env)}
	n.listeners[name] = l
	return l, nil
}

// Accept blocks until a client dials.
func (l *SimListener) Accept(env sim.Env) (Conn, error) {
	c, ok := l.accept.Recv(env)
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close unbinds the listener.
func (l *SimListener) Close() error {
	return nil
}

// Shutdown force-unbinds a listening name: pending and future Accepts
// fail with ErrClosed, and future Dials fail with "no listener" until
// the name is re-bound — how a whole-node kill makes a storage node
// unreachable (and how a replacement daemon can later reclaim the
// name). No-op if the name is not bound.
func (n *SimNet) Shutdown(env sim.Env, name string) {
	l, ok := n.listeners[name]
	if !ok {
		return
	}
	delete(n.listeners, name)
	if !l.accept.Closed(env) {
		l.accept.Close(env)
	}
}

// Dial connects to a bound name, charging one control-message latency.
func (n *SimNet) Dial(env sim.Env, name string) (Conn, error) {
	l, ok := n.listeners[name]
	if !ok {
		return nil, fmt.Errorf("wire: no listener at %q", name)
	}
	a2b := sim.NewMailbox[*Msg](env)
	b2a := sim.NewMailbox[*Msg](env)
	client := &simConn{env: env, in: b2a, out: a2b}
	server := &simConn{env: env, in: a2b, out: b2a}
	env.Sleep(perfmodel.TCPLatency)
	l.accept.Send(env, server)
	return client, nil
}

type simConn struct {
	// env is captured at dial time so Close — an env-less interface
	// method — can close the shared mailboxes from any process.
	env     sim.Env
	in, out *sim.Mailbox[*Msg]
	closed  bool
}

// Send charges the one-way control latency plus transmission time at an
// IPoIB-class gigabyte per second, then delivers.
func (c *simConn) Send(env sim.Env, m *Msg) error {
	if c.closed || c.out.Closed(env) {
		return ErrClosed
	}
	env.Sleep(perfmodel.TCPLatency/2 + sim.TransferTime(m.approxSize(), 1e9, 0, 0))
	if c.out.Closed(env) { // the peer closed while the message was in flight
		return ErrClosed
	}
	c.out.Send(env, m)
	return nil
}

func (c *simConn) Recv(env sim.Env) (*Msg, error) {
	m, ok := c.in.Recv(env)
	if !ok {
		return nil, ErrClosed
	}
	return m, nil
}

// Close tears the connection down in both directions, like a TCP reset:
// the peer's Recv drains any in-flight messages and then reports
// ErrClosed, and sends from either end fail.
func (c *simConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.in.Closed(c.env) {
		c.in.Close(c.env)
	}
	if !c.out.Closed(c.env) {
		c.out.Close(c.env)
	}
	return nil
}

// NetConn is a gob-encoded control channel over a real socket.
type NetConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	wmu sync.Mutex
}

// NewNetConn wraps a connected socket.
func NewNetConn(c net.Conn) *NetConn {
	return &NetConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Send encodes m onto the socket. Safe for concurrent use.
func (c *NetConn) Send(env sim.Env, m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// Recv decodes the next message. Only one goroutine may call Recv.
func (c *NetConn) Recv(env sim.Env) (*Msg, error) {
	var m Msg
	if err := c.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	return &m, nil
}

// Close closes the socket.
func (c *NetConn) Close() error { return c.c.Close() }

// NetListener adapts a net.Listener.
type NetListener struct{ L net.Listener }

// Accept waits for a TCP client.
func (l NetListener) Accept(env sim.Env) (Conn, error) {
	c, err := l.L.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(c), nil
}

// Close stops listening.
func (l NetListener) Close() error { return l.L.Close() }
