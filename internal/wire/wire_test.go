package wire

import (
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
)

func sampleMsg() *Msg {
	return &Msg{
		Type:       TRegister,
		Model:      "bert-large",
		ClientNode: "client0",
		FabricAddr: "127.0.0.1:9999",
		Iteration:  42,
		Tensors: []TensorRef{
			{Name: "embedding.weight", DType: 1, Dims: []int64{512, 1024}, Size: 2097152, RKey: 7},
			{Name: "encoder.bias", DType: 1, Dims: []int64{1024}, Size: 4096, RKey: 8},
		},
	}
}

func TestSimNetRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, err := n.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("server", func(env sim.Env) {
			conn, err := l.Accept(env)
			if err != nil {
				t.Error(err)
				return
			}
			m, err := conn.Recv(env)
			if err != nil {
				t.Error(err)
				return
			}
			m.Type = TRegisterOK
			if err := conn.Send(env, m); err != nil {
				t.Error(err)
			}
		})
		conn, err := n.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, sampleMsg()); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != TRegisterOK || resp.Model != "bert-large" {
			t.Fatalf("resp = %+v", resp)
		}
	})
	eng.Run()
}

func TestSimNetLatencyCharged(t *testing.T) {
	eng := sim.NewEngine()
	var sendTime int64
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, err := n.Listen(env, "s")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("server", func(env sim.Env) {
			conn, _ := l.Accept(env)
			conn.Recv(env)
		})
		conn, err := n.Dial(env, "s")
		if err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		if err := conn.Send(env, sampleMsg()); err != nil {
			t.Fatal(err)
		}
		sendTime = int64(env.Now() - start)
	})
	eng.Run()
	if sendTime == 0 {
		t.Fatal("control-plane send charged no virtual time")
	}
}

func TestSimNetDuplicateBindFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		if _, err := n.Listen(env, "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Listen(env, "x"); err == nil {
			t.Error("duplicate bind succeeded")
		}
		if _, err := n.Dial(env, "nowhere"); err == nil {
			t.Error("dial to unbound name succeeded")
		}
	})
	eng.Run()
}

func TestSimConnClosedSendFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, _ := n.Listen(env, "s")
		env.Go("server", func(env sim.Env) { l.Accept(env) })
		conn, _ := n.Dial(env, "s")
		conn.Close()
		if err := conn.Send(env, sampleMsg()); err != ErrClosed {
			t.Errorf("send after close = %v, want ErrClosed", err)
		}
	})
	eng.Run()
}

func TestNetConnGobRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		m, err := nc.Recv(env)
		if err != nil {
			return
		}
		done <- m
		nc.Send(env, &Msg{Type: TRegisterOK, Model: m.Model})
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	want := sampleMsg()
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	resp, err := nc.Recv(env)
	if err != nil || resp.Type != TRegisterOK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	nc.Close()
}

// TestBusyGobRoundTrip pins the BUSY backpressure reply's wire shape:
// the correlation type and the RetryAfter hint survive gob encoding.
func TestBusyGobRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		m, err := nc.Recv(env)
		if err != nil {
			return
		}
		done <- m
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	want := &Msg{
		Type: TBusy, Model: "gpt", Iteration: 41,
		InReplyTo: TDoCheckpoint, RetryAfter: 750 * time.Microsecond,
	}
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BUSY gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	nc.Close()
}

func TestTypeNames(t *testing.T) {
	for ty, want := range map[Type]string{
		TRegister: "REGISTER", TDoCheckpoint: "DO_CHECKPOINT",
		TCheckpointDone: "CHECKPOINT_DONE", TRestore: "RESTORE",
		TError: "ERROR", TBusy: "BUSY",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(200).String() == "" {
		t.Error("unknown type has empty name")
	}
}

func TestApproxSizeGrowsWithContent(t *testing.T) {
	small := (&Msg{Type: TList}).approxSize()
	big := sampleMsg().approxSize()
	if big <= small {
		t.Fatalf("approxSize: big %d <= small %d", big, small)
	}
}
