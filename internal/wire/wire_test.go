package wire

import (
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/portus-sys/portus/internal/sim"
)

func sampleMsg() *Msg {
	return &Msg{
		Type:       TRegister,
		Model:      "bert-large",
		ClientNode: "client0",
		FabricAddr: "127.0.0.1:9999",
		Iteration:  42,
		Tensors: []TensorRef{
			{Name: "embedding.weight", DType: 1, Dims: []int64{512, 1024}, Size: 2097152, RKey: 7},
			{Name: "encoder.bias", DType: 1, Dims: []int64{1024}, Size: 4096, RKey: 8},
		},
	}
}

func TestSimNetRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, err := n.Listen(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("server", func(env sim.Env) {
			conn, err := l.Accept(env)
			if err != nil {
				t.Error(err)
				return
			}
			m, err := conn.Recv(env)
			if err != nil {
				t.Error(err)
				return
			}
			m.Type = TRegisterOK
			if err := conn.Send(env, m); err != nil {
				t.Error(err)
			}
		})
		conn, err := n.Dial(env, "storage")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env, sampleMsg()); err != nil {
			t.Fatal(err)
		}
		resp, err := conn.Recv(env)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Type != TRegisterOK || resp.Model != "bert-large" {
			t.Fatalf("resp = %+v", resp)
		}
	})
	eng.Run()
}

func TestSimNetLatencyCharged(t *testing.T) {
	eng := sim.NewEngine()
	var sendTime int64
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, err := n.Listen(env, "s")
		if err != nil {
			t.Fatal(err)
		}
		env.Go("server", func(env sim.Env) {
			conn, _ := l.Accept(env)
			conn.Recv(env)
		})
		conn, err := n.Dial(env, "s")
		if err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		if err := conn.Send(env, sampleMsg()); err != nil {
			t.Fatal(err)
		}
		sendTime = int64(env.Now() - start)
	})
	eng.Run()
	if sendTime == 0 {
		t.Fatal("control-plane send charged no virtual time")
	}
}

func TestSimNetDuplicateBindFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		if _, err := n.Listen(env, "x"); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Listen(env, "x"); err == nil {
			t.Error("duplicate bind succeeded")
		}
		if _, err := n.Dial(env, "nowhere"); err == nil {
			t.Error("dial to unbound name succeeded")
		}
	})
	eng.Run()
}

func TestSimConnClosedSendFails(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go("test", func(env sim.Env) {
		n := NewSimNet()
		l, _ := n.Listen(env, "s")
		env.Go("server", func(env sim.Env) { l.Accept(env) })
		conn, _ := n.Dial(env, "s")
		conn.Close()
		if err := conn.Send(env, sampleMsg()); err != ErrClosed {
			t.Errorf("send after close = %v, want ErrClosed", err)
		}
	})
	eng.Run()
}

func TestNetConnGobRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		m, err := nc.Recv(env)
		if err != nil {
			return
		}
		done <- m
		nc.Send(env, &Msg{Type: TRegisterOK, Model: m.Model})
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	want := sampleMsg()
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	resp, err := nc.Recv(env)
	if err != nil || resp.Type != TRegisterOK {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	nc.Close()
}

// TestBusyGobRoundTrip pins the BUSY backpressure reply's wire shape:
// the correlation type and the RetryAfter hint survive gob encoding.
func TestBusyGobRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		m, err := nc.Recv(env)
		if err != nil {
			return
		}
		done <- m
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	want := &Msg{
		Type: TBusy, Model: "gpt", Iteration: 41,
		InReplyTo: TDoCheckpoint, RetryAfter: 750 * time.Microsecond,
	}
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BUSY gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	nc.Close()
}

func TestTypeNames(t *testing.T) {
	for ty, want := range map[Type]string{
		TRegister: "REGISTER", TDoCheckpoint: "DO_CHECKPOINT",
		TCheckpointDone: "CHECKPOINT_DONE", TRestore: "RESTORE",
		TError: "ERROR", TBusy: "BUSY",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(200).String() == "" {
		t.Error("unknown type has empty name")
	}
}

func TestApproxSizeGrowsWithContent(t *testing.T) {
	small := (&Msg{Type: TList}).approxSize()
	big := sampleMsg().approxSize()
	if big <= small {
		t.Fatalf("approxSize: big %d <= small %d", big, small)
	}
}

// TestTypeStringDoesNotAllocate pins the hot-path fix: Type.String for
// known types must index the package-level name table, not rebuild a
// map per call.
func TestTypeStringDoesNotAllocate(t *testing.T) {
	for _, ty := range []Type{TRegister, TDoCheckpoint, TCheckpointDone, TBusy, TTraceReport} {
		allocs := testing.AllocsPerRun(100, func() { _ = ty.String() })
		if allocs != 0 {
			t.Errorf("%s.String() allocates %.1f times per call, want 0", ty, allocs)
		}
	}
}

func TestTraceReportTypeName(t *testing.T) {
	if got := TTraceReport.String(); got != "TRACE_REPORT" {
		t.Fatalf("TTraceReport.String() = %q", got)
	}
}

// TestTraceContextGobCompat pins forward/backward compatibility of the
// trace fields: a message encoded without TraceID/SpanID (an old
// client) decodes with both zero — the untraced sentinel — and a
// traced message round-trips its ids intact.
func TestTraceContextGobCompat(t *testing.T) {
	env := sim.NewRealEnv()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Msg, 2)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		nc := NewNetConn(c)
		for i := 0; i < 2; i++ {
			m, err := nc.Recv(env)
			if err != nil {
				return
			}
			done <- m
		}
	}()
	sock, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	nc := NewNetConn(sock)
	defer nc.Close()

	// Untraced request: gob omits zero fields, so this is byte-for-byte
	// what an old client sends.
	if err := nc.Send(env, &Msg{Type: TDoCheckpoint, Model: "m", Iteration: 1}); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Fatalf("untraced message decoded trace context %d/%d, want 0/0", got.TraceID, got.SpanID)
	}

	// Traced request round-trips both ids.
	want := &Msg{Type: TDoCheckpoint, Model: "m", Iteration: 2, TraceID: 0xa1, SpanID: 0xb2}
	if err := nc.Send(env, want); err != nil {
		t.Fatal(err)
	}
	got = <-done
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("traced gob round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}
