package alloc

import (
	"testing"

	"github.com/portus-sys/portus/internal/pmem"
)

func BenchmarkAllocateFree(b *testing.B) {
	pm := pmem.New(pmem.Config{Name: "pm", DataSize: 1 << 30, MetaSize: 8 << 20})
	a, err := Format(pm, 0, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := a.Allocate(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBumpAllocate(b *testing.B) {
	mk := func() *Allocator {
		pm := pmem.New(pmem.Config{Name: "pm", DataSize: 1 << 40, MetaSize: 64 << 20})
		a, err := Format(pm, 0, 60<<20)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	a := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Allocate(64 << 10); err != nil {
			// The zone or slot table filled up across escalating b.N
			// runs; start a fresh namespace outside the timer.
			b.StopTimer()
			a = mk()
			b.StartTimer()
			if _, err := a.Allocate(64 << 10); err != nil {
				b.Fatal(err)
			}
		}
	}
}
