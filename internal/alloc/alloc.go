// Package alloc manages the PMem data zone: the contiguous TensorData
// regions the Portus daemon allocates for each model version. Allocation
// state is persisted in an AllocTable in the metadata zone so a daemon
// restart (or portusctl) can reconstruct ownership from the raw image,
// and a repacking pass can find and compact live extents (§III-D2).
//
// The fast path claims fresh space by compare-and-swap on a bump
// pointer, keeping concurrent daemon workers lock-free as the paper
// prescribes; freed extents are recycled under a short mutex.
package alloc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/portus-sys/portus/internal/pmem"
)

// Table layout constants.
const (
	headerSize = 32
	slotSize   = 24 // off u64 | size u64 | state u64

	tableMagic = 0x504f52545355414c // "PORTUSAL"

	stateFree = 0
	stateUsed = 1

	// Align rounds every allocation to a cache line.
	Align = 64
)

// Errors returned by the allocator.
var (
	ErrNoSpace    = errors.New("alloc: persistent memory exhausted")
	ErrNoSlots    = errors.New("alloc: allocation table full")
	ErrNotAlloced = errors.New("alloc: extent not allocated")
)

// Extent is one allocated region of the data zone.
type Extent struct {
	Off  int64
	Size int64
}

// Allocator manages the data zone of one namespace.
type Allocator struct {
	pm       *pmem.Device
	tableOff int64 // AllocTable base in the metadata zone
	slotCap  int64
	dataSize int64

	brk atomic.Int64 // data-zone bump pointer

	mu        sync.Mutex
	free      []Extent        // recycled extents, sorted by offset
	slotOf    map[int64]int64 // data-zone offset -> slot index
	freeSlots []int64
}

// Format initializes a fresh AllocTable occupying [tableOff, tableOff+
// tableLen) of the metadata zone and returns the allocator.
func Format(pm *pmem.Device, tableOff, tableLen int64) (*Allocator, error) {
	slotCap := (tableLen - headerSize) / slotSize
	if slotCap < 1 {
		return nil, fmt.Errorf("alloc: table region too small (%d bytes)", tableLen)
	}
	a := &Allocator{
		pm:       pm,
		tableOff: tableOff,
		slotCap:  slotCap,
		dataSize: pm.DataSize(),
		slotOf:   make(map[int64]int64),
	}
	// The data zone starts allocating at Align, reserving offset 0 as an
	// invalid sentinel (index pointers use 0 for "no extent").
	a.brk.Store(Align)
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint64(hdr[0:], tableMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(slotCap))
	binary.LittleEndian.PutUint64(hdr[16:], Align) // brk
	pm.WriteMeta(tableOff, hdr)
	// Zero the slot region so state reads as free.
	pm.WriteMeta(tableOff+headerSize, make([]byte, slotCap*slotSize))
	pm.FlushMeta(tableOff, headerSize+slotCap*slotSize)
	for i := int64(slotCap) - 1; i >= 0; i-- {
		a.freeSlots = append(a.freeSlots, i)
	}
	return a, nil
}

// Open reconstructs the allocator from a previously formatted table.
// The data-zone bump pointer recovers as the maximum of the persisted
// value and the end of the highest live extent, so a crash between slot
// persist and pointer persist can never double-allocate.
func Open(pm *pmem.Device, tableOff int64) (*Allocator, error) {
	if tableOff < 0 || tableOff+headerSize > pm.MetaSize() {
		return nil, fmt.Errorf("alloc: table offset %d outside metadata zone", tableOff)
	}
	hdr := pm.MetaBytes(tableOff, headerSize)
	if binary.LittleEndian.Uint64(hdr) != tableMagic {
		return nil, fmt.Errorf("alloc: bad table magic at %d", tableOff)
	}
	slotCap := int64(binary.LittleEndian.Uint64(hdr[8:]))
	brk := int64(binary.LittleEndian.Uint64(hdr[16:]))
	// Overflow-safe: slotCap*slotSize could wrap for corrupt values.
	if slotCap < 0 || slotCap > (pm.MetaSize()-tableOff-headerSize)/slotSize {
		return nil, fmt.Errorf("alloc: corrupt slot capacity %d", slotCap)
	}
	if brk < 0 || brk > pm.DataSize() {
		return nil, fmt.Errorf("alloc: corrupt bump pointer %d", brk)
	}
	a := &Allocator{
		pm:       pm,
		tableOff: tableOff,
		slotCap:  slotCap,
		dataSize: pm.DataSize(),
		slotOf:   make(map[int64]int64),
	}
	raw := pm.MetaBytes(tableOff+headerSize, slotCap*slotSize)
	var used []Extent
	for i := int64(0); i < slotCap; i++ {
		rec := raw[i*slotSize:]
		state := binary.LittleEndian.Uint64(rec[16:])
		if state != stateUsed {
			a.freeSlots = append(a.freeSlots, i)
			continue
		}
		e := Extent{
			Off:  int64(binary.LittleEndian.Uint64(rec[0:])),
			Size: int64(binary.LittleEndian.Uint64(rec[8:])),
		}
		used = append(used, e)
		a.slotOf[e.Off] = i
		if end := e.Off + e.Size; end > brk {
			brk = end
		}
	}
	if brk < Align {
		brk = Align // offset 0 stays reserved
	}
	a.brk.Store(brk)
	// Gaps below brk between used extents are reusable.
	sort.Slice(used, func(i, j int) bool { return used[i].Off < used[j].Off })
	prev := int64(Align)
	for _, e := range used {
		if e.Off > prev {
			a.free = append(a.free, Extent{Off: prev, Size: e.Off - prev})
		}
		prev = e.Off + e.Size
	}
	// Reverse freeSlots so low indices are handed out first (cosmetic
	// but keeps tables compact and deterministic).
	sort.Slice(a.freeSlots, func(i, j int) bool { return a.freeSlots[i] > a.freeSlots[j] })
	return a, nil
}

// Allocate claims size bytes of the data zone and returns the extent
// offset. Size is rounded up to the allocation alignment.
func (a *Allocator) Allocate(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: invalid size %d", size)
	}
	size = (size + Align - 1) / Align * Align

	// Recycled extents first (first fit, exact split).
	a.mu.Lock()
	for i, e := range a.free {
		if e.Size >= size {
			off := e.Off
			if e.Size == size {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = Extent{Off: e.Off + size, Size: e.Size - size}
			}
			err := a.recordLocked(off, size)
			a.mu.Unlock()
			if err != nil {
				return 0, err
			}
			return off, nil
		}
	}
	a.mu.Unlock()

	// Lock-free bump fast path.
	for {
		cur := a.brk.Load()
		next := cur + size
		if next > a.dataSize {
			return 0, fmt.Errorf("%w: need %d, %d free", ErrNoSpace, size, a.dataSize-cur)
		}
		if a.brk.CompareAndSwap(cur, next) {
			a.mu.Lock()
			err := a.recordLocked(cur, size)
			a.mu.Unlock()
			if err != nil {
				return 0, err
			}
			a.persistBrk(next)
			return cur, nil
		}
	}
}

// recordLocked persists a used slot for the extent.
func (a *Allocator) recordLocked(off, size int64) error {
	if len(a.freeSlots) == 0 {
		return ErrNoSlots
	}
	slot := a.freeSlots[len(a.freeSlots)-1]
	a.freeSlots = a.freeSlots[:len(a.freeSlots)-1]
	a.slotOf[off] = slot
	rec := make([]byte, slotSize)
	binary.LittleEndian.PutUint64(rec[0:], uint64(off))
	binary.LittleEndian.PutUint64(rec[8:], uint64(size))
	binary.LittleEndian.PutUint64(rec[16:], stateUsed)
	at := a.tableOff + headerSize + slot*slotSize
	a.pm.WriteMeta(at, rec)
	a.pm.FlushMeta(at, slotSize)
	return nil
}

func (a *Allocator) persistBrk(brk int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(brk))
	a.pm.WriteMeta(a.tableOff+16, b[:])
	a.pm.Persist8(a.tableOff + 16)
}

// Free releases the extent at off back to the allocator.
func (a *Allocator) Free(off int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	slot, ok := a.slotOf[off]
	if !ok {
		return fmt.Errorf("%w: offset %d", ErrNotAlloced, off)
	}
	at := a.tableOff + headerSize + slot*slotSize
	size := int64(binary.LittleEndian.Uint64(a.pm.MetaBytes(at+8, 8)))
	var z [8]byte
	a.pm.WriteMeta(at+16, z[:]) // state = free
	a.pm.Persist8(at + 16)
	delete(a.slotOf, off)
	a.freeSlots = append(a.freeSlots, slot)
	a.free = append(a.free, Extent{Off: off, Size: size})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].Off < a.free[j].Off })
	a.coalesceLocked()
	return nil
}

// coalesceLocked merges adjacent free extents.
func (a *Allocator) coalesceLocked() {
	if len(a.free) < 2 {
		return
	}
	out := a.free[:1]
	for _, e := range a.free[1:] {
		last := &out[len(out)-1]
		if last.Off+last.Size == e.Off {
			last.Size += e.Size
		} else {
			out = append(out, e)
		}
	}
	a.free = out
}

// Live returns all allocated extents sorted by offset.
func (a *Allocator) Live() []Extent {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Extent, 0, len(a.slotOf))
	for off, slot := range a.slotOf {
		at := a.tableOff + headerSize + slot*slotSize
		size := int64(binary.LittleEndian.Uint64(a.pm.MetaBytes(at+8, 8)))
		out = append(out, Extent{Off: off, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// InUse reports the total bytes in allocated extents.
func (a *Allocator) InUse() int64 {
	var sum int64
	for _, e := range a.Live() {
		sum += e.Size
	}
	return sum
}

// HighWater reports the bump pointer — the highest byte ever allocated.
func (a *Allocator) HighWater() int64 { return a.brk.Load() }

// Rebuild replaces the allocation table wholesale with the given live
// extents and sets the bump pointer just past the last one. The repacker
// calls this after compacting TensorData into a contiguous prefix.
func (a *Allocator) Rebuild(live []Extent) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int64(len(live)) > a.slotCap {
		return ErrNoSlots
	}
	// Wipe the persistent table.
	a.pm.WriteMeta(a.tableOff+headerSize, make([]byte, a.slotCap*slotSize))
	a.pm.FlushMeta(a.tableOff+headerSize, a.slotCap*slotSize)
	a.slotOf = make(map[int64]int64)
	a.freeSlots = a.freeSlots[:0]
	for i := a.slotCap - 1; i >= 0; i-- {
		a.freeSlots = append(a.freeSlots, i)
	}
	a.free = nil
	brk := int64(Align)
	for _, e := range live {
		if err := a.recordLocked(e.Off, e.Size); err != nil {
			return err
		}
		if end := e.Off + e.Size; end > brk {
			brk = end
		}
	}
	a.brk.Store(brk)
	a.persistBrk(brk)
	return nil
}

// FreeBytes reports space still available (recycled gaps plus untouched
// tail).
func (a *Allocator) FreeBytes() int64 {
	a.mu.Lock()
	var gaps int64
	for _, e := range a.free {
		gaps += e.Size
	}
	a.mu.Unlock()
	return gaps + (a.dataSize - a.brk.Load())
}

// FragmentedBytes reports the bytes trapped in recycled gaps below the
// bump pointer — space only a first-fit hit or a repack pass can serve.
// The storage engine compares this against its watermark.
func (a *Allocator) FragmentedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var gaps int64
	for _, e := range a.free {
		gaps += e.Size
	}
	return gaps
}

// DataSize reports the data-zone capacity.
func (a *Allocator) DataSize() int64 { return a.dataSize }

// AllocateBelow claims size bytes from the recycled free list, but only
// from an extent that fits entirely below limit. It never bumps the
// pointer: the online repacker uses it to guarantee every move is
// strictly downward (dst+size <= src), so a crash mid-copy can never
// have scribbled over live source bytes. Returns ok=false when no gap
// qualifies.
func (a *Allocator) AllocateBelow(size, limit int64) (int64, bool, error) {
	if size <= 0 {
		return 0, false, fmt.Errorf("alloc: invalid size %d", size)
	}
	size = (size + Align - 1) / Align * Align
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, e := range a.free {
		if e.Size < size || e.Off+size > limit {
			continue
		}
		off := e.Off
		if e.Size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = Extent{Off: e.Off + size, Size: e.Size - size}
		}
		if err := a.recordLocked(off, size); err != nil {
			return 0, false, err
		}
		return off, true, nil
	}
	return 0, false, nil
}

// TrimBrk lowers the bump pointer to just past the highest live extent,
// returning freed tail bytes to the lock-free fast path, and drops free
// extents at or beyond the new pointer. Only safe when the caller
// serializes every allocator mutation (the storage engine holds its own
// mutex across all Allocate/Free/TrimBrk calls); a concurrent lock-free
// bump racing this would double-allocate the reclaimed tail.
func (a *Allocator) TrimBrk() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	newBrk := int64(Align)
	for off, slot := range a.slotOf {
		at := a.tableOff + headerSize + slot*slotSize
		size := int64(binary.LittleEndian.Uint64(a.pm.MetaBytes(at+8, 8)))
		if end := off + size; end > newBrk {
			newBrk = end
		}
	}
	if newBrk >= a.brk.Load() {
		return a.brk.Load()
	}
	// Free extents wholly or partly above the new pointer dissolve into
	// the untouched tail.
	out := a.free[:0]
	for _, e := range a.free {
		if e.Off >= newBrk {
			continue
		}
		if e.Off+e.Size > newBrk {
			e.Size = newBrk - e.Off
		}
		out = append(out, e)
	}
	a.free = out
	a.brk.Store(newBrk)
	a.persistBrk(newBrk)
	return newBrk
}
